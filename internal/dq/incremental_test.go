// Tests of the incremental engine. The keystone is the differential
// property test: on randomized NULL/NaN/mixed-kind streams, folding each
// tumbling window through fresh incrementals — directly, and split into
// merged panes — must reproduce the batch Check results exactly (same
// Evaluated, Unexpected, UnexpectedIDs, Observed, Success) at window
// widths of 1, 7 and 64 tuples. The deliberate divergence — carried
// monotonicity state across window boundaries — gets its own regression
// tests, pinned against an oracle: never-reset incremental state over
// consecutive windows equals one batch Check over the whole stream.
package dq

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"icewafl/internal/obs"
	"icewafl/internal/stream"
)

// arow builds a tuple with an explicit arrival time (minute index),
// which the window operators key on.
func arow(id uint64, minute int, a, b, c, label stream.Value) stream.Tuple {
	ts := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(minute) * time.Minute)
	t := stream.NewTuple(schema, []stream.Value{stream.Time(ts), a, b, c, label})
	t.ID = id
	t.EventTime = ts
	t.Arrival = ts
	return t
}

// randomValue draws one value spanning NULL, NaN, ±Inf, floats, ints,
// strings and bools — the full mixed-kind space pollution produces.
func randomValue(rng *rand.Rand) stream.Value {
	switch rng.Intn(10) {
	case 0:
		return stream.Null()
	case 1:
		return stream.Float(math.NaN())
	case 2:
		return stream.Float(math.Inf(1))
	case 3:
		return stream.Float(math.Inf(-1))
	case 4:
		return stream.Int(int64(rng.Intn(8)))
	case 5:
		return stream.Str([]string{"1", "2", "x", "warm", "cold"}[rng.Intn(5)])
	case 6:
		return stream.Bool(rng.Intn(2) == 0)
	default:
		return stream.Float(float64(rng.Intn(16)) - 4)
	}
}

// randomStream builds n tuples arriving one per minute with randomized
// mixed-kind columns.
func randomStream(rng *rand.Rand, n int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = arow(uint64(i+1), i,
			randomValue(rng), randomValue(rng), randomValue(rng), randomValue(rng))
	}
	return out
}

// fullSuite covers every expectation shipped by the package, including
// filtered and declarative-where wrappers.
func fullSuite(t *testing.T) *Suite {
	t.Helper()
	re, err := NewMatchRegex("label", `^[a-z0-9]+$`)
	if err != nil {
		t.Fatal(err)
	}
	return NewSuite("differential",
		NotBeNull{Column: "a"},
		BeBetween{Column: "a", Min: 0, Max: 10},
		PairAGreaterThanB{A: "a", B: "b"},
		re,
		MulticolumnSumToEqual{Columns: []string{"a", "b"}, Total: 4, Tolerance: 2},
		BeIncreasing{Column: "a"},
		BeIncreasing{Column: "b", Strictly: true},
		BeUnique{Column: "label"},
		BeInSet{Column: "label", Allowed: map[string]bool{"1": true, "2": true, "warm": true}},
		BeOfType{Column: "a", Kind: stream.KindFloat},
		MeanToBeBetween{Column: "a", Min: -1, Max: 3},
		Filtered{Inner: NotBeNull{Column: "b"}, Where: func(t stream.Tuple) bool {
			v, ok := t.Get("c")
			return ok && !v.IsNull()
		}},
		Where{Inner: BeUnique{Column: "label"}, Cond: RowCondition{Column: "a", Op: ">=", Value: stream.Float(0)}},
	)
}

// tumblingChunks splits tuples (arriving one per minute) into tumbling
// windows of width minutes, exactly as stream.TumblingWindows would.
func tumblingChunks(tuples []stream.Tuple, width int) [][]stream.Tuple {
	var out [][]stream.Tuple
	for i := 0; i < len(tuples); i += width {
		end := i + width
		if end > len(tuples) {
			end = len(tuples)
		}
		out = append(out, tuples[i:end])
	}
	return out
}

// incrementalValidate folds window through fresh incrementals.
func incrementalValidate(t *testing.T, suite *Suite, window []stream.Tuple) []Result {
	t.Helper()
	incs, err := suite.Incrementals()
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range window {
		for _, inc := range incs {
			inc.Observe(tp)
		}
	}
	out := make([]Result, len(incs))
	for i, inc := range incs {
		out[i] = inc.Snapshot()
	}
	return out
}

// paneValidate folds window through randomly sized panes with merge
// recording, merged into fresh accumulators — the sliding-window path.
func paneValidate(t *testing.T, suite *Suite, window []stream.Tuple, rng *rand.Rand) []Result {
	t.Helper()
	accs, err := suite.Incrementals()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(window); {
		n := 1 + rng.Intn(5)
		if i+n > len(window) {
			n = len(window) - i
		}
		pincs, err := suite.Incrementals()
		if err != nil {
			t.Fatal(err)
		}
		for _, inc := range pincs {
			EnableMergeRecording(inc)
		}
		for _, tp := range window[i : i+n] {
			for _, inc := range pincs {
				inc.Observe(tp)
			}
		}
		for x, acc := range accs {
			if err := acc.Merge(pincs[x]); err != nil {
				t.Fatal(err)
			}
		}
		i += n
	}
	out := make([]Result, len(accs))
	for i, acc := range accs {
		out[i] = acc.Snapshot()
	}
	return out
}

// TestDifferentialIncrementalVsBatch is the keystone property test:
// incremental ≡ batch Check on every tumbling window at widths
// {1, 7, 64} over randomized NULL/NaN/mixed-kind streams — both for
// direct per-window folding and for pane-merged folding.
func TestDifferentialIncrementalVsBatch(t *testing.T) {
	suite := fullSuite(t)
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		tuples := randomStream(rng, 200)
		for _, width := range []int{1, 7, 64} {
			for wi, window := range tumblingChunks(tuples, width) {
				batch := suite.Validate(window)
				direct := incrementalValidate(t, suite, window)
				paned := paneValidate(t, suite, window, rng)
				for i := range batch {
					if !reflect.DeepEqual(batch[i], direct[i]) {
						t.Fatalf("seed %d width %d window %d %q:\nbatch  %+v\ndirect %+v",
							seed, width, wi, batch[i].Expectation, batch[i], direct[i])
					}
					if !reflect.DeepEqual(batch[i], paned[i]) {
						t.Fatalf("seed %d width %d window %d %q:\nbatch %+v\npaned %+v",
							seed, width, wi, batch[i].Expectation, batch[i], paned[i])
					}
				}
			}
		}
	}
}

// TestIncrementalCarryOracle pins the carry semantics against the
// never-reset oracle: consecutive windows evaluated with per-window
// Reset (which carries the monotonicity chain) must flag, in total,
// exactly the IDs one batch Check flags over the whole stream.
func TestIncrementalCarryOracle(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		rng := rand.New(rand.NewSource(seed))
		tuples := randomStream(rng, 150)
		for _, strictly := range []bool{false, true} {
			e := BeIncreasing{Column: "a", Strictly: strictly}
			whole := e.Check(tuples)

			inc, err := IncrementalOf(e)
			if err != nil {
				t.Fatal(err)
			}
			var ids []uint64
			var evaluated int
			for _, window := range tumblingChunks(tuples, 7) {
				for _, tp := range window {
					inc.Observe(tp)
				}
				res := inc.Snapshot()
				ids = append(ids, res.UnexpectedIDs...)
				evaluated += res.Evaluated
				inc.Reset()
			}
			if evaluated != whole.Evaluated || !reflect.DeepEqual(ids, whole.UnexpectedIDs) {
				t.Fatalf("seed %d strictly=%v: carry windows flag %v (evaluated %d), whole stream %v (evaluated %d)",
					seed, strictly, ids, evaluated, whole.UnexpectedIDs, whole.Evaluated)
			}
		}
	}
}

// TestCrossWindowDecreaseRegression is the satellite regression: a
// decrease whose two tuples straddle a tumbling-window boundary is
// invisible to per-window batch Check but flagged by the streaming
// monitor's carried chain. Covers strict ties too.
func TestCrossWindowDecreaseRegression(t *testing.T) {
	// Minute 0..5: window width 3m puts tuples {0,1,2} and {3,4,5} in
	// separate windows. Value drops from 30 (minute 2) to 5 (minute 3):
	// the decrease straddles the boundary. The successors recover above
	// the carried prev (which stays at 30 on a violation), so only the
	// delayed tuple itself is flagged.
	mk := func(vals ...float64) []stream.Tuple {
		out := make([]stream.Tuple, len(vals))
		for i, v := range vals {
			out[i] = arow(uint64(i+1), i, f(v), f(0), f(0), stream.Str("x"))
		}
		return out
	}
	tuples := mk(10, 20, 30, 5, 35, 40)
	e := BeIncreasing{Column: "a"}

	// Old model: per-window batch Check. Each window is monotonic in
	// isolation — the violation is invisible.
	oldFlags := 0
	for _, win := range tumblingChunks(tuples, 3) {
		oldFlags += e.Check(win).Unexpected
	}
	if oldFlags != 0 {
		t.Fatalf("per-window batch Check flagged %d rows; the regression premise is wrong", oldFlags)
	}

	// New model: the streaming validator carries the chain.
	v := NewStreamingValidator(NewSuite("s", e), 3*time.Minute)
	windows, err := v.Run(stream.NewSliceSource(schema, tuples))
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(windows))
	}
	second := windows[1].Results[0]
	if second.Unexpected != 1 || len(second.UnexpectedIDs) != 1 || second.UnexpectedIDs[0] != 4 {
		t.Fatalf("boundary decrease not flagged: %+v", second)
	}

	// Strictly: a tie across the boundary must be flagged too.
	tie := mk(10, 20, 30, 30, 31, 32)
	vs := NewStreamingValidator(NewSuite("s", BeIncreasing{Column: "a", Strictly: true}), 3*time.Minute)
	windows, err = vs.Run(stream.NewSliceSource(schema, tie))
	if err != nil {
		t.Fatal(err)
	}
	second = windows[1].Results[0]
	if second.Unexpected != 1 || second.UnexpectedIDs[0] != 4 {
		t.Fatalf("boundary tie not flagged strictly: %+v", second)
	}
	// Non-strict: the tie passes.
	vn := NewStreamingValidator(NewSuite("s", BeIncreasing{Column: "a"}), 3*time.Minute)
	windows, err = vn.Run(stream.NewSliceSource(schema, tie))
	if err != nil {
		t.Fatal(err)
	}
	if n := windows[1].Results[0].Unexpected; n != 0 {
		t.Fatalf("non-strict boundary tie flagged: %d", n)
	}
}

// TestBeBetweenNonFinite is the NaN satellite regression: NaN and ±Inf
// must be unexpected in both engines (the old `f < Min || f > Max` test
// is false for NaN, silently passing it).
func TestBeBetweenNonFinite(t *testing.T) {
	rows := []stream.Tuple{
		arow(1, 0, f(5), f(0), f(0), stream.Str("x")),
		arow(2, 1, f(math.NaN()), f(0), f(0), stream.Str("x")),
		arow(3, 2, f(math.Inf(1)), f(0), f(0), stream.Str("x")),
		arow(4, 3, f(math.Inf(-1)), f(0), f(0), stream.Str("x")),
	}
	e := BeBetween{Column: "a", Min: 0, Max: 10}
	batch := e.Check(rows)
	if batch.Evaluated != 4 || batch.Unexpected != 3 {
		t.Fatalf("batch: %+v", batch)
	}
	if !reflect.DeepEqual(batch.UnexpectedIDs, []uint64{2, 3, 4}) {
		t.Fatalf("batch ids: %v", batch.UnexpectedIDs)
	}
	inc, err := IncrementalOf(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		inc.Observe(r)
	}
	if got := inc.Snapshot(); !reflect.DeepEqual(batch, got) {
		t.Fatalf("incremental diverges: %+v vs %+v", got, batch)
	}
}

// TestMeanReportsNonFinite: MeanToBeBetween reports NaN/Inf rows as
// unexpected (with IDs) and keeps the mean over the finite values
// rather than silently poisoning it.
func TestMeanReportsNonFinite(t *testing.T) {
	rows := []stream.Tuple{
		arow(1, 0, f(1), f(0), f(0), stream.Str("x")),
		arow(2, 1, f(math.NaN()), f(0), f(0), stream.Str("x")),
		arow(3, 2, f(3), f(0), f(0), stream.Str("x")),
		arow(4, 3, f(math.Inf(1)), f(0), f(0), stream.Str("x")),
	}
	e := MeanToBeBetween{Column: "a", Min: 0, Max: 10}
	res := e.Check(rows)
	if res.Evaluated != 4 || res.Unexpected != 2 || res.Success {
		t.Fatalf("%+v", res)
	}
	if !reflect.DeepEqual(res.UnexpectedIDs, []uint64{2, 4}) {
		t.Fatalf("ids %v", res.UnexpectedIDs)
	}
	if res.Observed != 2 { // mean of the finite 1 and 3
		t.Fatalf("observed %g, want 2 (mean of finite values)", res.Observed)
	}
	inc, err := IncrementalOf(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		inc.Observe(r)
	}
	if got := inc.Snapshot(); !reflect.DeepEqual(res, got) {
		t.Fatalf("incremental diverges: %+v vs %+v", got, res)
	}
	// All-NaN column: no finite values, expectation fails but Observed
	// stays finite (zero).
	bad := e.Check(rows[1:2])
	if bad.Success || math.IsNaN(bad.Observed) {
		t.Fatalf("all-NaN column: %+v", bad)
	}
}

// TestBeUniqueCrossKind is the uniqueness satellite regression: values
// of different kinds that render identically (int 1 vs string "1",
// 1 vs 1.0) must not be duplicates; true duplicates still are.
func TestBeUniqueCrossKind(t *testing.T) {
	rows := []stream.Tuple{
		arow(1, 0, f(0), f(0), f(0), stream.Str("1")),
		arow(2, 1, f(0), f(0), f(0), stream.Str("1")), // true duplicate
	}
	// Cross-kind: int 1 and string "1" render identically but differ.
	rows[1] = arow(2, 1, f(0), f(0), f(0), stream.Int(1))
	e := BeUnique{Column: "label"}
	if res := e.Check(rows); res.Unexpected != 0 {
		t.Fatalf("int 1 vs string \"1\" reported duplicate: %+v", res)
	}
	// Int 1 vs float 1 render identically ("1") but differ in kind.
	rows = []stream.Tuple{
		arow(1, 0, f(0), f(0), f(0), stream.Int(1)),
		arow(2, 1, f(0), f(0), f(0), stream.Float(1)),
	}
	if res := e.Check(rows); res.Unexpected != 0 {
		t.Fatalf("int 1 vs float 1.0 reported duplicate: %+v", res)
	}
	// Same-kind duplicates still flag, in both engines, across panes.
	rows = []stream.Tuple{
		arow(1, 0, f(0), f(0), f(0), stream.Str("a")),
		arow(2, 1, f(0), f(0), f(0), stream.Int(1)),
		arow(3, 2, f(0), f(0), f(0), stream.Str("a")),
		arow(4, 3, f(0), f(0), f(0), stream.Int(1)),
	}
	batch := e.Check(rows)
	if batch.Unexpected != 2 || !reflect.DeepEqual(batch.UnexpectedIDs, []uint64{3, 4}) {
		t.Fatalf("batch: %+v", batch)
	}
	// Pane merge: pane1 = rows[0:2], pane2 = rows[2:4]; both of pane2's
	// values are firsts locally but duplicates after the union.
	acc, err := IncrementalOf(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, half := range [][]stream.Tuple{rows[:2], rows[2:]} {
		p, err := IncrementalOf(e)
		if err != nil {
			t.Fatal(err)
		}
		EnableMergeRecording(p)
		for _, r := range half {
			p.Observe(r)
		}
		if err := acc.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := acc.Snapshot(); !reflect.DeepEqual(batch, got) {
		t.Fatalf("pane merge diverges: %+v vs %+v", got, batch)
	}
}

// TestSlidingMonitorMatchesBatchGrid: the pane-merging sliding monitor
// reproduces the batch stream.SlidingWindows grid per window.
func TestSlidingMonitorMatchesBatchGrid(t *testing.T) {
	suite := fullSuite(t)
	rng := rand.New(rand.NewSource(42))
	tuples := randomStream(rng, 90)
	width, slide := 12*time.Minute, 3*time.Minute

	batchWins, err := stream.SlidingWindows(stream.NewSliceSource(schema, tuples), width, slide)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSlidingMonitor(suite, width, slide)
	if err != nil {
		t.Fatal(err)
	}
	var got []WindowResult
	err = m.Run(stream.NewSliceSource(schema, tuples), func(wr WindowResult) error {
		got = append(got, wr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batchWins) {
		t.Fatalf("monitor emitted %d windows, batch grid has %d", len(got), len(batchWins))
	}
	for i, bw := range batchWins {
		if !got[i].Start.Equal(bw.Start) || !got[i].End.Equal(bw.End) || got[i].Tuples != len(bw.Tuples) {
			t.Fatalf("window %d shape: got [%v,%v) %d tuples, want [%v,%v) %d",
				i, got[i].Start, got[i].End, got[i].Tuples, bw.Start, bw.End, len(bw.Tuples))
		}
		want := suite.Validate(bw.Tuples)
		if !reflect.DeepEqual(got[i].Results, want) {
			t.Fatalf("window %d results diverge:\nmonitor %+v\nbatch   %+v", i, got[i].Results, want)
		}
	}
}

// TestMonitorObs: the monitor feeds per-expectation counters, the
// dq_window latency histogram and the worst-window gauge.
func TestMonitorObs(t *testing.T) {
	suite := NewSuite("s", NotBeNull{Column: "a"})
	tuples := []stream.Tuple{
		arow(1, 0, f(1), f(0), f(0), stream.Str("x")),
		arow(2, 1, stream.Null(), f(0), f(0), stream.Str("x")),
		arow(3, 6, stream.Null(), f(0), f(0), stream.Str("x")),
		arow(4, 7, f(1), f(0), f(0), stream.Str("x")),
	}
	m, err := NewMonitor(suite, 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.SetObs(reg)
	var n int
	if err := m.Run(stream.NewSliceSource(schema, tuples), func(WindowResult) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("windows %d, want 2", n)
	}
	ev, un := reg.DQCounts()
	name := NotBeNull{}.Name()
	if ev[name] != 4 || un[name] != 2 {
		t.Fatalf("dq counts evaluated=%d unexpected=%d, want 4/2", ev[name], un[name])
	}
	if h := reg.Histogram(obs.StageDQWindow); h.Count != 2 {
		t.Fatalf("dq_window histogram count %d, want 2", h.Count)
	}
	snap := reg.Snapshot()
	if snap.Gauges["icewafl_dq_worst_window_unexpected"] != 1 {
		t.Fatalf("worst-window gauge: %v", snap.Gauges)
	}
	if m.WorstUnexpected() != 1 {
		t.Fatalf("WorstUnexpected %d", m.WorstUnexpected())
	}
}

// TestObserveAllocsBounded pins the O(1)-allocs-per-tuple contract: the
// steady-state cost of Observe must not grow with how many tuples the
// accumulators have already absorbed. Measured twice — after a small and
// after a large prefill — the per-tuple allocation average must stay
// under a fixed ceiling both times.
func TestObserveAllocsBounded(t *testing.T) {
	suite := fullSuite(t)
	rng := rand.New(rand.NewSource(7))
	tuples := randomStream(rng, 12000)

	measure := func(prefill int) float64 {
		incs, err := suite.Incrementals()
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range tuples[:prefill] {
			for _, inc := range incs {
				inc.Observe(tp)
			}
		}
		i := prefill
		return testing.AllocsPerRun(2000, func() {
			tp := tuples[i]
			i++
			for _, inc := range incs {
				inc.Observe(tp)
			}
		})
	}

	// The ceiling is per tuple across all 13 suite expectations: a
	// handful of appends and map inserts, amortised.
	const ceiling = 64.0
	small := measure(100)
	large := measure(8000)
	if small > ceiling || large > ceiling {
		t.Fatalf("allocs per tuple: %.1f (small prefill), %.1f (large prefill); ceiling %.0f", small, large, ceiling)
	}
	// And no growth with accumulated state beyond noise.
	if large > 2*small+8 {
		t.Fatalf("allocs per tuple grew with state: %.1f -> %.1f", small, large)
	}
}

// TestMergeMismatch: merging incompatible incrementals errors instead
// of silently corrupting state, and unrecorded chain partials refuse to
// merge.
func TestMergeMismatch(t *testing.T) {
	a, _ := IncrementalOf(NotBeNull{Column: "a"})
	b, _ := IncrementalOf(BeUnique{Column: "a"})
	if err := a.Merge(b); err == nil {
		t.Fatal("cross-type merge accepted")
	}
	c1, _ := IncrementalOf(BeIncreasing{Column: "a"})
	c2, _ := IncrementalOf(BeIncreasing{Column: "a"})
	c2.Observe(arow(1, 0, f(1), f(0), f(0), stream.Str("x")))
	if err := c1.Merge(c2); err == nil {
		t.Fatal("merge of unrecorded chain partial accepted")
	}
	EnableMergeRecording(c2)
	c2.Observe(arow(2, 1, f(2), f(0), f(0), stream.Str("x")))
	// Still refused: the first observation predates recording, so the
	// replay would be incomplete. (A fresh recorded partial merges fine;
	// covered by the differential test.)
	if err := c1.Merge(c2); err != nil {
		// Partial recording merges what was recorded — acceptable; the
		// contract is enable-before-observe.
		t.Logf("partial recording rejected: %v", err)
	}
}
