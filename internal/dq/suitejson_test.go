package dq

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"icewafl/internal/stream"
)

func TestLoadSuiteAllTypes(t *testing.T) {
	doc := `{
	  "name": "everything",
	  "expectations": [
	    {"expectation": "expect_column_values_to_not_be_null", "column": "a"},
	    {"expectation": "expect_column_values_to_be_between", "column": "a", "min": 0, "max": 10},
	    {"expectation": "expect_column_pair_values_a_to_be_greater_than_b", "a": "a", "b": "b", "or_equal": true},
	    {"expectation": "expect_column_values_to_match_regex", "column": "label", "regex": "^x+$"},
	    {"expectation": "expect_multicolumn_sum_to_equal", "columns": ["a", "b"], "total": 5, "tolerance": 0.001},
	    {"expectation": "expect_column_values_to_be_increasing", "column": "ts", "strictly": true},
	    {"expectation": "expect_column_values_to_be_unique", "column": "a"},
	    {"expectation": "expect_column_values_to_be_in_set", "column": "label", "allowed": ["x", "y"]},
	    {"expectation": "expect_column_values_to_be_of_type", "column": "a", "kind": "float"},
	    {"expectation": "expect_column_mean_to_be_between", "column": "a", "min": 0, "max": 100}
	  ]
	}`
	suite, err := LoadSuite(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if suite.SuiteName != "everything" || len(suite.Expectations) != 10 {
		t.Fatalf("suite %q with %d expectations", suite.SuiteName, len(suite.Expectations))
	}
	// Exercise the loaded suite on a small stream.
	rows := []stream.Tuple{
		row(1, 0, f(2), f(3), f(0), "x"),
		row(2, 1, f(4), f(1), f(0), "x"),
	}
	results := suite.Validate(rows)
	if len(results) != 10 {
		t.Fatalf("%d results", len(results))
	}
}

func TestLoadSuiteSemantics(t *testing.T) {
	doc := `{
	  "name": "s",
	  "expectations": [
	    {"expectation": "expect_column_values_to_not_be_null", "column": "a"}
	  ]
	}`
	suite, err := LoadSuite(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rows := []stream.Tuple{
		row(1, 0, stream.Null(), f(0), f(0), "x"),
		row(2, 1, f(1), f(0), f(0), "x"),
	}
	res := suite.Validate(rows)[0]
	if res.Unexpected != 1 {
		t.Fatalf("loaded expectation found %d", res.Unexpected)
	}
}

func TestLoadSuiteErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"name": "empty", "expectations": []}`,
		`{"name": "s", "unknown": 1, "expectations": [{"expectation": "expect_column_values_to_not_be_null", "column": "a"}]}`,
		`{"name": "s", "expectations": [{"expectation": "nope"}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_not_be_null"}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_be_between", "column": "a"}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_pair_values_a_to_be_greater_than_b", "a": "a"}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_match_regex", "column": "a", "regex": "("}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_multicolumn_sum_to_equal", "total": 1}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_be_in_set", "column": "a"}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_be_of_type", "column": "a", "kind": "decimal"}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_mean_to_be_between", "column": "a", "min": 1}]}`,
	}
	for i, doc := range bad {
		if _, err := LoadSuite(strings.NewReader(doc)); err == nil {
			t.Errorf("bad suite %d accepted", i)
		}
	}
}

func TestLoadedIncreasingDetectsDelay(t *testing.T) {
	doc := `{
	  "name": "timing",
	  "expectations": [
	    {"expectation": "expect_column_values_to_be_increasing", "column": "ts"}
	  ]
	}`
	suite, err := LoadSuite(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(id uint64, offset time.Duration) stream.Tuple {
		tp := stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(offset)), f(0), f(0), f(0), stream.Str(""),
		})
		tp.ID = id
		return tp
	}
	rows := []stream.Tuple{
		mk(1, 0), mk(2, 2*time.Hour), mk(3, time.Hour), mk(4, 3*time.Hour),
	}
	res := suite.Validate(rows)[0]
	if res.Unexpected != 1 || res.UnexpectedIDs[0] != 3 {
		t.Fatalf("%+v", res)
	}
}

func TestSaveLoadSuiteRoundTrip(t *testing.T) {
	suite := Profile("profiled", func() []stream.Tuple {
		base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
		var out []stream.Tuple
		for i := 0; i < 50; i++ {
			tp := stream.NewTuple(schema, []stream.Value{
				stream.Time(base.Add(time.Duration(i) * time.Minute)),
				f(float64(i)), f(1), f(2), stream.Str("x"),
			})
			out = append(out, tp)
		}
		return out
	}(), 0.1)
	var buf bytes.Buffer
	if err := SaveSuite(&buf, suite); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.SuiteName != suite.SuiteName || len(back.Expectations) != len(suite.Expectations) {
		t.Fatalf("round trip: %d vs %d expectations", len(back.Expectations), len(suite.Expectations))
	}
	for i := range suite.Expectations {
		if back.Expectations[i].Name() != suite.Expectations[i].Name() {
			t.Fatalf("expectation %d name mismatch: %q vs %q",
				i, back.Expectations[i].Name(), suite.Expectations[i].Name())
		}
	}
}

func TestSaveSuiteAllTypes(t *testing.T) {
	re, _ := NewMatchRegex("label", "^x$")
	suite := NewSuite("all",
		NotBeNull{Column: "a"},
		BeBetween{Column: "a", Min: 1, Max: 2},
		PairAGreaterThanB{A: "a", B: "b", OrEqual: true},
		re,
		MulticolumnSumToEqual{Columns: []string{"a", "b"}, Total: 3, Tolerance: 0.1},
		BeIncreasing{Column: "ts", Strictly: true},
		BeUnique{Column: "a"},
		BeInSet{Column: "label", Allowed: map[string]bool{"x": true, "y": true}},
		BeOfType{Column: "a", Kind: stream.KindFloat},
		MeanToBeBetween{Column: "a", Min: 0, Max: 10},
	)
	var buf bytes.Buffer
	if err := SaveSuite(&buf, suite); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Expectations) != 10 {
		t.Fatalf("%d expectations", len(back.Expectations))
	}
	// Unserialisable expectation errors out.
	bad := NewSuite("bad", Filtered{Inner: NotBeNull{Column: "a"}, Where: func(stream.Tuple) bool { return true }})
	if err := SaveSuite(&buf, bad); err == nil {
		t.Fatal("filtered expectation serialised")
	}
}

func TestWhereRowCondition(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(0), f(5), f(0), "x"),  // bpm-like a==0, activity b=5 → violates
		row(2, 1, f(0), f(0), f(0), "x"),  // a==0, activity 0 → passes
		row(3, 2, f(70), f(9), f(9), "x"), // a!=0: filtered out entirely
	}
	e := Where{
		Inner: MulticolumnSumToEqual{Columns: []string{"b", "c"}, Total: 0},
		Cond:  RowCondition{Column: "a", Op: "==", Value: stream.Float(0)},
	}
	res := e.Check(rows)
	if res.Evaluated != 2 || res.Unexpected != 1 || res.UnexpectedIDs[0] != 1 {
		t.Fatalf("%+v", res)
	}
	if !strings.Contains(res.Expectation, "where a == 0") {
		t.Fatalf("name %q", res.Expectation)
	}
}

func TestRowConditionOps(t *testing.T) {
	tp := row(1, 0, f(5), f(0), f(0), "hot")
	cases := []struct {
		cond RowCondition
		want bool
	}{
		{RowCondition{"a", "==", stream.Float(5)}, true},
		{RowCondition{"a", "!=", stream.Float(5)}, false},
		{RowCondition{"a", "<", stream.Float(10)}, true},
		{RowCondition{"a", "<=", stream.Float(5)}, true},
		{RowCondition{"a", ">", stream.Float(5)}, false},
		{RowCondition{"a", ">=", stream.Float(5)}, true},
		{RowCondition{"label", "==", stream.Str("hot")}, true},
		{RowCondition{"zzz", "==", stream.Float(1)}, false},
		{RowCondition{"label", "<", stream.Float(1)}, false}, // incomparable
		{RowCondition{"a", "~~", stream.Float(5)}, false},    // unknown op
	}
	for i, c := range cases {
		if got := c.cond.Match(tp); got != c.want {
			t.Errorf("case %d: %v", i, got)
		}
	}
	// NULL semantics: only ==/!= are defined against NULL on either
	// side; ordering comparisons against NULL never match.
	nullRow := row(2, 0, stream.Null(), f(0), f(0), "x")
	if !(RowCondition{"a", "==", stream.Null()}).Match(nullRow) {
		t.Error("null == null failed")
	}
	if (RowCondition{"a", "!=", stream.Null()}).Match(nullRow) {
		t.Error("null != null matched")
	}
	if (RowCondition{"a", "==", stream.Float(1)}).Match(nullRow) {
		t.Error("null == 1 matched")
	}
	if !(RowCondition{"a", "!=", stream.Float(1)}).Match(nullRow) {
		t.Error("null != 1 failed")
	}
	if (RowCondition{"a", "<", stream.Float(1)}).Match(nullRow) {
		t.Error("null < 1 matched")
	}
	if (RowCondition{"a", ">=", stream.Null()}).Match(nullRow) {
		t.Error("null >= null matched")
	}
	if (RowCondition{"b", "==", stream.Null()}).Match(nullRow) {
		t.Error("non-null == null matched")
	}
	if !(RowCondition{"b", "!=", stream.Null()}).Match(nullRow) {
		t.Error("non-null != null failed")
	}
	// Missing columns never match, whatever the operator — a row without
	// the column is outside the condition's domain, not unequal to it.
	for _, op := range []string{"==", "!=", "<", "<=", ">", ">="} {
		if (RowCondition{"zzz", op, stream.Float(1)}).Match(tp) {
			t.Errorf("missing column matched op %q", op)
		}
	}
	if (RowCondition{"zzz", "==", stream.Null()}).Match(tp) {
		t.Error("missing column matched == null")
	}
}

func TestWhereJSONRoundTrip(t *testing.T) {
	doc := `{
	  "name": "update",
	  "expectations": [
	    {"expectation": "expect_multicolumn_sum_to_equal",
	     "columns": ["a", "b"], "total": 0,
	     "where": {"column": "label", "op": "==", "value": "check"}}
	  ]
	}`
	suite, err := LoadSuite(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rows := []stream.Tuple{
		row(1, 0, f(1), f(1), f(0), "check"), // sum 2: fail
		row(2, 1, f(9), f(9), f(0), "skip"),  // filtered out
	}
	res := suite.Validate(rows)[0]
	if res.Evaluated != 1 || res.Unexpected != 1 {
		t.Fatalf("%+v", res)
	}
	// Save and reload.
	var buf bytes.Buffer
	if err := SaveSuite(&buf, suite); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res2 := back.Validate(rows)[0]
	if res2.Unexpected != 1 {
		t.Fatalf("reloaded suite: %+v", res2)
	}
}

func TestWhereJSONErrors(t *testing.T) {
	bad := []string{
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_not_be_null", "column": "a", "where": {"op": "==", "value": 1}}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_not_be_null", "column": "a", "where": {"column": "b", "op": "~", "value": 1}}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_not_be_null", "column": "a", "where": {"column": "b", "op": "=="}}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_not_be_null", "column": "a", "where": {"column": "b", "op": "==", "value": [1]}}]}`,
	}
	for i, doc := range bad {
		if _, err := LoadSuite(strings.NewReader(doc)); err == nil {
			t.Errorf("bad where %d accepted", i)
		}
	}
}
