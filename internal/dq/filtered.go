package dq

import (
	"fmt"

	"icewafl/internal/stream"
)

// Filtered restricts an expectation to the rows satisfying Where — the
// analogue of Great Expectations' row_condition. The software-update
// scenario uses it to apply expect_multicolumn_sum_to_equal only to rows
// with BPM == 0.
type Filtered struct {
	Inner Expectation
	Where func(stream.Tuple) bool
}

// Name implements Expectation.
func (e Filtered) Name() string { return e.Inner.Name() + "[filtered]" }

// Check implements Expectation.
func (e Filtered) Check(tuples []stream.Tuple) Result {
	var subset []stream.Tuple
	for _, t := range tuples {
		if e.Where(t) {
			subset = append(subset, t)
		}
	}
	res := e.Inner.Check(subset)
	res.Expectation = e.Name()
	return res
}

// RowCondition is a declarative, serialisable row filter: the named
// column compared against a constant. Unlike Filtered's free-form
// closure it round-trips through suite JSON documents.
type RowCondition struct {
	Column string
	Op     string // ==, !=, <, <=, >, >=
	Value  stream.Value
}

// Match reports whether the tuple satisfies the condition. Rows whose
// column is missing never match; NULL matches only `== null`-style
// equality against a NULL value.
func (c RowCondition) Match(t stream.Tuple) bool {
	v, ok := t.Get(c.Column)
	if !ok {
		return false
	}
	if c.Value.IsNull() || v.IsNull() {
		switch c.Op {
		case "==":
			return v.IsNull() == c.Value.IsNull()
		case "!=":
			return v.IsNull() != c.Value.IsNull()
		}
		return false
	}
	cmp, comparable := v.Compare(c.Value)
	if !comparable {
		return false
	}
	switch c.Op {
	case "==":
		return cmp == 0
	case "!=":
		return cmp != 0
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	}
	return false
}

// Where applies an expectation only to the rows matching a declarative
// RowCondition — the serialisable counterpart of Filtered.
type Where struct {
	Inner Expectation
	Cond  RowCondition
}

// Name implements Expectation.
func (e Where) Name() string {
	return fmt.Sprintf("%s[where %s %s %s]", e.Inner.Name(), e.Cond.Column, e.Cond.Op, e.Cond.Value)
}

// Check implements Expectation.
func (e Where) Check(tuples []stream.Tuple) Result {
	var subset []stream.Tuple
	for _, t := range tuples {
		if e.Cond.Match(t) {
			subset = append(subset, t)
		}
	}
	res := e.Inner.Check(subset)
	res.Expectation = e.Name()
	return res
}
