package dq

import (
	"testing"
	"time"

	"icewafl/internal/stream"
)

var profSchema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "temp", Kind: stream.KindFloat},
	stream.Field{Name: "mode", Kind: stream.KindString},
)

func profTuples(n int) []stream.Tuple {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]stream.Tuple, n)
	modes := []string{"auto", "manual"}
	for i := range out {
		out[i] = stream.NewTuple(profSchema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			stream.Float(20 + float64(i%10)), // 20..29
			stream.Str(modes[i%2]),
		})
		out[i].ID = uint64(i + 1)
	}
	return out
}

func TestProfileCleanDataPasses(t *testing.T) {
	clean := profTuples(200)
	suite := Profile("profiled", clean, 0.1)
	if len(suite.Expectations) == 0 {
		t.Fatal("empty suite")
	}
	for _, r := range suite.Validate(clean) {
		if !r.Success {
			t.Fatalf("profiled suite fails on its own training data: %s", r.Expectation)
		}
	}
}

func TestProfileCatchesPollution(t *testing.T) {
	clean := profTuples(200)
	suite := Profile("profiled", clean, 0.1)

	polluted := make([]stream.Tuple, len(clean))
	for i := range clean {
		polluted[i] = clean[i].Clone()
	}
	polluted[10].Set("temp", stream.Null())       // violates not_be_null
	polluted[20].Set("temp", stream.Float(9999))  // violates be_between
	polluted[30].Set("mode", stream.Str("BOGUS")) // violates be_in_set
	polluted[40].Set("temp", stream.Str("oops"))  // violates be_of_type
	ts39, _ := polluted[39].Timestamp()           // violate increasing ts
	polluted[50].SetTimestamp(ts39.Add(-time.Hour))

	failures := 0
	for _, r := range suite.Validate(polluted) {
		if !r.Success {
			failures++
		}
	}
	if failures < 5 {
		t.Fatalf("profiled suite caught only %d of 5 planted violations", failures)
	}
}

func TestProfileEdgeCases(t *testing.T) {
	if s := Profile("empty", nil, 0.1); len(s.Expectations) != 0 {
		t.Fatal("suite from empty data")
	}
	// Constant numeric column: range padding must not collapse to zero.
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "c", Kind: stream.KindFloat},
	)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	var tuples []stream.Tuple
	for i := 0; i < 10; i++ {
		tuples = append(tuples, stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)), stream.Float(5),
		}))
	}
	suite := Profile("const", tuples, 0.1)
	for _, r := range suite.Validate(tuples) {
		if !r.Success {
			t.Fatalf("constant column trips its own suite: %s", r.Expectation)
		}
	}
}
