// Monitor is the stream-first DQ engine: it consumes any stream.Source
// and emits per-window validation verdicts continuously, evaluating
// every expectation incrementally (O(1)-amortised state per tuple)
// instead of buffering windows and re-scanning them with the batch
// Check path. Two windowing modes:
//
//   - Tumbling: non-overlapping windows replicating the boundary rules
//     of stream.TumblingWindows (aligned to the first arrival, skip
//     empty, close on the first tuple at/beyond the end, final partial
//     at EOF). Cross-window chain state — the monotonicity prev — is
//     carried across boundaries, so a decrease whose two tuples straddle
//     a boundary flags its tuple in the receiving window. Batch
//     re-validation misses these by construction.
//   - Sliding (width = k·slide): each slide-sized pane keeps its own
//     mergeable partials; a window closes by merging its k panes, not by
//     re-scanning width/slide overlapping tuples per slide. Windows
//     reproduce the batch stream.SlidingWindows grid (anchored at the
//     first arrival, empty windows skipped).
//
// With an obs.Registry attached, the monitor maintains per-expectation
// evaluated/unexpected counters, a per-window evaluation-latency
// histogram (stage dq_window) and a worst-window unexpected-count gauge.
package dq

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"icewafl/internal/obs"
	"icewafl/internal/stream"
)

// Monitor continuously validates a stream window by window against a
// suite using the incremental engine.
type Monitor struct {
	suite *Suite
	width time.Duration
	slide time.Duration // == width for tumbling

	reg *obs.Registry

	// worst is the highest single-window unexpected count so far,
	// exported as the dq_worst_window_unexpected gauge.
	worst atomic.Uint64
	// skipped counts tuple-level source errors the monitor stepped over.
	skipped atomic.Uint64

	// incs is the carried tumbling-mode state, built lazily per Run.
	incs []Incremental
}

// NewMonitor builds a tumbling-window monitor.
func NewMonitor(suite *Suite, width time.Duration) (*Monitor, error) {
	return NewSlidingMonitor(suite, width, width)
}

// NewSlidingMonitor builds a sliding-window monitor: windows of the
// given width advancing by slide. slide == width (or 0) degrades to
// tumbling; otherwise width must be a positive multiple of slide so
// windows decompose exactly into panes.
func NewSlidingMonitor(suite *Suite, width, slide time.Duration) (*Monitor, error) {
	if suite == nil {
		return nil, fmt.Errorf("dq: monitor needs a suite")
	}
	if width <= 0 {
		return nil, fmt.Errorf("dq: monitor window width must be positive, got %v", width)
	}
	if slide == 0 {
		slide = width
	}
	if slide < 0 {
		return nil, fmt.Errorf("dq: monitor slide must be positive, got %v", slide)
	}
	if slide > width {
		return nil, fmt.Errorf("dq: monitor slide %v exceeds width %v", slide, width)
	}
	if width%slide != 0 {
		return nil, fmt.Errorf("dq: monitor width %v must be a multiple of slide %v", width, slide)
	}
	// Validate the suite has incremental forms up front, so Run cannot
	// fail halfway through a live stream over a configuration error.
	if _, err := suite.Incrementals(); err != nil {
		return nil, err
	}
	return &Monitor{suite: suite, width: width, slide: slide}, nil
}

// SetObs attaches a metrics registry (nil-safe): per-expectation
// evaluated/unexpected counters, the dq_window latency histogram and
// the dq_worst_window_unexpected gauge.
func (m *Monitor) SetObs(reg *obs.Registry) {
	m.reg = reg
	reg.RegisterFunc("dq_worst_window_unexpected", m.worst.Load)
}

// WorstUnexpected returns the highest single-window unexpected count
// observed so far.
func (m *Monitor) WorstUnexpected() uint64 { return m.worst.Load() }

// SkippedTuples returns how many tuple-level source errors the monitor
// skipped (a live stream should not die on one malformed tuple).
func (m *Monitor) SkippedTuples() uint64 { return m.skipped.Load() }

// Run consumes src until EOF or a fatal source error, calling emit for
// every closed non-empty window in order. An emit error aborts the run.
// Tuple-level source errors are skipped and counted; a fatal error
// discards the open partial window (its contents are not known to be
// complete) and is returned.
func (m *Monitor) Run(src stream.Source, emit func(WindowResult) error) error {
	if m.slide == m.width {
		return m.runTumbling(src, emit)
	}
	return m.runSliding(src, emit)
}

// flush renders the per-window state of incs as a WindowResult, feeds
// the metrics, and resets per-window counts (carrying chain state).
func (m *Monitor) flush(incs []Incremental, start, end time.Time, tuples int, emit func(WindowResult) error) error {
	t0 := time.Now()
	wr := WindowResult{Start: start, End: end, Tuples: tuples, Results: make([]Result, len(incs))}
	for i, inc := range incs {
		wr.Results[i] = inc.Snapshot()
		inc.Reset()
	}
	m.observe(wr, time.Since(t0))
	return emit(wr)
}

// observe feeds one closed window into the metrics registry.
func (m *Monitor) observe(wr WindowResult, d time.Duration) {
	for _, r := range wr.Results {
		m.reg.AddDQ(r.Expectation, uint64(r.Evaluated), uint64(r.Unexpected))
	}
	m.reg.ObserveStage(obs.StageDQWindow, d)
	if n := uint64(wr.Unexpected()); n > m.worst.Load() {
		m.worst.Store(n)
	}
}

// runTumbling replicates stream.TumblingWindows' boundary rules while
// feeding tuples straight into the carried incremental state.
func (m *Monitor) runTumbling(src stream.Source, emit func(WindowResult) error) error {
	incs, err := m.suite.Incrementals()
	if err != nil {
		return err
	}
	m.incs = incs
	var (
		open       bool
		start, end time.Time
		count      int
	)
	for {
		t, err := src.Next()
		if err == io.EOF {
			if open {
				return m.flush(incs, start, end, count, emit)
			}
			return nil
		}
		if err != nil {
			if _, ok := stream.AsTupleError(err); ok {
				m.skipped.Add(1)
				continue
			}
			return err
		}
		if !open {
			open = true
			start, end = t.Arrival, t.Arrival.Add(m.width)
		}
		if !t.Arrival.Before(end) {
			if err := m.flush(incs, start, end, count, emit); err != nil {
				return err
			}
			count = 0
			// Advance far enough to contain the new tuple, skipping
			// empty windows; fall back to re-anchoring at t for
			// backwards-moving clocks — exactly TumblingWindows' rule.
			ns := end
			for !t.Arrival.Before(ns.Add(m.width)) {
				ns = ns.Add(m.width)
			}
			if t.Arrival.Before(ns) {
				ns = t.Arrival
			}
			start, end = ns, ns.Add(m.width)
		}
		count++
		for _, inc := range incs {
			inc.Observe(t)
		}
	}
}

// pane is one slide-sized partial of the sliding mode.
type pane struct {
	incs  []Incremental
	count int
}

// runSliding evaluates the sliding grid by pane merge: pane j covers
// [first + j·slide, first + (j+1)·slide); window i is the merge of
// panes i..i+k-1 and closes when a tuple lands in pane >= i+k.
func (m *Monitor) runSliding(src stream.Source, emit func(WindowResult) error) error {
	k := int(m.width / m.slide)
	panes := make(map[int]*pane)
	newPane := func() (*pane, error) {
		incs, err := m.suite.Incrementals()
		if err != nil {
			return nil, err
		}
		for _, inc := range incs {
			EnableMergeRecording(inc)
		}
		return &pane{incs: incs}, nil
	}
	var (
		haveFirst bool
		first     time.Time
		low       int // lowest pane not yet retired
		maxPane   int
	)
	// closeWindow merges panes i..i+k-1 into fresh accumulators and
	// emits the window if non-empty.
	closeWindow := func(i int) error {
		total := 0
		for j := i; j < i+k; j++ {
			if p := panes[j]; p != nil {
				total += p.count
			}
		}
		if total == 0 {
			return nil
		}
		t0 := time.Now()
		accs, err := m.suite.Incrementals()
		if err != nil {
			return err
		}
		for j := i; j < i+k; j++ {
			p := panes[j]
			if p == nil {
				continue
			}
			for x, acc := range accs {
				if err := acc.Merge(p.incs[x]); err != nil {
					return err
				}
			}
		}
		start := first.Add(time.Duration(i) * m.slide)
		wr := WindowResult{Start: start, End: start.Add(m.width), Tuples: total, Results: make([]Result, len(accs))}
		for x, acc := range accs {
			wr.Results[x] = acc.Snapshot()
		}
		m.observe(wr, time.Since(t0))
		return emit(wr)
	}
	// closeThrough closes windows low..upTo-1 and retires their panes.
	closeThrough := func(upTo int) error {
		for ; low < upTo; low++ {
			if err := closeWindow(low); err != nil {
				return err
			}
			delete(panes, low)
		}
		return nil
	}
	for {
		t, err := src.Next()
		if err == io.EOF {
			if !haveFirst {
				return nil
			}
			// Trailing partial windows: the batch grid emits windows
			// whose start is at or before the last arrival, i.e. up to
			// window maxPane.
			return closeThrough(maxPane + 1)
		}
		if err != nil {
			if _, ok := stream.AsTupleError(err); ok {
				m.skipped.Add(1)
				continue
			}
			return err
		}
		if !haveFirst {
			haveFirst = true
			first = t.Arrival
		}
		p := int(t.Arrival.Sub(first) / m.slide)
		if t.Arrival.Before(first) || p < low {
			// Late data whose pane has already been retired (or a clock
			// running backwards past the anchor): absorb into the oldest
			// open pane rather than dropping the tuple.
			p = low
		}
		if p > maxPane {
			maxPane = p
		}
		// Close every window fully covered before pane p opens.
		if err := closeThrough(p - k + 1); err != nil {
			return err
		}
		pn := panes[p]
		if pn == nil {
			if pn, err = newPane(); err != nil {
				return err
			}
			panes[p] = pn
		}
		pn.count++
		for _, inc := range pn.incs {
			inc.Observe(t)
		}
	}
}

// Verdict wire format ---------------------------------------------------

// verdictResult is the NDJSON rendering of one expectation Result.
type verdictResult struct {
	Expectation   string   `json:"expectation"`
	Evaluated     int      `json:"evaluated"`
	Unexpected    int      `json:"unexpected"`
	UnexpectedIDs []uint64 `json:"unexpected_ids,omitempty"`
	Observed      *float64 `json:"observed,omitempty"`
	Success       bool     `json:"success"`
}

// verdict is the NDJSON rendering of one WindowResult.
type verdict struct {
	Start      string          `json:"start"`
	End        string          `json:"end"`
	Tuples     int             `json:"tuples"`
	Unexpected int             `json:"unexpected"`
	Results    []verdictResult `json:"results"`
}

// verdictTime is the window-boundary timestamp encoding.
const verdictTime = time.RFC3339Nano

// WriteVerdict writes one WindowResult as a single NDJSON line — the
// format `dqcheck -follow` streams as windows close, and `dqcheck
// -window -ndjson` writes offline, so live and offline runs over the
// same stream are byte-comparable.
func WriteVerdict(w io.Writer, wr WindowResult) error {
	v := verdict{
		Start:      wr.Start.UTC().Format(verdictTime),
		End:        wr.End.UTC().Format(verdictTime),
		Tuples:     wr.Tuples,
		Unexpected: wr.Unexpected(),
		Results:    make([]verdictResult, len(wr.Results)),
	}
	for i, r := range wr.Results {
		vr := verdictResult{
			Expectation:   r.Expectation,
			Evaluated:     r.Evaluated,
			Unexpected:    r.Unexpected,
			UnexpectedIDs: r.UnexpectedIDs,
			Success:       r.Success,
		}
		if r.Observed != 0 && !math.IsNaN(r.Observed) && !math.IsInf(r.Observed, 0) {
			obsv := r.Observed
			vr.Observed = &obsv
		}
		v.Results[i] = vr
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dq: marshal verdict: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
