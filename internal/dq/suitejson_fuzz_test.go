// FuzzSuiteJSON drives the suite codec with arbitrary documents. Two
// properties: LoadSuite never panics on malformed input, and a document
// that loads reaches a serialisation fixed point — Save(Load(doc))
// re-loads to an equivalent suite whose second serialisation is
// byte-identical to the first. The fixed point is the contract dqcheck
// -profile relies on: a profiled suite written to disk must mean the
// same thing when read back.
package dq

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzSuiteJSON(f *testing.F) {
	seeds := []string{
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_not_be_null", "column": "a"}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_be_between", "column": "a", "min": 0, "max": 10}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_pair_values_a_to_be_greater_than_b", "a": "a", "b": "b", "or_equal": true}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_match_regex", "column": "label", "regex": "^x+$"}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_multicolumn_sum_to_equal", "columns": ["a", "b"], "total": 5, "tolerance": 0.001}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_be_increasing", "column": "ts", "strictly": true}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_be_unique", "column": "a"}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_be_in_set", "column": "label", "allowed": ["x", "y"]}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_be_of_type", "column": "a", "kind": "float"}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_mean_to_be_between", "column": "a", "min": 0, "max": 100}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_not_be_null", "column": "a",
		  "where": {"column": "label", "op": "==", "value": "check"}}]}`,
		`{"name": "s", "expectations": [{"expectation": "expect_column_values_to_not_be_null", "column": "a",
		  "where": {"column": "b", "op": "!=", "value": null}}]}`,
		`{`,
		`{"name": "empty", "expectations": []}`,
		`{"name": "s", "expectations": [{"expectation": "nope"}]}`,
		`null`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		suite, err := LoadSuite(bytes.NewReader(data))
		if err != nil {
			return // malformed input may be rejected, never panic
		}
		var first bytes.Buffer
		if err := SaveSuite(&first, suite); err != nil {
			t.Fatalf("loaded suite does not serialise: %v", err)
		}
		back, err := LoadSuite(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("serialised suite does not re-load: %v\n%s", err, first.Bytes())
		}
		if back.SuiteName != suite.SuiteName || len(back.Expectations) != len(suite.Expectations) {
			t.Fatalf("round trip changed shape: %q/%d vs %q/%d",
				back.SuiteName, len(back.Expectations), suite.SuiteName, len(suite.Expectations))
		}
		for i := range suite.Expectations {
			if back.Expectations[i].Name() != suite.Expectations[i].Name() {
				t.Fatalf("expectation %d renamed: %q vs %q",
					i, back.Expectations[i].Name(), suite.Expectations[i].Name())
			}
		}
		var second bytes.Buffer
		if err := SaveSuite(&second, back); err != nil {
			t.Fatalf("re-serialise: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("not a fixed point:\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
		// The loaded suite must also be runnable by the incremental
		// engine — every serialisable expectation has an incremental form.
		if _, err := suite.Incrementals(); err != nil {
			t.Fatalf("loaded suite has no incremental form: %v", err)
		}
	})
}

// TestSuiteJSONFixedPointCorpus runs the fixed-point property over the
// seed corpus without the fuzzer, so `go test` exercises it too.
func TestSuiteJSONFixedPointCorpus(t *testing.T) {
	docs := []string{
		`{"name": "all", "expectations": [
		  {"expectation": "expect_column_values_to_not_be_null", "column": "a"},
		  {"expectation": "expect_column_values_to_be_between", "column": "a", "min": 0, "max": 10},
		  {"expectation": "expect_column_values_to_be_in_set", "column": "label", "allowed": ["y", "x"]},
		  {"expectation": "expect_column_mean_to_be_between", "column": "a", "min": 0, "max": 100,
		   "where": {"column": "label", "op": "!=", "value": "skip"}}
		]}`,
	}
	for _, doc := range docs {
		suite, err := LoadSuite(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		var first, second bytes.Buffer
		if err := SaveSuite(&first, suite); err != nil {
			t.Fatal(err)
		}
		back, err := LoadSuite(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := SaveSuite(&second, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("not a fixed point:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
	}
}
