package dq

import (
	"time"

	"icewafl/internal/stream"
)

// WindowResult is the validation outcome of one event-time window: the
// continuous-monitoring analogue of a batch validation run. Streaming DQ
// monitoring is what a data-stream polluter's benchmark output is
// ultimately consumed by, so the engine supports it natively.
type WindowResult struct {
	Start, End time.Time
	Tuples     int
	Results    []Result
}

// Unexpected sums the unexpected counts across expectations.
func (w WindowResult) Unexpected() int { return TotalUnexpected(w.Results) }

// StreamingValidator validates a stream window by window against a
// suite, emitting one WindowResult per closed window. It runs on the
// incremental engine: per-tuple O(1)-amortised state instead of
// buffering each window and re-scanning it with the batch Check path,
// and cross-window chain state that is carried across boundaries — a
// decrease whose two tuples straddle a window boundary is flagged in
// the receiving window, where per-window batch re-validation is blind
// to it by construction.
type StreamingValidator struct {
	Suite  *Suite
	Window time.Duration
}

// NewStreamingValidator builds a windowed validator.
func NewStreamingValidator(suite *Suite, window time.Duration) *StreamingValidator {
	return &StreamingValidator{Suite: suite, Window: window}
}

// Run consumes src fully and returns one result per non-empty window. A
// non-positive Window is a configuration error.
func (v *StreamingValidator) Run(src stream.Source) ([]WindowResult, error) {
	m, err := NewMonitor(v.Suite, v.Window)
	if err != nil {
		return nil, err
	}
	var out []WindowResult
	err = m.Run(src, func(wr WindowResult) error {
		out = append(out, wr)
		return nil
	})
	return out, err
}

// WorstWindow returns the index of the window with the highest
// unexpected count (-1 for empty input) — the alarm a monitoring
// deployment would raise first.
func WorstWindow(results []WindowResult) int {
	worst, worstN := -1, -1
	for i, w := range results {
		if n := w.Unexpected(); n > worstN {
			worst, worstN = i, n
		}
	}
	return worst
}
