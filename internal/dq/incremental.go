// Incremental evaluation core: the stream-first counterpart of the batch
// Check path. Where Check re-scans a window's tuples from scratch, an
// Incremental folds tuples in one at a time with O(1)-amortised state —
// a running (sum, count) for the mean, a seen-set keyed on (kind, value)
// for uniqueness, a carried previous value for monotonicity — and
// snapshots a Result at window close. Incrementals are also *mergeable*:
// a sliding window of width k·slide is evaluated by merging k per-pane
// partials instead of re-scanning the full window for every slide, the
// pane pattern Stream DaQ and Bleach use for stream-native DQ state.
//
// Equivalence contract: folding a window's tuples through a fresh
// Incremental and snapshotting yields exactly the Result of the batch
// Check over the same tuples — same Evaluated, Unexpected,
// UnexpectedIDs, Observed, Success. This is pinned by the differential
// property test in incremental_test.go. The one deliberate divergence is
// Reset(): it clears per-window counts but *carries* cross-window state
// (the monotonicity chain's previous value), which is how the streaming
// monitor sees violations whose two tuples straddle a window boundary —
// invisible by construction to per-window batch re-validation.
package dq

import (
	"fmt"
	"sort"

	"icewafl/internal/stream"
)

// Incremental is per-tuple window state for one expectation.
//
// Observe folds one tuple in; Snapshot renders the state accumulated
// since the last Reset as a Result (without disturbing the state); Merge
// folds another partial of the same expectation in, as if other's tuples
// had been observed after the receiver's; Reset starts the next window,
// clearing per-window counts while carrying cross-window chain state.
type Incremental interface {
	// Name identifies the expectation this state evaluates.
	Name() string
	// Observe folds one tuple into the window state.
	Observe(t stream.Tuple)
	// Snapshot renders the accumulated state as a batch-equivalent
	// Result. It does not modify the state.
	Snapshot() Result
	// Merge appends another partial of the same expectation. The
	// receiver afterwards reflects the concatenation receiver ++ other.
	// Order-sensitive expectations (monotonicity) require the other
	// partial to have merge recording enabled via EnableMergeRecording.
	Merge(other Incremental) error
	// Reset clears per-window state for the next window. Cross-window
	// carry state (the monotonicity chain) survives deliberately.
	Reset()
}

// mergeRecorder is implemented by incrementals that must record their
// observed values to support Merge (order-sensitive state). Pane
// partials destined for merging enable it before observing.
type mergeRecorder interface {
	enableMergeRecording()
}

// EnableMergeRecording prepares inc for use as a mergeable pane partial.
// It is required only for order-sensitive expectations (BeIncreasing,
// including filtered forms); for everything else it is a no-op. Call it
// before the first Observe.
func EnableMergeRecording(inc Incremental) {
	if r, ok := inc.(mergeRecorder); ok {
		r.enableMergeRecording()
	}
}

// IncrementalOf builds the incremental form of e. Every expectation
// shipped by this package has one; free-form Filtered closures and
// declarative Where conditions wrap their inner expectation's state
// behind the row filter.
func IncrementalOf(e Expectation) (Incremental, error) {
	switch x := e.(type) {
	case NotBeNull:
		return newRowInc(x.Name(), x.eval), nil
	case BeBetween:
		return newRowInc(x.Name(), x.eval), nil
	case PairAGreaterThanB:
		return newRowInc(x.Name(), x.eval), nil
	case MatchRegex:
		return newRowInc(x.Name(), x.eval), nil
	case MulticolumnSumToEqual:
		return newRowInc(x.Name(), x.eval), nil
	case BeInSet:
		return newRowInc(x.Name(), x.eval), nil
	case BeOfType:
		return newRowInc(x.Name(), x.eval), nil
	case BeUnique:
		return &uniqueInc{name: x.Name(), column: x.Column, firsts: make(map[uniqueKey]posID)}, nil
	case BeIncreasing:
		return &chainInc{name: x.Name(), column: x.Column, strictly: x.Strictly}, nil
	case MeanToBeBetween:
		return &meanInc{name: x.Name(), column: x.Column, min: x.Min, max: x.Max}, nil
	case Filtered:
		inner, err := IncrementalOf(x.Inner)
		if err != nil {
			return nil, err
		}
		return &filteredInc{name: x.Name(), where: x.Where, inner: inner}, nil
	case Where:
		inner, err := IncrementalOf(x.Inner)
		if err != nil {
			return nil, err
		}
		return &filteredInc{name: x.Name(), where: x.Cond.Match, inner: inner}, nil
	}
	return nil, fmt.Errorf("dq: expectation %q has no incremental form", e.Name())
}

// Incrementals builds one incremental evaluator per suite expectation,
// in suite order.
func (s *Suite) Incrementals() ([]Incremental, error) {
	out := make([]Incremental, len(s.Expectations))
	for i, e := range s.Expectations {
		inc, err := IncrementalOf(e)
		if err != nil {
			return nil, err
		}
		out[i] = inc
	}
	return out, nil
}

// mergeMismatch is the shared type/name guard for Merge implementations.
func mergeMismatch(want, got Incremental) error {
	return fmt.Errorf("dq: cannot merge %q into %q: incompatible incremental state", got.Name(), want.Name())
}

// rowInc is the incremental form of every stateless row-wise
// expectation: the same eval predicate the batch rowCheck folds over,
// with running counts. Merge is pure concatenation — per-row verdicts
// do not depend on other rows.
type rowInc struct {
	name      string
	fn        func(stream.Tuple) (bool, bool)
	evaluated int
	ids       []uint64
}

func newRowInc(name string, fn func(stream.Tuple) (bool, bool)) *rowInc {
	return &rowInc{name: name, fn: fn}
}

// Name implements Incremental.
func (r *rowInc) Name() string { return r.name }

// Observe implements Incremental.
func (r *rowInc) Observe(t stream.Tuple) {
	evaluated, unexpected := r.fn(t)
	if !evaluated {
		return
	}
	r.evaluated++
	if unexpected {
		r.ids = append(r.ids, t.ID)
	}
}

// Snapshot implements Incremental.
func (r *rowInc) Snapshot() Result {
	return Result{
		Expectation:   r.name,
		Evaluated:     r.evaluated,
		Unexpected:    len(r.ids),
		UnexpectedIDs: append([]uint64(nil), r.ids...),
		Success:       len(r.ids) == 0,
	}
}

// Merge implements Incremental.
func (r *rowInc) Merge(other Incremental) error {
	o, ok := other.(*rowInc)
	if !ok || o.name != r.name {
		return mergeMismatch(r, other)
	}
	r.evaluated += o.evaluated
	r.ids = append(r.ids, o.ids...)
	return nil
}

// Reset implements Incremental.
func (r *rowInc) Reset() {
	r.evaluated = 0
	r.ids = nil
}

// posID records where in the partial's evaluated sequence a tuple sat,
// so merged duplicate lists interleave in true stream order.
type posID struct {
	pos int
	id  uint64
}

// uniqueInc is the incremental BeUnique: a seen-set keyed on
// (kind, canonical string) mapping each first occurrence to its
// position, plus the duplicate list. O(1) amortised per tuple; Merge is
// O(|other|) set-union with position-ordered interleaving of the
// duplicates the union exposes.
type uniqueInc struct {
	name      string
	column    string
	evaluated int
	firsts    map[uniqueKey]posID
	dups      []posID
}

// Name implements Incremental.
func (u *uniqueInc) Name() string { return u.name }

// Observe implements Incremental.
func (u *uniqueInc) Observe(t stream.Tuple) {
	v, ok := t.Get(u.column)
	if !ok || v.IsNull() {
		return
	}
	pos := u.evaluated
	u.evaluated++
	key := keyOf(v)
	if _, dup := u.firsts[key]; dup {
		u.dups = append(u.dups, posID{pos: pos, id: t.ID})
		return
	}
	u.firsts[key] = posID{pos: pos, id: t.ID}
}

// Snapshot implements Incremental.
func (u *uniqueInc) Snapshot() Result {
	res := Result{Expectation: u.name, Evaluated: u.evaluated, Unexpected: len(u.dups)}
	for _, d := range u.dups {
		res.UnexpectedIDs = append(res.UnexpectedIDs, d.id)
	}
	res.Success = res.Unexpected == 0
	return res
}

// Merge implements Incremental. A value that is a first occurrence in
// both partials is a duplicate in the concatenation: other's "first"
// demotes to a duplicate, interleaved with other's own duplicates in
// stream order.
func (u *uniqueInc) Merge(other Incremental) error {
	o, ok := other.(*uniqueInc)
	if !ok || o.name != u.name {
		return mergeMismatch(u, other)
	}
	off := u.evaluated
	demoted := make([]posID, 0, len(o.dups))
	for key, first := range o.firsts {
		if _, exists := u.firsts[key]; exists {
			demoted = append(demoted, posID{pos: first.pos + off, id: first.id})
			continue
		}
		u.firsts[key] = posID{pos: first.pos + off, id: first.id}
	}
	for _, d := range o.dups {
		demoted = append(demoted, posID{pos: d.pos + off, id: d.id})
	}
	sort.Slice(demoted, func(i, j int) bool { return demoted[i].pos < demoted[j].pos })
	u.dups = append(u.dups, demoted...)
	u.evaluated += o.evaluated
	return nil
}

// Reset implements Incremental.
func (u *uniqueInc) Reset() {
	u.evaluated = 0
	u.dups = nil
	u.firsts = make(map[uniqueKey]posID)
}

// obsVal is one recorded observation for order-sensitive merging.
type obsVal struct {
	id uint64
	v  stream.Value
}

// chainInc is the incremental BeIncreasing: the chainState batch Check
// folds over, carried across Reset so a decrease straddling a window
// boundary flags its tuple in the window that receives it. Monotonicity
// verdicts depend on evaluation order, so Merge replays the other
// partial's recorded observations through the receiver's chain — exact,
// O(|other|), and only available when the pane enabled merge recording.
type chainInc struct {
	name      string
	column    string
	strictly  bool
	st        chainState
	evaluated int
	ids       []uint64
	recording bool
	seen      []obsVal
}

// Name implements Incremental.
func (c *chainInc) Name() string { return c.name }

// enableMergeRecording implements mergeRecorder.
func (c *chainInc) enableMergeRecording() { c.recording = true }

// Observe implements Incremental.
func (c *chainInc) Observe(t stream.Tuple) {
	v, ok := t.Get(c.column)
	if !ok || v.IsNull() {
		return
	}
	c.evaluated++
	if c.recording {
		c.seen = append(c.seen, obsVal{id: t.ID, v: v})
	}
	if c.st.step(v, c.strictly) {
		c.ids = append(c.ids, t.ID)
	}
}

// Snapshot implements Incremental.
func (c *chainInc) Snapshot() Result {
	return Result{
		Expectation:   c.name,
		Evaluated:     c.evaluated,
		Unexpected:    len(c.ids),
		UnexpectedIDs: append([]uint64(nil), c.ids...),
		Success:       len(c.ids) == 0,
	}
}

// Merge implements Incremental.
func (c *chainInc) Merge(other Incremental) error {
	o, ok := other.(*chainInc)
	if !ok || o.name != c.name || o.strictly != c.strictly {
		return mergeMismatch(c, other)
	}
	if o.evaluated > 0 && !o.recording {
		return fmt.Errorf("dq: merging %q requires merge recording on the source partial", c.name)
	}
	for _, ov := range o.seen {
		c.evaluated++
		if c.recording {
			c.seen = append(c.seen, ov)
		}
		if c.st.step(ov.v, c.strictly) {
			c.ids = append(c.ids, ov.id)
		}
	}
	return nil
}

// Reset implements Incremental. The chain survives: carrying prev across
// window boundaries is the whole point of the streaming engine.
func (c *chainInc) Reset() {
	c.evaluated = 0
	c.ids = nil
	c.seen = c.seen[:0]
}

// ResetChain additionally forgets the carried chain — used when state is
// reused across independent runs rather than consecutive windows.
func (c *chainInc) ResetChain() {
	c.Reset()
	c.st = chainState{}
}

// meanInc is the incremental MeanToBeBetween: the same running meanState
// the batch Check folds, merged by field-wise addition.
type meanInc struct {
	name     string
	column   string
	min, max float64
	st       meanState
}

// Name implements Incremental.
func (m *meanInc) Name() string { return m.name }

// Observe implements Incremental.
func (m *meanInc) Observe(t stream.Tuple) { m.st.observe(t, m.column) }

// Snapshot implements Incremental.
func (m *meanInc) Snapshot() Result { return m.st.result(m.name, m.min, m.max) }

// Merge implements Incremental.
func (m *meanInc) Merge(other Incremental) error {
	o, ok := other.(*meanInc)
	if !ok || o.name != m.name {
		return mergeMismatch(m, other)
	}
	m.st.evaluated += o.st.evaluated
	m.st.finite += o.st.finite
	m.st.sum += o.st.sum
	m.st.badIDs = append(m.st.badIDs, o.st.badIDs...)
	return nil
}

// Reset implements Incremental.
func (m *meanInc) Reset() { m.st = meanState{} }

// filteredInc gates an inner incremental behind a row predicate — the
// incremental form of Filtered and Where.
type filteredInc struct {
	name  string
	where func(stream.Tuple) bool
	inner Incremental
}

// Name implements Incremental.
func (f *filteredInc) Name() string { return f.name }

// enableMergeRecording implements mergeRecorder by forwarding.
func (f *filteredInc) enableMergeRecording() { EnableMergeRecording(f.inner) }

// Observe implements Incremental.
func (f *filteredInc) Observe(t stream.Tuple) {
	if !f.where(t) {
		return
	}
	f.inner.Observe(t)
}

// Snapshot implements Incremental.
func (f *filteredInc) Snapshot() Result {
	res := f.inner.Snapshot()
	res.Expectation = f.name
	return res
}

// Merge implements Incremental.
func (f *filteredInc) Merge(other Incremental) error {
	o, ok := other.(*filteredInc)
	if !ok || o.name != f.name {
		return mergeMismatch(f, other)
	}
	return f.inner.Merge(o.inner)
}

// Reset implements Incremental.
func (f *filteredInc) Reset() { f.inner.Reset() }
