// Package dq implements the data-quality checking machinery the paper
// evaluates Icewafl against: a Great-Expectations-style engine in which
// users declare expectations — characteristics clean data should have —
// and validate a (polluted) stream against them. Each expectation flags
// the rows that violate it, so expected pollution counts can be compared
// with measured ones (Figure 4, Table 1, §3.1.3).
package dq

import (
	"fmt"
	"math"
	"regexp"

	"icewafl/internal/stream"
)

// Result is the outcome of validating one expectation over a stream.
type Result struct {
	// Expectation is the expectation's name.
	Expectation string
	// Evaluated is the number of rows the expectation inspected.
	Evaluated int
	// Unexpected is the number of rows that violated the expectation.
	Unexpected int
	// UnexpectedIDs lists the tuple IDs of violating rows, enabling
	// ground-truth comparison against the pollution log.
	UnexpectedIDs []uint64
	// Observed carries the measured aggregate for aggregate
	// expectations (e.g. the column mean); zero otherwise.
	Observed float64
	// Success reports whether the expectation held (no unexpected rows
	// / aggregate within bounds).
	Success bool
}

// UnexpectedFraction returns Unexpected / Evaluated (0 when nothing was
// evaluated).
func (r Result) UnexpectedFraction() float64 {
	if r.Evaluated == 0 {
		return 0
	}
	return float64(r.Unexpected) / float64(r.Evaluated)
}

// Expectation validates one data characteristic over a bounded stream.
type Expectation interface {
	// Name identifies the expectation, following Great Expectations
	// naming (expect_column_values_to_not_be_null, …).
	Name() string
	// Check validates tuples and returns per-row or aggregate results.
	Check(tuples []stream.Tuple) Result
}

// Suite is a named collection of expectations — the analogue of a Great
// Expectations expectation suite.
type Suite struct {
	SuiteName    string
	Expectations []Expectation
}

// NewSuite builds a suite.
func NewSuite(name string, es ...Expectation) *Suite {
	return &Suite{SuiteName: name, Expectations: es}
}

// Add appends an expectation.
func (s *Suite) Add(e Expectation) *Suite {
	s.Expectations = append(s.Expectations, e)
	return s
}

// Validate runs every expectation over the stream.
func (s *Suite) Validate(tuples []stream.Tuple) []Result {
	out := make([]Result, len(s.Expectations))
	for i, e := range s.Expectations {
		out[i] = e.Check(tuples)
	}
	return out
}

// TotalUnexpected sums the unexpected counts of results.
func TotalUnexpected(results []Result) int {
	n := 0
	for _, r := range results {
		n += r.Unexpected
	}
	return n
}

// rowCheck factors the common row-wise bookkeeping: fn returns
// (evaluated, unexpected) for each tuple.
func rowCheck(name string, tuples []stream.Tuple, fn func(stream.Tuple) (bool, bool)) Result {
	res := Result{Expectation: name}
	for _, t := range tuples {
		evaluated, unexpected := fn(t)
		if !evaluated {
			continue
		}
		res.Evaluated++
		if unexpected {
			res.Unexpected++
			res.UnexpectedIDs = append(res.UnexpectedIDs, t.ID)
		}
	}
	res.Success = res.Unexpected == 0
	return res
}

// NotBeNull expects the column to contain no NULLs —
// expect_column_values_to_not_be_null.
type NotBeNull struct {
	Column string
}

// Name implements Expectation.
func (e NotBeNull) Name() string { return "expect_column_values_to_not_be_null" }

// eval is the per-row predicate shared by the batch and incremental
// engines: (evaluated, unexpected).
func (e NotBeNull) eval(t stream.Tuple) (bool, bool) {
	v, ok := t.Get(e.Column)
	if !ok {
		return false, false
	}
	return true, v.IsNull()
}

// Check implements Expectation.
func (e NotBeNull) Check(tuples []stream.Tuple) Result {
	return rowCheck(e.Name(), tuples, e.eval)
}

// BeBetween expects numeric column values in [Min, Max] —
// expect_column_values_to_be_between. NULLs are not evaluated.
// Non-finite values (NaN, ±Inf) are always unexpected: NaN compares
// false against both bounds, so the naive `f < Min || f > Max` test
// would silently let it pass the range check.
type BeBetween struct {
	Column   string
	Min, Max float64
}

// Name implements Expectation.
func (e BeBetween) Name() string { return "expect_column_values_to_be_between" }

// eval is the per-row predicate shared by the batch and incremental
// engines.
func (e BeBetween) eval(t stream.Tuple) (bool, bool) {
	v, ok := t.Get(e.Column)
	if !ok || v.IsNull() {
		return false, false
	}
	f, isNum := v.AsFloat()
	if !isNum {
		return true, true
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return true, true
	}
	return true, f < e.Min || f > e.Max
}

// Check implements Expectation.
func (e BeBetween) Check(tuples []stream.Tuple) Result {
	return rowCheck(e.Name(), tuples, e.eval)
}

// PairAGreaterThanB expects column A's value to exceed column B's in
// every row — expect_column_pair_values_a_to_be_greater_than_b. Rows
// where either side is NULL are skipped. With OrEqual, ties pass.
type PairAGreaterThanB struct {
	A, B    string
	OrEqual bool
}

// Name implements Expectation.
func (e PairAGreaterThanB) Name() string {
	return "expect_column_pair_values_a_to_be_greater_than_b"
}

// eval is the per-row predicate shared by the batch and incremental
// engines.
func (e PairAGreaterThanB) eval(t stream.Tuple) (bool, bool) {
	a, okA := t.Get(e.A)
	b, okB := t.Get(e.B)
	if !okA || !okB || a.IsNull() || b.IsNull() {
		return false, false
	}
	cmp, comparable := a.Compare(b)
	if !comparable {
		return true, true
	}
	if e.OrEqual {
		return true, cmp < 0
	}
	return true, cmp <= 0
}

// Check implements Expectation.
func (e PairAGreaterThanB) Check(tuples []stream.Tuple) Result {
	return rowCheck(e.Name(), tuples, e.eval)
}

// MatchRegex expects the textual rendering of column values to match the
// pattern — expect_column_values_to_match_regex. NULLs are skipped.
type MatchRegex struct {
	Column  string
	Pattern *regexp.Regexp
}

// NewMatchRegex compiles pattern; it returns an error for bad patterns so
// configuration mistakes surface before validation.
func NewMatchRegex(column, pattern string) (MatchRegex, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return MatchRegex{}, fmt.Errorf("dq: bad regex %q: %w", pattern, err)
	}
	return MatchRegex{Column: column, Pattern: re}, nil
}

// Name implements Expectation.
func (e MatchRegex) Name() string { return "expect_column_values_to_match_regex" }

// eval is the per-row predicate shared by the batch and incremental
// engines.
func (e MatchRegex) eval(t stream.Tuple) (bool, bool) {
	v, ok := t.Get(e.Column)
	if !ok || v.IsNull() {
		return false, false
	}
	return true, !e.Pattern.MatchString(v.String())
}

// Check implements Expectation.
func (e MatchRegex) Check(tuples []stream.Tuple) Result {
	return rowCheck(e.Name(), tuples, e.eval)
}

// MulticolumnSumToEqual expects the sum of the listed numeric columns to
// equal Total in every row — expect_multicolumn_sum_to_equal. Rows with
// any NULL among the columns are skipped.
type MulticolumnSumToEqual struct {
	Columns []string
	Total   float64
	// Tolerance allows for floating-point slack; exact zero means exact
	// comparison.
	Tolerance float64
}

// Name implements Expectation.
func (e MulticolumnSumToEqual) Name() string { return "expect_multicolumn_sum_to_equal" }

// eval is the per-row predicate shared by the batch and incremental
// engines.
func (e MulticolumnSumToEqual) eval(t stream.Tuple) (bool, bool) {
	sum := 0.0
	for _, c := range e.Columns {
		v, ok := t.Get(c)
		if !ok || v.IsNull() {
			return false, false
		}
		f, isNum := v.AsFloat()
		if !isNum {
			return true, true
		}
		sum += f
	}
	diff := sum - e.Total
	if diff < 0 {
		diff = -diff
	}
	// A NaN among the addends makes diff NaN, which compares false
	// against the tolerance — catch it explicitly.
	if math.IsNaN(diff) {
		return true, true
	}
	return true, diff > e.Tolerance
}

// Check implements Expectation.
func (e MulticolumnSumToEqual) Check(tuples []stream.Tuple) Result {
	return rowCheck(e.Name(), tuples, e.eval)
}

// BeIncreasing expects column values to increase along the stream —
// expect_column_values_to_be_increasing. A row is unexpected when its
// value is below (or, with Strictly, not above) its predecessor's. This
// is the expectation the paper uses on the Time attribute to find
// delayed tuples. NULLs are skipped and do not break the chain.
type BeIncreasing struct {
	Column   string
	Strictly bool
}

// Name implements Expectation.
func (e BeIncreasing) Name() string { return "expect_column_values_to_be_increasing" }

// chainState is the monotonicity chain shared by the batch and
// incremental engines: the last accepted value. The incremental engine
// deliberately carries it across window boundaries, which is what makes
// boundary-straddling decreases visible to the streaming monitor.
type chainState struct {
	prev     stream.Value
	havePrev bool
}

// step evaluates v against the chain and reports whether it is
// unexpected. prev advances only when v is accepted: a single delayed
// tuple flags itself, not its successors.
func (s *chainState) step(v stream.Value, strictly bool) bool {
	if s.havePrev {
		cmp, comparable := v.Compare(s.prev)
		if !comparable || cmp < 0 || (strictly && cmp == 0) {
			return true
		}
	}
	s.prev = v
	s.havePrev = true
	return false
}

// Check implements Expectation.
func (e BeIncreasing) Check(tuples []stream.Tuple) Result {
	res := Result{Expectation: e.Name()}
	var st chainState
	for _, t := range tuples {
		v, ok := t.Get(e.Column)
		if !ok || v.IsNull() {
			continue
		}
		res.Evaluated++
		if st.step(v, e.Strictly) {
			res.Unexpected++
			res.UnexpectedIDs = append(res.UnexpectedIDs, t.ID)
		}
	}
	res.Success = res.Unexpected == 0
	return res
}

// BeUnique expects no duplicate values in the column —
// expect_column_values_to_be_unique. Every occurrence beyond the first of
// a value is unexpected. NULLs are skipped. The seen-set is keyed on
// (kind, canonical rendering), so values of different kinds that render
// identically — int 1 vs string "1" — are not false duplicates.
type BeUnique struct {
	Column string
}

// uniqueKey identifies a value by kind and canonical string, so
// cross-kind renderings never collide.
type uniqueKey struct {
	kind stream.Kind
	s    string
}

func keyOf(v stream.Value) uniqueKey { return uniqueKey{kind: v.Kind(), s: v.String()} }

// Name implements Expectation.
func (e BeUnique) Name() string { return "expect_column_values_to_be_unique" }

// Check implements Expectation.
func (e BeUnique) Check(tuples []stream.Tuple) Result {
	seen := make(map[uniqueKey]bool)
	return rowCheck(e.Name(), tuples, func(t stream.Tuple) (bool, bool) {
		v, ok := t.Get(e.Column)
		if !ok || v.IsNull() {
			return false, false
		}
		key := keyOf(v)
		if seen[key] {
			return true, true
		}
		seen[key] = true
		return true, false
	})
}

// BeInSet expects column values to come from the allowed set —
// expect_column_values_to_be_in_set. NULLs are skipped.
type BeInSet struct {
	Column  string
	Allowed map[string]bool
}

// Name implements Expectation.
func (e BeInSet) Name() string { return "expect_column_values_to_be_in_set" }

// eval is the per-row predicate shared by the batch and incremental
// engines.
func (e BeInSet) eval(t stream.Tuple) (bool, bool) {
	v, ok := t.Get(e.Column)
	if !ok || v.IsNull() {
		return false, false
	}
	return true, !e.Allowed[v.String()]
}

// Check implements Expectation.
func (e BeInSet) Check(tuples []stream.Tuple) Result {
	return rowCheck(e.Name(), tuples, e.eval)
}

// BeOfType expects every non-null value in the column to have the given
// kind — expect_column_values_to_be_of_type.
type BeOfType struct {
	Column string
	Kind   stream.Kind
}

// Name implements Expectation.
func (e BeOfType) Name() string { return "expect_column_values_to_be_of_type" }

// eval is the per-row predicate shared by the batch and incremental
// engines.
func (e BeOfType) eval(t stream.Tuple) (bool, bool) {
	v, ok := t.Get(e.Column)
	if !ok || v.IsNull() {
		return false, false
	}
	return true, v.Kind() != e.Kind
}

// Check implements Expectation.
func (e BeOfType) Check(tuples []stream.Tuple) Result {
	return rowCheck(e.Name(), tuples, e.eval)
}

// MeanToBeBetween expects the column mean in [Min, Max] — the aggregate
// expectation expect_column_mean_to_be_between. NULLs are excluded from
// the mean. Non-finite values (NaN, ±Inf) are *reported* — counted
// evaluated, flagged unexpected with their tuple IDs — rather than
// silently folded into the sum, where a single NaN would poison the mean
// (and, because NaN fails every comparison, fail the expectation without
// ever saying which row did it).
type MeanToBeBetween struct {
	Column   string
	Min, Max float64
}

// meanState is the running aggregate shared by the batch and incremental
// engines: O(1) per tuple, mergeable by field-wise addition.
type meanState struct {
	evaluated int
	finite    int
	sum       float64
	badIDs    []uint64
}

// observe folds one tuple into the aggregate.
func (m *meanState) observe(t stream.Tuple, column string) {
	v, ok := t.Get(column)
	if !ok || v.IsNull() {
		return
	}
	f, isNum := v.AsFloat()
	if !isNum {
		return
	}
	m.evaluated++
	if math.IsNaN(f) || math.IsInf(f, 0) {
		m.badIDs = append(m.badIDs, t.ID)
		return
	}
	m.finite++
	m.sum += f
}

// result renders the aggregate as a Result against [min, max].
func (m *meanState) result(name string, min, max float64) Result {
	res := Result{Expectation: name, Evaluated: m.evaluated, Unexpected: len(m.badIDs)}
	res.UnexpectedIDs = append([]uint64(nil), m.badIDs...)
	if m.finite > 0 {
		res.Observed = m.sum / float64(m.finite)
	}
	res.Success = m.finite > 0 && res.Unexpected == 0 && res.Observed >= min && res.Observed <= max
	return res
}

// Name implements Expectation.
func (e MeanToBeBetween) Name() string { return "expect_column_mean_to_be_between" }

// Check implements Expectation.
func (e MeanToBeBetween) Check(tuples []stream.Tuple) Result {
	var st meanState
	for _, t := range tuples {
		st.observe(t, e.Column)
	}
	return st.result(e.Name(), e.Min, e.Max)
}
