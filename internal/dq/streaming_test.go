package dq

import (
	"testing"
	"time"

	"icewafl/internal/stream"
)

func TestStreamingValidator(t *testing.T) {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	var tuples []stream.Tuple
	for i := 0; i < 60; i++ {
		v := stream.Float(1)
		// Minutes 20-39 carry nulls: the middle window is dirty.
		if i >= 20 && i < 40 && i%2 == 0 {
			v = stream.Null()
		}
		tp := stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			v, stream.Float(0), stream.Float(0), stream.Str("x"),
		})
		tp.ID = uint64(i + 1)
		tp.EventTime, _ = tp.Timestamp()
		tp.Arrival = tp.EventTime
		tuples = append(tuples, tp)
	}
	v := NewStreamingValidator(NewSuite("mon", NotBeNull{Column: "a"}), 20*time.Minute)
	results, err := v.Run(stream.NewSliceSource(schema, tuples))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d windows", len(results))
	}
	if results[0].Unexpected() != 0 || results[2].Unexpected() != 0 {
		t.Fatalf("clean windows dirty: %d, %d", results[0].Unexpected(), results[2].Unexpected())
	}
	if results[1].Unexpected() != 10 {
		t.Fatalf("dirty window found %d errors, want 10", results[1].Unexpected())
	}
	if results[1].Tuples != 20 {
		t.Fatalf("window size %d", results[1].Tuples)
	}
	if WorstWindow(results) != 1 {
		t.Fatalf("worst window %d", WorstWindow(results))
	}
	if WorstWindow(nil) != -1 {
		t.Fatal("worst of empty")
	}
}
