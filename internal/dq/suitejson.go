package dq

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"icewafl/internal/stream"
)

// SuiteFile is the JSON representation of an expectation suite, mirroring
// how Great Expectations persists suites as JSON documents. Example:
//
//	{
//	  "name": "wearable-checks",
//	  "expectations": [
//	    {"expectation": "expect_column_values_to_not_be_null", "column": "BPM"},
//	    {"expectation": "expect_column_pair_values_a_to_be_greater_than_b",
//	     "a": "Steps", "b": "Distance", "or_equal": true}
//	  ]
//	}
type SuiteFile struct {
	Name         string            `json:"name"`
	Expectations []ExpectationSpec `json:"expectations"`
}

// ExpectationSpec configures one expectation.
type ExpectationSpec struct {
	Expectation string `json:"expectation"`

	Column  string   `json:"column,omitempty"`
	A       string   `json:"a,omitempty"`
	B       string   `json:"b,omitempty"`
	Columns []string `json:"columns,omitempty"`

	Min       *float64 `json:"min,omitempty"`
	Max       *float64 `json:"max,omitempty"`
	Total     float64  `json:"total,omitempty"`
	Tolerance float64  `json:"tolerance,omitempty"`

	Regex    string   `json:"regex,omitempty"`
	Strictly bool     `json:"strictly,omitempty"`
	OrEqual  bool     `json:"or_equal,omitempty"`
	Allowed  []string `json:"allowed,omitempty"`
	Kind     string   `json:"kind,omitempty"`

	// Where restricts the expectation to matching rows (Great
	// Expectations' row_condition).
	Where *WhereSpec `json:"where,omitempty"`
}

// WhereSpec is the JSON form of a RowCondition.
type WhereSpec struct {
	Column string          `json:"column"`
	Op     string          `json:"op"`
	Value  json.RawMessage `json:"value"`
}

// LoadSuite parses a JSON suite document into an executable Suite.
func LoadSuite(r io.Reader) (*Suite, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sf SuiteFile
	if err := dec.Decode(&sf); err != nil {
		return nil, fmt.Errorf("dq: parse suite: %w", err)
	}
	if len(sf.Expectations) == 0 {
		return nil, fmt.Errorf("dq: suite %q has no expectations", sf.Name)
	}
	suite := NewSuite(sf.Name)
	for i, spec := range sf.Expectations {
		where := spec.Where
		spec.Where = nil
		e, err := buildExpectation(spec)
		if err != nil {
			return nil, fmt.Errorf("dq: expectation %d: %w", i, err)
		}
		if where != nil {
			cond, err := buildRowCondition(*where)
			if err != nil {
				return nil, fmt.Errorf("dq: expectation %d: %w", i, err)
			}
			e = Where{Inner: e, Cond: cond}
		}
		suite.Add(e)
	}
	return suite, nil
}

func buildRowCondition(spec WhereSpec) (RowCondition, error) {
	if spec.Column == "" {
		return RowCondition{}, fmt.Errorf("where needs a column")
	}
	switch spec.Op {
	case "==", "!=", "<", "<=", ">", ">=":
	default:
		return RowCondition{}, fmt.Errorf("where has unknown op %q", spec.Op)
	}
	v, err := parseScalar(spec.Value)
	if err != nil {
		return RowCondition{}, fmt.Errorf("where value: %w", err)
	}
	return RowCondition{Column: spec.Column, Op: spec.Op, Value: v}, nil
}

// parseScalar maps a raw JSON scalar onto a stream.Value.
func parseScalar(raw json.RawMessage) (stream.Value, error) {
	if len(raw) == 0 {
		return stream.Null(), fmt.Errorf("missing value")
	}
	var v interface{}
	if err := json.Unmarshal(raw, &v); err != nil {
		return stream.Null(), err
	}
	switch x := v.(type) {
	case nil:
		return stream.Null(), nil
	case float64:
		return stream.Float(x), nil
	case bool:
		return stream.Bool(x), nil
	case string:
		return stream.Str(x), nil
	}
	return stream.Null(), fmt.Errorf("unsupported scalar %s", string(raw))
}

// rawScalar renders a stream.Value back as raw JSON.
func rawScalar(v stream.Value) (json.RawMessage, error) {
	switch v.Kind() {
	case stream.KindNull:
		return json.RawMessage("null"), nil
	case stream.KindFloat, stream.KindInt:
		f, _ := v.AsFloat()
		return json.Marshal(f)
	case stream.KindBool:
		b, _ := v.AsBool()
		return json.Marshal(b)
	case stream.KindString:
		s, _ := v.AsString()
		return json.Marshal(s)
	}
	return nil, fmt.Errorf("dq: where value of kind %v is not serialisable", v.Kind())
}

// SaveSuite serialises a suite back into the JSON document format, so
// profiled suites (see Profile) can be persisted and reused by dqcheck.
func SaveSuite(w io.Writer, suite *Suite) error {
	sf := SuiteFile{Name: suite.SuiteName}
	for _, e := range suite.Expectations {
		spec, err := specOf(e)
		if err != nil {
			return err
		}
		sf.Expectations = append(sf.Expectations, spec)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&sf); err != nil {
		return fmt.Errorf("dq: save suite: %w", err)
	}
	return nil
}

func specOf(e Expectation) (ExpectationSpec, error) {
	switch x := e.(type) {
	case Where:
		inner, err := specOf(x.Inner)
		if err != nil {
			return ExpectationSpec{}, err
		}
		raw, err := rawScalar(x.Cond.Value)
		if err != nil {
			return ExpectationSpec{}, err
		}
		inner.Where = &WhereSpec{Column: x.Cond.Column, Op: x.Cond.Op, Value: raw}
		return inner, nil
	case NotBeNull:
		return ExpectationSpec{Expectation: x.Name(), Column: x.Column}, nil
	case BeBetween:
		min, max := x.Min, x.Max
		return ExpectationSpec{Expectation: x.Name(), Column: x.Column, Min: &min, Max: &max}, nil
	case PairAGreaterThanB:
		return ExpectationSpec{Expectation: x.Name(), A: x.A, B: x.B, OrEqual: x.OrEqual}, nil
	case MatchRegex:
		return ExpectationSpec{Expectation: x.Name(), Column: x.Column, Regex: x.Pattern.String()}, nil
	case MulticolumnSumToEqual:
		return ExpectationSpec{Expectation: x.Name(), Columns: x.Columns, Total: x.Total, Tolerance: x.Tolerance}, nil
	case BeIncreasing:
		return ExpectationSpec{Expectation: x.Name(), Column: x.Column, Strictly: x.Strictly}, nil
	case BeUnique:
		return ExpectationSpec{Expectation: x.Name(), Column: x.Column}, nil
	case BeInSet:
		allowed := make([]string, 0, len(x.Allowed))
		for v := range x.Allowed {
			allowed = append(allowed, v)
		}
		sort.Strings(allowed)
		return ExpectationSpec{Expectation: x.Name(), Column: x.Column, Allowed: allowed}, nil
	case BeOfType:
		return ExpectationSpec{Expectation: x.Name(), Column: x.Column, Kind: x.Kind.String()}, nil
	case MeanToBeBetween:
		min, max := x.Min, x.Max
		return ExpectationSpec{Expectation: x.Name(), Column: x.Column, Min: &min, Max: &max}, nil
	}
	return ExpectationSpec{}, fmt.Errorf("dq: expectation %q is not serialisable", e.Name())
}

func buildExpectation(spec ExpectationSpec) (Expectation, error) {
	needColumn := func() (string, error) {
		if spec.Column == "" {
			return "", fmt.Errorf("%s needs a column", spec.Expectation)
		}
		return spec.Column, nil
	}
	switch spec.Expectation {
	case "expect_column_values_to_not_be_null":
		col, err := needColumn()
		if err != nil {
			return nil, err
		}
		return NotBeNull{Column: col}, nil
	case "expect_column_values_to_be_between":
		col, err := needColumn()
		if err != nil {
			return nil, err
		}
		if spec.Min == nil || spec.Max == nil {
			return nil, fmt.Errorf("%s needs min and max", spec.Expectation)
		}
		return BeBetween{Column: col, Min: *spec.Min, Max: *spec.Max}, nil
	case "expect_column_pair_values_a_to_be_greater_than_b":
		if spec.A == "" || spec.B == "" {
			return nil, fmt.Errorf("%s needs a and b", spec.Expectation)
		}
		return PairAGreaterThanB{A: spec.A, B: spec.B, OrEqual: spec.OrEqual}, nil
	case "expect_column_values_to_match_regex":
		col, err := needColumn()
		if err != nil {
			return nil, err
		}
		return NewMatchRegex(col, spec.Regex)
	case "expect_multicolumn_sum_to_equal":
		if len(spec.Columns) == 0 {
			return nil, fmt.Errorf("%s needs columns", spec.Expectation)
		}
		return MulticolumnSumToEqual{Columns: spec.Columns, Total: spec.Total, Tolerance: spec.Tolerance}, nil
	case "expect_column_values_to_be_increasing":
		col, err := needColumn()
		if err != nil {
			return nil, err
		}
		return BeIncreasing{Column: col, Strictly: spec.Strictly}, nil
	case "expect_column_values_to_be_unique":
		col, err := needColumn()
		if err != nil {
			return nil, err
		}
		return BeUnique{Column: col}, nil
	case "expect_column_values_to_be_in_set":
		col, err := needColumn()
		if err != nil {
			return nil, err
		}
		if len(spec.Allowed) == 0 {
			return nil, fmt.Errorf("%s needs an allowed set", spec.Expectation)
		}
		allowed := make(map[string]bool, len(spec.Allowed))
		for _, v := range spec.Allowed {
			allowed[v] = true
		}
		return BeInSet{Column: col, Allowed: allowed}, nil
	case "expect_column_values_to_be_of_type":
		col, err := needColumn()
		if err != nil {
			return nil, err
		}
		kind, err := stream.ParseKind(spec.Kind)
		if err != nil {
			return nil, err
		}
		return BeOfType{Column: col, Kind: kind}, nil
	case "expect_column_mean_to_be_between":
		col, err := needColumn()
		if err != nil {
			return nil, err
		}
		if spec.Min == nil || spec.Max == nil {
			return nil, fmt.Errorf("%s needs min and max", spec.Expectation)
		}
		return MeanToBeBetween{Column: col, Min: *spec.Min, Max: *spec.Max}, nil
	}
	return nil, fmt.Errorf("unknown expectation %q", spec.Expectation)
}
