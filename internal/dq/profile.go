package dq

import (
	"math"

	"icewafl/internal/stats"
	"icewafl/internal/stream"
)

// Profile derives an expectation suite from a sample of clean data, the
// way Great Expectations' profiler bootstraps suites: whatever held on
// the clean stream becomes an expectation for future (possibly polluted)
// data. Generated expectations per attribute:
//
//   - not_be_null where the clean sample had no NULLs;
//   - be_between over a slightly widened observed range (numeric);
//   - be_in_set over the observed categories (strings, when few);
//   - be_of_type for every attribute;
//   - values_to_be_increasing on the timestamp attribute.
//
// Margin widens numeric ranges by the given fraction of the observed
// spread (default 0.1) so natural drift does not trip the suite.
func Profile(name string, tuples []stream.Tuple, margin float64) *Suite {
	suite := NewSuite(name)
	if len(tuples) == 0 {
		return suite
	}
	if margin <= 0 {
		margin = 0.1
	}
	schema := tuples[0].Schema()
	const maxCategories = 32

	for i := 0; i < schema.Len(); i++ {
		field := schema.Field(i)
		var numeric []float64
		categories := map[string]bool{}
		nulls := 0
		kinds := map[stream.Kind]bool{}
		for _, t := range tuples {
			v := t.At(i)
			if v.IsNull() {
				nulls++
				continue
			}
			kinds[v.Kind()] = true
			if f, ok := v.AsFloat(); ok {
				numeric = append(numeric, f)
			}
			if s, ok := v.AsString(); ok {
				if len(categories) <= maxCategories {
					categories[s] = true
				}
			}
		}
		if nulls == 0 {
			suite.Add(NotBeNull{Column: field.Name})
		}
		if len(kinds) == 1 {
			for k := range kinds {
				suite.Add(BeOfType{Column: field.Name, Kind: k})
			}
		}
		if len(numeric) > 0 && field.Kind != stream.KindTime {
			min, max, _ := stats.MinMax(numeric)
			pad := (max - min) * margin
			if pad == 0 {
				pad = math.Max(math.Abs(max)*margin, 1)
			}
			suite.Add(BeBetween{Column: field.Name, Min: min - pad, Max: max + pad})
		}
		if field.Kind == stream.KindString && len(categories) > 0 && len(categories) <= maxCategories {
			allowed := make(map[string]bool, len(categories))
			for c := range categories {
				allowed[c] = true
			}
			suite.Add(BeInSet{Column: field.Name, Allowed: allowed})
		}
	}
	suite.Add(BeIncreasing{Column: schema.Timestamp()})
	return suite
}
