package dq

import (
	"testing"
	"time"

	"icewafl/internal/stream"
)

var schema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "a", Kind: stream.KindFloat},
	stream.Field{Name: "b", Kind: stream.KindFloat},
	stream.Field{Name: "c", Kind: stream.KindFloat},
	stream.Field{Name: "label", Kind: stream.KindString},
)

func row(id uint64, hour int, a, b, c stream.Value, label string) stream.Tuple {
	ts := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(hour) * time.Hour)
	t := stream.NewTuple(schema, []stream.Value{stream.Time(ts), a, b, c, stream.Str(label)})
	t.ID = id
	t.EventTime = ts
	return t
}

func f(v float64) stream.Value { return stream.Float(v) }

func TestNotBeNull(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(1), f(1), f(1), "x"),
		row(2, 1, stream.Null(), f(1), f(1), "x"),
		row(3, 2, f(3), f(1), f(1), "x"),
	}
	res := NotBeNull{Column: "a"}.Check(rows)
	if res.Evaluated != 3 || res.Unexpected != 1 || res.Success {
		t.Fatalf("%+v", res)
	}
	if len(res.UnexpectedIDs) != 1 || res.UnexpectedIDs[0] != 2 {
		t.Fatalf("ids %v", res.UnexpectedIDs)
	}
	if got := res.UnexpectedFraction(); got != 1.0/3 {
		t.Fatalf("fraction %g", got)
	}
	// Missing column: nothing evaluated, success.
	res = NotBeNull{Column: "zzz"}.Check(rows)
	if res.Evaluated != 0 || !res.Success {
		t.Fatalf("missing column: %+v", res)
	}
}

func TestBeBetween(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(5), f(0), f(0), "x"),
		row(2, 1, f(11), f(0), f(0), "x"),
		row(3, 2, f(-1), f(0), f(0), "x"),
		row(4, 3, stream.Null(), f(0), f(0), "x"), // skipped
	}
	res := BeBetween{Column: "a", Min: 0, Max: 10}.Check(rows)
	if res.Evaluated != 3 || res.Unexpected != 2 {
		t.Fatalf("%+v", res)
	}
	// Non-numeric value counts as violation.
	res = BeBetween{Column: "label", Min: 0, Max: 10}.Check(rows[:1])
	if res.Unexpected != 1 {
		t.Fatalf("non-numeric: %+v", res)
	}
}

func TestPairAGreaterThanB(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(5), f(3), f(0), "x"),          // pass
		row(2, 1, f(3), f(5), f(0), "x"),          // fail
		row(3, 2, f(4), f(4), f(0), "x"),          // tie
		row(4, 3, stream.Null(), f(1), f(0), "x"), // skipped
		row(5, 4, f(1), stream.Null(), f(0), "x"), // skipped
	}
	strict := PairAGreaterThanB{A: "a", B: "b"}
	res := strict.Check(rows)
	if res.Evaluated != 3 || res.Unexpected != 2 { // tie fails strictly
		t.Fatalf("strict: %+v", res)
	}
	orEq := PairAGreaterThanB{A: "a", B: "b", OrEqual: true}
	res = orEq.Check(rows)
	if res.Unexpected != 1 {
		t.Fatalf("or-equal: %+v", res)
	}
}

func TestMatchRegex(t *testing.T) {
	re, err := NewMatchRegex("label", `^\d+(\.\d{2}[1-9])?$`)
	if err != nil {
		t.Fatal(err)
	}
	rows := []stream.Tuple{
		row(1, 0, f(0), f(0), f(0), "42"),
		row(2, 1, f(0), f(0), f(0), "42.123"),
		row(3, 2, f(0), f(0), f(0), "42.12"),  // precision 2: fails
		row(4, 3, f(0), f(0), f(0), "42.120"), // trailing zero: fails
	}
	res := re.Check(rows)
	if res.Unexpected != 2 {
		t.Fatalf("%+v", res)
	}
	if _, err := NewMatchRegex("label", "("); err == nil {
		t.Fatal("bad regex accepted")
	}
}

func TestMatchRegexOnFloatColumn(t *testing.T) {
	// The regex applies to the value's textual rendering.
	re, _ := NewMatchRegex("a", `^\d+(\.\d{2}[1-9])?$`)
	rows := []stream.Tuple{
		row(1, 0, f(4.236), f(0), f(0), ""),
		row(2, 1, f(4.24), f(0), f(0), ""),
		row(3, 2, f(18), f(0), f(0), ""),
	}
	res := re.Check(rows)
	if res.Unexpected != 1 {
		t.Fatalf("float regex: %+v, ids %v", res, res.UnexpectedIDs)
	}
}

func TestMulticolumnSumToEqual(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(1), f(2), f(3), "x"),          // sum 6
		row(2, 1, f(2), f(2), f(2), "x"),          // sum 6
		row(3, 2, f(1), f(1), f(1), "x"),          // sum 3: fail
		row(4, 3, stream.Null(), f(3), f(3), "x"), // skipped
	}
	e := MulticolumnSumToEqual{Columns: []string{"a", "b", "c"}, Total: 6}
	res := e.Check(rows)
	if res.Evaluated != 3 || res.Unexpected != 1 || res.UnexpectedIDs[0] != 3 {
		t.Fatalf("%+v", res)
	}
	// Tolerance.
	tol := MulticolumnSumToEqual{Columns: []string{"a", "b", "c"}, Total: 3.0000001, Tolerance: 1e-3}
	if r := tol.Check(rows[2:3]); r.Unexpected != 0 {
		t.Fatalf("tolerance: %+v", r)
	}
}

func TestBeIncreasing(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(1), f(0), f(0), "x"),
		row(2, 1, f(2), f(0), f(0), "x"),
		row(3, 2, f(1.5), f(0), f(0), "x"), // dips: fail
		row(4, 3, f(3), f(0), f(0), "x"),   // above the kept prev (2): pass
		row(5, 4, f(3), f(0), f(0), "x"),   // equal: pass unless strict
	}
	res := BeIncreasing{Column: "a"}.Check(rows)
	if res.Unexpected != 1 || res.UnexpectedIDs[0] != 3 {
		t.Fatalf("non-strict: %+v", res)
	}
	res = BeIncreasing{Column: "a", Strictly: true}.Check(rows)
	if res.Unexpected != 2 {
		t.Fatalf("strict: %+v", res)
	}
}

func TestBeIncreasingDetectsDelayedTuple(t *testing.T) {
	// A tuple whose timestamp is older than its neighbours — the
	// §3.1.3 detection on the Time attribute.
	ts := func(h int) stream.Value {
		return stream.Time(time.Date(2016, 2, 26, h, 0, 0, 0, time.UTC))
	}
	mk := func(id uint64, v stream.Value) stream.Tuple {
		t := stream.NewTuple(schema, []stream.Value{v, f(0), f(0), f(0), stream.Str("")})
		t.ID = id
		return t
	}
	rows := []stream.Tuple{mk(1, ts(12)), mk(2, ts(14)), mk(3, ts(13)), mk(4, ts(15))}
	res := BeIncreasing{Column: "ts"}.Check(rows)
	if res.Unexpected != 1 || res.UnexpectedIDs[0] != 3 {
		t.Fatalf("delayed tuple: %+v", res)
	}
}

func TestBeUnique(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(1), f(0), f(0), "x"),
		row(2, 1, f(2), f(0), f(0), "x"),
		row(3, 2, f(1), f(0), f(0), "x"), // duplicate of row 1
		row(4, 3, f(1), f(0), f(0), "x"), // another duplicate
	}
	res := BeUnique{Column: "a"}.Check(rows)
	if res.Unexpected != 2 {
		t.Fatalf("%+v", res)
	}
}

func TestBeInSet(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(0), f(0), f(0), "hot"),
		row(2, 1, f(0), f(0), f(0), "cold"),
		row(3, 2, f(0), f(0), f(0), "warm"),
	}
	e := BeInSet{Column: "label", Allowed: map[string]bool{"hot": true, "cold": true}}
	res := e.Check(rows)
	if res.Unexpected != 1 || res.UnexpectedIDs[0] != 3 {
		t.Fatalf("%+v", res)
	}
}

func TestBeOfType(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(1), f(0), f(0), "x"),
		row(2, 1, stream.Int(2), f(0), f(0), "x"),
	}
	res := BeOfType{Column: "a", Kind: stream.KindFloat}.Check(rows)
	if res.Unexpected != 1 || res.UnexpectedIDs[0] != 2 {
		t.Fatalf("%+v", res)
	}
}

func TestMeanToBeBetween(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(10), f(0), f(0), "x"),
		row(2, 1, f(20), f(0), f(0), "x"),
		row(3, 2, stream.Null(), f(0), f(0), "x"),
	}
	res := MeanToBeBetween{Column: "a", Min: 14, Max: 16}.Check(rows)
	if !res.Success || res.Observed != 15 || res.Evaluated != 2 {
		t.Fatalf("%+v", res)
	}
	res = MeanToBeBetween{Column: "a", Min: 16, Max: 20}.Check(rows)
	if res.Success {
		t.Fatalf("out-of-range mean passed: %+v", res)
	}
}

func TestFiltered(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, f(0), f(5), f(0), "check"), // filtered in, sum != 0 → fail
		row(2, 1, f(0), f(0), f(0), "check"), // filtered in, sum == 0 → pass
		row(3, 2, f(0), f(9), f(9), "skip"),  // filtered out
	}
	e := Filtered{
		Inner: MulticolumnSumToEqual{Columns: []string{"b", "c"}, Total: 0},
		Where: func(t stream.Tuple) bool {
			l, _ := t.MustGet("label").AsString()
			return l == "check"
		},
	}
	res := e.Check(rows)
	if res.Evaluated != 2 || res.Unexpected != 1 || res.UnexpectedIDs[0] != 1 {
		t.Fatalf("%+v", res)
	}
	if res.Expectation != "expect_multicolumn_sum_to_equal[filtered]" {
		t.Fatalf("name %q", res.Expectation)
	}
}

func TestSuiteValidate(t *testing.T) {
	rows := []stream.Tuple{
		row(1, 0, stream.Null(), f(1), f(1), "x"),
		row(2, 1, f(5), f(1), f(1), "x"),
	}
	suite := NewSuite("test",
		NotBeNull{Column: "a"},
	).Add(BeBetween{Column: "b", Min: 0, Max: 10})
	results := suite.Validate(rows)
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Unexpected != 1 || results[1].Unexpected != 0 {
		t.Fatalf("%+v", results)
	}
	if TotalUnexpected(results) != 1 {
		t.Fatal("total unexpected")
	}
}

func TestExpectationNames(t *testing.T) {
	cases := []struct {
		e    Expectation
		want string
	}{
		{NotBeNull{}, "expect_column_values_to_not_be_null"},
		{BeBetween{}, "expect_column_values_to_be_between"},
		{PairAGreaterThanB{}, "expect_column_pair_values_a_to_be_greater_than_b"},
		{MatchRegex{}, "expect_column_values_to_match_regex"},
		{MulticolumnSumToEqual{}, "expect_multicolumn_sum_to_equal"},
		{BeIncreasing{}, "expect_column_values_to_be_increasing"},
		{BeUnique{}, "expect_column_values_to_be_unique"},
		{BeInSet{}, "expect_column_values_to_be_in_set"},
		{BeOfType{}, "expect_column_values_to_be_of_type"},
		{MeanToBeBetween{}, "expect_column_mean_to_be_between"},
	}
	for _, c := range cases {
		if c.e.Name() != c.want {
			t.Errorf("%T name %q != %q", c.e, c.e.Name(), c.want)
		}
	}
}

func TestUnexpectedFractionEmpty(t *testing.T) {
	if (Result{}).UnexpectedFraction() != 0 {
		t.Fatal("empty fraction")
	}
}
