package dq_test

import (
	"fmt"
	"strings"
	"time"

	"icewafl/internal/dq"
	"icewafl/internal/stream"
)

var exampleSchema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "bpm", Kind: stream.KindFloat},
)

func exampleRows() []stream.Tuple {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	values := []stream.Value{stream.Float(72), stream.Null(), stream.Float(250)}
	rows := make([]stream.Tuple, len(values))
	for i, v := range values {
		rows[i] = stream.NewTuple(exampleSchema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)), v,
		})
		rows[i].ID = uint64(i + 1)
	}
	return rows
}

// ExampleSuite_Validate runs two expectations over a tiny stream.
func ExampleSuite_Validate() {
	suite := dq.NewSuite("vitals",
		dq.NotBeNull{Column: "bpm"},
		dq.BeBetween{Column: "bpm", Min: 30, Max: 220},
	)
	for _, res := range suite.Validate(exampleRows()) {
		fmt.Printf("%s: %d unexpected of %d\n", res.Expectation, res.Unexpected, res.Evaluated)
	}
	// Output:
	// expect_column_values_to_not_be_null: 1 unexpected of 3
	// expect_column_values_to_be_between: 1 unexpected of 2
}

// ExampleLoadSuite compiles a Great-Expectations-style JSON suite.
func ExampleLoadSuite() {
	doc := `{
	  "name": "vitals",
	  "expectations": [
	    {"expectation": "expect_column_values_to_not_be_null", "column": "bpm"}
	  ]
	}`
	suite, err := dq.LoadSuite(strings.NewReader(doc))
	if err != nil {
		fmt.Println(err)
		return
	}
	res := suite.Validate(exampleRows())
	fmt.Println(suite.SuiteName, "unexpected:", res[0].Unexpected)
	// Output:
	// vitals unexpected: 1
}
