// Package plot renders small ASCII charts so the experiment binaries can
// draw their figures directly in the terminal: multi-series line charts
// (Figures 4, 6 and 7), bar charts, and box plots (Figure 8). The
// renderer is deliberately simple — fixed-size character grid, one glyph
// per series — but sufficient to eyeball shapes against the paper.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// seriesGlyphs assigns one glyph per series, cycling if necessary.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Lines renders a multi-series line chart of the given width and height
// in characters (plot area, excluding axes). Series may have different
// lengths; x positions are scaled per series. NaN values are skipped.
func Lines(title string, series []Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	min, max := rangeOf(series)
	if !(max > min) {
		max = min + 1
	}
	grid := newGrid(width, height)
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		n := len(s.Values)
		if n == 0 {
			continue
		}
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			x := 0
			if n > 1 {
				x = i * (width - 1) / (n - 1)
			}
			y := int(math.Round((v - min) / (max - min) * float64(height-1)))
			grid.set(x, height-1-y, glyph)
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yLabelW := 9
	for row := 0; row < height; row++ {
		frac := float64(height-1-row) / float64(height-1)
		label := ""
		if row == 0 || row == height-1 || row == height/2 {
			label = fmt.Sprintf("%8.2f", min+frac*(max-min))
		}
		fmt.Fprintf(&b, "%*s |%s\n", yLabelW-1, label, string(grid.rows[row]))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yLabelW-1, "", strings.Repeat("-", width))
	// Legend.
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesGlyphs[si%len(seriesGlyphs)], s.Name))
	}
	fmt.Fprintf(&b, "%*s %s\n", yLabelW, "", strings.Join(legend, "   "))
	return b.String()
}

// Bars renders a labelled horizontal bar chart.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(math.Round(v / maxV * float64(width)))
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %.2f\n", maxLabel, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// Box describes one box of a box-plot panel.
type Box struct {
	Label                    string
	Min, Q1, Median, Q3, Max float64
}

// Boxes renders horizontal box plots on a shared scale:
// |---[  |  ]---| with whiskers at Min/Max.
func Boxes(title string, boxes []Box, width int) string {
	if width < 20 {
		width = 20
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLabel := 0
	for _, bx := range boxes {
		lo = math.Min(lo, bx.Min)
		hi = math.Max(hi, bx.Max)
		if len(bx.Label) > maxLabel {
			maxLabel = len(bx.Label)
		}
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	scale := func(v float64) int {
		x := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		return x
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for _, bx := range boxes {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for i := scale(bx.Min); i <= scale(bx.Max); i++ {
			row[i] = '-'
		}
		for i := scale(bx.Q1); i <= scale(bx.Q3); i++ {
			row[i] = '='
		}
		row[scale(bx.Min)] = '|'
		row[scale(bx.Max)] = '|'
		row[scale(bx.Q1)] = '['
		row[scale(bx.Q3)] = ']'
		row[scale(bx.Median)] = 'M'
		fmt.Fprintf(&b, "%-*s %s\n", maxLabel, bx.Label, string(row))
	}
	fmt.Fprintf(&b, "%-*s %-*.2f%*.2f\n", maxLabel, "", width/2, lo, width-width/2, hi)
	return b.String()
}

type grid struct {
	rows [][]byte
	w, h int
}

func newGrid(w, h int) *grid {
	g := &grid{w: w, h: h}
	for i := 0; i < h; i++ {
		row := make([]byte, w)
		for j := range row {
			row[j] = ' '
		}
		g.rows = append(g.rows, row)
	}
	return g
}

func (g *grid) set(x, y int, c byte) {
	if x < 0 || x >= g.w || y < 0 || y >= g.h {
		return
	}
	g.rows[y][x] = c
}

func rangeOf(series []Series) (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
	}
	if math.IsInf(min, 1) {
		return 0, 1
	}
	return min, max
}
