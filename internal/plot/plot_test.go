package plot

import (
	"math"
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	out := Lines("demo", []Series{
		{Name: "up", Values: []float64{1, 2, 3, 4, 5}},
		{Name: "down", Values: []float64{5, 4, 3, 2, 1}},
	}, 20, 8)
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 8 rows + axis + legend
	if len(lines) != 11 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// The increasing series must put a '*' in the top row at the right
	// and the bottom row at the left.
	top, bottom := lines[1], lines[8]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Fatalf("line chart shape wrong:\n%s", out)
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Fatalf("increasing series not rising:\n%s", out)
	}
}

func TestLinesHandlesEdgeCases(t *testing.T) {
	// Constant series (zero range), NaNs, empty series, single point.
	out := Lines("", []Series{
		{Name: "const", Values: []float64{3, 3, 3}},
		{Name: "nan", Values: []float64{math.NaN(), 1, math.NaN()}},
		{Name: "empty"},
		{Name: "single", Values: []float64{2}},
	}, 10, 5)
	if out == "" {
		t.Fatal("empty output")
	}
	// Tiny dimensions are clamped, not panicking.
	_ = Lines("", []Series{{Name: "x", Values: []float64{1}}}, 1, 1)
	// No series at all.
	_ = Lines("", nil, 20, 5)
}

func TestBars(t *testing.T) {
	out := Bars("counts", []string{"aa", "b"}, []float64{10, 5}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	longBar := strings.Count(lines[1], "#")
	shortBar := strings.Count(lines[2], "#")
	if longBar != 20 || shortBar != 10 {
		t.Fatalf("bar lengths %d, %d:\n%s", longBar, shortBar, out)
	}
	// Zero and tiny values: zero draws nothing, the (relative) maximum
	// fills the width, and a tiny-but-positive bar still gets one glyph.
	out = Bars("", []string{"zero", "tiny", "big"}, []float64{0, 0.0001, 1}, 10)
	rows := strings.Split(out, "\n")
	if strings.Count(rows[0], "#") != 0 {
		t.Fatal("zero bar drawn")
	}
	if strings.Count(rows[1], "#") != 1 {
		t.Fatal("tiny bar not rounded up to one glyph")
	}
	if strings.Count(rows[2], "#") != 10 {
		t.Fatal("max bar not full width")
	}
}

func TestBoxes(t *testing.T) {
	out := Boxes("runtimes", []Box{
		{Label: "fast", Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5},
		{Label: "slow", Min: 6, Q1: 7, Median: 8, Q3: 9, Max: 10},
	}, 40)
	if !strings.Contains(out, "runtimes") {
		t.Fatal("title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 2 boxes + scale
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	for _, row := range lines[1:3] {
		for _, c := range []string{"[", "]", "M", "|"} {
			if !strings.Contains(row, c) {
				t.Fatalf("box row missing %q:\n%s", c, out)
			}
		}
	}
	// The fast box must sit left of the slow box.
	if strings.Index(lines[1], "M") >= strings.Index(lines[2], "M") {
		t.Fatalf("boxes not ordered on shared scale:\n%s", out)
	}
	// Degenerate: all-equal values.
	_ = Boxes("", []Box{{Label: "flat", Min: 1, Q1: 1, Median: 1, Q3: 1, Max: 1}}, 30)
}
