package forecast

import "fmt"

// HoltWinters is additive triple exponential smoothing with level, trend
// and a seasonal component of the given period (24 for hourly data with a
// daily cycle). With Period == 0 it degrades to double exponential
// smoothing (Holt's linear trend).
type HoltWinters struct {
	Alpha, Beta, Gamma float64
	Period             int

	level, trend float64
	season       []float64
	steps        int
	ready        bool
}

// NewHoltWinters returns an unfitted smoother.
func NewHoltWinters(alpha, beta, gamma float64, period int) *HoltWinters {
	return &HoltWinters{Alpha: alpha, Beta: beta, Gamma: gamma, Period: period}
}

// Name implements Model.
func (m *HoltWinters) Name() string { return "holt_winters" }

// Fit implements Model: it initialises the components from the first two
// seasons and then runs the smoothing recursions over the whole training
// window. The exogenous matrix is ignored.
func (m *HoltWinters) Fit(y []float64, _ [][]float64) error {
	if !(m.Alpha > 0 && m.Alpha <= 1) || m.Beta < 0 || m.Beta > 1 || m.Gamma < 0 || m.Gamma > 1 {
		return fmt.Errorf("forecast: Holt-Winters smoothing parameters out of range (α=%g β=%g γ=%g)", m.Alpha, m.Beta, m.Gamma)
	}
	p := m.Period
	if p > 0 {
		if len(y) < 2*p {
			return fmt.Errorf("forecast: Holt-Winters needs at least two seasons (%d), got %d observations", 2*p, len(y))
		}
		// Initial level: mean of the first season. Initial trend: average
		// per-step change between the first two seasons. Initial seasonal
		// indices: deviation of the first season from its mean.
		var s1, s2 float64
		for i := 0; i < p; i++ {
			s1 += y[i]
			s2 += y[p+i]
		}
		s1 /= float64(p)
		s2 /= float64(p)
		m.level = s1
		m.trend = (s2 - s1) / float64(p)
		m.season = make([]float64, p)
		for i := 0; i < p; i++ {
			m.season[i] = y[i] - s1
		}
		m.steps = 0
		for t := 0; t < len(y); t++ {
			m.update(y[t])
		}
	} else {
		if len(y) < 2 {
			return fmt.Errorf("forecast: Holt needs at least 2 observations")
		}
		m.level = y[0]
		m.trend = y[1] - y[0]
		m.season = nil
		m.steps = 0
		for t := 1; t < len(y); t++ {
			m.update(y[t])
		}
	}
	m.ready = true
	return nil
}

// update applies one smoothing step for observation y.
func (m *HoltWinters) update(y float64) {
	if m.Period > 0 {
		i := m.steps % m.Period
		s := m.season[i]
		prevLevel := m.level
		m.level = m.Alpha*(y-s) + (1-m.Alpha)*(m.level+m.trend)
		m.trend = m.Beta*(m.level-prevLevel) + (1-m.Beta)*m.trend
		m.season[i] = m.Gamma*(y-m.level) + (1-m.Gamma)*s
	} else {
		prevLevel := m.level
		m.level = m.Alpha*y + (1-m.Alpha)*(m.level+m.trend)
		m.trend = m.Beta*(m.level-prevLevel) + (1-m.Beta)*m.trend
	}
	m.steps++
}

// LearnOne consumes one additional observation online without a full
// re-fit; Fit must have been called once.
func (m *HoltWinters) LearnOne(y float64) error {
	if !m.ready {
		return fmt.Errorf("forecast: Holt-Winters not fitted")
	}
	m.update(y)
	return nil
}

// Forecast implements Model.
func (m *HoltWinters) Forecast(h int, _ [][]float64) ([]float64, error) {
	if !m.ready {
		return nil, fmt.Errorf("forecast: Holt-Winters not fitted")
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: horizon %d", h)
	}
	out := make([]float64, h)
	for i := 1; i <= h; i++ {
		f := m.level + float64(i)*m.trend
		if m.Period > 0 {
			f += m.season[(m.steps+i-1)%m.Period]
		}
		out[i-1] = f
	}
	return out, nil
}
