package forecast

import "fmt"

// This file provides the classical reference baselines every forecasting
// study should report against: last-value (naive), seasonal-naive, and
// drift. A sophisticated method that cannot beat them on a workload is
// not learning anything the workload's structure gives away for free.

// Naive forecasts the last observed value for every horizon step.
type Naive struct {
	last  float64
	ready bool
}

// NewNaive returns a last-value forecaster.
func NewNaive() *Naive { return &Naive{} }

// Name implements Model.
func (m *Naive) Name() string { return "naive" }

// Fit implements Model.
func (m *Naive) Fit(y []float64, _ [][]float64) error {
	if len(y) == 0 {
		return fmt.Errorf("forecast: naive needs at least one observation")
	}
	m.last = y[len(y)-1]
	m.ready = true
	return nil
}

// Forecast implements Model.
func (m *Naive) Forecast(h int, _ [][]float64) ([]float64, error) {
	if !m.ready {
		return nil, fmt.Errorf("forecast: naive not fitted")
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: horizon %d", h)
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = m.last
	}
	return out, nil
}

// SeasonalNaive forecasts the value observed one season earlier:
// ŷ_{t+k} = y_{t+k−s}.
type SeasonalNaive struct {
	Period int

	season []float64
	ready  bool
}

// NewSeasonalNaive returns a seasonal-naive forecaster with the given
// period.
func NewSeasonalNaive(period int) *SeasonalNaive {
	return &SeasonalNaive{Period: period}
}

// Name implements Model.
func (m *SeasonalNaive) Name() string { return "seasonal_naive" }

// Fit implements Model.
func (m *SeasonalNaive) Fit(y []float64, _ [][]float64) error {
	if m.Period < 1 {
		return fmt.Errorf("forecast: seasonal naive needs a period >= 1")
	}
	if len(y) < m.Period {
		return fmt.Errorf("forecast: %d observations shorter than the period %d", len(y), m.Period)
	}
	m.season = append([]float64(nil), y[len(y)-m.Period:]...)
	m.ready = true
	return nil
}

// Forecast implements Model.
func (m *SeasonalNaive) Forecast(h int, _ [][]float64) ([]float64, error) {
	if !m.ready {
		return nil, fmt.Errorf("forecast: seasonal naive not fitted")
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: horizon %d", h)
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = m.season[i%m.Period]
	}
	return out, nil
}

// Drift extrapolates the average historical slope:
// ŷ_{t+k} = y_t + k·(y_t − y_1)/(t−1).
type Drift struct {
	last, slope float64
	ready       bool
}

// NewDrift returns a drift forecaster.
func NewDrift() *Drift { return &Drift{} }

// Name implements Model.
func (m *Drift) Name() string { return "drift" }

// Fit implements Model.
func (m *Drift) Fit(y []float64, _ [][]float64) error {
	if len(y) < 2 {
		return fmt.Errorf("forecast: drift needs at least two observations")
	}
	m.last = y[len(y)-1]
	m.slope = (y[len(y)-1] - y[0]) / float64(len(y)-1)
	m.ready = true
	return nil
}

// Forecast implements Model.
func (m *Drift) Forecast(h int, _ [][]float64) ([]float64, error) {
	if !m.ready {
		return nil, fmt.Errorf("forecast: drift not fitted")
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: horizon %d", h)
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = m.last + float64(i+1)*m.slope
	}
	return out, nil
}
