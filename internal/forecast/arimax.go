package forecast

import (
	"fmt"

	"icewafl/internal/stats"
)

// ARIMAX extends ARIMA with exogenous regressors: the target is first
// regressed on the exogenous matrix (with intercept), and an ARMA(p, q)
// model — after d rounds of differencing — captures the serial structure
// of the regression residuals (regression with ARMA errors). In the
// paper's setup the regressors are TEMP, PRES and WSPM plus sine/cosine
// encodings of month and hour (§3.2.2); because those covariates are part
// of the evaluation stream, their (possibly polluted) future values feed
// the forecast, which is what makes ARIMAX more robust to noise on the
// target than the purely autoregressive competitors (Figure 6).
type ARIMAX struct {
	P, D, Q int

	beta  []float64 // regression coefficients, intercept first
	arma  *ARIMA
	ready bool
}

// NewARIMAX returns an unfitted ARIMAX(p, d, q).
func NewARIMAX(p, d, q int) *ARIMAX { return &ARIMAX{P: p, D: d, Q: q} }

// Name implements Model.
func (m *ARIMAX) Name() string { return "arimax" }

// Fit implements Model. x must supply one regressor row per observation.
func (m *ARIMAX) Fit(y []float64, x [][]float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("forecast: ARIMAX needs %d exogenous rows, got %d", len(y), len(x))
	}
	if len(y) == 0 {
		return fmt.Errorf("forecast: empty training series")
	}
	k := len(x[0])
	rows := make([][]float64, len(y))
	for i, r := range x {
		if len(r) != k {
			return fmt.Errorf("forecast: ragged exogenous matrix at row %d", i)
		}
		row := make([]float64, k+1)
		row[0] = 1
		copy(row[1:], r)
		rows[i] = row
	}
	beta, err := stats.OLS(rows, y)
	if err != nil {
		return fmt.Errorf("forecast: ARIMAX regression: %w", err)
	}
	resid := make([]float64, len(y))
	for i := range y {
		resid[i] = y[i] - dot(beta, rows[i])
	}
	arma := NewARIMA(m.P, m.D, m.Q)
	if err := arma.Fit(resid, nil); err != nil {
		return fmt.Errorf("forecast: ARIMAX error model: %w", err)
	}
	m.beta, m.arma, m.ready = beta, arma, true
	return nil
}

// Forecast implements Model. xf must supply one exogenous row per
// forecast step.
func (m *ARIMAX) Forecast(h int, xf [][]float64) ([]float64, error) {
	if !m.ready {
		return nil, fmt.Errorf("forecast: ARIMAX not fitted")
	}
	if len(xf) != h {
		return nil, fmt.Errorf("forecast: ARIMAX needs %d exogenous rows for the horizon, got %d", h, len(xf))
	}
	residFC, err := m.arma.Forecast(h, nil)
	if err != nil {
		return nil, err
	}
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		row := make([]float64, len(m.beta))
		row[0] = 1
		copy(row[1:], xf[i])
		out[i] = dot(m.beta, row) + residFC[i]
	}
	return out, nil
}

func dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}
