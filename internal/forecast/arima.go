package forecast

import (
	"fmt"

	"icewafl/internal/stats"
)

// ARIMA is an ARIMA(p, d, q) model fitted with the Hannan-Rissanen
// two-stage least-squares procedure: a long autoregression estimates the
// innovation sequence, then the ARMA coefficients are obtained by
// regressing the differenced series on its own lags and the estimated
// innovations. The procedure is deterministic and fast enough to re-fit
// on every 504-hour training period of the experiment protocol.
type ARIMA struct {
	P, D, Q int

	mu    float64
	phi   []float64 // AR coefficients, lag 1..P
	theta []float64 // MA coefficients, lag 1..Q

	// Fitted-state tails used by Forecast.
	zTail []float64 // last P demeaned differenced values
	eTail []float64 // last Q estimated innovations
	seeds []float64 // integration seeds from differencing
	ready bool
}

// NewARIMA returns an unfitted ARIMA(p, d, q).
func NewARIMA(p, d, q int) *ARIMA { return &ARIMA{P: p, D: d, Q: q} }

// Name implements Model.
func (m *ARIMA) Name() string { return "arima" }

// Fit implements Model. The exogenous matrix is ignored.
func (m *ARIMA) Fit(y []float64, _ [][]float64) error {
	if m.P < 0 || m.D < 0 || m.Q < 0 {
		return fmt.Errorf("forecast: invalid ARIMA order (%d,%d,%d)", m.P, m.D, m.Q)
	}
	w, seeds, err := difference(y, m.D)
	if err != nil {
		return err
	}
	minLen := m.P + m.Q + 2
	if m.Q > 0 {
		minLen += longAROrder(m.P, m.Q)
	}
	if len(w) < minLen {
		return fmt.Errorf("forecast: %d differenced observations too few for ARIMA(%d,%d,%d)", len(w), m.P, m.D, m.Q)
	}
	mu := stats.Mean(w)
	z := make([]float64, len(w))
	for i, v := range w {
		z[i] = v - mu
	}

	phi, theta, resid, err := fitARMA(z, m.P, m.Q)
	if err != nil {
		return err
	}
	m.mu, m.phi, m.theta = mu, phi, theta
	m.seeds = seeds
	m.zTail = tail(z, m.P)
	m.eTail = tail(resid, m.Q)
	m.ready = true
	return nil
}

// Forecast implements Model. Future innovations are taken as zero, the
// conditional-expectation forecast.
func (m *ARIMA) Forecast(h int, _ [][]float64) ([]float64, error) {
	if !m.ready {
		return nil, fmt.Errorf("forecast: ARIMA not fitted")
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: horizon %d", h)
	}
	z := append([]float64(nil), m.zTail...)
	e := append([]float64(nil), m.eTail...)
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		pred := 0.0
		for j := 0; j < m.P; j++ {
			if idx := len(z) - 1 - j; idx >= 0 {
				pred += m.phi[j] * z[idx]
			}
		}
		for j := 0; j < m.Q; j++ {
			if idx := len(e) - 1 - j; idx >= 0 {
				pred += m.theta[j] * e[idx]
			}
		}
		z = append(z, pred)
		e = append(e, 0)
		out[i] = pred + m.mu
	}
	return integrate(out, m.seeds), nil
}

// longAROrder picks the order of the first-stage long autoregression.
func longAROrder(p, q int) int {
	m := 2 * (p + q)
	if m < 10 {
		m = 10
	}
	return m
}

// fitARMA estimates ARMA(p, q) coefficients for the zero-mean series z
// via Hannan-Rissanen and returns (phi, theta, residuals).
func fitARMA(z []float64, p, q int) (phi, theta, resid []float64, err error) {
	n := len(z)
	if p == 0 && q == 0 {
		return nil, nil, append([]float64(nil), z...), nil
	}
	// Stage 1: innovations. With q == 0 plain AR OLS suffices and the
	// residuals come out of the same regression.
	eHat := make([]float64, n)
	if q > 0 {
		m := longAROrder(p, q)
		if m >= n {
			m = n / 2
		}
		if m < 1 {
			return nil, nil, nil, fmt.Errorf("forecast: series too short for Hannan-Rissanen")
		}
		arPhi, fitErr := fitAR(z, m)
		if fitErr != nil {
			return nil, nil, nil, fitErr
		}
		for t := 0; t < n; t++ {
			if t < m {
				eHat[t] = 0
				continue
			}
			pred := 0.0
			for j := 0; j < m; j++ {
				pred += arPhi[j] * z[t-1-j]
			}
			eHat[t] = z[t] - pred
		}
	}

	// Stage 2: regress z_t on p lags of z and q lags of eHat.
	start := p
	if q > start {
		start = q
	}
	if q > 0 {
		if m := longAROrder(p, q); m > start {
			start = m
		}
	}
	rows := n - start
	if rows <= p+q {
		return nil, nil, nil, fmt.Errorf("forecast: not enough rows (%d) for %d ARMA coefficients", rows, p+q)
	}
	x := make([][]float64, rows)
	yv := make([]float64, rows)
	for t := start; t < n; t++ {
		row := make([]float64, p+q)
		for j := 0; j < p; j++ {
			row[j] = z[t-1-j]
		}
		for j := 0; j < q; j++ {
			row[p+j] = eHat[t-1-j]
		}
		x[t-start] = row
		yv[t-start] = z[t]
	}
	beta, err := stats.OLS(x, yv)
	if err != nil {
		return nil, nil, nil, err
	}
	phi = beta[:p]
	theta = beta[p:]

	// Final residual pass with the fitted coefficients.
	resid = make([]float64, n)
	for t := 0; t < n; t++ {
		pred := 0.0
		for j := 0; j < p && t-1-j >= 0; j++ {
			pred += phi[j] * z[t-1-j]
		}
		for j := 0; j < q && t-1-j >= 0; j++ {
			pred += theta[j] * resid[t-1-j]
		}
		resid[t] = z[t] - pred
	}
	return phi, theta, resid, nil
}

// fitAR estimates an AR(m) by OLS for the zero-mean series z.
func fitAR(z []float64, m int) ([]float64, error) {
	n := len(z)
	rows := n - m
	if rows <= m {
		return nil, fmt.Errorf("forecast: AR(%d) needs more than %d observations", m, n)
	}
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for t := m; t < n; t++ {
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			row[j] = z[t-1-j]
		}
		x[t-m] = row
		y[t-m] = z[t]
	}
	return stats.OLS(x, y)
}

func tail(xs []float64, k int) []float64 {
	if k <= 0 {
		return nil
	}
	if len(xs) < k {
		out := make([]float64, k-len(xs))
		return append(out, xs...)
	}
	return append([]float64(nil), xs[len(xs)-k:]...)
}
