// Package forecast implements the three online forecasting methods the
// paper evaluates against polluted streams (§3.2): ARIMA, ARIMAX and
// additive Holt-Winters, plus grid-search hyperparameter selection with
// time-series cross validation.
//
// The models follow the paper's execution protocol: they receive data
// tuple-wise, are re-fitted on each 504-hour training period, and then
// forecast the next 12 hours. Fitting is deterministic (two-stage
// Hannan-Rissanen least squares for the ARMA components), so experiment
// runs are reproducible.
package forecast

import "fmt"

// Model is a forecasting method. Fit estimates parameters from a
// training window; Forecast extrapolates h steps past the end of that
// window. For models with exogenous inputs (ARIMAX), x carries one
// regressor row per training observation and xf one per forecast step;
// pure autoregressive models ignore them.
type Model interface {
	// Name identifies the method ("arima", "arimax", "holt_winters").
	Name() string
	// Fit estimates the model on the training series y (and optional
	// exogenous matrix x with len(x) == len(y)).
	Fit(y []float64, x [][]float64) error
	// Forecast returns h predictions following the fitted window. xf
	// must hold h exogenous rows for models that use them.
	Forecast(h int, xf [][]float64) ([]float64, error)
}

// difference applies d rounds of first differencing and returns the
// differenced series plus the d seed values needed to integrate back
// (the last raw value at each differencing level).
func difference(y []float64, d int) (diffed []float64, seeds []float64, err error) {
	if d < 0 {
		return nil, nil, fmt.Errorf("forecast: negative differencing order %d", d)
	}
	cur := append([]float64(nil), y...)
	seeds = make([]float64, 0, d)
	for k := 0; k < d; k++ {
		if len(cur) < 2 {
			return nil, nil, fmt.Errorf("forecast: series too short for d=%d", d)
		}
		seeds = append(seeds, cur[len(cur)-1])
		next := make([]float64, len(cur)-1)
		for i := 1; i < len(cur); i++ {
			next[i-1] = cur[i] - cur[i-1]
		}
		cur = next
	}
	return cur, seeds, nil
}

// integrate undoes d rounds of differencing for a block of h consecutive
// forecasts that directly follow the training window. seeds are the
// values captured by difference, outermost level last.
func integrate(forecasts []float64, seeds []float64) []float64 {
	out := append([]float64(nil), forecasts...)
	for k := len(seeds) - 1; k >= 0; k-- {
		prev := seeds[k]
		for i := range out {
			out[i] += prev
			prev = out[i]
		}
	}
	return out
}
