package forecast

import (
	"fmt"
	"math"

	"icewafl/internal/stats"
	"icewafl/internal/timeseries"
)

// Candidate is one hyperparameter setting under grid search: a label and
// a factory producing a fresh, unfitted model.
type Candidate struct {
	Label string
	New   func() Model
}

// GridResult reports the cross-validated score of one candidate.
type GridResult struct {
	Label string
	// MAE is the mean absolute error averaged over the CV folds; NaN if
	// the candidate failed to fit on any fold.
	MAE float64
	Err error
}

// GridSearchCV evaluates every candidate with k-fold time-series cross
// validation (scikit-learn's TimeSeriesSplit, as used in §3.2.2) on the
// training series and returns the index of the best candidate along with
// all per-candidate results. horizon caps the forecast length per fold
// (0 means forecast the whole test window).
func GridSearchCV(cands []Candidate, y []float64, x [][]float64, nSplits, horizon int) (int, []GridResult, error) {
	if len(cands) == 0 {
		return -1, nil, fmt.Errorf("forecast: no candidates")
	}
	folds, err := timeseries.TimeSeriesCV(len(y), nSplits)
	if err != nil {
		return -1, nil, err
	}
	results := make([]GridResult, len(cands))
	best, bestMAE := -1, math.Inf(1)
	for ci, cand := range cands {
		results[ci].Label = cand.Label
		var maes []float64
		var candErr error
		for _, fold := range folds {
			h := fold.TestEnd - fold.TestStart
			if horizon > 0 && horizon < h {
				h = horizon
			}
			model := cand.New()
			var xs [][]float64
			var xf [][]float64
			if x != nil {
				xs = x[:fold.TrainEnd]
				xf = x[fold.TestStart : fold.TestStart+h]
			}
			if err := model.Fit(y[:fold.TrainEnd], xs); err != nil {
				candErr = err
				break
			}
			pred, err := model.Forecast(h, xf)
			if err != nil {
				candErr = err
				break
			}
			maes = append(maes, stats.MAE(pred, y[fold.TestStart:fold.TestStart+h]))
		}
		if candErr != nil || len(maes) == 0 {
			results[ci].MAE = math.NaN()
			results[ci].Err = candErr
			continue
		}
		results[ci].MAE = stats.Mean(maes)
		if results[ci].MAE < bestMAE {
			bestMAE = results[ci].MAE
			best = ci
		}
	}
	if best < 0 {
		return -1, results, fmt.Errorf("forecast: every candidate failed cross validation")
	}
	return best, results, nil
}
