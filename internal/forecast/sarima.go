package forecast

import (
	"fmt"

	"icewafl/internal/stats"
)

// SARIMA is a seasonal ARIMA(p, d, q)(P, D, Q)_s fitted by the same
// two-stage least-squares procedure as ARIMA, generalised to seasonal
// lags: the AR side regresses on lags {1..p} ∪ {s, 2s, …, P·s}, the MA
// side on innovation lags {1..q} ∪ {s, …, Q·s}, after d regular and D
// seasonal differencing passes. For the hourly air-quality data s = 24
// captures the daily cycle that a plain ARIMA misses.
type SARIMA struct {
	P, D, Q    int
	SP, SD, SQ int
	Period     int

	mu        float64
	arLags    []int
	maLags    []int
	phi       []float64
	theta     []float64
	zTail     []float64
	eTail     []float64
	seeds     []float64   // regular-difference seeds
	seasSeeds [][]float64 // seasonal-difference seeds (one slice per pass)
	ready     bool
}

// NewSARIMA returns an unfitted seasonal ARIMA.
func NewSARIMA(p, d, q, sp, sd, sq, period int) *SARIMA {
	return &SARIMA{P: p, D: d, Q: q, SP: sp, SD: sd, SQ: sq, Period: period}
}

// Name implements Model.
func (m *SARIMA) Name() string { return "sarima" }

// seasonalDifference applies one lag-s differencing pass, returning the
// differenced series and the last s raw values (the integration seed).
func seasonalDifference(y []float64, s int) ([]float64, []float64, error) {
	if len(y) <= s {
		return nil, nil, fmt.Errorf("forecast: series of %d too short for seasonal differencing at lag %d", len(y), s)
	}
	out := make([]float64, len(y)-s)
	for i := s; i < len(y); i++ {
		out[i-s] = y[i] - y[i-s]
	}
	return out, append([]float64(nil), y[len(y)-s:]...), nil
}

// seasonalIntegrate undoes one lag-s differencing pass for h consecutive
// forecasts following the training window.
func seasonalIntegrate(fc []float64, seed []float64, s int) []float64 {
	out := make([]float64, len(fc))
	hist := append([]float64(nil), seed...)
	for i := range fc {
		base := hist[len(hist)-s]
		out[i] = fc[i] + base
		hist = append(hist, out[i])
	}
	return out
}

func lagSet(regular, seasonalCount, period int) []int {
	var lags []int
	for l := 1; l <= regular; l++ {
		lags = append(lags, l)
	}
	for k := 1; k <= seasonalCount; k++ {
		lags = append(lags, k*period)
	}
	return lags
}

// Fit implements Model. The exogenous matrix is ignored.
func (m *SARIMA) Fit(y []float64, _ [][]float64) error {
	if m.Period < 2 && (m.SP > 0 || m.SD > 0 || m.SQ > 0) {
		return fmt.Errorf("forecast: SARIMA needs a period >= 2 for seasonal terms")
	}
	w := append([]float64(nil), y...)
	m.seasSeeds = nil
	var err error
	for k := 0; k < m.SD; k++ {
		var seed []float64
		w, seed, err = seasonalDifference(w, m.Period)
		if err != nil {
			return err
		}
		m.seasSeeds = append(m.seasSeeds, seed)
	}
	w, m.seeds, err = difference(w, m.D)
	if err != nil {
		return err
	}
	m.arLags = lagSet(m.P, m.SP, m.Period)
	m.maLags = lagSet(m.Q, m.SQ, m.Period)
	maxLag := 0
	for _, l := range append(append([]int{}, m.arLags...), m.maLags...) {
		if l > maxLag {
			maxLag = l
		}
	}
	if len(w) < maxLag*2+10 {
		return fmt.Errorf("forecast: %d observations too few for SARIMA with max lag %d", len(w), maxLag)
	}
	mu := stats.Mean(w)
	z := make([]float64, len(w))
	for i, v := range w {
		z[i] = v - mu
	}
	phi, theta, resid, err := fitLagged(z, m.arLags, m.maLags)
	if err != nil {
		return err
	}
	m.mu, m.phi, m.theta = mu, phi, theta
	m.zTail = tail(z, maxLag)
	m.eTail = tail(resid, maxLag)
	m.ready = true
	return nil
}

// Forecast implements Model.
func (m *SARIMA) Forecast(h int, _ [][]float64) ([]float64, error) {
	if !m.ready {
		return nil, fmt.Errorf("forecast: SARIMA not fitted")
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: horizon %d", h)
	}
	z := append([]float64(nil), m.zTail...)
	e := append([]float64(nil), m.eTail...)
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		pred := 0.0
		for j, lag := range m.arLags {
			if idx := len(z) - lag; idx >= 0 {
				pred += m.phi[j] * z[idx]
			}
		}
		for j, lag := range m.maLags {
			if idx := len(e) - lag; idx >= 0 {
				pred += m.theta[j] * e[idx]
			}
		}
		z = append(z, pred)
		e = append(e, 0)
		out[i] = pred + m.mu
	}
	out = integrate(out, m.seeds)
	for k := len(m.seasSeeds) - 1; k >= 0; k-- {
		out = seasonalIntegrate(out, m.seasSeeds[k], m.Period)
	}
	return out, nil
}

// fitLagged is the Hannan-Rissanen procedure over arbitrary AR and MA
// lag sets.
func fitLagged(z []float64, arLags, maLags []int) (phi, theta, resid []float64, err error) {
	n := len(z)
	if len(arLags) == 0 && len(maLags) == 0 {
		return nil, nil, append([]float64(nil), z...), nil
	}
	maxLag := 0
	for _, l := range append(append([]int{}, arLags...), maLags...) {
		if l > maxLag {
			maxLag = l
		}
	}
	eHat := make([]float64, n)
	if len(maLags) > 0 {
		mOrder := maxLag + 5
		if mOrder >= n/2 {
			mOrder = n / 2
		}
		if mOrder < 1 {
			return nil, nil, nil, fmt.Errorf("forecast: series too short for Hannan-Rissanen")
		}
		arPhi, fitErr := fitAR(z, mOrder)
		if fitErr != nil {
			return nil, nil, nil, fitErr
		}
		for t := mOrder; t < n; t++ {
			pred := 0.0
			for j := 0; j < mOrder; j++ {
				pred += arPhi[j] * z[t-1-j]
			}
			eHat[t] = z[t] - pred
		}
	}
	start := maxLag
	if len(maLags) > 0 && maxLag+5 > start {
		start = maxLag + 5
	}
	rows := n - start
	k := len(arLags) + len(maLags)
	if rows <= k {
		return nil, nil, nil, fmt.Errorf("forecast: not enough rows (%d) for %d coefficients", rows, k)
	}
	x := make([][]float64, rows)
	yv := make([]float64, rows)
	for t := start; t < n; t++ {
		row := make([]float64, k)
		for j, lag := range arLags {
			row[j] = z[t-lag]
		}
		for j, lag := range maLags {
			row[len(arLags)+j] = eHat[t-lag]
		}
		x[t-start] = row
		yv[t-start] = z[t]
	}
	beta, err := stats.OLS(x, yv)
	if err != nil {
		return nil, nil, nil, err
	}
	phi = beta[:len(arLags)]
	theta = beta[len(arLags):]
	resid = make([]float64, n)
	for t := 0; t < n; t++ {
		pred := 0.0
		for j, lag := range arLags {
			if t-lag >= 0 {
				pred += phi[j] * z[t-lag]
			}
		}
		for j, lag := range maLags {
			if t-lag >= 0 {
				pred += theta[j] * resid[t-lag]
			}
		}
		resid[t] = z[t] - pred
	}
	return phi, theta, resid, nil
}
