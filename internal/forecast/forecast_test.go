package forecast

import (
	"math"
	"testing"

	"icewafl/internal/rng"
	"icewafl/internal/stats"
)

// synthAR1 generates a stationary AR(1) series with the given coefficient.
func synthAR1(n int, phi float64, seed int64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	x := 0.0
	for i := range out {
		x = phi*x + r.Normal(0, 1)
		out[i] = 50 + x
	}
	return out
}

// synthSeasonal generates level + trend + daily season + noise.
func synthSeasonal(n int, seed int64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = 100 + 0.01*float64(i) + 10*math.Sin(2*math.Pi*float64(i%24)/24) + r.Normal(0, 0.5)
	}
	return out
}

func TestDifferenceIntegrateRoundTrip(t *testing.T) {
	y := []float64{3, 5, 4, 8, 13, 11}
	for d := 0; d <= 2; d++ {
		diffed, seeds, err := difference(y, d)
		if err != nil {
			t.Fatal(err)
		}
		if len(diffed) != len(y)-d {
			t.Fatalf("d=%d: length %d", d, len(diffed))
		}
		// Append "forecasts" that continue the differenced series, then
		// integrating arbitrary values must be consistent with manual
		// computation for d=1.
		if d == 1 {
			fc := integrate([]float64{2, 3}, seeds)
			if fc[0] != 13 || fc[1] != 16 {
				t.Fatalf("integrate: %v", fc)
			}
		}
		if d == 0 && len(seeds) != 0 {
			t.Fatal("d=0 should have no seeds")
		}
	}
	if _, _, err := difference([]float64{1}, 2); err == nil {
		t.Fatal("over-differencing accepted")
	}
	if _, _, err := difference(nil, -1); err == nil {
		t.Fatal("negative d accepted")
	}
}

func TestARIMARecoversARCoefficient(t *testing.T) {
	y := synthAR1(2000, 0.7, 1)
	m := NewARIMA(1, 0, 0)
	if err := m.Fit(y, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.phi[0]-0.7) > 0.08 {
		t.Fatalf("phi = %g, want ≈ 0.7", m.phi[0])
	}
	if math.Abs(m.mu-50) > 1 {
		t.Fatalf("mu = %g, want ≈ 50", m.mu)
	}
}

func TestARIMAForecastMeanReverts(t *testing.T) {
	y := synthAR1(1000, 0.5, 2)
	m := NewARIMA(1, 0, 0)
	if err := m.Fit(y, nil); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 50 {
		t.Fatalf("forecast length %d", len(fc))
	}
	// Long-horizon AR(1) forecasts converge to the mean.
	if math.Abs(fc[49]-m.mu) > 0.5 {
		t.Fatalf("terminal forecast %g, mean %g", fc[49], m.mu)
	}
}

func TestARIMAWithDifferencingTracksTrend(t *testing.T) {
	// Linear trend + small noise: ARIMA(1,1,0) should forecast upward.
	r := rng.New(3)
	y := make([]float64, 600)
	for i := range y {
		y[i] = float64(i)*0.5 + r.Normal(0, 0.2)
	}
	m := NewARIMA(1, 1, 0)
	if err := m.Fit(y, nil); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := y[len(y)-1]
	if fc[9] <= last {
		t.Fatalf("trend not continued: forecast %g after %g", fc[9], last)
	}
	want := last + 10*0.5
	if math.Abs(fc[9]-want) > 2 {
		t.Fatalf("forecast %g, want ≈ %g", fc[9], want)
	}
}

func TestARIMAMAComponent(t *testing.T) {
	// MA(1) process: y_t = e_t + 0.6·e_{t-1}.
	r := rng.New(4)
	n := 3000
	y := make([]float64, n)
	prevE := 0.0
	for i := range y {
		e := r.Normal(0, 1)
		y[i] = 10 + e + 0.6*prevE
		prevE = e
	}
	m := NewARIMA(0, 0, 1)
	if err := m.Fit(y, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.theta[0]-0.6) > 0.12 {
		t.Fatalf("theta = %g, want ≈ 0.6", m.theta[0])
	}
}

func TestARIMAErrors(t *testing.T) {
	m := NewARIMA(1, 0, 0)
	if _, err := m.Forecast(5, nil); err == nil {
		t.Error("unfitted forecast accepted")
	}
	if err := m.Fit([]float64{1, 2}, nil); err == nil {
		t.Error("tiny series accepted")
	}
	if err := NewARIMA(-1, 0, 0).Fit(synthAR1(100, 0.5, 5), nil); err == nil {
		t.Error("negative order accepted")
	}
	good := NewARIMA(1, 0, 0)
	if err := good.Fit(synthAR1(100, 0.5, 6), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := good.Forecast(0, nil); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestARIMADeterministic(t *testing.T) {
	y := synthAR1(500, 0.6, 7)
	a, b := NewARIMA(2, 0, 1), NewARIMA(2, 0, 1)
	if err := a.Fit(y, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(y, nil); err != nil {
		t.Fatal(err)
	}
	fa, _ := a.Forecast(12, nil)
	fb, _ := b.Forecast(12, nil)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("fit not deterministic at step %d", i)
		}
	}
}

func TestARIMAXUsesExogenousSignal(t *testing.T) {
	// Target is driven almost entirely by an exogenous regressor.
	r := rng.New(8)
	n := 1000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range y {
		v := r.Uniform(-5, 5)
		x[i] = []float64{v}
		y[i] = 20 + 3*v + r.Normal(0, 0.3)
	}
	m := NewARIMAX(1, 0, 0)
	if err := m.Fit(y, x); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.beta[0]-20) > 0.5 || math.Abs(m.beta[1]-3) > 0.1 {
		t.Fatalf("regression beta %v", m.beta)
	}
	// Forecast with known future regressors must beat a pure ARIMA.
	xf := [][]float64{{4}, {-4}, {0}}
	fc, err := m.Forecast(3, xf)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{32, 8, 20}
	for i := range want {
		if math.Abs(fc[i]-want[i]) > 1.5 {
			t.Fatalf("forecast %v, want ≈ %v", fc, want)
		}
	}
}

func TestARIMAXErrors(t *testing.T) {
	m := NewARIMAX(1, 0, 0)
	if err := m.Fit([]float64{1, 2, 3}, nil); err == nil {
		t.Error("missing exog accepted")
	}
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if err := m.Fit([]float64{1, 2}, [][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged exog accepted")
	}
	if _, err := m.Forecast(2, nil); err == nil {
		t.Error("unfitted forecast accepted")
	}
	y := synthAR1(300, 0.4, 9)
	x := make([][]float64, len(y))
	for i := range x {
		x[i] = []float64{float64(i % 7)}
	}
	if err := m.Fit(y, x); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(3, [][]float64{{1}}); err == nil {
		t.Error("horizon/exog mismatch accepted")
	}
}

func TestHoltWintersSeasonal(t *testing.T) {
	y := synthSeasonal(24*30, 10)
	m := NewHoltWinters(0.3, 0.05, 0.2, 24)
	if err := m.Fit(y, nil); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(24, nil)
	if err != nil {
		t.Fatal(err)
	}
	actualNext := make([]float64, 24)
	for i := range actualNext {
		j := len(y) + i
		actualNext[i] = 100 + 0.01*float64(j) + 10*math.Sin(2*math.Pi*float64(j%24)/24)
	}
	mae := stats.MAE(fc, actualNext)
	if mae > 1.5 {
		t.Fatalf("seasonal forecast MAE %g", mae)
	}
}

func TestHoltWintersNonSeasonal(t *testing.T) {
	// Pure trend: Holt's linear method should extrapolate it.
	y := make([]float64, 100)
	for i := range y {
		y[i] = 5 + 2*float64(i)
	}
	m := NewHoltWinters(0.5, 0.5, 0, 0)
	if err := m.Fit(y, nil); err != nil {
		t.Fatal(err)
	}
	fc, _ := m.Forecast(5, nil)
	for i, f := range fc {
		want := 5 + 2*float64(99+i+1)
		if math.Abs(f-want) > 0.5 {
			t.Fatalf("trend forecast %v", fc)
		}
	}
}

func TestHoltWintersLearnOne(t *testing.T) {
	y := synthSeasonal(24*20, 11)
	m := NewHoltWinters(0.3, 0.05, 0.2, 24)
	if err := m.Fit(y[:24*10], nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range y[24*10:] {
		if err := m.LearnOne(v); err != nil {
			t.Fatal(err)
		}
	}
	// Online updates should match a fresh fit over the full window
	// closely enough to forecast well.
	fc, _ := m.Forecast(12, nil)
	if len(fc) != 12 {
		t.Fatal("forecast length")
	}
	unfitted := NewHoltWinters(0.3, 0.05, 0.2, 24)
	if err := unfitted.LearnOne(1); err == nil {
		t.Fatal("LearnOne before Fit accepted")
	}
}

func TestHoltWintersErrors(t *testing.T) {
	if err := NewHoltWinters(0, 0.1, 0.1, 24).Fit(synthSeasonal(100, 12), nil); err == nil {
		t.Error("alpha 0 accepted")
	}
	if err := NewHoltWinters(0.3, 1.5, 0.1, 24).Fit(synthSeasonal(100, 12), nil); err == nil {
		t.Error("beta > 1 accepted")
	}
	if err := NewHoltWinters(0.3, 0.1, 0.1, 24).Fit(make([]float64, 30), nil); err == nil {
		t.Error("less than two seasons accepted")
	}
	if err := NewHoltWinters(0.3, 0.1, 0, 0).Fit([]float64{1}, nil); err == nil {
		t.Error("single observation accepted")
	}
	m := NewHoltWinters(0.3, 0.1, 0.1, 24)
	if _, err := m.Forecast(5, nil); err == nil {
		t.Error("unfitted forecast accepted")
	}
	if err := m.Fit(synthSeasonal(240, 13), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(-1, nil); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestModelNames(t *testing.T) {
	if NewARIMA(1, 0, 0).Name() != "arima" ||
		NewARIMAX(1, 0, 0).Name() != "arimax" ||
		NewHoltWinters(0.1, 0.1, 0.1, 24).Name() != "holt_winters" {
		t.Fatal("model name mismatch")
	}
}

func TestGridSearchSelectsBetterModel(t *testing.T) {
	// Strong AR(1): an AR candidate must beat a mean-only candidate.
	y := synthAR1(600, 0.85, 14)
	cands := []Candidate{
		{Label: "mean-only", New: func() Model { return NewARIMA(0, 0, 0) }},
		{Label: "ar1", New: func() Model { return NewARIMA(1, 0, 0) }},
	}
	best, results, err := GridSearchCV(cands, y, nil, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if results[best].Label != "ar1" {
		t.Fatalf("grid search picked %q (scores %v)", results[best].Label, results)
	}
	if !(results[1].MAE < results[0].MAE) {
		t.Fatalf("AR(1) MAE %g not better than mean-only %g", results[1].MAE, results[0].MAE)
	}
}

func TestGridSearchHandlesFailingCandidates(t *testing.T) {
	y := synthAR1(200, 0.5, 15)
	cands := []Candidate{
		{Label: "broken", New: func() Model { return NewHoltWinters(0, 0, 0, 24) }},
		{Label: "ok", New: func() Model { return NewARIMA(1, 0, 0) }},
	}
	best, results, err := GridSearchCV(cands, y, nil, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if results[best].Label != "ok" {
		t.Fatalf("picked %q", results[best].Label)
	}
	if results[0].Err == nil || !math.IsNaN(results[0].MAE) {
		t.Fatalf("broken candidate not reported: %+v", results[0])
	}
}

func TestGridSearchAllFail(t *testing.T) {
	y := synthAR1(200, 0.5, 16)
	cands := []Candidate{
		{Label: "broken", New: func() Model { return NewHoltWinters(0, 0, 0, 24) }},
	}
	if _, _, err := GridSearchCV(cands, y, nil, 4, 5); err == nil {
		t.Fatal("all-failing grid accepted")
	}
	if _, _, err := GridSearchCV(nil, y, nil, 4, 5); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestTailHelper(t *testing.T) {
	if got := tail([]float64{1, 2, 3, 4}, 2); len(got) != 2 || got[0] != 3 {
		t.Fatalf("tail %v", got)
	}
	if got := tail([]float64{1}, 3); len(got) != 3 || got[2] != 1 || got[0] != 0 {
		t.Fatalf("short tail %v", got)
	}
	if tail(nil, 0) != nil {
		t.Fatal("tail of 0")
	}
}

func TestSARIMABeatsARIMAOnSeasonalData(t *testing.T) {
	y := synthSeasonal(24*40, 20)
	train, test := y[:24*35], y[24*35:24*35+24]

	plain := NewARIMA(2, 0, 1)
	if err := plain.Fit(train, nil); err != nil {
		t.Fatal(err)
	}
	plainFC, err := plain.Forecast(24, nil)
	if err != nil {
		t.Fatal(err)
	}

	seasonal := NewSARIMA(1, 0, 0, 1, 1, 0, 24)
	if err := seasonal.Fit(train, nil); err != nil {
		t.Fatal(err)
	}
	seasonalFC, err := seasonal.Forecast(24, nil)
	if err != nil {
		t.Fatal(err)
	}

	plainMAE := stats.MAE(plainFC, test)
	seasonalMAE := stats.MAE(seasonalFC, test)
	if seasonalMAE >= plainMAE {
		t.Fatalf("SARIMA MAE %.3f not better than ARIMA %.3f on seasonal data", seasonalMAE, plainMAE)
	}
	if seasonalMAE > 2 {
		t.Fatalf("SARIMA MAE %.3f too high for near-deterministic season", seasonalMAE)
	}
}

func TestSeasonalDifferenceRoundTrip(t *testing.T) {
	y := []float64{1, 2, 3, 4, 11, 12, 13, 14, 21, 22, 23, 24}
	diffed, seed, err := seasonalDifference(y, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffed) != 8 {
		t.Fatalf("diffed length %d", len(diffed))
	}
	for _, v := range diffed {
		if v != 10 {
			t.Fatalf("seasonal diff %v", diffed)
		}
	}
	// Forecast the next 4 seasonal diffs as 10 and integrate: should
	// continue 31, 32, 33, 34.
	fc := seasonalIntegrate([]float64{10, 10, 10, 10}, seed, 4)
	want := []float64{31, 32, 33, 34}
	for i := range want {
		if math.Abs(fc[i]-want[i]) > 1e-9 {
			t.Fatalf("integrated %v, want %v", fc, want)
		}
	}
}

func TestSARIMAErrors(t *testing.T) {
	if err := NewSARIMA(1, 0, 0, 1, 0, 0, 0).Fit(synthSeasonal(480, 21), nil); err == nil {
		t.Error("seasonal terms without period accepted")
	}
	if err := NewSARIMA(1, 0, 0, 0, 1, 0, 24).Fit(make([]float64, 10), nil); err == nil {
		t.Error("tiny series accepted")
	}
	m := NewSARIMA(1, 0, 0, 1, 0, 0, 24)
	if _, err := m.Forecast(5, nil); err == nil {
		t.Error("unfitted forecast accepted")
	}
	if err := m.Fit(synthSeasonal(24*20, 22), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0, nil); err == nil {
		t.Error("zero horizon accepted")
	}
	if m.Name() != "sarima" {
		t.Error("name")
	}
}

func TestSARIMAWithoutSeasonalTermsMatchesARIMAShape(t *testing.T) {
	// SP=SD=SQ=0 degrades to a plain ARIMA over the same lag sets.
	y := synthAR1(800, 0.6, 23)
	s := NewSARIMA(1, 0, 0, 0, 0, 0, 24)
	if err := s.Fit(y, nil); err != nil {
		t.Fatal(err)
	}
	a := NewARIMA(1, 0, 0)
	if err := a.Fit(y, nil); err != nil {
		t.Fatal(err)
	}
	sf, _ := s.Forecast(5, nil)
	af, _ := a.Forecast(5, nil)
	for i := range sf {
		if math.Abs(sf[i]-af[i]) > 0.2 {
			t.Fatalf("degenerate SARIMA diverges from ARIMA: %v vs %v", sf, af)
		}
	}
}

func TestNaiveBaseline(t *testing.T) {
	m := NewNaive()
	if _, err := m.Forecast(3, nil); err == nil {
		t.Error("unfitted forecast accepted")
	}
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := m.Fit([]float64{1, 2, 7}, nil); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(3, nil)
	if err != nil || fc[0] != 7 || fc[2] != 7 {
		t.Fatalf("naive forecast %v, %v", fc, err)
	}
	if _, err := m.Forecast(0, nil); err == nil {
		t.Error("zero horizon accepted")
	}
	if m.Name() != "naive" {
		t.Error("name")
	}
}

func TestSeasonalNaiveBaseline(t *testing.T) {
	m := NewSeasonalNaive(3)
	if err := m.Fit([]float64{1, 2}, nil); err == nil {
		t.Error("sub-period series accepted")
	}
	if err := NewSeasonalNaive(0).Fit([]float64{1}, nil); err == nil {
		t.Error("zero period accepted")
	}
	if err := m.Fit([]float64{9, 9, 9, 4, 5, 6}, nil); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 5, 6, 4, 5}
	for i := range want {
		if fc[i] != want[i] {
			t.Fatalf("seasonal naive %v, want %v", fc, want)
		}
	}
}

func TestDriftBaseline(t *testing.T) {
	m := NewDrift()
	if err := m.Fit([]float64{5}, nil); err == nil {
		t.Error("single observation accepted")
	}
	// y = 2t: slope 2 exactly.
	if err := m.Fit([]float64{0, 2, 4, 6}, nil); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(2, nil)
	if err != nil || fc[0] != 8 || fc[1] != 10 {
		t.Fatalf("drift forecast %v, %v", fc, err)
	}
}

func TestSeasonalNaiveBeatsNaiveOnSeasonalData(t *testing.T) {
	y := synthSeasonal(24*20, 30)
	train, test := y[:24*19], y[24*19:]
	naive := NewNaive()
	naive.Fit(train, nil)
	nf, _ := naive.Forecast(24, nil)
	seasonal := NewSeasonalNaive(24)
	seasonal.Fit(train, nil)
	sf, _ := seasonal.Forecast(24, nil)
	if stats.MAE(sf, test) >= stats.MAE(nf, test) {
		t.Fatalf("seasonal naive (%.2f) not better than naive (%.2f)",
			stats.MAE(sf, test), stats.MAE(nf, test))
	}
}
