// Package clean implements stream-cleaning algorithms — the third class
// of consumer the paper names for Icewafl's benchmark output (§1:
// "specific cleaning algorithms"). Each cleaner repairs one attribute of
// a polluted stream; because Icewafl retains the clean stream, repair
// quality is directly measurable as the distance between the repaired
// and the original values.
package clean

import (
	"fmt"
	"math"

	"icewafl/internal/stream"
)

// Cleaner repairs one numeric attribute of a bounded stream in place
// (over a caller-owned copy).
type Cleaner interface {
	// Name identifies the algorithm.
	Name() string
	// Clean repairs attr across tuples, returning how many values it
	// changed.
	Clean(tuples []stream.Tuple, attr string) (int, error)
}

// ForwardFill replaces NULLs with the last seen value (leading NULLs with
// the first seen value) — the streaming ffill the paper itself applies
// in §3.2.1.
type ForwardFill struct{}

// Name implements Cleaner.
func (ForwardFill) Name() string { return "forward_fill" }

// Clean implements Cleaner.
func (ForwardFill) Clean(tuples []stream.Tuple, attr string) (int, error) {
	if err := checkAttr(tuples, attr); err != nil {
		return 0, err
	}
	changed := 0
	last := math.NaN()
	for i := range tuples {
		v, _ := tuples[i].Get(attr)
		if v.IsNull() {
			if !math.IsNaN(last) {
				tuples[i].Set(attr, stream.Float(last))
				changed++
			}
			continue
		}
		if f, ok := v.AsFloat(); ok {
			last = f
		}
	}
	// Backward-fill the leading gap.
	next := math.NaN()
	for i := len(tuples) - 1; i >= 0; i-- {
		v, _ := tuples[i].Get(attr)
		if v.IsNull() {
			if !math.IsNaN(next) {
				tuples[i].Set(attr, stream.Float(next))
				changed++
			}
			continue
		}
		if f, ok := v.AsFloat(); ok {
			next = f
		}
	}
	return changed, nil
}

// Interpolate replaces interior NULL runs with linear interpolation
// between the neighbouring observed values; leading/trailing runs fall
// back to the nearest observation.
type Interpolate struct{}

// Name implements Cleaner.
func (Interpolate) Name() string { return "interpolate" }

// Clean implements Cleaner.
func (Interpolate) Clean(tuples []stream.Tuple, attr string) (int, error) {
	if err := checkAttr(tuples, attr); err != nil {
		return 0, err
	}
	changed := 0
	n := len(tuples)
	i := 0
	for i < n {
		v, _ := tuples[i].Get(attr)
		if !v.IsNull() {
			i++
			continue
		}
		// NULL run [i, j).
		j := i
		for j < n {
			if v, _ := tuples[j].Get(attr); !v.IsNull() {
				break
			}
			j++
		}
		var left, right float64
		haveLeft, haveRight := false, false
		if i > 0 {
			if f, ok := tuples[i-1].GetFloat(attr); ok {
				left, haveLeft = f, true
			}
		}
		if j < n {
			if f, ok := tuples[j].GetFloat(attr); ok {
				right, haveRight = f, true
			}
		}
		for k := i; k < j; k++ {
			var val float64
			switch {
			case haveLeft && haveRight:
				frac := float64(k-i+1) / float64(j-i+1)
				val = left + (right-left)*frac
			case haveLeft:
				val = left
			case haveRight:
				val = right
			default:
				continue // whole stream NULL: nothing to anchor on
			}
			tuples[k].Set(attr, stream.Float(val))
			changed++
		}
		i = j
	}
	return changed, nil
}

// HampelFilter replaces outliers with the rolling median: a value
// deviating from the median of the surrounding window by more than
// Threshold times the scaled median absolute deviation is rewritten.
// The classic robust repair for spike errors.
type HampelFilter struct {
	// Window is the half-width (default 12): the window spans
	// [i-Window, i+Window].
	Window int
	// Threshold in MAD units (default 3).
	Threshold float64
}

// Name implements Cleaner.
func (HampelFilter) Name() string { return "hampel_filter" }

// Clean implements Cleaner.
func (h HampelFilter) Clean(tuples []stream.Tuple, attr string) (int, error) {
	if err := checkAttr(tuples, attr); err != nil {
		return 0, err
	}
	window := h.Window
	if window < 1 {
		window = 12
	}
	threshold := h.Threshold
	if threshold <= 0 {
		threshold = 3
	}
	n := len(tuples)
	orig := make([]float64, n)
	valid := make([]bool, n)
	for i := range tuples {
		orig[i], valid[i] = tuples[i].GetFloat(attr)
	}
	changed := 0
	const madScale = 1.4826
	for i := 0; i < n; i++ {
		if !valid[i] {
			continue
		}
		lo, hi := i-window, i+window+1
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		var neigh []float64
		for k := lo; k < hi; k++ {
			if k != i && valid[k] {
				neigh = append(neigh, orig[k])
			}
		}
		if len(neigh) < 4 {
			continue
		}
		med := median(neigh)
		devs := make([]float64, len(neigh))
		for k, v := range neigh {
			devs[k] = math.Abs(v - med)
		}
		mad := median(devs) * madScale
		if mad == 0 {
			// Constant neighbourhood: any deviation is an outlier.
			if math.Abs(orig[i]-med) > 1e-9 {
				tuples[i].Set(attr, stream.Float(med))
				changed++
			}
			continue
		}
		if math.Abs(orig[i]-med) > threshold*mad {
			tuples[i].Set(attr, stream.Float(med))
			changed++
		}
	}
	return changed, nil
}

// Pipeline chains cleaners: repair NULLs first, then outliers, etc.
type Pipeline []Cleaner

// Name implements Cleaner.
func (p Pipeline) Name() string {
	out := "pipeline("
	for i, c := range p {
		if i > 0 {
			out += ","
		}
		out += c.Name()
	}
	return out + ")"
}

// Clean implements Cleaner.
func (p Pipeline) Clean(tuples []stream.Tuple, attr string) (int, error) {
	total := 0
	for _, c := range p {
		n, err := c.Clean(tuples, attr)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// RepairScore quantifies a cleaner against ground truth: the RMSE of the
// attribute before and after cleaning, relative to the clean stream.
type RepairScore struct {
	RMSEBefore, RMSEAfter float64
	Changed               int
	// ImprovementPercent is the RMSE reduction (positive is better).
	ImprovementPercent float64
}

// Evaluate runs cleaner over a copy of polluted and scores it against
// the clean originals (matched by tuple ID). NULLs count as maximally
// wrong via the clean stream's attribute range.
func Evaluate(cleaner Cleaner, cleanTuples, polluted []stream.Tuple, attr string) (RepairScore, error) {
	work := make([]stream.Tuple, len(polluted))
	for i := range polluted {
		work[i] = polluted[i].Clone()
	}
	truth := make(map[uint64]float64, len(cleanTuples))
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range cleanTuples {
		if f, ok := t.GetFloat(attr); ok {
			truth[t.ID] = f
			lo = math.Min(lo, f)
			hi = math.Max(hi, f)
		}
	}
	nullPenalty := hi - lo
	if math.IsInf(nullPenalty, 0) || nullPenalty == 0 {
		nullPenalty = 1
	}
	rmse := func(tuples []stream.Tuple) float64 {
		var sse float64
		var n int
		for _, t := range tuples {
			want, ok := truth[t.ID]
			if !ok {
				continue
			}
			got, isNum := t.GetFloat(attr)
			if !isNum {
				got = want + nullPenalty
			}
			d := got - want
			sse += d * d
			n++
		}
		if n == 0 {
			return math.NaN()
		}
		return math.Sqrt(sse / float64(n))
	}
	score := RepairScore{RMSEBefore: rmse(work)}
	changed, err := cleaner.Clean(work, attr)
	if err != nil {
		return score, err
	}
	score.Changed = changed
	score.RMSEAfter = rmse(work)
	if score.RMSEBefore > 0 {
		score.ImprovementPercent = (score.RMSEBefore - score.RMSEAfter) / score.RMSEBefore * 100
	}
	return score, nil
}

func checkAttr(tuples []stream.Tuple, attr string) error {
	if len(tuples) == 0 {
		return nil
	}
	if !tuples[0].Schema().Has(attr) {
		return fmt.Errorf("clean: attribute %q not in schema", attr)
	}
	return nil
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	// insertion sort: windows are small
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	n := len(cp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
