package clean

import (
	"math"
	"testing"
	"time"

	"icewafl/internal/stream"
)

var schema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "v", Kind: stream.KindFloat},
)

func mk(values []stream.Value) []stream.Tuple {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]stream.Tuple, len(values))
	for i, v := range values {
		out[i] = stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Hour)), v,
		})
		out[i].ID = uint64(i + 1)
	}
	return out
}

func f(v float64) stream.Value { return stream.Float(v) }

func vals(tuples []stream.Tuple, t *testing.T) []float64 {
	t.Helper()
	out := make([]float64, len(tuples))
	for i, tp := range tuples {
		v, ok := tp.GetFloat("v")
		if !ok {
			out[i] = math.NaN()
			continue
		}
		out[i] = v
	}
	return out
}

func TestForwardFill(t *testing.T) {
	tuples := mk([]stream.Value{stream.Null(), f(2), stream.Null(), stream.Null(), f(5)})
	changed, err := (ForwardFill{}).Clean(tuples, "v")
	if err != nil || changed != 3 {
		t.Fatalf("changed %d, %v", changed, err)
	}
	want := []float64{2, 2, 2, 2, 5}
	for i, v := range vals(tuples, t) {
		if v != want[i] {
			t.Fatalf("ffill %v, want %v", vals(tuples, t), want)
		}
	}
}

func TestInterpolate(t *testing.T) {
	tuples := mk([]stream.Value{f(0), stream.Null(), stream.Null(), stream.Null(), f(8), stream.Null()})
	changed, err := (Interpolate{}).Clean(tuples, "v")
	if err != nil || changed != 4 {
		t.Fatalf("changed %d, %v", changed, err)
	}
	want := []float64{0, 2, 4, 6, 8, 8}
	for i, v := range vals(tuples, t) {
		if math.Abs(v-want[i]) > 1e-9 {
			t.Fatalf("interpolate %v, want %v", vals(tuples, t), want)
		}
	}
}

func TestInterpolateLeadingRun(t *testing.T) {
	tuples := mk([]stream.Value{stream.Null(), stream.Null(), f(4)})
	changed, _ := (Interpolate{}).Clean(tuples, "v")
	if changed != 2 {
		t.Fatalf("changed %d", changed)
	}
	got := vals(tuples, t)
	if got[0] != 4 || got[1] != 4 {
		t.Fatalf("leading fill %v", got)
	}
}

func TestInterpolateAllNull(t *testing.T) {
	tuples := mk([]stream.Value{stream.Null(), stream.Null()})
	changed, err := (Interpolate{}).Clean(tuples, "v")
	if err != nil || changed != 0 {
		t.Fatalf("all-null: changed %d, %v", changed, err)
	}
}

func TestHampelRepairsSpike(t *testing.T) {
	values := make([]stream.Value, 50)
	for i := range values {
		values[i] = f(10 + float64(i%3)) // 10, 11, 12 pattern
	}
	values[25] = f(500)
	tuples := mk(values)
	changed, err := (HampelFilter{Window: 5, Threshold: 3}).Clean(tuples, "v")
	if err != nil || changed != 1 {
		t.Fatalf("changed %d, %v", changed, err)
	}
	if v, _ := tuples[25].GetFloat("v"); v > 13 || v < 10 {
		t.Fatalf("spike repaired to %g", v)
	}
	// Non-outliers untouched.
	if v, _ := tuples[10].GetFloat("v"); v != 11 {
		t.Fatalf("inlier changed to %g", v)
	}
}

func TestHampelSkipsNulls(t *testing.T) {
	tuples := mk([]stream.Value{f(1), stream.Null(), f(1), f(1), f(1), f(100), f(1), f(1), f(1)})
	if _, err := (HampelFilter{Window: 3, Threshold: 3}).Clean(tuples, "v"); err != nil {
		t.Fatal(err)
	}
	v, _ := tuples[1].Get("v")
	if !v.IsNull() {
		t.Fatal("hampel filled a null")
	}
}

func TestPipelineChainsCleaners(t *testing.T) {
	values := make([]stream.Value, 40)
	for i := range values {
		values[i] = f(10)
	}
	values[5] = stream.Null()
	values[20] = f(999)
	tuples := mk(values)
	p := Pipeline{Interpolate{}, HampelFilter{Window: 5, Threshold: 3}}
	changed, err := p.Clean(tuples, "v")
	if err != nil || changed != 2 {
		t.Fatalf("changed %d, %v", changed, err)
	}
	for i, v := range vals(tuples, t) {
		if v != 10 {
			t.Fatalf("tuple %d not repaired: %g", i, v)
		}
	}
	if p.Name() != "pipeline(interpolate,hampel_filter)" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestCleanUnknownAttr(t *testing.T) {
	tuples := mk([]stream.Value{f(1)})
	for _, c := range []Cleaner{ForwardFill{}, Interpolate{}, HampelFilter{}} {
		if _, err := c.Clean(tuples, "zzz"); err == nil {
			t.Errorf("%s accepted unknown attribute", c.Name())
		}
	}
	// Empty stream is a no-op, not an error.
	if _, err := (ForwardFill{}).Clean(nil, "zzz"); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateMeasuresImprovement(t *testing.T) {
	clean := mk([]stream.Value{f(1), f(2), f(3), f(4), f(5), f(6), f(7), f(8)})
	polluted := make([]stream.Tuple, len(clean))
	for i := range clean {
		polluted[i] = clean[i].Clone()
	}
	polluted[3].Set("v", stream.Null())
	polluted[5].Set("v", stream.Null())
	score, err := Evaluate(ForwardFill{}, clean, polluted, "v")
	if err != nil {
		t.Fatal(err)
	}
	if score.Changed != 2 {
		t.Fatalf("changed %d", score.Changed)
	}
	if !(score.RMSEAfter < score.RMSEBefore) || score.ImprovementPercent <= 0 {
		t.Fatalf("no improvement: %+v", score)
	}
	// The polluted input itself is untouched by Evaluate.
	if v, _ := polluted[3].Get("v"); !v.IsNull() {
		t.Fatal("Evaluate mutated its input")
	}
}

func TestMedianHelper(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median")
	}
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
}
