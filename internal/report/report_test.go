package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

func runScenario(t *testing.T) (*core.Process, *core.Result) {
	t.Helper()
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	src := stream.NewGeneratorSource(schema, 100, func(i int) stream.Tuple {
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Hour)),
			stream.Float(float64(i)),
		})
	})
	proc := core.NewProcess(core.NewPipeline(
		core.NewComposite("update", core.TimeInterval{From: base.Add(24 * time.Hour)},
			core.NewStandard("nulls", core.MissingValue{},
				core.NewRandomConst(0.3, rng.New(1)), "v"),
		),
		core.NewStandard("delay", core.DelayTuple{Delay: 2 * time.Hour},
			core.NewRandomConst(0.05, rng.New(2))),
	))
	res, err := proc.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	return proc, res
}

func TestReportContainsAllSections(t *testing.T) {
	proc, res := runScenario(t)
	var buf bytes.Buffer
	err := Write(&buf, Input{
		Title:       "test run",
		Process:     proc,
		Result:      res,
		GeneratedAt: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# test run",
		"## Stream",
		"## Pipelines",
		"update (composite, sequence)",
		"missing_value",
		"## Errors by polluter",
		"## Errors by type",
		"## Changed values by attribute",
		"delayed",
		"## Errors by hour of day",
		"2026-07-06T12:00:00Z",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q\n---\n%s", want, out)
		}
	}
}

func TestReportWithoutProcessOrTimestamp(t *testing.T) {
	_, res := runScenario(t)
	var buf bytes.Buffer
	if err := Write(&buf, Input{Result: res}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "## Pipelines") {
		t.Error("pipeline section without process")
	}
	if strings.Contains(out, "Generated") {
		t.Error("timestamp without GeneratedAt")
	}
	if !strings.Contains(out, "# Pollution run report") {
		t.Error("default title missing")
	}
}

func TestReportNilResult(t *testing.T) {
	if err := Write(&bytes.Buffer{}, Input{}); err == nil {
		t.Fatal("nil result accepted")
	}
}

func TestDescribePolluterShapes(t *testing.T) {
	keyed := core.NewKeyedPolluter("per-sensor", "sensor", func(string) core.Polluter {
		return core.NewStandard("x", core.MissingValue{}, nil, "v")
	})
	obs := core.NewObserver(core.NewStreamState(0))
	choice := core.NewChoice("pick", nil, rng.New(1),
		core.NewStandard("a", core.DropTuple{}, nil),
	)
	pipe := core.NewPipeline(keyed, obs, choice)
	out := core.DescribePipeline(pipe)
	for _, want := range []string{"keyed by sensor", "state observer", "(composite, choice)", "dropped_tuple"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe lacks %q:\n%s", want, out)
		}
	}
}
