// Package report renders a pollution run as a Markdown document: the
// configured pipelines, the injected-error inventory (per polluter, per
// attribute, per hour of day), ground-truth diff statistics, and stream
// metadata. The icewafl CLI writes it next to the polluted stream so a
// benchmark dataset ships with its own documentation.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/groundtruth"
	"icewafl/internal/plot"
)

// Input bundles everything a report covers.
type Input struct {
	// Title heads the document.
	Title string
	// Process is the executed pollution process (for the pipeline
	// outline); optional.
	Process *core.Process
	// Result is the pollution run's output.
	Result *core.Result
	// GeneratedAt stamps the document; pass a fixed value for
	// reproducible reports.
	GeneratedAt time.Time
}

// Write renders the Markdown report.
func Write(w io.Writer, in Input) error {
	if in.Result == nil {
		return fmt.Errorf("report: no result")
	}
	res := in.Result
	title := in.Title
	if title == "" {
		title = "Pollution run report"
	}
	fmt.Fprintf(w, "# %s\n\n", title)
	if !in.GeneratedAt.IsZero() {
		fmt.Fprintf(w, "Generated %s.\n\n", in.GeneratedAt.UTC().Format(time.RFC3339))
	}

	fmt.Fprintf(w, "## Stream\n\n")
	fmt.Fprintf(w, "| | |\n|---|---|\n")
	fmt.Fprintf(w, "| clean tuples | %d |\n", len(res.Clean))
	fmt.Fprintf(w, "| polluted tuples | %d |\n", len(res.Polluted))
	fmt.Fprintf(w, "| dropped tuples | %d |\n", res.DroppedTuples)
	fmt.Fprintf(w, "| errors injected | %d |\n", res.Log.Len())
	if n := len(res.Clean); n > 0 {
		fmt.Fprintf(w, "| tuples with ≥1 error | %d (%.1f%%) |\n",
			len(res.Log.PollutedTuples()),
			float64(len(res.Log.PollutedTuples()))/float64(n)*100)
	}
	fmt.Fprintln(w)

	if in.Process != nil {
		fmt.Fprintf(w, "## Pipelines\n\n```\n")
		for i, p := range in.Process.Pipelines {
			fmt.Fprintf(w, "pipeline %d:\n%s", i, core.DescribePipeline(p))
		}
		fmt.Fprintf(w, "```\n\n")
	}

	fmt.Fprintf(w, "## Errors by polluter\n\n")
	writeCountTable(w, res.Log.CountByPolluter(), "polluter")

	fmt.Fprintf(w, "## Errors by type\n\n")
	writeCountTable(w, res.Log.CountByError(), "error type")

	if len(res.Clean) > 0 {
		diff := groundtruth.Diff(res.Clean, res.Polluted)
		byAttr := diff.CountByAttr()
		if len(byAttr) > 0 {
			fmt.Fprintf(w, "## Changed values by attribute\n\n")
			writeCountTable(w, byAttr, "attribute")
		}
		delayed, dropped := 0, 0
		for _, d := range diff.Diffs {
			if d.Delayed {
				delayed++
			}
			if d.Dropped {
				dropped++
			}
		}
		if delayed > 0 || dropped > 0 {
			fmt.Fprintf(w, "Temporal effects: %d delayed, %d dropped.\n\n", delayed, dropped)
		}
	}

	hours := res.Log.CountByHour()
	total := 0
	series := make([]float64, 24)
	for h, n := range hours {
		total += n
		series[h] = float64(n)
	}
	if total > 0 {
		fmt.Fprintf(w, "## Errors by hour of day\n\n```\n")
		fmt.Fprint(w, plot.Lines("", []plot.Series{{Name: "errors", Values: series}}, 48, 8))
		fmt.Fprintf(w, "```\n")
	}
	return nil
}

// writeCountTable renders a map as a sorted two-column Markdown table.
func writeCountTable(w io.Writer, counts map[string]int, label string) {
	if len(counts) == 0 {
		fmt.Fprintf(w, "none.\n\n")
		return
	}
	type row struct {
		name string
		n    int
	}
	rows := make([]row, 0, len(counts))
	for name, n := range counts {
		rows = append(rows, row{name, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintf(w, "| %s | errors |\n|---|---|\n", label)
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %d |\n", escapePipes(r.name), r.n)
	}
	fmt.Fprintln(w)
}

func escapePipes(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
