package perf

import (
	"math"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const benchFixture = `goos: linux
goarch: amd64
pkg: icewafl
cpu: AMD EPYC 7B13
BenchmarkPollutionTupleWise-8   	     402	   2993971 ns/op	 2560723 B/op	   20019 allocs/op
BenchmarkPollutionTupleWise-8   	     400	   3006029 ns/op	 2560723 B/op	   20019 allocs/op
BenchmarkPollutionMicroBatch-8  	     478	   2503626 ns/op	 2460884 B/op	   10184 allocs/op
BenchmarkFigure8RuntimeOverhead/polluters=1-8         	     537	   2231270 ns/op
BenchmarkThroughput-8           	    1000	   1048576 ns/op	 100.00 MB/s
PASS
ok  	icewafl	8.456s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Errorf("context lines not captured: goos=%q goarch=%q", rep.GOOS, rep.GOARCH)
	}
	if rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4: %v", len(rep.Benchmarks), rep.Benchmarks)
	}

	tw, ok := rep.Benchmarks["BenchmarkPollutionTupleWise"]
	if !ok {
		t.Fatal("BenchmarkPollutionTupleWise missing (GOMAXPROCS suffix not stripped?)")
	}
	if tw.Samples != 2 {
		t.Errorf("samples = %d, want 2", tw.Samples)
	}
	wantNs := (2993971.0 + 3006029.0) / 2
	if math.Abs(tw.NsPerOp-wantNs) > 1 {
		t.Errorf("ns/op = %f, want %f", tw.NsPerOp, wantNs)
	}
	if tw.AllocsPerOp != 20019 {
		t.Errorf("allocs/op = %f, want 20019", tw.AllocsPerOp)
	}
	if tw.BPerOp != 2560723 {
		t.Errorf("B/op = %f, want 2560723", tw.BPerOp)
	}
	if tw.Iterations != 802 {
		t.Errorf("iterations = %d, want 802", tw.Iterations)
	}

	sub, ok := rep.Benchmarks["BenchmarkFigure8RuntimeOverhead/polluters=1"]
	if !ok {
		t.Fatal("sub-benchmark name not preserved")
	}
	if sub.NsPerOp != 2231270 {
		t.Errorf("sub ns/op = %f", sub.NsPerOp)
	}

	thr := rep.Benchmarks["BenchmarkThroughput"]
	if thr.MBPerS != 100 {
		t.Errorf("MB/s = %f, want 100", thr.MBPerS)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok  \ticewafl\t0.001s\n")); err == nil {
		t.Fatal("Parse accepted input without benchmark lines")
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo/n=10-8": "BenchmarkFoo/n=10",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d vs %d", len(back.Benchmarks), len(rep.Benchmarks))
	}
	for name, want := range rep.Benchmarks {
		got, ok := back.Benchmarks[name]
		if !ok {
			t.Errorf("benchmark %s lost in round trip", name)
			continue
		}
		if got != want {
			t.Errorf("benchmark %s changed: %+v vs %+v", name, got, want)
		}
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("ReadFile accepted a missing file")
	}
}

func mkReport(benches map[string][2]float64) *Report {
	r := NewReport()
	for name, v := range benches {
		r.Benchmarks[name] = Result{Name: name, NsPerOp: v[0], AllocsPerOp: v[1], Samples: 1}
	}
	return r
}

func TestCompareAndGate(t *testing.T) {
	base := mkReport(map[string][2]float64{
		"BenchmarkA": {1000, 10},
		"BenchmarkB": {2000, 0},
		"BenchmarkC": {3000, 5}, // absent from current: must be skipped
	})
	cur := mkReport(map[string][2]float64{
		"BenchmarkA": {1300, 5}, // +30% slower, half the allocs
		"BenchmarkB": {1000, 0}, // 2x faster
		"BenchmarkD": {99, 1},   // new benchmark: must be skipped
	})

	deltas := Compare(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("Compare returned %d deltas, want 2: %+v", len(deltas), deltas)
	}
	// Sorted by name.
	if deltas[0].Name != "BenchmarkA" || deltas[1].Name != "BenchmarkB" {
		t.Errorf("deltas not sorted by name: %s, %s", deltas[0].Name, deltas[1].Name)
	}
	if math.Abs(deltas[0].NsRatio-1.3) > 1e-9 {
		t.Errorf("NsRatio = %f, want 1.3", deltas[0].NsRatio)
	}
	if math.Abs(deltas[0].AllocRatio-0.5) > 1e-9 {
		t.Errorf("AllocRatio = %f, want 0.5", deltas[0].AllocRatio)
	}
	if deltas[1].AllocRatio != 0 {
		t.Errorf("AllocRatio with zero-alloc baseline = %f, want 0", deltas[1].AllocRatio)
	}
	if s := deltas[1].Speedup(); math.Abs(s-2) > 1e-9 {
		t.Errorf("Speedup = %f, want 2", s)
	}

	bad := Gate(base, cur, 0.20)
	if len(bad) != 1 || bad[0].Name != "BenchmarkA" {
		t.Fatalf("Gate(0.20) = %+v, want only BenchmarkA", bad)
	}
	if bad = Gate(base, cur, 0.50); len(bad) != 0 {
		t.Errorf("Gate(0.50) flagged %+v, want none", bad)
	}

	table := FormatTable(Gate(base, cur, 0.20))
	if !strings.Contains(table, "BenchmarkA") || !strings.Contains(table, "1.30x") {
		t.Errorf("FormatTable output missing expected content:\n%s", table)
	}
}

// TestGateZeroAllocGrowth exercises the allocs/op arm of the gate:
// zero-alloc-class benchmarks (baseline allocs/op <= ZeroAllocCeiling)
// fail on any allocation growth even when ns/op is flat, while
// allocation-heavy benchmarks are judged on ns/op alone.
func TestGateZeroAllocGrowth(t *testing.T) {
	base := mkReport(map[string][2]float64{
		"BenchmarkHotPath":   {1000, 19},    // zero-alloc class
		"BenchmarkNoAllocs":  {1000, 0},     // zero-alloc class, literal zero
		"BenchmarkBatchPath": {1000, 20000}, // allocation-heavy: not gated on allocs
	})

	// Flat ns/op, but the hot path gained one allocation: must fail.
	cur := mkReport(map[string][2]float64{
		"BenchmarkHotPath":   {1000, 20},
		"BenchmarkNoAllocs":  {1000, 0},
		"BenchmarkBatchPath": {1000, 40000},
	})
	bad := Gate(base, cur, 0.20)
	if len(bad) != 1 || bad[0].Name != "BenchmarkHotPath" {
		t.Fatalf("Gate = %+v, want only BenchmarkHotPath", bad)
	}
	if !strings.Contains(bad[0].Reason, "allocs/op grew 19 -> 20") {
		t.Errorf("Reason = %q, want allocs/op growth message", bad[0].Reason)
	}
	if table := FormatTable(bad); !strings.Contains(table, "zero-alloc-class") {
		t.Errorf("FormatTable does not surface the failure reason:\n%s", table)
	}

	// A benchmark that was truly zero-alloc gaining its first
	// allocation must fail too (omitempty makes 0 and absent look the
	// same in the JSON, so the ceiling — not presence — is the class
	// test).
	cur = mkReport(map[string][2]float64{
		"BenchmarkHotPath":   {1000, 19},
		"BenchmarkNoAllocs":  {1000, 1},
		"BenchmarkBatchPath": {1000, 20000},
	})
	bad = Gate(base, cur, 0.20)
	if len(bad) != 1 || bad[0].Name != "BenchmarkNoAllocs" {
		t.Fatalf("Gate = %+v, want only BenchmarkNoAllocs", bad)
	}

	// Fewer allocations and flat timings: clean pass.
	cur = mkReport(map[string][2]float64{
		"BenchmarkHotPath":   {1010, 18},
		"BenchmarkNoAllocs":  {990, 0},
		"BenchmarkBatchPath": {1000, 19000},
	})
	if bad = Gate(base, cur, 0.20); len(bad) != 0 {
		t.Errorf("Gate flagged %+v, want none", bad)
	}

	// When both arms fail, the ns/op reason wins (it subsumes the
	// alloc growth in the report).
	cur = mkReport(map[string][2]float64{
		"BenchmarkHotPath": {2000, 25},
	})
	bad = Gate(base, cur, 0.20)
	if len(bad) != 1 || !strings.Contains(bad[0].Reason, "ns/op") {
		t.Fatalf("Gate = %+v, want ns/op failure for BenchmarkHotPath", bad)
	}
}

func TestParseProcs(t *testing.T) {
	rep, err := Parse(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != 8 {
		t.Errorf("Procs = %d, want 8 (from the -8 name suffix)", rep.Procs)
	}
	// GOMAXPROCS=1 output carries no suffix at all.
	rep, err = Parse(strings.NewReader("BenchmarkSolo   \t100\t1000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != 1 {
		t.Errorf("Procs = %d, want 1 for suffix-less names", rep.Procs)
	}
}

func mkScalingReport(procs int, ns map[int]float64) *Report {
	r := NewReport()
	r.Procs = procs
	for shards, v := range ns {
		name := "BenchmarkShardedKeyed/shards=" + strconv.Itoa(shards)
		r.Benchmarks[name] = Result{Name: name, NsPerOp: v, Samples: 1}
	}
	return r
}

func TestShardScaling(t *testing.T) {
	rep := mkScalingReport(8, map[int]float64{1: 8000, 2: 4000, 4: 2500, 8: 2000})
	pts, err := ShardScaling(rep, "BenchmarkShardedKeyed")
	if err != nil {
		t.Fatalf("ShardScaling: %v", err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4: %+v", len(pts), pts)
	}
	for i, want := range []struct {
		shards  int
		speedup float64
	}{{1, 1}, {2, 2}, {4, 3.2}, {8, 4}} {
		if pts[i].Shards != want.shards || math.Abs(pts[i].Speedup-want.speedup) > 1e-9 {
			t.Errorf("point %d = %+v, want shards=%d speedup=%.2f", i, pts[i], want.shards, want.speedup)
		}
	}

	if _, err := ShardScaling(rep, "BenchmarkNoSuchFamily"); err == nil {
		t.Error("ShardScaling accepted an absent family")
	}
	noAnchor := mkScalingReport(8, map[int]float64{2: 4000, 8: 2000})
	if _, err := ShardScaling(noAnchor, "BenchmarkShardedKeyed"); err == nil {
		t.Error("ShardScaling accepted a curve without a shards=1 anchor")
	}
}

func TestScalingGate(t *testing.T) {
	family := "BenchmarkShardedKeyed"

	// Healthy multicore curve: 4x at shards=8 on 8 procs passes a 3x floor.
	healthy := mkScalingReport(8, map[int]float64{1: 8000, 2: 4400, 4: 2700, 8: 2000})
	if err := ScalingGate(healthy, family, 3.0, 0.45); err != nil {
		t.Errorf("healthy curve failed: %v", err)
	}

	// Collapsed curve on the same host: shards=8 barely above sequential.
	flat := mkScalingReport(8, map[int]float64{1: 8000, 2: 7800, 4: 7500, 8: 7200})
	if err := ScalingGate(flat, family, 3.0, 0.45); err == nil {
		t.Error("flat curve passed a 3x floor on 8 procs")
	}

	// Any point dropping below the never-slower ratio fails, even when
	// the widest point recovers.
	dip := mkScalingReport(8, map[int]float64{1: 8000, 2: 20000, 8: 2000})
	if err := ScalingGate(dip, family, 3.0, 0.45); err == nil {
		t.Error("mid-curve collapse below minRatio passed")
	}

	// Single-core host: floor prorates to 3.0*1/8 = 0.375, clamped up to
	// minRatio — a mild slowdown passes, a collapse fails.
	oneProcOK := mkScalingReport(1, map[int]float64{1: 8000, 2: 9000, 4: 10000, 8: 11000})
	if err := ScalingGate(oneProcOK, family, 3.0, 0.45); err != nil {
		t.Errorf("1-proc mild-overhead curve failed: %v", err)
	}
	oneProcBad := mkScalingReport(1, map[int]float64{1: 8000, 8: 20000})
	if err := ScalingGate(oneProcBad, family, 3.0, 0.45); err == nil {
		t.Error("1-proc 2.5x slowdown passed the never-slower ratio")
	}

	// 4-proc CI host, shards=8 curve: effective floor 3.0*4/8 = 1.5.
	ci := mkScalingReport(4, map[int]float64{1: 8000, 2: 4800, 4: 3600, 8: 4000})
	if err := ScalingGate(ci, family, 3.0, 0.45); err != nil {
		t.Errorf("4-proc 2x curve failed the prorated 1.5x floor: %v", err)
	}
	ciBad := mkScalingReport(4, map[int]float64{1: 8000, 2: 7000, 4: 6500, 8: 6000})
	if err := ScalingGate(ciBad, family, 3.0, 0.45); err == nil {
		t.Error("4-proc 1.33x curve passed the prorated 1.5x floor")
	}

	// Procs=0 (pre-field baseline) is read as 1 proc.
	legacy := mkScalingReport(0, map[int]float64{1: 8000, 8: 9000})
	if err := ScalingGate(legacy, family, 3.0, 0.45); err != nil {
		t.Errorf("legacy procs=0 report failed: %v", err)
	}

	out := FormatScaling(family, func() []ScalingPoint {
		pts, _ := ShardScaling(healthy, family)
		return pts
	}())
	if !strings.Contains(out, "shards=8") || !strings.Contains(out, "4.00x") {
		t.Errorf("FormatScaling output missing expected content:\n%s", out)
	}
}
