package perf

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

const benchFixture = `goos: linux
goarch: amd64
pkg: icewafl
cpu: AMD EPYC 7B13
BenchmarkPollutionTupleWise-8   	     402	   2993971 ns/op	 2560723 B/op	   20019 allocs/op
BenchmarkPollutionTupleWise-8   	     400	   3006029 ns/op	 2560723 B/op	   20019 allocs/op
BenchmarkPollutionMicroBatch-8  	     478	   2503626 ns/op	 2460884 B/op	   10184 allocs/op
BenchmarkFigure8RuntimeOverhead/polluters=1-8         	     537	   2231270 ns/op
BenchmarkThroughput-8           	    1000	   1048576 ns/op	 100.00 MB/s
PASS
ok  	icewafl	8.456s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Errorf("context lines not captured: goos=%q goarch=%q", rep.GOOS, rep.GOARCH)
	}
	if rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4: %v", len(rep.Benchmarks), rep.Benchmarks)
	}

	tw, ok := rep.Benchmarks["BenchmarkPollutionTupleWise"]
	if !ok {
		t.Fatal("BenchmarkPollutionTupleWise missing (GOMAXPROCS suffix not stripped?)")
	}
	if tw.Samples != 2 {
		t.Errorf("samples = %d, want 2", tw.Samples)
	}
	wantNs := (2993971.0 + 3006029.0) / 2
	if math.Abs(tw.NsPerOp-wantNs) > 1 {
		t.Errorf("ns/op = %f, want %f", tw.NsPerOp, wantNs)
	}
	if tw.AllocsPerOp != 20019 {
		t.Errorf("allocs/op = %f, want 20019", tw.AllocsPerOp)
	}
	if tw.BPerOp != 2560723 {
		t.Errorf("B/op = %f, want 2560723", tw.BPerOp)
	}
	if tw.Iterations != 802 {
		t.Errorf("iterations = %d, want 802", tw.Iterations)
	}

	sub, ok := rep.Benchmarks["BenchmarkFigure8RuntimeOverhead/polluters=1"]
	if !ok {
		t.Fatal("sub-benchmark name not preserved")
	}
	if sub.NsPerOp != 2231270 {
		t.Errorf("sub ns/op = %f", sub.NsPerOp)
	}

	thr := rep.Benchmarks["BenchmarkThroughput"]
	if thr.MBPerS != 100 {
		t.Errorf("MB/s = %f, want 100", thr.MBPerS)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok  \ticewafl\t0.001s\n")); err == nil {
		t.Fatal("Parse accepted input without benchmark lines")
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo/n=10-8": "BenchmarkFoo/n=10",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d vs %d", len(back.Benchmarks), len(rep.Benchmarks))
	}
	for name, want := range rep.Benchmarks {
		got, ok := back.Benchmarks[name]
		if !ok {
			t.Errorf("benchmark %s lost in round trip", name)
			continue
		}
		if got != want {
			t.Errorf("benchmark %s changed: %+v vs %+v", name, got, want)
		}
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("ReadFile accepted a missing file")
	}
}

func mkReport(benches map[string][2]float64) *Report {
	r := NewReport()
	for name, v := range benches {
		r.Benchmarks[name] = Result{Name: name, NsPerOp: v[0], AllocsPerOp: v[1], Samples: 1}
	}
	return r
}

func TestCompareAndGate(t *testing.T) {
	base := mkReport(map[string][2]float64{
		"BenchmarkA": {1000, 10},
		"BenchmarkB": {2000, 0},
		"BenchmarkC": {3000, 5}, // absent from current: must be skipped
	})
	cur := mkReport(map[string][2]float64{
		"BenchmarkA": {1300, 5}, // +30% slower, half the allocs
		"BenchmarkB": {1000, 0}, // 2x faster
		"BenchmarkD": {99, 1},   // new benchmark: must be skipped
	})

	deltas := Compare(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("Compare returned %d deltas, want 2: %+v", len(deltas), deltas)
	}
	// Sorted by name.
	if deltas[0].Name != "BenchmarkA" || deltas[1].Name != "BenchmarkB" {
		t.Errorf("deltas not sorted by name: %s, %s", deltas[0].Name, deltas[1].Name)
	}
	if math.Abs(deltas[0].NsRatio-1.3) > 1e-9 {
		t.Errorf("NsRatio = %f, want 1.3", deltas[0].NsRatio)
	}
	if math.Abs(deltas[0].AllocRatio-0.5) > 1e-9 {
		t.Errorf("AllocRatio = %f, want 0.5", deltas[0].AllocRatio)
	}
	if deltas[1].AllocRatio != 0 {
		t.Errorf("AllocRatio with zero-alloc baseline = %f, want 0", deltas[1].AllocRatio)
	}
	if s := deltas[1].Speedup(); math.Abs(s-2) > 1e-9 {
		t.Errorf("Speedup = %f, want 2", s)
	}

	bad := Gate(base, cur, 0.20)
	if len(bad) != 1 || bad[0].Name != "BenchmarkA" {
		t.Fatalf("Gate(0.20) = %+v, want only BenchmarkA", bad)
	}
	if bad = Gate(base, cur, 0.50); len(bad) != 0 {
		t.Errorf("Gate(0.50) flagged %+v, want none", bad)
	}

	table := FormatTable(Gate(base, cur, 0.20))
	if !strings.Contains(table, "BenchmarkA") || !strings.Contains(table, "1.30x") {
		t.Errorf("FormatTable output missing expected content:\n%s", table)
	}
}

// TestGateZeroAllocGrowth exercises the allocs/op arm of the gate:
// zero-alloc-class benchmarks (baseline allocs/op <= ZeroAllocCeiling)
// fail on any allocation growth even when ns/op is flat, while
// allocation-heavy benchmarks are judged on ns/op alone.
func TestGateZeroAllocGrowth(t *testing.T) {
	base := mkReport(map[string][2]float64{
		"BenchmarkHotPath":   {1000, 19},    // zero-alloc class
		"BenchmarkNoAllocs":  {1000, 0},     // zero-alloc class, literal zero
		"BenchmarkBatchPath": {1000, 20000}, // allocation-heavy: not gated on allocs
	})

	// Flat ns/op, but the hot path gained one allocation: must fail.
	cur := mkReport(map[string][2]float64{
		"BenchmarkHotPath":   {1000, 20},
		"BenchmarkNoAllocs":  {1000, 0},
		"BenchmarkBatchPath": {1000, 40000},
	})
	bad := Gate(base, cur, 0.20)
	if len(bad) != 1 || bad[0].Name != "BenchmarkHotPath" {
		t.Fatalf("Gate = %+v, want only BenchmarkHotPath", bad)
	}
	if !strings.Contains(bad[0].Reason, "allocs/op grew 19 -> 20") {
		t.Errorf("Reason = %q, want allocs/op growth message", bad[0].Reason)
	}
	if table := FormatTable(bad); !strings.Contains(table, "zero-alloc-class") {
		t.Errorf("FormatTable does not surface the failure reason:\n%s", table)
	}

	// A benchmark that was truly zero-alloc gaining its first
	// allocation must fail too (omitempty makes 0 and absent look the
	// same in the JSON, so the ceiling — not presence — is the class
	// test).
	cur = mkReport(map[string][2]float64{
		"BenchmarkHotPath":   {1000, 19},
		"BenchmarkNoAllocs":  {1000, 1},
		"BenchmarkBatchPath": {1000, 20000},
	})
	bad = Gate(base, cur, 0.20)
	if len(bad) != 1 || bad[0].Name != "BenchmarkNoAllocs" {
		t.Fatalf("Gate = %+v, want only BenchmarkNoAllocs", bad)
	}

	// Fewer allocations and flat timings: clean pass.
	cur = mkReport(map[string][2]float64{
		"BenchmarkHotPath":   {1010, 18},
		"BenchmarkNoAllocs":  {990, 0},
		"BenchmarkBatchPath": {1000, 19000},
	})
	if bad = Gate(base, cur, 0.20); len(bad) != 0 {
		t.Errorf("Gate flagged %+v, want none", bad)
	}

	// When both arms fail, the ns/op reason wins (it subsumes the
	// alloc growth in the report).
	cur = mkReport(map[string][2]float64{
		"BenchmarkHotPath": {2000, 25},
	})
	bad = Gate(base, cur, 0.20)
	if len(bad) != 1 || !strings.Contains(bad[0].Reason, "ns/op") {
		t.Fatalf("Gate = %+v, want ns/op failure for BenchmarkHotPath", bad)
	}
}
