// Package perf is the machine-readable performance harness of the
// repository: it parses `go test -bench` output into a JSON report
// (BENCH_*.json), compares reports against a committed baseline, and
// powers the CI perf-regression gate (`make bench` / `make perfgate`).
// It is a minimal, stdlib-only take on what golang.org/x/perf/benchstat
// does for full statistical workflows.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is the aggregated measurement of one benchmark.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (sub-benchmark paths are preserved).
	Name string `json:"name"`
	// Iterations is the total b.N across all samples.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the mean ns/op across samples.
	NsPerOp float64 `json:"ns_per_op"`
	// BPerOp is the mean B/op (present only with -benchmem).
	BPerOp float64 `json:"b_per_op,omitempty"`
	// AllocsPerOp is the mean allocs/op (present only with -benchmem).
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// MBPerS is the mean MB/s (present only for benchmarks that call
	// b.SetBytes).
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// Samples is the number of result lines aggregated (e.g. -count=N).
	Samples int `json:"samples"`
}

// Report is one benchmark run rendered machine-readable.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	// Procs is the GOMAXPROCS the benchmarks ran at, recovered from the
	// -N benchmark-name suffix (1 when the suffix is absent, which is
	// how go test renders GOMAXPROCS=1). The scaling gate uses it to
	// scale its speedup floor to the cores actually available.
	Procs      int               `json:"procs,omitempty"`
	When       time.Time         `json:"when"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// NewReport returns an empty report stamped with the current toolchain.
func NewReport() *Report {
	return &Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		When:       time.Now().UTC(),
		Benchmarks: map[string]Result{},
	}
}

// normalizeName strips the trailing -GOMAXPROCS suffix go test appends
// to benchmark names ("BenchmarkFoo-8" → "BenchmarkFoo"), leaving
// sub-benchmark paths ("BenchmarkFoo/n=10-8" → "BenchmarkFoo/n=10")
// intact.
func normalizeName(name string) string {
	base, _ := splitProcs(name)
	return base
}

// splitProcs splits a raw benchmark name into its base name and the
// GOMAXPROCS encoded in the trailing -N suffix. go test omits the
// suffix entirely when GOMAXPROCS is 1, so a suffix-less name reports
// procs=1.
func splitProcs(name string) (base string, procs int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

// sample is one parsed benchmark result line.
type sample struct {
	iterations int64
	nsPerOp    float64
	bPerOp     float64
	hasB       bool
	allocs     float64
	hasAllocs  bool
	mbPerS     float64
	hasMB      bool
}

// parseLine parses one `BenchmarkX-N  iters  123 ns/op ...` line. ok is
// false for non-benchmark lines. procs is the GOMAXPROCS recovered from
// the -N name suffix (1 when absent).
func parseLine(line string) (name string, procs int, s sample, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, sample{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, sample{}, false
	}
	s.iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsPerOp = v
		case "B/op":
			s.bPerOp, s.hasB = v, true
		case "allocs/op":
			s.allocs, s.hasAllocs = v, true
		case "MB/s":
			s.mbPerS, s.hasMB = v, true
		}
	}
	if s.nsPerOp == 0 && s.iterations == 0 {
		return "", 0, sample{}, false
	}
	name, procs = splitProcs(fields[0])
	return name, procs, s, true
}

// Parse reads `go test -bench` text output and aggregates it into a
// Report. Repeated samples of the same benchmark (-count=N) are
// averaged. Context lines (goos/goarch/cpu) are captured when present.
func Parse(r io.Reader) (*Report, error) {
	rep := NewReport()
	type agg struct {
		sum     sample
		samples int
	}
	aggs := map[string]*agg{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		}
		name, procs, s, ok := parseLine(line)
		if !ok {
			continue
		}
		if procs > rep.Procs {
			rep.Procs = procs
		}
		a := aggs[name]
		if a == nil {
			a = &agg{}
			aggs[name] = a
		}
		a.sum.iterations += s.iterations
		a.sum.nsPerOp += s.nsPerOp
		a.sum.bPerOp += s.bPerOp
		a.sum.hasB = a.sum.hasB || s.hasB
		a.sum.allocs += s.allocs
		a.sum.hasAllocs = a.sum.hasAllocs || s.hasAllocs
		a.sum.mbPerS += s.mbPerS
		a.sum.hasMB = a.sum.hasMB || s.hasMB
		a.samples++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perf: scan bench output: %w", err)
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("perf: no benchmark results found in input")
	}
	for name, a := range aggs {
		k := float64(a.samples)
		res := Result{
			Name:       name,
			Iterations: a.sum.iterations,
			NsPerOp:    a.sum.nsPerOp / k,
			Samples:    a.samples,
		}
		if a.sum.hasB {
			res.BPerOp = a.sum.bPerOp / k
		}
		if a.sum.hasAllocs {
			res.AllocsPerOp = a.sum.allocs / k
		}
		if a.sum.hasMB {
			res.MBPerS = a.sum.mbPerS / k
		}
		rep.Benchmarks[name] = res
	}
	return rep, nil
}

// WriteFile persists the report as indented JSON with a trailing
// newline, so BENCH_*.json diffs cleanly in git.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("perf: write report: %w", err)
	}
	return nil
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parse report %s: %w", path, err)
	}
	if r.Benchmarks == nil {
		return nil, fmt.Errorf("perf: report %s has no benchmarks", path)
	}
	return &r, nil
}

// ZeroAllocCeiling classifies a benchmark as "zero-alloc class": when
// the baseline records at most this many allocs/op, the benchmark is a
// hand-tuned hot path whose allocations are per-run setup constants
// (process, runner, source chain), and the gate fails on ANY allocs/op
// growth — not just ns/op regressions. The committed baselines record
// ~20 allocs/op for the pooled hot paths, while the first per-tuple
// allocation costs thousands; 128 leaves headroom between the two.
const ZeroAllocCeiling = 128

// Delta is one baseline-vs-current benchmark comparison.
type Delta struct {
	Name string
	// Base and Cur are the two measurements.
	Base, Cur Result
	// NsRatio is cur.NsPerOp / base.NsPerOp (>1 means slower).
	NsRatio float64
	// AllocRatio is cur.AllocsPerOp / base.AllocsPerOp (>1 means more
	// allocations); 0 when the baseline records no allocations.
	AllocRatio float64
	// Reason is set by Gate on failing deltas: why this delta failed.
	Reason string
}

// Speedup returns how many times faster the current run is (>1 is an
// improvement).
func (d Delta) Speedup() float64 {
	if d.Cur.NsPerOp == 0 {
		return 0
	}
	return d.Base.NsPerOp / d.Cur.NsPerOp
}

// Compare pairs up the benchmarks present in both reports, sorted by
// name. Benchmarks present in only one report are skipped — new
// benchmarks must not fail the gate against an older baseline.
func Compare(base, cur *Report) []Delta {
	var out []Delta
	for name, b := range base.Benchmarks {
		c, ok := cur.Benchmarks[name]
		if !ok {
			continue
		}
		d := Delta{Name: name, Base: b, Cur: c}
		if b.NsPerOp > 0 {
			d.NsRatio = c.NsPerOp / b.NsPerOp
		}
		if b.AllocsPerOp > 0 {
			d.AllocRatio = c.AllocsPerOp / b.AllocsPerOp
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Gate checks current against baseline and returns the deltas that
// fail either check, with Reason set. An empty result means the gate
// passes. Two checks apply:
//
//   - ns/op regressed by more than maxRegress (0.20 = +20%);
//   - the benchmark is zero-alloc class (baseline allocs/op <=
//     ZeroAllocCeiling) and allocs/op grew at all — hand-tuned paths
//     must not gain even one allocation.
func Gate(base, cur *Report, maxRegress float64) []Delta {
	var bad []Delta
	for _, d := range Compare(base, cur) {
		switch {
		case d.NsRatio > 1+maxRegress:
			d.Reason = fmt.Sprintf("ns/op +%.0f%% exceeds +%.0f%% budget", (d.NsRatio-1)*100, maxRegress*100)
			bad = append(bad, d)
		case d.Base.AllocsPerOp <= ZeroAllocCeiling && d.Cur.AllocsPerOp > d.Base.AllocsPerOp:
			d.Reason = fmt.Sprintf("allocs/op grew %.0f -> %.0f on a zero-alloc-class benchmark", d.Base.AllocsPerOp, d.Cur.AllocsPerOp)
			bad = append(bad, d)
		}
	}
	return bad
}

// ScalingPoint is one point of a shard-scaling curve: the measurement
// of family/shards=N together with its speedup over the family's
// shards=1 point.
type ScalingPoint struct {
	Shards  int
	NsPerOp float64
	// Speedup is nsPerOp(shards=1) / nsPerOp(shards=N); >1 means the
	// sharded run is faster than sequential.
	Speedup float64
}

// ShardScaling extracts the scaling curve of a benchmark family from a
// report: every entry named `family/shards=N`, sorted by N, with
// speedups computed relative to the shards=1 point. It returns an
// error when the family or its shards=1 anchor is missing.
func ShardScaling(rep *Report, family string) ([]ScalingPoint, error) {
	prefix := family + "/shards="
	var pts []ScalingPoint
	for name, res := range rep.Benchmarks {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		n, err := strconv.Atoi(name[len(prefix):])
		if err != nil || n < 1 {
			continue
		}
		pts = append(pts, ScalingPoint{Shards: n, NsPerOp: res.NsPerOp})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("perf: no %s/shards=N benchmarks in report", family)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Shards < pts[j].Shards })
	if pts[0].Shards != 1 || pts[0].NsPerOp == 0 {
		return nil, fmt.Errorf("perf: %s has no shards=1 anchor to compute speedups against", family)
	}
	base := pts[0].NsPerOp
	for i := range pts {
		pts[i].Speedup = base / pts[i].NsPerOp
	}
	return pts, nil
}

// ScalingGate checks the shard-scaling curve of a benchmark family in
// the CURRENT report (scaling is a property of one run, not a
// baseline diff — comparing curves across runs would conflate machine
// noise with scaling regressions). Two checks apply:
//
//   - every point's speedup must stay >= minRatio: adding shards must
//     never make the runner catastrophically slower than sequential,
//     on any core count (minRatio < 1 tolerates the modest handoff
//     overhead that parallelism cannot buy back on starved hosts);
//   - the widest point's speedup must reach floor, prorated by how
//     many cores the run actually had: the committed floor assumes
//     maxShards cores, and a host with procs < maxShards is held to
//     floor*procs/maxShards instead (never below minRatio — on a
//     single-core host the proration collapses to the first check).
//
// Procs <= 0 (reports recorded before the field existed) is treated
// as 1, the conservative reading.
func ScalingGate(rep *Report, family string, floor, minRatio float64) error {
	pts, err := ShardScaling(rep, family)
	if err != nil {
		return err
	}
	for _, p := range pts {
		if p.Speedup < minRatio {
			return fmt.Errorf("perf: scaling gate: %s/shards=%d speedup %.2fx is below the %.2fx never-slower floor",
				family, p.Shards, p.Speedup, minRatio)
		}
	}
	procs := rep.Procs
	if procs <= 0 {
		procs = 1
	}
	max := pts[len(pts)-1]
	effective := floor * float64(min(procs, max.Shards)) / float64(max.Shards)
	if effective < minRatio {
		effective = minRatio
	}
	if max.Speedup < effective {
		return fmt.Errorf("perf: scaling gate: %s/shards=%d speedup %.2fx is below the %.2fx floor (committed %.2fx prorated for %d procs)",
			family, max.Shards, max.Speedup, effective, floor, procs)
	}
	return nil
}

// FormatScaling renders a scaling curve for gate output.
func FormatScaling(family string, pts []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %14s %8s\n", family, "ns/op", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-52s %14.0f %7.2fx\n", fmt.Sprintf("%s/shards=%d", family, p.Shards), p.NsPerOp, p.Speedup)
	}
	return b.String()
}

// FormatTable renders deltas as an aligned text table for gate output.
func FormatTable(deltas []Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %14s %14s %8s %10s\n", "benchmark", "base ns/op", "cur ns/op", "ratio", "allocs")
	for _, d := range deltas {
		alloc := "n/a"
		if d.Base.AllocsPerOp > 0 {
			alloc = fmt.Sprintf("%.2fx", d.AllocRatio)
		}
		fmt.Fprintf(&b, "%-52s %14.0f %14.0f %7.2fx %10s",
			d.Name, d.Base.NsPerOp, d.Cur.NsPerOp, d.NsRatio, alloc)
		if d.Reason != "" {
			fmt.Fprintf(&b, "  [%s]", d.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
