package schemafile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"icewafl/internal/stream"
)

const valid = `{
  "timestamp": "ts",
  "fields": [
    {"name": "ts", "kind": "time"},
    {"name": "v", "kind": "float"},
    {"name": "n", "kind": "int"},
    {"name": "label", "kind": "string"},
    {"name": "flag", "kind": "bool"}
  ]
}`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 || s.Timestamp() != "ts" {
		t.Fatalf("schema %v", s.Names())
	}
	if s.Field(1).Kind != stream.KindFloat || s.Field(4).Kind != stream.KindBool {
		t.Fatal("kinds wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"timestamp": "ts", "fields": [], "extra": 1}`,
		`{"timestamp": "ts", "fields": [{"name": "ts", "kind": "nope"}]}`,
		`{"timestamp": "missing", "fields": [{"name": "ts", "kind": "time"}]}`,
		`{"timestamp": "v", "fields": [{"name": "v", "kind": "float"}]}`,
	}
	for i, doc := range bad {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Fatalf("round trip changed schema: %v vs %v", orig.Names(), back.Names())
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "schema.json")
	if err := os.WriteFile(path, []byte(valid), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil || s.Len() != 5 {
		t.Fatalf("load: %v, %v", s, err)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
