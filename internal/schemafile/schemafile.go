// Package schemafile loads stream schemas from the JSON document format
// shared by the icewafl and dqcheck command-line tools:
//
//	{"timestamp": "Time",
//	 "fields": [{"name": "Time", "kind": "time"},
//	            {"name": "BPM", "kind": "float"}]}
package schemafile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"icewafl/internal/stream"
)

// Document is the JSON schema file structure.
type Document struct {
	Timestamp string  `json:"timestamp"`
	Fields    []Field `json:"fields"`
}

// Field is one attribute declaration.
type Field struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// Parse decodes a schema document from r.
func Parse(r io.Reader) (*stream.Schema, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc Document
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("schemafile: parse: %w", err)
	}
	fields := make([]stream.Field, 0, len(doc.Fields))
	for _, fd := range doc.Fields {
		kind, err := stream.ParseKind(fd.Kind)
		if err != nil {
			return nil, fmt.Errorf("schemafile: field %q: %w", fd.Name, err)
		}
		fields = append(fields, stream.Field{Name: fd.Name, Kind: kind})
	}
	return stream.NewSchema(doc.Timestamp, fields...)
}

// Load reads and parses the schema file at path.
func Load(path string) (*stream.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("schemafile: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Write serialises a schema back into the document format, so tools can
// emit schema files for generated datasets.
func Write(w io.Writer, schema *stream.Schema) error {
	doc := Document{Timestamp: schema.Timestamp()}
	for _, f := range schema.Fields() {
		doc.Fields = append(doc.Fields, Field{Name: f.Name, Kind: f.Kind.String()})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("schemafile: write: %w", err)
	}
	return nil
}
