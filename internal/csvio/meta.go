package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"icewafl/internal/stream"
)

// Algorithm 1's step 3 emits tuples of the form (id, i, a1, …, ak, ts):
// the pollution-immune tuple identifier and the sub-stream index travel
// with the data so downstream consumers can join the polluted stream
// back to the clean one. MetaWriter/MetaReader implement that format as
// CSV: two leading columns `_id` and `_substream` before the schema's
// attributes, optionally followed by `_arrival` — the delivery
// timestamp. Without `_arrival`, the reader re-derives Arrival from the
// timestamp attribute, which erases delayed-tuple pollution (a delayed
// tuple's arrival is precisely NOT its event time); with it, windowed
// consumers reproduce the live stream's window boundaries exactly.

// MetaColumns are the reserved metadata column names.
var MetaColumns = []string{"_id", "_substream"}

// ArrivalColumn is the optional third metadata column carrying the
// tuple's arrival time (RFC3339 with nanoseconds).
const ArrivalColumn = "_arrival"

// arrivalTime is the `_arrival` encoding: RFC3339Nano, matching the
// netstream wire format so round trips are exact.
const arrivalTime = time.RFC3339Nano

// MetaWriter encodes tuples with their identity metadata.
type MetaWriter struct {
	schema  *stream.Schema
	csv     *csv.Writer
	wrote   bool
	arrival bool
}

// NewMetaWriter wraps w.
func NewMetaWriter(w io.Writer, schema *stream.Schema) *MetaWriter {
	return &MetaWriter{schema: schema, csv: csv.NewWriter(w)}
}

// IncludeArrival adds the `_arrival` column so delayed arrivals survive
// the round trip. Must be called before the first Write.
func (w *MetaWriter) IncludeArrival() { w.arrival = true }

func (w *MetaWriter) writeHeader() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	header := append([]string{}, MetaColumns...)
	if w.arrival {
		header = append(header, ArrivalColumn)
	}
	header = append(header, w.schema.Names()...)
	return w.csv.Write(header)
}

// OmitHeader marks the header as already written (checkpoint resume).
func (w *MetaWriter) OmitHeader() { w.wrote = true }

// Flush pushes buffered rows to the underlying writer.
func (w *MetaWriter) Flush() error {
	w.csv.Flush()
	if err := w.csv.Error(); err != nil {
		return fmt.Errorf("csvio: flush meta: %w", err)
	}
	return nil
}

// Write implements stream.Sink.
func (w *MetaWriter) Write(t stream.Tuple) error {
	if err := w.writeHeader(); err != nil {
		return fmt.Errorf("csvio: write meta header: %w", err)
	}
	rec := make([]string, 0, t.Len()+3)
	rec = append(rec,
		strconv.FormatUint(t.ID, 10),
		strconv.Itoa(t.SubStream),
	)
	if w.arrival {
		rec = append(rec, t.Arrival.UTC().Format(arrivalTime))
	}
	for i := 0; i < t.Len(); i++ {
		rec = append(rec, t.At(i).String())
	}
	if err := w.csv.Write(rec); err != nil {
		return fmt.Errorf("csvio: write meta row: %w", err)
	}
	return nil
}

// Close implements stream.Sink.
func (w *MetaWriter) Close() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	w.csv.Flush()
	if err := w.csv.Error(); err != nil {
		return fmt.Errorf("csvio: flush meta: %w", err)
	}
	return nil
}

// MetaReader decodes the metadata format back into tuples with ID and
// SubStream restored. When the header carries the optional `_arrival`
// column, Arrival is restored exactly; otherwise EventTime and Arrival
// are re-derived from the timestamp attribute.
type MetaReader struct {
	schema  *stream.Schema
	csv     *csv.Reader
	row     int
	arrival bool
}

// NewMetaReader wraps r, validating the header (the `_arrival` column
// is detected from it).
func NewMetaReader(r io.Reader, schema *stream.Schema) (*MetaReader, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: read meta header: %w", err)
	}
	for i, name := range MetaColumns {
		if i >= len(header) || header[i] != name {
			return nil, fmt.Errorf("csvio: meta column %d is missing or not %q", i, name)
		}
	}
	meta := len(MetaColumns)
	arrival := false
	if len(header) > meta && header[meta] == ArrivalColumn {
		arrival = true
		meta++
	}
	if len(header) != meta+schema.Len() {
		return nil, fmt.Errorf("csvio: meta header has %d columns, want %d", len(header), meta+schema.Len())
	}
	for i, name := range schema.Names() {
		if header[meta+i] != name {
			return nil, fmt.Errorf("csvio: header column %d is %q, schema expects %q",
				meta+i, header[meta+i], name)
		}
	}
	// Every data row must match the header's shape.
	cr.FieldsPerRecord = meta + schema.Len()
	return &MetaReader{schema: schema, csv: cr, row: 1, arrival: arrival}, nil
}

// Schema implements stream.Source.
func (r *MetaReader) Schema() *stream.Schema { return r.schema }

// Next implements stream.Source.
func (r *MetaReader) Next() (stream.Tuple, error) {
	rec, err := r.csv.Read()
	if err == io.EOF {
		return stream.Tuple{}, io.EOF
	}
	if err != nil {
		return stream.Tuple{}, fmt.Errorf("csvio: meta row %d: %w", r.row+1, err)
	}
	r.row++
	id, err := strconv.ParseUint(rec[0], 10, 64)
	if err != nil {
		return stream.Tuple{}, fmt.Errorf("csvio: meta row %d: bad _id %q: %w", r.row, rec[0], err)
	}
	sub, err := strconv.Atoi(rec[1])
	if err != nil {
		return stream.Tuple{}, fmt.Errorf("csvio: meta row %d: bad _substream %q: %w", r.row, rec[1], err)
	}
	meta := len(MetaColumns)
	var arrival time.Time
	if r.arrival {
		arrival, err = time.Parse(arrivalTime, rec[meta])
		if err != nil {
			return stream.Tuple{}, fmt.Errorf("csvio: meta row %d: bad %s %q: %w", r.row, ArrivalColumn, rec[meta], err)
		}
		meta++
	}
	values := make([]stream.Value, r.schema.Len())
	for i := range values {
		v, err := stream.ParseValue(rec[meta+i], r.schema.Field(i).Kind)
		if err != nil {
			return stream.Tuple{}, fmt.Errorf("csvio: meta row %d column %q: %w", r.row, r.schema.Field(i).Name, err)
		}
		values[i] = v
	}
	t := stream.NewTuple(r.schema, values)
	t.ID = id
	t.SubStream = sub
	if ts, ok := t.Timestamp(); ok {
		t.EventTime = ts
		t.Arrival = ts
	}
	if r.arrival {
		t.Arrival = arrival
	}
	return t, nil
}

// WriteAllMeta writes tuples with metadata in one call.
func WriteAllMeta(w io.Writer, schema *stream.Schema, tuples []stream.Tuple) error {
	mw := NewMetaWriter(w, schema)
	for _, t := range tuples {
		if err := mw.Write(t); err != nil {
			return err
		}
	}
	return mw.Close()
}
