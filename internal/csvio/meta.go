package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"icewafl/internal/stream"
)

// Algorithm 1's step 3 emits tuples of the form (id, i, a1, …, ak, ts):
// the pollution-immune tuple identifier and the sub-stream index travel
// with the data so downstream consumers can join the polluted stream
// back to the clean one. MetaWriter/MetaReader implement that format as
// CSV: two leading columns `_id` and `_substream` before the schema's
// attributes.

// MetaColumns are the reserved metadata column names.
var MetaColumns = []string{"_id", "_substream"}

// MetaWriter encodes tuples with their identity metadata.
type MetaWriter struct {
	schema *stream.Schema
	csv    *csv.Writer
	wrote  bool
}

// NewMetaWriter wraps w.
func NewMetaWriter(w io.Writer, schema *stream.Schema) *MetaWriter {
	return &MetaWriter{schema: schema, csv: csv.NewWriter(w)}
}

func (w *MetaWriter) writeHeader() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	header := append(append([]string{}, MetaColumns...), w.schema.Names()...)
	return w.csv.Write(header)
}

// OmitHeader marks the header as already written (checkpoint resume).
func (w *MetaWriter) OmitHeader() { w.wrote = true }

// Flush pushes buffered rows to the underlying writer.
func (w *MetaWriter) Flush() error {
	w.csv.Flush()
	if err := w.csv.Error(); err != nil {
		return fmt.Errorf("csvio: flush meta: %w", err)
	}
	return nil
}

// Write implements stream.Sink.
func (w *MetaWriter) Write(t stream.Tuple) error {
	if err := w.writeHeader(); err != nil {
		return fmt.Errorf("csvio: write meta header: %w", err)
	}
	rec := make([]string, 0, t.Len()+2)
	rec = append(rec,
		strconv.FormatUint(t.ID, 10),
		strconv.Itoa(t.SubStream),
	)
	for i := 0; i < t.Len(); i++ {
		rec = append(rec, t.At(i).String())
	}
	if err := w.csv.Write(rec); err != nil {
		return fmt.Errorf("csvio: write meta row: %w", err)
	}
	return nil
}

// Close implements stream.Sink.
func (w *MetaWriter) Close() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	w.csv.Flush()
	if err := w.csv.Error(); err != nil {
		return fmt.Errorf("csvio: flush meta: %w", err)
	}
	return nil
}

// MetaReader decodes the metadata format back into tuples with ID and
// SubStream restored (EventTime and Arrival are re-derived from the
// timestamp attribute).
type MetaReader struct {
	schema *stream.Schema
	csv    *csv.Reader
	row    int
}

// NewMetaReader wraps r, validating the header.
func NewMetaReader(r io.Reader, schema *stream.Schema) (*MetaReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Len() + len(MetaColumns)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: read meta header: %w", err)
	}
	for i, name := range MetaColumns {
		if header[i] != name {
			return nil, fmt.Errorf("csvio: meta column %d is %q, want %q", i, header[i], name)
		}
	}
	for i, name := range schema.Names() {
		if header[len(MetaColumns)+i] != name {
			return nil, fmt.Errorf("csvio: header column %d is %q, schema expects %q",
				len(MetaColumns)+i, header[len(MetaColumns)+i], name)
		}
	}
	return &MetaReader{schema: schema, csv: cr, row: 1}, nil
}

// Schema implements stream.Source.
func (r *MetaReader) Schema() *stream.Schema { return r.schema }

// Next implements stream.Source.
func (r *MetaReader) Next() (stream.Tuple, error) {
	rec, err := r.csv.Read()
	if err == io.EOF {
		return stream.Tuple{}, io.EOF
	}
	if err != nil {
		return stream.Tuple{}, fmt.Errorf("csvio: meta row %d: %w", r.row+1, err)
	}
	r.row++
	id, err := strconv.ParseUint(rec[0], 10, 64)
	if err != nil {
		return stream.Tuple{}, fmt.Errorf("csvio: meta row %d: bad _id %q: %w", r.row, rec[0], err)
	}
	sub, err := strconv.Atoi(rec[1])
	if err != nil {
		return stream.Tuple{}, fmt.Errorf("csvio: meta row %d: bad _substream %q: %w", r.row, rec[1], err)
	}
	values := make([]stream.Value, r.schema.Len())
	for i := range values {
		v, err := stream.ParseValue(rec[len(MetaColumns)+i], r.schema.Field(i).Kind)
		if err != nil {
			return stream.Tuple{}, fmt.Errorf("csvio: meta row %d column %q: %w", r.row, r.schema.Field(i).Name, err)
		}
		values[i] = v
	}
	t := stream.NewTuple(r.schema, values)
	t.ID = id
	t.SubStream = sub
	if ts, ok := t.Timestamp(); ok {
		t.EventTime = ts
		t.Arrival = ts
	}
	return t, nil
}

// WriteAllMeta writes tuples with metadata in one call.
func WriteAllMeta(w io.Writer, schema *stream.Schema, tuples []stream.Tuple) error {
	mw := NewMetaWriter(w, schema)
	for _, t := range tuples {
		if err := mw.Write(t); err != nil {
			return err
		}
	}
	return mw.Close()
}
