package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"icewafl/internal/stream"
)

// ColumnReader is the batch-native CSV ingest path: rows decode
// straight into the typed payload arrays of a caller-provided
// stream.ColumnBatch, bypassing per-tuple materialisation. The
// underlying csv.Reader runs with ReuseRecord, so record slices are
// never allocated per row; numeric, bool and time cells parse directly
// off the reused record, and only string cells are cloned (they outlive
// the record, and cloning keeps a one-cell survivor from pinning the
// whole record buffer).
//
// It also implements stream.Source, so the same reader feeds tuple-wise
// consumers; the columnar runner detects ReadBatch and bypasses Next.
// Values, row numbering and *stream.TupleError semantics are identical
// to Reader — the equivalence test in colreader_test.go pins the two
// paths cell by cell.
type ColumnReader struct {
	schema *stream.Schema
	csv    *csv.Reader
	row    int
}

// NewColumnReader wraps r, validating the CSV header against the
// schema's attribute names in order, like NewReader.
func NewColumnReader(r io.Reader, schema *stream.Schema) (*ColumnReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Len()
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: read header: %w", err)
	}
	names := schema.Names()
	for i, name := range names {
		if header[i] != name {
			return nil, fmt.Errorf("csvio: header column %d is %q, schema expects %q", i, header[i], name)
		}
	}
	return &ColumnReader{schema: schema, csv: cr, row: 1}, nil
}

// Schema implements stream.ColumnBatchReader and stream.Source.
func (r *ColumnReader) Schema() *stream.Schema { return r.schema }

// tupleErr wraps a row-level failure exactly like Reader.Next does.
func (r *ColumnReader) tupleErr(err error) *stream.TupleError {
	return &stream.TupleError{
		Offset: uint64(r.row),
		Stage:  "csv-decode",
		Err:    err,
	}
}

// decodeInto parses rec into row `row` of dst. On a cell parse failure
// it returns the error with the column name already attached; the
// caller rolls the row back.
func (r *ColumnReader) decodeInto(dst *stream.ColumnBatch, row int, rec []string) error {
	for i, cell := range rec {
		if cell == "" {
			continue // KindNull from AppendEmptyRow
		}
		switch kind := r.schema.Field(i).Kind; kind {
		case stream.KindNull:
			// Stays NULL, like ParseValue.
		case stream.KindFloat:
			f, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return fmt.Errorf("csvio: row %d column %q: %w", r.row, r.schema.Field(i).Name, fmt.Errorf("stream: parse float %q: %w", cell, err))
			}
			payload, kinds := dst.Floats(i)
			payload[row], kinds[row] = f, stream.KindFloat
		case stream.KindInt:
			n, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				return fmt.Errorf("csvio: row %d column %q: %w", r.row, r.schema.Field(i).Name, fmt.Errorf("stream: parse int %q: %w", cell, err))
			}
			payload, kinds := dst.Ints(i)
			payload[row], kinds[row] = n, stream.KindInt
		case stream.KindString:
			payload, kinds := dst.Strs(i)
			payload[row], kinds[row] = strings.Clone(cell), stream.KindString
		case stream.KindBool:
			v, err := strconv.ParseBool(cell)
			if err != nil {
				return fmt.Errorf("csvio: row %d column %q: %w", r.row, r.schema.Field(i).Name, fmt.Errorf("stream: parse bool %q: %w", cell, err))
			}
			payload, kinds := dst.Bools(i)
			payload[row], kinds[row] = v, stream.KindBool
		case stream.KindTime:
			ts, err := time.Parse(time.RFC3339, cell)
			if err != nil {
				return fmt.Errorf("csvio: row %d column %q: %w", r.row, r.schema.Field(i).Name, fmt.Errorf("stream: parse time %q: %w", cell, err))
			}
			payload, kinds := dst.Times(i)
			payload[row], kinds[row] = ts, stream.KindTime
		default:
			return fmt.Errorf("csvio: row %d column %q: stream: cannot parse into kind %v", r.row, r.schema.Field(i).Name, kind)
		}
	}
	return nil
}

// ReadBatch implements stream.ColumnBatchReader: it appends up to max
// decoded rows to dst. A malformed record or unparseable cell surfaces
// as a *stream.TupleError with the rows decoded before it staying
// appended, and the reader continues with the following row on the next
// call.
func (r *ColumnReader) ReadBatch(dst *stream.ColumnBatch, max int) (int, error) {
	appended := 0
	for appended < max {
		rec, err := r.csv.Read()
		if err == io.EOF {
			if appended == 0 {
				return 0, io.EOF
			}
			return appended, nil
		}
		r.row++
		if err != nil {
			return appended, r.tupleErr(fmt.Errorf("csvio: row %d: %w", r.row, err))
		}
		row := dst.AppendEmptyRow()
		if derr := r.decodeInto(dst, row, rec); derr != nil {
			dst.TruncateRows(row)
			return appended, r.tupleErr(derr)
		}
		appended++
	}
	return appended, nil
}

// Next implements stream.Source with the exact semantics of
// Reader.Next, decoding through the same cell parsers as ReadBatch.
func (r *ColumnReader) Next() (stream.Tuple, error) {
	rec, err := r.csv.Read()
	if err == io.EOF {
		return stream.Tuple{}, io.EOF
	}
	r.row++
	if err != nil {
		return stream.Tuple{}, r.tupleErr(fmt.Errorf("csvio: row %d: %w", r.row, err))
	}
	values := make([]stream.Value, r.schema.Len())
	for i := range values {
		v, perr := stream.ParseValue(rec[i], r.schema.Field(i).Kind)
		if perr != nil {
			return stream.Tuple{}, r.tupleErr(fmt.Errorf("csvio: row %d column %q: %w", r.row, r.schema.Field(i).Name, perr))
		}
		values[i] = v
	}
	return stream.NewTuple(r.schema, values), nil
}
