package csvio

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
	"unicode/utf8"

	"icewafl/internal/stream"
)

var schema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "value", Kind: stream.KindFloat},
	stream.Field{Name: "count", Kind: stream.KindInt},
	stream.Field{Name: "label", Kind: stream.KindString},
	stream.Field{Name: "ok", Kind: stream.KindBool},
)

func sample() []stream.Tuple {
	base := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	var out []stream.Tuple
	for i := 0; i < 5; i++ {
		out = append(out, stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			stream.Float(float64(i) + 0.5),
			stream.Int(int64(i * 10)),
			stream.Str("row"),
			stream.Bool(i%2 == 0),
		}))
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	tuples := sample()
	var buf bytes.Buffer
	if err := WriteAll(&buf, schema, tuples); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tuples) {
		t.Fatalf("%d tuples back", len(back))
	}
	for i := range back {
		if !back[i].Equal(tuples[i]) {
			t.Fatalf("tuple %d changed: %v vs %v", i, back[i], tuples[i])
		}
	}
}

func TestNullRoundTrip(t *testing.T) {
	tuples := sample()
	tuples[2].Set("value", stream.Null())
	tuples[3].Set("label", stream.Null())
	var buf bytes.Buffer
	if err := WriteAll(&buf, schema, tuples); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !back[2].MustGet("value").IsNull() {
		t.Fatal("null float did not round-trip")
	}
	if !back[3].MustGet("label").IsNull() {
		t.Fatal("null string did not round-trip")
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := NewReader(strings.NewReader("wrong,header,row,x,y\n"), schema); err == nil {
		t.Fatal("wrong header accepted")
	}
	if _, err := NewReader(strings.NewReader(""), schema); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestBadCell(t *testing.T) {
	input := "ts,value,count,label,ok\n2020-05-01T00:00:00Z,notafloat,1,x,true\n"
	r, err := NewReader(strings.NewReader(input), schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("bad float cell accepted")
	}
}

func TestWrongColumnCount(t *testing.T) {
	input := "ts,value,count,label,ok\n2020-05-01T00:00:00Z,1.5\n"
	r, err := NewReader(strings.NewReader(input), schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestEmptyStreamWritesHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, schema, nil); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(buf.String())
	if got != "ts,value,count,label,ok" {
		t.Fatalf("header %q", got)
	}
	back, err := ReadAll(strings.NewReader(buf.String()), schema)
	if err != nil || len(back) != 0 {
		t.Fatalf("empty round trip: %d tuples, %v", len(back), err)
	}
}

func TestReaderAsSource(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, schema, sample()); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema().Equal(schema) {
		t.Fatal("schema mismatch")
	}
	// Composes with stream operators.
	filtered := stream.Filter(r, func(t stream.Tuple) bool {
		v, _ := t.MustGet("count").AsFloat()
		return v >= 20
	})
	got, err := stream.Drain(filtered)
	if err != nil || len(got) != 3 {
		t.Fatalf("filtered %d, %v", len(got), err)
	}
}

func TestQuotedStrings(t *testing.T) {
	tuples := sample()
	tuples[0].Set("label", stream.Str("has,comma"))
	tuples[1].Set("label", stream.Str("has\"quote"))
	var buf bytes.Buffer
	if err := WriteAll(&buf, schema, tuples); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := back[0].MustGet("label").AsString(); got != "has,comma" {
		t.Fatalf("comma: %q", got)
	}
	if got, _ := back[1].MustGet("label").AsString(); got != "has\"quote" {
		t.Fatalf("quote: %q", got)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	tuples := sample()
	for i := range tuples {
		tuples[i].ID = uint64(100 + i)
		tuples[i].SubStream = i % 2
	}
	var buf bytes.Buffer
	if err := WriteAllMeta(&buf, schema, tuples); err != nil {
		t.Fatal(err)
	}
	// Header carries the meta columns.
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasPrefix(header, "_id,_substream,ts,") {
		t.Fatalf("meta header %q", header)
	}
	r, err := NewMetaReader(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	back, err := stream.Drain(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tuples) {
		t.Fatalf("%d tuples back", len(back))
	}
	for i := range back {
		if back[i].ID != tuples[i].ID || back[i].SubStream != tuples[i].SubStream {
			t.Fatalf("metadata lost at %d: %+v", i, back[i])
		}
		if !back[i].Equal(tuples[i]) {
			t.Fatalf("values changed at %d", i)
		}
		ts, _ := back[i].Timestamp()
		if !back[i].EventTime.Equal(ts) {
			t.Fatalf("event time not rederived at %d", i)
		}
	}
}

// TestMetaArrivalRoundTrip: with IncludeArrival the delivery timestamp
// survives the round trip exactly — a delayed tuple's arrival is NOT
// its event time, and without the column the reader would erase the
// delay by re-deriving arrival from the timestamp attribute.
func TestMetaArrivalRoundTrip(t *testing.T) {
	tuples := sample()
	for i := range tuples {
		tuples[i].ID = uint64(1 + i)
		ts, _ := tuples[i].Timestamp()
		tuples[i].EventTime = ts
		tuples[i].Arrival = ts
	}
	// Tuple 2 is delayed: it arrives 90 minutes after its event time.
	tuples[2].Arrival = tuples[2].EventTime.Add(90 * time.Minute)

	var buf bytes.Buffer
	w := NewMetaWriter(&buf, schema)
	w.IncludeArrival()
	for _, tp := range tuples {
		if err := w.Write(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasPrefix(header, "_id,_substream,_arrival,ts,") {
		t.Fatalf("meta header %q", header)
	}
	r, err := NewMetaReader(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	back, err := stream.Drain(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if !back[i].Arrival.Equal(tuples[i].Arrival) {
			t.Fatalf("arrival lost at %d: %v vs %v", i, back[i].Arrival, tuples[i].Arrival)
		}
		if !back[i].EventTime.Equal(tuples[i].EventTime) {
			t.Fatalf("event time changed at %d", i)
		}
	}
	if back[2].Arrival.Equal(back[2].EventTime) {
		t.Fatal("the delayed tuple's delay was erased")
	}

	// Without the column, arrival is re-derived from the timestamp —
	// the delay is (by design) not representable.
	var plain bytes.Buffer
	if err := WriteAllMeta(&plain, schema, tuples); err != nil {
		t.Fatal(err)
	}
	r2, err := NewMetaReader(&plain, schema)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := stream.Drain(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !back2[2].Arrival.Equal(back2[2].EventTime) {
		t.Fatal("arrival not re-derived without _arrival column")
	}
}

func TestMetaReaderErrors(t *testing.T) {
	if _, err := NewMetaReader(strings.NewReader("wrong,header\n"), schema); err == nil {
		t.Fatal("bad meta header accepted")
	}
	// Plain CSV header (no meta columns) rejected.
	var buf bytes.Buffer
	if err := WriteAll(&buf, schema, sample()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMetaReader(&buf, schema); err == nil {
		t.Fatal("plain header accepted as meta")
	}
	// Bad _id cell.
	bad := "_id,_substream,ts,value,count,label,ok\nnope,0,2020-05-01T00:00:00Z,1,1,x,true\n"
	r, err := NewMetaReader(strings.NewReader(bad), schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("bad _id accepted")
	}
	// Bad _substream cell.
	bad2 := "_id,_substream,ts,value,count,label,ok\n1,x,2020-05-01T00:00:00Z,1,1,x,true\n"
	r2, err := NewMetaReader(strings.NewReader(bad2), schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Next(); err == nil {
		t.Fatal("bad _substream accepted")
	}
	// Bad _arrival cell.
	bad3 := "_id,_substream,_arrival,ts,value,count,label,ok\n1,0,yesterday,2020-05-01T00:00:00Z,1,1,x,true\n"
	r3, err := NewMetaReader(strings.NewReader(bad3), schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r3.Next(); err == nil {
		t.Fatal("bad _arrival accepted")
	}
}

// Property: any tuple whose values come from the supported kinds
// round-trips through CSV byte-identically.
func TestRoundTripProperty(t *testing.T) {
	prop := func(f float64, i int64, s string, b bool, sec int64) bool {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
		if !utf8.ValidString(s) || strings.ContainsAny(s, "\r\n") || strings.Contains(s, "\x00") {
			return true // CSV cannot carry these losslessly in one cell
		}
		ts := time.Unix(sec%4102444800, 0).UTC()
		if ts.Year() < 0 || ts.Year() > 9999 {
			return true
		}
		tp := stream.NewTuple(schema, []stream.Value{
			stream.Time(ts), stream.Float(f), stream.Int(i), stream.Str(s), stream.Bool(b),
		})
		var buf bytes.Buffer
		if err := WriteAll(&buf, schema, []stream.Tuple{tp}); err != nil {
			return false
		}
		back, err := ReadAll(&buf, schema)
		if err != nil || len(back) != 1 {
			return false
		}
		// The empty string decodes as NULL by design; everything else
		// must round-trip exactly.
		if s == "" {
			v, _ := back[0].Get("label")
			return v.IsNull()
		}
		return back[0].Equal(tp)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
