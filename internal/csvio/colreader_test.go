package csvio

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"icewafl/internal/stream"
)

func colSchema(t *testing.T) *stream.Schema {
	t.Helper()
	s, err := stream.NewSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
		stream.Field{Name: "n", Kind: stream.KindInt},
		stream.Field{Name: "cat", Kind: stream.KindString},
		stream.Field{Name: "flag", Kind: stream.KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const colCSV = `ts,v,n,cat,flag
2021-06-01T00:00:00Z,1.5,-3,abc,true
2021-06-01T01:00:00Z,NaN,0,,false
,,,"quoted, cell",true
2021-06-01T03:00:00Z,-0,9223372036854775807,Ωλ,false
2021-06-01T04:00:00Z,1e308,-9223372036854775808,x,true
`

func renderCells(t stream.Tuple) string {
	var b strings.Builder
	for i := 0; i < t.Len(); i++ {
		fmt.Fprintf(&b, "%d:%s|", t.At(i).Kind(), t.At(i).String())
	}
	return b.String()
}

// TestColumnReaderEquivalence drains the same document through the
// tuple-wise Reader and the batch-native ColumnReader and compares
// every cell's kind and textual form.
func TestColumnReaderEquivalence(t *testing.T) {
	schema := colSchema(t)
	tr, err := NewReader(strings.NewReader(colCSV), schema)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stream.Drain(tr)
	if err != nil {
		t.Fatal(err)
	}

	for _, max := range []int{1, 2, 100} {
		cr, err := NewColumnReader(strings.NewReader(colCSV), schema)
		if err != nil {
			t.Fatal(err)
		}
		batch := stream.NewColumnBatch(schema, max)
		var got []stream.Tuple
		for {
			batch.Reset()
			n, rerr := cr.ReadBatch(batch, max)
			for row := 0; row < n; row++ {
				got = append(got, batch.Row(row))
			}
			if rerr != nil {
				if rerr != io.EOF {
					t.Fatal(rerr)
				}
				break
			}
		}
		if len(got) != len(want) {
			t.Fatalf("max=%d: decoded %d rows, tuple path decoded %d", max, len(got), len(want))
		}
		for i := range want {
			if renderCells(got[i]) != renderCells(want[i]) {
				t.Fatalf("max=%d row %d diverged\nbatch: %s\ntuple: %s", max, i, renderCells(got[i]), renderCells(want[i]))
			}
		}
	}
}

// TestColumnReaderNextEquivalence pins the reader's own Source face to
// the tuple-wise Reader.
func TestColumnReaderNextEquivalence(t *testing.T) {
	schema := colSchema(t)
	tr, _ := NewReader(strings.NewReader(colCSV), schema)
	cr, err := NewColumnReader(strings.NewReader(colCSV), schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		wt, werr := tr.Next()
		gt, gerr := cr.Next()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("row %d: err %v vs %v", i, werr, gerr)
		}
		if werr != nil {
			if werr == io.EOF {
				break
			}
			if werr.Error() != gerr.Error() {
				t.Fatalf("row %d: error text diverged: %q vs %q", i, werr, gerr)
			}
			continue
		}
		if renderCells(gt) != renderCells(wt) {
			t.Fatalf("row %d diverged\ncolumn reader: %s\nreader:        %s", i, renderCells(gt), renderCells(wt))
		}
	}
}

// TestColumnReaderTupleErrorParity: a malformed cell and a malformed
// record must surface as the same *stream.TupleError (offset, stage,
// message) on both paths, with the reader still usable and the rows
// decoded before the failure kept.
func TestColumnReaderTupleErrorParity(t *testing.T) {
	const bad = `ts,v,n,cat,flag
2021-06-01T00:00:00Z,1.5,1,a,true
2021-06-01T01:00:00Z,not-a-float,2,b,false
2021-06-01T02:00:00Z,2.5,3,c,true
2021-06-01T03:00:00Z,3.5,4,"unterminated,true
2021-06-01T04:00:00Z,4.5,5,e,false
`
	schema := colSchema(t)

	// Collect the tuple path's full event sequence.
	type ev struct {
		cells string
		err   string
	}
	var want []ev
	tr, _ := NewReader(strings.NewReader(bad), schema)
	for {
		tu, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			te, ok := stream.AsTupleError(err)
			if !ok {
				t.Fatalf("tuple path returned non-TupleError: %v", err)
			}
			want = append(want, ev{err: fmt.Sprintf("off=%d stage=%s msg=%v", te.Offset, te.Stage, te.Err)})
			continue
		}
		want = append(want, ev{cells: renderCells(tu)})
	}

	cr, err := NewColumnReader(strings.NewReader(bad), schema)
	if err != nil {
		t.Fatal(err)
	}
	batch := stream.NewColumnBatch(schema, 8)
	var got []ev
	for {
		batch.Reset()
		n, rerr := cr.ReadBatch(batch, 8)
		for row := 0; row < n; row++ {
			got = append(got, ev{cells: renderCells(batch.Row(row))})
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			te, ok := stream.AsTupleError(rerr)
			if !ok {
				t.Fatalf("batch path returned non-TupleError: %v", rerr)
			}
			got = append(got, ev{err: fmt.Sprintf("off=%d stage=%s msg=%v", te.Offset, te.Stage, te.Err)})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("event sequences diverged:\nbatch: %+v\ntuple: %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d diverged\nbatch: %+v\ntuple: %+v", i, got[i], want[i])
		}
	}
}

// TestColumnReaderHeaderValidation mirrors NewReader's header check.
func TestColumnReaderHeaderValidation(t *testing.T) {
	schema := colSchema(t)
	if _, err := NewColumnReader(strings.NewReader("ts,v,n,WRONG,flag\n"), schema); err == nil {
		t.Fatal("mismatched header accepted")
	}
	if _, err := NewColumnReader(strings.NewReader(""), schema); err == nil {
		t.Fatal("empty document accepted")
	}
}
