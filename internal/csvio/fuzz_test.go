package csvio

import (
	"io"
	"strings"
	"testing"

	"icewafl/internal/stream"
)

// FuzzQuarantine feeds arbitrary (usually malformed) CSV bodies through a
// quarantined reader and checks the fault-tolerance invariants:
//
//   - the pipeline never panics,
//   - every row is either delivered or dead-lettered (none vanish),
//   - a fatal error only ever ends the stream (no tuples after it), and
//   - the reader stays row-resumable: a malformed row must not make
//     subsequent valid rows unreadable.
func FuzzQuarantine(f *testing.F) {
	f.Add("2020-01-01T00:00:00Z,1.5,a\n2020-01-01T01:00:00Z,2.5,b\n")
	f.Add("not-a-time,1,a\n2020-01-01T00:00:00Z,2,b\n")
	f.Add("2020-01-01T00:00:00Z,NaN,x\n")
	f.Add("\"unterminated,1,a\n")
	f.Add("too,few\n")
	f.Add("a,b,c,d,e\n")
	f.Add(",,\n,,\n")
	f.Add("2020-01-01T00:00:00Z,\x00,a\n")
	f.Add(strings.Repeat("garbage\n", 20))

	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
		stream.Field{Name: "tag", Kind: stream.KindString},
	)

	f.Fuzz(func(t *testing.T, body string) {
		input := "ts,v,tag\n" + body
		r, err := NewReader(strings.NewReader(input), schema)
		if err != nil {
			// Header rejected (e.g. the body glued onto the header line
			// made it invalid) — fine, nothing to quarantine.
			return
		}
		q := stream.NewDeadLetterQueue()
		src := stream.Quarantine(r, q, 0)
		delivered := 0
		for {
			tp, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Fatal: the stream must stay ended.
				if _, err2 := src.Next(); err2 == nil {
					t.Fatal("tuple delivered after fatal error")
				}
				return
			}
			if tp.Schema() != schema {
				t.Fatal("delivered tuple with wrong schema")
			}
			if tp.Len() != schema.Len() {
				t.Fatalf("tuple has %d values, schema %d", tp.Len(), schema.Len())
			}
			delivered++
		}
		// Sanity: deliveries plus dead letters never exceed the physical
		// line count of the input (multi-line quoted fields can make it
		// smaller, never larger).
		lines := strings.Count(body, "\n") + 1
		if delivered+q.Len() > lines {
			t.Fatalf("delivered %d + quarantined %d > %d input lines", delivered, q.Len(), lines)
		}
	})
}

// TestQuarantinedReaderSkipsMalformedRows is the deterministic companion
// of FuzzQuarantine.
func TestQuarantinedReaderSkipsMalformedRows(t *testing.T) {
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
	input := "ts,v\n" +
		"2020-01-01T00:00:00Z,1\n" +
		"BROKEN,2\n" + // bad timestamp
		"2020-01-01T02:00:00Z,not-a-number\n" + // bad float
		"2020-01-01T03:00:00Z,3,extra\n" + // wrong field count
		"2020-01-01T04:00:00Z,4\n"
	r, err := NewReader(strings.NewReader(input), schema)
	if err != nil {
		t.Fatal(err)
	}
	q := stream.NewDeadLetterQueue()
	tuples, err := stream.Drain(stream.Quarantine(r, q, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Errorf("delivered %d tuples, want 2", len(tuples))
	}
	if q.Len() != 3 {
		t.Errorf("quarantined %d rows, want 3", q.Len())
	}
	for _, d := range q.Letters() {
		if d.Stage != "csv-decode" {
			t.Errorf("stage = %q", d.Stage)
		}
		if d.Offset == 0 {
			t.Error("dead letter lost its row offset")
		}
	}
}
