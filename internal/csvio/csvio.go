// Package csvio reads and writes tuple streams as CSV, the file-based
// source/sink of the pollution workflow (Figure 2's "Data Batch" input
// and "Dirty Data" / "Clean Data" outputs). A header row carries the
// attribute names; NULL values round-trip as empty cells.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"

	"icewafl/internal/stream"
)

// Reader is a stream.Source decoding CSV rows into tuples.
type Reader struct {
	schema *stream.Schema
	csv    *csv.Reader
	row    int
}

// NewReader wraps r, validating that the CSV header matches the schema's
// attribute names in order.
func NewReader(r io.Reader, schema *stream.Schema) (*Reader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Len()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: read header: %w", err)
	}
	names := schema.Names()
	for i, name := range names {
		if header[i] != name {
			return nil, fmt.Errorf("csvio: header column %d is %q, schema expects %q", i, header[i], name)
		}
	}
	return &Reader{schema: schema, csv: cr, row: 1}, nil
}

// Schema implements stream.Source.
func (r *Reader) Schema() *stream.Schema { return r.schema }

// Next implements stream.Source. Row-level failures — a malformed CSV
// record or an unparseable cell — are returned as *stream.TupleError, and
// the reader remains usable: the next call continues with the following
// row. This lets stream.Quarantine divert poisoned rows to a dead-letter
// queue instead of aborting the whole run.
func (r *Reader) Next() (stream.Tuple, error) {
	rec, err := r.csv.Read()
	if err == io.EOF {
		return stream.Tuple{}, io.EOF
	}
	if err != nil {
		r.row++
		return stream.Tuple{}, &stream.TupleError{
			Offset: uint64(r.row),
			Stage:  "csv-decode",
			Err:    fmt.Errorf("csvio: row %d: %w", r.row, err),
		}
	}
	r.row++
	values := make([]stream.Value, r.schema.Len())
	for i := range values {
		v, err := stream.ParseValue(rec[i], r.schema.Field(i).Kind)
		if err != nil {
			return stream.Tuple{}, &stream.TupleError{
				Offset: uint64(r.row),
				Stage:  "csv-decode",
				Err:    fmt.Errorf("csvio: row %d column %q: %w", r.row, r.schema.Field(i).Name, err),
			}
		}
		values[i] = v
	}
	return stream.NewTuple(r.schema, values), nil
}

// Writer is a stream.Sink encoding tuples as CSV rows.
type Writer struct {
	schema *stream.Schema
	csv    *csv.Writer
	wrote  bool
}

// NewWriter wraps w. The header row is written lazily with the first
// tuple (or at Close for empty streams).
func NewWriter(w io.Writer, schema *stream.Schema) *Writer {
	return &Writer{schema: schema, csv: csv.NewWriter(w)}
}

func (w *Writer) writeHeader() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	return w.csv.Write(w.schema.Names())
}

// OmitHeader marks the header as already written. Checkpoint resume uses
// it when appending to an output file whose header row survives from the
// interrupted run.
func (w *Writer) OmitHeader() { w.wrote = true }

// Flush pushes buffered rows to the underlying writer. Checkpointing
// calls it before recording a file offset so the offset reflects every
// row written so far.
func (w *Writer) Flush() error {
	w.csv.Flush()
	if err := w.csv.Error(); err != nil {
		return fmt.Errorf("csvio: flush: %w", err)
	}
	return nil
}

// Write implements stream.Sink.
func (w *Writer) Write(t stream.Tuple) error {
	if err := w.writeHeader(); err != nil {
		return fmt.Errorf("csvio: write header: %w", err)
	}
	rec := make([]string, t.Len())
	for i := 0; i < t.Len(); i++ {
		rec[i] = t.At(i).String()
	}
	if err := w.csv.Write(rec); err != nil {
		return fmt.Errorf("csvio: write row: %w", err)
	}
	return nil
}

// Close implements stream.Sink, flushing buffered rows.
func (w *Writer) Close() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	w.csv.Flush()
	if err := w.csv.Error(); err != nil {
		return fmt.Errorf("csvio: flush: %w", err)
	}
	return nil
}

// WriteAll writes tuples to w as CSV in one call.
func WriteAll(w io.Writer, schema *stream.Schema, tuples []stream.Tuple) error {
	cw := NewWriter(w, schema)
	for _, t := range tuples {
		if err := cw.Write(t); err != nil {
			return err
		}
	}
	return cw.Close()
}

// ReadAll decodes an entire CSV document into tuples.
func ReadAll(r io.Reader, schema *stream.Schema) ([]stream.Tuple, error) {
	cr, err := NewReader(r, schema)
	if err != nil {
		return nil, err
	}
	return stream.Drain(cr)
}
