package config

import (
	"strings"
	"testing"
	"time"

	"icewafl/internal/stream"
)

var schema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "v", Kind: stream.KindFloat},
	stream.Field{Name: "cat", Kind: stream.KindString},
)

func src(n int) stream.Source {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	return stream.NewGeneratorSource(schema, n, func(i int) stream.Tuple {
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Hour)),
			stream.Float(float64(i)),
			stream.Str("a"),
		})
	})
}

func runConfig(t *testing.T, doc string, n int) ([]stream.Tuple, []stream.Tuple) {
	t.Helper()
	proc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(src(n))
	if err != nil {
		t.Fatal(err)
	}
	return res.Clean, res.Polluted
}

func TestSimpleStandardPolluter(t *testing.T) {
	doc := `{
	  "seed": 1,
	  "pipelines": [{"polluters": [{
	    "name": "null-v",
	    "error": {"type": "missing_value"},
	    "condition": {"type": "compare", "attr": "v", "op": ">=", "value": 5},
	    "attrs": ["v"]
	  }]}]
	}`
	_, polluted := runConfig(t, doc, 10)
	nulls := 0
	for _, tp := range polluted {
		if tp.MustGet("v").IsNull() {
			nulls++
		}
	}
	if nulls != 5 {
		t.Fatalf("nulls %d", nulls)
	}
}

func TestCompositeChoiceConfig(t *testing.T) {
	doc := `{
	  "seed": 2,
	  "pipelines": [{"polluters": [{
	    "name": "either",
	    "type": "composite",
	    "mode": "choice",
	    "children": [
	      {"name": "up", "error": {"type": "offset", "delta": 1000}, "attrs": ["v"]},
	      {"name": "down", "error": {"type": "offset", "delta": -1000}, "attrs": ["v"]}
	    ]
	  }]}]
	}`
	_, polluted := runConfig(t, doc, 100)
	up, down := 0, 0
	for i, tp := range polluted {
		switch tp.MustGet("v").MustFloat() {
		case float64(i) + 1000:
			up++
		case float64(i) - 1000:
			down++
		default:
			t.Fatalf("tuple %d polluted by both or neither", i)
		}
	}
	if up == 0 || down == 0 {
		t.Fatalf("choice never alternated: up=%d down=%d", up, down)
	}
}

func TestTemporalParamConfig(t *testing.T) {
	doc := `{
	  "seed": 3,
	  "pipelines": [{"polluters": [{
	    "name": "ramped-noise",
	    "error": {"type": "gaussian_noise",
	              "stddev": {"type": "linear",
	                         "from": "2020-01-01T00:00:00Z",
	                         "to": "2020-01-05T00:00:00Z",
	                         "v0": 0, "v1": 10}},
	    "attrs": ["v"]
	  }]}]
	}`
	clean, polluted := runConfig(t, doc, 96)
	// First tuple: stddev 0, so unchanged. Late tuples: almost surely changed.
	if !polluted[0].MustGet("v").Equal(clean[0].MustGet("v")) {
		t.Fatal("noise applied at zero stddev")
	}
	changed := 0
	for i := 48; i < 96; i++ {
		if !polluted[i].MustGet("v").Equal(clean[i].MustGet("v")) {
			changed++
		}
	}
	if changed < 40 {
		t.Fatalf("late-stream noise too rare: %d/48", changed)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	doc := `{
	  "seed": 7,
	  "pipelines": [{"polluters": [{
	    "name": "noise",
	    "error": {"type": "gaussian_noise", "stddev": 1},
	    "condition": {"type": "random", "p": 0.5},
	    "attrs": ["v"]
	  }]}]
	}`
	_, a := runConfig(t, doc, 200)
	_, b := runConfig(t, doc, 200)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same config diverged at %d", i)
		}
	}
	docOther := strings.Replace(doc, `"seed": 7`, `"seed": 8`, 1)
	_, c := runConfig(t, docOther, 200)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical pollution")
	}
}

func TestSoftwareUpdateShapedConfig(t *testing.T) {
	// The Figure 5 shape expressed in JSON: nested composites.
	doc := `{
	  "seed": 4,
	  "pipelines": [{"polluters": [{
	    "name": "software update",
	    "type": "composite",
	    "condition": {"type": "time_interval", "from": "2020-01-02T00:00:00Z"},
	    "children": [
	      {"name": "scale", "error": {"type": "scale_by_factor", "factor": 100}, "attrs": ["v"]},
	      {"name": "bpm-fix", "type": "composite",
	       "condition": {"type": "compare", "attr": "v", "op": ">", "value": 3000},
	       "children": [
	         {"name": "zero", "error": {"type": "set_constant", "value": 0}, "attrs": ["v"]}
	       ]}
	    ]
	  }]}]
	}`
	clean, polluted := runConfig(t, doc, 72)
	_ = clean
	for i, tp := range polluted {
		v := tp.MustGet("v").MustFloat()
		switch {
		case i < 24 && v != float64(i):
			t.Fatalf("tuple %d polluted before gate: %g", i, v)
		case i >= 24 && float64(i)*100 > 3000 && v != 0:
			t.Fatalf("tuple %d should be zeroed: %g", i, v)
		case i >= 24 && float64(i)*100 <= 3000 && v != float64(i)*100:
			t.Fatalf("tuple %d should be scaled: %g", i, v)
		}
	}
}

func TestAllConditionTypesParse(t *testing.T) {
	doc := `{
	  "seed": 5,
	  "pipelines": [{"polluters": [{
	    "name": "p",
	    "error": {"type": "missing_value"},
	    "condition": {"type": "and", "children": [
	      {"type": "always"},
	      {"type": "not", "child": {"type": "never"}},
	      {"type": "or", "children": [
	        {"type": "time_of_day", "from_hour": 0, "to_hour": 24},
	        {"type": "random", "p": 0.1}
	      ]},
	      {"type": "random", "p_param": {"type": "sinusoid_daily", "amp": 0.0, "offset": 1.0}}
	    ]},
	    "attrs": ["v"]
	  }]}]
	}`
	_, polluted := runConfig(t, doc, 10)
	for i, tp := range polluted {
		if !tp.MustGet("v").IsNull() {
			t.Fatalf("tuple %d not polluted under always-true composite", i)
		}
	}
}

func TestAllErrorTypesParse(t *testing.T) {
	errors := []string{
		`{"type": "gaussian_noise", "stddev": 1}`,
		`{"type": "uniform_mult_noise", "lo": 0.1, "hi": 0.2}`,
		`{"type": "scale_by_factor", "factor": 2}`,
		`{"type": "missing_value"}`,
		`{"type": "set_constant", "value": 42}`,
		`{"type": "incorrect_category", "categories": ["a", "b"]}`,
		`{"type": "round_precision", "digits": 2}`,
		`{"type": "outlier", "magnitude": 5}`,
		`{"type": "string_typo"}`,
		`{"type": "swap_attributes"}`,
		`{"type": "offset", "delta": 1}`,
		`{"type": "clamp", "clamp_lo": 0, "clamp_hi": 1}`,
		`{"type": "delayed_tuple", "delay": "1h"}`,
		`{"type": "frozen_value"}`,
		`{"type": "timestamp_shift", "offset": "-30m"}`,
		`{"type": "dropped_tuple"}`,
		`{"type": "hold_and_release", "release_at": "2020-01-02T00:00:00Z"}`,
		`{"type": "chain", "errors": [{"type": "offset", "delta": 1}, {"type": "clamp", "clamp_lo": 0, "clamp_hi": 10}]}`,
	}
	for _, e := range errors {
		doc := `{"seed": 1, "pipelines": [{"polluters": [{
			"name": "p", "error": ` + e + `, "attrs": ["v"]}]}]}`
		if _, err := Load(strings.NewReader(doc)); err != nil {
			t.Errorf("error spec %s rejected: %v", e, err)
		}
	}
}

func TestPatternParamConfig(t *testing.T) {
	doc := `{
	  "seed": 6,
	  "pipelines": [{"polluters": [{
	    "name": "drift",
	    "error": {"type": "offset",
	              "delta": {"type": "pattern", "max": -5,
	                        "pattern": {"type": "abrupt", "at": "2020-01-02T00:00:00Z"}}},
	    "attrs": ["v"]
	  }]}]
	}`
	clean, polluted := runConfig(t, doc, 48)
	for i := range polluted {
		want := clean[i].MustGet("v").MustFloat()
		if i >= 24 {
			want -= 5
		}
		if got := polluted[i].MustGet("v").MustFloat(); got != want {
			t.Fatalf("tuple %d: %g, want %g", i, got, want)
		}
	}
}

func TestRouting(t *testing.T) {
	doc := `{
	  "seed": 9,
	  "route": "round_robin",
	  "pipelines": [
	    {"polluters": [{"name": "a", "error": {"type": "offset", "delta": 1000}, "attrs": ["v"]}]},
	    {"polluters": []}
	  ]
	}`
	_, polluted := runConfig(t, doc, 10)
	if len(polluted) != 10 {
		t.Fatalf("%d tuples", len(polluted))
	}
	hit := 0
	for _, tp := range polluted {
		if tp.MustGet("v").MustFloat() >= 1000 {
			hit++
		}
	}
	if hit != 5 {
		t.Fatalf("round robin polluted %d", hit)
	}
}

func TestConfigErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"seed": 1, "pipelines": []}`,
		`{"seed": 1, "unknown_field": true, "pipelines": [{"polluters": []}]}`,
		`{"seed": 1, "route": "bogus", "pipelines": [{"polluters": []}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "", "error": {"type": "missing_value"}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p"}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "nope"}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "missing_value"}, "condition": {"type": "nope"}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "missing_value"}, "condition": {"type": "random"}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "missing_value"}, "condition": {"type": "compare", "attr": "v", "op": "~", "value": 1}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "missing_value"}, "condition": {"type": "time_interval", "from": "not-a-time"}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "gaussian_noise"}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "delayed_tuple", "delay": "xyz"}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "type": "composite", "error": {"type": "missing_value"}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "type": "composite", "mode": "weighted", "weights": [1], "children": []}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "type": "bogus"}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "missing_value"}, "children": [{"name": "c", "error": {"type": "missing_value"}}]}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "incorrect_category"}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "chain"}}]}]}`,
	}
	for i, doc := range bad {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("bad document %d accepted", i)
		}
	}
}

func TestValueJSONMapping(t *testing.T) {
	cases := []struct {
		raw  string
		want stream.Value
	}{
		{`1.5`, stream.Float(1.5)},
		{`true`, stream.Bool(true)},
		{`"text"`, stream.Str("text")},
		{`"2020-01-01T00:00:00Z"`, stream.Time(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))},
		{`null`, stream.Null()},
	}
	for _, c := range cases {
		got, err := parseValueJSON([]byte(c.raw))
		if err != nil || !got.Equal(c.want) {
			t.Errorf("parseValueJSON(%s) = %v, %v", c.raw, got, err)
		}
	}
	if _, err := parseValueJSON(nil); err == nil {
		t.Error("missing value accepted")
	}
	if _, err := parseValueJSON([]byte(`[1,2]`)); err == nil {
		t.Error("array value accepted")
	}
}

func TestStickyConditionConfig(t *testing.T) {
	doc := `{
	  "seed": 11,
	  "pipelines": [{"polluters": [{
	    "name": "episode",
	    "error": {"type": "missing_value"},
	    "condition": {"type": "sticky", "hold": "3h",
	                  "child": {"type": "time_interval",
	                            "from": "2020-01-01T05:00:00Z",
	                            "to": "2020-01-01T06:00:00Z"}},
	    "attrs": ["v"]
	  }]}]
	}`
	_, polluted := runConfig(t, doc, 12)
	// Trigger at hour 5; sticky holds hours 5-7.
	for i, tp := range polluted {
		isNull := tp.MustGet("v").IsNull()
		want := i >= 5 && i <= 7
		if isNull != want {
			t.Fatalf("hour %d: null=%v want %v", i, isNull, want)
		}
	}
}

func TestMarkovConditionConfig(t *testing.T) {
	doc := `{
	  "seed": 12,
	  "pipelines": [{"polluters": [{
	    "name": "bursts",
	    "error": {"type": "missing_value"},
	    "condition": {"type": "markov", "p_enter": 0.05, "p_exit": 0.2},
	    "attrs": ["v"]
	  }]}]
	}`
	_, polluted := runConfig(t, doc, 2000)
	nulls, bursts := 0, 0
	prev := false
	for _, tp := range polluted {
		cur := tp.MustGet("v").IsNull()
		if cur {
			nulls++
			if !prev {
				bursts++
			}
		}
		prev = cur
	}
	if nulls == 0 || bursts == 0 {
		t.Fatal("no bursts generated")
	}
	// Bursty: average burst length clearly above 1.
	if avg := float64(nulls) / float64(bursts); avg < 2 {
		t.Fatalf("average burst length %.2f not bursty", avg)
	}
}

func TestBudgetConditionConfig(t *testing.T) {
	doc := `{
	  "seed": 13,
	  "pipelines": [{"polluters": [{
	    "name": "capped",
	    "error": {"type": "missing_value"},
	    "condition": {"type": "budget", "budget": 2, "window": "6h",
	                  "child": {"type": "always"}},
	    "attrs": ["v"]
	  }]}]
	}`
	_, polluted := runConfig(t, doc, 12)
	// Hourly tuples: at most 2 nulls per 6-hour window.
	nulls := 0
	for _, tp := range polluted {
		if tp.MustGet("v").IsNull() {
			nulls++
		}
	}
	if nulls != 4 { // 2 per 6h over 12h
		t.Fatalf("budget allowed %d errors, want 4", nulls)
	}
}

func TestKeyedPolluterConfig(t *testing.T) {
	doc := `{
	  "seed": 14,
	  "pipelines": [{"polluters": [{
	    "name": "per-category",
	    "type": "keyed",
	    "key_attr": "cat",
	    "template": {"name": "freeze", "error": {"type": "frozen_value"}, "attrs": ["v"]}
	  }]}]
	}`
	proc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	// Two alternating categories: each freezes at its first value.
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	src := stream.NewGeneratorSource(schema, 8, func(i int) stream.Tuple {
		cat := "a"
		if i%2 == 1 {
			cat = "b"
		}
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Hour)),
			stream.Float(float64(i)),
			stream.Str(cat),
		})
	})
	res, err := proc.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range res.Polluted {
		want := 0.0
		if i%2 == 1 {
			want = 1.0
		}
		if got := tp.MustGet("v").MustFloat(); got != want {
			t.Fatalf("tuple %d frozen to %g, want %g", i, got, want)
		}
	}
}

func TestStatefulConfigErrors(t *testing.T) {
	bad := []string{
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "missing_value"}, "condition": {"type": "sticky", "hold": "1h"}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "missing_value"}, "condition": {"type": "sticky", "hold": "zzz", "child": {"type": "always"}}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "missing_value"}, "condition": {"type": "markov", "p_enter": 0, "p_exit": 0.5}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "missing_value"}, "condition": {"type": "budget", "budget": 0, "window": "1h", "child": {"type": "always"}}}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "type": "keyed", "key_attr": "cat"}]}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "type": "keyed", "key_attr": "cat", "template": {"name": "t"}}]}]}`,
	}
	for i, doc := range bad {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("bad stateful document %d accepted", i)
		}
	}
}

func TestAllParamAndPatternTypesParse(t *testing.T) {
	params := []string{
		`1.5`,
		`{"type": "linear", "from": "2020-01-01T00:00:00Z", "to": "2020-01-02T00:00:00Z", "v0": 0, "v1": 1}`,
		`{"type": "sinusoid_daily", "amp": 0.25, "offset": 0.25}`,
		`{"type": "pattern", "max": 2, "pattern": {"type": "abrupt", "at": "2020-01-01T12:00:00Z"}}`,
		`{"type": "pattern", "pattern": {"type": "incremental", "from": "2020-01-01T00:00:00Z", "to": "2020-01-02T00:00:00Z"}}`,
		`{"type": "pattern", "max": 3, "pattern": {"type": "intermediate", "from": "2020-01-01T00:00:00Z", "to": "2020-01-02T00:00:00Z", "triangular": true}}`,
	}
	for _, p := range params {
		doc := `{"seed": 1, "pipelines": [{"polluters": [{
			"name": "p", "error": {"type": "offset", "delta": ` + p + `}, "attrs": ["v"]}]}]}`
		if _, err := Load(strings.NewReader(doc)); err != nil {
			t.Errorf("param %s rejected: %v", p, err)
		}
	}
	badParams := []string{
		`{"type": "nope"}`,
		`{"type": "linear", "from": "xxx", "to": "2020-01-02T00:00:00Z"}`,
		`{"type": "linear", "from": "2020-01-01T00:00:00Z", "to": "yyy"}`,
		`{"type": "pattern"}`,
		`{"type": "pattern", "pattern": {"type": "nope"}}`,
		`{"type": "pattern", "pattern": {"type": "abrupt", "at": "zzz"}}`,
		`{"type": "pattern", "pattern": {"type": "incremental", "from": "zzz"}}`,
		`{"type": "pattern", "pattern": {"type": "incremental", "from": "2020-01-01T00:00:00Z", "to": "zzz"}}`,
		`{"type": "pattern", "pattern": {"type": "intermediate", "from": "zzz"}}`,
		`{"type": "pattern", "pattern": {"type": "intermediate", "from": "2020-01-01T00:00:00Z", "to": "zzz"}}`,
	}
	for _, p := range badParams {
		doc := `{"seed": 1, "pipelines": [{"polluters": [{
			"name": "p", "error": {"type": "offset", "delta": ` + p + `}, "attrs": ["v"]}]}]}`
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("bad param %s accepted", p)
		}
	}
}

func TestRouteByAttributeConfig(t *testing.T) {
	doc := `{
	  "seed": 15,
	  "route": "by:cat",
	  "pipelines": [
	    {"polluters": [{"name": "a", "error": {"type": "offset", "delta": 1000}, "attrs": ["v"]}]},
	    {"polluters": [{"name": "b", "error": {"type": "offset", "delta": -1000}, "attrs": ["v"]}]}
	  ]
	}`
	_, polluted := runConfig(t, doc, 20)
	// All tuples share cat="a", so they land in one sub-stream: all get
	// the same offset direction.
	up, down := 0, 0
	for _, tp := range polluted {
		if v := tp.MustGet("v").MustFloat(); v >= 1000 {
			up++
		} else if v <= -900 {
			down++
		}
	}
	if up != 0 && down != 0 {
		t.Fatalf("key routing split a single key: up=%d down=%d", up, down)
	}
	if up+down != 20 {
		t.Fatalf("tuples missing: %d + %d", up, down)
	}
}
