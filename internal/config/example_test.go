package config_test

import (
	"fmt"
	"strings"
	"time"

	"icewafl/internal/config"
	"icewafl/internal/stream"
)

// ExampleLoad compiles a JSON error configuration into a runnable
// pollution process.
func ExampleLoad() {
	doc := `{
	  "seed": 7,
	  "pipelines": [{"polluters": [{
	    "name": "cap humidity",
	    "error": {"type": "clamp", "clamp_lo": 0, "clamp_hi": 100},
	    "attrs": ["humidity"]
	  }]}]
	}`
	proc, err := config.Load(strings.NewReader(doc))
	if err != nil {
		fmt.Println(err)
		return
	}

	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "humidity", Kind: stream.KindFloat},
	)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	src := stream.NewGeneratorSource(schema, 3, func(i int) stream.Tuple {
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(start.Add(time.Duration(i) * time.Hour)),
			stream.Float(float64(90 + 10*i)), // 90, 100, 110
		})
	})
	result, err := proc.Run(src)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, t := range result.Polluted {
		fmt.Println(t.MustGet("humidity"))
	}
	// Output:
	// 90
	// 100
	// 100
}
