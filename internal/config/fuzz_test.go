package config

import (
	"strings"
	"testing"
)

// FuzzLoad checks that arbitrary byte sequences never panic the
// configuration loader: they either parse into a valid process or
// return an error.
func FuzzLoad(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"seed": 1, "pipelines": [{"polluters": []}]}`,
		`{"seed": 1, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "missing_value"}, "attrs": ["v"]}]}]}`,
		`{"seed": 1, "route": "by:sensor", "pipelines": [{"polluters": [{"name": "p", "type": "composite", "mode": "choice", "children": [{"name": "c", "error": {"type": "dropped_tuple"}}]}]}]}`,
		`{"seed": -9, "pipelines": [{"polluters": [{"name": "p", "error": {"type": "gaussian_noise", "stddev": {"type": "sinusoid_daily", "amp": 1}}, "condition": {"type": "sticky", "hold": "1h", "child": {"type": "markov", "p_enter": 0.1, "p_exit": 0.5}}}]}]}`,
		`[1, 2, 3]`,
		`null`,
		"\x00\x01",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		proc, err := Load(strings.NewReader(doc))
		if err == nil && proc == nil {
			t.Fatal("nil process without error")
		}
	})
}
