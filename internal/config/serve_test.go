package config

import (
	"reflect"
	"strings"
	"testing"
)

// TestServeSpecDefaults: a nil or empty serve block yields the full
// documented defaults.
func TestServeSpecDefaults(t *testing.T) {
	want := ServeSpec{
		Listen: ":7077", Buffer: 256, Replay: 65536, Policy: "block",
		Reorder: 64, Shards: 1, ShardOrder: "strict", DrainTimeout: "5s",
		ColumnarBatch:   256,
		CheckpointEvery: 256,
		RestartBudget:   3, RestartWindow: "1m", RestartBackoff: "100ms",
	}
	var nilSpec *ServeSpec
	got, err := nilSpec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("nil spec: got %+v, want %+v", got, want)
	}
	got, err = (&ServeSpec{}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("empty spec: got %+v, want %+v", got, want)
	}
}

// TestServeSpecOverridesAndValidation: explicit fields win, invalid ones
// are rejected with a field-naming error.
func TestServeSpecOverridesAndValidation(t *testing.T) {
	got, err := (&ServeSpec{
		Listen:       ":9999",
		HTTP:         ":9998",
		Buffer:       8,
		Replay:       1024,
		Policy:       "disconnect-slow",
		Reorder:      1,
		Shards:       8,
		ShardKey:     "sensor",
		ShardOrder:   "relaxed",
		DrainTimeout: "250ms",
	}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := ServeSpec{
		Listen: ":9999", HTTP: ":9998", Buffer: 8, Replay: 1024,
		Policy: "disconnect-slow", Reorder: 1, Shards: 8,
		ShardKey: "sensor", ShardOrder: "relaxed", DrainTimeout: "250ms",
		ColumnarBatch: 256, CheckpointEvery: 256, RestartBudget: 3,
		RestartWindow: "1m", RestartBackoff: "100ms",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %+v, want %+v", got, want)
	}

	bad := []struct {
		spec ServeSpec
		want string
	}{
		{ServeSpec{Buffer: -1}, "serve.buffer"},
		{ServeSpec{Replay: -2}, "serve.replay"},
		{ServeSpec{Policy: "bogus"}, "serve.policy"},
		{ServeSpec{Reorder: -1}, "serve.reorder"},
		{ServeSpec{Shards: -4}, "serve.shards"},
		{ServeSpec{Shards: 4}, "serve.shard_key"},
		{ServeSpec{Shards: 4, ShardKey: "sensor", ShardOrder: "chaotic"}, "serve.shard_order"},
		{ServeSpec{Shards: 4, ShardKey: "sensor", WALDir: "d", Checkpoint: "ck.json"}, "sequential path"},
		{ServeSpec{ColumnarBatch: -1}, "serve.columnar_batch"},
		{ServeSpec{Columnar: true, Shards: 4, ShardKey: "sensor"}, "serve.columnar"},
		{ServeSpec{Columnar: true, WALDir: "d", Checkpoint: "ck.json"}, "serve.columnar"},
		{ServeSpec{DrainTimeout: "fast"}, "serve.drain_timeout"},
		{ServeSpec{DrainTimeout: "-1s"}, "serve.drain_timeout"},
		{ServeSpec{WALSegmentBytes: -1}, "serve.wal_segment_bytes"},
		{ServeSpec{WALRetainBytes: -1}, "serve.wal_retain_bytes"},
		{ServeSpec{WALDir: "d", WALRetainAge: "never"}, "serve.wal_retain_age"},
		{ServeSpec{WALDir: "d", WALFsyncEvery: -1}, "serve.wal_fsync_every"},
		{ServeSpec{Checkpoint: "ck.json"}, "serve.checkpoint"},
		{ServeSpec{CheckpointEvery: -5}, "serve.checkpoint_every"},
		{ServeSpec{RestartBudget: -1}, "serve.restart_budget"},
		{ServeSpec{RestartWindow: "-1m"}, "serve.restart_window"},
		{ServeSpec{RestartBackoff: "soon"}, "serve.restart_backoff"},
		{ServeSpec{Tenants: []TenantSpec{{}}}, "needs a name"},
		{ServeSpec{Tenants: []TenantSpec{{Name: "a"}, {Name: "a"}}}, "duplicate name"},
		{ServeSpec{Tenants: []TenantSpec{{Name: "a", MaxSessions: -1}}}, "non-negative"},
		{ServeSpec{Tenants: []TenantSpec{{Name: "a", Burst: 64}}}, "burst without bytes_per_sec"},
	}
	for _, tc := range bad {
		if _, err := tc.spec.Normalize(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: err = %v, want mention of %s", tc.spec, err, tc.want)
		}
	}
}

// TestServeBlockParses: the serve block round-trips through the JSON
// configuration parser.
func TestServeBlockParses(t *testing.T) {
	doc, err := Parse(strings.NewReader(`{
		"pipelines": [{"name": "p", "polluters": [
			{"name": "x", "error": {"type": "missing_value"}, "attrs": ["v"]}
		]}],
		"serve": {"listen": ":7171", "policy": "drop-oldest", "buffer": 32}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Serve == nil {
		t.Fatal("serve block not parsed")
	}
	spec, err := doc.Serve.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Listen != ":7171" || spec.Policy != "drop-oldest" || spec.Buffer != 32 {
		t.Errorf("unexpected spec %+v", spec)
	}
	if spec.Replay != 65536 || spec.Reorder != 64 {
		t.Errorf("defaults not applied: %+v", spec)
	}
}

// TestServeSpecDurability: the WAL/checkpoint/supervision fields parse
// from JSON, normalize with their documented defaults, and the
// checkpoint-requires-wal coupling is enforced.
func TestServeSpecDurability(t *testing.T) {
	doc, err := Parse(strings.NewReader(`{
		"pipelines": [{"name": "p", "polluters": [
			{"name": "x", "error": {"type": "missing_value"}, "attrs": ["v"]}
		]}],
		"serve": {
			"wal_dir": "/var/lib/icewafl/wal",
			"wal_segment_bytes": 1048576,
			"wal_fsync_every": 8,
			"checkpoint": "/var/lib/icewafl/ck.json",
			"checkpoint_every": 64,
			"supervise": true,
			"restart_budget": 5,
			"restart_window": "30s",
			"restart_backoff": "50ms"
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := doc.Serve.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.WALDir != "/var/lib/icewafl/wal" || spec.WALSegmentBytes != 1048576 || spec.WALFsyncEvery != 8 {
		t.Errorf("WAL fields not normalized: %+v", spec)
	}
	if spec.Checkpoint != "/var/lib/icewafl/ck.json" || spec.CheckpointEvery != 64 {
		t.Errorf("checkpoint fields not normalized: %+v", spec)
	}
	if !spec.Supervise || spec.RestartBudget != 5 || spec.RestartWindow != "30s" || spec.RestartBackoff != "50ms" {
		t.Errorf("supervision fields not normalized: %+v", spec)
	}
}
