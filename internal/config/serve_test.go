package config

import (
	"strings"
	"testing"
)

// TestServeSpecDefaults: a nil or empty serve block yields the full
// documented defaults.
func TestServeSpecDefaults(t *testing.T) {
	want := ServeSpec{Listen: ":7077", Buffer: 256, Replay: 65536, Policy: "block", Reorder: 64, DrainTimeout: "5s"}
	var nilSpec *ServeSpec
	got, err := nilSpec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("nil spec: got %+v, want %+v", got, want)
	}
	got, err = (&ServeSpec{}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("empty spec: got %+v, want %+v", got, want)
	}
}

// TestServeSpecOverridesAndValidation: explicit fields win, invalid ones
// are rejected with a field-naming error.
func TestServeSpecOverridesAndValidation(t *testing.T) {
	got, err := (&ServeSpec{
		Listen:       ":9999",
		HTTP:         ":9998",
		Buffer:       8,
		Replay:       1024,
		Policy:       "disconnect-slow",
		Reorder:      1,
		DrainTimeout: "250ms",
	}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := ServeSpec{Listen: ":9999", HTTP: ":9998", Buffer: 8, Replay: 1024, Policy: "disconnect-slow", Reorder: 1, DrainTimeout: "250ms"}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}

	bad := []struct {
		spec ServeSpec
		want string
	}{
		{ServeSpec{Buffer: -1}, "serve.buffer"},
		{ServeSpec{Replay: -2}, "serve.replay"},
		{ServeSpec{Policy: "bogus"}, "serve.policy"},
		{ServeSpec{Reorder: -1}, "serve.reorder"},
		{ServeSpec{DrainTimeout: "fast"}, "serve.drain_timeout"},
		{ServeSpec{DrainTimeout: "-1s"}, "serve.drain_timeout"},
	}
	for _, tc := range bad {
		if _, err := tc.spec.Normalize(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: err = %v, want mention of %s", tc.spec, err, tc.want)
		}
	}
}

// TestServeBlockParses: the serve block round-trips through the JSON
// configuration parser.
func TestServeBlockParses(t *testing.T) {
	doc, err := Parse(strings.NewReader(`{
		"pipelines": [{"name": "p", "polluters": [
			{"name": "x", "error": {"type": "missing_value"}, "attrs": ["v"]}
		]}],
		"serve": {"listen": ":7171", "policy": "drop-oldest", "buffer": 32}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Serve == nil {
		t.Fatal("serve block not parsed")
	}
	spec, err := doc.Serve.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Listen != ":7171" || spec.Policy != "drop-oldest" || spec.Buffer != 32 {
		t.Errorf("unexpected spec %+v", spec)
	}
	if spec.Replay != 65536 || spec.Reorder != 64 {
		t.Errorf("defaults not applied: %+v", spec)
	}
}
