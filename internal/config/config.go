// Package config implements Icewafl's declarative error-configuration
// language (the "Define Error Conditions" input of Figure 2, addressing
// Challenge C3): pollution scenarios are described as JSON documents and
// compiled into core pipelines. Inexperienced users combine predefined
// error types and conditions; experts nest composite polluters and
// sub-pipelines.
//
// All randomness is derived from the document's root seed and the
// polluter's path within the document, so a configuration is a complete,
// reproducible specification of a pollution run.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// Document is the root of a pollution configuration.
type Document struct {
	// Seed drives every random draw of the compiled process.
	Seed int64 `json:"seed"`
	// Route selects how tuples are distributed over the pipelines:
	// "all" (default for m > 1), "round_robin", or "by:<attribute>".
	Route string `json:"route,omitempty"`
	// Parallel pollutes sub-streams concurrently.
	Parallel bool `json:"parallel,omitempty"`
	// Fault configures the fault-tolerance behaviour of the run.
	Fault *FaultPolicySpec `json:"fault_policy,omitempty"`
	// Pipelines holds one pollution pipeline per sub-stream.
	Pipelines []PipelineSpec `json:"pipelines"`
	// Serve configures the networked service (cmd/icewafld): where to
	// listen and how to treat slow subscribers. Ignored by the
	// single-process CLI.
	Serve *ServeSpec `json:"serve,omitempty"`
}

// ServeSpec is the JSON form of the service-layer knobs consumed by
// cmd/icewafld. Flags override every field.
type ServeSpec struct {
	// Listen is the raw-TCP address serving length-prefixed frames
	// (default ":7077").
	Listen string `json:"listen,omitempty"`
	// HTTP is the HTTP address serving NDJSON/SSE streams and /metrics
	// ("" disables HTTP).
	HTTP string `json:"http,omitempty"`
	// Buffer is the per-subscriber send queue capacity in frames
	// (default 256).
	Buffer int `json:"buffer,omitempty"`
	// Replay is the number of frames retained per channel for late
	// subscribers and reconnects (default 65536).
	Replay int `json:"replay,omitempty"`
	// Policy selects the backpressure behaviour towards slow
	// subscribers: "block" (default), "drop-oldest" or
	// "disconnect-slow".
	Policy string `json:"policy,omitempty"`
	// Reorder is the streaming runner's bounded reordering window
	// (default 64).
	Reorder int `json:"reorder,omitempty"`
	// Shards partitions the keyed pollution hot path across this many
	// parallel workers (default 1 = sequential; > 1 requires shard_key
	// and is incompatible with checkpoint).
	Shards int `json:"shards,omitempty"`
	// ShardKey names the attribute whose value routes tuples to shards
	// (required when shards > 1).
	ShardKey string `json:"shard_key,omitempty"`
	// ShardOrder selects the sharded merge order: "strict"
	// (byte-identical to sequential, the default) or "relaxed" (per-key
	// order only).
	ShardOrder string `json:"shard_order,omitempty"`
	// Columnar serves the dirty channel as columnar micro-batches: the
	// pipeline runs through the columnar engine and clients receive
	// colbatch frames (incompatible with shards > 1 and checkpoint).
	Columnar bool `json:"columnar,omitempty"`
	// ColumnarBatch caps the rows per colbatch frame (default 256).
	ColumnarBatch int `json:"columnar_batch,omitempty"`
	// DrainTimeout bounds the graceful drain on SIGTERM (Go duration,
	// default "5s").
	DrainTimeout string `json:"drain_timeout,omitempty"`
	// WALDir enables the durable write-ahead log backing the replay
	// ring: one sub-directory per channel ("" = in-memory only, replay
	// does not survive restarts).
	WALDir string `json:"wal_dir,omitempty"`
	// WALSegmentBytes rotates WAL segments at this size (0 = the
	// netstream default, 8 MiB).
	WALSegmentBytes int64 `json:"wal_segment_bytes,omitempty"`
	// WALRetainBytes caps the closed WAL segments kept per channel
	// (0 = the netstream default, 256 MiB).
	WALRetainBytes int64 `json:"wal_retain_bytes,omitempty"`
	// WALRetainAge drops WAL segments older than this Go duration
	// ("" = keep regardless of age).
	WALRetainAge string `json:"wal_retain_age,omitempty"`
	// WALFsyncEvery batches fsync to one per this many appends (0 = the
	// netstream default, 64).
	WALFsyncEvery int `json:"wal_fsync_every,omitempty"`
	// Checkpoint is the path of the durable pipeline checkpoint enabling
	// resume-after-crash (requires wal_dir; "" disables).
	Checkpoint string `json:"checkpoint,omitempty"`
	// CheckpointEvery captures a checkpoint every this many emitted
	// tuples (default 256).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Supervise restarts the pipeline session after a panic or fatal
	// error instead of leaving the daemon serving a dead stream.
	Supervise bool `json:"supervise,omitempty"`
	// RestartBudget quarantines the session after this many restarts
	// within restart_window (default 3).
	RestartBudget int `json:"restart_budget,omitempty"`
	// RestartWindow is the sliding window for the restart budget (Go
	// duration, default "1m").
	RestartWindow string `json:"restart_window,omitempty"`
	// RestartBackoff is the base exponential backoff between restarts
	// (Go duration, default "100ms").
	RestartBackoff string `json:"restart_backoff,omitempty"`
	// Tenants configures per-tenant quotas for session mode
	// (icewafld -sessions). Tenants not listed get the zero quota
	// (unlimited). Ignored in single-pipeline mode.
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// StateDir enables the durable multi-tenant store in session mode:
	// every session gets its own WAL + checkpoint directory under
	// <state_dir>/<tenant>/<session>, persisted specs are resurrected on
	// daemon start, and per-tenant max_wal_bytes budgets apply. Ignored
	// in single-pipeline mode (use wal_dir there).
	StateDir string `json:"state_dir,omitempty"`
	// ArchiveDeleted moves a deleted session's state directory under
	// <state_dir>/.deleted instead of removing it (session mode).
	ArchiveDeleted bool `json:"archive_deleted,omitempty"`
}

// TenantSpec is one tenant's quota configuration for session mode.
// Zero fields are unlimited.
type TenantSpec struct {
	// Name identifies the tenant ([A-Za-z0-9._-], required).
	Name string `json:"name"`
	// MaxSessions caps the tenant's concurrently running sessions.
	MaxSessions int `json:"max_sessions,omitempty"`
	// MaxSubscribers caps the tenant's concurrently open subscriptions
	// across all its sessions.
	MaxSubscribers int `json:"max_subscribers,omitempty"`
	// BytesPerSec rate-limits frame delivery to the tenant's
	// subscribers via a shared token bucket.
	BytesPerSec int64 `json:"bytes_per_sec,omitempty"`
	// Burst is the token-bucket depth in bytes (default: one second of
	// bytes_per_sec).
	Burst int64 `json:"burst,omitempty"`
	// MaxWALBytes caps the tenant's total durable WAL bytes across its
	// sessions (session mode with state_dir): the retention sweep drops
	// the tenant's oldest closed segments over the cap, and creates are
	// rejected while the tenant is at or over budget.
	MaxWALBytes int64 `json:"max_wal_bytes,omitempty"`
}

// Normalize applies the documented defaults and validates the spec. It
// is nil-safe: a nil spec yields the full default configuration.
func (s *ServeSpec) Normalize() (ServeSpec, error) {
	out := ServeSpec{
		Listen: ":7077", Buffer: 256, Replay: 65536, Policy: "block",
		Reorder: 64, Shards: 1, ShardOrder: "strict", DrainTimeout: "5s",
		ColumnarBatch:   256,
		CheckpointEvery: 256,
		RestartBudget:   3, RestartWindow: "1m", RestartBackoff: "100ms",
	}
	if s == nil {
		return out, nil
	}
	if s.Listen != "" {
		out.Listen = s.Listen
	}
	out.HTTP = s.HTTP
	if s.Buffer != 0 {
		if s.Buffer < 1 {
			return out, fmt.Errorf("config: serve.buffer must be positive, got %d", s.Buffer)
		}
		out.Buffer = s.Buffer
	}
	if s.Replay != 0 {
		if s.Replay < 1 {
			return out, fmt.Errorf("config: serve.replay must be positive, got %d", s.Replay)
		}
		out.Replay = s.Replay
	}
	if s.Policy != "" {
		switch s.Policy {
		case "block", "drop-oldest", "disconnect-slow":
			out.Policy = s.Policy
		default:
			return out, fmt.Errorf("config: serve.policy %q (want block, drop-oldest or disconnect-slow)", s.Policy)
		}
	}
	if s.Reorder != 0 {
		if s.Reorder < 1 {
			return out, fmt.Errorf("config: serve.reorder must be positive, got %d", s.Reorder)
		}
		out.Reorder = s.Reorder
	}
	if s.Shards != 0 {
		if s.Shards < 1 {
			return out, fmt.Errorf("config: serve.shards must be positive, got %d", s.Shards)
		}
		out.Shards = s.Shards
	}
	out.ShardKey = s.ShardKey
	if s.ShardOrder != "" {
		if _, err := core.ParseOrderPolicy(s.ShardOrder); err != nil {
			return out, fmt.Errorf("config: serve.shard_order: %w", err)
		}
		out.ShardOrder = s.ShardOrder
	}
	if out.Shards > 1 && out.ShardKey == "" {
		return out, fmt.Errorf("config: serve.shards > 1 requires serve.shard_key")
	}
	out.Columnar = s.Columnar
	if s.ColumnarBatch != 0 {
		if s.ColumnarBatch < 1 {
			return out, fmt.Errorf("config: serve.columnar_batch must be positive, got %d", s.ColumnarBatch)
		}
		out.ColumnarBatch = s.ColumnarBatch
	}
	if out.Columnar && out.Shards > 1 {
		return out, fmt.Errorf("config: serve.columnar is incompatible with serve.shards > 1")
	}
	if s.DrainTimeout != "" {
		d, err := time.ParseDuration(s.DrainTimeout)
		if err != nil || d <= 0 {
			return out, fmt.Errorf("config: serve.drain_timeout %q is not a positive duration", s.DrainTimeout)
		}
		out.DrainTimeout = s.DrainTimeout
	}
	out.WALDir = s.WALDir
	if s.WALSegmentBytes != 0 {
		if s.WALSegmentBytes < 1 {
			return out, fmt.Errorf("config: serve.wal_segment_bytes must be positive, got %d", s.WALSegmentBytes)
		}
		out.WALSegmentBytes = s.WALSegmentBytes
	}
	if s.WALRetainBytes != 0 {
		if s.WALRetainBytes < 1 {
			return out, fmt.Errorf("config: serve.wal_retain_bytes must be positive, got %d", s.WALRetainBytes)
		}
		out.WALRetainBytes = s.WALRetainBytes
	}
	if s.WALRetainAge != "" {
		d, err := time.ParseDuration(s.WALRetainAge)
		if err != nil || d <= 0 {
			return out, fmt.Errorf("config: serve.wal_retain_age %q is not a positive duration", s.WALRetainAge)
		}
		out.WALRetainAge = s.WALRetainAge
	}
	if s.WALFsyncEvery != 0 {
		if s.WALFsyncEvery < 1 {
			return out, fmt.Errorf("config: serve.wal_fsync_every must be positive, got %d", s.WALFsyncEvery)
		}
		out.WALFsyncEvery = s.WALFsyncEvery
	}
	out.Checkpoint = s.Checkpoint
	if out.Checkpoint != "" && out.WALDir == "" {
		return out, fmt.Errorf("config: serve.checkpoint requires serve.wal_dir (a checkpoint without a durable log cannot resume)")
	}
	if out.Checkpoint != "" && out.Shards > 1 {
		return out, fmt.Errorf("config: serve.shards > 1 is incompatible with serve.checkpoint; checkpoints cover the sequential path only")
	}
	if out.Checkpoint != "" && out.Columnar {
		return out, fmt.Errorf("config: serve.columnar is incompatible with serve.checkpoint; checkpoints cover the tuple-wise path only")
	}
	if s.CheckpointEvery != 0 {
		if s.CheckpointEvery < 1 {
			return out, fmt.Errorf("config: serve.checkpoint_every must be positive, got %d", s.CheckpointEvery)
		}
		out.CheckpointEvery = s.CheckpointEvery
	}
	out.Supervise = s.Supervise
	if s.RestartBudget != 0 {
		if s.RestartBudget < 1 {
			return out, fmt.Errorf("config: serve.restart_budget must be positive, got %d", s.RestartBudget)
		}
		out.RestartBudget = s.RestartBudget
	}
	if s.RestartWindow != "" {
		d, err := time.ParseDuration(s.RestartWindow)
		if err != nil || d <= 0 {
			return out, fmt.Errorf("config: serve.restart_window %q is not a positive duration", s.RestartWindow)
		}
		out.RestartWindow = s.RestartWindow
	}
	if s.RestartBackoff != "" {
		d, err := time.ParseDuration(s.RestartBackoff)
		if err != nil || d <= 0 {
			return out, fmt.Errorf("config: serve.restart_backoff %q is not a positive duration", s.RestartBackoff)
		}
		out.RestartBackoff = s.RestartBackoff
	}
	seen := make(map[string]bool, len(s.Tenants))
	for i, t := range s.Tenants {
		if t.Name == "" {
			return out, fmt.Errorf("config: serve.tenants[%d] needs a name", i)
		}
		if seen[t.Name] {
			return out, fmt.Errorf("config: serve.tenants has duplicate name %q", t.Name)
		}
		seen[t.Name] = true
		if t.MaxSessions < 0 || t.MaxSubscribers < 0 || t.BytesPerSec < 0 || t.Burst < 0 || t.MaxWALBytes < 0 {
			return out, fmt.Errorf("config: serve.tenants[%q] quotas must be non-negative", t.Name)
		}
		if t.Burst > 0 && t.BytesPerSec == 0 {
			return out, fmt.Errorf("config: serve.tenants[%q] sets burst without bytes_per_sec", t.Name)
		}
		out.Tenants = append(out.Tenants, t)
	}
	// archive_deleted-requires-state_dir is validated by the daemon after
	// flag overrides: a state dir supplied via -state-dir must be able to
	// combine with a config-file archive_deleted.
	out.StateDir = s.StateDir
	out.ArchiveDeleted = s.ArchiveDeleted
	return out, nil
}

// FaultPolicySpec is the JSON form of the fault-tolerance knobs: how a
// run reacts to malformed tuples, panicking operators, flaky sources,
// and interruptions.
type FaultPolicySpec struct {
	// Quarantine skips failing tuples (dead-letter queue) instead of
	// aborting the run.
	Quarantine bool `json:"quarantine,omitempty"`
	// MaxQuarantined caps the dead-letter queue (0 = unlimited).
	MaxQuarantined int `json:"max_quarantined,omitempty"`
	// Retries is the number of re-attempts for transient source errors
	// (0 disables retrying).
	Retries int `json:"retries,omitempty"`
	// Backoff is the base delay before the first retry (Go duration,
	// default "10ms"); each retry doubles it.
	Backoff string `json:"backoff,omitempty"`
	// MaxBackoff caps the exponential backoff (default "1s").
	MaxBackoff string `json:"max_backoff,omitempty"`
	// Jitter is the symmetric randomisation fraction of the backoff
	// (default 0.5).
	Jitter float64 `json:"jitter,omitempty"`
	// AttemptTimeout bounds one source attempt (Go duration, default
	// unbounded).
	AttemptTimeout string `json:"attempt_timeout,omitempty"`
	// CheckpointInterval is the number of emitted tuples between
	// checkpoints when the harness enables checkpointing (default 5000).
	CheckpointInterval int `json:"checkpoint_interval,omitempty"`
}

// Policy compiles the quarantine knobs into a core fault policy.
func (f *FaultPolicySpec) Policy() core.FaultPolicy {
	if f == nil {
		return core.FaultPolicy{}
	}
	return core.FaultPolicy{Quarantine: f.Quarantine, MaxQuarantined: f.MaxQuarantined}
}

// RetryPolicy compiles the retry knobs into a stream retry policy; ok
// is false when retrying is disabled.
func (f *FaultPolicySpec) RetryPolicy() (stream.RetryPolicy, bool, error) {
	if f == nil || f.Retries <= 0 {
		return stream.RetryPolicy{}, false, nil
	}
	p := stream.RetryPolicy{MaxRetries: f.Retries, Jitter: f.Jitter}
	var err error
	if f.Backoff != "" {
		if p.BaseDelay, err = time.ParseDuration(f.Backoff); err != nil {
			return p, false, fmt.Errorf("config: fault_policy: bad backoff: %w", err)
		}
	}
	if f.MaxBackoff != "" {
		if p.MaxDelay, err = time.ParseDuration(f.MaxBackoff); err != nil {
			return p, false, fmt.Errorf("config: fault_policy: bad max_backoff: %w", err)
		}
	}
	if f.AttemptTimeout != "" {
		if p.AttemptTimeout, err = time.ParseDuration(f.AttemptTimeout); err != nil {
			return p, false, fmt.Errorf("config: fault_policy: bad attempt_timeout: %w", err)
		}
	}
	return p, true, nil
}

// Interval returns the effective checkpoint interval in tuples.
func (f *FaultPolicySpec) Interval() int {
	if f == nil || f.CheckpointInterval <= 0 {
		return 5000
	}
	return f.CheckpointInterval
}

// PipelineSpec is one pollution pipeline.
type PipelineSpec struct {
	Name      string         `json:"name,omitempty"`
	Polluters []PolluterSpec `json:"polluters"`
}

// PolluterSpec describes a standard or composite polluter.
type PolluterSpec struct {
	Name string `json:"name"`
	// Type is "standard" (default) or "composite".
	Type      string         `json:"type,omitempty"`
	Condition *ConditionSpec `json:"condition,omitempty"`
	Error     *ErrorSpec     `json:"error,omitempty"`
	Attrs     []string       `json:"attrs,omitempty"`
	Mode      string         `json:"mode,omitempty"` // composite: sequence|choice|weighted
	Weights   []float64      `json:"weights,omitempty"`
	Children  []PolluterSpec `json:"children,omitempty"`
	// KeyAttr and Template configure a "keyed" polluter: Template is
	// instantiated once per distinct value of KeyAttr, with key-specific
	// randomness.
	KeyAttr  string        `json:"key_attr,omitempty"`
	Template *PolluterSpec `json:"template,omitempty"`
}

// ConditionSpec describes a condition tree.
type ConditionSpec struct {
	Type string `json:"type"`

	// random
	P      *float64   `json:"p,omitempty"`
	PParam *ParamSpec `json:"p_param,omitempty"`

	// compare
	Attr  string          `json:"attr,omitempty"`
	Op    string          `json:"op,omitempty"`
	Value json.RawMessage `json:"value,omitempty"`

	// time_interval
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`

	// time_of_day
	FromHour int `json:"from_hour,omitempty"`
	ToHour   int `json:"to_hour,omitempty"`

	// and / or / not; not/sticky/budget use Child as the inner condition
	Children []ConditionSpec `json:"children,omitempty"`
	Child    *ConditionSpec  `json:"child,omitempty"`

	// sticky
	Hold string `json:"hold,omitempty"`

	// markov (Gilbert-Elliott burst chain)
	PEnter float64 `json:"p_enter,omitempty"`
	PExit  float64 `json:"p_exit,omitempty"`

	// budget
	Budget int    `json:"budget,omitempty"`
	Window string `json:"window,omitempty"`
}

// ParamSpec describes a scalar or time-varying parameter.
type ParamSpec struct {
	// Const is used when the parameter appears as a bare number.
	Const *float64 `json:"const,omitempty"`
	Type  string   `json:"type,omitempty"` // linear | sinusoid_daily | pattern
	// linear
	From string  `json:"from,omitempty"`
	To   string  `json:"to,omitempty"`
	V0   float64 `json:"v0,omitempty"`
	V1   float64 `json:"v1,omitempty"`
	// sinusoid_daily
	Amp    float64 `json:"amp,omitempty"`
	Offset float64 `json:"offset,omitempty"`
	// pattern
	Pattern *PatternSpec `json:"pattern,omitempty"`
	Max     float64      `json:"max,omitempty"`
}

// UnmarshalJSON accepts either a bare number or a parameter object.
func (p *ParamSpec) UnmarshalJSON(data []byte) error {
	var num float64
	if err := json.Unmarshal(data, &num); err == nil {
		p.Const = &num
		return nil
	}
	type alias ParamSpec
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*p = ParamSpec(a)
	return nil
}

// PatternSpec describes a change pattern.
type PatternSpec struct {
	Type       string `json:"type"` // abrupt | incremental | intermediate
	At         string `json:"at,omitempty"`
	From       string `json:"from,omitempty"`
	To         string `json:"to,omitempty"`
	Triangular bool   `json:"triangular,omitempty"`
}

// ErrorSpec describes an error function.
type ErrorSpec struct {
	Type string `json:"type"`

	Stddev     *ParamSpec      `json:"stddev,omitempty"`
	Lo         *ParamSpec      `json:"lo,omitempty"`
	Hi         *ParamSpec      `json:"hi,omitempty"`
	Factor     *ParamSpec      `json:"factor,omitempty"`
	Delta      *ParamSpec      `json:"delta,omitempty"`
	Magnitude  *ParamSpec      `json:"magnitude,omitempty"`
	Value      json.RawMessage `json:"value,omitempty"`
	Categories []string        `json:"categories,omitempty"`
	Digits     int             `json:"digits,omitempty"`
	ClampLo    float64         `json:"clamp_lo,omitempty"`
	ClampHi    float64         `json:"clamp_hi,omitempty"`
	Delay      string          `json:"delay,omitempty"`
	Offset     string          `json:"offset,omitempty"`
	ReleaseAt  string          `json:"release_at,omitempty"`
	Errors     []ErrorSpec     `json:"errors,omitempty"` // chain
}

// Parse decodes a JSON configuration document.
func Parse(r io.Reader) (*Document, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc Document
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("config: parse: %w", err)
	}
	return &doc, nil
}

// Build compiles the document into an executable pollution process.
func Build(doc *Document) (*core.Process, error) {
	if len(doc.Pipelines) == 0 {
		return nil, fmt.Errorf("config: document has no pipelines")
	}
	proc := &core.Process{FirstID: 1, KeepClean: true, Parallel: doc.Parallel, Fault: doc.Fault.Policy()}
	for i, ps := range doc.Pipelines {
		path := fmt.Sprintf("pipeline[%d]", i)
		if ps.Name != "" {
			path = ps.Name
		}
		var polluters []core.Polluter
		for j, spec := range ps.Polluters {
			p, err := buildPolluter(spec, doc.Seed, fmt.Sprintf("%s/%d:%s", path, j, spec.Name))
			if err != nil {
				return nil, err
			}
			polluters = append(polluters, p)
		}
		proc.Pipelines = append(proc.Pipelines, core.NewPipeline(polluters...))
	}
	route, err := buildRoute(doc.Route)
	if err != nil {
		return nil, err
	}
	proc.Route = route
	return proc, nil
}

// Load parses and compiles in one step.
func Load(r io.Reader) (*core.Process, error) {
	doc, err := Parse(r)
	if err != nil {
		return nil, err
	}
	return Build(doc)
}

func buildRoute(route string) (stream.RouteFunc, error) {
	switch {
	case route == "" || route == "all":
		return nil, nil // Process defaults handle these
	case route == "round_robin":
		return stream.RouteRoundRobin(), nil
	case len(route) > 3 && route[:3] == "by:":
		return stream.RouteByAttribute(route[3:]), nil
	}
	return nil, fmt.Errorf("config: unknown route %q", route)
}

func buildPolluter(spec PolluterSpec, seed int64, path string) (core.Polluter, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("config: polluter at %s has no name", path)
	}
	cond, err := buildCondition(spec.Condition, seed, path+"/cond")
	if err != nil {
		return nil, err
	}
	switch spec.Type {
	case "", "standard":
		if spec.Error == nil {
			return nil, fmt.Errorf("config: standard polluter %q has no error", path)
		}
		if len(spec.Children) > 0 {
			return nil, fmt.Errorf("config: standard polluter %q cannot have children", path)
		}
		errFn, err := buildError(*spec.Error, seed, path+"/error")
		if err != nil {
			return nil, err
		}
		return core.NewStandard(spec.Name, errFn, cond, spec.Attrs...), nil
	case "composite":
		if spec.Error != nil {
			return nil, fmt.Errorf("config: composite polluter %q cannot carry an error", path)
		}
		var children []core.Polluter
		for j, c := range spec.Children {
			child, err := buildPolluter(c, seed, fmt.Sprintf("%s/%d:%s", path, j, c.Name))
			if err != nil {
				return nil, err
			}
			children = append(children, child)
		}
		comp := &core.Composite{PolluterName: spec.Name, Cond: cond, Children: children}
		switch spec.Mode {
		case "", "sequence":
			comp.Mode = core.ModeSequence
		case "choice":
			comp.Mode = core.ModeChoice
			comp.Rand = rng.Derive(seed, path+"/choice")
		case "weighted":
			if len(spec.Weights) != len(children) {
				return nil, fmt.Errorf("config: composite %q has %d weights for %d children", path, len(spec.Weights), len(children))
			}
			comp.Mode = core.ModeWeighted
			comp.Weights = spec.Weights
			comp.Rand = rng.Derive(seed, path+"/choice")
		default:
			return nil, fmt.Errorf("config: composite %q has unknown mode %q", path, spec.Mode)
		}
		return comp, nil
	case "keyed":
		if spec.KeyAttr == "" || spec.Template == nil {
			return nil, fmt.Errorf("config: keyed polluter %q needs key_attr and template", path)
		}
		if spec.Error != nil || len(spec.Children) > 0 {
			return nil, fmt.Errorf("config: keyed polluter %q carries its behaviour in template only", path)
		}
		// Validate the template once upfront so configuration errors
		// surface at load time rather than on first key.
		if _, err := buildPolluter(*spec.Template, seed, path+"/template"); err != nil {
			return nil, err
		}
		tmpl := *spec.Template
		return core.NewKeyedPolluter(spec.Name, spec.KeyAttr, func(key string) core.Polluter {
			p, err := buildPolluter(tmpl, seed, path+"/key="+key)
			if err != nil {
				// Unreachable: the template was validated above and key
				// only affects RNG derivation.
				panic(fmt.Sprintf("config: keyed template instantiation: %v", err))
			}
			return p
		}), nil
	}
	return nil, fmt.Errorf("config: polluter %q has unknown type %q", path, spec.Type)
}

func buildCondition(spec *ConditionSpec, seed int64, path string) (core.Condition, error) {
	if spec == nil {
		return core.Always{}, nil
	}
	switch spec.Type {
	case "always":
		return core.Always{}, nil
	case "never":
		return core.Never{}, nil
	case "random":
		var p core.Param
		switch {
		case spec.PParam != nil:
			var err error
			p, err = buildParam(spec.PParam, path+"/p")
			if err != nil {
				return nil, err
			}
		case spec.P != nil:
			p = core.Const(*spec.P)
		default:
			return nil, fmt.Errorf("config: random condition at %s needs p or p_param", path)
		}
		return core.NewRandom(p, rng.Derive(seed, path)), nil
	case "compare":
		if spec.Attr == "" {
			return nil, fmt.Errorf("config: compare condition at %s needs attr", path)
		}
		v, err := parseValueJSON(spec.Value)
		if err != nil {
			return nil, fmt.Errorf("config: compare at %s: %w", path, err)
		}
		op := core.ValueOp(spec.Op)
		switch op {
		case core.OpEq, core.OpNe, core.OpLt, core.OpLe, core.OpGt, core.OpGe:
		default:
			return nil, fmt.Errorf("config: compare at %s has unknown op %q", path, spec.Op)
		}
		return core.Compare{Attr: spec.Attr, Op: op, Value: v}, nil
	case "time_interval":
		from, err := parseTime(spec.From)
		if err != nil {
			return nil, fmt.Errorf("config: time_interval at %s: %w", path, err)
		}
		to, err := parseTime(spec.To)
		if err != nil {
			return nil, fmt.Errorf("config: time_interval at %s: %w", path, err)
		}
		return core.TimeInterval{From: from, To: to}, nil
	case "time_of_day":
		return core.TimeOfDay{FromHour: spec.FromHour, ToHour: spec.ToHour}, nil
	case "and", "or":
		var children []core.Condition
		for i := range spec.Children {
			c, err := buildCondition(&spec.Children[i], seed, fmt.Sprintf("%s/%d", path, i))
			if err != nil {
				return nil, err
			}
			children = append(children, c)
		}
		if spec.Type == "and" {
			return core.And(children), nil
		}
		return core.Or(children), nil
	case "not":
		if spec.Child == nil {
			return nil, fmt.Errorf("config: not condition at %s needs a child", path)
		}
		inner, err := buildCondition(spec.Child, seed, path+"/not")
		if err != nil {
			return nil, err
		}
		return core.Not{Inner: inner}, nil
	case "sticky":
		if spec.Child == nil {
			return nil, fmt.Errorf("config: sticky condition at %s needs a child trigger", path)
		}
		hold, err := time.ParseDuration(spec.Hold)
		if err != nil {
			return nil, fmt.Errorf("config: sticky at %s: bad hold: %w", path, err)
		}
		trigger, err := buildCondition(spec.Child, seed, path+"/sticky")
		if err != nil {
			return nil, err
		}
		return core.NewSticky(trigger, hold), nil
	case "markov":
		if spec.PEnter <= 0 || spec.PEnter > 1 || spec.PExit <= 0 || spec.PExit > 1 {
			return nil, fmt.Errorf("config: markov at %s needs p_enter and p_exit in (0, 1]", path)
		}
		return core.NewMarkovCondition(spec.PEnter, spec.PExit, rng.Derive(seed, path)), nil
	case "budget":
		if spec.Child == nil {
			return nil, fmt.Errorf("config: budget condition at %s needs a child", path)
		}
		if spec.Budget < 1 {
			return nil, fmt.Errorf("config: budget at %s needs budget >= 1", path)
		}
		window, err := time.ParseDuration(spec.Window)
		if err != nil {
			return nil, fmt.Errorf("config: budget at %s: bad window: %w", path, err)
		}
		inner, err := buildCondition(spec.Child, seed, path+"/budget")
		if err != nil {
			return nil, err
		}
		return core.NewBudgetCondition(inner, spec.Budget, window), nil
	}
	return nil, fmt.Errorf("config: unknown condition type %q at %s", spec.Type, path)
}

func buildParam(spec *ParamSpec, path string) (core.Param, error) {
	if spec == nil {
		return nil, fmt.Errorf("config: missing parameter at %s", path)
	}
	if spec.Const != nil {
		return core.Const(*spec.Const), nil
	}
	switch spec.Type {
	case "linear":
		from, err := parseTime(spec.From)
		if err != nil {
			return nil, fmt.Errorf("config: linear param at %s: %w", path, err)
		}
		to, err := parseTime(spec.To)
		if err != nil {
			return nil, fmt.Errorf("config: linear param at %s: %w", path, err)
		}
		return core.Linear(from, to, spec.V0, spec.V1), nil
	case "sinusoid_daily":
		return core.SinusoidDaily(spec.Amp, spec.Offset), nil
	case "pattern":
		if spec.Pattern == nil {
			return nil, fmt.Errorf("config: pattern param at %s needs a pattern", path)
		}
		pat, err := buildPattern(spec.Pattern, path)
		if err != nil {
			return nil, err
		}
		max := spec.Max
		if max == 0 {
			max = 1
		}
		return core.Scaled(pat, max), nil
	}
	return nil, fmt.Errorf("config: unknown param type %q at %s", spec.Type, path)
}

func buildPattern(spec *PatternSpec, path string) (core.Pattern, error) {
	switch spec.Type {
	case "abrupt":
		at, err := parseTime(spec.At)
		if err != nil {
			return nil, fmt.Errorf("config: abrupt pattern at %s: %w", path, err)
		}
		return core.AbruptPattern{At: at}, nil
	case "incremental":
		from, err := parseTime(spec.From)
		if err != nil {
			return nil, fmt.Errorf("config: incremental pattern at %s: %w", path, err)
		}
		to, err := parseTime(spec.To)
		if err != nil {
			return nil, fmt.Errorf("config: incremental pattern at %s: %w", path, err)
		}
		return core.IncrementalPattern{From: from, To: to}, nil
	case "intermediate":
		from, err := parseTime(spec.From)
		if err != nil {
			return nil, fmt.Errorf("config: intermediate pattern at %s: %w", path, err)
		}
		to, err := parseTime(spec.To)
		if err != nil {
			return nil, fmt.Errorf("config: intermediate pattern at %s: %w", path, err)
		}
		return core.IntermediatePattern{From: from, To: to, Triangular: spec.Triangular}, nil
	}
	return nil, fmt.Errorf("config: unknown pattern type %q at %s", spec.Type, path)
}

func buildError(spec ErrorSpec, seed int64, path string) (core.ErrorFunc, error) {
	required := func(p *ParamSpec, name string) (core.Param, error) {
		if p == nil {
			return nil, fmt.Errorf("config: error at %s requires %s", path, name)
		}
		return buildParam(p, path+"/"+name)
	}
	switch spec.Type {
	case "gaussian_noise":
		sd, err := required(spec.Stddev, "stddev")
		if err != nil {
			return nil, err
		}
		return &core.GaussianNoise{Stddev: sd, Rand: rng.Derive(seed, path)}, nil
	case "uniform_mult_noise":
		lo, err := required(spec.Lo, "lo")
		if err != nil {
			return nil, err
		}
		hi, err := required(spec.Hi, "hi")
		if err != nil {
			return nil, err
		}
		return &core.UniformMultNoise{Lo: lo, Hi: hi, Rand: rng.Derive(seed, path)}, nil
	case "scale_by_factor":
		f, err := required(spec.Factor, "factor")
		if err != nil {
			return nil, err
		}
		return &core.ScaleByFactor{Factor: f}, nil
	case "missing_value":
		return core.MissingValue{}, nil
	case "set_constant":
		v, err := parseValueJSON(spec.Value)
		if err != nil {
			return nil, fmt.Errorf("config: set_constant at %s: %w", path, err)
		}
		return core.SetConstant{Value: v}, nil
	case "incorrect_category":
		if len(spec.Categories) == 0 {
			return nil, fmt.Errorf("config: incorrect_category at %s needs categories", path)
		}
		return &core.IncorrectCategory{Categories: spec.Categories, Rand: rng.Derive(seed, path)}, nil
	case "round_precision":
		return core.RoundPrecision{Digits: spec.Digits}, nil
	case "outlier":
		m, err := required(spec.Magnitude, "magnitude")
		if err != nil {
			return nil, err
		}
		return &core.Outlier{Magnitude: m, Rand: rng.Derive(seed, path)}, nil
	case "string_typo":
		return &core.StringTypo{Rand: rng.Derive(seed, path)}, nil
	case "swap_attributes":
		return core.SwapAttributes{}, nil
	case "offset":
		d, err := required(spec.Delta, "delta")
		if err != nil {
			return nil, err
		}
		return core.Offset{Delta: d}, nil
	case "clamp":
		return core.Clamp{Lo: spec.ClampLo, Hi: spec.ClampHi}, nil
	case "delayed_tuple":
		d, err := time.ParseDuration(spec.Delay)
		if err != nil {
			return nil, fmt.Errorf("config: delayed_tuple at %s: %w", path, err)
		}
		return core.DelayTuple{Delay: d}, nil
	case "frozen_value":
		return core.NewFrozenValue(), nil
	case "timestamp_shift":
		d, err := time.ParseDuration(spec.Offset)
		if err != nil {
			return nil, fmt.Errorf("config: timestamp_shift at %s: %w", path, err)
		}
		return core.TimestampShift{Offset: d}, nil
	case "dropped_tuple":
		return core.DropTuple{}, nil
	case "hold_and_release":
		at, err := parseTime(spec.ReleaseAt)
		if err != nil {
			return nil, fmt.Errorf("config: hold_and_release at %s: %w", path, err)
		}
		return core.HoldAndRelease{ReleaseAt: at}, nil
	case "chain":
		if len(spec.Errors) == 0 {
			return nil, fmt.Errorf("config: chain at %s needs errors", path)
		}
		var chain core.Chain
		for i, sub := range spec.Errors {
			e, err := buildError(sub, seed, fmt.Sprintf("%s/%d", path, i))
			if err != nil {
				return nil, err
			}
			chain = append(chain, e)
		}
		return chain, nil
	}
	return nil, fmt.Errorf("config: unknown error type %q at %s", spec.Type, path)
}

// parseValueJSON maps a raw JSON scalar onto a stream.Value: numbers to
// float, strings to string (or time when RFC3339), booleans to bool, and
// null to NULL.
func parseValueJSON(raw json.RawMessage) (stream.Value, error) {
	if len(raw) == 0 {
		return stream.Null(), fmt.Errorf("missing value")
	}
	var v interface{}
	if err := json.Unmarshal(raw, &v); err != nil {
		return stream.Null(), err
	}
	switch x := v.(type) {
	case nil:
		return stream.Null(), nil
	case float64:
		return stream.Float(x), nil
	case bool:
		return stream.Bool(x), nil
	case string:
		if t, err := time.Parse(time.RFC3339, x); err == nil {
			return stream.Time(t), nil
		}
		return stream.Str(x), nil
	}
	return stream.Null(), fmt.Errorf("unsupported JSON value %s", string(raw))
}

// parseTime parses an RFC3339 timestamp; the empty string maps to the
// zero time (unbounded interval edge).
func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad timestamp %q: %w", s, err)
	}
	return t, nil
}
