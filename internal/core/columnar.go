package core

import (
	"fmt"
	"io"
	"time"

	"icewafl/internal/obs"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// This file implements RunStreamColumnar, the columnar end-to-end hot
// path: instead of pulling tuples one by one through the pipeline, the
// runner fills a reused ColumnBatch, executes the pipeline as
// vectorised sweeps over the column arrays (kernel.go), and emits the
// surviving rows. The output is byte-identical to RunStream — same
// tuples, same pollution-log entries in the same order, same dead
// letters, same observability counter totals — which the differential
// suite in columnar_diff_test.go asserts over randomised configurations.
//
// The compiler is conservative: whenever a pipeline component's
// semantics could observe the execution order difference between
// tuple-major and polluter-major traversal (shared RNG streams across
// sweep phases, cross-step state like cascade/deviation conditions,
// quarantine fault attribution, or unknown custom types), the whole
// plan collapses to row-wise execution over the batch — still batched
// ingest and emission, but per-row pollution through the exact scalar
// code path. Collapse changes performance, never output.
//
// Span tracing follows the execution shape: the vectorised path emits
// one batch-granular obs.StagePollute span per kernel invocation —
// identified by the batch's first tuple ID and tagged with the batch
// row count (Span.Rows) — while the row-wise collapse path emits the
// same per-tuple sampled spans as the scalar runner. Span counts
// therefore differ between the paths by design; span presence and the
// latency histogram totals do not.

// DefaultColumnarBatch is the micro-batch size when ColumnarOptions
// does not specify one.
const DefaultColumnarBatch = 256

// ColumnarOptions tunes the columnar hot path of a Process.
type ColumnarOptions struct {
	// Batch is the micro-batch size in rows (default
	// DefaultColumnarBatch).
	Batch int
	// Pool, when set with a reorder window <= 1, lets the runner emit
	// loaned tuples: the buffer of the previously emitted tuple is
	// recycled on the following Next call, so steady-state emission
	// allocates nothing. Consumers must not retain emitted tuples
	// across pulls (Drain must clone; see stream.FromColumnBatches for
	// the same contract).
	Pool *stream.TuplePool
}

// colStep is one top-level pipeline step of a compiled columnar plan:
// either a vectorised standard polluter (cond+err kernels) or a
// row-major shim around an opaque-but-safe polluter (composites).
type colStep struct {
	// Vectorised form (shim == nil).
	cond    condKernel
	err     errKernel
	name    string
	errKind string
	attrs   []string
	hits    stream.Selection

	// Row-major shim form.
	shim Polluter

	// Per-batch log scratch: entries this step recorded, with the batch
	// row of each entry. Counters tick at Record time (scratch.Obs);
	// the merge appends entries without recounting, like Log.Merge.
	scratch *Log
	rows    []int32
	cursor  int
}

// run executes the step over all rows of b.
func (s *colStep) run(b *stream.ColumnBatch, all stream.Selection, rowBuf *[]stream.Value) {
	if s.shim != nil {
		taus := b.EventTimes()
		for _, r := range all {
			t := b.RowInto(*rowBuf, int(r))
			*rowBuf = t.Values()
			mark := 0
			if s.scratch != nil {
				mark = len(s.scratch.Entries)
			}
			s.shim.Pollute(&t, taus[r], s.scratch)
			if s.scratch != nil {
				for i := mark; i < len(s.scratch.Entries); i++ {
					s.rows = append(s.rows, r)
				}
			}
			b.SetRow(int(r), t)
		}
		return
	}
	s.hits = s.cond(b, all, s.hits[:0])
	if s.scratch != nil && s.scratch.Obs != nil {
		// Bulk form of the per-tuple condHit/condMiss bookkeeping.
		s.scratch.Obs.Add(obs.CCondHits, uint64(len(s.hits)))
		s.scratch.Obs.Add(obs.CCondMisses, uint64(len(all)-len(s.hits)))
	}
	s.err(b, s.hits)
	if s.scratch != nil {
		ids := b.IDs()
		taus := b.EventTimes()
		for _, r := range s.hits {
			s.scratch.Record(Entry{
				TupleID:   ids[r],
				EventTime: taus[r],
				Polluter:  s.name,
				Error:     s.errKind,
				Attrs:     s.attrs,
			})
			s.rows = append(s.rows, r)
		}
	}
}

// mergeStepLogs folds the per-step scratch logs into the run log in
// row-major order — the order the tuple-wise runner records entries —
// and resets the scratches for the next batch. Entries were already
// counted at Record time, so the merge appends without recounting.
func mergeStepLogs(steps []colStep, log *Log, n int) {
	if log == nil {
		return
	}
	for row := int32(0); row < int32(n); row++ {
		for si := range steps {
			st := &steps[si]
			for st.cursor < len(st.rows) && st.rows[st.cursor] == row {
				log.Entries = append(log.Entries, st.scratch.Entries[st.cursor])
				st.cursor++
			}
		}
	}
	for si := range steps {
		st := &steps[si]
		st.scratch.Entries = st.scratch.Entries[:0]
		st.rows = st.rows[:0]
		st.cursor = 0
	}
}

// compileColumnarPlan compiles p into vectorised steps. A non-empty
// reason means the plan cannot run polluter-major and the runner must
// collapse to row-wise execution (reason is diagnostic only).
func compileColumnarPlan(p *Pipeline, schema *stream.Schema, quarantine bool) (steps []colStep, reason string) {
	if quarantine {
		// Quarantine attributes pipeline panics to single rows and rolls
		// the log back per tuple; only row-at-a-time execution can do
		// that.
		return nil, "quarantine requires per-row fault attribution"
	}
	var phases [][]*rng.Stream
	for _, pol := range p.Polluters {
		switch v := pol.(type) {
		case *Standard:
			cp, ok := condPhases(v.Cond)
			if !ok {
				return nil, fmt.Sprintf("condition %T requires row-wise execution", v.Cond)
			}
			ep, ok := errPhases(v.Err)
			if !ok {
				return nil, fmt.Sprintf("error function %T requires row-wise execution", v.Err)
			}
			ck, ok := compileCond(v.Cond, schema)
			if !ok {
				return nil, fmt.Sprintf("condition %T has no kernel", v.Cond)
			}
			ek, ok := compileErr(v.Err, v.Attrs, schema)
			if !ok {
				return nil, fmt.Sprintf("error function %T has no kernel", v.Err)
			}
			phases = append(phases, cp...)
			phases = append(phases, ep...)
			steps = append(steps, colStep{
				cond:    ck,
				err:     ek,
				name:    v.PolluterName,
				errKind: v.Err.Kind(),
				attrs:   v.Attrs,
			})
		case *Composite:
			// A composite dispatches per tuple (mode, choice draws,
			// sequence of children); it runs as one row-major shim step,
			// so all of its streams form a single phase.
			ps, ok := polluterStreams(v)
			if !ok {
				return nil, fmt.Sprintf("polluter %q contains components that require row-wise execution", v.PolluterName)
			}
			if len(ps) > 0 {
				phases = append(phases, ps)
			}
			steps = append(steps, colStep{shim: v})
		default:
			// Observers, keyed polluters, custom polluters: cross-step
			// coupling and RNG usage cannot be enumerated.
			return nil, fmt.Sprintf("polluter %T requires row-wise execution", pol)
		}
	}
	if sharesStreams(phases) {
		// The same RNG stream drawn in two sweep phases would consume
		// draws in a different order than tuple-major execution.
		return nil, "an rng stream is shared across sweep phases"
	}
	return steps, ""
}

// RunStreamColumnar executes the single-pipeline workflow like
// RunStream but over columnar micro-batches. The emitted stream, the
// pollution log, the dead-letter queue and the observability counter
// totals are byte-identical to RunStream over the same source; only
// throughput differs. The wrapper chain mirrors RunStream exactly:
// source observation → optional quarantine → preparation → pollution →
// optional bounded reorder.
//
// When the raw source implements stream.ColumnBatchReader and
// quarantine is off, ingest is batch-native: rows decode straight into
// the runner's column buffers and preparation (ID assignment, τ
// extraction) runs as column sweeps, bypassing per-tuple
// materialisation entirely.
//
// Like RunStream, columnar streaming pollutes in place and supports
// exactly one pipeline.
func (pr *Process) RunStreamColumnar(src stream.Source, reorderWindow int) (stream.Source, *Log, error) {
	if len(pr.Pipelines) != 1 {
		return nil, nil, fmt.Errorf("core: columnar streaming mode supports exactly one pipeline, got %d", len(pr.Pipelines))
	}
	pr.resetPipelines()
	firstID := pr.FirstID
	if firstID == 0 {
		firstID = 1
	}
	log := pr.newLog()
	dlq := pr.instrumentDLQ(pr.Fault.queue())
	schema := src.Schema()
	batchSize := pr.Columnar.Batch
	if batchSize <= 0 {
		batchSize = DefaultColumnarBatch
	}

	steps, collapse := compileColumnarPlan(pr.Pipelines[0], schema, pr.Fault.Quarantine)
	if collapse == "" && log != nil {
		for i := range steps {
			steps[i].scratch = &Log{Obs: log.Obs}
		}
	}

	runner := &columnarRunner{
		schema:    schema,
		steps:     steps,
		rowWise:   collapse != "",
		trace:     pr.Obs.TraceEnabled(),
		p:         pr.Pipelines[0],
		log:       log,
		fault:     pr.Fault,
		dlq:       dlq,
		reg:       pr.Obs,
		tap:       pr.CleanTap,
		batchSize: batchSize,
		batch:     stream.NewColumnBatch(schema, batchSize),
		pool:      pr.Columnar.Pool,
		loan:      pr.Columnar.Pool != nil && reorderWindow <= 1,
	}

	var in stream.Source = stream.ObserveSource(src, pr.Obs)
	if pr.Fault.Quarantine {
		in = stream.Quarantine(in, dlq, pr.Fault.MaxQuarantined)
	}
	runner.src = stream.NewPrepare(in, firstID)
	if cbr, ok := src.(stream.ColumnBatchReader); ok && !pr.Fault.Quarantine {
		// Batch-native ingest replicates the wrapper chain's per-row
		// effects (source counting, ID/τ/arrival assignment) itself.
		runner.batchSrc = cbr
		runner.nextID = firstID
		runner.tsIdx = schema.TimestampIndex()
	}
	if reorderWindow > 1 {
		return stream.NewBoundedReorder(runner, reorderWindow), log, nil
	}
	return runner, log, nil
}

// columnarRunner is the fused batch-fill → pollute → emit operator of
// columnar streaming mode.
type columnarRunner struct {
	schema   *stream.Schema
	src      *stream.Prepare
	batchSrc stream.ColumnBatchReader
	nextID   uint64
	tsIdx    int

	steps   []colStep
	rowWise bool
	trace   bool
	p       *Pipeline
	log     *Log
	fault   FaultPolicy
	dlq     *stream.DeadLetterQueue
	reg     *obs.Registry
	tap     func(stream.Tuple)

	batchSize int
	batch     *stream.ColumnBatch
	all       stream.Selection
	rowBuf    []stream.Value

	pool *stream.TuplePool
	loan bool
	prev stream.Tuple
	held bool

	// pos..limit are the processed rows still to emit; pendingErr is a
	// source or fault error stashed until the rows that precede it have
	// been delivered, preserving the tuple/error order of the scalar
	// runner.
	pos, limit int
	pendingErr error
	done       bool
}

// Schema implements stream.Source.
func (r *columnarRunner) Schema() *stream.Schema { return r.schema }

// Next implements stream.Source.
func (r *columnarRunner) Next() (stream.Tuple, error) {
	if r.held {
		r.pool.ReleaseTuple(r.prev)
		r.held = false
		r.prev = stream.Tuple{}
	}
	for {
		for r.pos < r.limit {
			row := r.pos
			r.pos++
			if r.batch.QuarantinedMask()[row] {
				continue
			}
			if r.batch.DroppedMask()[row] {
				r.reg.Inc(obs.CTuplesDropped)
				continue
			}
			var buf []stream.Value
			if r.loan {
				buf = r.pool.Get()
			}
			t := r.batch.RowInto(buf, row)
			r.reg.Inc(obs.CTuplesOut)
			if r.loan {
				r.prev = t
				r.held = true
			}
			return t, nil
		}
		if r.pendingErr != nil {
			err := r.pendingErr
			r.pendingErr = nil
			return stream.Tuple{}, err
		}
		if r.done {
			return stream.Tuple{}, io.EOF
		}
		r.fill()
		r.process()
	}
}

// ReadBatch implements stream.ColumnBatchReader: the runner serves its
// processed rows batch-at-a-time, so a batch-native consumer (the
// netstream columnar encoder, batch sinks) never materialises tuples.
// Emission semantics and counter effects are exactly those of Next —
// quarantined rows are filtered, dropped rows are filtered and counted
// — delivered as bulk column copies of the surviving row runs. Note
// the returned rows are appended to dst, so interleaving ReadBatch and
// Next is well-defined (each row is delivered exactly once).
func (r *columnarRunner) ReadBatch(dst *stream.ColumnBatch, max int) (int, error) {
	if r.held {
		r.pool.ReleaseTuple(r.prev)
		r.held = false
		r.prev = stream.Tuple{}
	}
	appended := 0
	for appended < max {
		if r.pos < r.limit {
			quar := r.batch.QuarantinedMask()
			drop := r.batch.DroppedMask()
			row := r.pos
			if quar[row] {
				r.pos++
				continue
			}
			if drop[row] {
				r.reg.Inc(obs.CTuplesDropped)
				r.pos++
				continue
			}
			end := row + 1
			for end < r.limit && appended+(end-row) < max && !quar[end] && !drop[end] {
				end++
			}
			if err := dst.AppendBatchRows(r.batch, row, end); err != nil {
				return appended, err
			}
			r.reg.Add(obs.CTuplesOut, uint64(end-row))
			appended += end - row
			r.pos = end
			continue
		}
		if r.pendingErr != nil {
			// Rows read before the failure stay appended, per the
			// ColumnBatchReader contract.
			err := r.pendingErr
			r.pendingErr = nil
			return appended, err
		}
		if r.done {
			if appended == 0 {
				return 0, io.EOF
			}
			return appended, nil
		}
		r.fill()
		r.process()
	}
	return appended, nil
}

// fill pulls the next micro-batch. A mid-batch source error is stashed
// as pendingErr so the rows read before it still flow — the scalar
// runner would have delivered them before surfacing the error.
func (r *columnarRunner) fill() {
	r.batch.Reset()
	r.pos, r.limit = 0, 0
	if r.batchSrc != nil {
		r.fillNative()
		return
	}
	for r.batch.Len() < r.batchSize {
		t, err := r.src.Next()
		if err != nil {
			if stream.IsEndOfStream(err) {
				r.done = true
			} else {
				r.pendingErr = err
			}
			return
		}
		if r.tap != nil {
			r.tap(t.Clone())
		}
		r.reg.Inc(obs.CTuplesIn)
		if aerr := r.batch.AppendTuple(t); aerr != nil {
			r.pendingErr = aerr
			return
		}
	}
}

// fillNative is the batch-native ingest path: the source decodes rows
// directly into the column buffers and the per-row effects of the
// tuple-wise wrapper chain — ObserveSource counting, Prepare's ID/τ/
// arrival assignment, the clean tap, the tuples-in counter — are
// replicated as column sweeps.
func (r *columnarRunner) fillNative() {
	_, err := r.batchSrc.ReadBatch(r.batch, r.batchSize)
	n := r.batch.Len()
	r.reg.Add(obs.CSourceRows, uint64(n))
	for row := 0; row < n; row++ {
		r.batch.SetID(row, r.nextID)
		r.nextID++
		tau, ok := r.batch.Value(row, r.tsIdx).AsTime()
		if !ok {
			tau = time.Time{}
		}
		r.batch.SetEventTime(row, tau)
		r.batch.SetArrival(row, tau)
		if r.tap != nil {
			r.tap(r.batch.Row(row))
		}
	}
	r.reg.Add(obs.CTuplesIn, uint64(n))
	if err != nil {
		if stream.IsEndOfStream(err) {
			r.done = true
			return
		}
		if _, ok := stream.AsTupleError(err); ok {
			// ObserveSource counts a malformed row as a source row too.
			r.reg.Inc(obs.CSourceRows)
			r.reg.Inc(obs.CSourceErrors)
		}
		r.pendingErr = err
	}
}

// process pollutes the filled batch in place and sets the emission
// window.
func (r *columnarRunner) process() {
	n := r.batch.Len()
	r.limit = n
	if n == 0 {
		return
	}
	if r.rowWise {
		for row := 0; row < n; row++ {
			t := r.batch.RowInto(r.rowBuf, row)
			r.rowBuf = t.Values()
			mark := 0
			if r.log != nil {
				mark = len(r.log.Entries)
			}
			// The collapse path runs the exact scalar code per row, so it
			// traces like the scalar runner: per-tuple sampled spans.
			var ok bool
			var ferr error
			if r.trace && r.reg.Sampled(t.ID) {
				start := time.Now()
				ok, ferr = applyWithFault(r.p, &t, r.log, r.fault, r.dlq, mark)
				r.reg.ObserveSpan(obs.StagePollute, t.ID, time.Since(start))
			} else {
				ok, ferr = applyWithFault(r.p, &t, r.log, r.fault, r.dlq, mark)
			}
			r.batch.SetRow(row, t)
			_ = ok // a skipped tuple carries Quarantined and is filtered at emission
			if ferr != nil {
				// Fatal (quarantine overflow): deliver the rows before the
				// failure, then surface the error and stop.
				r.limit = row
				r.pendingErr = ferr
				r.done = true
				return
			}
		}
		return
	}
	r.all = r.all.FillAll(n)
	if r.trace {
		// Batch-granular tracing: one StagePollute span per kernel
		// invocation, identified by the batch's first tuple ID and tagged
		// with the batch row count. Clock reads stay off the untraced
		// path.
		firstID := r.batch.IDs()[0]
		for si := range r.steps {
			start := time.Now()
			r.steps[si].run(r.batch, r.all, &r.rowBuf)
			r.reg.ObserveBatchSpan(obs.StagePollute, firstID, n, time.Since(start))
		}
	} else {
		for si := range r.steps {
			r.steps[si].run(r.batch, r.all, &r.rowBuf)
		}
	}
	mergeStepLogs(r.steps, r.log, n)
}
