package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// Kernel-vs-scalar equivalence: every compiled kernel must produce the
// same bytes as the interface method it replaces, on adversarial
// column data — denormals, NaN/±Inf, max-length strings, all-null
// columns and zero timestamps.

func kernelSchema() *stream.Schema {
	return stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
		stream.Field{Name: "n", Kind: stream.KindInt},
		stream.Field{Name: "cat", Kind: stream.KindString},
		stream.Field{Name: "flag", Kind: stream.KindBool},
		stream.Field{Name: "nul", Kind: stream.KindFloat},
	)
}

// adversarialBatch builds one batch whose cells hit every numeric and
// string edge the kernels special-case. The "nul" column is all-null.
func adversarialBatch(s *stream.Schema) *stream.ColumnBatch {
	maxStr := strings.Repeat("x", 1<<12)
	base := time.Date(2022, 3, 1, 13, 30, 0, 0, time.UTC)
	rows := [][]stream.Value{
		{stream.Time(base), stream.Float(1.5), stream.Int(-3), stream.Str("abc"), stream.Bool(true), stream.Null()},
		{stream.Null(), stream.Float(math.NaN()), stream.Int(0), stream.Str(""), stream.Bool(false), stream.Null()},
		{stream.Time(base.Add(time.Hour)), stream.Float(math.Inf(1)), stream.Int(math.MaxInt64), stream.Str(maxStr), stream.Bool(true), stream.Null()},
		{stream.Time(base.Add(2 * time.Hour)), stream.Float(math.Inf(-1)), stream.Int(math.MinInt64), stream.Str("Ωλ"), stream.Bool(false), stream.Null()},
		{stream.Time(time.Unix(0, 0).UTC()), stream.Float(math.SmallestNonzeroFloat64), stream.Null(), stream.Null(), stream.Bool(true), stream.Null()},
		{stream.Time(base.Add(3 * time.Hour)), stream.Float(-0.0), stream.Int(7), stream.Str("a"), stream.Bool(false), stream.Null()},
		{stream.Time(base.Add(26 * time.Hour)), stream.Null(), stream.Int(42), stream.Str("bb"), stream.Bool(true), stream.Null()},
		{stream.Time(base.Add(-48 * time.Hour)), stream.Float(1e308), stream.Int(1), stream.Str("ccc"), stream.Bool(false), stream.Null()},
	}
	b := stream.NewColumnBatch(s, len(rows))
	for i, vals := range rows {
		t := stream.NewTuple(s, vals)
		t.ID = uint64(i + 1)
		tau, _ := vals[0].AsTime()
		t.EventTime = tau
		t.Arrival = tau
		if err := b.AppendTuple(t); err != nil {
			panic(err)
		}
	}
	return b
}

func renderBatch(b *stream.ColumnBatch) []string {
	out := make([]string, b.Len())
	for r := 0; r < b.Len(); r++ {
		out[r] = renderTuple(b.Row(r))
	}
	return out
}

// TestCondKernelsMatchScalar compiles every kernelised condition and
// checks its hit set equals row-by-row Eval on the same batch.
func TestCondKernelsMatchScalar(t *testing.T) {
	s := kernelSchema()
	day := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		mk   func() Condition // fresh per path so RNG state never shares
	}{
		{"always", func() Condition { return Always{} }},
		{"never", func() Condition { return Never{} }},
		{"random", func() Condition { return NewRandomConst(0.5, rng.Derive(1, "r")) }},
		{"random-p0", func() Condition { return NewRandomConst(0, rng.Derive(2, "r")) }},
		{"random-p1", func() Condition { return NewRandomConst(1, rng.Derive(3, "r")) }},
		{"random-ramp", func() Condition {
			return NewRandom(Linear(day, day.Add(24*time.Hour), 0, 1), rng.Derive(4, "r"))
		}},
		{"cmp-gt", func() Condition { return Compare{Attr: "v", Op: OpGt, Value: stream.Float(0)} }},
		{"cmp-eq-null", func() Condition { return Compare{Attr: "cat", Op: OpEq, Value: stream.Null()} }},
		{"cmp-ne-null", func() Condition { return Compare{Attr: "n", Op: OpNe, Value: stream.Null()} }},
		{"cmp-allnull-col", func() Condition { return Compare{Attr: "nul", Op: OpLt, Value: stream.Float(1)} }},
		{"cmp-missing-attr", func() Condition { return Compare{Attr: "ghost", Op: OpEq, Value: stream.Int(1)} }},
		{"cmp-str", func() Condition { return Compare{Attr: "cat", Op: OpGe, Value: stream.Str("b")} }},
		{"pred", func() Condition {
			return AttrPredicate{Attr: "v", Fn: func(v stream.Value) bool {
				f, ok := v.AsFloat()
				return ok && !math.IsNaN(f) && f > 0
			}}
		}},
		{"interval", func() Condition { return TimeInterval{From: day, To: day.Add(3 * time.Hour)} }},
		{"interval-open", func() Condition { return TimeInterval{} }},
		{"time-of-day", func() Condition { return TimeOfDay{FromHour: 13, ToHour: 15} }},
		{"time-of-day-wrap", func() Condition { return TimeOfDay{FromHour: 22, ToHour: 3} }},
		{"and", func() Condition {
			return And{NewRandomConst(0.7, rng.Derive(5, "r")), Compare{Attr: "flag", Op: OpEq, Value: stream.Bool(true)}}
		}},
		{"and-empty", func() Condition { return And{} }},
		{"or", func() Condition {
			return Or{Compare{Attr: "n", Op: OpLt, Value: stream.Int(0)}, NewRandomConst(0.5, rng.Derive(6, "r"))}
		}},
		{"or-empty", func() Condition { return Or{} }},
		{"not", func() Condition { return Not{Inner: Compare{Attr: "v", Op: OpGt, Value: stream.Float(0)}} }},
		{"nested", func() Condition {
			return Or{
				And{TimeOfDay{FromHour: 13, ToHour: 14}, NewRandomConst(0.9, rng.Derive(7, "r"))},
				Not{Inner: Or{Compare{Attr: "cat", Op: OpEq, Value: stream.Str("abc")}, Never{}}},
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := adversarialBatch(s)
			kern, ok := compileCond(tc.mk(), s)
			if !ok {
				t.Fatalf("condition %s did not compile to a kernel", tc.name)
			}
			all := stream.Selection(nil).FillAll(b.Len())
			hits := kern(b, all, nil)
			scalar := tc.mk()
			taus := b.EventTimes()
			var want []int32
			for r := 0; r < b.Len(); r++ {
				if scalar.Eval(b.Row(r), taus[r]) {
					want = append(want, int32(r))
				}
			}
			if fmt.Sprint([]int32(hits)) != fmt.Sprint(want) {
				t.Fatalf("hit set diverged\nkernel: %v\nscalar: %v", hits, want)
			}
		})
	}
}

// TestErrKernelsMatchScalar compiles every kernelised error function
// and checks the mutated batch equals row-by-row Apply with identical
// RNG state, including on an all-null column and at full selection.
func TestErrKernelsMatchScalar(t *testing.T) {
	s := kernelSchema()
	cases := []struct {
		name  string
		attrs []string
		mk    func(seed int64) ErrorFunc
	}{
		{"gauss", []string{"v", "nul"}, func(seed int64) ErrorFunc {
			return &GaussianNoise{Stddev: Const(2), Rand: rng.Derive(seed, "e")}
		}},
		{"uniform-mult", []string{"v"}, func(seed int64) ErrorFunc {
			return &UniformMultNoise{Lo: Const(0.1), Hi: Const(0.3), Rand: rng.Derive(seed, "e")}
		}},
		{"uniform-mult-swapped", []string{"v"}, func(seed int64) ErrorFunc {
			return &UniformMultNoise{Lo: Const(0.3), Hi: Const(0.1), Rand: rng.Derive(seed, "e")}
		}},
		{"outlier", []string{"v", "n"}, func(seed int64) ErrorFunc {
			return &Outlier{Magnitude: Const(4), Rand: rng.Derive(seed, "e")}
		}},
		{"scale", []string{"v", "n", "nul"}, func(int64) ErrorFunc { return &ScaleByFactor{Factor: Const(-2.5)} }},
		{"offset", []string{"n"}, func(int64) ErrorFunc { return Offset{Delta: Const(0.4)} }},
		{"round", []string{"v"}, func(int64) ErrorFunc { return RoundPrecision{Digits: 2} }},
		{"round-neg", []string{"v"}, func(int64) ErrorFunc { return RoundPrecision{Digits: -1} }},
		{"clamp", []string{"v", "n"}, func(int64) ErrorFunc { return Clamp{Lo: -1, Hi: 1} }},
		{"missing", []string{"cat", "v"}, func(int64) ErrorFunc { return MissingValue{} }},
		{"const", []string{"n", "ghost"}, func(int64) ErrorFunc { return SetConstant{Value: stream.Str("k")} }},
		{"category", []string{"cat"}, func(seed int64) ErrorFunc {
			return &IncorrectCategory{Categories: []string{"abc", "a", "zz"}, Rand: rng.Derive(seed, "e")}
		}},
		{"category-one", []string{"cat"}, func(seed int64) ErrorFunc {
			return &IncorrectCategory{Categories: []string{"abc"}, Rand: rng.Derive(seed, "e")}
		}},
		{"typo", []string{"cat"}, func(seed int64) ErrorFunc {
			return &StringTypo{Rand: rng.Derive(seed, "e")}
		}},
		{"swap", []string{"v", "n"}, func(int64) ErrorFunc { return SwapAttributes{} }},
		{"swap-self", []string{"cat"}, func(int64) ErrorFunc { return SwapAttributes{} }},
		{"delay", nil, func(int64) ErrorFunc { return DelayTuple{Delay: 7 * time.Minute} }},
		{"drop", nil, func(int64) ErrorFunc { return DropTuple{} }},
		{"ts-shift", []string{"ts"}, func(int64) ErrorFunc { return TimestampShift{Offset: -90 * time.Minute} }},
		{"hold", []string{"v"}, func(int64) ErrorFunc {
			return HoldAndRelease{ReleaseAt: time.Date(2022, 3, 2, 0, 0, 0, 0, time.UTC)}
		}},
		{"chain", []string{"v"}, func(seed int64) ErrorFunc {
			return Chain{Offset{Delta: Const(1)}, &GaussianNoise{Stddev: Const(1), Rand: rng.Derive(seed, "e")}, RoundPrecision{Digits: 3}}
		}},
	}
	sels := map[string][]int32{
		"all":    {0, 1, 2, 3, 4, 5, 6, 7},
		"sparse": {1, 4, 6},
		"none":   {},
	}
	for _, tc := range cases {
		tc := tc
		for selName, sel := range sels {
			sel := sel
			t.Run(tc.name+"/"+selName, func(t *testing.T) {
				kb := adversarialBatch(s)
				kern, ok := compileErr(tc.mk(11), tc.attrs, s)
				if !ok {
					t.Fatalf("error function %s did not compile to a kernel", tc.name)
				}
				kern(kb, stream.Selection(sel))

				sb := adversarialBatch(s)
				scalar := tc.mk(11)
				taus := sb.EventTimes()
				var buf []stream.Value
				for _, r := range sel {
					tp := sb.RowInto(buf, int(r))
					scalar.Apply(&tp, tc.attrs, taus[r])
					sb.SetRow(int(r), tp)
					buf = tp.Values()
				}

				got, want := renderBatch(kb), renderBatch(sb)
				for r := range want {
					if got[r] != want[r] {
						t.Fatalf("row %d diverged\nkernel: %s\nscalar: %s", r, got[r], want[r])
					}
				}
			})
		}
	}
}

// TestErrKernelRNGParity pins that draw-ahead consumes exactly the
// same number of RNG words as the scalar path: after a kernel run and
// a scalar run from the same seed, the streams must be in lockstep.
func TestErrKernelRNGParity(t *testing.T) {
	s := kernelSchema()
	mk := func(seed int64) (ErrorFunc, *rng.Stream) {
		r := rng.Derive(seed, "parity")
		return &UniformMultNoise{Lo: Const(0.1), Hi: Const(0.9), Rand: r}, r
	}
	kfn, kr := mk(99)
	kern, ok := compileErr(kfn, []string{"v"}, s)
	if !ok {
		t.Fatal("no kernel")
	}
	kb := adversarialBatch(s)
	kern(kb, stream.Selection(nil).FillAll(kb.Len()))

	sfn, sr := mk(99)
	sb := adversarialBatch(s)
	taus := sb.EventTimes()
	var buf []stream.Value
	for r := 0; r < sb.Len(); r++ {
		tp := sb.RowInto(buf, r)
		sfn.Apply(&tp, []string{"v"}, taus[r])
		sb.SetRow(r, tp)
		buf = tp.Values()
	}
	if kr.Uint64() != sr.Uint64() {
		t.Fatal("kernel and scalar paths consumed different draw counts")
	}
}
