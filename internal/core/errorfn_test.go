package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

var errSchema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "x", Kind: stream.KindFloat},
	stream.Field{Name: "y", Kind: stream.KindFloat},
	stream.Field{Name: "n", Kind: stream.KindInt},
	stream.Field{Name: "cat", Kind: stream.KindString},
)

func errTuple(x, y float64, n int64, cat string) stream.Tuple {
	ts := time.Date(2020, 3, 1, 10, 0, 0, 0, time.UTC)
	t := stream.NewTuple(errSchema, []stream.Value{
		stream.Time(ts), stream.Float(x), stream.Float(y), stream.Int(n), stream.Str(cat),
	})
	t.EventTime = ts
	t.Arrival = ts
	return t
}

func TestGaussianNoiseChangesOnlyTargets(t *testing.T) {
	e := &GaussianNoise{Stddev: Const(1), Rand: rng.New(1)}
	tp := errTuple(10, 20, 5, "a")
	e.Apply(&tp, []string{"x"}, tp.EventTime)
	if tp.MustGet("x").Equal(stream.Float(10)) {
		t.Error("x unchanged (vanishingly unlikely)")
	}
	if !tp.MustGet("y").Equal(stream.Float(20)) || !tp.MustGet("n").Equal(stream.Int(5)) {
		t.Error("non-target attributes changed")
	}
}

func TestGaussianNoiseStatistics(t *testing.T) {
	e := &GaussianNoise{Stddev: Const(2), Rand: rng.New(2)}
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		tp := errTuple(100, 0, 0, "")
		e.Apply(&tp, []string{"x"}, tp.EventTime)
		d := tp.MustGet("x").MustFloat() - 100
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.05 || math.Abs(sd-2) > 0.05 {
		t.Fatalf("noise stats mean=%g sd=%g", mean, sd)
	}
}

func TestGaussianNoiseSkipsNullAndString(t *testing.T) {
	e := &GaussianNoise{Stddev: Const(1), Rand: rng.New(3)}
	tp := errTuple(1, 2, 3, "a")
	tp.Set("x", stream.Null())
	e.Apply(&tp, []string{"x", "cat", "missing"}, tp.EventTime)
	if !tp.MustGet("x").IsNull() {
		t.Error("null overwritten")
	}
	if !tp.MustGet("cat").Equal(stream.Str("a")) {
		t.Error("string attr corrupted by numeric error")
	}
}

func TestGaussianNoiseIntStaysInt(t *testing.T) {
	e := &GaussianNoise{Stddev: Const(5), Rand: rng.New(4)}
	tp := errTuple(0, 0, 100, "")
	e.Apply(&tp, []string{"n"}, tp.EventTime)
	if tp.MustGet("n").Kind() != stream.KindInt {
		t.Fatalf("int attribute became %v", tp.MustGet("n").Kind())
	}
}

func TestUniformMultNoiseBounds(t *testing.T) {
	e := &UniformMultNoise{Lo: Const(0.1), Hi: Const(0.2), Rand: rng.New(5)}
	for i := 0; i < 1000; i++ {
		tp := errTuple(100, 0, 0, "")
		e.Apply(&tp, []string{"x"}, tp.EventTime)
		v := tp.MustGet("x").MustFloat()
		rel := math.Abs(v-100) / 100
		if rel < 0.1-1e-9 || rel > 0.2+1e-9 {
			t.Fatalf("relative change %g outside [0.1,0.2]", rel)
		}
	}
}

func TestUniformMultNoiseBothDirections(t *testing.T) {
	e := &UniformMultNoise{Lo: Const(0.5), Hi: Const(0.5), Rand: rng.New(6)}
	up, down := 0, 0
	for i := 0; i < 1000; i++ {
		tp := errTuple(100, 0, 0, "")
		e.Apply(&tp, []string{"x"}, tp.EventTime)
		if tp.MustGet("x").MustFloat() > 100 {
			up++
		} else {
			down++
		}
	}
	if up < 400 || down < 400 {
		t.Fatalf("coin toss skewed: up=%d down=%d", up, down)
	}
}

func TestUniformMultNoiseGrowsOverTime(t *testing.T) {
	// Eq. 3: bounds ramp from 0 to max over the stream horizon.
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	tn := t0.Add(100 * time.Hour)
	e := &UniformMultNoise{Lo: Linear(t0, tn, 0, 0.5), Hi: Linear(t0, tn, 0, 0.5), Rand: rng.New(7)}
	early := errTuple(100, 0, 0, "")
	e.Apply(&early, []string{"x"}, t0)
	if math.Abs(early.MustGet("x").MustFloat()-100) > 1e-9 {
		t.Error("noise at τ0 should be zero")
	}
	late := errTuple(100, 0, 0, "")
	e.Apply(&late, []string{"x"}, tn)
	if math.Abs(late.MustGet("x").MustFloat()-100)/100 < 0.5-1e-9 {
		t.Error("noise at τn should be at max magnitude")
	}
}

func TestScaleByFactor(t *testing.T) {
	e := &ScaleByFactor{Factor: Const(0.125)}
	tp := errTuple(80, 16, 8, "")
	e.Apply(&tp, []string{"x", "y", "n"}, tp.EventTime)
	if !tp.MustGet("x").Equal(stream.Float(10)) || !tp.MustGet("y").Equal(stream.Float(2)) {
		t.Errorf("scale floats: %v", tp)
	}
	if !tp.MustGet("n").Equal(stream.Int(1)) {
		t.Errorf("scale int: %v", tp.MustGet("n"))
	}
}

func TestMissingValue(t *testing.T) {
	tp := errTuple(1, 2, 3, "a")
	MissingValue{}.Apply(&tp, []string{"x", "cat"}, tp.EventTime)
	if !tp.MustGet("x").IsNull() || !tp.MustGet("cat").IsNull() {
		t.Error("values not nulled")
	}
	if !tp.MustGet("y").Equal(stream.Float(2)) {
		t.Error("non-target nulled")
	}
}

func TestSetConstant(t *testing.T) {
	tp := errTuple(120, 2, 3, "a")
	SetConstant{Value: stream.Float(0)}.Apply(&tp, []string{"x"}, tp.EventTime)
	if !tp.MustGet("x").Equal(stream.Float(0)) {
		t.Error("constant not set")
	}
}

func TestIncorrectCategory(t *testing.T) {
	e := &IncorrectCategory{Categories: []string{"a", "b", "c"}, Rand: rng.New(8)}
	for i := 0; i < 100; i++ {
		tp := errTuple(0, 0, 0, "a")
		e.Apply(&tp, []string{"cat"}, tp.EventTime)
		got, _ := tp.MustGet("cat").AsString()
		if got == "a" {
			t.Fatal("category unchanged")
		}
		if got != "b" && got != "c" {
			t.Fatalf("unknown category %q", got)
		}
	}
	// Single category: no change possible.
	single := &IncorrectCategory{Categories: []string{"a"}, Rand: rng.New(9)}
	tp := errTuple(0, 0, 0, "a")
	single.Apply(&tp, []string{"cat"}, tp.EventTime)
	if got, _ := tp.MustGet("cat").AsString(); got != "a" {
		t.Fatal("single category changed")
	}
}

func TestRoundPrecision(t *testing.T) {
	tp := errTuple(3.14159, 2.71828, 0, "")
	RoundPrecision{Digits: 2}.Apply(&tp, []string{"x", "y"}, tp.EventTime)
	if !tp.MustGet("x").Equal(stream.Float(3.14)) || !tp.MustGet("y").Equal(stream.Float(2.72)) {
		t.Errorf("rounding: %v", tp)
	}
	tp2 := errTuple(1234.5, 0, 0, "")
	RoundPrecision{Digits: -2}.Apply(&tp2, []string{"x"}, tp2.EventTime)
	if !tp2.MustGet("x").Equal(stream.Float(1200)) {
		t.Errorf("negative digits: %v", tp2.MustGet("x"))
	}
}

func TestOutlier(t *testing.T) {
	e := &Outlier{Magnitude: Const(10), Rand: rng.New(10)}
	tp := errTuple(5, 0, 0, "")
	e.Apply(&tp, []string{"x"}, tp.EventTime)
	v := tp.MustGet("x").MustFloat()
	if math.Abs(v-5) < 49 { // |spike| = 10·max(|5|,1) = 50
		t.Fatalf("outlier too small: %g", v)
	}
}

func TestStringTypoAlwaysEdits(t *testing.T) {
	e := &StringTypo{Rand: rng.New(11)}
	changedOrResized := 0
	for i := 0; i < 200; i++ {
		tp := errTuple(0, 0, 0, "hello world")
		e.Apply(&tp, []string{"cat"}, tp.EventTime)
		got, _ := tp.MustGet("cat").AsString()
		if got != "hello world" || len(got) != len("hello world") {
			changedOrResized++
		}
	}
	// Transposition of identical neighbours ("ll") can be a no-op, so we
	// only require edits to happen most of the time.
	if changedOrResized < 150 {
		t.Fatalf("typos applied in only %d/200 runs", changedOrResized)
	}
	// Empty strings and non-strings survive unchanged.
	tp := errTuple(0, 0, 0, "")
	e.Apply(&tp, []string{"cat", "x"}, tp.EventTime)
	if got, _ := tp.MustGet("cat").AsString(); got != "" {
		t.Error("empty string corrupted")
	}
	if !tp.MustGet("x").Equal(stream.Float(0)) {
		t.Error("float attr corrupted by typo error")
	}
}

func TestSwapAttributes(t *testing.T) {
	tp := errTuple(1, 2, 0, "")
	SwapAttributes{}.Apply(&tp, []string{"x", "y"}, tp.EventTime)
	if !tp.MustGet("x").Equal(stream.Float(2)) || !tp.MustGet("y").Equal(stream.Float(1)) {
		t.Error("swap failed")
	}
	// Single attr or missing attrs: no-op.
	tp2 := errTuple(1, 2, 0, "")
	SwapAttributes{}.Apply(&tp2, []string{"x"}, tp2.EventTime)
	SwapAttributes{}.Apply(&tp2, []string{"x", "zzz"}, tp2.EventTime)
	if !tp2.MustGet("x").Equal(stream.Float(1)) {
		t.Error("no-op swap changed value")
	}
}

func TestOffsetAndClamp(t *testing.T) {
	tp := errTuple(10, 0, 0, "")
	Offset{Delta: Const(-3)}.Apply(&tp, []string{"x"}, tp.EventTime)
	if !tp.MustGet("x").Equal(stream.Float(7)) {
		t.Error("offset failed")
	}
	Clamp{Lo: 0, Hi: 5}.Apply(&tp, []string{"x"}, tp.EventTime)
	if !tp.MustGet("x").Equal(stream.Float(5)) {
		t.Error("clamp failed")
	}
}

func TestChain(t *testing.T) {
	c := Chain{&ScaleByFactor{Factor: Const(2)}, Offset{Delta: Const(1)}}
	tp := errTuple(10, 0, 0, "")
	c.Apply(&tp, []string{"x"}, tp.EventTime)
	if !tp.MustGet("x").Equal(stream.Float(21)) {
		t.Errorf("chain order wrong: %v", tp.MustGet("x"))
	}
	if c.Kind() != "chain(scale_by_factor,offset)" {
		t.Errorf("chain kind %q", c.Kind())
	}
}

func TestDelayTuple(t *testing.T) {
	tp := errTuple(1, 2, 3, "a")
	origTS, _ := tp.Timestamp()
	DelayTuple{Delay: time.Hour}.Apply(&tp, nil, tp.EventTime)
	if !tp.Arrival.Equal(tp.EventTime.Add(time.Hour)) {
		t.Error("arrival not delayed")
	}
	nowTS, _ := tp.Timestamp()
	if !nowTS.Equal(origTS) {
		t.Error("delay must not alter the timestamp attribute")
	}
	if !tp.EventTime.Equal(origTS) {
		t.Error("delay must not alter τ")
	}
}

func TestFrozenValue(t *testing.T) {
	e := NewFrozenValue()
	// First triggered tuple establishes the frozen value.
	t1 := errTuple(10, 0, 0, "")
	e.Apply(&t1, []string{"x"}, t1.EventTime)
	if !t1.MustGet("x").Equal(stream.Float(10)) {
		t.Error("first freeze should keep own value")
	}
	t2 := errTuple(20, 0, 0, "")
	e.Apply(&t2, []string{"x"}, t2.EventTime)
	if !t2.MustGet("x").Equal(stream.Float(10)) {
		t.Error("frozen value not replayed")
	}
	e.Thaw()
	t3 := errTuple(30, 0, 0, "")
	e.Apply(&t3, []string{"x"}, t3.EventTime)
	if !t3.MustGet("x").Equal(stream.Float(30)) {
		t.Error("thaw did not clear state")
	}
}

func TestTimestampShift(t *testing.T) {
	tp := errTuple(1, 2, 3, "a")
	orig := tp.EventTime
	TimestampShift{Offset: -30 * time.Minute}.Apply(&tp, nil, tp.EventTime)
	ts, _ := tp.Timestamp()
	if !ts.Equal(orig.Add(-30 * time.Minute)) {
		t.Error("timestamp attribute not shifted")
	}
	if !tp.EventTime.Equal(orig) {
		t.Error("τ must stay immune")
	}
}

func TestDropTuple(t *testing.T) {
	tp := errTuple(1, 2, 3, "a")
	DropTuple{}.Apply(&tp, nil, tp.EventTime)
	if !tp.Dropped {
		t.Error("tuple not marked dropped")
	}
}

func TestHoldAndRelease(t *testing.T) {
	release := time.Date(2020, 3, 1, 15, 0, 0, 0, time.UTC)
	e := HoldAndRelease{ReleaseAt: release}
	tp := errTuple(1, 0, 0, "") // arrival 10:00
	e.Apply(&tp, nil, tp.EventTime)
	if !tp.Arrival.Equal(release) {
		t.Error("early tuple not held")
	}
	late := errTuple(1, 0, 0, "")
	late.Arrival = release.Add(time.Hour)
	e.Apply(&late, nil, late.EventTime)
	if !late.Arrival.Equal(release.Add(time.Hour)) {
		t.Error("late tuple moved")
	}
}

// Property: for every numeric error function, non-target attributes and
// NULL values are never modified, and τ / ID are never touched.
func TestErrorFunctionsPreserveInvariants(t *testing.T) {
	r := rng.New(99)
	errs := []ErrorFunc{
		&GaussianNoise{Stddev: Const(3), Rand: r},
		&UniformMultNoise{Lo: Const(0.1), Hi: Const(0.3), Rand: r},
		&ScaleByFactor{Factor: Const(7)},
		MissingValue{},
		SetConstant{Value: stream.Float(-1)},
		RoundPrecision{Digits: 1},
		&Outlier{Magnitude: Const(2), Rand: r},
		Offset{Delta: Const(5)},
		Clamp{Lo: -1, Hi: 1},
	}
	prop := func(x float64, n int64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		for _, e := range errs {
			tp := errTuple(x, 42, n, "keep")
			id := tp.ID
			tau := tp.EventTime
			e.Apply(&tp, []string{"x"}, tau)
			if !tp.MustGet("y").Equal(stream.Float(42)) {
				return false
			}
			if got, _ := tp.MustGet("cat").AsString(); got != "keep" {
				return false
			}
			if tp.ID != id || !tp.EventTime.Equal(tau) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorKindsAreStable(t *testing.T) {
	kinds := map[string]ErrorFunc{
		"gaussian_noise":     &GaussianNoise{},
		"uniform_mult_noise": &UniformMultNoise{},
		"scale_by_factor":    &ScaleByFactor{},
		"missing_value":      MissingValue{},
		"set_constant":       SetConstant{},
		"incorrect_category": &IncorrectCategory{},
		"round_precision":    RoundPrecision{},
		"outlier":            &Outlier{},
		"string_typo":        &StringTypo{},
		"swap_attributes":    SwapAttributes{},
		"offset":             Offset{},
		"clamp":              Clamp{},
		"delayed_tuple":      DelayTuple{},
		"frozen_value":       NewFrozenValue(),
		"timestamp_shift":    TimestampShift{},
		"dropped_tuple":      DropTuple{},
		"hold_and_release":   HoldAndRelease{},
	}
	for want, e := range kinds {
		if e.Kind() != want {
			t.Errorf("kind %q != %q", e.Kind(), want)
		}
	}
}
