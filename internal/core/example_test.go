package core_test

import (
	"fmt"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// ExampleProcess_Run pollutes a small stream with a value-dependent
// condition and inspects the result and the pollution log.
func ExampleProcess_Run() {
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "temp", Kind: stream.KindFloat},
	)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	src := stream.NewGeneratorSource(schema, 5, func(i int) stream.Tuple {
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(start.Add(time.Duration(i) * time.Hour)),
			stream.Float(float64(18 + i)),
		})
	})

	// Null out every temperature above 20 degrees.
	polluter := core.NewStandard("null-hot", core.MissingValue{},
		core.Compare{Attr: "temp", Op: core.OpGt, Value: stream.Float(20)}, "temp")
	result, err := core.NewProcess(core.NewPipeline(polluter)).Run(src)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("errors:", result.Log.Len())
	for _, t := range result.Polluted {
		fmt.Printf("%s temp=%s\n", t.EventTime.Format("15:04"), t.MustGet("temp"))
	}
	// Output:
	// errors: 2
	// 00:00 temp=18
	// 01:00 temp=19
	// 02:00 temp=20
	// 03:00 temp=
	// 04:00 temp=
}

// ExampleComposite shows the Figure 5 pattern: a composite polluter with
// a shared gate delegating to children that always occur together.
func ExampleComposite() {
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "km", Kind: stream.KindFloat},
		stream.Field{Name: "cal", Kind: stream.KindFloat},
	)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	src := stream.NewGeneratorSource(schema, 2, func(i int) stream.Tuple {
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(start.AddDate(0, 0, i)),
			stream.Float(1.5),
			stream.Float(3.14159),
		})
	})

	update := core.NewComposite("software update",
		core.TimeInterval{From: start.AddDate(0, 0, 1)}, // gate: day two on
		core.NewStandard("km to cm", &core.ScaleByFactor{Factor: core.Const(100000)}, nil, "km"),
		core.NewStandard("round", core.RoundPrecision{Digits: 2}, nil, "cal"),
	)
	result, _ := core.NewProcess(core.NewPipeline(update)).Run(src)
	for _, t := range result.Polluted {
		fmt.Printf("km=%s cal=%s\n", t.MustGet("km"), t.MustGet("cal"))
	}
	// Output:
	// km=1.5 cal=3.14159
	// km=150000 cal=3.14
}

// ExampleNewMarkovCondition models bursty errors whose tuple-level
// indicators are dependent random variables.
func ExampleNewMarkovCondition() {
	chain := core.NewMarkovCondition(0.5, 0.5, rng.New(1))
	tuple := stream.Tuple{}
	burst := 0
	for i := 0; i < 10; i++ {
		if chain.Eval(tuple, time.Time{}) {
			burst++
		}
	}
	fmt.Printf("%d of 10 tuples inside error bursts\n", burst)
	// Output:
	// 3 of 10 tuples inside error bursts
}
