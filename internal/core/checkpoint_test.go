package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"icewafl/internal/csvio"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// ckptSchema has a string key attribute so keyed polluters can be part of
// the checkpointed pipeline.
func ckptSchema() *stream.Schema {
	return stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
		stream.Field{Name: "sensor", Kind: stream.KindString},
	)
}

func ckptSource(s *stream.Schema, n int) stream.Source {
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	return stream.NewGeneratorSource(s, n, func(i int) stream.Tuple {
		return stream.NewTuple(s, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			stream.Float(float64(i)),
			stream.Str(fmt.Sprintf("s%d", i%3)),
		})
	})
}

// ckptProcess builds a deliberately state-heavy pipeline: RNG-driven
// noise, a sticky frozen-value polluter, a Markov burst, and a keyed
// per-sensor polluter. Every run must construct it fresh from the same
// "configuration" (this function), mirroring how config.Build works.
func ckptProcess(seed int64) *Process {
	noise := NewStandard("noise",
		&GaussianNoise{Stddev: Const(3), Rand: rng.Derive(seed, "noise")},
		NewRandomConst(0.4, rng.Derive(seed, "noise-cond")), "v")
	freeze := NewStandard("freeze",
		NewFrozenValue(),
		NewSticky(NewRandomConst(0.05, rng.Derive(seed, "freeze-cond")), 30*time.Minute), "v")
	burst := NewStandard("burst", MissingValue{},
		NewMarkovCondition(0.08, 0.4, rng.Derive(seed, "markov")), "v")
	keyed := NewKeyedPolluter("per-sensor", "sensor", func(key string) Polluter {
		return NewStandard("key-noise",
			&UniformMultNoise{Lo: Const(0.9), Hi: Const(1.1), Rand: rng.Derive(seed, "key/"+key)},
			NewRandomConst(0.3, rng.Derive(seed, "key-cond/"+key)), "v")
	})
	return &Process{
		Pipelines: []*Pipeline{NewPipeline(noise, freeze, burst, keyed)},
		FirstID:   1,
	}
}

// renderRun serialises tuples as CSV and the log as JSON lines, the
// byte-exact artefacts the CLI would produce.
func renderRun(t *testing.T, schema *stream.Schema, tuples []stream.Tuple, entries []Entry) ([]byte, []byte) {
	t.Helper()
	var csvBuf bytes.Buffer
	if err := csvio.WriteAll(&csvBuf, schema, tuples); err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	l := &Log{Entries: entries}
	if err := l.WriteJSON(&logBuf); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), logBuf.Bytes()
}

func drainN(t *testing.T, src stream.Source, n int) []stream.Tuple {
	t.Helper()
	out := make([]stream.Tuple, 0, n)
	for len(out) < n {
		tp, err := src.Next()
		if err != nil {
			t.Fatalf("drainN: %v", err)
		}
		out = append(out, tp)
	}
	return out
}

// TestCheckpointResumeDeterminism is the acceptance test of the
// checkpoint subsystem: a run killed mid-stream and resumed from its
// checkpoint must produce, concatenated, the byte-identical polluted
// stream and pollution log of an uninterrupted run.
func TestCheckpointResumeDeterminism(t *testing.T) {
	schema := ckptSchema()
	const n = 400
	const seed = 1234

	// Reference: uninterrupted run.
	refProc := ckptProcess(seed)
	refSrc, refLog, _, err := refProc.RunStreamCheckpointed(ckptSource(schema, n), nil)
	if err != nil {
		t.Fatal(err)
	}
	refTuples, err := stream.Drain(refSrc)
	if err != nil {
		t.Fatal(err)
	}
	refCSV, refLogJSON := renderRun(t, schema, refTuples, refLog.Entries)

	for _, kill := range []int{1, 37, 200, 399} {
		t.Run(fmt.Sprintf("kill-at-%d", kill), func(t *testing.T) {
			// Phase 1: run until "killed" after `kill` emitted tuples.
			proc1 := ckptProcess(seed)
			src1, log1, ck1, err := proc1.RunStreamCheckpointed(ckptSource(schema, n), nil)
			if err != nil {
				t.Fatal(err)
			}
			head := drainN(t, src1, kill)
			ckpt, err := ck1.Capture()
			if err != nil {
				t.Fatal(err)
			}
			headLogLen := len(log1.Entries)
			if ckpt.LogLen != headLogLen {
				t.Errorf("checkpoint LogLen = %d, log has %d", ckpt.LogLen, headLogLen)
			}
			if ckpt.TuplesOut != uint64(kill) {
				t.Errorf("checkpoint TuplesOut = %d, want %d", ckpt.TuplesOut, kill)
			}

			// Persist + reload the checkpoint (exercises the JSON codec).
			path := filepath.Join(t.TempDir(), "ck.json")
			if err := WriteCheckpoint(path, ckpt); err != nil {
				t.Fatal(err)
			}
			loaded, err := ReadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}

			// Phase 2: a NEW process (no shared memory) resumes.
			proc2 := ckptProcess(seed)
			src2, log2, ck2, err := proc2.RunStreamCheckpointed(ckptSource(schema, n), loaded)
			if err != nil {
				t.Fatal(err)
			}
			tail, err := stream.Drain(src2)
			if err != nil {
				t.Fatal(err)
			}

			combined := append(append([]stream.Tuple{}, head...), tail...)
			entries := append(append([]Entry{}, log1.Entries[:headLogLen]...), log2.Entries...)
			gotCSV, gotLogJSON := renderRun(t, schema, combined, entries)

			if !bytes.Equal(gotCSV, refCSV) {
				t.Errorf("resumed polluted stream differs from uninterrupted run (kill=%d): %d vs %d bytes",
					kill, len(gotCSV), len(refCSV))
			}
			if !bytes.Equal(gotLogJSON, refLogJSON) {
				t.Errorf("resumed pollution log differs from uninterrupted run (kill=%d)", kill)
			}

			// Final checkpoint totals must be cumulative across sessions.
			final, err := ck2.Capture()
			if err != nil {
				t.Fatal(err)
			}
			if final.TuplesOut != uint64(n) {
				t.Errorf("final TuplesOut = %d, want %d", final.TuplesOut, n)
			}
			if final.LogLen != len(refLog.Entries) {
				t.Errorf("final LogLen = %d, want %d", final.LogLen, len(refLog.Entries))
			}
		})
	}
}

// TestCheckpointRestoreRejectsMissingState guards the strictness of the
// restore path: a snapshot from a different configuration must fail, not
// silently half-restore.
func TestCheckpointRestoreRejectsMissingState(t *testing.T) {
	proc := ckptProcess(1)
	st, err := SnapshotPipeline(proc.Pipelines[0])
	if err != nil {
		t.Fatal(err)
	}
	other := &Process{Pipelines: []*Pipeline{NewPipeline(
		NewStandard("different", MissingValue{}, NewRandomConst(0.5, rng.Derive(1, "x")), "v"),
	)}}
	if err := RestorePipeline(other.Pipelines[0], st); err == nil {
		t.Error("restore into a different pipeline succeeded")
	}
	if err := RestorePipeline(proc.Pipelines[0], PipelineState{}); err == nil {
		t.Error("restore from an empty snapshot succeeded")
	}
}

func TestCheckpointVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	c := &Checkpoint{Version: CheckpointVersion + 1, Pipeline: PipelineState{}}
	// Write raw to bypass version stamping.
	cGood := &Checkpoint{Version: CheckpointVersion, Pipeline: PipelineState{}}
	if err := WriteCheckpoint(path, cGood); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if err := WriteCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err == nil {
		t.Error("version mismatch accepted")
	}
	proc := ckptProcess(1)
	if _, _, _, err := proc.RunStreamCheckpointed(ckptSource(ckptSchema(), 1), c); err == nil {
		t.Error("resume with wrong version accepted")
	}
}

// panicPolluter panics on selected tuple IDs — the poisoned-tuple half of
// the chaos test.
type panicPolluter struct {
	every uint64
}

func (p *panicPolluter) Name() string { return "panicky" }

func (p *panicPolluter) Pollute(t *stream.Tuple, tau time.Time, log *Log) {
	if log != nil {
		log.Record(Entry{TupleID: t.ID, Polluter: p.Name(), Error: "pre-panic", Attrs: []string{"v"}})
	}
	if p.every > 0 && t.ID%p.every == 0 {
		panic(fmt.Sprintf("poisoned tuple %d", t.ID))
	}
}

// TestChaosPipelineQuarantinesPoisonedTuples is the chaos acceptance
// test: a flaky source plus a panicking operator, run under retry +
// quarantine, completes and quarantines exactly the poisoned tuples.
func TestChaosPipelineQuarantinesPoisonedTuples(t *testing.T) {
	schema := ckptSchema()
	const n = 300
	transient := errors.New("transient network blip")
	flaky := stream.NewFlakySource(ckptSource(schema, n), stream.FailEveryN(17, transient))
	retried := stream.NewRetrySource(flaky, stream.RetryPolicy{
		MaxRetries: 5,
		Sleep:      func(time.Duration) {},
	})

	proc := ckptProcess(42)
	proc.Fault = FaultPolicy{Quarantine: true}
	proc.Pipelines[0].Polluters = append(proc.Pipelines[0].Polluters, &panicPolluter{every: 50})

	res, err := proc.RunContext(context.Background(), retried)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	// IDs 50, 100, ..., 300 are poisoned: 6 tuples.
	wantPoisoned := 6
	if len(res.Quarantined) != wantPoisoned {
		t.Fatalf("quarantined %d tuples, want %d", len(res.Quarantined), wantPoisoned)
	}
	for _, d := range res.Quarantined {
		if d.TupleID%50 != 0 {
			t.Errorf("non-poisoned tuple %d quarantined", d.TupleID)
		}
		if !strings.Contains(d.Cause, "poisoned tuple") {
			t.Errorf("cause %q does not name the panic", d.Cause)
		}
		if d.Stage != "pollute" {
			t.Errorf("stage = %q", d.Stage)
		}
	}
	if len(res.Polluted)+len(res.Quarantined) != n {
		t.Errorf("polluted %d + quarantined %d != %d", len(res.Polluted), len(res.Quarantined), n)
	}
	// The quarantined tuples' partial log entries must have been rolled
	// back: no "pre-panic" entry for a poisoned ID survives.
	for _, e := range res.Log.Entries {
		if e.Error == "pre-panic" && e.TupleID%50 == 0 {
			t.Errorf("log kept entry for quarantined tuple %d", e.TupleID)
		}
	}
}

// TestQuarantineCapAborts: MaxQuarantined bounds silent data loss.
func TestQuarantineCapAborts(t *testing.T) {
	schema := ckptSchema()
	proc := &Process{
		Pipelines: []*Pipeline{NewPipeline(&panicPolluter{every: 2})},
		FirstID:   1,
		Fault:     FaultPolicy{Quarantine: true, MaxQuarantined: 3},
	}
	_, err := proc.Run(ckptSource(schema, 100))
	if err == nil {
		t.Fatal("run with 50 poisoned tuples succeeded despite cap of 3")
	}
}

// TestStreamingQuarantine: the streaming runner path also diverts
// poisoned tuples instead of failing.
func TestStreamingQuarantine(t *testing.T) {
	schema := ckptSchema()
	proc := &Process{
		Pipelines: []*Pipeline{NewPipeline(&panicPolluter{every: 10})},
		FirstID:   1,
		Fault:     FaultPolicy{Quarantine: true},
	}
	src, _, ck, err := proc.RunStreamCheckpointed(ckptSource(schema, 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := stream.Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 90 || ck.DeadLetters().Len() != 10 {
		t.Errorf("delivered %d, quarantined %d; want 90/10", len(tuples), ck.DeadLetters().Len())
	}
}

// TestCheckpointedQuarantineCountsInput: quarantined malformed input rows
// advance the input position so resume skips them correctly.
func TestCheckpointedQuarantineCountsInput(t *testing.T) {
	schema := ckptSchema()
	// CSV with two malformed rows among ten good ones.
	var b strings.Builder
	b.WriteString("ts,v,sensor\n")
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ {
		if i == 3 || i == 7 {
			b.WriteString("not-a-time,oops,s0\n")
			continue
		}
		fmt.Fprintf(&b, "%s,%d,s%d\n", base.Add(time.Duration(i)*time.Minute).Format(time.RFC3339), i, i%3)
	}
	mkReader := func() stream.Source {
		r, err := csvio.NewReader(strings.NewReader(b.String()), schema)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	proc1 := ckptProcess(7)
	proc1.Fault = FaultPolicy{Quarantine: true}
	src1, _, ck1, err := proc1.RunStreamCheckpointed(mkReader(), nil)
	if err != nil {
		t.Fatal(err)
	}
	head := drainN(t, src1, 5) // past the first malformed row
	ckpt, err := ck1.Capture()
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.TuplesIn != 6 { // 5 good + 1 malformed
		t.Errorf("TuplesIn = %d, want 6", ckpt.TuplesIn)
	}
	if ckpt.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", ckpt.Quarantined)
	}

	proc2 := ckptProcess(7)
	proc2.Fault = FaultPolicy{Quarantine: true}
	src2, _, ck2, err := proc2.RunStreamCheckpointed(mkReader(), ckpt)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := stream.Drain(src2)
	if err != nil {
		t.Fatal(err)
	}
	if len(head)+len(tail) != 10 {
		t.Errorf("delivered %d tuples total, want 10", len(head)+len(tail))
	}
	final, err := ck2.Capture()
	if err != nil {
		t.Fatal(err)
	}
	if final.TuplesIn != 12 || final.Quarantined != 2 {
		t.Errorf("final TuplesIn=%d Quarantined=%d, want 12/2", final.TuplesIn, final.Quarantined)
	}
	// IDs must be contiguous across the resume boundary.
	var last uint64
	for i, tp := range append(head, tail...) {
		if tp.ID != uint64(i)+1 {
			t.Fatalf("tuple %d has ID %d (last %d): numbering broke at resume", i, tp.ID, last)
		}
		last = tp.ID
	}
}

// TestKeyedPolluterCheckpointRebuildsInstances: per-key state survives a
// checkpoint even for keys the resumed process has not seen yet.
func TestKeyedPolluterCheckpointRebuildsInstances(t *testing.T) {
	mk := func() *KeyedPolluter {
		return NewKeyedPolluter("keyed", "sensor", func(key string) Polluter {
			return NewStandard("freeze", NewFrozenValue(),
				NewSticky(NewRandomConst(0.5, rng.Derive(5, "k/"+key)), time.Hour), "v")
		})
	}
	schema := ckptSchema()
	src := ckptSource(schema, 50)
	orig := mk()
	pipe := NewPipeline(orig)
	tau := time.Now()
	for i := 0; i < 50; i++ {
		tp, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		pipe.Apply(&tp, tau, nil)
	}
	if len(orig.Keys()) != 3 {
		t.Fatalf("keys = %v", orig.Keys())
	}
	st, err := SnapshotPipeline(pipe)
	if err != nil {
		t.Fatal(err)
	}
	restored := mk()
	if err := RestorePipeline(NewPipeline(restored), st); err != nil {
		t.Fatal(err)
	}
	if len(restored.Keys()) != 3 {
		t.Errorf("restored keys = %v, want 3 keys", restored.Keys())
	}
}
