package core

import (
	"fmt"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// Condition decides whether a polluter fires for a tuple (paper Eq. 2).
// Following Schelter et al., errors may be injected (i) completely at
// random, (ii) depending on the values to be polluted, or (iii) depending
// on other values of the tuple; Icewafl adds (iv) temporal conditions on
// the event time τ and (v) composites of all of the above.
type Condition interface {
	// Eval reports whether the condition holds for tuple t at event
	// time tau.
	Eval(t stream.Tuple, tau time.Time) bool
	// Describe returns a short human-readable form for pollution logs.
	Describe() string
}

// Always fires for every tuple.
type Always struct{}

// Eval implements Condition.
func (Always) Eval(stream.Tuple, time.Time) bool { return true }

// Describe implements Condition.
func (Always) Describe() string { return "always" }

// Never fires for no tuple; useful to disable a polluter in a config.
type Never struct{}

// Eval implements Condition.
func (Never) Eval(stream.Tuple, time.Time) bool { return false }

// Describe implements Condition.
func (Never) Describe() string { return "never" }

// Random fires completely at random with a (possibly time-dependent)
// probability — MCAR when P is constant, a temporal error pattern when P
// varies with τ (e.g. the sinusoidal pattern of §3.1.1 or the linearly
// increasing activation of Eq. 4).
type Random struct {
	P    Param
	Rand *rng.Stream
	desc string
}

// NewRandom returns a Bernoulli condition with probability p drawing from
// r.
func NewRandom(p Param, r *rng.Stream) *Random {
	return &Random{P: p, Rand: r, desc: "random"}
}

// NewRandomConst returns a Bernoulli condition with fixed probability p.
func NewRandomConst(p float64, r *rng.Stream) *Random {
	return &Random{P: Const(p), Rand: r, desc: fmt.Sprintf("random(p=%g)", p)}
}

// Eval implements Condition.
func (c *Random) Eval(_ stream.Tuple, tau time.Time) bool {
	return c.Rand.Bernoulli(c.P(tau))
}

// Describe implements Condition.
func (c *Random) Describe() string { return c.desc }

// ValueOp is a comparison operator for attribute conditions.
type ValueOp string

// Comparison operators supported by Compare conditions.
const (
	OpEq ValueOp = "=="
	OpNe ValueOp = "!="
	OpLt ValueOp = "<"
	OpLe ValueOp = "<="
	OpGt ValueOp = ">"
	OpGe ValueOp = ">="
)

// Compare fires when the named attribute compares against a constant —
// the value-dependent condition classes (ii) and (iii): whether it is
// class (ii) or (iii) depends on whether Attr is among the polluter's
// target attributes A_p.
type Compare struct {
	Attr  string
	Op    ValueOp
	Value stream.Value
}

// Eval implements Condition.
func (c Compare) Eval(t stream.Tuple, _ time.Time) bool {
	v, ok := t.Get(c.Attr)
	if !ok {
		return false
	}
	return c.evalValue(v)
}

// evalValue is the comparison itself, shared by the tuple-wise Eval and
// the columnar condition kernel so the two paths cannot drift.
func (c Compare) evalValue(v stream.Value) bool {
	if c.Op == OpEq && c.Value.IsNull() {
		return v.IsNull()
	}
	if c.Op == OpNe && c.Value.IsNull() {
		return !v.IsNull()
	}
	cmp, comparable := v.Compare(c.Value)
	if !comparable {
		return false
	}
	switch c.Op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// Describe implements Condition.
func (c Compare) Describe() string {
	return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Value.String())
}

// AttrPredicate fires when fn holds on the named attribute; the fully
// general value-dependent condition.
type AttrPredicate struct {
	Attr string
	Fn   func(stream.Value) bool
	Desc string
}

// Eval implements Condition.
func (c AttrPredicate) Eval(t stream.Tuple, _ time.Time) bool {
	v, ok := t.Get(c.Attr)
	if !ok {
		return false
	}
	return c.Fn(v)
}

// Describe implements Condition.
func (c AttrPredicate) Describe() string {
	if c.Desc != "" {
		return c.Desc
	}
	return fmt.Sprintf("pred(%s)", c.Attr)
}

// TimeInterval fires while τ lies in [From, To) — the temporal condition
// used by the bad-network scenario (§3.1.3) and the software-update
// scenario's "Time ≥ 2016-02-27" gate (with an open end).
type TimeInterval struct {
	From, To time.Time // zero values mean unbounded
}

// Eval implements Condition.
func (c TimeInterval) Eval(_ stream.Tuple, tau time.Time) bool {
	if !c.From.IsZero() && tau.Before(c.From) {
		return false
	}
	if !c.To.IsZero() && !tau.Before(c.To) {
		return false
	}
	return true
}

// Describe implements Condition.
func (c TimeInterval) Describe() string {
	return fmt.Sprintf("τ in [%s, %s)", fmtTime(c.From), fmtTime(c.To))
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return "…"
	}
	return t.UTC().Format("2006-01-02T15:04:05")
}

// TimeOfDay fires while the hour of τ lies in [FromHour, ToHour); the
// interval may wrap around midnight (e.g. From 22, To 3).
type TimeOfDay struct {
	FromHour, ToHour int
}

// Eval implements Condition.
func (c TimeOfDay) Eval(_ stream.Tuple, tau time.Time) bool {
	h := tau.Hour()
	if c.FromHour <= c.ToHour {
		return h >= c.FromHour && h < c.ToHour
	}
	return h >= c.FromHour || h < c.ToHour
}

// Describe implements Condition.
func (c TimeOfDay) Describe() string {
	return fmt.Sprintf("hour in [%d, %d)", c.FromHour, c.ToHour)
}

// And fires when all children fire; evaluation short-circuits in order, so
// cheap or rarely true children should come first. Nesting a Random
// inside a TimeInterval reproduces the paper's "20%% probability within
// 01:00 pm – 02:59 pm" configuration.
type And []Condition

// Eval implements Condition.
func (c And) Eval(t stream.Tuple, tau time.Time) bool {
	for _, child := range c {
		if !child.Eval(t, tau) {
			return false
		}
	}
	return true
}

// Describe implements Condition.
func (c And) Describe() string { return joinDesc(c, " AND ") }

// Or fires when any child fires.
type Or []Condition

// Eval implements Condition.
func (c Or) Eval(t stream.Tuple, tau time.Time) bool {
	for _, child := range c {
		if child.Eval(t, tau) {
			return true
		}
	}
	return false
}

// Describe implements Condition.
func (c Or) Describe() string { return joinDesc(c, " OR ") }

// Not negates a condition.
type Not struct {
	Inner Condition
}

// Eval implements Condition.
func (c Not) Eval(t stream.Tuple, tau time.Time) bool {
	return !c.Inner.Eval(t, tau)
}

// Describe implements Condition.
func (c Not) Describe() string { return "NOT " + c.Inner.Describe() }

func joinDesc(cs []Condition, sep string) string {
	out := ""
	for i, c := range cs {
		if i > 0 {
			out += sep
		}
		out += "(" + c.Describe() + ")"
	}
	return out
}
