package core

import (
	"fmt"
	"sort"
	"time"

	"icewafl/internal/stream"
)

// This file implements the paper's second future-work item (§5):
// managing inter-tuple dependencies per key, the analogue of Flink's
// keyed process functions. A KeyedPolluter partitions the stream by a
// key attribute and maintains one independent polluter instance —
// including any stateful conditions and error functions — per key, so
// that, e.g., each sensor gets its own frozen-value state, Markov error
// chain, or running statistics.

// KeyedPolluter routes every tuple to a per-key polluter instance
// created on first sight of the key.
type KeyedPolluter struct {
	PolluterName string
	// KeyAttr names the attribute whose textual rendering is the key.
	KeyAttr string
	// New creates the polluter instance for a key. The key is passed so
	// factories can derive key-specific RNG streams, keeping the whole
	// construct deterministic.
	New func(key string) Polluter

	instances map[string]Polluter
}

// NewKeyedPolluter builds a keyed polluter.
func NewKeyedPolluter(name, keyAttr string, factory func(key string) Polluter) *KeyedPolluter {
	return &KeyedPolluter{
		PolluterName: name,
		KeyAttr:      keyAttr,
		New:          factory,
		instances:    make(map[string]Polluter),
	}
}

// Name implements Polluter.
func (p *KeyedPolluter) Name() string { return p.PolluterName }

// Pollute implements Polluter.
func (p *KeyedPolluter) Pollute(t *stream.Tuple, tau time.Time, log *Log) {
	v, ok := t.Get(p.KeyAttr)
	if !ok {
		return
	}
	key := v.String()
	inst := p.instances[key]
	if inst == nil {
		inst = p.New(key)
		p.instances[key] = inst
	}
	inst.Pollute(t, tau, log)
}

// Keys returns the keys seen so far, sorted for deterministic reporting.
func (p *KeyedPolluter) Keys() []string {
	out := make([]string, 0, len(p.instances))
	for k := range p.instances {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Instance returns the polluter bound to key, if any — useful for
// inspecting per-key state in tests and tools.
func (p *KeyedPolluter) Instance(key string) (Polluter, bool) {
	inst, ok := p.instances[key]
	return inst, ok
}

// EnsureInstance returns the polluter bound to key, creating it via the
// factory if the key was not seen yet. Checkpoint restore uses it to
// rebuild the per-key instances recorded in a snapshot before restoring
// their state.
func (p *KeyedPolluter) EnsureInstance(key string) Polluter {
	inst := p.instances[key]
	if inst == nil {
		inst = p.New(key)
		p.instances[key] = inst
	}
	return inst
}

// CloneEmpty returns a fresh keyed polluter with the same name, key
// attribute and per-key factory but no per-key instances. Shard workers
// use it to stamp independent pipeline instances from a prototype
// configuration: because every instance is (re)created by the same
// key-deriving factory, a key produces the same polluter state sequence
// no matter which shard it lands on.
func (p *KeyedPolluter) CloneEmpty() *KeyedPolluter {
	return NewKeyedPolluter(p.PolluterName, p.KeyAttr, p.New)
}

// String renders a short summary.
func (p *KeyedPolluter) String() string {
	return fmt.Sprintf("keyed(%s by %s, %d keys)", p.PolluterName, p.KeyAttr, len(p.instances))
}
