package core

import (
	"time"

	"icewafl/internal/rng"
)

// This file implements per-run pipeline resets. Stateful components —
// frozen values, sticky holds, Markov chains, error budgets, cascade
// trackers, running statistics, per-key instances, and every RNG stream
// — accumulate state while a pipeline runs. Historically a compiled
// pipeline was single-shot: running it a second time silently continued
// from the first run's state (a frozen sensor stayed frozen, RNG streams
// kept advancing), so two consecutive runs of the same process produced
// different output.
//
// ResetPipeline walks a pipeline exactly like the checkpoint snapshot
// walker and returns every component to its just-constructed state. The
// Process runners invoke it at the start of every run, restoring the
// contract that a compiled configuration is a pure function of its input:
// two consecutive runs of the same pipeline over the same input are
// byte-identical (TestRunTwiceByteIdentical).

// Resettable is implemented by components carrying per-run mutable state
// that must be cleared between runs. The built-in stateful components
// are reset structurally by the walker; custom polluters, conditions,
// and error functions implement Resettable to participate.
type Resettable interface {
	// ResetRunState returns the component to its just-constructed state.
	ResetRunState()
}

// ResetPipeline returns every stateful component of p — including RNG
// streams — to its just-constructed state, as if the pipeline had been
// freshly compiled. It is idempotent.
func ResetPipeline(p *Pipeline) {
	if p == nil {
		return
	}
	for _, pol := range p.Polluters {
		resetPolluter(pol)
	}
}

// resetPipelines resets every pipeline of the process; all runners call
// it before consuming input, so a Process can be run repeatedly with
// deterministic results.
func (pr *Process) resetPipelines() {
	for _, p := range pr.Pipelines {
		ResetPipeline(p)
	}
}

func resetRand(r *rng.Stream) {
	if r != nil {
		r.Reset()
	}
}

func resetPolluter(p Polluter) {
	switch v := p.(type) {
	case *Standard:
		resetCondition(v.Cond)
		resetError(v.Err)
	case *Composite:
		resetCondition(v.Cond)
		resetRand(v.Rand)
		for _, c := range v.Children {
			resetPolluter(c)
		}
	case *KeyedPolluter:
		// Per-key instances are created deterministically from (seed,
		// path, key), so discarding them and letting the factory rebuild
		// on first sight is equivalent to resetting each one — and also
		// frees per-key state of keys the next run may never see.
		v.resetInstances()
	case *Observer:
		v.State.ResetRunState()
	default:
		if r, ok := p.(Resettable); ok {
			r.ResetRunState()
		}
	}
}

func resetCondition(c Condition) {
	switch v := c.(type) {
	case nil:
	case *Random:
		resetRand(v.Rand)
	case And:
		for _, child := range v {
			resetCondition(child)
		}
	case Or:
		for _, child := range v {
			resetCondition(child)
		}
	case Not:
		resetCondition(v.Inner)
	case *Sticky:
		v.Reset()
		resetCondition(v.Trigger)
	case *MarkovCondition:
		v.bad = false
		resetRand(v.Rand)
	case *BudgetCondition:
		v.firings = v.firings[:0]
		resetCondition(v.Inner)
	case *CascadeCondition:
		v.prevID = 0
		v.hasPrev = false
	case DeviationCondition:
		v.State.ResetRunState()
	default:
		if r, ok := c.(Resettable); ok {
			r.ResetRunState()
		}
	}
}

func resetError(e ErrorFunc) {
	switch v := e.(type) {
	case nil:
	case *GaussianNoise:
		resetRand(v.Rand)
	case *UniformMultNoise:
		resetRand(v.Rand)
	case *IncorrectCategory:
		resetRand(v.Rand)
	case *Outlier:
		resetRand(v.Rand)
	case *StringTypo:
		resetRand(v.Rand)
	case *FrozenValue:
		v.Thaw()
	case Chain:
		for _, sub := range v {
			resetError(sub)
		}
	default:
		if r, ok := e.(Resettable); ok {
			r.ResetRunState()
		}
	}
}

// ResetRunState implements Resettable: it clears the running statistics,
// returning the tracker to its just-constructed state (the recent-value
// window capacity is preserved).
func (s *StreamState) ResetRunState() {
	if s == nil {
		return
	}
	s.attrs = make(map[string]*attrState)
	s.tuples = 0
	s.lastEvent = time.Time{}
}

// resetInstances drops every per-key polluter instance; the factory
// rebuilds them deterministically on first sight of each key.
func (p *KeyedPolluter) resetInstances() {
	p.instances = make(map[string]Polluter)
}
