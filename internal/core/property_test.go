package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"icewafl/internal/groundtruth"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// Property tests over the pollution process: invariants that must hold
// for arbitrary seeds, stream lengths and pollution probabilities.

// buildRandomPipeline assembles a pipeline mixing value errors, drops
// and delays, fully derived from seed.
func buildRandomPipeline(seed int64, pNoise, pDrop, pDelay float64) *Pipeline {
	return NewPipeline(
		NewStandard("noise",
			&GaussianNoise{Stddev: Const(3), Rand: rng.Derive(seed, "noise")},
			NewRandomConst(pNoise, rng.Derive(seed, "noise-c")), "v"),
		NewStandard("drop", DropTuple{},
			NewRandomConst(pDrop, rng.Derive(seed, "drop-c")), "v"),
		NewStandard("delay", DelayTuple{Delay: 90 * time.Minute},
			NewRandomConst(pDelay, rng.Derive(seed, "delay-c")), "v"),
	)
}

func runRandomProcess(t *testing.T, seed int64, n int, pNoise, pDrop, pDelay float64) *Result {
	t.Helper()
	proc := NewProcess(buildRandomPipeline(seed, pNoise, pDrop, pDelay))
	res, err := proc.Run(procSource(procSchema(), n))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func clampProb(p float64) float64 {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return 0.25
	}
	p = math.Abs(p)
	if p > 1 {
		p = math.Mod(p, 1)
	}
	return p * 0.5 // keep probabilities moderate
}

func TestProcessInvariants(t *testing.T) {
	prop := func(seed int64, rawN uint8, a, b, c float64) bool {
		n := int(rawN)%200 + 10
		pNoise, pDrop, pDelay := clampProb(a), clampProb(b), clampProb(c)
		res := runRandomProcess(t, seed, n, pNoise, pDrop, pDelay)

		// Invariant 1: sizes add up — polluted + dropped == clean.
		if len(res.Polluted)+res.DroppedTuples != len(res.Clean) {
			return false
		}
		// Invariant 2: polluted IDs are a subset of clean IDs, no
		// duplicates (single pipeline).
		cleanIDs := make(map[uint64]bool, len(res.Clean))
		for _, tp := range res.Clean {
			cleanIDs[tp.ID] = true
		}
		seen := make(map[uint64]bool, len(res.Polluted))
		for _, tp := range res.Polluted {
			if !cleanIDs[tp.ID] || seen[tp.ID] {
				return false
			}
			seen[tp.ID] = true
		}
		// Invariant 3: output sorted by arrival (ties by event
		// time/ID handled inside SortByArrival).
		for i := 1; i < len(res.Polluted); i++ {
			if res.Polluted[i].Arrival.Before(res.Polluted[i-1].Arrival) {
				return false
			}
		}
		// Invariant 4: τ and ID immune — every polluted tuple's event
		// time equals its clean counterpart's.
		cleanByID := make(map[uint64]stream.Tuple, len(res.Clean))
		for _, tp := range res.Clean {
			cleanByID[tp.ID] = tp
		}
		for _, tp := range res.Polluted {
			if !tp.EventTime.Equal(cleanByID[tp.ID].EventTime) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffLogConsistencyProperty(t *testing.T) {
	// Every value change found by ground-truth diffing must be backed by
	// at least one log entry for that tuple (the converse cannot hold:
	// an error application may leave the value unchanged, e.g. noise
	// that rounds away or a drop).
	prop := func(seed int64, rawN uint8, a float64) bool {
		n := int(rawN)%150 + 20
		res := runRandomProcess(t, seed, n, clampProb(a)+0.05, 0.02, 0.05)
		polluted := res.Log.PollutedTuples()
		diff := groundtruth.Diff(res.Clean, res.Polluted)
		for _, d := range diff.Diffs {
			if len(d.ChangedAttrs) > 0 || d.Dropped || d.Delayed {
				if !polluted[d.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismProperty(t *testing.T) {
	// Same seed → byte-identical results, for arbitrary seeds.
	prop := func(seed int64, rawN uint8) bool {
		n := int(rawN)%100 + 10
		a := runRandomProcess(t, seed, n, 0.3, 0.05, 0.1)
		b := runRandomProcess(t, seed, n, 0.3, 0.05, 0.1)
		if len(a.Polluted) != len(b.Polluted) || a.Log.Len() != b.Log.Len() {
			return false
		}
		for i := range a.Polluted {
			if !a.Polluted[i].Equal(b.Polluted[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPipelineIsIdentityProperty(t *testing.T) {
	// A pipeline with no polluters must return the stream unchanged
	// (modulo preparation metadata).
	prop := func(rawN uint8) bool {
		n := int(rawN)%100 + 1
		proc := NewProcess(NewPipeline())
		res, err := proc.Run(procSource(procSchema(), n))
		if err != nil || len(res.Polluted) != n || res.Log.Len() != 0 {
			return false
		}
		for i := range res.Polluted {
			if !res.Polluted[i].Equal(res.Clean[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapDuplicationProperty(t *testing.T) {
	// With full overlap over m pipelines, every clean tuple appears
	// exactly m times in the polluted stream (no drops configured).
	prop := func(seed int64, rawN, rawM uint8) bool {
		n := int(rawN)%80 + 5
		m := int(rawM)%3 + 2
		pipes := make([]*Pipeline, m)
		for i := range pipes {
			pipes[i] = NewPipeline(NewStandard("noise",
				&GaussianNoise{Stddev: Const(1), Rand: rng.Derive(seed, "n")},
				NewRandomConst(0.5, rng.Derive(seed, "c")), "v"))
		}
		proc := &Process{Pipelines: pipes, Route: stream.RouteAll, KeepClean: true}
		res, err := proc.Run(procSource(procSchema(), n))
		if err != nil {
			return false
		}
		counts := map[uint64]int{}
		for _, tp := range res.Polluted {
			counts[tp.ID]++
		}
		if len(counts) != n {
			return false
		}
		for _, c := range counts {
			if c != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
