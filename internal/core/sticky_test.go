package core

import (
	"testing"
	"time"

	"icewafl/internal/rng"
)

func TestStickyHoldsForDuration(t *testing.T) {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	trigger := TimeInterval{From: base.Add(2 * time.Hour), To: base.Add(3 * time.Hour)}
	c := NewSticky(trigger, 4*time.Hour)
	tp := condTuple(base, 1, "x")

	results := make([]bool, 10)
	for h := 0; h < 10; h++ {
		results[h] = c.Eval(tp, base.Add(time.Duration(h)*time.Hour))
	}
	// Trigger fires at hour 2; hold keeps it active through hour 5
	// (2 + 4h exclusive); inactive again from hour 6.
	want := []bool{false, false, true, true, true, true, false, false, false, false}
	for h := range want {
		if results[h] != want[h] {
			t.Fatalf("hour %d: got %v, want %v (all: %v)", h, results[h], want[h], results)
		}
	}
}

func TestStickyRetriggers(t *testing.T) {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	// Trigger is active at hours 0 and 6.
	trigger := Or{
		TimeInterval{From: base, To: base.Add(time.Hour)},
		TimeInterval{From: base.Add(6 * time.Hour), To: base.Add(7 * time.Hour)},
	}
	c := NewSticky(trigger, 2*time.Hour)
	tp := condTuple(base, 1, "x")
	var active []int
	for h := 0; h < 10; h++ {
		if c.Eval(tp, base.Add(time.Duration(h)*time.Hour)) {
			active = append(active, h)
		}
	}
	want := []int{0, 1, 6, 7}
	if len(active) != len(want) {
		t.Fatalf("active hours %v, want %v", active, want)
	}
	for i := range want {
		if active[i] != want[i] {
			t.Fatalf("active hours %v, want %v", active, want)
		}
	}
}

func TestStickyWithRandomTrigger(t *testing.T) {
	// Once a random trigger fires, the episode lasts the full hold even
	// though the trigger itself is unlikely to fire again.
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewSticky(NewRandomConst(0.05, rng.New(3)), 4*time.Hour)
	tp := condTuple(base, 1, "x")
	inEpisode := 0
	episodes := 0
	prev := false
	for h := 0; h < 5000; h++ {
		now := c.Eval(tp, base.Add(time.Duration(h)*time.Hour))
		if now {
			inEpisode++
			if !prev {
				episodes++
			}
		}
		prev = now
	}
	if episodes == 0 {
		t.Fatal("no episodes triggered")
	}
	avgLen := float64(inEpisode) / float64(episodes)
	// Each episode lasts at least the 4-hour hold (may extend by
	// re-triggering within it).
	if avgLen < 4 {
		t.Fatalf("average episode length %.2f < hold", avgLen)
	}
}

func TestStickyDescribe(t *testing.T) {
	c := NewSticky(Always{}, time.Hour)
	if c.Describe() == "" {
		t.Fatal("empty describe")
	}
}
