package core

import (
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// Polluter is the unit of the pollution model. Standard polluters inject
// a specific error; composite polluters structure the pipeline (paper
// §2.2.1). Pollute mutates the tuple in place and records every injected
// error in the log.
type Polluter interface {
	// Pollute applies the polluter to t at event time tau, appending a
	// log entry for every error actually injected.
	Pollute(t *stream.Tuple, tau time.Time, log *Log)
	// Name identifies the polluter in logs and configurations.
	Name() string
}

// Standard is the polluter triple ⟨e, c, A_p⟩ of Eq. 2: when Cond holds,
// Err is applied to the attributes Attrs.
type Standard struct {
	PolluterName string
	Err          ErrorFunc
	Cond         Condition
	Attrs        []string
}

// NewStandard builds a standard polluter. A nil cond means Always.
func NewStandard(name string, err ErrorFunc, cond Condition, attrs ...string) *Standard {
	if cond == nil {
		cond = Always{}
	}
	return &Standard{PolluterName: name, Err: err, Cond: cond, Attrs: attrs}
}

// Name implements Polluter.
func (p *Standard) Name() string { return p.PolluterName }

// Pollute implements Polluter.
func (p *Standard) Pollute(t *stream.Tuple, tau time.Time, log *Log) {
	if !p.Cond.Eval(*t, tau) {
		log.condMiss()
		return
	}
	log.condHit()
	p.Err.Apply(t, p.Attrs, tau)
	if log != nil {
		log.Record(Entry{
			TupleID:   t.ID,
			EventTime: tau,
			Polluter:  p.PolluterName,
			Error:     p.Err.Kind(),
			Attrs:     p.Attrs,
		})
	}
}

// CompositeMode selects how a composite polluter dispatches to its
// registered children.
type CompositeMode int

const (
	// ModeSequence runs every child in series — error types that always
	// occur together (the software-update scenario).
	ModeSequence CompositeMode = iota
	// ModeChoice runs exactly one child, selected uniformly at random —
	// mutually exclusive error types.
	ModeChoice
	// ModeWeighted runs exactly one child, selected with the configured
	// weights.
	ModeWeighted
)

// Composite is a polluter that registers an arbitrary number of child
// polluters and delegates to them when its own condition holds. Nesting
// composites models complex strategies: errors occurring together,
// mutually exclusive error sets, and integrated sub-pipelines.
type Composite struct {
	PolluterName string
	Cond         Condition
	Children     []Polluter
	Mode         CompositeMode
	// Weights are used by ModeWeighted; len must equal len(Children).
	Weights []float64
	// Rand drives child selection for ModeChoice/ModeWeighted.
	Rand *rng.Stream
}

// NewComposite builds a sequence-mode composite. A nil cond means Always.
func NewComposite(name string, cond Condition, children ...Polluter) *Composite {
	if cond == nil {
		cond = Always{}
	}
	return &Composite{PolluterName: name, Cond: cond, Children: children, Mode: ModeSequence}
}

// NewChoice builds a mutually-exclusive composite selecting one child
// uniformly per tuple.
func NewChoice(name string, cond Condition, r *rng.Stream, children ...Polluter) *Composite {
	if cond == nil {
		cond = Always{}
	}
	return &Composite{PolluterName: name, Cond: cond, Children: children, Mode: ModeChoice, Rand: r}
}

// Name implements Polluter.
func (p *Composite) Name() string { return p.PolluterName }

// Pollute implements Polluter.
func (p *Composite) Pollute(t *stream.Tuple, tau time.Time, log *Log) {
	if len(p.Children) == 0 {
		return
	}
	if !p.Cond.Eval(*t, tau) {
		log.condMiss()
		return
	}
	log.condHit()
	switch p.Mode {
	case ModeSequence:
		for _, c := range p.Children {
			c.Pollute(t, tau, log)
		}
	case ModeChoice:
		p.Children[p.Rand.Intn(len(p.Children))].Pollute(t, tau, log)
	case ModeWeighted:
		p.Children[p.pickWeighted()].Pollute(t, tau, log)
	}
}

func (p *Composite) pickWeighted() int {
	total := 0.0
	for _, w := range p.Weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return p.Rand.Intn(len(p.Children))
	}
	x := p.Rand.Float64() * total
	for i, w := range p.Weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(p.Children) - 1
}

// Pipeline is a sequence of polluters applied left to right (paper
// §2.2.1): t' = p_o(p_{o-1}(… p_1(t, τ) …, τ), τ).
type Pipeline struct {
	Polluters []Polluter
}

// NewPipeline builds a pipeline from polluters.
func NewPipeline(polluters ...Polluter) *Pipeline {
	return &Pipeline{Polluters: polluters}
}

// Apply runs the whole pipeline over a tuple in place.
func (p *Pipeline) Apply(t *stream.Tuple, tau time.Time, log *Log) {
	for _, pol := range p.Polluters {
		pol.Pollute(t, tau, log)
	}
}

// Len returns the number of top-level polluters (the l of the paper's
// complexity analysis).
func (p *Pipeline) Len() int { return len(p.Polluters) }
