package core

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"icewafl/internal/obs"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// This file implements deterministic checkpoint/resume for pollution
// runs. A checkpoint captures everything Algorithm 1 needs to continue a
// run as if it had never stopped:
//
//   - the input position (raw tuples consumed) and the next tuple ID;
//   - the state of every RNG stream in the pipeline;
//   - the state of every stateful polluter, condition and error function
//     (sticky holds, Markov chains, frozen values, running statistics,
//     error budgets, per-key instances);
//   - the pollution-log and output positions, so a harness can truncate
//     its files back to the checkpoint and append seamlessly.
//
// The guarantee: an interrupted run resumed from its last checkpoint
// produces a polluted stream and pollution log byte-identical to an
// uninterrupted run (verified by TestCheckpointResumeDeterminism).

// CheckpointVersion is the on-disk format version.
const CheckpointVersion = 1

// Stateful is implemented by pipeline components carrying per-run
// mutable state that must survive checkpoint/resume. Components not
// implementing Stateful (and not otherwise known to the snapshot walker)
// are assumed stateless.
type Stateful interface {
	// SnapshotState serialises the component's current state.
	SnapshotState() (json.RawMessage, error)
	// RestoreState overwrites the component's state with a snapshot.
	RestoreState(json.RawMessage) error
}

// PipelineState maps stable component paths to serialised state.
type PipelineState map[string]json.RawMessage

// Checkpoint is one consistent snapshot of a streaming pollution run.
type Checkpoint struct {
	Version int `json:"version"`
	// TuplesIn is the number of raw input tuples consumed (including
	// quarantined ones); resume skips exactly this many.
	TuplesIn uint64 `json:"tuples_in"`
	// NextID is the ID the next prepared tuple will receive.
	NextID uint64 `json:"next_id"`
	// TuplesOut is the number of polluted tuples emitted downstream.
	TuplesOut uint64 `json:"tuples_out"`
	// LogLen is the number of pollution-log entries produced so far.
	LogLen int `json:"log_len"`
	// Quarantined is the number of dead-lettered tuples so far.
	Quarantined int `json:"quarantined"`
	// Pipeline is the serialised state of every stateful component.
	Pipeline PipelineState `json:"pipeline"`
	// Offsets carries harness positions (e.g. output-file byte offsets)
	// so a resuming process can truncate partial output past the
	// checkpoint.
	Offsets map[string]int64 `json:"offsets,omitempty"`
}

// WriteCheckpoint atomically persists c at path (write to a temp file in
// the same directory, fsync, rename), so a crash mid-write never
// corrupts the previous checkpoint.
func WriteCheckpoint(path string, c *Checkpoint) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("core: parse checkpoint %s: %w", path, err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s has version %d, want %d", path, c.Version, CheckpointVersion)
	}
	return &c, nil
}

// ---------------------------------------------------------------------
// Pipeline state walker
// ---------------------------------------------------------------------

// SnapshotPipeline captures the state of every stateful component of p
// under stable paths. The same configuration always yields the same
// paths, so a snapshot taken by one process restores into a pipeline
// compiled from the same configuration by another.
func SnapshotPipeline(p *Pipeline) (PipelineState, error) {
	out := make(PipelineState)
	for i, pol := range p.Polluters {
		if err := snapshotPolluter(pol, polPath("", i, pol), out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RestorePipeline restores a snapshot captured by SnapshotPipeline into
// p, which must be compiled from the same configuration. Missing state
// for a visited component is an error: silently skipping it would break
// the determinism guarantee.
func RestorePipeline(p *Pipeline, st PipelineState) error {
	for i, pol := range p.Polluters {
		if err := restorePolluter(pol, polPath("", i, pol), st); err != nil {
			return err
		}
	}
	return nil
}

func polPath(base string, i int, p Polluter) string {
	return fmt.Sprintf("%s/%d:%s", base, i, p.Name())
}

func putStateful(out PipelineState, path string, s Stateful) error {
	raw, err := s.SnapshotState()
	if err != nil {
		return fmt.Errorf("core: snapshot %s: %w", path, err)
	}
	out[path] = raw
	return nil
}

func getStateful(st PipelineState, path string, s Stateful) error {
	raw, ok := st[path]
	if !ok {
		return fmt.Errorf("core: checkpoint misses state for %s", path)
	}
	if err := s.RestoreState(raw); err != nil {
		return fmt.Errorf("core: restore %s: %w", path, err)
	}
	return nil
}

func putRand(out PipelineState, path string, r *rng.Stream) error {
	if r == nil {
		return nil
	}
	raw, err := json.Marshal(r.State())
	if err != nil {
		return fmt.Errorf("core: snapshot rng %s: %w", path, err)
	}
	out[path] = raw
	return nil
}

func getRand(st PipelineState, path string, r *rng.Stream) error {
	if r == nil {
		return nil
	}
	raw, ok := st[path]
	if !ok {
		return fmt.Errorf("core: checkpoint misses rng state for %s", path)
	}
	var s rng.State
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("core: restore rng %s: %w", path, err)
	}
	r.SetState(s)
	return nil
}

func snapshotPolluter(p Polluter, path string, out PipelineState) error {
	switch v := p.(type) {
	case *Standard:
		if err := snapshotCondition(v.Cond, path+"/cond", out); err != nil {
			return err
		}
		return snapshotError(v.Err, path+"/err", out)
	case *Composite:
		if err := snapshotCondition(v.Cond, path+"/cond", out); err != nil {
			return err
		}
		if err := putRand(out, path+"/rand", v.Rand); err != nil {
			return err
		}
		for i, c := range v.Children {
			if err := snapshotPolluter(c, polPath(path, i, c), out); err != nil {
				return err
			}
		}
		return nil
	case *KeyedPolluter:
		keys := v.Keys()
		raw, err := json.Marshal(keys)
		if err != nil {
			return fmt.Errorf("core: snapshot %s keys: %w", path, err)
		}
		out[path+"/keys"] = raw
		for _, k := range keys {
			inst, _ := v.Instance(k)
			if err := snapshotPolluter(inst, path+"/key="+k, out); err != nil {
				return err
			}
		}
		return nil
	case *Observer:
		return putStateful(out, path+"/state", v.State)
	default:
		if s, ok := p.(Stateful); ok {
			return putStateful(out, path, s)
		}
		return nil
	}
}

func restorePolluter(p Polluter, path string, st PipelineState) error {
	switch v := p.(type) {
	case *Standard:
		if err := restoreCondition(v.Cond, path+"/cond", st); err != nil {
			return err
		}
		return restoreError(v.Err, path+"/err", st)
	case *Composite:
		if err := restoreCondition(v.Cond, path+"/cond", st); err != nil {
			return err
		}
		if err := getRand(st, path+"/rand", v.Rand); err != nil {
			return err
		}
		for i, c := range v.Children {
			if err := restorePolluter(c, polPath(path, i, c), st); err != nil {
				return err
			}
		}
		return nil
	case *KeyedPolluter:
		raw, ok := st[path+"/keys"]
		if !ok {
			return fmt.Errorf("core: checkpoint misses keys for %s", path)
		}
		var keys []string
		if err := json.Unmarshal(raw, &keys); err != nil {
			return fmt.Errorf("core: restore %s keys: %w", path, err)
		}
		for _, k := range keys {
			inst := v.EnsureInstance(k)
			if err := restorePolluter(inst, path+"/key="+k, st); err != nil {
				return err
			}
		}
		return nil
	case *Observer:
		return getStateful(st, path+"/state", v.State)
	default:
		if s, ok := p.(Stateful); ok {
			return getStateful(st, path, s)
		}
		return nil
	}
}

func snapshotCondition(c Condition, path string, out PipelineState) error {
	switch v := c.(type) {
	case nil:
		return nil
	case *Random:
		return putRand(out, path+"/rand", v.Rand)
	case And:
		for i, child := range v {
			if err := snapshotCondition(child, fmt.Sprintf("%s/%d", path, i), out); err != nil {
				return err
			}
		}
		return nil
	case Or:
		for i, child := range v {
			if err := snapshotCondition(child, fmt.Sprintf("%s/%d", path, i), out); err != nil {
				return err
			}
		}
		return nil
	case Not:
		return snapshotCondition(v.Inner, path+"/not", out)
	case *Sticky:
		if err := putStateful(out, path, v); err != nil {
			return err
		}
		return snapshotCondition(v.Trigger, path+"/trigger", out)
	case *MarkovCondition:
		if err := putStateful(out, path, v); err != nil {
			return err
		}
		return putRand(out, path+"/rand", v.Rand)
	case *BudgetCondition:
		if err := putStateful(out, path, v); err != nil {
			return err
		}
		return snapshotCondition(v.Inner, path+"/inner", out)
	case *CascadeCondition:
		return putStateful(out, path, v)
	case DeviationCondition:
		return putStateful(out, path+"/state", v.State)
	default:
		if s, ok := c.(Stateful); ok {
			return putStateful(out, path, s)
		}
		return nil
	}
}

func restoreCondition(c Condition, path string, st PipelineState) error {
	switch v := c.(type) {
	case nil:
		return nil
	case *Random:
		return getRand(st, path+"/rand", v.Rand)
	case And:
		for i, child := range v {
			if err := restoreCondition(child, fmt.Sprintf("%s/%d", path, i), st); err != nil {
				return err
			}
		}
		return nil
	case Or:
		for i, child := range v {
			if err := restoreCondition(child, fmt.Sprintf("%s/%d", path, i), st); err != nil {
				return err
			}
		}
		return nil
	case Not:
		return restoreCondition(v.Inner, path+"/not", st)
	case *Sticky:
		if err := getStateful(st, path, v); err != nil {
			return err
		}
		return restoreCondition(v.Trigger, path+"/trigger", st)
	case *MarkovCondition:
		if err := getStateful(st, path, v); err != nil {
			return err
		}
		return getRand(st, path+"/rand", v.Rand)
	case *BudgetCondition:
		if err := getStateful(st, path, v); err != nil {
			return err
		}
		return restoreCondition(v.Inner, path+"/inner", st)
	case *CascadeCondition:
		return getStateful(st, path, v)
	case DeviationCondition:
		return getStateful(st, path+"/state", v.State)
	default:
		if s, ok := c.(Stateful); ok {
			return getStateful(st, path, s)
		}
		return nil
	}
}

func snapshotError(e ErrorFunc, path string, out PipelineState) error {
	switch v := e.(type) {
	case nil:
		return nil
	case *GaussianNoise:
		return putRand(out, path+"/rand", v.Rand)
	case *UniformMultNoise:
		return putRand(out, path+"/rand", v.Rand)
	case *IncorrectCategory:
		return putRand(out, path+"/rand", v.Rand)
	case *Outlier:
		return putRand(out, path+"/rand", v.Rand)
	case *StringTypo:
		return putRand(out, path+"/rand", v.Rand)
	case *FrozenValue:
		return putStateful(out, path, v)
	case Chain:
		for i, sub := range v {
			if err := snapshotError(sub, fmt.Sprintf("%s/%d", path, i), out); err != nil {
				return err
			}
		}
		return nil
	default:
		if s, ok := e.(Stateful); ok {
			return putStateful(out, path, s)
		}
		return nil
	}
}

func restoreError(e ErrorFunc, path string, st PipelineState) error {
	switch v := e.(type) {
	case nil:
		return nil
	case *GaussianNoise:
		return getRand(st, path+"/rand", v.Rand)
	case *UniformMultNoise:
		return getRand(st, path+"/rand", v.Rand)
	case *IncorrectCategory:
		return getRand(st, path+"/rand", v.Rand)
	case *Outlier:
		return getRand(st, path+"/rand", v.Rand)
	case *StringTypo:
		return getRand(st, path+"/rand", v.Rand)
	case *FrozenValue:
		return getStateful(st, path, v)
	case Chain:
		for i, sub := range v {
			if err := restoreError(sub, fmt.Sprintf("%s/%d", path, i), st); err != nil {
				return err
			}
		}
		return nil
	default:
		if s, ok := e.(Stateful); ok {
			return getStateful(st, path, s)
		}
		return nil
	}
}

// ---------------------------------------------------------------------
// Stateful implementations for the built-in components
// ---------------------------------------------------------------------

type stickyState struct {
	Active bool      `json:"active"`
	Until  time.Time `json:"until"`
}

// SnapshotState implements Stateful.
func (c *Sticky) SnapshotState() (json.RawMessage, error) {
	return json.Marshal(stickyState{Active: c.active, Until: c.activeUntil})
}

// RestoreState implements Stateful.
func (c *Sticky) RestoreState(raw json.RawMessage) error {
	var s stickyState
	if err := json.Unmarshal(raw, &s); err != nil {
		return err
	}
	c.active = s.Active
	c.activeUntil = s.Until
	return nil
}

type markovState struct {
	Bad bool `json:"bad"`
}

// SnapshotState implements Stateful.
func (c *MarkovCondition) SnapshotState() (json.RawMessage, error) {
	return json.Marshal(markovState{Bad: c.bad})
}

// RestoreState implements Stateful.
func (c *MarkovCondition) RestoreState(raw json.RawMessage) error {
	var s markovState
	if err := json.Unmarshal(raw, &s); err != nil {
		return err
	}
	c.bad = s.Bad
	return nil
}

type budgetState struct {
	Firings []time.Time `json:"firings"`
}

// SnapshotState implements Stateful.
func (c *BudgetCondition) SnapshotState() (json.RawMessage, error) {
	return json.Marshal(budgetState{Firings: c.firings})
}

// RestoreState implements Stateful.
func (c *BudgetCondition) RestoreState(raw json.RawMessage) error {
	var s budgetState
	if err := json.Unmarshal(raw, &s); err != nil {
		return err
	}
	c.firings = s.Firings
	return nil
}

type cascadeState struct {
	PrevID  uint64 `json:"prev_id"`
	HasPrev bool   `json:"has_prev"`
}

// SnapshotState implements Stateful.
func (c *CascadeCondition) SnapshotState() (json.RawMessage, error) {
	return json.Marshal(cascadeState{PrevID: c.prevID, HasPrev: c.hasPrev})
}

// RestoreState implements Stateful.
func (c *CascadeCondition) RestoreState(raw json.RawMessage) error {
	var s cascadeState
	if err := json.Unmarshal(raw, &s); err != nil {
		return err
	}
	c.prevID = s.PrevID
	c.hasPrev = s.HasPrev
	return nil
}

// valueState serialises a stream.Value losslessly (RFC3339Nano for
// timestamps, distinguishing NULL from the empty string).
type valueState struct {
	Kind string `json:"kind"`
	Text string `json:"text,omitempty"`
}

func encodeValue(v stream.Value) valueState {
	if v.IsNull() {
		return valueState{Kind: "null"}
	}
	if t, ok := v.AsTime(); ok && v.Kind() == stream.KindTime {
		return valueState{Kind: "time", Text: t.UTC().Format(time.RFC3339Nano)}
	}
	return valueState{Kind: v.Kind().String(), Text: v.String()}
}

func decodeValue(s valueState) (stream.Value, error) {
	kind, err := stream.ParseKind(s.Kind)
	if err != nil {
		return stream.Null(), err
	}
	switch kind {
	case stream.KindNull:
		return stream.Null(), nil
	case stream.KindString:
		return stream.Str(s.Text), nil
	case stream.KindTime:
		t, err := time.Parse(time.RFC3339Nano, s.Text)
		if err != nil {
			return stream.Null(), err
		}
		return stream.Time(t), nil
	default:
		return stream.ParseValue(s.Text, kind)
	}
}

type frozenState struct {
	Frozen map[string]valueState `json:"frozen"`
}

// SnapshotState implements Stateful.
func (e *FrozenValue) SnapshotState() (json.RawMessage, error) {
	s := frozenState{Frozen: make(map[string]valueState, len(e.frozen))}
	for k, v := range e.frozen {
		s.Frozen[k] = encodeValue(v)
	}
	return json.Marshal(s)
}

// RestoreState implements Stateful.
func (e *FrozenValue) RestoreState(raw json.RawMessage) error {
	var s frozenState
	if err := json.Unmarshal(raw, &s); err != nil {
		return err
	}
	e.frozen = make(map[string]stream.Value, len(s.Frozen))
	for k, vs := range s.Frozen {
		v, err := decodeValue(vs)
		if err != nil {
			return fmt.Errorf("frozen value %q: %w", k, err)
		}
		e.frozen[k] = v
	}
	return nil
}

type attrStateJSON struct {
	Count  int       `json:"count"`
	Mean   float64   `json:"mean"`
	M2     float64   `json:"m2"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Recent []float64 `json:"recent,omitempty"`
	Pos    int       `json:"pos,omitempty"`
	Filled bool      `json:"filled,omitempty"`
}

type streamStateJSON struct {
	Window    int                      `json:"window"`
	Tuples    int                      `json:"tuples"`
	LastEvent time.Time                `json:"last_event"`
	Attrs     map[string]attrStateJSON `json:"attrs"`
}

// SnapshotState implements Stateful.
func (s *StreamState) SnapshotState() (json.RawMessage, error) {
	out := streamStateJSON{
		Window:    s.window,
		Tuples:    s.tuples,
		LastEvent: s.lastEvent,
		Attrs:     make(map[string]attrStateJSON, len(s.attrs)),
	}
	for name, st := range s.attrs {
		out.Attrs[name] = attrStateJSON{
			Count: st.count, Mean: st.mean, M2: st.m2, Min: st.min, Max: st.max,
			Recent: append([]float64(nil), st.recent...), Pos: st.pos, Filled: st.filled,
		}
	}
	return json.Marshal(out)
}

// RestoreState implements Stateful.
func (s *StreamState) RestoreState(raw json.RawMessage) error {
	var in streamStateJSON
	if err := json.Unmarshal(raw, &in); err != nil {
		return err
	}
	s.window = in.Window
	s.tuples = in.Tuples
	s.lastEvent = in.LastEvent
	s.attrs = make(map[string]*attrState, len(in.Attrs))
	for name, st := range in.Attrs {
		s.attrs[name] = &attrState{
			count: st.Count, mean: st.Mean, m2: st.M2, min: st.Min, max: st.Max,
			recent: append([]float64(nil), st.Recent...), pos: st.Pos, filled: st.Filled,
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Checkpointed streaming execution
// ---------------------------------------------------------------------

// Checkpointer captures consistent snapshots of a running checkpointed
// stream. It is bound to the single-threaded pull loop of the stream it
// was created with: call Capture only between Next calls on the returned
// source, when no tuple is in flight.
type Checkpointer struct {
	input    *inputCounter
	prepare  *stream.Prepare
	firstID  uint64
	pipeline *Pipeline
	log      *Log
	dlq      *stream.DeadLetterQueue
	out      *outputCounter
	reg      *obs.Registry

	baseIn          uint64
	baseOut         uint64
	baseLog         int
	baseQuarantined int
}

// DeadLetters returns the run's dead-letter queue (nil when quarantine
// is disabled).
func (c *Checkpointer) DeadLetters() *stream.DeadLetterQueue { return c.dlq }

// Capture snapshots the run. The returned checkpoint's Offsets map is
// empty; harnesses add their own file positions before persisting.
func (c *Checkpointer) Capture() (*Checkpoint, error) {
	var start time.Time
	if c.reg != nil {
		start = time.Now()
	}
	st, err := SnapshotPipeline(c.pipeline)
	if err != nil {
		return nil, err
	}
	if c.reg != nil {
		c.reg.Inc(obs.CCheckpointWrites)
		c.reg.ObserveStage(obs.StageCheckpoint, time.Since(start))
	}
	logLen := c.baseLog
	if c.log != nil {
		logLen += len(c.log.Entries)
	}
	return &Checkpoint{
		Version:     CheckpointVersion,
		TuplesIn:    c.baseIn + c.input.n,
		NextID:      c.prepare.NextID(),
		TuplesOut:   c.baseOut + c.out.n,
		LogLen:      logLen,
		Quarantined: c.baseQuarantined + c.dlq.Len(),
		Pipeline:    st,
		Offsets:     map[string]int64{},
	}, nil
}

// inputCounter counts raw input consumption: every delivered tuple and
// every tuple-level failure advances the position by one. Fatal errors
// and end-of-stream do not.
type inputCounter struct {
	src stream.Source
	n   uint64
}

func (c *inputCounter) Schema() *stream.Schema { return c.src.Schema() }

func (c *inputCounter) Next() (stream.Tuple, error) {
	t, err := c.src.Next()
	if err == nil {
		c.n++
		return t, nil
	}
	if _, ok := stream.AsTupleError(err); ok {
		c.n++
	}
	return t, err
}

// outputCounter counts emitted tuples.
type outputCounter struct {
	src stream.Source
	n   uint64
}

func (c *outputCounter) Schema() *stream.Schema { return c.src.Schema() }

func (c *outputCounter) Next() (stream.Tuple, error) {
	t, err := c.src.Next()
	if err == nil {
		c.n++
	}
	return t, err
}

// RunStreamCheckpointed executes the single-pipeline streaming workflow
// with checkpoint support. It behaves like RunStream with reorderWindow
// 1 (checkpoints require that no tuples are buffered between the
// pipeline and the consumer, so bounded reordering is not supported) and
// additionally returns a Checkpointer. Quarantine follows pr.Fault.
//
// With resume != nil the run continues from the snapshot: the first
// resume.TuplesIn input tuples are skipped (quarantined rows count),
// tuple numbering continues at resume.NextID, and every stateful
// component is restored — the concatenation of the interrupted run's
// output (truncated to the checkpoint) and the resumed run's output is
// byte-identical to an uninterrupted run.
func (pr *Process) RunStreamCheckpointed(src stream.Source, resume *Checkpoint) (stream.Source, *Log, *Checkpointer, error) {
	if len(pr.Pipelines) != 1 {
		return nil, nil, nil, fmt.Errorf("core: checkpointed streaming supports exactly one pipeline, got %d", len(pr.Pipelines))
	}
	firstID := pr.FirstID
	if firstID == 0 {
		firstID = 1
	}
	// Per-run reset first, so a previous run's leftover state (frozen
	// values, sticky holds, advanced RNG streams) never leaks into this
	// one; with resume != nil the restore below then overwrites the
	// pristine state with the checkpointed one.
	pr.resetPipelines()
	ck := &Checkpointer{pipeline: pr.Pipelines[0]}
	if resume != nil {
		if resume.Version != CheckpointVersion {
			return nil, nil, nil, fmt.Errorf("core: checkpoint version %d, want %d", resume.Version, CheckpointVersion)
		}
		if err := skipInput(src, resume.TuplesIn); err != nil {
			return nil, nil, nil, err
		}
		if err := RestorePipeline(pr.Pipelines[0], resume.Pipeline); err != nil {
			return nil, nil, nil, err
		}
		firstID = resume.NextID
		ck.baseIn = resume.TuplesIn
		ck.baseOut = resume.TuplesOut
		ck.baseLog = resume.LogLen
		ck.baseQuarantined = resume.Quarantined
	}
	log := pr.newLog()
	dlq := pr.instrumentDLQ(pr.Fault.queue())
	counted := &inputCounter{src: src}
	var in stream.Source = stream.ObserveSource(counted, pr.Obs)
	if pr.Fault.Quarantine {
		in = stream.Quarantine(in, dlq, pr.Fault.MaxQuarantined)
	}
	prep := stream.NewPrepare(in, firstID)
	runner := &streamRunner{src: prep, p: pr.Pipelines[0], log: log, fault: pr.Fault, dlq: dlq, reg: pr.Obs, trace: pr.Obs.TraceEnabled(), tap: pr.CleanTap}
	out := &outputCounter{src: runner}
	ck.input = counted
	ck.prepare = prep
	ck.firstID = firstID
	ck.log = log
	ck.dlq = dlq
	ck.out = out
	ck.reg = pr.Obs
	return out, log, ck, nil
}

// skipInput advances src past n raw tuples; tuple-level failures count
// as consumed (matching inputCounter), other errors abort.
func skipInput(src stream.Source, n uint64) error {
	for i := uint64(0); i < n; i++ {
		_, err := src.Next()
		if err == nil {
			continue
		}
		if _, ok := stream.AsTupleError(err); ok {
			continue
		}
		return fmt.Errorf("core: resume: input ended after %d of %d checkpointed tuples: %w", i, n, err)
	}
	return nil
}
