package core

import (
	"bytes"
	"testing"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// statefulProcess extends the checkpoint test's state-heavy pipeline with
// the remaining run-scoped state carriers: an observer feeding a
// deviation condition, an error budget, and a cascade tracker. A single
// compiled instance of this process exercises every arm of the reset
// walker.
func statefulProcess(seed int64) *Process {
	base := ckptProcess(seed)
	st := NewStreamState(32)
	observe := NewObserver(st)
	deviate := NewStandard("spike", &Outlier{Magnitude: Const(5), Rand: rng.Derive(seed, "spike")},
		DeviationCondition{State: st, Attr: "v", Sigmas: 2, MinCount: 10}, "v")
	budget := NewStandard("budget", MissingValue{},
		NewBudgetCondition(NewRandomConst(0.5, rng.Derive(seed, "budget")), 3, 45*time.Minute), "v")
	p := base.Pipelines[0]
	p.Polluters = append(p.Polluters, observe, deviate, budget)
	return base
}

// TestRunTwiceByteIdentical is the regression test for per-run pipeline
// resets: running the same compiled process twice over the same input
// must produce byte-identical polluted streams and logs. Before
// ResetPipeline, stateful components (frozen values, sticky holds,
// Markov chains, budgets, cascade trackers, running statistics, per-key
// instances, and every RNG stream) silently carried their first run's
// state into the second.
func TestRunTwiceByteIdentical(t *testing.T) {
	schema := ckptSchema()
	const n = 300
	const seed = 97

	runBatch := func(pr *Process) ([]byte, []byte) {
		res, err := pr.Run(ckptSource(schema, n))
		if err != nil {
			t.Fatal(err)
		}
		csv, logJSON := renderRun(t, schema, res.Polluted, res.Log.Entries)
		return csv, logJSON
	}
	runStreaming := func(pr *Process) ([]byte, []byte) {
		src, log, err := pr.RunStream(ckptSource(schema, n), 1)
		if err != nil {
			t.Fatal(err)
		}
		tuples, err := stream.Drain(src)
		if err != nil {
			t.Fatal(err)
		}
		csv, logJSON := renderRun(t, schema, tuples, log.Entries)
		return csv, logJSON
	}
	runCheckpointed := func(pr *Process) ([]byte, []byte) {
		src, log, _, err := pr.RunStreamCheckpointed(ckptSource(schema, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		tuples, err := stream.Drain(src)
		if err != nil {
			t.Fatal(err)
		}
		csv, logJSON := renderRun(t, schema, tuples, log.Entries)
		return csv, logJSON
	}
	for _, tc := range []struct {
		name string
		run  func(*Process) ([]byte, []byte)
	}{
		{"batch", runBatch},
		{"streaming", runStreaming},
		{"checkpointed", runCheckpointed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pr := statefulProcess(seed)
			csv1, log1 := tc.run(pr)
			csv2, log2 := tc.run(pr)
			if !bytes.Equal(csv1, csv2) {
				t.Errorf("second run's polluted stream differs from first (%d vs %d bytes)", len(csv1), len(csv2))
			}
			if !bytes.Equal(log1, log2) {
				t.Errorf("second run's pollution log differs from first (%d vs %d bytes)", len(log1), len(log2))
			}
		})
	}

	// A second run must also match a freshly compiled process: the reset
	// returns components to their just-constructed state, not merely to a
	// self-consistent one.
	t.Run("matches-fresh-compile", func(t *testing.T) {
		pr := statefulProcess(seed)
		_, _ = runBatch(pr)
		csvReused, logReused := runBatch(pr)
		fresh := statefulProcess(seed)
		csvFresh, logFresh := runBatch(fresh)
		if !bytes.Equal(csvReused, csvFresh) {
			t.Error("re-run of used process differs from freshly compiled process")
		}
		if !bytes.Equal(logReused, logFresh) {
			t.Error("re-run log of used process differs from freshly compiled process")
		}
	})

	// Mixing runners over one compiled process: batch then streaming must
	// equal streaming on a fresh process (the reset erases cross-runner
	// contamination too).
	t.Run("cross-runner", func(t *testing.T) {
		pr := statefulProcess(seed)
		_, _ = runBatch(pr)
		csvMixed, logMixed := runStreaming(pr)
		fresh := statefulProcess(seed)
		csvFresh, logFresh := runStreaming(fresh)
		if !bytes.Equal(csvMixed, csvFresh) {
			t.Error("streaming after batch differs from streaming on fresh process")
		}
		if !bytes.Equal(logMixed, logFresh) {
			t.Error("streaming-after-batch log differs from fresh streaming log")
		}
	})
}

// TestResetPipelineIdempotent guards the documented idempotence contract:
// resetting twice (or resetting a never-run pipeline) is a no-op.
func TestResetPipelineIdempotent(t *testing.T) {
	schema := ckptSchema()
	pr := statefulProcess(11)
	ResetPipeline(pr.Pipelines[0])
	ResetPipeline(pr.Pipelines[0])
	res1, err := pr.Run(ckptSource(schema, 120))
	if err != nil {
		t.Fatal(err)
	}
	fresh := statefulProcess(11)
	res2, err := fresh.Run(ckptSource(schema, 120))
	if err != nil {
		t.Fatal(err)
	}
	csv1, log1 := renderRun(t, schema, res1.Polluted, res1.Log.Entries)
	csv2, log2 := renderRun(t, schema, res2.Polluted, res2.Log.Entries)
	if !bytes.Equal(csv1, csv2) || !bytes.Equal(log1, log2) {
		t.Error("reset of a never-run pipeline changed its output")
	}
	ResetPipeline(nil) // nil-safe
}

// TestRNGStreamReset pins the Stream.Reset contract the walker relies on:
// after Reset the stream replays its first draws exactly, including the
// Box-Muller spare.
func TestRNGStreamReset(t *testing.T) {
	s := rng.Derive(42, "reset-test")
	first := make([]float64, 8)
	for i := range first {
		first[i] = s.Normal(0, 1)
	}
	s.Reset()
	for i := range first {
		if got := s.Normal(0, 1); got != first[i] {
			t.Fatalf("draw %d after Reset = %v, want %v", i, got, first[i])
		}
	}
}

// TestCleanTapStreaming checks that Process.CleanTap observes exactly the
// prepared (clean) tuples, in order, for both batch and streaming runs.
func TestCleanTapStreaming(t *testing.T) {
	schema := ckptSchema()
	const n = 50
	for _, mode := range []string{"batch", "streaming"} {
		t.Run(mode, func(t *testing.T) {
			pr := statefulProcess(7)
			var tapped []stream.Tuple
			pr.CleanTap = func(tp stream.Tuple) { tapped = append(tapped, tp) }
			pr.KeepClean = true
			var clean []stream.Tuple
			switch mode {
			case "batch":
				res, err := pr.Run(ckptSource(schema, n))
				if err != nil {
					t.Fatal(err)
				}
				clean = res.Clean
			case "streaming":
				src, _, err := pr.RunStream(ckptSource(schema, n), 1)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := stream.Drain(src); err != nil {
					t.Fatal(err)
				}
				// Streaming mode never materialises the clean stream; the
				// tap is its only witness. Compare against a plain prepared
				// run of the same source.
				prep := stream.NewPrepare(ckptSource(schema, n), 1)
				var perr error
				clean, perr = stream.Drain(prep)
				if perr != nil {
					t.Fatal(perr)
				}
			}
			if len(tapped) != n {
				t.Fatalf("tap saw %d tuples, want %d", len(tapped), n)
			}
			for i := range tapped {
				if tapped[i].ID != clean[i].ID {
					t.Fatalf("tap tuple %d has ID %d, clean has %d", i, tapped[i].ID, clean[i].ID)
				}
				for j := 0; j < tapped[i].Len(); j++ {
					if tapped[i].At(j).String() != clean[i].At(j).String() {
						t.Fatalf("tap tuple %d attr %d = %q, clean has %q", i, j, tapped[i].At(j).String(), clean[i].At(j).String())
					}
				}
			}
		})
	}
}
