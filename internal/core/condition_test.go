package core

import (
	"math"
	"testing"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

var condSchema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "bpm", Kind: stream.KindFloat},
	stream.Field{Name: "label", Kind: stream.KindString},
)

func condTuple(ts time.Time, bpm float64, label string) stream.Tuple {
	t := stream.NewTuple(condSchema, []stream.Value{
		stream.Time(ts), stream.Float(bpm), stream.Str(label),
	})
	t.EventTime = ts
	t.Arrival = ts
	return t
}

func TestAlwaysNever(t *testing.T) {
	tp := condTuple(time.Now(), 1, "x")
	if !(Always{}).Eval(tp, tp.EventTime) {
		t.Error("Always false")
	}
	if (Never{}).Eval(tp, tp.EventTime) {
		t.Error("Never true")
	}
	if (Always{}).Describe() != "always" || (Never{}).Describe() != "never" {
		t.Error("describe mismatch")
	}
}

func TestRandomConditionFrequency(t *testing.T) {
	c := NewRandomConst(0.25, rng.New(1))
	tp := condTuple(time.Now(), 1, "x")
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if c.Eval(tp, tp.EventTime) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.25) > 0.01 {
		t.Fatalf("Random(0.25) fired at %g", f)
	}
}

func TestRandomConditionTimeDependent(t *testing.T) {
	// Probability 1 before noon, 0 after.
	p := func(tau time.Time) float64 {
		if tau.Hour() < 12 {
			return 1
		}
		return 0
	}
	c := NewRandom(p, rng.New(2))
	am := condTuple(time.Date(2020, 1, 1, 9, 0, 0, 0, time.UTC), 1, "x")
	pm := condTuple(time.Date(2020, 1, 1, 15, 0, 0, 0, time.UTC), 1, "x")
	for i := 0; i < 100; i++ {
		if !c.Eval(am, am.EventTime) {
			t.Fatal("temporal probability 1 did not fire")
		}
		if c.Eval(pm, pm.EventTime) {
			t.Fatal("temporal probability 0 fired")
		}
	}
}

func TestCompareOps(t *testing.T) {
	tp := condTuple(time.Now(), 120, "hot")
	cases := []struct {
		cond Compare
		want bool
	}{
		{Compare{"bpm", OpGt, stream.Float(100)}, true},
		{Compare{"bpm", OpGt, stream.Float(120)}, false},
		{Compare{"bpm", OpGe, stream.Float(120)}, true},
		{Compare{"bpm", OpLt, stream.Float(200)}, true},
		{Compare{"bpm", OpLe, stream.Float(119)}, false},
		{Compare{"bpm", OpEq, stream.Float(120)}, true},
		{Compare{"bpm", OpNe, stream.Float(120)}, false},
		{Compare{"label", OpEq, stream.Str("hot")}, true},
		{Compare{"label", OpNe, stream.Str("cold")}, true},
		{Compare{"missing", OpEq, stream.Float(1)}, false},
		{Compare{"label", OpGt, stream.Float(1)}, false}, // incomparable
	}
	for i, c := range cases {
		if got := c.cond.Eval(tp, tp.EventTime); got != c.want {
			t.Errorf("case %d (%s): got %v", i, c.cond.Describe(), got)
		}
	}
}

func TestCompareNullSemantics(t *testing.T) {
	tp := condTuple(time.Now(), 1, "x")
	tp.Set("bpm", stream.Null())
	if !(Compare{"bpm", OpEq, stream.Null()}).Eval(tp, tp.EventTime) {
		t.Error("null == null failed")
	}
	if (Compare{"label", OpEq, stream.Null()}).Eval(tp, tp.EventTime) {
		t.Error("non-null == null fired")
	}
	if !(Compare{"label", OpNe, stream.Null()}).Eval(tp, tp.EventTime) {
		t.Error("non-null != null failed")
	}
}

func TestAttrPredicate(t *testing.T) {
	tp := condTuple(time.Now(), 42, "x")
	c := AttrPredicate{Attr: "bpm", Fn: func(v stream.Value) bool {
		f, _ := v.AsFloat()
		return f == 42
	}}
	if !c.Eval(tp, tp.EventTime) {
		t.Error("predicate failed")
	}
	c2 := AttrPredicate{Attr: "nope", Fn: func(stream.Value) bool { return true }}
	if c2.Eval(tp, tp.EventTime) {
		t.Error("predicate on missing attr fired")
	}
}

func TestTimeInterval(t *testing.T) {
	from := time.Date(2016, 2, 27, 0, 0, 0, 0, time.UTC)
	to := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	c := TimeInterval{From: from, To: to}
	tp := condTuple(from, 1, "x")
	if !c.Eval(tp, from) {
		t.Error("inclusive start failed")
	}
	if c.Eval(tp, to) {
		t.Error("exclusive end fired")
	}
	if c.Eval(tp, from.Add(-time.Second)) {
		t.Error("before interval fired")
	}
	open := TimeInterval{From: from}
	if !open.Eval(tp, to.Add(365*24*time.Hour)) {
		t.Error("open-ended interval failed")
	}
	unbounded := TimeInterval{}
	if !unbounded.Eval(tp, time.Unix(0, 0)) {
		t.Error("fully open interval failed")
	}
}

func TestTimeOfDay(t *testing.T) {
	c := TimeOfDay{FromHour: 13, ToHour: 15}
	mk := func(h int) time.Time { return time.Date(2016, 2, 26, h, 30, 0, 0, time.UTC) }
	tp := condTuple(mk(13), 1, "x")
	if !c.Eval(tp, mk(13)) || !c.Eval(tp, mk(14)) {
		t.Error("inside hours failed")
	}
	if c.Eval(tp, mk(12)) || c.Eval(tp, mk(15)) {
		t.Error("outside hours fired")
	}
	wrap := TimeOfDay{FromHour: 22, ToHour: 2}
	if !wrap.Eval(tp, mk(23)) || !wrap.Eval(tp, mk(1)) {
		t.Error("wrapping window failed")
	}
	if wrap.Eval(tp, mk(12)) {
		t.Error("wrapping window fired at noon")
	}
}

func TestCompositeConditions(t *testing.T) {
	tp := condTuple(time.Date(2020, 1, 1, 14, 0, 0, 0, time.UTC), 120, "hot")
	tau := tp.EventTime
	hot := Compare{"label", OpEq, stream.Str("hot")}
	highBPM := Compare{"bpm", OpGt, stream.Float(100)}
	afternoon := TimeOfDay{FromHour: 13, ToHour: 15}

	if !(And{hot, highBPM, afternoon}).Eval(tp, tau) {
		t.Error("And failed")
	}
	if (And{hot, Never{}}).Eval(tp, tau) {
		t.Error("And with Never fired")
	}
	if !(Or{Never{}, hot}).Eval(tp, tau) {
		t.Error("Or failed")
	}
	if (Or{Never{}, Never{}}).Eval(tp, tau) {
		t.Error("Or of Nevers fired")
	}
	if (Not{hot}).Eval(tp, tau) {
		t.Error("Not failed")
	}
	if !(Not{Never{}}).Eval(tp, tau) {
		t.Error("Not Never failed")
	}
	// Empty composites: And fires (vacuous truth), Or does not.
	if !(And{}).Eval(tp, tau) {
		t.Error("empty And should be true")
	}
	if (Or{}).Eval(tp, tau) {
		t.Error("empty Or should be false")
	}
}

func TestDescribeStrings(t *testing.T) {
	c := And{
		Compare{"bpm", OpGt, stream.Float(100)},
		Not{TimeOfDay{FromHour: 0, ToHour: 6}},
	}
	d := c.Describe()
	if d == "" {
		t.Fatal("empty describe")
	}
	// Should mention both sub-conditions.
	if !contains(d, "bpm") || !contains(d, "hour") {
		t.Fatalf("describe lacks parts: %q", d)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestParamHelpers(t *testing.T) {
	if Const(3.5)(time.Now()) != 3.5 {
		t.Error("Const")
	}
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	t1 := t0.Add(10 * time.Hour)
	lin := Linear(t0, t1, 0, 1)
	if lin(t0) != 0 || lin(t1) != 1 {
		t.Error("Linear endpoints")
	}
	if v := lin(t0.Add(5 * time.Hour)); math.Abs(v-0.5) > 1e-9 {
		t.Errorf("Linear midpoint %g", v)
	}
	if lin(t0.Add(-time.Hour)) != 0 || lin(t1.Add(time.Hour)) != 1 {
		t.Error("Linear clamping")
	}
	// Degenerate interval returns v1.
	if Linear(t0, t0, 2, 7)(t0) != 7 {
		t.Error("degenerate Linear")
	}
}

func TestSinusoidDaily(t *testing.T) {
	p := SinusoidDaily(0.25, 0.25)
	midnight := time.Date(2016, 2, 26, 0, 0, 0, 0, time.UTC)
	noon := midnight.Add(12 * time.Hour)
	if v := p(midnight); math.Abs(v-0.5) > 1e-9 {
		t.Errorf("midnight %g, want 0.5", v)
	}
	if v := p(noon); math.Abs(v) > 1e-9 {
		t.Errorf("noon %g, want 0", v)
	}
	six := midnight.Add(6 * time.Hour)
	if v := p(six); math.Abs(v-0.25) > 1e-9 {
		t.Errorf("6am %g, want 0.25", v)
	}
	// Range check across the day.
	for h := 0; h < 24; h++ {
		v := p(midnight.Add(time.Duration(h) * time.Hour))
		if v < -1e-12 || v > 0.5+1e-12 {
			t.Errorf("hour %d out of [0,0.5]: %g", h, v)
		}
	}
}

func TestHourOfDay(t *testing.T) {
	var byHour [24]float64
	byHour[7] = 3
	p := HourOfDay(byHour)
	if p(time.Date(2020, 1, 1, 7, 59, 0, 0, time.UTC)) != 3 {
		t.Error("HourOfDay lookup")
	}
	if p(time.Date(2020, 1, 1, 8, 0, 0, 0, time.UTC)) != 0 {
		t.Error("HourOfDay default")
	}
}

func TestPatterns(t *testing.T) {
	at := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	ab := AbruptPattern{At: at}
	if ab.Weight(at.Add(-time.Second)) != 0 || ab.Weight(at) != 1 {
		t.Error("abrupt pattern")
	}
	inc := IncrementalPattern{From: at, To: at.Add(10 * time.Hour)}
	if inc.Weight(at) != 0 || inc.Weight(at.Add(10*time.Hour)) != 1 {
		t.Error("incremental endpoints")
	}
	if w := inc.Weight(at.Add(5 * time.Hour)); math.Abs(w-0.5) > 1e-9 {
		t.Errorf("incremental midpoint %g", w)
	}
	mid := IntermediatePattern{From: at, To: at.Add(4 * time.Hour)}
	if mid.Weight(at.Add(-time.Second)) != 0 || mid.Weight(at.Add(4*time.Hour)) != 0 {
		t.Error("intermediate outside window")
	}
	if mid.Weight(at.Add(2*time.Hour)) != 1 {
		t.Error("intermediate plateau")
	}
	tri := IntermediatePattern{From: at, To: at.Add(4 * time.Hour), Triangular: true}
	if w := tri.Weight(at.Add(2 * time.Hour)); math.Abs(w-1) > 1e-9 {
		t.Errorf("triangular peak %g", w)
	}
	if w := tri.Weight(at.Add(time.Hour)); math.Abs(w-0.5) > 1e-9 {
		t.Errorf("triangular rise %g", w)
	}
	sc := Scaled(tri, 10)
	if w := sc(at.Add(2 * time.Hour)); math.Abs(w-10) > 1e-9 {
		t.Errorf("scaled %g", w)
	}
}
