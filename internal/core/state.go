package core

import (
	"fmt"
	"math"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// This file implements the paper's first future-work item (§5):
// "extend our model to incorporate time-dependent states of the data
// stream and dependencies between tuple-specific random variables."
//
// StreamState tracks running statistics of the stream as tuples flow
// through a pipeline; stateful conditions consult it, so an error can
// depend on the stream's history (e.g. "pollute when the value deviates
// from the running mean") or on previously injected errors (e.g. bursty
// Markov error processes, error budgets).

// StreamState accumulates per-attribute running statistics and a bounded
// window of recent values. Like other stateful components it belongs to
// one pollution run of one sub-stream; instantiate fresh per run.
type StreamState struct {
	attrs  map[string]*attrState
	window int
	// tuples counts every observed tuple.
	tuples int
	// lastEvent is the most recent observed event time.
	lastEvent time.Time
}

type attrState struct {
	count  int
	mean   float64
	m2     float64 // sum of squared deviations (Welford)
	min    float64
	max    float64
	recent []float64 // ring buffer of the last `window` values
	pos    int
	filled bool
}

// NewStreamState returns a state tracker keeping a recent-value window
// of the given size per attribute (window < 1 disables the window).
func NewStreamState(window int) *StreamState {
	return &StreamState{attrs: make(map[string]*attrState), window: window}
}

// Observe folds one tuple into the state. Observation order equals
// pipeline order; wire it in front of stateful polluters with
// NewObserver.
func (s *StreamState) Observe(t stream.Tuple, tau time.Time) {
	s.tuples++
	s.lastEvent = tau
	schema := t.Schema()
	for i := 0; i < schema.Len(); i++ {
		v, ok := t.At(i).AsFloat()
		if !ok {
			continue
		}
		s.observeValue(schema.Field(i).Name, v)
	}
}

func (s *StreamState) observeValue(attr string, v float64) {
	st := s.attrs[attr]
	if st == nil {
		st = &attrState{min: v, max: v}
		if s.window > 0 {
			st.recent = make([]float64, s.window)
		}
		s.attrs[attr] = st
	}
	st.count++
	delta := v - st.mean
	st.mean += delta / float64(st.count)
	st.m2 += delta * (v - st.mean)
	if v < st.min {
		st.min = v
	}
	if v > st.max {
		st.max = v
	}
	if len(st.recent) > 0 {
		st.recent[st.pos] = v
		st.pos = (st.pos + 1) % len(st.recent)
		if st.pos == 0 {
			st.filled = true
		}
	}
}

// Tuples returns the number of observed tuples.
func (s *StreamState) Tuples() int { return s.tuples }

// Count returns how many numeric values of attr were observed.
func (s *StreamState) Count(attr string) int {
	if st := s.attrs[attr]; st != nil {
		return st.count
	}
	return 0
}

// Mean returns the running mean of attr (ok=false before the first
// observation).
func (s *StreamState) Mean(attr string) (float64, bool) {
	st := s.attrs[attr]
	if st == nil || st.count == 0 {
		return 0, false
	}
	return st.mean, true
}

// Stddev returns the running standard deviation of attr.
func (s *StreamState) Stddev(attr string) (float64, bool) {
	st := s.attrs[attr]
	if st == nil || st.count < 2 {
		return 0, false
	}
	return math.Sqrt(st.m2 / float64(st.count)), true
}

// MinMax returns the observed extremes of attr.
func (s *StreamState) MinMax(attr string) (min, max float64, ok bool) {
	st := s.attrs[attr]
	if st == nil || st.count == 0 {
		return 0, 0, false
	}
	return st.min, st.max, true
}

// Recent returns the windowed recent values of attr, oldest first.
func (s *StreamState) Recent(attr string) []float64 {
	st := s.attrs[attr]
	if st == nil || len(st.recent) == 0 {
		return nil
	}
	if !st.filled {
		return append([]float64(nil), st.recent[:st.pos]...)
	}
	out := make([]float64, 0, len(st.recent))
	out = append(out, st.recent[st.pos:]...)
	out = append(out, st.recent[:st.pos]...)
	return out
}

// Observer is a pass-through polluter that feeds every tuple into a
// StreamState without modifying it. Place it in the pipeline before the
// polluters whose conditions consult the state, so that "history" means
// "tuples seen so far".
type Observer struct {
	State *StreamState
}

// NewObserver wraps state.
func NewObserver(state *StreamState) *Observer { return &Observer{State: state} }

// Name implements Polluter.
func (o *Observer) Name() string { return "state-observer" }

// Pollute implements Polluter (observation only).
func (o *Observer) Pollute(t *stream.Tuple, tau time.Time, _ *Log) {
	o.State.Observe(*t, tau)
}

// DeviationCondition fires when the attribute's current value deviates
// from the running mean by more than Sigmas standard deviations — a
// history-dependent condition impossible to express with per-tuple
// conditions alone. It needs at least MinCount observations before it
// can fire (default 30).
type DeviationCondition struct {
	State    *StreamState
	Attr     string
	Sigmas   float64
	MinCount int
}

// Eval implements Condition.
func (c DeviationCondition) Eval(t stream.Tuple, _ time.Time) bool {
	minCount := c.MinCount
	if minCount == 0 {
		minCount = 30
	}
	if c.State.Count(c.Attr) < minCount {
		return false
	}
	v, ok := t.Get(c.Attr)
	if !ok {
		return false
	}
	f, isNum := v.AsFloat()
	if !isNum {
		return false
	}
	mean, _ := c.State.Mean(c.Attr)
	sd, ok := c.State.Stddev(c.Attr)
	if !ok || sd == 0 {
		return false
	}
	return math.Abs(f-mean) > c.Sigmas*sd
}

// Describe implements Condition.
func (c DeviationCondition) Describe() string {
	return fmt.Sprintf("|%s - mean| > %g sigma", c.Attr, c.Sigmas)
}

// MarkovCondition models bursty errors as a two-state Markov chain
// (Gilbert-Elliott): in the good state errors are off, in the bad state
// they are on; PEnterBad and PExitBad are the per-tuple transition
// probabilities. Consecutive tuples' error indicators are therefore
// dependent random variables — exactly the "dependencies between
// tuple-specific random variables" of the future-work plan.
type MarkovCondition struct {
	PEnterBad float64
	PExitBad  float64
	Rand      *rng.Stream

	bad bool
}

// NewMarkovCondition returns a chain starting in the good state.
func NewMarkovCondition(pEnterBad, pExitBad float64, r *rng.Stream) *MarkovCondition {
	return &MarkovCondition{PEnterBad: pEnterBad, PExitBad: pExitBad, Rand: r}
}

// Eval implements Condition: it advances the chain one step per tuple
// and reports whether the chain is in the bad state.
func (c *MarkovCondition) Eval(stream.Tuple, time.Time) bool {
	if c.bad {
		if c.Rand.Bernoulli(c.PExitBad) {
			c.bad = false
		}
	} else {
		if c.Rand.Bernoulli(c.PEnterBad) {
			c.bad = true
		}
	}
	return c.bad
}

// Describe implements Condition.
func (c *MarkovCondition) Describe() string {
	return fmt.Sprintf("markov(enter=%g, exit=%g)", c.PEnterBad, c.PExitBad)
}

// BudgetCondition fires while fewer than Budget errors were injected by
// the wrapped polluter's log within the sliding event-time window — a
// dependency on the history of *injected errors* rather than data. It
// observes firings through its own bookkeeping: every true evaluation
// counts against the budget.
type BudgetCondition struct {
	Inner  Condition
	Budget int
	Window time.Duration

	firings []time.Time
}

// NewBudgetCondition caps inner's firings at budget per window.
func NewBudgetCondition(inner Condition, budget int, window time.Duration) *BudgetCondition {
	return &BudgetCondition{Inner: inner, Budget: budget, Window: window}
}

// Eval implements Condition.
func (c *BudgetCondition) Eval(t stream.Tuple, tau time.Time) bool {
	// Expire firings outside the window.
	cutoff := tau.Add(-c.Window)
	keep := c.firings[:0]
	for _, f := range c.firings {
		if f.After(cutoff) {
			keep = append(keep, f)
		}
	}
	c.firings = keep
	if len(c.firings) >= c.Budget {
		return false
	}
	if !c.Inner.Eval(t, tau) {
		return false
	}
	c.firings = append(c.firings, tau)
	return true
}

// Describe implements Condition.
func (c *BudgetCondition) Describe() string {
	return fmt.Sprintf("at most %d per %s of (%s)", c.Budget, c.Window, c.Inner.Describe())
}

// CascadeCondition fires for tuples whose predecessor (by tuple ID in
// the same sub-stream) was polluted by the named upstream polluter —
// error propagation from tuple to tuple, as in the motivating scenario's
// dependent sensors. It inspects the sub-stream's shared log, so the
// upstream polluter must run in the same pipeline.
type CascadeCondition struct {
	Log      *Log
	Upstream string

	prevID  uint64
	hasPrev bool
}

// Eval implements Condition: it reports whether the log records an
// upstream hit on the tuple processed immediately before t. Tuple IDs
// grow monotonically within a sub-stream, so scanning the log tail is
// amortised O(1).
func (c *CascadeCondition) Eval(t stream.Tuple, _ time.Time) bool {
	fire := false
	if c.hasPrev {
		for i := len(c.Log.Entries) - 1; i >= 0; i-- {
			e := c.Log.Entries[i]
			if e.TupleID < c.prevID {
				break
			}
			if e.TupleID == c.prevID && e.Polluter == c.Upstream {
				fire = true
				break
			}
		}
	}
	c.prevID = t.ID
	c.hasPrev = true
	return fire
}

// Describe implements Condition.
func (c *CascadeCondition) Describe() string {
	return fmt.Sprintf("previous tuple hit by %q", c.Upstream)
}
