package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// shardedTestSchema is a keyed sensor stream: timestamp, sensor key,
// float measurement.
func shardedTestSchema() *stream.Schema {
	return stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "sensor", Kind: stream.KindString},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
}

// shardedTestSource generates n tuples round-robining over keys sensors.
func shardedTestSource(schema *stream.Schema, n, keys int) stream.Source {
	base := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	return stream.NewGeneratorSource(schema, n, func(i int) stream.Tuple {
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			stream.Str(fmt.Sprintf("sensor-%02d", i%keys)),
			stream.Float(float64(i%97) / 3),
		})
	})
}

// keyedStickyTemporalFactory builds the pipeline of the determinism
// oracle: keyed + sticky + temporal. Every per-key instance derives all
// of its randomness from (seed, key), which is the precondition for the
// byte-identical sharding guarantee.
func keyedStickyTemporalFactory(seed int64) func(shard int) *Pipeline {
	perKey := func(key string) Polluter {
		return NewComposite("per-key", nil,
			NewStandard("noise",
				&GaussianNoise{Stddev: Const(1.5), Rand: rng.Derive(seed, "noise/"+key)},
				NewRandomConst(0.35, rng.Derive(seed, "noise-cond/"+key)), "v"),
			NewStandard("freeze",
				NewFrozenValue(),
				NewSticky(NewRandomConst(0.05, rng.Derive(seed, "sticky/"+key)), 2*time.Hour), "v"),
			NewStandard("delay",
				DelayTuple{Delay: 45 * time.Minute},
				NewRandomConst(0.03, rng.Derive(seed, "delay/"+key)), "v"),
			NewStandard("drop",
				DropTuple{},
				NewRandomConst(0.01, rng.Derive(seed, "drop/"+key)), "v"),
		)
	}
	return func(int) *Pipeline {
		return NewPipeline(NewKeyedPolluter("keyed", "sensor", perKey))
	}
}

// renderTuples serialises a polluted stream losslessly — metadata and
// values — so runs can be compared byte for byte.
func renderTuples(ts []stream.Tuple) string {
	var b strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&b, "%d|%d|%d|%d|%v|%v|", t.ID, t.SubStream,
			t.EventTime.UnixNano(), t.Arrival.UnixNano(), t.Dropped, t.Quarantined)
		for i := 0; i < t.Len(); i++ {
			b.WriteString(t.At(i).String())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func renderLog(l *Log) string {
	if l == nil {
		return "<nil>"
	}
	var b bytes.Buffer
	if err := l.WriteJSON(&b); err != nil {
		return "error: " + err.Error()
	}
	return b.String()
}

// runSharded executes the keyed pipeline with the given shard count and
// returns the rendered output and log.
func runSharded(t *testing.T, seed int64, n, keys, shards, reorder int) (string, string) {
	t.Helper()
	schema := shardedTestSchema()
	factory := keyedStickyTemporalFactory(seed)
	proc := &Process{Pipelines: []*Pipeline{factory(0)}}
	out, log, err := proc.RunStreamSharded(shardedTestSource(schema, n, keys), reorder,
		ShardConfig{KeyAttr: "sensor", Shards: shards, NewPipeline: factory})
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	tuples, err := stream.Drain(out)
	if err != nil {
		t.Fatalf("shards=%d drain: %v", shards, err)
	}
	return renderTuples(tuples), renderLog(log)
}

// TestShardDeterminism is the property test of the sharding guarantee:
// sequential vs 2/4/8-shard runs of a keyed+sticky+temporal pipeline
// produce byte-identical output and pollution logs, for several seeds
// and with and without a reorder window. CI runs it under -race.
func TestShardDeterminism(t *testing.T) {
	const n, keys = 1500, 13
	for _, seed := range []int64{1, 42, 20220601} {
		for _, reorder := range []int{1, 64} {
			wantOut, wantLog := runSharded(t, seed, n, keys, 1, reorder)
			if wantOut == "" || wantLog == "" {
				t.Fatalf("seed %d: sequential run produced nothing", seed)
			}
			for _, shards := range []int{2, 4, 8} {
				gotOut, gotLog := runSharded(t, seed, n, keys, shards, reorder)
				if gotOut != wantOut {
					t.Errorf("seed %d reorder %d: %d-shard output differs from sequential", seed, reorder, shards)
				}
				if gotLog != wantLog {
					t.Errorf("seed %d reorder %d: %d-shard log differs from sequential", seed, reorder, shards)
				}
			}
		}
	}
}

// TestShardedAutoKeyedFactory verifies that a pipeline consisting only
// of KeyedPolluters shards automatically, without an explicit factory.
func TestShardedAutoKeyedFactory(t *testing.T) {
	const n, keys = 600, 7
	seed := int64(7)
	wantOut, wantLog := runSharded(t, seed, n, keys, 1, 1)

	schema := shardedTestSchema()
	proc := &Process{Pipelines: []*Pipeline{keyedStickyTemporalFactory(seed)(0)}}
	out, log, err := proc.RunStreamSharded(shardedTestSource(schema, n, keys), 1,
		ShardConfig{KeyAttr: "sensor", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := stream.Drain(out)
	if err != nil {
		t.Fatal(err)
	}
	if renderTuples(tuples) != wantOut || renderLog(log) != wantLog {
		t.Fatal("auto-sharded keyed pipeline diverged from sequential run")
	}
}

// TestShardedRejectsBadConfig covers the configuration error paths.
func TestShardedRejectsBadConfig(t *testing.T) {
	schema := shardedTestSchema()
	factory := keyedStickyTemporalFactory(1)
	nonKeyed := NewPipeline(NewStandard("noise",
		&GaussianNoise{Stddev: Const(1), Rand: rng.Derive(1, "n")},
		NewRandomConst(0.5, rng.Derive(1, "c")), "v"))

	proc := &Process{Pipelines: []*Pipeline{nonKeyed}}
	if _, _, err := proc.RunStreamSharded(shardedTestSource(schema, 10, 2), 1,
		ShardConfig{KeyAttr: "sensor", Shards: 2}); err == nil {
		t.Fatal("non-keyed pipeline without factory must be rejected")
	}
	proc = &Process{Pipelines: []*Pipeline{factory(0)}}
	if _, _, err := proc.RunStreamSharded(shardedTestSource(schema, 10, 2), 1,
		ShardConfig{Shards: 2, NewPipeline: factory}); err == nil {
		t.Fatal("missing KeyAttr must be rejected")
	}
	if _, _, err := proc.RunStreamSharded(shardedTestSource(schema, 10, 2), 1,
		ShardConfig{KeyAttr: "nope", Shards: 2, NewPipeline: factory}); err == nil {
		t.Fatal("unknown KeyAttr must be rejected")
	}
}

// TestShardedStopReleasesGoroutines exercises early abandonment.
func TestShardedStopReleasesGoroutines(t *testing.T) {
	schema := shardedTestSchema()
	factory := keyedStickyTemporalFactory(3)
	proc := &Process{Pipelines: []*Pipeline{factory(0)}}
	out, _, err := proc.RunStreamSharded(shardedTestSource(schema, 5000, 11), 1,
		ShardConfig{KeyAttr: "sensor", Shards: 4, NewPipeline: factory})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := out.Next(); err != nil {
			t.Fatal(err)
		}
	}
	out.(interface{ Stop() }).Stop()
	if _, err := out.Next(); err != stream.ErrStopped {
		t.Fatalf("Next after Stop = %v, want ErrStopped", err)
	}
}

// panicEvery is a per-key polluter that panics on a deterministic subset
// of tuples — the fault-injection pipeline of the runner-equivalence
// regression test.
type panicEvery struct {
	inner Polluter
	mod   uint64
}

func (p *panicEvery) Name() string { return "panic-every" }

func (p *panicEvery) Pollute(t *stream.Tuple, tau time.Time, log *Log) {
	p.inner.Pollute(t, tau, log)
	if t.ID%p.mod == 0 {
		panic(fmt.Sprintf("injected fault on tuple %d", t.ID))
	}
}

// TestRunnerLogEquivalence is the regression test for the unified
// rollback path: RunStream, RunStreamCheckpointed and RunStreamSharded
// must produce identical polluted output, identical pollution logs
// (with the poisoned tuples' partial entries rolled back), and
// identical dead-letter queues.
func TestRunnerLogEquivalence(t *testing.T) {
	const n, keys = 900, 9
	seed := int64(99)
	schema := shardedTestSchema()
	factory := func(int) *Pipeline {
		perKey := func(key string) Polluter {
			return &panicEvery{
				mod: 41,
				inner: NewStandard("noise",
					&GaussianNoise{Stddev: Const(2), Rand: rng.Derive(seed, "noise/"+key)},
					NewRandomConst(0.5, rng.Derive(seed, "cond/"+key)), "v"),
			}
		}
		return NewPipeline(NewKeyedPolluter("keyed", "sensor", perKey))
	}

	type runOut struct {
		tuples  string
		log     string
		letters []stream.DeadLetter
	}
	run := func(kind string) runOut {
		dlq := stream.NewDeadLetterQueue()
		proc := &Process{
			Pipelines: []*Pipeline{factory(0)},
			Fault:     FaultPolicy{Quarantine: true, DLQ: dlq},
		}
		src := shardedTestSource(schema, n, keys)
		var (
			out stream.Source
			log *Log
			err error
		)
		switch kind {
		case "stream":
			out, log, err = proc.RunStream(src, 1)
		case "checkpointed":
			out, log, _, err = proc.RunStreamCheckpointed(src, nil)
		case "sharded":
			out, log, err = proc.RunStreamSharded(src, 1,
				ShardConfig{KeyAttr: "sensor", Shards: 3, NewPipeline: factory})
		default:
			t.Fatalf("unknown runner %q", kind)
		}
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		tuples, err := stream.Drain(out)
		if err != nil {
			t.Fatalf("%s drain: %v", kind, err)
		}
		return runOut{tuples: renderTuples(tuples), log: renderLog(log), letters: dlq.Letters()}
	}

	want := run("stream")
	if len(want.letters) == 0 {
		t.Fatal("fault pipeline quarantined nothing; test is vacuous")
	}
	if strings.Contains(want.log, "injected fault") {
		t.Fatal("rolled-back entries leaked into the log")
	}
	for _, kind := range []string{"checkpointed", "sharded"} {
		got := run(kind)
		if got.tuples != want.tuples {
			t.Errorf("%s output differs from RunStream", kind)
		}
		if got.log != want.log {
			t.Errorf("%s log differs from RunStream", kind)
		}
		if len(got.letters) != len(want.letters) {
			t.Fatalf("%s quarantined %d tuples, RunStream %d", kind, len(got.letters), len(want.letters))
		}
		for i := range got.letters {
			a, b := got.letters[i], want.letters[i]
			if a.TupleID != b.TupleID || a.Stage != b.Stage || a.Cause != b.Cause {
				t.Errorf("%s dead letter %d differs: %+v vs %+v", kind, i, a, b)
			}
		}
	}
}

// TestShardedFailFastOnPanic verifies that without quarantine a
// panicking pipeline surfaces as a fatal stream error (not a process
// crash) and stops the run promptly.
func TestShardedFailFastOnPanic(t *testing.T) {
	schema := shardedTestSchema()
	factory := func(int) *Pipeline {
		perKey := func(key string) Polluter {
			return &panicEvery{mod: 10, inner: NewStandard("noop", DelayTuple{}, Never{}, "v")}
		}
		return NewPipeline(NewKeyedPolluter("keyed", "sensor", perKey))
	}
	proc := &Process{Pipelines: []*Pipeline{factory(0)}}
	out, _, err := proc.RunStreamSharded(shardedTestSource(schema, 200, 4), 1,
		ShardConfig{KeyAttr: "sensor", Shards: 2, NewPipeline: factory})
	if err != nil {
		t.Fatal(err)
	}
	_, err = stream.Drain(out)
	if err == nil || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("drain = %v, want injected-fault error", err)
	}
	// The error must be sticky.
	if _, err2 := out.Next(); err2 == nil {
		t.Fatal("error was not sticky")
	}
}
