package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"icewafl/internal/obs"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// Differential suite: RunStreamColumnar must be byte-identical to
// RunStream — same emitted tuples (values, metadata, order), same
// pollution-log entries in the same order, same dead letters, and the
// same observability counter totals — across randomised datasets and
// polluter configurations, including NULL/NaN/±Inf cells, empty
// batches, and sticky/temporal state straddling batch boundaries.

// diffSchema is a five-kind schema so every kernel family is exercised.
func diffSchema() *stream.Schema {
	return stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
		stream.Field{Name: "n", Kind: stream.KindInt},
		stream.Field{Name: "cat", Kind: stream.KindString},
		stream.Field{Name: "flag", Kind: stream.KindBool},
		stream.Field{Name: "aux", Kind: stream.KindFloat},
	)
}

// diffSource generates n rows with adversarial cells: NULLs, NaN, ±Inf,
// denormals, empty strings, and an occasional NULL timestamp (zero τ).
func diffSource(s *stream.Schema, seed int64, n int) stream.Source {
	r := rng.Derive(seed, "diff-source")
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	cats := []string{"a", "bb", "ccc", "", "Ω"}
	return stream.NewGeneratorSource(s, n, func(i int) stream.Tuple {
		ts := stream.Value(stream.Time(base.Add(time.Duration(i) * 11 * time.Minute)))
		if r.Intn(29) == 0 {
			ts = stream.Null()
		}
		v := stream.Value(stream.Float(r.Uniform(-100, 100)))
		switch r.Intn(17) {
		case 0:
			v = stream.Null()
		case 1:
			v = stream.Float(math.NaN())
		case 2:
			v = stream.Float(math.Inf(1))
		case 3:
			v = stream.Float(math.Inf(-1))
		case 4:
			v = stream.Float(math.SmallestNonzeroFloat64)
		}
		nv := stream.Value(stream.Int(int64(r.Intn(1000)) - 500))
		if r.Intn(13) == 0 {
			nv = stream.Null()
		}
		cv := stream.Value(stream.Str(cats[r.Intn(len(cats))]))
		if r.Intn(11) == 0 {
			cv = stream.Null()
		}
		return stream.NewTuple(s, []stream.Value{
			ts, v, nv, cv, stream.Bool(r.Bool()), stream.Float(r.Uniform(0, 1)),
		})
	})
}

// renderTuple renders every byte of a tuple that the engine contract
// covers: metadata plus the exact kind/textual form of each cell.
// String comparison is deliberate — it distinguishes -0 from 0, Int(3)
// from Float(3), and renders NaN stably, which Value.Equal cannot
// (NaN != NaN).
func renderTuple(t stream.Tuple) string {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%d sub=%d tau=%s arr=%s drop=%v quar=%v |",
		t.ID, t.SubStream, t.EventTime.Format(time.RFC3339Nano),
		t.Arrival.Format(time.RFC3339Nano), t.Dropped, t.Quarantined)
	for i := 0; i < t.Len(); i++ {
		v := t.At(i)
		fmt.Fprintf(&b, " %d:%s", v.Kind(), v.String())
	}
	return b.String()
}

func renderEntry(e Entry) string {
	return fmt.Sprintf("id=%d sub=%d tau=%s pol=%s err=%s attrs=%v",
		e.TupleID, e.SubStream, e.EventTime.Format(time.RFC3339Nano),
		e.Polluter, e.Error, e.Attrs)
}

// diffCounters are the totals both runners must agree on.
var diffCounters = []obs.CounterID{
	obs.CSourceRows, obs.CSourceErrors, obs.CTuplesIn, obs.CTuplesOut,
	obs.CTuplesDropped, obs.CDeadLetters, obs.CLogEntries,
	obs.CCondHits, obs.CCondMisses,
}

type diffRun struct {
	tuples  []string
	entries []string
	letters []stream.DeadLetter
	counts  map[obs.CounterID]uint64
	spans   []obs.Span
	err     string
}

// runOne executes one runner variant and renders everything comparable.
// build must return a fresh Process and source per call (stateful
// components and RNG streams are consumed by a run).
func runOne(t *testing.T, build func() (*Process, stream.Source), columnar bool, reorder int) diffRun {
	t.Helper()
	proc, src := build()
	reg := obs.NewRegistry()
	// Trace every tuple: the suite asserts span presence on both paths
	// (batch-granular on the vectorised path, per-tuple elsewhere).
	reg.SetTraceSampling(1, 16384)
	proc.Obs = reg
	dlq := stream.NewDeadLetterQueue()
	if proc.Fault.Quarantine {
		proc.Fault.DLQ = dlq
	}
	var (
		out  stream.Source
		log  *Log
		rerr error
	)
	if columnar {
		out, log, rerr = proc.RunStreamColumnar(src, reorder)
	} else {
		out, log, rerr = proc.RunStream(src, reorder)
	}
	if rerr != nil {
		t.Fatalf("run setup (columnar=%v): %v", columnar, rerr)
	}
	var run diffRun
	for {
		tp, err := out.Next()
		if err != nil {
			if !stream.IsEndOfStream(err) {
				run.err = err.Error()
			}
			break
		}
		run.tuples = append(run.tuples, renderTuple(tp))
	}
	if log != nil {
		for _, e := range log.Entries {
			run.entries = append(run.entries, renderEntry(e))
		}
	}
	run.letters = dlq.Letters()
	run.counts = make(map[obs.CounterID]uint64, len(diffCounters))
	for _, id := range diffCounters {
		run.counts[id] = reg.Counter(id)
	}
	run.spans = reg.Spans()
	return run
}

// assertPolluteSpans pins the tracing contract of both engines: any
// non-empty run emits StagePollute spans. Scalar spans are per-tuple
// (Rows == 0); columnar spans are batch-granular on the vectorised
// path (1 <= Rows <= batch) and per-tuple on the row-wise collapse
// path, so a columnar run's rows must sit in [0, batch].
func assertPolluteSpans(t *testing.T, tag string, run diffRun, batch int) {
	t.Helper()
	if run.counts[obs.CTuplesIn] == 0 {
		return
	}
	pollute := 0
	for _, sp := range run.spans {
		if sp.Stage != "pollute" {
			continue
		}
		pollute++
		switch {
		case batch > 0 && (sp.Rows < 0 || sp.Rows > batch):
			t.Fatalf("%s: columnar span rows %d outside [0, %d]", tag, sp.Rows, batch)
		case batch == 0 && sp.Rows != 0:
			t.Fatalf("%s: per-tuple span carries rows %d", tag, sp.Rows)
		}
	}
	if pollute == 0 {
		t.Fatalf("%s: no pollute spans recorded", tag)
	}
}

// assertIdentical runs both engines over fresh builds and compares
// every observable output byte for byte.
func assertIdentical(t *testing.T, name string, build func() (*Process, stream.Source), reorder int) {
	t.Helper()
	want := runOne(t, build, false, reorder)
	for _, batch := range []int{1, 3, 7, 256} {
		got := runOne(t, func() (*Process, stream.Source) {
			proc, src := build()
			proc.Columnar.Batch = batch
			return proc, src
		}, true, reorder)
		tag := fmt.Sprintf("%s/batch=%d", name, batch)
		if len(got.tuples) != len(want.tuples) {
			t.Fatalf("%s: emitted %d tuples, tuple-wise emitted %d", tag, len(got.tuples), len(want.tuples))
		}
		for i := range want.tuples {
			if got.tuples[i] != want.tuples[i] {
				t.Fatalf("%s: tuple %d diverged\ncolumnar:   %s\ntuple-wise: %s", tag, i, got.tuples[i], want.tuples[i])
			}
		}
		if len(got.entries) != len(want.entries) {
			t.Fatalf("%s: log has %d entries, tuple-wise has %d\ncolumnar: %v\ntuple-wise: %v",
				tag, len(got.entries), len(want.entries), got.entries, want.entries)
		}
		for i := range want.entries {
			if got.entries[i] != want.entries[i] {
				t.Fatalf("%s: log entry %d diverged\ncolumnar:   %s\ntuple-wise: %s", tag, i, got.entries[i], want.entries[i])
			}
		}
		if len(got.letters) != len(want.letters) {
			t.Fatalf("%s: %d dead letters, tuple-wise %d", tag, len(got.letters), len(want.letters))
		}
		for i := range want.letters {
			if fmt.Sprintf("%+v", got.letters[i]) != fmt.Sprintf("%+v", want.letters[i]) {
				t.Fatalf("%s: dead letter %d diverged\ncolumnar:   %+v\ntuple-wise: %+v", tag, i, got.letters[i], want.letters[i])
			}
		}
		for _, id := range diffCounters {
			if got.counts[id] != want.counts[id] {
				t.Fatalf("%s: counter %d = %d, tuple-wise %d", tag, id, got.counts[id], want.counts[id])
			}
		}
		if got.err != want.err {
			t.Fatalf("%s: terminal error %q, tuple-wise %q", tag, got.err, want.err)
		}
		assertPolluteSpans(t, tag, got, batch)
	}
	assertPolluteSpans(t, name+"/tuple-wise", want, 0)
}

// vectorisedPipeline covers every kernelised condition and error
// function, with distinct RNG streams so the plan stays polluter-major.
func vectorisedPipeline(seed int64) *Pipeline {
	day1 := time.Date(2021, 6, 1, 6, 0, 0, 0, time.UTC)
	day2 := time.Date(2021, 6, 2, 0, 0, 0, 0, time.UTC)
	return NewPipeline(
		NewStandard("gauss", &GaussianNoise{Stddev: Linear(day1, day2, 0.5, 2), Rand: rng.Derive(seed, "g")},
			NewRandom(Linear(day1, day2, 0.05, 0.4), rng.Derive(seed, "gc")), "v", "aux"),
		NewStandard("umn", &UniformMultNoise{Lo: Const(0.05), Hi: Const(0.2), Rand: rng.Derive(seed, "u")},
			And{TimeInterval{From: day1, To: day2}, NewRandomConst(0.4, rng.Derive(seed, "uc"))}, "v"),
		NewStandard("outlier", &Outlier{Magnitude: Const(5), Rand: rng.Derive(seed, "o")},
			NewRandomConst(0.15, rng.Derive(seed, "oc")), "v", "n"),
		NewStandard("scale", &ScaleByFactor{Factor: Const(0.125)},
			Compare{Attr: "v", Op: OpGt, Value: stream.Float(20)}, "v"),
		NewStandard("offset", Offset{Delta: Const(-3)},
			Compare{Attr: "n", Op: OpLe, Value: stream.Int(0)}, "n"),
		NewStandard("round", RoundPrecision{Digits: 1},
			Or{NewRandomConst(0.2, rng.Derive(seed, "rc")), Compare{Attr: "flag", Op: OpEq, Value: stream.Bool(true)}}, "aux"),
		NewStandard("clamp", Clamp{Lo: -10, Hi: 10}, Always{}, "aux"),
		NewStandard("null", MissingValue{},
			NewRandomConst(0.1, rng.Derive(seed, "nc")), "cat"),
		NewStandard("const", SetConstant{Value: stream.Int(0)},
			Not{Inner: Compare{Attr: "n", Op: OpNe, Value: stream.Null()}}, "n"),
		NewStandard("cat", &IncorrectCategory{Categories: []string{"a", "bb", "ccc"}, Rand: rng.Derive(seed, "cat")},
			NewRandomConst(0.3, rng.Derive(seed, "catc")), "cat"),
		NewStandard("typo", &StringTypo{Rand: rng.Derive(seed, "t")},
			NewRandomConst(0.25, rng.Derive(seed, "tc")), "cat"),
		NewStandard("swap", SwapAttributes{}, NewRandomConst(0.05, rng.Derive(seed, "sc")), "v", "aux"),
		NewStandard("delay", DelayTuple{Delay: 45 * time.Minute},
			NewRandomConst(0.1, rng.Derive(seed, "dc")), "v"),
		NewStandard("drop", DropTuple{}, NewRandomConst(0.05, rng.Derive(seed, "drc")), "v"),
		NewStandard("shift", TimestampShift{Offset: -2 * time.Hour},
			NewRandomConst(0.08, rng.Derive(seed, "shc")), "ts"),
		NewStandard("hold", HoldAndRelease{ReleaseAt: day1.Add(3 * time.Hour)},
			TimeOfDay{FromHour: 1, ToHour: 5}, "v"),
		NewStandard("chain", Chain{Offset{Delta: Const(1)}, RoundPrecision{Digits: 0}},
			NewRandomConst(0.2, rng.Derive(seed, "chc")), "v"),
	)
}

func TestColumnarDiffVectorised(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, -99, 123456789} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			build := func() (*Process, stream.Source) {
				proc := &Process{Pipelines: []*Pipeline{vectorisedPipeline(seed)}}
				return proc, diffSource(diffSchema(), seed, 300)
			}
			// Guard against a vacuous pass: the workload must actually
			// pollute, drop and log before identity means anything.
			ref := runOne(t, build, false, 1)
			if len(ref.entries) == 0 || ref.counts[obs.CCondHits] == 0 ||
				ref.counts[obs.CTuplesDropped] == 0 {
				t.Fatalf("reference run is degenerate: %d entries, %d hits, %d drops",
					len(ref.entries), ref.counts[obs.CCondHits], ref.counts[obs.CTuplesDropped])
			}
			assertIdentical(t, "vectorised", build, 1)
		})
	}
}

// TestColumnarDiffVectorisedPlanIsVectorised pins that the config above
// really compiles polluter-major — otherwise the suite would silently
// compare row-wise against row-wise.
func TestColumnarDiffVectorisedPlanIsVectorised(t *testing.T) {
	steps, reason := compileColumnarPlan(vectorisedPipeline(1), diffSchema(), false)
	if reason != "" {
		t.Fatalf("vectorised pipeline collapsed to row-wise: %s", reason)
	}
	if len(steps) != 17 {
		t.Fatalf("compiled %d steps, want 17", len(steps))
	}
}

// TestColumnarBatchSpanShape pins that the vectorised path traces at
// batch granularity: every pollute span covers 1..batch rows (one span
// per kernel invocation), never the per-tuple shape.
func TestColumnarBatchSpanShape(t *testing.T) {
	const batch = 7
	run := runOne(t, func() (*Process, stream.Source) {
		proc := &Process{Pipelines: []*Pipeline{vectorisedPipeline(42)}}
		proc.Columnar.Batch = batch
		return proc, diffSource(diffSchema(), 42, 100)
	}, true, 1)
	pollute := 0
	for _, sp := range run.spans {
		if sp.Stage != "pollute" {
			continue
		}
		pollute++
		if sp.Rows < 1 || sp.Rows > batch {
			t.Fatalf("vectorised span rows = %d, want 1..%d", sp.Rows, batch)
		}
	}
	if pollute == 0 {
		t.Fatal("vectorised run recorded no batch-granular pollute spans")
	}
}

// Stateful conditions (sticky episodes, Markov bursts, budgets, frozen
// sensors) whose state must straddle batch boundaries — batch sizes 1,
// 3 and 7 force splits inside hold windows.
func statefulPipeline(seed int64) *Pipeline {
	return NewPipeline(
		NewStandard("episode", &ScaleByFactor{Factor: Const(100)},
			NewSticky(NewRandomConst(0.05, rng.Derive(seed, "st")), 4*time.Hour), "v"),
		NewStandard("burst", Offset{Delta: Const(1000)},
			NewMarkovCondition(0.1, 0.3, rng.Derive(seed, "mk")), "n"),
		NewStandard("budget", MissingValue{},
			NewBudgetCondition(NewRandomConst(0.5, rng.Derive(seed, "bd")), 3, 2*time.Hour), "aux"),
		NewStandard("freeze", NewFrozenValue(),
			NewSticky(NewRandomConst(0.03, rng.Derive(seed, "fz")), 6*time.Hour), "cat", "v"),
	)
}

func TestColumnarDiffStatefulAcrossBatches(t *testing.T) {
	for _, seed := range []int64{3, 11, 2024} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			assertIdentical(t, "stateful", func() (*Process, stream.Source) {
				proc := &Process{Pipelines: []*Pipeline{statefulPipeline(seed)}}
				return proc, diffSource(diffSchema(), seed, 250)
			}, 1)
		})
	}
}

// Composites execute as row-major shim steps inside an otherwise
// vectorised plan.
func TestColumnarDiffComposite(t *testing.T) {
	build := func() (*Process, stream.Source) {
		seed := int64(77)
		choice := NewChoice("pick", NewRandomConst(0.5, rng.Derive(seed, "pc")), rng.Derive(seed, "pr"),
			NewStandard("pick-null", MissingValue{}, nil, "v"),
			NewStandard("pick-typo", &StringTypo{Rand: rng.Derive(seed, "pt")}, nil, "cat"),
		)
		weighted := &Composite{
			PolluterName: "weighted",
			Cond:         NewRandomConst(0.4, rng.Derive(seed, "wc")),
			Mode:         ModeWeighted,
			Weights:      []float64{3, 0, 1},
			Rand:         rng.Derive(seed, "wr"),
			Children: []Polluter{
				NewStandard("w-offset", Offset{Delta: Const(9)}, nil, "n"),
				NewStandard("w-dead", DropTuple{}, nil, "v"),
				NewStandard("w-clamp", Clamp{Lo: 0, Hi: 1}, nil, "aux"),
			},
		}
		seq := NewComposite("together", Compare{Attr: "flag", Op: OpEq, Value: stream.Bool(true)},
			NewStandard("s1", &ScaleByFactor{Factor: Const(2)}, nil, "v"),
			NewStandard("s2", RoundPrecision{Digits: 2}, nil, "v"),
		)
		pipe := NewPipeline(
			NewStandard("pre", &GaussianNoise{Stddev: Const(1), Rand: rng.Derive(seed, "g")},
				NewRandomConst(0.3, rng.Derive(seed, "gc")), "v"),
			choice, weighted, seq,
			NewStandard("post", DropTuple{}, NewRandomConst(0.05, rng.Derive(seed, "dr")), "v"),
		)
		return &Process{Pipelines: []*Pipeline{pipe}}, diffSource(diffSchema(), seed, 200)
	}
	assertIdentical(t, "composite", build, 1)
}

// Cascade conditions read the live shared log — the plan must collapse
// to row-wise and still match.
func TestColumnarDiffCascadeCollapses(t *testing.T) {
	seed := int64(5)
	build := func(log *Log) *Pipeline {
		return NewPipeline(
			NewStandard("upstream", MissingValue{}, NewRandomConst(0.2, rng.Derive(seed, "u")), "v"),
			NewStandard("cascade", SetConstant{Value: stream.Str("X")},
				&CascadeCondition{Log: log, Upstream: "upstream"}, "cat"),
		)
	}
	// The cascade condition needs the run's own log, which RunStream
	// creates internally; wire it through a placeholder that the run
	// fills. Instead, exercise collapse detection directly and compare
	// through the deviation/observer pairing below, then assert the
	// compiler's verdict here.
	_, reason := compileColumnarPlan(build(NewLog()), diffSchema(), false)
	if reason == "" {
		t.Fatal("cascade pipeline compiled polluter-major; must collapse to row-wise")
	}
}

// Observer + DeviationCondition need tuple-major ordering; the whole
// plan collapses and output still matches.
func TestColumnarDiffObserverDeviation(t *testing.T) {
	build := func() (*Process, stream.Source) {
		seed := int64(31)
		state := NewStreamState(16)
		pipe := NewPipeline(
			NewObserver(state),
			NewStandard("dev", SetConstant{Value: stream.Float(0)},
				DeviationCondition{State: state, Attr: "v", Sigmas: 1.5, MinCount: 10}, "aux"),
			NewStandard("noise", &GaussianNoise{Stddev: Const(40), Rand: rng.Derive(seed, "g")},
				NewRandomConst(0.3, rng.Derive(seed, "gc")), "v"),
		)
		return &Process{Pipelines: []*Pipeline{pipe}}, diffSource(diffSchema(), seed, 220)
	}
	assertIdentical(t, "observer-deviation", build, 1)
}

// A shared RNG stream across two polluters forces row-wise execution;
// the compiler must detect it and the outputs must still match.
func TestColumnarDiffSharedStreamCollapses(t *testing.T) {
	seed := int64(13)
	mk := func() *Pipeline {
		shared := rng.Derive(seed, "shared")
		return NewPipeline(
			NewStandard("a", &GaussianNoise{Stddev: Const(2), Rand: shared},
				NewRandomConst(0.4, rng.Derive(seed, "ac")), "v"),
			NewStandard("b", &Outlier{Magnitude: Const(3), Rand: shared},
				NewRandomConst(0.4, rng.Derive(seed, "bc")), "aux"),
		)
	}
	if _, reason := compileColumnarPlan(mk(), diffSchema(), false); reason == "" {
		t.Fatal("shared-stream pipeline compiled polluter-major; draws would reorder")
	}
	assertIdentical(t, "shared-stream", func() (*Process, stream.Source) {
		return &Process{Pipelines: []*Pipeline{mk()}}, diffSource(diffSchema(), seed, 180)
	}, 1)
}

// panicOn is an error function that panics for one attribute value —
// the quarantine differential: row-wise fault attribution, log
// rollback and dead letters must match exactly.
type panicOn struct {
	threshold float64
}

func (e panicOn) Apply(t *stream.Tuple, attrs []string, _ time.Time) {
	for _, a := range attrs {
		if v, ok := t.Get(a); ok {
			if f, isNum := v.AsFloat(); isNum && f > e.threshold {
				panic(fmt.Sprintf("value %g over threshold", f))
			}
		}
	}
}

func (panicOn) Kind() string { return "panic_on" }

func TestColumnarDiffQuarantine(t *testing.T) {
	build := func() (*Process, stream.Source) {
		seed := int64(21)
		pipe := NewPipeline(
			NewStandard("noise", &GaussianNoise{Stddev: Const(5), Rand: rng.Derive(seed, "g")},
				NewRandomConst(0.5, rng.Derive(seed, "gc")), "v"),
			NewStandard("boom", panicOn{threshold: 95}, Always{}, "v"),
			NewStandard("drop", DropTuple{}, NewRandomConst(0.05, rng.Derive(seed, "dc")), "v"),
		)
		proc := &Process{
			Pipelines: []*Pipeline{pipe},
			Fault:     FaultPolicy{Quarantine: true},
		}
		return proc, diffSource(diffSchema(), seed, 240)
	}
	assertIdentical(t, "quarantine", build, 1)
}

// Quarantine overflow: the fatal error must surface after the same
// tuples in both engines.
func TestColumnarDiffQuarantineOverflow(t *testing.T) {
	build := func() (*Process, stream.Source) {
		seed := int64(8)
		pipe := NewPipeline(NewStandard("boom", panicOn{threshold: 50}, Always{}, "v"))
		proc := &Process{
			Pipelines: []*Pipeline{pipe},
			Fault:     FaultPolicy{Quarantine: true, MaxQuarantined: 5},
		}
		return proc, diffSource(diffSchema(), seed, 300)
	}
	want := runOne(t, build, false, 1)
	if want.err == "" {
		t.Fatal("workload did not overflow the quarantine cap")
	}
	got := runOne(t, func() (*Process, stream.Source) {
		proc, src := build()
		proc.Columnar.Batch = 7
		return proc, src
	}, true, 1)
	if got.err != want.err {
		t.Fatalf("overflow error diverged\ncolumnar:   %q\ntuple-wise: %q", got.err, want.err)
	}
	if len(got.tuples) != len(want.tuples) {
		t.Fatalf("emitted %d tuples before overflow, tuple-wise %d", len(got.tuples), len(want.tuples))
	}
	for i := range want.tuples {
		if got.tuples[i] != want.tuples[i] {
			t.Fatalf("tuple %d diverged before overflow", i)
		}
	}
	if len(got.entries) != len(want.entries) {
		t.Fatalf("log %d entries, tuple-wise %d", len(got.entries), len(want.entries))
	}
}

// Delays plus a bounded reorder window: arrival mutation and resorting
// must compose identically.
func TestColumnarDiffWithReorder(t *testing.T) {
	build := func() (*Process, stream.Source) {
		seed := int64(63)
		pipe := NewPipeline(
			NewStandard("delay", DelayTuple{Delay: 90 * time.Minute},
				NewRandomConst(0.3, rng.Derive(seed, "dc")), "v"),
			NewStandard("drop", DropTuple{}, NewRandomConst(0.08, rng.Derive(seed, "drc")), "v"),
			NewStandard("hold", HoldAndRelease{ReleaseAt: time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)},
				TimeOfDay{FromHour: 3, ToHour: 9}, "v"),
		)
		return &Process{Pipelines: []*Pipeline{pipe}}, diffSource(diffSchema(), seed, 200)
	}
	assertIdentical(t, "reorder", build, 16)
}

// Empty input: zero batches, zero output, zero log, identical counters.
func TestColumnarDiffEmptyInput(t *testing.T) {
	assertIdentical(t, "empty", func() (*Process, stream.Source) {
		return &Process{Pipelines: []*Pipeline{vectorisedPipeline(9)}}, diffSource(diffSchema(), 9, 0)
	}, 1)
}

// DisableLog: kernels still run, nothing is recorded or counted.
func TestColumnarDiffDisableLog(t *testing.T) {
	assertIdentical(t, "nolog", func() (*Process, stream.Source) {
		proc := &Process{Pipelines: []*Pipeline{vectorisedPipeline(17)}, DisableLog: true}
		return proc, diffSource(diffSchema(), 17, 150)
	}, 1)
}

// tornSource yields tuples then a mid-stream TupleError, then more
// tuples — the pendingErr ordering contract: rows read before the error
// flow first, the error surfaces exactly once, the stream continues.
type tornSource struct {
	inner  stream.Source
	failAt int
	n      int
}

func (s *tornSource) Schema() *stream.Schema { return s.inner.Schema() }

func (s *tornSource) Next() (stream.Tuple, error) {
	if s.n == s.failAt {
		s.n++
		return stream.Tuple{}, &stream.TupleError{Offset: uint64(s.failAt), Stage: "torn", Err: fmt.Errorf("malformed row")}
	}
	s.n++
	return s.inner.Next()
}

func TestColumnarDiffMidStreamTupleError(t *testing.T) {
	build := func() (*Process, stream.Source) {
		seed := int64(4)
		pipe := NewPipeline(NewStandard("noise",
			&GaussianNoise{Stddev: Const(1), Rand: rng.Derive(seed, "g")},
			NewRandomConst(0.5, rng.Derive(seed, "gc")), "v"))
		return &Process{Pipelines: []*Pipeline{pipe}},
			&tornSource{inner: diffSource(diffSchema(), seed, 60), failAt: 23}
	}
	// Drain stops at the error; both engines must deliver the same
	// prefix and the same error text.
	want := runOne(t, build, false, 1)
	if want.err == "" {
		t.Fatal("tuple-wise run did not surface the torn row")
	}
	for _, batch := range []int{1, 5, 64} {
		got := runOne(t, func() (*Process, stream.Source) {
			proc, src := build()
			proc.Columnar.Batch = batch
			return proc, src
		}, true, 1)
		if got.err != want.err {
			t.Fatalf("batch=%d: error %q, tuple-wise %q", batch, got.err, want.err)
		}
		if len(got.tuples) != len(want.tuples) {
			t.Fatalf("batch=%d: %d tuples before error, tuple-wise %d", batch, len(got.tuples), len(want.tuples))
		}
		for i := range want.tuples {
			if got.tuples[i] != want.tuples[i] {
				t.Fatalf("batch=%d: tuple %d diverged before the error", batch, i)
			}
		}
	}
}

// Pool-loan emission must produce the same stream as fresh-buffer
// emission (consumer clones, per the loan contract).
func TestColumnarDiffPooledEmission(t *testing.T) {
	seed := int64(55)
	build := func(pool *stream.TuplePool) (*Process, stream.Source) {
		proc := &Process{Pipelines: []*Pipeline{vectorisedPipeline(seed)}}
		proc.Columnar.Pool = pool
		return proc, diffSource(diffSchema(), seed, 150)
	}
	want := runOne(t, func() (*Process, stream.Source) { return build(nil) }, true, 1)
	got := runOne(t, func() (*Process, stream.Source) {
		return build(stream.NewTuplePoolFor(diffSchema()))
	}, true, 1)
	if len(got.tuples) != len(want.tuples) {
		t.Fatalf("pooled emitted %d tuples, fresh emitted %d", len(got.tuples), len(want.tuples))
	}
	for i := range want.tuples {
		if got.tuples[i] != want.tuples[i] {
			t.Fatalf("tuple %d diverged under pool loan\npooled: %s\nfresh:  %s", i, got.tuples[i], want.tuples[i])
		}
	}
}

// CleanTap must observe the same prepared tuples in the same order.
func TestColumnarDiffCleanTap(t *testing.T) {
	collect := func(columnar bool) []string {
		seed := int64(12)
		proc := &Process{Pipelines: []*Pipeline{vectorisedPipeline(seed)}}
		var seen []string
		proc.CleanTap = func(t stream.Tuple) { seen = append(seen, renderTuple(t)) }
		var (
			out stream.Source
			err error
		)
		if columnar {
			out, _, err = proc.RunStreamColumnar(diffSource(diffSchema(), seed, 80), 1)
		} else {
			out, _, err = proc.RunStream(diffSource(diffSchema(), seed, 80), 1)
		}
		if err != nil {
			panic(err)
		}
		if _, err := stream.Drain(out); err != nil {
			panic(err)
		}
		return seen
	}
	want, got := collect(false), collect(true)
	if len(got) != len(want) {
		t.Fatalf("tap saw %d tuples, tuple-wise %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tap tuple %d diverged\ncolumnar:   %s\ntuple-wise: %s", i, got[i], want[i])
		}
	}
}

// Batch-native ingest: serving the same rows through a
// ColumnBatchReader source must be byte-identical to tuple ingest, for
// both the columnar and the tuple-wise runner.
func TestColumnarDiffBatchNativeIngest(t *testing.T) {
	seed := int64(47)
	batched := func() stream.Source {
		batches, err := stream.BatchColumnar(diffSource(diffSchema(), seed, 230), 37)
		if err != nil {
			t.Fatal(err)
		}
		return stream.NewBatchSliceReader(diffSchema(), batches)
	}
	mkProc := func() *Process {
		return &Process{Pipelines: []*Pipeline{vectorisedPipeline(seed)}}
	}
	want := runOne(t, func() (*Process, stream.Source) {
		return mkProc(), diffSource(diffSchema(), seed, 230)
	}, false, 1)
	for _, batch := range []int{3, 64, 256} {
		got := runOne(t, func() (*Process, stream.Source) {
			proc := mkProc()
			proc.Columnar.Batch = batch
			return proc, batched()
		}, true, 1)
		tag := fmt.Sprintf("native/batch=%d", batch)
		if len(got.tuples) != len(want.tuples) {
			t.Fatalf("%s: %d tuples, want %d", tag, len(got.tuples), len(want.tuples))
		}
		for i := range want.tuples {
			if got.tuples[i] != want.tuples[i] {
				t.Fatalf("%s: tuple %d diverged\nnative: %s\ntuple:  %s", tag, i, got.tuples[i], want.tuples[i])
			}
		}
		if fmt.Sprint(got.entries) != fmt.Sprint(want.entries) {
			t.Fatalf("%s: log diverged", tag)
		}
		for _, id := range diffCounters {
			if got.counts[id] != want.counts[id] {
				t.Fatalf("%s: counter %d = %d, want %d", tag, id, got.counts[id], want.counts[id])
			}
		}
	}
}

// Batch-native emission: draining the runner through ReadBatch must
// deliver exactly the rows Next delivers, with the same counter totals.
func TestColumnarDiffBatchEmission(t *testing.T) {
	for _, name := range []string{"vectorised", "rowwise-quarantine"} {
		name := name
		t.Run(name, func(t *testing.T) {
			seed := int64(29)
			build := func() (*Process, stream.Source) {
				if name == "vectorised" {
					return &Process{Pipelines: []*Pipeline{vectorisedPipeline(seed)}},
						diffSource(diffSchema(), seed, 210)
				}
				pipe := NewPipeline(
					NewStandard("noise", &GaussianNoise{Stddev: Const(5), Rand: rng.Derive(seed, "g")},
						NewRandomConst(0.5, rng.Derive(seed, "gc")), "v"),
					NewStandard("boom", panicOn{threshold: 95}, Always{}, "v"),
				)
				return &Process{Pipelines: []*Pipeline{pipe}, Fault: FaultPolicy{Quarantine: true}},
					diffSource(diffSchema(), seed, 210)
			}
			want := runOne(t, build, true, 1)

			proc, src := build()
			reg := obs.NewRegistry()
			proc.Obs = reg
			if proc.Fault.Quarantine {
				proc.Fault.DLQ = stream.NewDeadLetterQueue()
			}
			out, _, err := proc.RunStreamColumnar(src, 1)
			if err != nil {
				t.Fatal(err)
			}
			cbr, ok := out.(stream.ColumnBatchReader)
			if !ok {
				t.Fatal("columnar runner does not serve batches")
			}
			dst := stream.NewColumnBatch(diffSchema(), 41)
			var got []string
			for {
				dst.Reset()
				n, rerr := cbr.ReadBatch(dst, 41)
				for row := 0; row < n; row++ {
					got = append(got, renderTuple(dst.Row(row)))
				}
				if rerr != nil {
					if !stream.IsEndOfStream(rerr) {
						t.Fatal(rerr)
					}
					break
				}
			}
			if len(got) != len(want.tuples) {
				t.Fatalf("ReadBatch delivered %d rows, Next delivered %d", len(got), len(want.tuples))
			}
			for i := range want.tuples {
				if got[i] != want.tuples[i] {
					t.Fatalf("row %d diverged\nReadBatch: %s\nNext:      %s", i, got[i], want.tuples[i])
				}
			}
			for _, id := range diffCounters {
				if reg.Counter(id) != want.counts[id] {
					t.Fatalf("counter %d = %d via ReadBatch, %d via Next", id, reg.Counter(id), want.counts[id])
				}
			}
		})
	}
}

func TestRunStreamColumnarRejectsMultiPipeline(t *testing.T) {
	proc := &Process{Pipelines: []*Pipeline{NewPipeline(), NewPipeline()}}
	if _, _, err := proc.RunStreamColumnar(diffSource(diffSchema(), 1, 1), 1); err == nil {
		t.Fatal("multi-pipeline columnar run must be rejected")
	}
}
