package core

import (
	"math"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// This file implements the columnar kernel registry: vectorised sweeps
// over ColumnBatch column slices for the built-in conditions and error
// functions. Every kernel is draw-for-draw and byte-for-byte equivalent
// to the scalar implementation it mirrors — the differential suite in
// columnar_diff_test.go and the per-kernel tables in kernel_test.go pin
// that equivalence. A new kernel must not land without its equivalence
// row.
//
// Equivalence rests on three ordering invariants:
//
//   1. Sweeps visit selected rows in ascending row order, which is the
//      order the tuple-wise runner visits them.
//   2. Each RNG stream's draws happen in the same per-row order as the
//      scalar code: boolean combinators narrow the selection exactly as
//      short-circuit evaluation does, and draw-ahead (rng.Stream.Fill)
//      pre-counts draws so filled words map 1:1 onto scalar calls.
//   3. Stateful-but-safe conditions (sticky, Markov, budget) fall back
//      to a per-row shim that evaluates the scalar code over the same
//      selection, so their state advances on exactly the same rows.
//
// Components whose semantics couple rows across pipeline steps (cascade
// conditions, deviation conditions fed by observers, keyed polluters,
// and unknown custom types whose RNG usage cannot be enumerated) are
// not kernelized; the plan compiler collapses the whole pipeline to
// row-wise execution instead (see columnar.go), which is trivially
// equivalent.

// condKernel narrows sel to the rows where the condition holds,
// appending them (ascending) to out and returning it.
type condKernel func(b *stream.ColumnBatch, sel, out stream.Selection) stream.Selection

// errKernel applies an error function to the selected rows of b.
type errKernel func(b *stream.ColumnBatch, sel stream.Selection)

// numCol is the per-attribute accessor of applyNumeric's columnar
// form: dense float/int payloads plus kind tags, with the write-back
// convention of the scalar code (schema-int columns round to Int,
// everything else becomes Float).
type numCol struct {
	col    int
	toInt  bool
	floats []float64
	ints   []int64
	kinds  []stream.Kind
}

// resolveNumCols maps attrs onto schema columns, silently skipping
// unknown names exactly like applyNumeric.
func resolveNumCols(schema *stream.Schema, attrs []string) []numCol {
	cols := make([]numCol, 0, len(attrs))
	for _, a := range attrs {
		i := schema.Index(a)
		if i < 0 {
			continue
		}
		cols = append(cols, numCol{col: i, toInt: schema.Field(i).Kind == stream.KindInt})
	}
	return cols
}

func bindNumCols(b *stream.ColumnBatch, cols []numCol) {
	for i := range cols {
		c := &cols[i]
		c.floats, _ = b.Floats(c.col)
		c.ints, _ = b.Ints(c.col)
		c.kinds = b.Kinds(c.col)
	}
}

// read mirrors Value.AsFloat over the column arrays: floats read
// directly, ints widen, everything else (NULL included) is skipped.
func (c *numCol) read(r int32) (float64, bool) {
	switch c.kinds[r] {
	case stream.KindFloat:
		return c.floats[r], true
	case stream.KindInt:
		return float64(c.ints[r]), true
	}
	return 0, false
}

// write mirrors applyNumeric's output convention.
func (c *numCol) write(r int32, out float64) {
	if c.toInt {
		c.ints[r] = int64(math.Round(out))
		c.kinds[r] = stream.KindInt
		return
	}
	c.floats[r] = out
	c.kinds[r] = stream.KindFloat
}

// ---------------------------------------------------------------------
// Condition kernels.

// compileCond returns a kernel for c, or (nil, false) when c cannot be
// executed in a polluter-major sweep at all (the caller then collapses
// to row-wise execution).
func compileCond(c Condition, schema *stream.Schema) (condKernel, bool) {
	switch v := c.(type) {
	case Always:
		return func(_ *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
			return append(out, sel...)
		}, true
	case Never:
		return func(_ *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
			return out
		}, true
	case *Random:
		return compileRandom(v), true
	case Compare:
		idx := schema.Index(v.Attr)
		if idx < 0 {
			// Get misses: the scalar code never fires.
			return func(_ *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
				return out
			}, true
		}
		return func(b *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
			for _, r := range sel {
				if v.evalValue(b.Value(int(r), idx)) {
					out = append(out, r)
				}
			}
			return out
		}, true
	case AttrPredicate:
		idx := schema.Index(v.Attr)
		if idx < 0 {
			return func(_ *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
				return out
			}, true
		}
		return func(b *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
			for _, r := range sel {
				if v.Fn(b.Value(int(r), idx)) {
					out = append(out, r)
				}
			}
			return out
		}, true
	case TimeInterval:
		return func(b *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
			taus := b.EventTimes()
			for _, r := range sel {
				// Eval ignores the tuple; calling it keeps semantics shared.
				if v.Eval(stream.Tuple{}, taus[r]) {
					out = append(out, r)
				}
			}
			return out
		}, true
	case TimeOfDay:
		return func(b *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
			taus := b.EventTimes()
			for _, r := range sel {
				if v.Eval(stream.Tuple{}, taus[r]) {
					out = append(out, r)
				}
			}
			return out
		}, true
	case And:
		children := make([]condKernel, len(v))
		for i, child := range v {
			k, ok := compileCond(child, schema)
			if !ok {
				return nil, false
			}
			children[i] = k
		}
		scratch := make([]stream.Selection, len(v))
		return func(b *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
			// Child k sweeps only the survivors of children 1..k-1 —
			// exactly the short-circuit draw pattern of the scalar And.
			cur := sel
			for i, k := range children {
				scratch[i] = k(b, cur, scratch[i][:0])
				cur = scratch[i]
			}
			return append(out, cur...)
		}, true
	case Or:
		children := make([]condKernel, len(v))
		for i, child := range v {
			k, ok := compileCond(child, schema)
			if !ok {
				return nil, false
			}
			children[i] = k
		}
		var remaining, rest, hits, acc, accTmp stream.Selection
		return func(b *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
			// Child k only sees rows no earlier child fired for — the
			// scalar Or stops at the first true child per tuple.
			remaining = append(remaining[:0], sel...)
			acc = acc[:0]
			for _, k := range children {
				hits = k(b, remaining, hits[:0])
				if len(hits) == 0 {
					continue
				}
				accTmp = mergeSorted(acc, hits, accTmp[:0])
				acc, accTmp = accTmp, acc
				rest = diffSorted(remaining, hits, rest[:0])
				remaining, rest = rest, remaining
			}
			return append(out, acc...)
		}, true
	case Not:
		inner, ok := compileCond(v.Inner, schema)
		if !ok {
			return nil, false
		}
		var hits stream.Selection
		return func(b *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
			hits = inner(b, sel, hits[:0])
			return diffSorted(sel, hits, out)
		}, true
	case *Sticky, *MarkovCondition, *BudgetCondition:
		// Stateful but row-local: the shim advances their state over
		// exactly the rows the scalar runner would have shown them.
		return condShim(c), true
	case *CascadeCondition, DeviationCondition:
		// Couple rows across pipeline steps (shared log / observer
		// state): only row-wise execution preserves their semantics.
		return nil, false
	default:
		return nil, false
	}
}

// compileRandom is the draw-ahead Bernoulli kernel: pass 1 evaluates
// the probability per row and counts the draws the scalar Bernoulli
// would consume (p ≤ 0 and p ≥ 1 draw nothing), one Fill covers the
// whole sweep, pass 2 compares.
func compileRandom(c *Random) condKernel {
	var ps []float64
	var draws []uint64
	return func(b *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
		taus := b.EventTimes()
		if cap(ps) < len(sel) {
			ps = make([]float64, len(sel))
			draws = make([]uint64, len(sel))
		}
		ps = ps[:len(sel)]
		need := 0
		for k, r := range sel {
			p := c.P(taus[r])
			ps[k] = p
			if p > 0 && p < 1 {
				need++
			}
		}
		draws = draws[:need]
		c.Rand.Fill(draws)
		d := 0
		for k, r := range sel {
			p := ps[k]
			fire := false
			switch {
			case p <= 0:
			case p >= 1:
				fire = true
			default:
				fire = rng.ToFloat64(draws[d]) < p
				d++
			}
			if fire {
				out = append(out, r)
			}
		}
		return out
	}
}

// condShim evaluates a condition per row over a materialised tuple view
// — the generic fallback for conditions without a vectorised kernel.
func condShim(c Condition) condKernel {
	var buf []stream.Value
	return func(b *stream.ColumnBatch, sel, out stream.Selection) stream.Selection {
		taus := b.EventTimes()
		for _, r := range sel {
			t := b.RowInto(buf, int(r))
			buf = t.Values()
			if c.Eval(t, taus[r]) {
				out = append(out, r)
			}
		}
		return out
	}
}

// mergeSorted appends the ascending union of two ascending disjoint
// selections to out.
func mergeSorted(a, b, out stream.Selection) stream.Selection {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// diffSorted appends sel minus hits (both ascending, hits ⊆ sel) to out.
func diffSorted(sel, hits, out stream.Selection) stream.Selection {
	j := 0
	for _, r := range sel {
		if j < len(hits) && hits[j] == r {
			j++
			continue
		}
		out = append(out, r)
	}
	return out
}

// ---------------------------------------------------------------------
// Error-function kernels.

// compileErr returns a kernel applying e to attrs, or (nil, false) when
// e is unknown and the pipeline must collapse to row-wise execution.
// Known stateful error functions without a vectorised form (FrozenValue)
// compile to the per-row shim, which is still polluter-major safe.
func compileErr(e ErrorFunc, attrs []string, schema *stream.Schema) (errKernel, bool) {
	switch v := e.(type) {
	case *GaussianNoise:
		cols := resolveNumCols(schema, attrs)
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			bindNumCols(b, cols)
			taus := b.EventTimes()
			for _, r := range sel {
				sd := v.Stddev(taus[r])
				for i := range cols {
					c := &cols[i]
					if f, ok := c.read(r); ok {
						c.write(r, f+v.Rand.Normal(0, sd))
					}
				}
			}
		}, true
	case *UniformMultNoise:
		cols := resolveNumCols(schema, attrs)
		var draws []uint64
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			bindNumCols(b, cols)
			taus := b.EventTimes()
			// Two unconditional draws per selected row (u, then the coin),
			// drawn ahead for the whole sweep.
			if cap(draws) < 2*len(sel) {
				draws = make([]uint64, 2*len(sel))
			}
			draws = draws[:2*len(sel)]
			v.Rand.Fill(draws)
			for k, r := range sel {
				lo, hi := v.Lo(taus[r]), v.Hi(taus[r])
				if hi < lo {
					lo, hi = hi, lo
				}
				u := lo + (hi-lo)*rng.ToFloat64(draws[2*k])
				up := draws[2*k+1]&1 == 1
				for i := range cols {
					c := &cols[i]
					if f, ok := c.read(r); ok {
						if up {
							c.write(r, f*(1+u))
						} else {
							c.write(r, f*(1-u))
						}
					}
				}
			}
		}, true
	case *Outlier:
		return compileOutlier(v, attrs, schema), true
	case *ScaleByFactor:
		return numericParamKernel(schema, attrs, v.Factor, func(f, p float64) float64 { return f * p }), true
	case Offset:
		return numericParamKernel(schema, attrs, v.Delta, func(f, p float64) float64 { return f + p }), true
	case RoundPrecision:
		pow := math.Pow(10, float64(v.Digits))
		cols := resolveNumCols(schema, attrs)
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			bindNumCols(b, cols)
			for i := range cols {
				c := &cols[i]
				for _, r := range sel {
					if f, ok := c.read(r); ok {
						c.write(r, math.Round(f*pow)/pow)
					}
				}
			}
		}, true
	case Clamp:
		cols := resolveNumCols(schema, attrs)
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			bindNumCols(b, cols)
			for i := range cols {
				c := &cols[i]
				for _, r := range sel {
					if f, ok := c.read(r); ok {
						c.write(r, math.Min(math.Max(f, v.Lo), v.Hi))
					}
				}
			}
		}, true
	case MissingValue:
		idxs := resolveAttrIdx(schema, attrs)
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			for _, col := range idxs {
				kinds := b.Kinds(col)
				for _, r := range sel {
					kinds[r] = stream.KindNull
				}
			}
		}, true
	case SetConstant:
		idxs := resolveAttrIdx(schema, attrs)
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			for _, col := range idxs {
				for _, r := range sel {
					b.SetValue(int(r), col, v.Value)
				}
			}
		}, true
	case *IncorrectCategory:
		idxs := resolveAttrIdx(schema, attrs)
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			for _, r := range sel {
				for _, col := range idxs {
					strs, kinds := b.Strs(col)
					cur := ""
					if kinds[r] == stream.KindString {
						cur = strs[r]
					}
					// Count the categories ≠ cur instead of materialising
					// the scalar code's `others` slice; the pick index maps
					// onto the same category order.
					others := 0
					for _, cat := range v.Categories {
						if cat != cur {
							others++
						}
					}
					if others == 0 {
						continue
					}
					pick := v.Rand.Intn(others)
					for _, cat := range v.Categories {
						if cat == cur {
							continue
						}
						if pick == 0 {
							strs[r] = cat
							kinds[r] = stream.KindString
							break
						}
						pick--
					}
				}
			}
		}, true
	case *StringTypo:
		idxs := resolveAttrIdx(schema, attrs)
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			for _, r := range sel {
				for _, col := range idxs {
					strs, kinds := b.Strs(col)
					if kinds[r] != stream.KindString || len(strs[r]) == 0 {
						continue
					}
					bs := []byte(strs[r])
					switch v.Rand.Intn(3) {
					case 0: // transpose
						if len(bs) >= 2 {
							i := v.Rand.Intn(len(bs) - 1)
							bs[i], bs[i+1] = bs[i+1], bs[i]
						}
					case 1: // drop
						i := v.Rand.Intn(len(bs))
						bs = append(bs[:i], bs[i+1:]...)
					default: // duplicate
						i := v.Rand.Intn(len(bs))
						bs = append(bs[:i+1], bs[i:]...)
					}
					strs[r] = string(bs)
				}
			}
		}, true
	case SwapAttributes:
		if len(attrs) < 2 {
			return func(*stream.ColumnBatch, stream.Selection) {}, true
		}
		i, j := schema.Index(attrs[0]), schema.Index(attrs[1])
		if i < 0 || j < 0 {
			return func(*stream.ColumnBatch, stream.Selection) {}, true
		}
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			for _, r := range sel {
				vi, vj := b.Value(int(r), i), b.Value(int(r), j)
				b.SetValue(int(r), i, vj)
				b.SetValue(int(r), j, vi)
			}
		}, true
	case DelayTuple:
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			arrivals := b.Arrivals()
			for _, r := range sel {
				arrivals[r] = arrivals[r].Add(v.Delay)
			}
		}, true
	case DropTuple:
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			dropped := b.DroppedMask()
			for _, r := range sel {
				dropped[r] = true
			}
		}, true
	case TimestampShift:
		tsIdx := schema.TimestampIndex()
		toInt := schema.Field(tsIdx).Kind == stream.KindInt
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			times, kinds := b.Times(tsIdx)
			ints, _ := b.Ints(tsIdx)
			for _, r := range sel {
				var ts time.Time
				switch kinds[r] {
				case stream.KindTime:
					ts = times[r]
				case stream.KindInt:
					ts = time.Unix(ints[r], 0).UTC()
				default:
					continue
				}
				ts = ts.Add(v.Offset)
				if toInt {
					ints[r] = ts.Unix()
					kinds[r] = stream.KindInt
				} else {
					times[r] = ts
					kinds[r] = stream.KindTime
				}
			}
		}, true
	case HoldAndRelease:
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			arrivals := b.Arrivals()
			for _, r := range sel {
				if arrivals[r].Before(v.ReleaseAt) {
					arrivals[r] = v.ReleaseAt
				}
			}
		}, true
	case *FrozenValue:
		// Stateful but row-local: the shim replays the scalar code over
		// the selected rows in ascending order, which is exactly the
		// order its per-attribute state advances tuple-wise.
		return errShim(v, attrs), true
	case Chain:
		kernels := make([]errKernel, len(v))
		for i, sub := range v {
			k, ok := compileErr(sub, attrs, schema)
			if !ok {
				return nil, false
			}
			kernels[i] = k
		}
		return func(b *stream.ColumnBatch, sel stream.Selection) {
			for _, k := range kernels {
				k(b, sel)
			}
		}, true
	default:
		return nil, false
	}
}

// numericParamKernel is the shared shape of the draw-free numeric error
// functions: one Param evaluation per selected row (exactly as the
// scalar Apply evaluates it once per tuple), then a column-major sweep.
func numericParamKernel(schema *stream.Schema, attrs []string, param Param, apply func(v, p float64) float64) errKernel {
	cols := resolveNumCols(schema, attrs)
	var ps []float64
	return func(b *stream.ColumnBatch, sel stream.Selection) {
		bindNumCols(b, cols)
		taus := b.EventTimes()
		if cap(ps) < len(sel) {
			ps = make([]float64, len(sel))
		}
		ps = ps[:len(sel)]
		for k, r := range sel {
			ps[k] = param(taus[r])
		}
		for i := range cols {
			c := &cols[i]
			for k, r := range sel {
				if f, ok := c.read(r); ok {
					c.write(r, apply(f, ps[k]))
				}
			}
		}
	}
}

// resolveAttrIdx maps attrs onto schema columns, skipping unknown names
// (matching the silent-miss semantics of Tuple.Get/Set).
func resolveAttrIdx(schema *stream.Schema, attrs []string) []int {
	idxs := make([]int, 0, len(attrs))
	for _, a := range attrs {
		if i := schema.Index(a); i >= 0 {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// errShim applies an error function per row through a materialised
// tuple view, folding mutations back into the batch — the generic
// bridge for error functions without a vectorised kernel.
func errShim(e ErrorFunc, attrs []string) errKernel {
	var buf []stream.Value
	return func(b *stream.ColumnBatch, sel stream.Selection) {
		taus := b.EventTimes()
		for _, r := range sel {
			t := b.RowInto(buf, int(r))
			buf = t.Values()
			e.Apply(&t, attrs, taus[r])
			b.SetRow(int(r), t)
		}
	}
}

// ---------------------------------------------------------------------
// RNG-phase analysis.
//
// Polluter-major execution reorders work across pipeline steps, which
// is only draw-order preserving when no rng.Stream is shared between
// two sweep phases. The scanners below enumerate the streams of every
// phase; compileColumnarPlan collapses to row-wise execution when a
// stream appears in more than one phase, or when any component cannot
// be enumerated.

// condPhases returns the RNG streams of each sweep phase of c, mirroring
// the structure compileCond produces. ok=false means c forces row-wise
// execution.
func condPhases(c Condition) (phases [][]*rng.Stream, ok bool) {
	switch v := c.(type) {
	case nil, Always, Never, Compare, AttrPredicate, TimeInterval, TimeOfDay:
		return nil, true
	case *Random:
		return [][]*rng.Stream{{v.Rand}}, true
	case And:
		for _, child := range v {
			cp, cok := condPhases(child)
			if !cok {
				return nil, false
			}
			phases = append(phases, cp...)
		}
		return phases, true
	case Or:
		for _, child := range v {
			cp, cok := condPhases(child)
			if !cok {
				return nil, false
			}
			phases = append(phases, cp...)
		}
		return phases, true
	case Not:
		return condPhases(v.Inner)
	case *Sticky:
		// The shim evaluates the trigger inline, so all of its streams
		// form one phase.
		ss, sok := condStreams(v.Trigger)
		if !sok {
			return nil, false
		}
		if len(ss) > 0 {
			phases = append(phases, ss)
		}
		return phases, true
	case *MarkovCondition:
		return [][]*rng.Stream{{v.Rand}}, true
	case *BudgetCondition:
		ss, sok := condStreams(v.Inner)
		if !sok {
			return nil, false
		}
		if len(ss) > 0 {
			phases = append(phases, ss)
		}
		return phases, true
	default:
		return nil, false
	}
}

// condStreams flattens every stream reachable from c into one phase.
func condStreams(c Condition) ([]*rng.Stream, bool) {
	phases, ok := condPhases(c)
	if !ok {
		return nil, false
	}
	var out []*rng.Stream
	for _, p := range phases {
		out = append(out, p...)
	}
	return out, true
}

// errPhases returns the RNG streams of each sweep phase of e (chains
// sweep element by element, so each element is a phase).
func errPhases(e ErrorFunc) (phases [][]*rng.Stream, ok bool) {
	switch v := e.(type) {
	case nil:
		return nil, true
	case *GaussianNoise:
		return [][]*rng.Stream{{v.Rand}}, true
	case *UniformMultNoise:
		return [][]*rng.Stream{{v.Rand}}, true
	case *IncorrectCategory:
		return [][]*rng.Stream{{v.Rand}}, true
	case *Outlier:
		return [][]*rng.Stream{{v.Rand}}, true
	case *StringTypo:
		return [][]*rng.Stream{{v.Rand}}, true
	case *ScaleByFactor, Offset, RoundPrecision, Clamp, MissingValue,
		SetConstant, SwapAttributes, DelayTuple, DropTuple, TimestampShift,
		HoldAndRelease, *FrozenValue:
		return nil, true
	case Chain:
		for _, sub := range v {
			sp, sok := errPhases(sub)
			if !sok {
				return nil, false
			}
			phases = append(phases, sp...)
		}
		return phases, true
	default:
		return nil, false
	}
}

// errStreams flattens every stream reachable from e into one phase.
func errStreams(e ErrorFunc) ([]*rng.Stream, bool) {
	phases, ok := errPhases(e)
	if !ok {
		return nil, false
	}
	var out []*rng.Stream
	for _, p := range phases {
		out = append(out, p...)
	}
	return out, true
}

// polluterStreams flattens every stream reachable from p into one phase
// (used for polluters that execute as a single row-major shim step).
func polluterStreams(p Polluter) ([]*rng.Stream, bool) {
	switch v := p.(type) {
	case *Standard:
		cs, cok := condStreams(v.Cond)
		if !cok {
			return nil, false
		}
		es, eok := errStreams(v.Err)
		if !eok {
			return nil, false
		}
		return append(cs, es...), true
	case *Composite:
		cs, cok := condStreams(v.Cond)
		if !cok {
			return nil, false
		}
		out := cs
		if v.Rand != nil {
			out = append(out, v.Rand)
		}
		for _, child := range v.Children {
			ps, pok := polluterStreams(child)
			if !pok {
				return nil, false
			}
			out = append(out, ps...)
		}
		return out, true
	default:
		// Observers, keyed polluters, custom polluters: RNG usage and
		// cross-step coupling cannot be enumerated — force row-wise.
		return nil, false
	}
}

// sharesStreams reports whether any stream pointer occurs in more than
// one phase.
func sharesStreams(phases [][]*rng.Stream) bool {
	seen := make(map[*rng.Stream]int, len(phases))
	for pi, phase := range phases {
		for _, s := range phase {
			if s == nil {
				continue
			}
			if prev, dup := seen[s]; dup && prev != pi {
				return true
			}
			seen[s] = pi
		}
	}
	return false
}

// Outlier compiles here (kept with the other draw-ahead kernels for
// readability of the registry switch above).
func compileOutlier(v *Outlier, attrs []string, schema *stream.Schema) errKernel {
	cols := resolveNumCols(schema, attrs)
	var draws []uint64
	return func(b *stream.ColumnBatch, sel stream.Selection) {
		bindNumCols(b, cols)
		taus := b.EventTimes()
		// One unconditional coin per selected row, drawn ahead.
		if cap(draws) < len(sel) {
			draws = make([]uint64, len(sel))
		}
		draws = draws[:len(sel)]
		v.Rand.Fill(draws)
		for k, r := range sel {
			m := v.Magnitude(taus[r])
			neg := draws[k]&1 == 1
			for i := range cols {
				c := &cols[i]
				if f, ok := c.read(r); ok {
					spike := m * math.Max(math.Abs(f), 1)
					if neg {
						c.write(r, f-spike)
					} else {
						c.write(r, f+spike)
					}
				}
			}
		}
	}
}
