// Package core implements Icewafl's pollution model (paper §2): error
// functions, conditions, polluters, composite polluters, pollution
// pipelines, and the three-step pollution process of Algorithm 1.
//
// A polluter p = ⟨e, c, A_p⟩ applies error function e to the attributes
// A_p of a tuple t whenever condition c(t, τ) holds, where τ is the
// pollution-immune event time assigned during preparation. Temporal error
// types arise either natively (delayed tuple, frozen value, timestamp
// error) or by deriving them from static error types through time-varying
// parameters and change patterns.
package core

import (
	"math"
	"time"
)

// Param is a possibly time-dependent scalar parameter of an error function
// or condition. Passing the event time τ to parameters is how derived
// temporal error types are formed from static ones (paper §2.2, Figure 3):
// a static Gaussian-noise error with a constant stddev becomes a temporal
// error when its stddev follows, say, the hour of the day.
type Param func(tau time.Time) float64

// Const returns a parameter fixed at v; using only Const parameters makes
// an error type static.
func Const(v float64) Param {
	return func(time.Time) float64 { return v }
}

// Linear returns a parameter that ramps linearly from v0 at t0 to v1 at
// t1 and clamps outside the interval. It implements Eq. 3/Eq. 4 of the
// paper: π(τ) = π_max · hours(τ−τ0) / hours(τn−τ0) when v0 = 0.
func Linear(t0, t1 time.Time, v0, v1 float64) Param {
	span := t1.Sub(t0).Seconds()
	return func(tau time.Time) float64 {
		if span <= 0 {
			return v1
		}
		frac := tau.Sub(t0).Seconds() / span
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return v0 + (v1-v0)*frac
	}
}

// SinusoidDaily returns the paper's §3.1.1 sinusoidal daily error pattern
// p(t) = amp·cos(π/12 · h(t)) + offset, where h(t) is the (fractional)
// hour of the day of τ. With amp = offset = 0.25 the probability spans
// [0, 0.5] peaking at midnight, the exact configuration of Figure 4.
func SinusoidDaily(amp, offset float64) Param {
	return func(tau time.Time) float64 {
		h := float64(tau.Hour()) + float64(tau.Minute())/60 + float64(tau.Second())/3600
		return amp*math.Cos(math.Pi/12*h) + offset
	}
}

// HourOfDay returns a parameter that looks up one value per hour of the
// day (len(byHour) must be 24), e.g. noise magnitude per hour.
func HourOfDay(byHour [24]float64) Param {
	return func(tau time.Time) float64 { return byHour[tau.Hour()] }
}

// Pattern is a change pattern in the sense of Gama et al. (concept-drift
// survey), mapping event time to a weight in [0, 1] that scales either an
// error magnitude or an activation probability. Figure 3's "applied over
// time" box lists the three shapes implemented here.
type Pattern interface {
	// Weight returns the pattern's intensity at event time tau, in [0, 1].
	Weight(tau time.Time) float64
}

// AbruptPattern switches from 0 to 1 at a single instant — a sudden
// failure such as a sensor breaking.
type AbruptPattern struct {
	At time.Time
}

// Weight implements Pattern.
func (p AbruptPattern) Weight(tau time.Time) float64 {
	if tau.Before(p.At) {
		return 0
	}
	return 1
}

// IncrementalPattern ramps linearly from 0 at From to 1 at To — gradual
// degradation such as progressive mis-calibration.
type IncrementalPattern struct {
	From, To time.Time
}

// Weight implements Pattern.
func (p IncrementalPattern) Weight(tau time.Time) float64 {
	return Linear(p.From, p.To, 0, 1)(tau)
}

// IntermediatePattern is active only inside a window, optionally with a
// triangular rise and fall — a transient disturbance such as a passing
// cloud in the motivating scenario.
type IntermediatePattern struct {
	From, To time.Time
	// Triangular, when set, ramps 0→1→0 across the window instead of
	// holding 1 throughout.
	Triangular bool
}

// Weight implements Pattern.
func (p IntermediatePattern) Weight(tau time.Time) float64 {
	if tau.Before(p.From) || !tau.Before(p.To) {
		return 0
	}
	if !p.Triangular {
		return 1
	}
	span := p.To.Sub(p.From).Seconds()
	frac := tau.Sub(p.From).Seconds() / span
	if frac <= 0.5 {
		return 2 * frac
	}
	return 2 * (1 - frac)
}

// Scaled derives a Param from a Pattern: weight × max.
func Scaled(p Pattern, max float64) Param {
	return func(tau time.Time) float64 { return p.Weight(tau) * max }
}
