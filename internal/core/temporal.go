package core

import (
	"time"

	"icewafl/internal/stream"
)

// This file implements the *native* temporal error types of Figure 3 —
// errors that are temporal by definition rather than derived from a static
// error and a change pattern.

// DelayTuple postpones the delivery of a tuple by a fixed duration. The
// timestamp attribute keeps its original value, so the delayed tuple
// breaks the increasing timestamp order of the merged stream, which is
// exactly how the bad-network scenario (§3.1.3) detects it with the
// values_to_be_increasing expectation.
type DelayTuple struct {
	Delay time.Duration
}

// Apply implements ErrorFunc.
func (e DelayTuple) Apply(t *stream.Tuple, _ []string, _ time.Time) {
	t.Arrival = t.Arrival.Add(e.Delay)
}

// Kind implements ErrorFunc.
func (DelayTuple) Kind() string { return "delayed_tuple" }

// FrozenValue simulates a stuck sensor: once triggered, the targeted
// attributes repeat the value last seen before the freeze. The polluter
// keeps per-attribute state across tuples of its sub-stream, which is why
// pipelines are instantiated fresh per run.
type FrozenValue struct {
	frozen map[string]stream.Value
}

// NewFrozenValue returns a freeze error with empty state.
func NewFrozenValue() *FrozenValue {
	return &FrozenValue{frozen: make(map[string]stream.Value)}
}

// Apply implements ErrorFunc. The first triggered tuple's own value
// becomes the frozen value; subsequent triggers replay it.
func (e *FrozenValue) Apply(t *stream.Tuple, attrs []string, _ time.Time) {
	for _, a := range attrs {
		v, ok := t.Get(a)
		if !ok {
			continue
		}
		if f, held := e.frozen[a]; held {
			t.Set(a, f)
			continue
		}
		e.frozen[a] = v
	}
}

// Thaw clears the frozen state, e.g. when combined with an intermediate
// change pattern via a condition that stops firing.
func (e *FrozenValue) Thaw() { e.frozen = make(map[string]stream.Value) }

// Kind implements ErrorFunc.
func (*FrozenValue) Kind() string { return "frozen_value" }

// TimestampShift pollutes the timestamp *attribute* itself by a constant
// offset while delivery order stays intact — a mis-set device clock. This
// is the "Timestamp Error" of Figure 3.
type TimestampShift struct {
	Offset time.Duration
}

// Apply implements ErrorFunc.
func (e TimestampShift) Apply(t *stream.Tuple, _ []string, _ time.Time) {
	if ts, ok := t.Timestamp(); ok {
		t.SetTimestamp(ts.Add(e.Offset))
	}
}

// Kind implements ErrorFunc.
func (TimestampShift) Kind() string { return "timestamp_shift" }

// DropTuple removes the tuple from the polluted stream (message loss).
// Dropped tuples remain in the pollution log, preserving ground truth.
type DropTuple struct{}

// Apply implements ErrorFunc.
func (DropTuple) Apply(t *stream.Tuple, _ []string, _ time.Time) {
	t.Dropped = true
}

// Kind implements ErrorFunc.
func (DropTuple) Kind() string { return "dropped_tuple" }

// HoldAndRelease simulates a buffering network element: triggered tuples
// are delayed so that they are all delivered at the end of the outage
// window — arrival is pushed to ReleaseAt if it would fall earlier.
type HoldAndRelease struct {
	ReleaseAt time.Time
}

// Apply implements ErrorFunc.
func (e HoldAndRelease) Apply(t *stream.Tuple, _ []string, _ time.Time) {
	if t.Arrival.Before(e.ReleaseAt) {
		t.Arrival = e.ReleaseAt
	}
}

// Kind implements ErrorFunc.
func (HoldAndRelease) Kind() string { return "hold_and_release" }
