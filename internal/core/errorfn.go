package core

import (
	"math"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// ErrorFunc is the error function e of a polluter (paper §2.2): it
// transforms a tuple in place, restricted to the target attributes A_p,
// and receives the event time τ as an additional argument so that derived
// temporal error types can modulate their behaviour over time.
type ErrorFunc interface {
	// Apply mutates the targeted attributes of t.
	Apply(t *stream.Tuple, attrs []string, tau time.Time)
	// Kind returns a stable identifier for pollution logs.
	Kind() string
}

// applyNumeric runs fn over every targeted numeric attribute, leaving
// NULLs and non-numeric values untouched.
func applyNumeric(t *stream.Tuple, attrs []string, fn func(v float64) float64) {
	for _, a := range attrs {
		i := t.Schema().Index(a)
		if i < 0 {
			continue
		}
		v := t.At(i)
		f, ok := v.AsFloat()
		if !ok {
			continue
		}
		out := fn(f)
		if t.Schema().Field(i).Kind == stream.KindInt {
			t.SetAt(i, stream.Int(int64(math.Round(out))))
			continue
		}
		t.SetAt(i, stream.Float(out))
	}
}

// GaussianNoise adds zero-mean Gaussian noise with (possibly
// time-dependent) standard deviation to numeric attributes.
type GaussianNoise struct {
	Stddev Param
	Rand   *rng.Stream
}

// Apply implements ErrorFunc.
func (e *GaussianNoise) Apply(t *stream.Tuple, attrs []string, tau time.Time) {
	sd := e.Stddev(tau)
	applyNumeric(t, attrs, func(v float64) float64 {
		return v + e.Rand.Normal(0, sd)
	})
}

// Kind implements ErrorFunc.
func (*GaussianNoise) Kind() string { return "gaussian_noise" }

// UniformMultNoise applies the paper's §3.2.1 multiplicative uniform
// noise: a factor u is drawn from U(Lo(τ), Hi(τ)) and, depending on a fair
// coin toss, the value is either increased (v·(1+u)) or decreased
// (v·(1−u)). Letting Lo and Hi grow with τ (Eq. 3) yields the temporally
// increasing noise of Figure 6.
type UniformMultNoise struct {
	Lo, Hi Param
	Rand   *rng.Stream
}

// Apply implements ErrorFunc.
func (e *UniformMultNoise) Apply(t *stream.Tuple, attrs []string, tau time.Time) {
	lo, hi := e.Lo(tau), e.Hi(tau)
	if hi < lo {
		lo, hi = hi, lo
	}
	u := e.Rand.Uniform(lo, hi)
	up := e.Rand.Bool()
	applyNumeric(t, attrs, func(v float64) float64 {
		if up {
			return v * (1 + u)
		}
		return v * (1 - u)
	})
}

// Kind implements ErrorFunc.
func (*UniformMultNoise) Kind() string { return "uniform_mult_noise" }

// ScaleByFactor multiplies numeric attributes by a (possibly
// time-dependent) factor. With Factor = Const(0.125) it is the scale
// error of the D_scale pollution scenario (§3.2.1); with Factor =
// Const(100000) it is the km→cm unit error of the software-update
// scenario.
type ScaleByFactor struct {
	Factor Param
}

// Apply implements ErrorFunc.
func (e *ScaleByFactor) Apply(t *stream.Tuple, attrs []string, tau time.Time) {
	f := e.Factor(tau)
	applyNumeric(t, attrs, func(v float64) float64 { return v * f })
}

// Kind implements ErrorFunc.
func (*ScaleByFactor) Kind() string { return "scale_by_factor" }

// MissingValue replaces the targeted attribute values by NULL.
type MissingValue struct{}

// Apply implements ErrorFunc.
func (MissingValue) Apply(t *stream.Tuple, attrs []string, _ time.Time) {
	for _, a := range attrs {
		t.Set(a, stream.Null())
	}
}

// Kind implements ErrorFunc.
func (MissingValue) Kind() string { return "missing_value" }

// SetConstant overwrites the targeted attributes with a fixed value, e.g.
// BPM := 0 in the software-update scenario.
type SetConstant struct {
	Value stream.Value
}

// Apply implements ErrorFunc.
func (e SetConstant) Apply(t *stream.Tuple, attrs []string, _ time.Time) {
	for _, a := range attrs {
		t.Set(a, e.Value)
	}
}

// Kind implements ErrorFunc.
func (SetConstant) Kind() string { return "set_constant" }

// IncorrectCategory replaces a categorical (string) value with a different
// category drawn uniformly from Categories. If the current value is the
// only category, it stays unchanged.
type IncorrectCategory struct {
	Categories []string
	Rand       *rng.Stream
}

// Apply implements ErrorFunc.
func (e *IncorrectCategory) Apply(t *stream.Tuple, attrs []string, _ time.Time) {
	for _, a := range attrs {
		v, ok := t.Get(a)
		if !ok {
			continue
		}
		cur, _ := v.AsString()
		others := make([]string, 0, len(e.Categories))
		for _, c := range e.Categories {
			if c != cur {
				others = append(others, c)
			}
		}
		if len(others) == 0 {
			continue
		}
		t.Set(a, stream.Str(others[e.Rand.Intn(len(others))]))
	}
}

// Kind implements ErrorFunc.
func (*IncorrectCategory) Kind() string { return "incorrect_category" }

// RoundPrecision rounds numeric attributes to the given number of decimal
// digits — the reduced-precision error of the CaloriesBurned attribute in
// the software-update scenario.
type RoundPrecision struct {
	Digits int
}

// Apply implements ErrorFunc.
func (e RoundPrecision) Apply(t *stream.Tuple, attrs []string, _ time.Time) {
	pow := math.Pow(10, float64(e.Digits))
	applyNumeric(t, attrs, func(v float64) float64 {
		return math.Round(v*pow) / pow
	})
}

// Kind implements ErrorFunc.
func (RoundPrecision) Kind() string { return "round_precision" }

// Outlier replaces the value with value + spike, where the spike magnitude
// is Magnitude(τ) times the value's own scale, signed randomly — a point
// anomaly as produced by a glitching sensor.
type Outlier struct {
	Magnitude Param
	Rand      *rng.Stream
}

// Apply implements ErrorFunc.
func (e *Outlier) Apply(t *stream.Tuple, attrs []string, tau time.Time) {
	m := e.Magnitude(tau)
	neg := e.Rand.Bool()
	applyNumeric(t, attrs, func(v float64) float64 {
		spike := m * math.Max(math.Abs(v), 1)
		if neg {
			return v - spike
		}
		return v + spike
	})
}

// Kind implements ErrorFunc.
func (*Outlier) Kind() string { return "outlier" }

// StringTypo corrupts string attributes with a random edit: transposing
// two adjacent characters, dropping a character, or duplicating one.
type StringTypo struct {
	Rand *rng.Stream
}

// Apply implements ErrorFunc.
func (e *StringTypo) Apply(t *stream.Tuple, attrs []string, _ time.Time) {
	for _, a := range attrs {
		v, ok := t.Get(a)
		if !ok {
			continue
		}
		s, isStr := v.AsString()
		if !isStr || len(s) == 0 {
			continue
		}
		b := []byte(s)
		switch e.Rand.Intn(3) {
		case 0: // transpose
			if len(b) >= 2 {
				i := e.Rand.Intn(len(b) - 1)
				b[i], b[i+1] = b[i+1], b[i]
			}
		case 1: // drop
			i := e.Rand.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		default: // duplicate
			i := e.Rand.Intn(len(b))
			b = append(b[:i+1], b[i:]...)
		}
		t.Set(a, stream.Str(string(b)))
	}
}

// Kind implements ErrorFunc.
func (*StringTypo) Kind() string { return "string_typo" }

// SwapAttributes exchanges the values of the first two targeted
// attributes — a classic shifted-column entry error.
type SwapAttributes struct{}

// Apply implements ErrorFunc.
func (SwapAttributes) Apply(t *stream.Tuple, attrs []string, _ time.Time) {
	if len(attrs) < 2 {
		return
	}
	i := t.Schema().Index(attrs[0])
	j := t.Schema().Index(attrs[1])
	if i < 0 || j < 0 {
		return
	}
	vi, vj := t.At(i), t.At(j)
	t.SetAt(i, vj)
	t.SetAt(j, vi)
}

// Kind implements ErrorFunc.
func (SwapAttributes) Kind() string { return "swap_attributes" }

// Offset adds a constant (possibly time-dependent) offset to numeric
// attributes — systematic sensor bias / mis-calibration.
type Offset struct {
	Delta Param
}

// Apply implements ErrorFunc.
func (e Offset) Apply(t *stream.Tuple, attrs []string, tau time.Time) {
	d := e.Delta(tau)
	applyNumeric(t, attrs, func(v float64) float64 { return v + d })
}

// Kind implements ErrorFunc.
func (Offset) Kind() string { return "offset" }

// Clamp limits numeric attributes to [Lo, Hi] — saturation of a sensor's
// measurement range.
type Clamp struct {
	Lo, Hi float64
}

// Apply implements ErrorFunc.
func (e Clamp) Apply(t *stream.Tuple, attrs []string, _ time.Time) {
	applyNumeric(t, attrs, func(v float64) float64 {
		return math.Min(math.Max(v, e.Lo), e.Hi)
	})
}

// Kind implements ErrorFunc.
func (Clamp) Kind() string { return "clamp" }

// Chain applies several error functions in sequence as one error.
type Chain []ErrorFunc

// Apply implements ErrorFunc.
func (c Chain) Apply(t *stream.Tuple, attrs []string, tau time.Time) {
	for _, e := range c {
		e.Apply(t, attrs, tau)
	}
}

// Kind implements ErrorFunc.
func (c Chain) Kind() string {
	out := "chain("
	for i, e := range c {
		if i > 0 {
			out += ","
		}
		out += e.Kind()
	}
	return out + ")"
}
