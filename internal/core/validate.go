package core

import (
	"fmt"
	"sort"

	"icewafl/internal/stream"
)

// ValidateAttrs statically checks a process against a stream schema:
// every attribute a polluter targets (and every key attribute of a keyed
// polluter) must exist. Misspelled attributes would otherwise silently
// no-op — the error functions skip unknown names at runtime by design,
// because sub-streams may legitimately carry different schemas.
func (pr *Process) ValidateAttrs(schema *stream.Schema) error {
	missing := map[string]bool{}
	for _, p := range pr.Pipelines {
		if p == nil {
			continue
		}
		for _, pol := range p.Polluters {
			collectMissing(pol, schema, missing)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	names := make([]string, 0, len(missing))
	for n := range missing {
		names = append(names, n)
	}
	sort.Strings(names)
	return fmt.Errorf("core: polluters target attributes not in the schema: %v", names)
}

func collectMissing(p Polluter, schema *stream.Schema, missing map[string]bool) {
	switch x := p.(type) {
	case *Standard:
		for _, a := range x.Attrs {
			if !schema.Has(a) {
				missing[a] = true
			}
		}
	case *Composite:
		for _, c := range x.Children {
			collectMissing(c, schema, missing)
		}
	case *KeyedPolluter:
		if !schema.Has(x.KeyAttr) {
			missing[x.KeyAttr] = true
		}
		// Instantiate the template once for a throwaway key to inspect
		// the attrs it targets.
		collectMissing(x.New("__validate__"), schema, missing)
	}
}
