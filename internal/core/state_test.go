package core

import (
	"math"
	"testing"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

func TestStreamStateStatistics(t *testing.T) {
	s := NewStreamState(4)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	values := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for i, v := range values {
		tp := errTuple(v, 0, int64(i), "x")
		s.Observe(tp, base.Add(time.Duration(i)*time.Hour))
	}
	if s.Tuples() != 8 || s.Count("x") != 8 {
		t.Fatalf("counts: %d %d", s.Tuples(), s.Count("x"))
	}
	if m, ok := s.Mean("x"); !ok || m != 5 {
		t.Fatalf("mean %g %v", m, ok)
	}
	if sd, ok := s.Stddev("x"); !ok || math.Abs(sd-2) > 1e-9 {
		t.Fatalf("stddev %g", sd)
	}
	if min, max, ok := s.MinMax("x"); !ok || min != 2 || max != 9 {
		t.Fatalf("minmax %g %g", min, max)
	}
	recent := s.Recent("x")
	want := []float64{5, 5, 7, 9}
	if len(recent) != 4 {
		t.Fatalf("recent %v", recent)
	}
	for i := range want {
		if recent[i] != want[i] {
			t.Fatalf("recent %v, want %v", recent, want)
		}
	}
	// Integer attribute tracked too.
	if n := s.Count("n"); n != 8 {
		t.Fatalf("int attr count %d", n)
	}
	// Unknown attribute.
	if _, ok := s.Mean("zzz"); ok {
		t.Fatal("mean of unknown attribute")
	}
	if s.Recent("zzz") != nil {
		t.Fatal("recent of unknown attribute")
	}
}

func TestStreamStatePartialWindow(t *testing.T) {
	s := NewStreamState(10)
	tp := errTuple(1, 0, 0, "x")
	s.Observe(tp, time.Now())
	s.Observe(tp, time.Now())
	if got := s.Recent("x"); len(got) != 2 {
		t.Fatalf("partial window %v", got)
	}
	// Window disabled.
	s2 := NewStreamState(0)
	s2.Observe(tp, time.Now())
	if s2.Recent("x") != nil {
		t.Fatal("window should be disabled")
	}
}

func TestObserverDoesNotModify(t *testing.T) {
	state := NewStreamState(0)
	o := NewObserver(state)
	tp := errTuple(7, 8, 9, "cat")
	orig := tp.Clone()
	o.Pollute(&tp, tp.EventTime, nil)
	if !tp.Equal(orig) {
		t.Fatal("observer modified tuple")
	}
	if state.Tuples() != 1 {
		t.Fatal("observer did not observe")
	}
}

func TestDeviationCondition(t *testing.T) {
	state := NewStreamState(0)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	// Feed 100 values around 10 ± 1.
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		tp := errTuple(r.Normal(10, 1), 0, 0, "")
		state.Observe(tp, base)
	}
	cond := DeviationCondition{State: state, Attr: "x", Sigmas: 3}
	normal := errTuple(10.5, 0, 0, "")
	if cond.Eval(normal, base) {
		t.Fatal("in-range value triggered deviation")
	}
	outlier := errTuple(30, 0, 0, "")
	if !cond.Eval(outlier, base) {
		t.Fatal("outlier not detected")
	}
	// Warm-up gate: before MinCount observations, never fires.
	cold := DeviationCondition{State: NewStreamState(0), Attr: "x", Sigmas: 1}
	if cold.Eval(outlier, base) {
		t.Fatal("deviation fired before warm-up")
	}
	// Null / missing / non-numeric values never fire.
	null := errTuple(1, 0, 0, "")
	null.Set("x", stream.Null())
	if cond.Eval(null, base) {
		t.Fatal("null fired")
	}
	if cond.Describe() == "" {
		t.Fatal("describe")
	}
}

func TestMarkovConditionIsBursty(t *testing.T) {
	c := NewMarkovCondition(0.02, 0.2, rng.New(5))
	tp := errTuple(1, 0, 0, "")
	n := 100000
	active := 0
	bursts := 0
	var burstLens []int
	cur := 0
	for i := 0; i < n; i++ {
		if c.Eval(tp, tp.EventTime) {
			active++
			if cur == 0 {
				bursts++
			}
			cur++
		} else if cur > 0 {
			burstLens = append(burstLens, cur)
			cur = 0
		}
	}
	// Stationary bad-state probability = pEnter / (pEnter + pExit) ≈ 0.0909.
	frac := float64(active) / float64(n)
	if math.Abs(frac-0.0909) > 0.02 {
		t.Fatalf("bad-state fraction %.4f far from 0.091", frac)
	}
	// Mean burst length = 1/pExit = 5.
	sum := 0
	for _, l := range burstLens {
		sum += l
	}
	meanLen := float64(sum) / float64(len(burstLens))
	if math.Abs(meanLen-5) > 1 {
		t.Fatalf("mean burst length %.2f far from 5", meanLen)
	}
	if bursts < 100 {
		t.Fatalf("only %d bursts", bursts)
	}
	if c.Describe() == "" {
		t.Fatal("describe")
	}
}

func TestMarkovErrorsAreDependent(t *testing.T) {
	// Consecutive indicators must be positively correlated — the whole
	// point of modelling dependencies between tuple-specific variables.
	c := NewMarkovCondition(0.05, 0.3, rng.New(6))
	tp := errTuple(1, 0, 0, "")
	n := 50000
	ind := make([]float64, n)
	for i := range ind {
		if c.Eval(tp, tp.EventTime) {
			ind[i] = 1
		}
	}
	mean := 0.0
	for _, v := range ind {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i+1 < n; i++ {
		num += (ind[i] - mean) * (ind[i+1] - mean)
	}
	for i := 0; i < n; i++ {
		den += (ind[i] - mean) * (ind[i] - mean)
	}
	if corr := num / den; corr < 0.3 {
		t.Fatalf("lag-1 correlation %.3f too weak for a bursty process", corr)
	}
}

func TestBudgetCondition(t *testing.T) {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewBudgetCondition(Always{}, 2, time.Hour)
	tp := errTuple(1, 0, 0, "")
	// Within one window only Budget firings pass.
	fired := 0
	for i := 0; i < 10; i++ {
		if c.Eval(tp, base.Add(time.Duration(i)*time.Minute)) {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d within window, want 2", fired)
	}
	// After the window expires the budget refills.
	if !c.Eval(tp, base.Add(2*time.Hour)) {
		t.Fatal("budget did not refill")
	}
	if c.Describe() == "" {
		t.Fatal("describe")
	}
}

func TestCascadeCondition(t *testing.T) {
	s := procSchema()
	log := NewLog()
	upstream := NewStandard("trigger", MissingValue{},
		Compare{"v", OpEq, stream.Float(3)}, "v")
	cascade := &CascadeCondition{Log: log, Upstream: "trigger"}
	downstream := NewStandard("follower", SetConstant{Value: stream.Float(-1)}, cascade, "v")
	pipe := NewPipeline(upstream, downstream)

	prepared, err := stream.Drain(stream.NewPrepare(procSource(s, 8), 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prepared {
		pipe.Apply(&prepared[i], prepared[i].EventTime, log)
	}
	// Tuple 3 is nulled by the trigger; tuple 4 must be cascaded to -1.
	if !prepared[3].MustGet("v").IsNull() {
		t.Fatal("trigger did not fire")
	}
	if !prepared[4].MustGet("v").Equal(stream.Float(-1)) {
		t.Fatalf("cascade did not fire on successor: %v", prepared[4])
	}
	// No other tuple cascaded.
	for i, tp := range prepared {
		if i == 3 || i == 4 {
			continue
		}
		if tp.MustGet("v").Equal(stream.Float(-1)) {
			t.Fatalf("cascade fired on tuple %d", i)
		}
	}
	if cascade.Describe() == "" {
		t.Fatal("describe")
	}
}

func TestStatefulPollutionEndToEnd(t *testing.T) {
	// An observer feeds running statistics; a deviation-gated polluter
	// freezes outliers to the running mean — history-dependent pollution
	// through the standard Process workflow.
	s := procSchema()
	state := NewStreamState(0)
	pipe := NewPipeline(
		NewObserver(state),
		NewStandard("censor outliers", SetConstant{Value: stream.Float(0)},
			DeviationCondition{State: state, Attr: "v", Sigmas: 2, MinCount: 10}, "v"),
	)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	src := stream.NewGeneratorSource(s, 100, func(i int) stream.Tuple {
		v := 10.0
		if i == 70 {
			v = 500 // planted outlier
		}
		return stream.NewTuple(s, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Hour)),
			stream.Float(v + float64(i%5)), // mild variation
		})
	})
	res, err := NewProcess(pipe).Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Polluted[70].MustGet("v").Equal(stream.Float(0)) {
		t.Fatalf("outlier not censored: %v", res.Polluted[70])
	}
	censored := 0
	for _, tp := range res.Polluted {
		if tp.MustGet("v").Equal(stream.Float(0)) {
			censored++
		}
	}
	if censored != 1 {
		t.Fatalf("censored %d tuples, want exactly the planted outlier", censored)
	}
}

func TestKeyedPolluterPerKeyState(t *testing.T) {
	// Frozen-value errors per sensor: each sensor freezes at its own
	// first value — per-key state isolation.
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "sensor", Kind: stream.KindString},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
	keyed := NewKeyedPolluter("freeze-by-sensor", "sensor", func(key string) Polluter {
		return NewStandard("freeze-"+key, NewFrozenValue(), nil, "v")
	})
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	src := stream.NewGeneratorSource(schema, 10, func(i int) stream.Tuple {
		sensor := "A"
		if i%2 == 1 {
			sensor = "B"
		}
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			stream.Str(sensor),
			stream.Float(float64(i)),
		})
	})
	res, err := NewProcess(NewPipeline(keyed)).Run(src)
	if err != nil {
		t.Fatal(err)
	}
	// Sensor A tuples (even i) freeze at 0; sensor B (odd i) at 1.
	for i, tp := range res.Polluted {
		want := 0.0
		if i%2 == 1 {
			want = 1.0
		}
		if got := tp.MustGet("v").MustFloat(); got != want {
			t.Fatalf("tuple %d frozen to %g, want %g", i, got, want)
		}
	}
	keys := keyed.Keys()
	if len(keys) != 2 || keys[0] != "A" || keys[1] != "B" {
		t.Fatalf("keys %v", keys)
	}
	if _, ok := keyed.Instance("A"); !ok {
		t.Fatal("instance lookup failed")
	}
	if _, ok := keyed.Instance("Z"); ok {
		t.Fatal("phantom instance")
	}
	if keyed.String() == "" {
		t.Fatal("string")
	}
}

func TestKeyedPolluterMissingKeyAttr(t *testing.T) {
	keyed := NewKeyedPolluter("k", "nope", func(string) Polluter {
		return NewStandard("x", MissingValue{}, nil, "v")
	})
	s := procSchema()
	tuples, _ := stream.Drain(stream.NewPrepare(procSource(s, 1), 1))
	keyed.Pollute(&tuples[0], tuples[0].EventTime, nil)
	if tuples[0].MustGet("v").IsNull() {
		t.Fatal("polluted despite missing key attribute")
	}
	if len(keyed.Keys()) != 0 {
		t.Fatal("instance created for missing key")
	}
}
