package core

import (
	"bytes"
	"testing"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

func procSchema() *stream.Schema {
	return stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
}

func procSource(s *stream.Schema, n int) stream.Source {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	return stream.NewGeneratorSource(s, n, func(i int) stream.Tuple {
		return stream.NewTuple(s, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Hour)),
			stream.Float(float64(i)),
		})
	})
}

func TestStandardPolluterConditionGating(t *testing.T) {
	s := procSchema()
	p := NewStandard("null-v", MissingValue{},
		Compare{"v", OpGe, stream.Float(5)}, "v")
	proc := NewProcess(NewPipeline(p))
	res, err := proc.Run(procSource(s, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clean) != 10 || len(res.Polluted) != 10 {
		t.Fatalf("sizes: clean %d polluted %d", len(res.Clean), len(res.Polluted))
	}
	nulls := 0
	for _, tp := range res.Polluted {
		if tp.MustGet("v").IsNull() {
			nulls++
		}
	}
	if nulls != 5 {
		t.Fatalf("polluted %d tuples, want 5", nulls)
	}
	if res.Log.Len() != 5 {
		t.Fatalf("log has %d entries, want 5", res.Log.Len())
	}
	// Clean stream untouched.
	for i, tp := range res.Clean {
		if !tp.MustGet("v").Equal(stream.Float(float64(i))) {
			t.Fatalf("clean stream mutated at %d", i)
		}
	}
}

func TestPipelineAppliesInOrder(t *testing.T) {
	s := procSchema()
	pipe := NewPipeline(
		NewStandard("scale", &ScaleByFactor{Factor: Const(2)}, nil, "v"),
		NewStandard("offset", Offset{Delta: Const(1)}, nil, "v"),
	)
	res, err := NewProcess(pipe).Run(procSource(s, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range res.Polluted {
		want := float64(i)*2 + 1
		if got := tp.MustGet("v").MustFloat(); got != want {
			t.Fatalf("tuple %d: got %g want %g", i, got, want)
		}
	}
}

func TestCompositeSequenceSharedCondition(t *testing.T) {
	s := procSchema()
	// Children fire only when the parent's condition holds.
	comp := NewComposite("update",
		Compare{"v", OpGe, stream.Float(8)},
		NewStandard("a", Offset{Delta: Const(100)}, nil, "v"),
		NewStandard("b", &ScaleByFactor{Factor: Const(2)}, nil, "v"),
	)
	res, err := NewProcess(NewPipeline(comp)).Run(procSource(s, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range res.Polluted {
		want := float64(i)
		if i >= 8 {
			want = (want + 100) * 2
		}
		if got := tp.MustGet("v").MustFloat(); got != want {
			t.Fatalf("tuple %d: got %g want %g", i, got, want)
		}
	}
	byPolluter := res.Log.CountByPolluter()
	if byPolluter["a"] != 2 || byPolluter["b"] != 2 {
		t.Fatalf("log counts: %v", byPolluter)
	}
}

func TestCompositeChoiceIsMutuallyExclusive(t *testing.T) {
	s := procSchema()
	choice := NewChoice("either", nil, rng.New(7),
		NewStandard("plus", Offset{Delta: Const(1000)}, nil, "v"),
		NewStandard("minus", Offset{Delta: Const(-1000)}, nil, "v"),
	)
	res, err := NewProcess(NewPipeline(choice)).Run(procSource(s, 200))
	if err != nil {
		t.Fatal(err)
	}
	plus, minus := 0, 0
	for i, tp := range res.Polluted {
		switch tp.MustGet("v").MustFloat() {
		case float64(i) + 1000:
			plus++
		case float64(i) - 1000:
			minus++
		default:
			t.Fatalf("tuple %d hit both or neither child: %v", i, tp)
		}
	}
	if plus+minus != 200 || plus < 60 || minus < 60 {
		t.Fatalf("choice split %d/%d", plus, minus)
	}
}

func TestCompositeWeighted(t *testing.T) {
	s := procSchema()
	comp := &Composite{
		PolluterName: "weighted",
		Cond:         Always{},
		Mode:         ModeWeighted,
		Weights:      []float64{0.9, 0.1},
		Rand:         rng.New(8),
		Children: []Polluter{
			NewStandard("often", Offset{Delta: Const(1000)}, nil, "v"),
			NewStandard("rarely", Offset{Delta: Const(-1000)}, nil, "v"),
		},
	}
	res, err := NewProcess(NewPipeline(comp)).Run(procSource(s, 1000))
	if err != nil {
		t.Fatal(err)
	}
	often := 0
	for i, tp := range res.Polluted {
		if tp.MustGet("v").MustFloat() == float64(i)+1000 {
			often++
		}
	}
	if often < 850 || often > 950 {
		t.Fatalf("weighted selection picked 'often' %d/1000", often)
	}
}

func TestNestedComposite(t *testing.T) {
	// Mirrors the Figure 5 shape: composite gating a composite.
	s := procSchema()
	inner := NewComposite("bpm-fix",
		Compare{"v", OpGt, stream.Float(7)},
		NewStandard("zero", SetConstant{Value: stream.Float(0)}, nil, "v"),
	)
	outer := NewComposite("update",
		Compare{"v", OpGe, stream.Float(5)},
		NewStandard("offset", Offset{Delta: Const(0.5)}, nil, "v"),
		inner,
	)
	res, err := NewProcess(NewPipeline(outer)).Run(procSource(s, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range res.Polluted {
		v := tp.MustGet("v").MustFloat()
		switch {
		case i < 5 && v != float64(i):
			t.Fatalf("tuple %d polluted outside gate: %g", i, v)
		case i >= 5 && i+0 < 8 && v != float64(i)+0.5:
			// offset applies, inner gate (v>7 after offset: 5.5,6.5,7.5…)
			// for i=7, v=7.5 > 7 → zeroed; handled below.
			if i != 7 {
				t.Fatalf("tuple %d: %g", i, v)
			}
		case i >= 8 && v != 0:
			t.Fatalf("tuple %d should be zeroed, got %g", i, v)
		}
	}
}

func TestProcessMultiplePipelinesOverlap(t *testing.T) {
	s := procSchema()
	p1 := NewPipeline(NewStandard("a", Offset{Delta: Const(100)}, nil, "v"))
	p2 := NewPipeline(NewStandard("b", Offset{Delta: Const(-100)}, nil, "v"))
	proc := &Process{
		Pipelines: []*Pipeline{p1, p2},
		Route:     stream.RouteAll,
		KeepClean: true,
	}
	res, err := proc.Run(procSource(s, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Full overlap: every input tuple appears once per sub-stream.
	if len(res.Polluted) != 8 {
		t.Fatalf("polluted size %d, want 8", len(res.Polluted))
	}
	perSub := map[int]int{}
	for _, tp := range res.Polluted {
		perSub[tp.SubStream]++
	}
	if perSub[0] != 4 || perSub[1] != 4 {
		t.Fatalf("per-substream counts: %v", perSub)
	}
	// Same ID appears in both sub-streams — the "fuzzy duplicates" of
	// §2.2.2.
	seen := map[uint64]int{}
	for _, tp := range res.Polluted {
		seen[tp.ID]++
	}
	for id, n := range seen {
		if n != 2 {
			t.Fatalf("tuple %d appears %d times", id, n)
		}
	}
}

func TestProcessRoundRobinPartition(t *testing.T) {
	s := procSchema()
	p1 := NewPipeline(NewStandard("a", Offset{Delta: Const(1000)}, nil, "v"))
	p2 := NewPipeline() // empty pipeline: pass-through
	proc := &Process{
		Pipelines: []*Pipeline{p1, p2},
		Route:     stream.RouteRoundRobin(),
		KeepClean: true,
	}
	res, err := proc.Run(procSource(s, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Polluted) != 10 {
		t.Fatalf("partitioned size %d", len(res.Polluted))
	}
	polluted := 0
	for _, tp := range res.Polluted {
		if tp.MustGet("v").MustFloat() >= 1000 {
			polluted++
		}
	}
	if polluted != 5 {
		t.Fatalf("polluted %d, want 5", polluted)
	}
}

func TestProcessParallelMatchesSequential(t *testing.T) {
	s := procSchema()
	build := func(parallel bool) *Result {
		mk := func(name string, seed int64) *Pipeline {
			return NewPipeline(NewStandard(name,
				&GaussianNoise{Stddev: Const(1), Rand: rng.Derive(seed, name)},
				NewRandomConst(0.5, rng.Derive(seed, name+"-cond")), "v"))
		}
		proc := &Process{
			Pipelines: []*Pipeline{mk("p0", 42), mk("p1", 42)},
			Route:     stream.RouteRoundRobin(),
			Parallel:  parallel,
			KeepClean: true,
		}
		res, err := proc.Run(procSource(s, 200))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := build(false)
	par := build(true)
	if len(seq.Polluted) != len(par.Polluted) {
		t.Fatalf("sizes differ: %d vs %d", len(seq.Polluted), len(par.Polluted))
	}
	for i := range seq.Polluted {
		if !seq.Polluted[i].Equal(par.Polluted[i]) {
			t.Fatalf("tuple %d differs between sequential and parallel", i)
		}
	}
	if seq.Log.Len() != par.Log.Len() {
		t.Fatalf("log sizes differ: %d vs %d", seq.Log.Len(), par.Log.Len())
	}
}

func TestProcessDeterministicAcrossRuns(t *testing.T) {
	s := procSchema()
	run := func() *Result {
		pipe := NewPipeline(NewStandard("noise",
			&GaussianNoise{Stddev: Const(2), Rand: rng.Derive(123, "noise")},
			NewRandomConst(0.3, rng.Derive(123, "cond")), "v"))
		res, err := NewProcess(pipe).Run(procSource(s, 500))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Polluted {
		if !a.Polluted[i].Equal(b.Polluted[i]) {
			t.Fatalf("same seed diverged at tuple %d", i)
		}
	}
}

func TestProcessDroppedTuples(t *testing.T) {
	s := procSchema()
	pipe := NewPipeline(NewStandard("drop", DropTuple{},
		Compare{"v", OpLt, stream.Float(3)}, "v"))
	res, err := NewProcess(pipe).Run(procSource(s, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedTuples != 3 {
		t.Fatalf("dropped %d, want 3", res.DroppedTuples)
	}
	if len(res.Polluted) != 7 {
		t.Fatalf("polluted size %d, want 7", len(res.Polluted))
	}
	if res.Log.Len() != 3 {
		t.Fatalf("drops must stay in the log, got %d entries", res.Log.Len())
	}
}

func TestProcessDelayReordersOutput(t *testing.T) {
	s := procSchema()
	pipe := NewPipeline(NewStandard("delay", DelayTuple{Delay: 150 * time.Minute},
		Compare{"v", OpEq, stream.Float(2)}, "v"))
	res, err := NewProcess(pipe).Run(procSource(s, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Tuple 2 is delayed 2.5h: arrival 04:30, lands between tuples 4 and 5.
	var order []float64
	for _, tp := range res.Polluted {
		order = append(order, tp.MustGet("v").MustFloat())
	}
	want := []float64{0, 1, 3, 4, 2, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestProcessErrors(t *testing.T) {
	s := procSchema()
	if _, err := (&Process{}).Run(procSource(s, 1)); err == nil {
		t.Error("no pipelines accepted")
	}
	if _, err := (&Process{Pipelines: []*Pipeline{nil}}).Run(procSource(s, 1)); err == nil {
		t.Error("nil pipeline accepted")
	}
}

func TestRunStreamMatchesBatch(t *testing.T) {
	s := procSchema()
	mkPipe := func() *Pipeline {
		return NewPipeline(NewStandard("noise",
			&GaussianNoise{Stddev: Const(1), Rand: rng.Derive(5, "n")},
			NewRandomConst(0.5, rng.Derive(5, "c")), "v"))
	}
	batch, err := NewProcess(mkPipe()).Run(procSource(s, 100))
	if err != nil {
		t.Fatal(err)
	}
	proc := NewProcess(mkPipe())
	out, log, err := proc.RunStream(procSource(s, 100), 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := stream.Drain(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch.Polluted) {
		t.Fatalf("sizes differ: %d vs %d", len(streamed), len(batch.Polluted))
	}
	for i := range streamed {
		if !streamed[i].Equal(batch.Polluted[i]) {
			t.Fatalf("tuple %d differs between streaming and batch", i)
		}
	}
	if log.Len() != batch.Log.Len() {
		t.Fatalf("logs differ: %d vs %d", log.Len(), batch.Log.Len())
	}
}

func TestRunStreamRejectsMultiplePipelines(t *testing.T) {
	proc := &Process{Pipelines: []*Pipeline{NewPipeline(), NewPipeline()}}
	if _, _, err := proc.RunStream(procSource(procSchema(), 1), 1); err == nil {
		t.Fatal("streaming mode accepted m > 1")
	}
}

func TestLogQueriesAndSerialisation(t *testing.T) {
	l := NewLog()
	base := time.Date(2020, 1, 1, 5, 0, 0, 0, time.UTC)
	l.Record(Entry{TupleID: 1, EventTime: base, Polluter: "a", Error: "missing_value", Attrs: []string{"x"}})
	l.Record(Entry{TupleID: 1, EventTime: base, Polluter: "b", Error: "offset"})
	l.Record(Entry{TupleID: 2, EventTime: base.Add(time.Hour), Polluter: "a", Error: "missing_value"})
	if l.Len() != 3 {
		t.Fatal("len")
	}
	if n := len(l.PollutedTuples()); n != 2 {
		t.Fatalf("polluted tuples %d", n)
	}
	if c := l.CountByPolluter(); c["a"] != 2 || c["b"] != 1 {
		t.Fatalf("by polluter %v", c)
	}
	if c := l.CountByError(); c["missing_value"] != 2 {
		t.Fatalf("by error %v", c)
	}
	hours := l.CountByHour()
	if hours[5] != 2 || hours[6] != 1 {
		t.Fatalf("by hour %v", hours)
	}
	if got := l.ForTuple(1); len(got) != 2 || got[0].Polluter != "a" {
		t.Fatalf("for tuple %v", got)
	}

	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLogJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 || back.Entries[0].Polluter != "a" {
		t.Fatalf("round trip: %+v", back.Entries)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	s := procSchema()
	p := NewStandard("x", MissingValue{}, nil, "v")
	tp, _ := stream.Drain(stream.NewPrepare(procSource(s, 1), 1))
	p.Pollute(&tp[0], tp[0].EventTime, nil) // must not panic
	if !tp[0].MustGet("v").IsNull() {
		t.Fatal("pollution skipped with nil log")
	}
}

func TestRunStreamMultiMatchesBatch(t *testing.T) {
	s := procSchema()
	mk := func() []*Pipeline {
		return []*Pipeline{
			NewPipeline(NewStandard("a",
				&GaussianNoise{Stddev: Const(1), Rand: rng.Derive(11, "a")},
				NewRandomConst(0.5, rng.Derive(11, "ac")), "v")),
			NewPipeline(NewStandard("b", Offset{Delta: Const(100)}, nil, "v")),
		}
	}
	batchProc := &Process{Pipelines: mk(), Route: stream.RouteRoundRobin(), KeepClean: false}
	batch, err := batchProc.Run(procSource(s, 200))
	if err != nil {
		t.Fatal(err)
	}
	streamProc := &Process{Pipelines: mk(), Route: stream.RouteRoundRobin()}
	out, log, err := streamProc.RunStreamMulti(procSource(s, 200), 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := stream.Drain(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch.Polluted) {
		t.Fatalf("sizes: %d vs %d", len(streamed), len(batch.Polluted))
	}
	for i := range streamed {
		if !streamed[i].Equal(batch.Polluted[i]) {
			t.Fatalf("tuple %d differs: %v vs %v", i, streamed[i], batch.Polluted[i])
		}
		if streamed[i].SubStream != batch.Polluted[i].SubStream {
			t.Fatalf("tuple %d substream differs", i)
		}
	}
	if log.Len() != batch.Log.Len() {
		t.Fatalf("log sizes: %d vs %d", log.Len(), batch.Log.Len())
	}
	// Sub-stream ids recorded in the log.
	subSeen := map[int]bool{}
	for _, e := range log.Entries {
		subSeen[e.SubStream] = true
	}
	if !subSeen[0] && !subSeen[1] {
		t.Fatalf("log lacks substream ids: %v", subSeen)
	}
}

func TestRunStreamMultiWithOverlapAndDelay(t *testing.T) {
	s := procSchema()
	pipes := []*Pipeline{
		NewPipeline(NewStandard("delay", DelayTuple{Delay: 2 * time.Hour},
			Compare{"v", OpEq, stream.Float(3)}, "v")),
		NewPipeline(), // pass-through copy
	}
	proc := &Process{Pipelines: pipes, Route: stream.RouteAll}
	out, _, err := proc.RunStreamMulti(procSource(s, 10), 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.Drain(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 { // full overlap duplicates every tuple
		t.Fatalf("%d tuples", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Arrival.Before(got[i-1].Arrival) {
			t.Fatalf("merged stream out of order at %d", i)
		}
	}
}

func TestRunStreamMultiNoPipelines(t *testing.T) {
	proc := &Process{}
	if _, _, err := proc.RunStreamMulti(procSource(procSchema(), 1), 1); err == nil {
		t.Fatal("empty process accepted")
	}
}

func TestValidateAttrs(t *testing.T) {
	s := procSchema()
	good := NewProcess(NewPipeline(
		NewStandard("a", MissingValue{}, nil, "v"),
		NewComposite("c", nil,
			NewStandard("b", Offset{Delta: Const(1)}, nil, "v"),
		),
	))
	if err := good.ValidateAttrs(s); err != nil {
		t.Fatalf("valid process rejected: %v", err)
	}

	bad := NewProcess(NewPipeline(
		NewStandard("a", MissingValue{}, nil, "typo1"),
		NewComposite("c", nil,
			NewStandard("b", Offset{Delta: Const(1)}, nil, "typo2", "v"),
		),
		NewKeyedPolluter("k", "typo3", func(string) Polluter {
			return NewStandard("inner", MissingValue{}, nil, "typo4")
		}),
	))
	err := bad.ValidateAttrs(s)
	if err == nil {
		t.Fatal("invalid process accepted")
	}
	for _, want := range []string{"typo1", "typo2", "typo3", "typo4"} {
		if !contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}
	if contains(err.Error(), "\"v\"") {
		t.Errorf("valid attribute reported missing: %v", err)
	}
}
