package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"
	"time"

	"icewafl/internal/stream"
)

// Adversarial coverage of the SPSC batch handoff and sequence merge:
// key skew (every tuple on one shard), empty input, one-tuple batches,
// relaxed-order mode, and the arena clone path.

// runShardedCfg runs the keyed oracle pipeline with an explicit
// ShardConfig and returns the rendered output and log.
func runShardedCfg(t *testing.T, seed int64, n, keys int, reorder int, cfg ShardConfig) (string, string) {
	t.Helper()
	schema := shardedTestSchema()
	factory := keyedStickyTemporalFactory(seed)
	cfg.KeyAttr = "sensor"
	cfg.NewPipeline = factory
	proc := &Process{Pipelines: []*Pipeline{factory(0)}}
	out, log, err := proc.RunStreamSharded(shardedTestSource(schema, n, keys), reorder, cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", cfg.Shards, err)
	}
	// Arena tuples are loans: clone while collecting.
	var tuples []stream.Tuple
	for {
		tup, err := out.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("shards=%d next: %v", cfg.Shards, err)
		}
		if cfg.Arena {
			tup = tup.Clone()
		}
		tuples = append(tuples, tup)
	}
	return renderTuples(tuples), renderLog(log)
}

// TestShardedKeySkew routes every tuple to a single shard (one key):
// all but one worker idle, and the merge must still be byte-identical
// — the degenerate curve point of the scaling work.
func TestShardedKeySkew(t *testing.T) {
	const n, keys = 1200, 1
	seed := int64(17)
	wantOut, wantLog := runShardedCfg(t, seed, n, keys, 1, ShardConfig{Shards: 1})
	if wantOut == "" {
		t.Fatal("sequential run produced nothing")
	}
	for _, shards := range []int{2, 8} {
		gotOut, gotLog := runShardedCfg(t, seed, n, keys, 1, ShardConfig{Shards: shards})
		if gotOut != wantOut {
			t.Errorf("shards=%d: skewed output differs from sequential", shards)
		}
		if gotLog != wantLog {
			t.Errorf("shards=%d: skewed log differs from sequential", shards)
		}
	}
}

// TestShardedEmptyInput drives the merge with zero tuples: the feeder
// closes the rings before any batch exists and the merger must report
// EOF, not stall.
func TestShardedEmptyInput(t *testing.T) {
	for _, shards := range []int{2, 8} {
		gotOut, gotLog := runShardedCfg(t, 5, 0, 3, 1, ShardConfig{Shards: shards})
		if gotOut != "" {
			t.Errorf("shards=%d: empty input produced output %q", shards, gotOut)
		}
		if strings.Contains(gotLog, "tuple_id") {
			t.Errorf("shards=%d: empty input produced log entries", shards)
		}
	}
}

// TestShardedSingleTupleBatches forces BatchSize=1 — every handoff is
// one tuple, maximising ring traffic and merge interleaving — and
// still demands byte-identical output, log and dead letters.
func TestShardedSingleTupleBatches(t *testing.T) {
	const n, keys = 700, 5
	seed := int64(23)
	wantOut, wantLog := runShardedCfg(t, seed, n, keys, 1, ShardConfig{Shards: 1})
	for _, shards := range []int{2, 4, 8} {
		cfg := ShardConfig{Shards: shards, BatchSize: 1, Buffer: 2}
		gotOut, gotLog := runShardedCfg(t, seed, n, keys, 1, cfg)
		if gotOut != wantOut {
			t.Errorf("shards=%d batch=1: output differs from sequential", shards)
		}
		if gotLog != wantLog {
			t.Errorf("shards=%d batch=1: log differs from sequential", shards)
		}
	}
}

// TestShardedRelaxedOrderMultiset verifies OrderRelaxed: the emitted
// tuples and log entries are the same multiset as the sequential run,
// and each key's subsequence keeps its original relative order.
func TestShardedRelaxedOrderMultiset(t *testing.T) {
	const n, keys = 1500, 13
	seed := int64(42)
	schema := shardedTestSchema()
	factory := keyedStickyTemporalFactory(seed)

	collect := func(cfg ShardConfig) ([]stream.Tuple, *Log) {
		proc := &Process{Pipelines: []*Pipeline{factory(0)}}
		cfg.KeyAttr = "sensor"
		cfg.NewPipeline = factory
		out, log, err := proc.RunStreamSharded(shardedTestSource(schema, n, keys), 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tuples, err := stream.Drain(out)
		if err != nil {
			t.Fatal(err)
		}
		return tuples, log
	}

	seqTuples, seqLog := collect(ShardConfig{Shards: 1})
	relTuples, relLog := collect(ShardConfig{Shards: 4, Order: OrderRelaxed})

	sortedLines := func(ts []stream.Tuple) []string {
		lines := strings.Split(strings.TrimSuffix(renderTuples(ts), "\n"), "\n")
		sort.Strings(lines)
		return lines
	}
	want, got := sortedLines(seqTuples), sortedLines(relTuples)
	if len(want) != len(got) {
		t.Fatalf("relaxed emitted %d tuples, sequential %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("relaxed tuple multiset differs at %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}

	// Per-key subsequences keep their order (tuple IDs ascend per key).
	lastID := map[string]uint64{}
	for _, tu := range relTuples {
		key, _ := tu.At(1).AsString()
		if tu.ID <= lastID[key] {
			t.Fatalf("key %s: tuple %d emitted after %d — per-key order broken", key, tu.ID, lastID[key])
		}
		lastID[key] = tu.ID
	}

	// The pollution log is the same multiset of entries.
	entryKeys := func(l *Log) []string {
		out := make([]string, 0, len(l.Entries))
		for _, e := range l.Entries {
			out = append(out, fmt.Sprintf("%d|%s|%s|%s", e.TupleID, e.Polluter, e.Error, strings.Join(e.Attrs, ",")))
		}
		sort.Strings(out)
		return out
	}
	wantE, gotE := entryKeys(seqLog), entryKeys(relLog)
	if len(wantE) != len(gotE) {
		t.Fatalf("relaxed log has %d entries, sequential %d", len(gotE), len(wantE))
	}
	for i := range wantE {
		if wantE[i] != gotE[i] {
			t.Fatalf("relaxed log multiset differs at %d: got %s want %s", i, gotE[i], wantE[i])
		}
	}
}

// TestShardedArenaByteIdentical runs the arena clone path (including
// shards=1, which maps it onto the pooled sequential runner) against
// the plain sequential output, with and without a reorder window.
func TestShardedArenaByteIdentical(t *testing.T) {
	const n, keys = 1100, 9
	seed := int64(8)
	for _, reorder := range []int{1, 32} {
		wantOut, wantLog := runShardedCfg(t, seed, n, keys, reorder, ShardConfig{Shards: 1})
		for _, shards := range []int{1, 2, 8} {
			cfg := ShardConfig{Shards: shards, Arena: true}
			gotOut, gotLog := runShardedCfg(t, seed, n, keys, reorder, cfg)
			if gotOut != wantOut {
				t.Errorf("arena shards=%d reorder=%d: output differs from sequential", shards, reorder)
			}
			if gotLog != wantLog {
				t.Errorf("arena shards=%d reorder=%d: log differs from sequential", shards, reorder)
			}
		}
	}
}

// TestShardedArenaPreservesSource verifies the arena contract: the
// source's tuples are cloned before pollution, so a shared slice
// survives the run unmodified (the reason the benchmark can drop its
// defensive per-tuple Clone stage).
func TestShardedArenaPreservesSource(t *testing.T) {
	schema := shardedTestSchema()
	base := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	const n = 400
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		tuples[i] = stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			stream.Str(fmt.Sprintf("sensor-%02d", i%7)),
			stream.Float(float64(i)),
		})
	}
	factory := keyedStickyTemporalFactory(31)
	proc := &Process{Pipelines: []*Pipeline{factory(0)}, DisableLog: true}
	out, _, err := proc.RunStreamSharded(stream.NewSliceSource(schema, tuples), 1,
		ShardConfig{KeyAttr: "sensor", Shards: 4, NewPipeline: factory, Arena: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Copy(stream.DiscardSink{}, out); err != nil {
		t.Fatal(err)
	}
	for i := range tuples {
		if v, _ := tuples[i].At(2).AsFloat(); v != float64(i) {
			t.Fatalf("source tuple %d mutated: v = %v, want %v", i, v, float64(i))
		}
		if tuples[i].Dropped || tuples[i].Quarantined {
			t.Fatalf("source tuple %d metadata mutated", i)
		}
	}
}

// TestShardedCleanTap verifies the sharded runner feeds CleanTap with
// every prepared tuple (it used to be silently dropped in sharded
// mode, breaking icewafld's clean channel at shards > 1).
func TestShardedCleanTap(t *testing.T) {
	const n, keys = 300, 4
	schema := shardedTestSchema()
	factory := keyedStickyTemporalFactory(12)
	var clean []stream.Tuple
	proc := &Process{
		Pipelines: []*Pipeline{factory(0)},
		CleanTap:  func(t stream.Tuple) { clean = append(clean, t) },
	}
	out, _, err := proc.RunStreamSharded(shardedTestSource(schema, n, keys), 1,
		ShardConfig{KeyAttr: "sensor", Shards: 3, NewPipeline: factory})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Drain(out); err != nil {
		t.Fatal(err)
	}
	if len(clean) != n {
		t.Fatalf("CleanTap saw %d tuples, want %d", len(clean), n)
	}
	for i, tu := range clean {
		if v, _ := tu.At(2).AsFloat(); v != float64(i%97)/3 {
			t.Fatalf("CleanTap tuple %d polluted: v = %v", i, v)
		}
	}
}

// TestShardedFailFastDeterministicPrefix verifies that a fatal
// pipeline error in fail-fast mode truncates the sharded output at
// exactly the failing tuple's position, regardless of shard count: the
// first panic hits tuple ID 97 (sequence 96), so every run must emit
// exactly the 96 preceding tuples and then the same sticky error.
// (The sequential runner propagates the panic itself, by contract, so
// the sharded runs are compared against each other and the exact
// truncation point.)
func TestShardedFailFastDeterministicPrefix(t *testing.T) {
	schema := shardedTestSchema()
	factory := func(int) *Pipeline {
		perKey := func(key string) Polluter {
			return &panicEvery{mod: 97, inner: NewStandard("noop", DelayTuple{}, Never{}, "v")}
		}
		return NewPipeline(NewKeyedPolluter("keyed", "sensor", perKey))
	}
	run := func(shards int) (string, string) {
		proc := &Process{Pipelines: []*Pipeline{factory(0)}, DisableLog: true}
		out, _, err := proc.RunStreamSharded(shardedTestSource(schema, 500, 6), 1,
			ShardConfig{KeyAttr: "sensor", Shards: shards, NewPipeline: factory})
		if err != nil {
			t.Fatal(err)
		}
		var got []stream.Tuple
		var ferr error
		for {
			tu, err := out.Next()
			if err != nil {
				ferr = err
				break
			}
			got = append(got, tu)
		}
		if ferr == io.EOF || !strings.Contains(ferr.Error(), "injected fault on tuple 97") {
			t.Fatalf("shards=%d: fatal error = %v, want injected fault on tuple 97", shards, ferr)
		}
		if len(got) != 96 {
			t.Fatalf("shards=%d: emitted %d tuples before the error, want 96", shards, len(got))
		}
		return renderTuples(got), ferr.Error()
	}
	wantOut, wantErr := run(2)
	for _, shards := range []int{4, 8} {
		gotOut, gotErr := run(shards)
		if gotOut != wantOut {
			t.Errorf("shards=%d: fail-fast prefix differs from shards=2", shards)
		}
		if gotErr != wantErr {
			t.Errorf("shards=%d: error %q, want %q", shards, gotErr, wantErr)
		}
	}
}
