package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// Adversarial coverage of the SPSC batch handoff and sequence merge:
// key skew (every tuple on one shard), empty input, one-tuple batches,
// relaxed-order mode, and the arena clone path.

// runShardedWith runs a keyed pipeline factory with an explicit
// ShardConfig and returns the rendered output and log.
func runShardedWith(t *testing.T, factory func(int) *Pipeline, n, keys, reorder int, cfg ShardConfig) (string, string) {
	t.Helper()
	schema := shardedTestSchema()
	cfg.KeyAttr = "sensor"
	cfg.NewPipeline = factory
	proc := &Process{Pipelines: []*Pipeline{factory(0)}}
	out, log, err := proc.RunStreamSharded(shardedTestSource(schema, n, keys), reorder, cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", cfg.Shards, err)
	}
	// Arena tuples are loans: clone while collecting.
	var tuples []stream.Tuple
	for {
		tup, err := out.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("shards=%d next: %v", cfg.Shards, err)
		}
		if cfg.Arena {
			tup = tup.Clone()
		}
		tuples = append(tuples, tup)
	}
	return renderTuples(tuples), renderLog(log)
}

// runShardedCfg runs the keyed oracle pipeline with an explicit
// ShardConfig and returns the rendered output and log.
func runShardedCfg(t *testing.T, seed int64, n, keys int, reorder int, cfg ShardConfig) (string, string) {
	t.Helper()
	return runShardedWith(t, keyedStickyTemporalFactory(seed), n, keys, reorder, cfg)
}

// TestShardedKeySkew routes every tuple to a single shard (one key):
// all but one worker idle, and the merge must still be byte-identical
// — the degenerate curve point of the scaling work.
func TestShardedKeySkew(t *testing.T) {
	const n, keys = 1200, 1
	seed := int64(17)
	wantOut, wantLog := runShardedCfg(t, seed, n, keys, 1, ShardConfig{Shards: 1})
	if wantOut == "" {
		t.Fatal("sequential run produced nothing")
	}
	for _, shards := range []int{2, 8} {
		gotOut, gotLog := runShardedCfg(t, seed, n, keys, 1, ShardConfig{Shards: shards})
		if gotOut != wantOut {
			t.Errorf("shards=%d: skewed output differs from sequential", shards)
		}
		if gotLog != wantLog {
			t.Errorf("shards=%d: skewed log differs from sequential", shards)
		}
	}
}

// TestShardedEmptyInput drives the merge with zero tuples: the feeder
// closes the rings before any batch exists and the merger must report
// EOF, not stall.
func TestShardedEmptyInput(t *testing.T) {
	for _, shards := range []int{2, 8} {
		gotOut, gotLog := runShardedCfg(t, 5, 0, 3, 1, ShardConfig{Shards: shards})
		if gotOut != "" {
			t.Errorf("shards=%d: empty input produced output %q", shards, gotOut)
		}
		if strings.Contains(gotLog, "tuple_id") {
			t.Errorf("shards=%d: empty input produced log entries", shards)
		}
	}
}

// TestShardedSingleTupleBatches forces BatchSize=1 — every handoff is
// one tuple, maximising ring traffic and merge interleaving — and
// still demands byte-identical output, log and dead letters.
func TestShardedSingleTupleBatches(t *testing.T) {
	const n, keys = 700, 5
	seed := int64(23)
	wantOut, wantLog := runShardedCfg(t, seed, n, keys, 1, ShardConfig{Shards: 1})
	for _, shards := range []int{2, 4, 8} {
		cfg := ShardConfig{Shards: shards, BatchSize: 1, Buffer: 2}
		gotOut, gotLog := runShardedCfg(t, seed, n, keys, 1, cfg)
		if gotOut != wantOut {
			t.Errorf("shards=%d batch=1: output differs from sequential", shards)
		}
		if gotLog != wantLog {
			t.Errorf("shards=%d batch=1: log differs from sequential", shards)
		}
	}
}

// collectSharded runs the keyed oracle pipeline and collects the
// emitted tuples (cloned — arena tuples are loans) and the log.
func collectSharded(t *testing.T, seed int64, n, keys, reorder int, cfg ShardConfig) ([]stream.Tuple, *Log) {
	t.Helper()
	schema := shardedTestSchema()
	factory := keyedStickyTemporalFactory(seed)
	cfg.KeyAttr = "sensor"
	cfg.NewPipeline = factory
	proc := &Process{Pipelines: []*Pipeline{factory(0)}}
	out, log, err := proc.RunStreamSharded(shardedTestSource(schema, n, keys), reorder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tuples []stream.Tuple
	for {
		tup, err := out.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tuples = append(tuples, tup.Clone())
	}
	return tuples, log
}

// assertRelaxedEquivalent asserts a relaxed-order run emitted the same
// multiset of tuples and log entries as the sequential run, with every
// key's subsequence keeping its original relative order.
func assertRelaxedEquivalent(t *testing.T, seqTuples, relTuples []stream.Tuple, seqLog, relLog *Log) {
	t.Helper()
	sortedLines := func(ts []stream.Tuple) []string {
		lines := strings.Split(strings.TrimSuffix(renderTuples(ts), "\n"), "\n")
		sort.Strings(lines)
		return lines
	}
	want, got := sortedLines(seqTuples), sortedLines(relTuples)
	if len(want) != len(got) {
		t.Fatalf("relaxed emitted %d tuples, sequential %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("relaxed tuple multiset differs at %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}

	// Per-key subsequences keep their order (tuple IDs ascend per key).
	lastID := map[string]uint64{}
	for _, tu := range relTuples {
		key, _ := tu.At(1).AsString()
		if tu.ID <= lastID[key] {
			t.Fatalf("key %s: tuple %d emitted after %d — per-key order broken", key, tu.ID, lastID[key])
		}
		lastID[key] = tu.ID
	}

	// The pollution log is the same multiset of entries.
	entryKeys := func(l *Log) []string {
		out := make([]string, 0, len(l.Entries))
		for _, e := range l.Entries {
			out = append(out, fmt.Sprintf("%d|%s|%s|%s", e.TupleID, e.Polluter, e.Error, strings.Join(e.Attrs, ",")))
		}
		sort.Strings(out)
		return out
	}
	wantE, gotE := entryKeys(seqLog), entryKeys(relLog)
	if len(wantE) != len(gotE) {
		t.Fatalf("relaxed log has %d entries, sequential %d", len(gotE), len(wantE))
	}
	for i := range wantE {
		if wantE[i] != gotE[i] {
			t.Fatalf("relaxed log multiset differs at %d: got %s want %s", i, gotE[i], wantE[i])
		}
	}
}

// TestShardedRelaxedOrderMultiset verifies OrderRelaxed: the emitted
// tuples and log entries are the same multiset as the sequential run,
// and each key's subsequence keeps its original relative order.
func TestShardedRelaxedOrderMultiset(t *testing.T) {
	const n, keys = 1500, 13
	seed := int64(42)
	seqTuples, seqLog := collectSharded(t, seed, n, keys, 1, ShardConfig{Shards: 1})
	relTuples, relLog := collectSharded(t, seed, n, keys, 1, ShardConfig{Shards: 4, Order: OrderRelaxed})
	assertRelaxedEquivalent(t, seqTuples, relTuples, seqLog, relLog)
}

// TestShardedRelaxedArenaReorderMultiset is the regression test for
// the relaxed+arena use-after-recycle hazard: a reorder window used to
// be applied on top of relaxed output, where the arbitrary shard
// interleaving let buffered tuples outlive the arena recycling margin
// and alias refilled value blocks. Relaxed mode now ignores the
// window, so a run with Arena on, tiny batches (maximum recycling
// pressure) and a large requested window must still emit the exact
// sequential multiset with per-key order intact. CI runs this under
// -race, which also catches the worker-overwrites-loaned-values race
// directly.
func TestShardedRelaxedArenaReorderMultiset(t *testing.T) {
	const n, keys = 1500, 13
	seed := int64(42)
	seqTuples, seqLog := collectSharded(t, seed, n, keys, 1, ShardConfig{Shards: 1})
	relTuples, relLog := collectSharded(t, seed, n, keys, 64,
		ShardConfig{Shards: 4, Order: OrderRelaxed, Arena: true, BatchSize: 8})
	assertRelaxedEquivalent(t, seqTuples, relTuples, seqLog, relLog)
}

// TestShardedArenaByteIdentical runs the arena clone path (including
// shards=1, which maps it onto the pooled sequential runner) against
// the plain sequential output, with and without a reorder window.
func TestShardedArenaByteIdentical(t *testing.T) {
	const n, keys = 1100, 9
	seed := int64(8)
	for _, reorder := range []int{1, 32} {
		wantOut, wantLog := runShardedCfg(t, seed, n, keys, reorder, ShardConfig{Shards: 1})
		for _, shards := range []int{1, 2, 8} {
			cfg := ShardConfig{Shards: shards, Arena: true}
			gotOut, gotLog := runShardedCfg(t, seed, n, keys, reorder, cfg)
			if gotOut != wantOut {
				t.Errorf("arena shards=%d reorder=%d: output differs from sequential", shards, reorder)
			}
			if gotLog != wantLog {
				t.Errorf("arena shards=%d reorder=%d: log differs from sequential", shards, reorder)
			}
		}
	}
}

// keyedHeavyDelayFactory delays a sizeable fraction of tuples by far
// more than any reorder window under test (3h on a 1-minute cadence
// displaces a tuple ~180 positions), so delayed tuples dwell in a
// downstream bounded reorder buffer for arbitrarily many emissions —
// no fixed emission-count margin covers them.
func keyedHeavyDelayFactory(seed int64) func(int) *Pipeline {
	perKey := func(key string) Polluter {
		return NewComposite("per-key", nil,
			NewStandard("noise",
				&GaussianNoise{Stddev: Const(2), Rand: rng.Derive(seed, "noise/"+key)},
				NewRandomConst(0.4, rng.Derive(seed, "noise-cond/"+key)), "v"),
			NewStandard("delay",
				DelayTuple{Delay: 3 * time.Hour},
				NewRandomConst(0.15, rng.Derive(seed, "delay/"+key)), "v"),
		)
	}
	return func(int) *Pipeline {
		return NewPipeline(NewKeyedPolluter("keyed", "sensor", perKey))
	}
}

// TestShardedArenaReorderHeavyDelay is the strict-mode variant of the
// arena use-after-recycle regression: a heavily delayed tuple sits in
// the reorder buffer while far more emissions than any fixed margin
// stream past it, so with a reorder window in place retired arena
// batches must fall to the GC instead of recycling. Output must stay
// byte-identical to the sequential run; under -race the old recycling
// also surfaces as a worker-write/consumer-read race.
func TestShardedArenaReorderHeavyDelay(t *testing.T) {
	const n, keys, window = 1200, 7, 32
	factory := keyedHeavyDelayFactory(61)
	wantOut, wantLog := runShardedWith(t, factory, n, keys, window, ShardConfig{Shards: 1})
	if wantOut == "" {
		t.Fatal("sequential run produced nothing")
	}
	for _, shards := range []int{2, 8} {
		cfg := ShardConfig{Shards: shards, Arena: true, BatchSize: 16}
		gotOut, gotLog := runShardedWith(t, factory, n, keys, window, cfg)
		if gotOut != wantOut {
			t.Errorf("shards=%d: heavy-delay arena output differs from sequential", shards)
		}
		if gotLog != wantLog {
			t.Errorf("shards=%d: heavy-delay arena log differs from sequential", shards)
		}
	}
}

// TestShardedArenaPreservesSource verifies the arena contract: the
// source's tuples are cloned before pollution, so a shared slice
// survives the run unmodified (the reason the benchmark can drop its
// defensive per-tuple Clone stage).
func TestShardedArenaPreservesSource(t *testing.T) {
	schema := shardedTestSchema()
	base := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	const n = 400
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		tuples[i] = stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			stream.Str(fmt.Sprintf("sensor-%02d", i%7)),
			stream.Float(float64(i)),
		})
	}
	factory := keyedStickyTemporalFactory(31)
	proc := &Process{Pipelines: []*Pipeline{factory(0)}, DisableLog: true}
	out, _, err := proc.RunStreamSharded(stream.NewSliceSource(schema, tuples), 1,
		ShardConfig{KeyAttr: "sensor", Shards: 4, NewPipeline: factory, Arena: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Copy(stream.DiscardSink{}, out); err != nil {
		t.Fatal(err)
	}
	for i := range tuples {
		if v, _ := tuples[i].At(2).AsFloat(); v != float64(i) {
			t.Fatalf("source tuple %d mutated: v = %v, want %v", i, v, float64(i))
		}
		if tuples[i].Dropped || tuples[i].Quarantined {
			t.Fatalf("source tuple %d metadata mutated", i)
		}
	}
}

// TestShardedCleanTap verifies the sharded runner feeds CleanTap with
// every prepared tuple (it used to be silently dropped in sharded
// mode, breaking icewafld's clean channel at shards > 1).
func TestShardedCleanTap(t *testing.T) {
	const n, keys = 300, 4
	schema := shardedTestSchema()
	factory := keyedStickyTemporalFactory(12)
	var clean []stream.Tuple
	proc := &Process{
		Pipelines: []*Pipeline{factory(0)},
		CleanTap:  func(t stream.Tuple) { clean = append(clean, t) },
	}
	out, _, err := proc.RunStreamSharded(shardedTestSource(schema, n, keys), 1,
		ShardConfig{KeyAttr: "sensor", Shards: 3, NewPipeline: factory})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Drain(out); err != nil {
		t.Fatal(err)
	}
	if len(clean) != n {
		t.Fatalf("CleanTap saw %d tuples, want %d", len(clean), n)
	}
	for i, tu := range clean {
		if v, _ := tu.At(2).AsFloat(); v != float64(i%97)/3 {
			t.Fatalf("CleanTap tuple %d polluted: v = %v", i, v)
		}
	}
}

// TestShardedFailFastDeterministicPrefix verifies that a fatal
// pipeline error in fail-fast mode truncates the sharded output at
// exactly the failing tuple's position, regardless of shard count: the
// first panic hits tuple ID 97 (sequence 96), so every run must emit
// exactly the 96 preceding tuples and then the same sticky error.
// (The sequential runner propagates the panic itself, by contract, so
// the sharded runs are compared against each other and the exact
// truncation point.)
func TestShardedFailFastDeterministicPrefix(t *testing.T) {
	schema := shardedTestSchema()
	factory := func(int) *Pipeline {
		perKey := func(key string) Polluter {
			return &panicEvery{mod: 97, inner: NewStandard("noop", DelayTuple{}, Never{}, "v")}
		}
		return NewPipeline(NewKeyedPolluter("keyed", "sensor", perKey))
	}
	run := func(shards int) (string, string) {
		proc := &Process{Pipelines: []*Pipeline{factory(0)}, DisableLog: true}
		out, _, err := proc.RunStreamSharded(shardedTestSource(schema, 500, 6), 1,
			ShardConfig{KeyAttr: "sensor", Shards: shards, NewPipeline: factory})
		if err != nil {
			t.Fatal(err)
		}
		var got []stream.Tuple
		var ferr error
		for {
			tu, err := out.Next()
			if err != nil {
				ferr = err
				break
			}
			got = append(got, tu)
		}
		if ferr == io.EOF || !strings.Contains(ferr.Error(), "injected fault on tuple 97") {
			t.Fatalf("shards=%d: fatal error = %v, want injected fault on tuple 97", shards, ferr)
		}
		if len(got) != 96 {
			t.Fatalf("shards=%d: emitted %d tuples before the error, want 96", shards, len(got))
		}
		return renderTuples(got), ferr.Error()
	}
	wantOut, wantErr := run(2)
	for _, shards := range []int{4, 8} {
		gotOut, gotErr := run(shards)
		if gotOut != wantOut {
			t.Errorf("shards=%d: fail-fast prefix differs from shards=2", shards)
		}
		if gotErr != wantErr {
			t.Errorf("shards=%d: error %q, want %q", shards, gotErr, wantErr)
		}
	}
}
