package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"icewafl/internal/obs"
)

// Entry records one injected error: which polluter hit which tuple, which
// error function it applied, and on which attributes. Together with the
// retained clean stream, the log is the ground truth used to score error-
// detection tools (the "Log Data" output of Figure 2).
type Entry struct {
	TupleID   uint64    `json:"tuple_id"`
	SubStream int       `json:"sub_stream"`
	EventTime time.Time `json:"event_time"`
	Polluter  string    `json:"polluter"`
	Error     string    `json:"error"`
	Attrs     []string  `json:"attrs,omitempty"`
}

// Log accumulates pollution entries. It is not safe for concurrent use;
// the pollution process keeps one log per sub-stream and merges them.
type Log struct {
	Entries []Entry
	// Obs, when set, mirrors the log's ground truth into metrics:
	// Record counts log_entries_total and the per-polluter pollution
	// counters, Truncate unwinds them, and the polluters report their
	// condition hit/miss tallies through it. The counters therefore
	// satisfy sum(polluted_by) == log_entries_total == len(Entries)
	// exactly, including under quarantine rollback. Merge deliberately
	// does NOT count: merged entries were already counted by the
	// sub-stream log that recorded them.
	Obs *obs.Registry
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Record appends an entry.
func (l *Log) Record(e Entry) {
	if l == nil {
		return
	}
	l.Entries = append(l.Entries, e)
	if l.Obs != nil {
		l.Obs.Inc(obs.CLogEntries)
		l.Obs.AddPolluted(e.Polluter, 1)
	}
}

// Truncate discards the entries from mark on — the fault-rollback
// primitive: when a tuple's pollution fails mid-pipeline, the runner
// rolls the log back to the mark it took before the tuple, so the
// ground truth only describes delivered tuples. Attached metrics are
// unwound symmetrically.
func (l *Log) Truncate(mark int) {
	if l == nil || mark < 0 || mark >= len(l.Entries) {
		return
	}
	if l.Obs != nil {
		l.Obs.Sub(obs.CLogEntries, uint64(len(l.Entries)-mark))
		for i := mark; i < len(l.Entries); i++ {
			l.Obs.AddPolluted(l.Entries[i].Polluter, -1)
		}
	}
	l.Entries = l.Entries[:mark]
}

// condHit / condMiss count polluter-gate condition evaluations. They
// ride on the log because the log is the one object already threaded
// through every Pollute call; with logging disabled (or no registry
// attached) they are no-ops.
func (l *Log) condHit() {
	if l != nil && l.Obs != nil {
		l.Obs.Inc(obs.CCondHits)
	}
}

func (l *Log) condMiss() {
	if l != nil && l.Obs != nil {
		l.Obs.Inc(obs.CCondMisses)
	}
}

// Len returns the number of recorded errors.
func (l *Log) Len() int { return len(l.Entries) }

// PollutedTuples returns the set of tuple IDs that received at least one
// error.
func (l *Log) PollutedTuples() map[uint64]bool {
	out := make(map[uint64]bool)
	for _, e := range l.Entries {
		out[e.TupleID] = true
	}
	return out
}

// CountByPolluter tallies entries per polluter name.
func (l *Log) CountByPolluter() map[string]int {
	out := make(map[string]int)
	for _, e := range l.Entries {
		out[e.Polluter]++
	}
	return out
}

// CountByError tallies entries per error kind.
func (l *Log) CountByError() map[string]int {
	out := make(map[string]int)
	for _, e := range l.Entries {
		out[e.Error]++
	}
	return out
}

// CountByHour tallies entries per hour of day of the event time — the
// histogram behind Figure 4.
func (l *Log) CountByHour() [24]int {
	var out [24]int
	for _, e := range l.Entries {
		out[e.EventTime.Hour()]++
	}
	return out
}

// ForTuple returns the entries affecting one tuple, in injection order.
func (l *Log) ForTuple(id uint64) []Entry {
	var out []Entry
	for _, e := range l.Entries {
		if e.TupleID == id {
			out = append(out, e)
		}
	}
	return out
}

// Merge appends all entries of other, stamping them with the given
// sub-stream index.
func (l *Log) Merge(other *Log, subStream int) {
	for _, e := range other.Entries {
		e.SubStream = subStream
		l.Entries = append(l.Entries, e)
	}
}

// WriteJSON serialises the log as JSON lines, one entry per line, so that
// huge logs stream to disk without buffering.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range l.Entries {
		if err := enc.Encode(&l.Entries[i]); err != nil {
			return fmt.Errorf("core: write log entry %d: %w", i, err)
		}
	}
	return nil
}

// ReadLogJSON parses a JSON-lines log written by WriteJSON.
func ReadLogJSON(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	l := NewLog()
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			return l, nil
		} else if err != nil {
			return nil, fmt.Errorf("core: read log: %w", err)
		}
		l.Entries = append(l.Entries, e)
	}
}
