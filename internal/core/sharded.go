package core

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"icewafl/internal/obs"
	"icewafl/internal/stream"
)

// This file implements hash-sharded keyed execution: the pollution hot
// path of a keyed pipeline partitioned across N shard workers. Tuples
// are routed by a deterministic hash of their key attribute, each shard
// owns an independent pipeline instance (per-key state, sticky holds,
// frozen values, RNG streams), and a sequence-number merge re-emits
// tuples — and their pollution-log entries, dead letters and drops — in
// exactly the prepared input order.
//
// Handoff architecture. The feeder accumulates routed tuples into
// per-shard batches and hands each batch to its worker over a lock-free
// SPSC ring (stream.SPSC); the worker pollutes the batch in place and
// hands it to the merger over a second SPSC ring; the merger returns
// exhausted batches through a third ring so batch buffers (items, log
// entries, value arenas) recycle without allocation. Every
// synchronisation cost — two ring operations and a couple of counter
// updates — is paid once per batch (cfg.BatchSize tuples), not once per
// tuple, which is what makes the parallelism win back more than the
// fan-out/fan-in costs.
//
// Determinism argument. A keyed pipeline whose per-key instances derive
// ALL their state and randomness from the key (KeyedPolluter with a
// key-deriving factory, e.g. rng.Derive(seed, "noise/"+key)) computes a
// function of the per-key subsequence only. Hash sharding partitions
// the stream by key, so every shard sees each of its keys' subsequences
// in the original order; the per-tuple results are therefore identical
// to the sequential run, and the merge (by prepared sequence number)
// re-serialises tuples, log entries and dead letters into the
// sequential order. The output is byte-identical to RunStream —
// property-tested for 2/4/8 shards under -race. Batch boundaries are a
// function of the deterministic routing alone, and the merge never
// depends on them, so batching does not perturb the guarantee.
//
// Deadlock-freedom of the bounded merge. The merger holds at most one
// in-progress batch per shard and consumes strictly in sequence order,
// so it can stall only while the next sequence number is still inside
// the feeder's accumulators. The feeder therefore flushes accumulators
// oldest-first (by their first pending sequence number): whenever it
// blocks pushing a batch B, every sequence number below B's first is
// already in the rings, the merger drains them (per-shard ring order is
// sequence order), reaches B's first, and by then has emptied the very
// ring B is blocked on. No cycle, bounded memory.

// OrderPolicy selects how the sharded merger orders its output.
type OrderPolicy int

const (
	// OrderStrict re-emits tuples, log entries and dead letters in
	// exactly the prepared input order: output is byte-identical to the
	// sequential run. This is the default.
	OrderStrict OrderPolicy = iota
	// OrderRelaxed preserves per-shard — and therefore per-key — order
	// but lets shards interleave arbitrarily: the output is the same
	// deterministic multiset of tuples, log entries and dead letters,
	// not the same sequence. It removes the sequence-merge stall when
	// one shard runs long, for callers that key their downstream
	// processing and don't need byte-identical output. Relaxed mode
	// ignores the reorder window: relaxed output already abandons
	// global order, so re-sorting an arbitrary shard interleaving by
	// arrival would neither restore the sequential sequence nor
	// preserve any other meaningful one (and would let buffered tuples
	// outlive any bounded arena-recycling margin).
	OrderRelaxed
)

// String renders the policy as its flag spelling.
func (o OrderPolicy) String() string {
	switch o {
	case OrderStrict:
		return "strict"
	case OrderRelaxed:
		return "relaxed"
	default:
		return fmt.Sprintf("OrderPolicy(%d)", int(o))
	}
}

// ParseOrderPolicy parses an OrderPolicy flag value; the empty string
// means strict.
func ParseOrderPolicy(s string) (OrderPolicy, error) {
	switch s {
	case "", "strict":
		return OrderStrict, nil
	case "relaxed":
		return OrderRelaxed, nil
	default:
		return 0, fmt.Errorf("core: unknown order policy %q (want strict or relaxed)", s)
	}
}

// ShardConfig configures RunStreamSharded.
type ShardConfig struct {
	// KeyAttr names the attribute whose value routes tuples to shards.
	// It should match the KeyAttr of the pipeline's keyed polluters.
	KeyAttr string
	// Shards is the number of parallel workers. Values <= 1 run the
	// plain sequential streaming path (same code path as RunStream).
	Shards int
	// NewPipeline builds the pipeline instance owned by shard i. Every
	// invocation must return a freshly constructed, identically
	// configured pipeline; for byte-identical output the per-key state
	// and randomness must derive from keys, not from shard-global
	// streams. Nil is allowed when the process pipeline consists only of
	// KeyedPolluters, which shard automatically.
	NewPipeline func(shard int) *Pipeline
	// Order selects strict (byte-identical to sequential, the default)
	// or relaxed (per-key order only) merge order.
	Order OrderPolicy
	// BatchSize is the number of tuples per ring handoff (default 128).
	// Larger batches amortise the fan-out/fan-in synchronisation
	// further at the cost of latency and per-shard memory.
	BatchSize int
	// Buffer is the per-shard in-flight tuple budget (default
	// 2*BatchSize). Tuples travel in batches over rings of
	// Buffer/BatchSize slots (minimum 2), so Buffer bounds memory and
	// sets how far a fast shard may run ahead of the merge.
	Buffer int
	// Arena gives each shard a private value arena: workers clone
	// incoming tuples into recycled per-batch value blocks instead of
	// taking ownership of the source's buffers, eliminating both the
	// per-tuple clone allocation and cross-shard freelist contention.
	// Emitted tuples are loans — the consumer must be done with a tuple
	// before its next Next call (stream.Copy and the CLI sinks are;
	// buffering consumers must Clone).
	Arena bool
}

// RunStreamSharded executes the single-pipeline streaming workflow with
// the keyed hot path partitioned across cfg.Shards workers. Semantics
// match RunStream exactly — same output, same pollution log, same
// dead-letter order — with one deliberate difference: without
// quarantine, a panicking pipeline surfaces as a fatal stream error
// instead of a panic (a panic must not escape a shard goroutine), and
// the output is truncated at exactly the failing tuple's position, as
// the sequential run would truncate it. reorderWindow applies in
// strict order only and is ignored under OrderRelaxed (see
// OrderRelaxed). Checkpointing is not supported in sharded mode; use
// RunStreamCheckpointed on the sequential path instead.
func (pr *Process) RunStreamSharded(src stream.Source, reorderWindow int, cfg ShardConfig) (stream.Source, *Log, error) {
	if len(pr.Pipelines) != 1 && cfg.NewPipeline == nil {
		return nil, nil, fmt.Errorf("core: sharded streaming supports exactly one pipeline, got %d", len(pr.Pipelines))
	}
	pr.resetPipelines()
	if cfg.Shards <= 1 {
		// Shared sequential code path: the sharded runner at 1 shard IS
		// RunStream, so the fault/rollback behaviour cannot diverge.
		p2 := *pr
		if cfg.NewPipeline != nil {
			p2.Pipelines = []*Pipeline{cfg.NewPipeline(0)}
		}
		if !cfg.Arena {
			return p2.RunStream(src, reorderWindow)
		}
		// Arena semantics at 1 shard: clone into a pool instead of
		// polluting the source's tuples in place, recycling on the same
		// loan contract as the sharded arena.
		pool := stream.NewTuplePoolFor(src.Schema())
		out, log, err := p2.RunStream(stream.Map(src, nil, stream.PooledClone(pool)), reorderWindow)
		if err != nil {
			return nil, nil, err
		}
		return stream.Recycle(out, pool), log, nil
	}
	newPipeline := cfg.NewPipeline
	if newPipeline == nil {
		var ok bool
		newPipeline, ok = keyedFactory(pr.Pipelines[0])
		if !ok {
			return nil, nil, fmt.Errorf("core: sharded streaming needs ShardConfig.NewPipeline unless every polluter is keyed")
		}
	}
	if cfg.KeyAttr == "" {
		return nil, nil, fmt.Errorf("core: sharded streaming needs ShardConfig.KeyAttr")
	}
	keyIdx := src.Schema().Index(cfg.KeyAttr)
	if keyIdx < 0 {
		return nil, nil, fmt.Errorf("core: shard key attribute %q not in schema", cfg.KeyAttr)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 128
	}
	buffer := cfg.Buffer
	if buffer <= 0 {
		buffer = 2 * batch
	}
	depth := buffer / batch
	if depth < 2 {
		depth = 2
	}
	firstID := pr.FirstID
	if firstID == 0 {
		firstID = 1
	}
	// The merged log deliberately carries no registry: its entries are
	// recorded (and counted) by the per-worker scratch logs and appended
	// here by the merger, so attaching the registry twice would double
	// count.
	var log *Log
	if !pr.DisableLog {
		log = NewLog()
	}
	dlq := pr.instrumentDLQ(pr.Fault.queue())
	pr.Obs.SetShards(cfg.Shards)
	var in stream.Source = stream.ObserveSource(src, pr.Obs)
	if pr.Fault.Quarantine {
		in = stream.Quarantine(in, dlq, pr.Fault.MaxQuarantined)
	}
	pipes := make([]*Pipeline, cfg.Shards)
	for i := range pipes {
		pipes[i] = newPipeline(i)
		if pipes[i] == nil {
			return nil, nil, fmt.Errorf("core: ShardConfig.NewPipeline returned nil for shard %d", i)
		}
	}
	var prep stream.Source = stream.NewPrepare(in, firstID)
	if pr.CleanTap != nil {
		prep = &tapSource{src: prep, tap: pr.CleanTap}
	}
	// The reorder window applies in strict mode only: relaxed output
	// abandons global order, so partially re-sorting the shard
	// interleaving by arrival is meaningless (see OrderRelaxed).
	wrapped := cfg.Order != OrderRelaxed && reorderWindow > 1
	sh := &shardedSource{
		src:    prep,
		schema: src.Schema(),
		pipes:  pipes,
		keyIdx: keyIdx,
		batch:  batch,
		depth:  depth,
		order:  cfg.Order,
		arena:  cfg.Arena,
		width:  src.Schema().Len(),
		// An arena batch may be reused only after the consumer can no
		// longer reference its tuples. With the merger emitting straight
		// to the consumer that bound is the one loaned tuple; a bounded
		// reorder buffer downstream voids any emission-count bound (a
		// heavily delayed tuple stays buffered while arbitrarily many
		// later arrivals stream past it), so under a reorder window
		// retired batches are left to the GC instead of recycled.
		recycle: !wrapped,
		log:     log,
		fault:   pr.Fault,
		dlq:     dlq,
		reg:     pr.Obs,
		trace:   pr.Obs.TraceEnabled(),
	}
	if wrapped {
		return stream.NewBoundedReorder(sh, reorderWindow), log, nil
	}
	return sh, log, nil
}

// keyedFactory derives a per-shard pipeline factory from a prototype
// pipeline consisting only of KeyedPolluters: each shard gets fresh
// keyed polluters sharing the prototype's per-key factories, so per-key
// state is rebuilt independently inside each shard.
func keyedFactory(proto *Pipeline) (func(int) *Pipeline, bool) {
	for _, p := range proto.Polluters {
		if _, ok := p.(*KeyedPolluter); !ok {
			return nil, false
		}
	}
	return func(int) *Pipeline {
		pols := make([]Polluter, len(proto.Polluters))
		for i, p := range proto.Polluters {
			pols[i] = p.(*KeyedPolluter).CloneEmpty()
		}
		return NewPipeline(pols...)
	}, true
}

// shardItem is one tuple in flight to a shard worker.
type shardItem struct {
	seq uint64
	t   stream.Tuple
}

// shardBatch is the unit of handoff between the feeder, one worker and
// the merger. It carries the routed tuples, their sequence numbers, the
// pollution-log entries the worker recorded (a flat arena indexed by
// per-item offsets, replacing a per-tuple entry-slice allocation), any
// dead letters, and — in arena mode — the value block backing the
// polluted tuples. Batches recycle through a per-shard free ring, so
// the steady state allocates nothing.
type shardBatch struct {
	items    []shardItem
	entryBuf []Entry              // flat log-entry arena for the whole batch
	entryOff []int32              // entryOff[i]..entryOff[i+1] are item i's entries
	dls      []*stream.DeadLetter // per-item dead letters (nil when none in batch)
	vals     []stream.Value       // arena block backing cloned tuples (Arena mode)
	err      error                // fatal pipeline error; items holds the valid prefix
	errSeq   uint64               // sequence number of the failing tuple
}

// reset prepares a batch for reuse. clearItems drops the tuple
// references so a recycled batch does not pin foreign values; arena
// batches skip it — their tuples point into b.vals, which the batch
// retains (and overwrites) anyway.
func (b *shardBatch) reset(clearItems bool) {
	if clearItems {
		for i := range b.items {
			b.items[i] = shardItem{}
		}
	}
	b.items = b.items[:0]
	b.entryBuf = b.entryBuf[:0]
	b.entryOff = b.entryOff[:0]
	b.dls = nil
	b.err = nil
	b.errSeq = 0
}

// retiredBatch is an exhausted arena batch awaiting recycling; mark is
// the merger's emission count at retirement (see shardedSource.margin).
type retiredBatch struct {
	shard int
	b     *shardBatch
	mark  uint64
}

// shardedSource fans prepared tuples out to shard workers over SPSC
// rings and merges the results back by sequence number. It follows the
// same consumer-driven state machine as stream.ParallelMap: lazily
// started, stopping promptly on the first fatal error, releasing all
// goroutines on Stop.
type shardedSource struct {
	src     stream.Source
	schema  *stream.Schema
	pipes   []*Pipeline
	keyIdx  int
	batch   int
	depth   int
	order   OrderPolicy
	arena   bool
	width   int
	recycle bool // arena batches may be recycled (no reorder buffer downstream)
	log     *Log
	fault   FaultPolicy
	dlq     *stream.DeadLetterQueue
	reg     *obs.Registry
	trace   bool

	started  bool
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	ins      []*stream.SPSC[*shardBatch] // feeder -> worker
	outs     []*stream.SPSC[*shardBatch] // worker -> merger
	frees    []*stream.SPSC[*shardBatch] // merger -> feeder (recycling)
	srcErr   error                       // feeder's fatal source error; written before ins close

	// merger state; touched by the consumer goroutine only
	cur      []*shardBatch
	pos      []int
	finished []bool
	nFin     int
	nextSeq  uint64
	rr       int // relaxed-order round-robin cursor
	emitted  uint64
	retired  []retiredBatch
	err      error
	closed   bool
}

// Schema implements stream.Source.
func (s *shardedSource) Schema() *stream.Schema { return s.schema }

func (s *shardedSource) start() {
	s.started = true
	n := len(s.pipes)
	s.done = make(chan struct{})
	s.ins = make([]*stream.SPSC[*shardBatch], n)
	s.outs = make([]*stream.SPSC[*shardBatch], n)
	s.frees = make([]*stream.SPSC[*shardBatch], n)
	for i := 0; i < n; i++ {
		s.ins[i] = stream.NewSPSC[*shardBatch](s.depth)
		s.outs[i] = stream.NewSPSC[*shardBatch](s.depth)
		// The free ring must absorb every batch the other two rings,
		// the feeder, the merger and the retirement margin can hold.
		s.frees[i] = stream.NewSPSC[*shardBatch](3*s.depth + 2)
	}
	s.cur = make([]*shardBatch, n)
	s.pos = make([]int, n)
	s.finished = make([]bool, n)
	for i := 0; i < n; i++ {
		in, out := s.ins[i], s.outs[i]
		s.reg.RegisterFunc(fmt.Sprintf("shard%d_in_ring_occupancy", i),
			func() uint64 { return uint64(in.Len()) })
		s.reg.RegisterFunc(fmt.Sprintf("shard%d_out_ring_occupancy", i),
			func() uint64 { return uint64(out.Len()) })
	}
	s.wg.Add(n + 1)
	for w := 0; w < n; w++ {
		go s.worker(w)
	}
	go s.feed()
}

// grab returns a recycled batch for a shard, or a fresh one when the
// free ring is empty (startup, or the merger is holding everything).
func (s *shardedSource) grab(shard int) *shardBatch {
	if b, ok := s.frees[shard].TryPop(); ok {
		return b
	}
	return &shardBatch{items: make([]shardItem, 0, s.batch)}
}

// feed routes prepared tuples into per-shard batch accumulators and
// dispatches full batches to the workers. Accumulators are flushed
// oldest-first by their first pending sequence number — the invariant
// the strict merge's deadlock-freedom rests on (see the file comment).
func (s *shardedSource) feed() {
	defer s.wg.Done()
	n := len(s.pipes)
	acc := make([]*shardBatch, n)
	first := make([]uint64, n)
	order := make([]int, 0, n)
	var seq uint64

	dispatch := func(shard int) bool {
		b := acc[shard]
		acc[shard] = nil
		s.reg.Add(obs.CTuplesIn, uint64(len(b.items)))
		s.reg.AddShard(shard, uint64(len(b.items)))
		if !s.ins[shard].Push(b, s.done) {
			// An abandoned ring means the worker hit a fatal error:
			// every sequence number still routed here lies beyond the
			// failure point, so the batch is discarded and feeding
			// continues for the other shards. A done close means the
			// whole run is stopping.
			return s.ins[shard].Abandoned()
		}
		return true
	}
	// flushUpTo dispatches every accumulator whose first pending
	// sequence number is <= limit, oldest first.
	flushUpTo := func(limit uint64) bool {
		order = order[:0]
		for sh, b := range acc {
			if b != nil && len(b.items) > 0 && first[sh] <= limit {
				order = append(order, sh)
			}
		}
		// Insertion sort by first pending seq: n is tiny and this
		// avoids a sort.Slice closure allocation per flush.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && first[order[j]] < first[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, sh := range order {
			if !dispatch(sh) {
				return false
			}
		}
		return true
	}

feed:
	for {
		select {
		case <-s.done:
			break feed
		default:
		}
		t, err := s.src.Next()
		if err != nil {
			if err != io.EOF {
				s.srcErr = err
			}
			break
		}
		shard := int(hashKey(t.At(s.keyIdx)) % uint64(n))
		b := acc[shard]
		if b == nil {
			b = s.grab(shard)
			acc[shard] = b
			first[shard] = seq
		}
		b.items = append(b.items, shardItem{seq: seq, t: t})
		seq++
		if len(b.items) >= s.batch && !flushUpTo(first[shard]) {
			break feed
		}
	}
	flushUpTo(seq)
	for _, in := range s.ins {
		in.Close()
	}
}

// worker pollutes the batches of one shard with the shard's own
// pipeline instance, then forwards them to the merger. On a fatal
// pipeline error it ships the batch's valid prefix with the error
// attached, abandons its inbound ring so the feeder stops queueing for
// it, and exits.
func (s *shardedSource) worker(shard int) {
	defer s.wg.Done()
	in, out := s.ins[shard], s.outs[shard]
	defer out.Close()
	pipe := s.pipes[shard]
	var scratch *Log
	if s.log != nil {
		// The scratch log carries the registry, so entry counts (and
		// condition hit/miss tallies) are booked — and rolled back — at
		// recording time; the merger then appends the surviving entries
		// to the uncounted merged log.
		scratch = NewLog()
		scratch.Obs = s.reg
	}
	for {
		b, ok := in.Pop(s.done)
		if !ok {
			return
		}
		fatal := s.pollute(pipe, b, scratch)
		if !out.Push(b, s.done) {
			return
		}
		if fatal {
			in.Abandon()
			return
		}
	}
}

// pollute runs one batch through the shard's pipeline in place,
// recording log entries into the batch's flat entry arena. In arena
// mode each tuple is first cloned into the batch's value block, so the
// source's buffers are never written. Reports whether a fatal error
// truncated the batch.
func (s *shardedSource) pollute(pipe *Pipeline, b *shardBatch, scratch *Log) bool {
	logged := scratch != nil
	if logged {
		b.entryOff = append(b.entryOff[:0], 0)
	}
	if s.arena {
		if need := len(b.items) * s.width; cap(b.vals) < need {
			b.vals = make([]stream.Value, need)
		}
	}
	for i := range b.items {
		item := &b.items[i]
		if s.arena {
			item.t.CloneValuesInto(b.vals[i*s.width : i*s.width : (i+1)*s.width])
		}
		if logged {
			scratch.Entries = scratch.Entries[:0]
		}
		var span func()
		if s.trace && s.reg.Sampled(item.t.ID) {
			id, start := item.t.ID, time.Now()
			span = func() { s.reg.ObserveSpan(obs.StagePollute, id, time.Since(start)) }
		}
		if s.fault.Quarantine {
			// The one shared fault/rollback code path (polluteOne) — the
			// merger books the returned dead letter in prepared order.
			ok, dl := polluteOne(pipe, &item.t, scratch, 0, s.fault)
			if !ok {
				if b.dls == nil {
					b.dls = make([]*stream.DeadLetter, len(b.items))
				}
				b.dls[i] = dl
			}
		} else {
			// Fail fast, but a panic must not escape a goroutine: it
			// surfaces as a fatal stream error instead, truncating the
			// batch at the failing tuple so the merge stops exactly
			// where the sequential run would.
			if err := safePollute(pipe, &item.t, item.t.EventTime, scratch); err != nil {
				b.err = fmt.Errorf("core: shard pollute tuple %d: %w", item.t.ID, err)
				b.errSeq = item.seq
				b.items = b.items[:i]
				if logged {
					b.entryOff = b.entryOff[:i+1]
				}
				return true
			}
		}
		if span != nil {
			span()
		}
		if logged {
			b.entryBuf = append(b.entryBuf, scratch.Entries...)
			b.entryOff = append(b.entryOff, int32(len(b.entryBuf)))
		}
	}
	return false
}

// Next implements stream.Source: the merge. In strict mode it restores
// prepared order by scanning the <= Shards current batch heads for the
// next sequence number (each prepared seq is owned by exactly one
// shard and per-shard output is seq-ordered, so the scan is exact); in
// relaxed mode it drains whichever shards have output, preserving
// per-shard order only. Either way it appends the per-tuple log
// entries and dead letters in emission order, filters dropped and
// quarantined tuples, and — after the first fatal error — consistently
// returns that error.
func (s *shardedSource) Next() (stream.Tuple, error) {
	if !s.started {
		if s.err != nil {
			return stream.Tuple{}, s.err
		}
		s.start()
	}
	s.recycleRetired()
	for spins := 0; ; {
		if s.err != nil {
			return stream.Tuple{}, s.err
		}
		if s.closed {
			return stream.Tuple{}, io.EOF
		}
		progress := s.advance()
		var (
			t        stream.Tuple
			emitted  bool
			consumed bool
		)
		if s.order == OrderRelaxed {
			t, emitted, consumed = s.serveRelaxed()
		} else {
			t, emitted, consumed = s.serveStrict()
		}
		if emitted {
			return t, nil
		}
		if consumed {
			spins = 0
			continue
		}
		if s.nFin == len(s.cur) {
			// All workers done and everything merged.
			if s.srcErr != nil {
				s.fail(s.srcErr)
				continue
			}
			s.closed = true
			continue
		}
		if progress {
			spins = 0
			continue
		}
		// Starved: the next batch is still being polluted. Yield
		// briefly, then park in short sleeps — flooding the scheduler
		// with spins is counterproductive when shards exceed cores.
		spins++
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// advance retires exhausted current batches and pulls newly available
// ones from the out rings, reporting whether anything changed. A batch
// carrying a fatal error is held after exhaustion until the merge
// reaches its error position.
func (s *shardedSource) advance() bool {
	progress := false
	for sh := range s.cur {
		b := s.cur[sh]
		if b != nil && s.pos[sh] >= len(b.items) && b.err == nil {
			s.retire(sh)
			b = nil
			progress = true
		}
		if b == nil && !s.finished[sh] {
			if nb, ok := s.outs[sh].TryPop(); ok {
				s.cur[sh], s.pos[sh] = nb, 0
				progress = true
			} else if s.outs[sh].Drained() {
				s.finished[sh] = true
				s.nFin++
				progress = true
			}
		}
	}
	return progress
}

// serveStrict consumes the item carrying the next sequence number, if
// it is available. Returns the tuple (when one was emitted), whether a
// tuple was emitted, and whether any item was consumed.
func (s *shardedSource) serveStrict() (stream.Tuple, bool, bool) {
	for sh := range s.cur {
		b := s.cur[sh]
		if b == nil {
			continue
		}
		if s.pos[sh] < len(b.items) {
			if b.items[s.pos[sh]].seq == s.nextSeq {
				t, ok := s.consume(sh)
				return t, ok, true
			}
		} else if b.err != nil && b.errSeq == s.nextSeq {
			// Every sequence number below the failure has been
			// emitted; surface the error at exactly its position.
			s.fail(b.err)
			return stream.Tuple{}, false, true
		}
	}
	return stream.Tuple{}, false, false
}

// serveRelaxed consumes from whichever shard has output, preferring to
// finish the current shard's batch for locality.
func (s *shardedSource) serveRelaxed() (stream.Tuple, bool, bool) {
	n := len(s.cur)
	for k := 0; k < n; k++ {
		sh := (s.rr + k) % n
		b := s.cur[sh]
		if b == nil {
			continue
		}
		if s.pos[sh] < len(b.items) {
			s.rr = sh
			t, ok := s.consume(sh)
			return t, ok, true
		}
		if b.err != nil {
			s.fail(b.err)
			return stream.Tuple{}, false, true
		}
	}
	return stream.Tuple{}, false, false
}

// consume takes the current item of shard sh: books its log entries
// and dead letter, filters drops and quarantines, and returns the
// tuple when it survives.
func (s *shardedSource) consume(sh int) (stream.Tuple, bool) {
	b := s.cur[sh]
	i := s.pos[sh]
	it := &b.items[i]
	s.pos[sh] = i + 1
	s.nextSeq = it.seq + 1
	if s.log != nil && len(b.entryOff) > i+1 {
		lo, hi := b.entryOff[i], b.entryOff[i+1]
		if hi > lo {
			s.log.Entries = append(s.log.Entries, b.entryBuf[lo:hi]...)
		}
	}
	if b.dls != nil && b.dls[i] != nil {
		if err := s.fault.record(s.dlq, *b.dls[i]); err != nil {
			s.fail(err)
			return stream.Tuple{}, false
		}
	}
	if it.t.Quarantined {
		return stream.Tuple{}, false
	}
	if it.t.Dropped {
		s.reg.Inc(obs.CTuplesDropped)
		return stream.Tuple{}, false
	}
	s.reg.Inc(obs.CTuplesOut)
	s.emitted++
	return it.t, true
}

// arenaMargin is how many merger emissions must pass after an arena
// batch retires before its value block may be reused: the consumer's
// one loaned tuple, plus slack for the emission in flight.
const arenaMargin = 3

// retire hands an exhausted batch back for recycling. Non-arena
// batches recycle immediately (nothing references them once their
// entries and dead letters are booked); arena batches wait in a small
// FIFO until the consumer can no longer hold a loaned tuple backed by
// their value block — unless a reorder buffer sits downstream
// (s.recycle false), in which case tuple lifetimes are unbounded in
// emissions and the batch is simply dropped to the GC.
func (s *shardedSource) retire(sh int) {
	b := s.cur[sh]
	s.cur[sh] = nil
	if !s.arena {
		b.reset(true)
		s.frees[sh].TryPush(b) // a full free ring drops the batch to the GC
		return
	}
	if !s.recycle {
		return
	}
	s.retired = append(s.retired, retiredBatch{shard: sh, b: b, mark: s.emitted})
}

// recycleRetired returns arena batches whose retirement margin has
// passed to their shard's free ring. Called at the top of Next, when
// the consumer has relinquished the previously loaned tuple.
func (s *shardedSource) recycleRetired() {
	n := 0
	for _, rb := range s.retired {
		if s.emitted-rb.mark < arenaMargin {
			break
		}
		rb.b.reset(false)
		s.frees[rb.shard].TryPush(rb.b)
		n++
	}
	if n > 0 {
		s.retired = append(s.retired[:0], s.retired[n:]...)
	}
}

func (s *shardedSource) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.stop()
}

func (s *shardedSource) stop() {
	s.stopOnce.Do(func() { close(s.done) })
}

// Stop implements stream.Stopper: it releases the feeder and worker
// goroutines of an abandoned stream. Subsequent Next calls return
// stream.ErrStopped (or the earlier fatal error, if any).
func (s *shardedSource) Stop() {
	if !s.started {
		if s.err == nil {
			s.err = stream.ErrStopped
		}
		return
	}
	if s.err == nil {
		s.err = stream.ErrStopped
	}
	s.stop()
	s.wg.Wait()
}

// hashKey maps a key value to a deterministic 64-bit hash (FNV-1a over
// the kind tag and raw payload), allocation-free for every kind — in
// particular it never renders floats or timestamps to strings on the
// hot path.
func hashKey(v stream.Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	h ^= uint64(v.Kind())
	h *= prime64
	switch v.Kind() {
	case stream.KindFloat:
		f, _ := v.AsFloat()
		mix(math.Float64bits(f))
	case stream.KindInt:
		i, _ := v.AsInt()
		mix(uint64(i))
	case stream.KindString:
		str, _ := v.AsString()
		for i := 0; i < len(str); i++ {
			h ^= uint64(str[i])
			h *= prime64
		}
	case stream.KindBool:
		b, _ := v.AsBool()
		if b {
			mix(1)
		} else {
			mix(0)
		}
	case stream.KindTime:
		t, _ := v.AsTime()
		mix(uint64(t.UnixNano()))
	}
	return h
}
