package core

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"icewafl/internal/obs"
	"icewafl/internal/stream"
)

// This file implements hash-sharded keyed execution: the pollution hot
// path of a keyed pipeline partitioned across N shard workers. Tuples
// are routed by a deterministic hash of their key attribute, each shard
// owns an independent pipeline instance (per-key state, sticky holds,
// frozen values, RNG streams), and an order-restoring merge re-emits
// tuples — and their pollution-log entries, dead letters and drops — in
// exactly the prepared input order.
//
// Determinism argument. A keyed pipeline whose per-key instances derive
// ALL their state and randomness from the key (KeyedPolluter with a
// key-deriving factory, e.g. rng.Derive(seed, "noise/"+key)) computes a
// function of the per-key subsequence only. Hash sharding partitions
// the stream by key, so every shard sees each of its keys' subsequences
// in the original order; the per-tuple results are therefore identical
// to the sequential run, and the order-restoring merge (by prepared
// sequence number) re-serialises tuples, log entries and dead letters
// into the sequential order. The output is byte-identical to
// RunStream — property-tested for 2/4/8 shards under -race.

// ShardConfig configures RunStreamSharded.
type ShardConfig struct {
	// KeyAttr names the attribute whose value routes tuples to shards.
	// It should match the KeyAttr of the pipeline's keyed polluters.
	KeyAttr string
	// Shards is the number of parallel workers. Values <= 1 run the
	// plain sequential streaming path (same code path as RunStream).
	Shards int
	// NewPipeline builds the pipeline instance owned by shard i. Every
	// invocation must return a freshly constructed, identically
	// configured pipeline; for byte-identical output the per-key state
	// and randomness must derive from keys, not from shard-global
	// streams. Nil is allowed when the process pipeline consists only of
	// KeyedPolluters, which shard automatically.
	NewPipeline func(shard int) *Pipeline
	// Buffer is the per-shard in-flight tuple budget (default 64).
	// Tuples travel between the feeder, the workers and the merger in
	// batches, so the effective channel depth is Buffer/shardBatchSize
	// batches (minimum 1).
	Buffer int
}

// RunStreamSharded executes the single-pipeline streaming workflow with
// the keyed hot path partitioned across cfg.Shards workers. Semantics
// match RunStream exactly — same output, same pollution log, same
// dead-letter order — with one deliberate difference: without
// quarantine, a panicking pipeline surfaces as a fatal stream error
// instead of a panic (a panic must not escape a shard goroutine).
// Checkpointing is not supported in sharded mode; use
// RunStreamCheckpointed on the sequential path instead.
func (pr *Process) RunStreamSharded(src stream.Source, reorderWindow int, cfg ShardConfig) (stream.Source, *Log, error) {
	if len(pr.Pipelines) != 1 && cfg.NewPipeline == nil {
		return nil, nil, fmt.Errorf("core: sharded streaming supports exactly one pipeline, got %d", len(pr.Pipelines))
	}
	pr.resetPipelines()
	if cfg.Shards <= 1 {
		// Shared sequential code path: the sharded runner at 1 shard IS
		// RunStream, so the fault/rollback behaviour cannot diverge.
		p2 := *pr
		if cfg.NewPipeline != nil {
			p2.Pipelines = []*Pipeline{cfg.NewPipeline(0)}
		}
		return p2.RunStream(src, reorderWindow)
	}
	newPipeline := cfg.NewPipeline
	if newPipeline == nil {
		var ok bool
		newPipeline, ok = keyedFactory(pr.Pipelines[0])
		if !ok {
			return nil, nil, fmt.Errorf("core: sharded streaming needs ShardConfig.NewPipeline unless every polluter is keyed")
		}
	}
	if cfg.KeyAttr == "" {
		return nil, nil, fmt.Errorf("core: sharded streaming needs ShardConfig.KeyAttr")
	}
	keyIdx := src.Schema().Index(cfg.KeyAttr)
	if keyIdx < 0 {
		return nil, nil, fmt.Errorf("core: shard key attribute %q not in schema", cfg.KeyAttr)
	}
	buffer := cfg.Buffer
	if buffer <= 0 {
		buffer = 64
	}
	firstID := pr.FirstID
	if firstID == 0 {
		firstID = 1
	}
	// The merged log deliberately carries no registry: its entries are
	// recorded (and counted) by the per-worker scratch logs and appended
	// here by the merger, so attaching the registry twice would double
	// count.
	var log *Log
	if !pr.DisableLog {
		log = NewLog()
	}
	dlq := pr.instrumentDLQ(pr.Fault.queue())
	pr.Obs.SetShards(cfg.Shards)
	var in stream.Source = stream.ObserveSource(src, pr.Obs)
	if pr.Fault.Quarantine {
		in = stream.Quarantine(in, dlq, pr.Fault.MaxQuarantined)
	}
	pipes := make([]*Pipeline, cfg.Shards)
	for i := range pipes {
		pipes[i] = newPipeline(i)
		if pipes[i] == nil {
			return nil, nil, fmt.Errorf("core: ShardConfig.NewPipeline returned nil for shard %d", i)
		}
	}
	sh := &shardedSource{
		src:    stream.NewPrepare(in, firstID),
		schema: src.Schema(),
		pipes:  pipes,
		keyIdx: keyIdx,
		buffer: buffer,
		log:    log,
		fault:  pr.Fault,
		dlq:    dlq,
		reg:    pr.Obs,
		trace:  pr.Obs.TraceEnabled(),
	}
	if reorderWindow > 1 {
		return stream.NewBoundedReorder(sh, reorderWindow), log, nil
	}
	return sh, log, nil
}

// keyedFactory derives a per-shard pipeline factory from a prototype
// pipeline consisting only of KeyedPolluters: each shard gets fresh
// keyed polluters sharing the prototype's per-key factories, so per-key
// state is rebuilt independently inside each shard.
func keyedFactory(proto *Pipeline) (func(int) *Pipeline, bool) {
	for _, p := range proto.Polluters {
		if _, ok := p.(*KeyedPolluter); !ok {
			return nil, false
		}
	}
	return func(int) *Pipeline {
		pols := make([]Polluter, len(proto.Polluters))
		for i, p := range proto.Polluters {
			pols[i] = p.(*KeyedPolluter).CloneEmpty()
		}
		return NewPipeline(pols...)
	}, true
}

// shardItem is one tuple in flight to a shard worker.
type shardItem struct {
	seq uint64
	t   stream.Tuple
}

// shardBatchSize is how many tuples travel per channel operation. On a
// lightweight per-tuple workload the fan-out/fan-in channel round trips
// dominate; batching amortises them ~shardBatchSize-fold without
// affecting determinism (the merger orders by sequence number, not by
// arrival).
const shardBatchSize = 64

// shardResult is one processed tuple on its way back to the merger.
type shardResult struct {
	seq     uint64
	t       stream.Tuple
	entries []Entry
	dl      *stream.DeadLetter
	err     error
}

// shardedSource fans prepared tuples out to shard workers and merges the
// results back in prepared order. It follows the same consumer-driven
// state machine as stream.ParallelMap: lazily started, stopping promptly
// on the first fatal error, releasing all goroutines on Stop.
type shardedSource struct {
	src    *stream.Prepare
	schema *stream.Schema
	pipes  []*Pipeline
	keyIdx int
	buffer int
	log    *Log
	fault  FaultPolicy
	dlq    *stream.DeadLetterQueue
	reg    *obs.Registry
	trace  bool

	started  bool
	out      chan []shardResult
	done     chan struct{}
	stopOnce sync.Once
	err      error
	pending  shardReorder
	nextSeq  uint64
	closed   bool
}

// Schema implements stream.Source.
func (s *shardedSource) Schema() *stream.Schema { return s.schema }

func (s *shardedSource) start() {
	s.started = true
	n := len(s.pipes)
	s.out = make(chan []shardResult, n*2)
	s.done = make(chan struct{})
	// Channel depth is measured in batches; keep roughly the configured
	// per-shard tuple budget in flight.
	depth := s.buffer / shardBatchSize
	if depth < 1 {
		depth = 1
	}
	ins := make([]chan []shardItem, n)
	for i := range ins {
		ins[i] = make(chan []shardItem, depth)
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go s.worker(s.pipes[w], ins[w], &wg)
	}
	go func() {
		batches := make([][]shardItem, n)
		flush := func(shard int) bool {
			if len(batches[shard]) == 0 {
				return true
			}
			select {
			case ins[shard] <- batches[shard]:
				batches[shard] = nil
				return true
			case <-s.done:
				return false
			}
		}
		var seq uint64
	feed:
		for {
			select {
			case <-s.done:
				break feed
			default:
			}
			t, err := s.src.Next()
			if err != nil {
				if err != io.EOF {
					select {
					case s.out <- []shardResult{{err: err}}:
					case <-s.done:
					}
				}
				break
			}
			shard := int(hashKey(t.At(s.keyIdx)) % uint64(n))
			s.reg.Inc(obs.CTuplesIn)
			s.reg.AddShard(shard, 1)
			if batches[shard] == nil {
				batches[shard] = make([]shardItem, 0, shardBatchSize)
			}
			batches[shard] = append(batches[shard], shardItem{seq: seq, t: t})
			if len(batches[shard]) == shardBatchSize && !flush(shard) {
				break feed
			}
			seq++
		}
		for shard := range batches {
			if !flush(shard) {
				break
			}
		}
		for _, in := range ins {
			close(in)
		}
		wg.Wait()
		close(s.out)
	}()
}

// worker pollutes the tuples of one shard with the shard's own pipeline
// instance, logging into a scratch log whose entries travel with the
// result so the merger can serialise them in prepared order.
func (s *shardedSource) worker(pipe *Pipeline, in chan []shardItem, wg *sync.WaitGroup) {
	defer wg.Done()
	var scratch *Log
	if s.log != nil {
		// The scratch log carries the registry, so entry counts (and
		// condition hit/miss tallies) are booked — and rolled back — at
		// recording time; the merger then appends the surviving entries
		// to the uncounted merged log.
		scratch = NewLog()
		scratch.Obs = s.reg
	}
	for batch := range in {
		results := make([]shardResult, 0, len(batch))
		fatal := false
		for i := range batch {
			item := &batch[i]
			res := shardResult{seq: item.seq}
			if scratch != nil {
				scratch.Entries = scratch.Entries[:0]
			}
			var span func()
			if s.trace && s.reg.Sampled(item.t.ID) {
				id, start := item.t.ID, time.Now()
				span = func() { s.reg.ObserveSpan(obs.StagePollute, id, time.Since(start)) }
			}
			if s.fault.Quarantine {
				// The one shared fault/rollback code path (polluteOne) — the
				// merger books the returned dead letter in prepared order.
				ok, dl := polluteOne(pipe, &item.t, scratch, 0, s.fault)
				if !ok {
					res.dl = dl
				}
			} else {
				// Fail fast, but a panic must not escape a goroutine: it
				// surfaces as a fatal stream error instead.
				if err := safePollute(pipe, &item.t, item.t.EventTime, scratch); err != nil {
					res.err = fmt.Errorf("core: shard pollute tuple %d: %w", item.t.ID, err)
					fatal = true
				}
			}
			if span != nil {
				span()
			}
			res.t = item.t
			if res.err == nil && scratch != nil && len(scratch.Entries) > 0 {
				res.entries = append([]Entry(nil), scratch.Entries...)
			}
			results = append(results, res)
			if fatal {
				break
			}
		}
		select {
		case s.out <- results:
		case <-s.done:
			return
		}
		if fatal {
			return
		}
	}
}

// Next implements stream.Source. It restores prepared order, appends the
// per-tuple log entries and dead letters in that order, filters dropped
// and quarantined tuples, and — after the first fatal error —
// consistently returns that error.
func (s *shardedSource) Next() (stream.Tuple, error) {
	if !s.started {
		if s.err != nil {
			return stream.Tuple{}, s.err
		}
		s.start()
	}
	for {
		if s.err == nil {
			if res, ok := s.pending.takeNext(); ok {
				s.nextSeq++
				if s.log != nil {
					s.log.Entries = append(s.log.Entries, res.entries...)
				}
				if res.dl != nil {
					if err := s.fault.record(s.dlq, *res.dl); err != nil {
						s.err = err
						s.stop()
						continue
					}
				}
				if res.t.Quarantined {
					continue
				}
				if res.t.Dropped {
					s.reg.Inc(obs.CTuplesDropped)
					continue
				}
				s.reg.Inc(obs.CTuplesOut)
				return res.t, nil
			}
		}
		if s.closed {
			if s.err != nil {
				return stream.Tuple{}, s.err
			}
			return stream.Tuple{}, io.EOF
		}
		batch, ok := <-s.out
		if !ok {
			s.closed = true
			continue
		}
		for _, res := range batch {
			if res.err != nil {
				if s.err == nil {
					s.err = res.err
				}
				s.stop()
				break
			}
			if s.err == nil {
				s.pending.put(int(res.seq-s.nextSeq), res)
			}
		}
	}
}

func (s *shardedSource) stop() {
	s.stopOnce.Do(func() { close(s.done) })
}

// Stop implements stream.Stopper: it releases the feeder and worker
// goroutines of an abandoned stream. Subsequent Next calls return
// stream.ErrStopped (or the earlier fatal error, if any).
func (s *shardedSource) Stop() {
	if !s.started {
		s.err = stream.ErrStopped
		return
	}
	if s.err == nil {
		s.err = stream.ErrStopped
	}
	s.stop()
	for !s.closed {
		if _, ok := <-s.out; !ok {
			s.closed = true
		}
	}
}

// shardReorder is a circular buffer restoring prepared order over the
// out-of-order completions of the shard workers; the sharded twin of the
// engine's reorderBuf. It grows to the in-flight bound once and then
// operates allocation-free.
type shardReorder struct {
	items []shardResult
	full  []bool
	head  int
}

func (b *shardReorder) grow(min int) {
	capNew := 8
	for capNew < min {
		capNew *= 2
	}
	items := make([]shardResult, capNew)
	full := make([]bool, capNew)
	for i := range b.items {
		src := (b.head + i) % len(b.items)
		items[i] = b.items[src]
		full[i] = b.full[src]
	}
	b.items, b.full, b.head = items, full, 0
}

func (b *shardReorder) put(offset int, r shardResult) {
	if offset >= len(b.items) {
		b.grow(offset + 1)
	}
	i := (b.head + offset) % len(b.items)
	b.items[i] = r
	b.full[i] = true
}

func (b *shardReorder) takeNext() (shardResult, bool) {
	if len(b.items) == 0 || !b.full[b.head] {
		return shardResult{}, false
	}
	r := b.items[b.head]
	b.items[b.head] = shardResult{}
	b.full[b.head] = false
	b.head = (b.head + 1) % len(b.items)
	return r, true
}

// hashKey maps a key value to a deterministic 64-bit hash (FNV-1a over
// the kind tag and raw payload), allocation-free for every kind — in
// particular it never renders floats or timestamps to strings on the
// hot path.
func hashKey(v stream.Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	h ^= uint64(v.Kind())
	h *= prime64
	switch v.Kind() {
	case stream.KindFloat:
		f, _ := v.AsFloat()
		mix(math.Float64bits(f))
	case stream.KindInt:
		i, _ := v.AsInt()
		mix(uint64(i))
	case stream.KindString:
		str, _ := v.AsString()
		for i := 0; i < len(str); i++ {
			h ^= uint64(str[i])
			h *= prime64
		}
	case stream.KindBool:
		b, _ := v.AsBool()
		if b {
			mix(1)
		} else {
			mix(0)
		}
	case stream.KindTime:
		t, _ := v.AsTime()
		mix(uint64(t.UnixNano()))
	}
	return h
}
