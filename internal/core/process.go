package core

import (
	"fmt"

	"icewafl/internal/stream"
)

// Process executes the end-to-end pollution workflow of Algorithm 1:
//
//	Step 1 — prepare: assign IDs, replicate the timestamp into τ, and
//	          extract m (overlapping) sub-streams;
//	Step 2 — pollute: pass every tuple of sub-stream i through pipeline i;
//	Step 3 — integrate: union the sub-streams (attaching the sub-stream
//	          identifier), sort by delivery time, and return both the
//	          clean stream D and the polluted stream D^p.
type Process struct {
	// Pipelines holds one pollution pipeline per sub-stream; m =
	// len(Pipelines).
	Pipelines []*Pipeline
	// Route extracts the sub-streams. Nil with m == 1 routes everything
	// to the single pipeline; nil with m > 1 routes every tuple to every
	// sub-stream (full overlap).
	Route stream.RouteFunc
	// FirstID numbers the prepared tuples starting here (default 1).
	FirstID uint64
	// Parallel, when > 1, pollutes the sub-streams concurrently. The
	// result is identical to sequential execution because each
	// sub-stream owns its pipelines, RNG streams and log.
	Parallel bool
	// KeepClean controls whether the clean stream is materialised and
	// returned. Experiments that only need D^p can switch it off.
	KeepClean bool
	// DisableLog switches off the pollution log (it is an optional
	// output per Figure 2). Without the log there is no ground truth,
	// but pure throughput workloads avoid its allocation cost.
	DisableLog bool
}

// Result is the output of one pollution run.
type Result struct {
	// Clean is the prepared input stream D (nil unless KeepClean).
	Clean []stream.Tuple
	// Polluted is the merged polluted stream D^p, sorted by delivery
	// time; dropped tuples are excluded.
	Polluted []stream.Tuple
	// Log is the merged pollution log across all sub-streams.
	Log *Log
	// DroppedTuples counts tuples removed by drop errors.
	DroppedTuples int
}

// NewProcess returns a single-pipeline process that keeps the clean
// stream.
func NewProcess(p *Pipeline) *Process {
	return &Process{Pipelines: []*Pipeline{p}, FirstID: 1, KeepClean: true}
}

// Run executes the workflow over a bounded source.
func (pr *Process) Run(src stream.Source) (*Result, error) {
	m := len(pr.Pipelines)
	if m == 0 {
		return nil, fmt.Errorf("core: process needs at least one pipeline")
	}
	firstID := pr.FirstID
	if firstID == 0 {
		firstID = 1
	}

	// Step 1: prepare and materialise. Materialising the prepared stream
	// keeps the clean copy D and feeds the sub-stream extraction.
	prepared, err := stream.Drain(stream.NewPrepare(src, firstID))
	if err != nil {
		return nil, fmt.Errorf("core: prepare: %w", err)
	}

	route := pr.Route
	if route == nil {
		if m == 1 {
			route = func(stream.Tuple, int) []int { return []int{0} }
		} else {
			route = stream.RouteAll
		}
	}

	subs := make([][]stream.Tuple, m)
	for _, t := range prepared {
		for _, tgt := range route(t, m) {
			if tgt < 0 || tgt >= m {
				continue
			}
			subs[tgt] = append(subs[tgt], t.Clone())
		}
	}

	// Step 2: pollute every sub-stream with its pipeline.
	logs := make([]*Log, m)
	if pr.Parallel && m > 1 {
		errs := make(chan error, m)
		for i := 0; i < m; i++ {
			go func(i int) {
				logs[i] = NewLog()
				errs <- polluteSub(subs[i], pr.Pipelines[i], logs[i])
			}(i)
		}
		for i := 0; i < m; i++ {
			if e := <-errs; e != nil && err == nil {
				err = e
			}
		}
		if err != nil {
			return nil, err
		}
	} else {
		for i := 0; i < m; i++ {
			logs[i] = NewLog()
			if err := polluteSub(subs[i], pr.Pipelines[i], logs[i]); err != nil {
				return nil, err
			}
		}
	}

	// Step 3: integrate — union with sub-stream identifiers, drop
	// removed tuples, sort by delivery time.
	res := &Result{Log: NewLog()}
	for i := 0; i < m; i++ {
		res.Log.Merge(logs[i], i)
		for _, t := range subs[i] {
			if t.Dropped {
				res.DroppedTuples++
				continue
			}
			t.SubStream = i
			res.Polluted = append(res.Polluted, t)
		}
	}
	stream.SortByArrival(res.Polluted)
	if pr.KeepClean {
		res.Clean = prepared
	}
	return res, nil
}

func polluteSub(tuples []stream.Tuple, p *Pipeline, log *Log) error {
	if p == nil {
		return fmt.Errorf("core: nil pipeline")
	}
	for i := range tuples {
		p.Apply(&tuples[i], tuples[i].EventTime, log)
	}
	return nil
}

// RunStream executes the single-pipeline workflow in a streaming fashion:
// prepared tuples flow through the pipeline one by one and are re-ordered
// only within a bounded window, so unbounded sources work with constant
// memory. Only m = 1 is supported in streaming mode; dropped tuples are
// filtered out. The returned log is nil when DisableLog is set.
//
// Streaming mode pollutes tuples in place, taking ownership of whatever
// the source emits. Readers and generators mint a fresh tuple per Next
// call and are safe; to stream over a shared []Tuple slice whose contents
// must survive, clone in a Map stage first (batch Run does this for you).
func (pr *Process) RunStream(src stream.Source, reorderWindow int) (stream.Source, *Log, error) {
	if len(pr.Pipelines) != 1 {
		return nil, nil, fmt.Errorf("core: streaming mode supports exactly one pipeline, got %d", len(pr.Pipelines))
	}
	firstID := pr.FirstID
	if firstID == 0 {
		firstID = 1
	}
	var log *Log
	if !pr.DisableLog {
		log = NewLog()
	}
	// Streaming mode takes ownership of the source's tuples: sources
	// produce a fresh tuple per Next call, so in-place pollution is safe
	// and the per-tuple clone of batch mode is unnecessary. Preparation,
	// pollution and drop-filtering are fused into one operator to keep
	// the per-tuple cost minimal.
	polluted := &streamRunner{src: stream.NewPrepare(src, firstID), p: pr.Pipelines[0], log: log}
	if reorderWindow > 1 {
		return stream.NewBoundedReorder(polluted, reorderWindow), log, nil
	}
	return polluted, log, nil
}

// RunStreamMulti executes the full m-pipeline workflow in streaming
// fashion: the prepared stream is split into the m (possibly
// overlapping) sub-streams, each flows through its pipeline tuple-wise,
// is re-sorted within a bounded window, and the sub-streams are merged
// with a k-way merge — the constant-memory analogue of Run for unbounded
// sources. Logging follows DisableLog; the merged log is only complete
// once the returned source is exhausted.
func (pr *Process) RunStreamMulti(src stream.Source, reorderWindow int) (stream.Source, *Log, error) {
	m := len(pr.Pipelines)
	if m == 0 {
		return nil, nil, fmt.Errorf("core: process needs at least one pipeline")
	}
	if m == 1 {
		return pr.RunStream(src, reorderWindow)
	}
	firstID := pr.FirstID
	if firstID == 0 {
		firstID = 1
	}
	route := pr.Route
	if route == nil {
		route = stream.RouteAll
	}
	var log *Log
	if !pr.DisableLog {
		log = NewLog()
	}
	subs := stream.Split(stream.NewPrepare(src, firstID), m, route)
	branches := make([]stream.Source, m)
	for i := range subs {
		runner := &subStreamRunner{src: subs[i], p: pr.Pipelines[i], log: log, sub: i}
		if reorderWindow > 1 {
			branches[i] = stream.NewBoundedReorder(runner, reorderWindow)
		} else {
			branches[i] = runner
		}
	}
	merged, err := stream.NewKWayMerge(branches)
	if err != nil {
		return nil, nil, err
	}
	return merged, log, nil
}

// subStreamRunner pollutes one sub-stream of a multi-pipeline streaming
// run. Split already hands each sub-stream its own clones, so in-place
// pollution is safe.
type subStreamRunner struct {
	src stream.Source
	p   *Pipeline
	log *Log
	sub int
}

// Schema implements stream.Source.
func (r *subStreamRunner) Schema() *stream.Schema { return r.src.Schema() }

// Next implements stream.Source.
func (r *subStreamRunner) Next() (stream.Tuple, error) {
	for {
		t, err := r.src.Next()
		if err != nil {
			return t, err
		}
		before := 0
		if r.log != nil {
			before = len(r.log.Entries)
		}
		r.p.Apply(&t, t.EventTime, r.log)
		if r.log != nil {
			for i := before; i < len(r.log.Entries); i++ {
				r.log.Entries[i].SubStream = r.sub
			}
		}
		if t.Dropped {
			continue
		}
		t.SubStream = r.sub
		return t, nil
	}
}

// streamRunner is the fused prepare → pollute → drop-filter operator of
// streaming mode.
type streamRunner struct {
	src *stream.Prepare
	p   *Pipeline
	log *Log
}

// Schema implements stream.Source.
func (r *streamRunner) Schema() *stream.Schema { return r.src.Schema() }

// Next implements stream.Source.
func (r *streamRunner) Next() (stream.Tuple, error) {
	for {
		t, err := r.src.Next()
		if err != nil {
			return t, err
		}
		r.p.Apply(&t, t.EventTime, r.log)
		if t.Dropped {
			continue
		}
		return t, nil
	}
}
