package core

import (
	"context"
	"fmt"
	"time"

	"icewafl/internal/obs"
	"icewafl/internal/stream"
)

// FaultPolicy configures how a pollution run reacts to tuple-level
// failures: malformed input rows and panicking pipeline components.
// The zero value is fail-fast (first failure aborts the run), matching
// the historical behaviour.
type FaultPolicy struct {
	// Quarantine skips failing tuples instead of aborting: malformed
	// input rows and tuples whose pollution panics are recorded as dead
	// letters (with cause and position) and excluded from the output.
	Quarantine bool
	// MaxQuarantined caps the number of dead letters (0 = unlimited);
	// exceeding it aborts with stream.ErrQuarantineOverflow so a
	// systematically broken input cannot silently drop everything.
	MaxQuarantined int
	// DLQ receives the dead letters. nil with Quarantine set allocates
	// a fresh queue per run (readable via Result.Quarantined or
	// Checkpointer.DeadLetters).
	DLQ *stream.DeadLetterQueue
}

// queue returns the dead-letter queue for one run.
func (f FaultPolicy) queue() *stream.DeadLetterQueue {
	if !f.Quarantine {
		return nil
	}
	if f.DLQ != nil {
		return f.DLQ
	}
	return stream.NewDeadLetterQueue()
}

// Process executes the end-to-end pollution workflow of Algorithm 1:
//
//	Step 1 — prepare: assign IDs, replicate the timestamp into τ, and
//	          extract m (overlapping) sub-streams;
//	Step 2 — pollute: pass every tuple of sub-stream i through pipeline i;
//	Step 3 — integrate: union the sub-streams (attaching the sub-stream
//	          identifier), sort by delivery time, and return both the
//	          clean stream D and the polluted stream D^p.
type Process struct {
	// Pipelines holds one pollution pipeline per sub-stream; m =
	// len(Pipelines).
	Pipelines []*Pipeline
	// Route extracts the sub-streams. Nil with m == 1 routes everything
	// to the single pipeline; nil with m > 1 routes every tuple to every
	// sub-stream (full overlap).
	Route stream.RouteFunc
	// FirstID numbers the prepared tuples starting here (default 1).
	FirstID uint64
	// Parallel, when > 1, pollutes the sub-streams concurrently. The
	// result is identical to sequential execution because each
	// sub-stream owns its pipelines, RNG streams and log.
	Parallel bool
	// KeepClean controls whether the clean stream is materialised and
	// returned. Experiments that only need D^p can switch it off.
	KeepClean bool
	// DisableLog switches off the pollution log (it is an optional
	// output per Figure 2). Without the log there is no ground truth,
	// but pure throughput workloads avoid its allocation cost.
	DisableLog bool
	// Fault selects the fault-tolerance behaviour (zero = fail fast).
	Fault FaultPolicy
	// Columnar tunes RunStreamColumnar (batch size, emission pooling);
	// the zero value uses defaults. It has no effect on the tuple-wise
	// entry points.
	Columnar ColumnarOptions
	// Obs, when non-nil, receives per-stage metrics and sampled traces
	// for every run of this process. All hooks are nil-safe, so the
	// uninstrumented hot path pays only a nil check.
	Obs *obs.Registry
	// CleanTap, when non-nil, observes a clone of every prepared (clean)
	// tuple before pollution. It lets a caller — the network server in
	// particular — stream the clean side D without a second pass over
	// the input, even in streaming mode where the fused runner never
	// materialises it. The tap runs synchronously on the runner
	// goroutine; it must not retain the clone beyond its own use.
	CleanTap func(stream.Tuple)
}

// newLog returns a fresh pollution log wired into the process's
// registry (nil when logging is disabled).
func (pr *Process) newLog() *Log {
	if pr.DisableLog {
		return nil
	}
	l := NewLog()
	l.Obs = pr.Obs
	return l
}

// instrumentDLQ wires a run's dead-letter queue into the registry.
func (pr *Process) instrumentDLQ(dlq *stream.DeadLetterQueue) *stream.DeadLetterQueue {
	dlq.Instrument(pr.Obs)
	return dlq
}

// Result is the output of one pollution run.
type Result struct {
	// Clean is the prepared input stream D (nil unless KeepClean).
	Clean []stream.Tuple
	// Polluted is the merged polluted stream D^p, sorted by delivery
	// time; dropped tuples are excluded.
	Polluted []stream.Tuple
	// Log is the merged pollution log across all sub-streams.
	Log *Log
	// DroppedTuples counts tuples removed by drop errors.
	DroppedTuples int
	// Quarantined holds the dead letters of tuples the fault policy
	// skipped: malformed input rows and tuples whose pollution failed.
	Quarantined []stream.DeadLetter
}

// NewProcess returns a single-pipeline process that keeps the clean
// stream.
func NewProcess(p *Pipeline) *Process {
	return &Process{Pipelines: []*Pipeline{p}, FirstID: 1, KeepClean: true}
}

// Run executes the workflow over a bounded source.
func (pr *Process) Run(src stream.Source) (*Result, error) {
	return pr.RunContext(context.Background(), src)
}

// RunContext executes the workflow with cancellation: once ctx is done,
// the run stops promptly and returns an error satisfying
// errors.Is(err, stream.ErrStopped). A background context adds no
// per-tuple overhead.
func (pr *Process) RunContext(ctx context.Context, src stream.Source) (*Result, error) {
	m := len(pr.Pipelines)
	if m == 0 {
		return nil, fmt.Errorf("core: process needs at least one pipeline")
	}
	pr.resetPipelines()
	firstID := pr.FirstID
	if firstID == 0 {
		firstID = 1
	}
	dlq := pr.instrumentDLQ(pr.Fault.queue())

	// Step 1: prepare and materialise. Materialising the prepared stream
	// keeps the clean copy D and feeds the sub-stream extraction. With
	// quarantine enabled, malformed input rows become dead letters
	// instead of aborting the run. Source observation sits between the
	// raw source and the quarantine wrapper so tuple-level failures are
	// counted as source errors before they become dead letters.
	var in stream.Source = stream.ObserveSource(stream.WithContext(ctx, src), pr.Obs)
	if pr.Fault.Quarantine {
		in = stream.Quarantine(in, dlq, pr.Fault.MaxQuarantined)
	}
	prepared, err := stream.Drain(stream.NewPrepare(in, firstID))
	if err != nil {
		return nil, fmt.Errorf("core: prepare: %w", err)
	}
	if pr.CleanTap != nil {
		for _, t := range prepared {
			pr.CleanTap(t.Clone())
		}
	}

	route := pr.Route
	if route == nil {
		if m == 1 {
			route = func(stream.Tuple, int) []int { return []int{0} }
		} else {
			route = stream.RouteAll
		}
	}

	subs := make([][]stream.Tuple, m)
	tuplesIn := uint64(0)
	for _, t := range prepared {
		for _, tgt := range route(t, m) {
			if tgt < 0 || tgt >= m {
				continue
			}
			subs[tgt] = append(subs[tgt], t.Clone())
			tuplesIn++
		}
	}
	pr.Obs.Add(obs.CTuplesIn, tuplesIn)

	// Step 2: pollute every sub-stream with its pipeline.
	logs := make([]*Log, m)
	if pr.Parallel && m > 1 {
		errs := make(chan error, m)
		for i := 0; i < m; i++ {
			go func(i int) {
				logs[i] = NewLog()
				logs[i].Obs = pr.Obs
				errs <- polluteSub(subs[i], pr.Pipelines[i], logs[i], pr.Fault, dlq, pr.Obs)
			}(i)
		}
		for i := 0; i < m; i++ {
			if e := <-errs; e != nil && err == nil {
				err = e
			}
		}
		if err != nil {
			return nil, err
		}
	} else {
		for i := 0; i < m; i++ {
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("core: pollute: %w", stream.ErrStopped)
			}
			logs[i] = NewLog()
			logs[i].Obs = pr.Obs
			if err := polluteSub(subs[i], pr.Pipelines[i], logs[i], pr.Fault, dlq, pr.Obs); err != nil {
				return nil, err
			}
		}
	}

	// Step 3: integrate — union with sub-stream identifiers, drop
	// removed and quarantined tuples, sort by delivery time.
	res := &Result{Log: NewLog(), Quarantined: dlq.Letters()}
	for i := 0; i < m; i++ {
		res.Log.Merge(logs[i], i)
		for _, t := range subs[i] {
			if t.Quarantined {
				continue
			}
			if t.Dropped {
				res.DroppedTuples++
				pr.Obs.Inc(obs.CTuplesDropped)
				continue
			}
			t.SubStream = i
			res.Polluted = append(res.Polluted, t)
			pr.Obs.Inc(obs.CTuplesOut)
		}
	}
	stream.SortByArrival(res.Polluted)
	if pr.KeepClean {
		res.Clean = prepared
	}
	return res, nil
}

func polluteSub(tuples []stream.Tuple, p *Pipeline, log *Log, fault FaultPolicy, dlq *stream.DeadLetterQueue, reg *obs.Registry) error {
	if p == nil {
		return fmt.Errorf("core: nil pipeline")
	}
	trace := reg.TraceEnabled()
	for i := range tuples {
		before := 0
		if log != nil {
			before = len(log.Entries)
		}
		var ok bool
		var dl *stream.DeadLetter
		if trace && reg.Sampled(tuples[i].ID) {
			start := time.Now()
			ok, dl = polluteOne(p, &tuples[i], log, before, fault)
			reg.ObserveSpan(obs.StagePollute, tuples[i].ID, time.Since(start))
		} else {
			ok, dl = polluteOne(p, &tuples[i], log, before, fault)
		}
		if !ok {
			if err := fault.record(dlq, *dl); err != nil {
				return err
			}
		}
	}
	return nil
}

// safePollute applies the pipeline, converting a panic in any polluter,
// condition, or error function into an error.
func safePollute(p *Pipeline, t *stream.Tuple, tau time.Time, log *Log) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("panic: %w", e)
				return
			}
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	p.Apply(t, tau, log)
	return nil
}

// deadLetterFor renders a quarantined tuple into a dead-letter record.
func deadLetterFor(t stream.Tuple, stage string, cause error) stream.DeadLetter {
	d := stream.DeadLetter{Offset: t.ID, TupleID: t.ID, Stage: stage, Cause: cause.Error()}
	if t.Schema() != nil {
		d.Values = make([]string, t.Len())
		for i := 0; i < t.Len(); i++ {
			d.Values[i] = t.At(i).String()
		}
	}
	return d
}

// RunStream executes the single-pipeline workflow in a streaming fashion:
// prepared tuples flow through the pipeline one by one and are re-ordered
// only within a bounded window, so unbounded sources work with constant
// memory. Only m = 1 is supported in streaming mode; dropped tuples are
// filtered out. The returned log is nil when DisableLog is set.
//
// Streaming mode pollutes tuples in place, taking ownership of whatever
// the source emits. Readers and generators mint a fresh tuple per Next
// call and are safe; to stream over a shared []Tuple slice whose contents
// must survive, clone in a Map stage first (batch Run does this for you).
func (pr *Process) RunStream(src stream.Source, reorderWindow int) (stream.Source, *Log, error) {
	if len(pr.Pipelines) != 1 {
		return nil, nil, fmt.Errorf("core: streaming mode supports exactly one pipeline, got %d", len(pr.Pipelines))
	}
	pr.resetPipelines()
	firstID := pr.FirstID
	if firstID == 0 {
		firstID = 1
	}
	log := pr.newLog()
	// Streaming mode takes ownership of the source's tuples: sources
	// produce a fresh tuple per Next call, so in-place pollution is safe
	// and the per-tuple clone of batch mode is unnecessary. Preparation,
	// pollution and drop-filtering are fused into one operator to keep
	// the per-tuple cost minimal.
	dlq := pr.instrumentDLQ(pr.Fault.queue())
	var in stream.Source = stream.ObserveSource(src, pr.Obs)
	if pr.Fault.Quarantine {
		in = stream.Quarantine(in, dlq, pr.Fault.MaxQuarantined)
	}
	polluted := &streamRunner{src: stream.NewPrepare(in, firstID), p: pr.Pipelines[0], log: log, fault: pr.Fault, dlq: dlq, reg: pr.Obs, trace: pr.Obs.TraceEnabled(), tap: pr.CleanTap}
	if reorderWindow > 1 {
		return stream.NewBoundedReorder(polluted, reorderWindow), log, nil
	}
	return polluted, log, nil
}

// RunStreamMulti executes the full m-pipeline workflow in streaming
// fashion: the prepared stream is split into the m (possibly
// overlapping) sub-streams, each flows through its pipeline tuple-wise,
// is re-sorted within a bounded window, and the sub-streams are merged
// with a k-way merge — the constant-memory analogue of Run for unbounded
// sources. Logging follows DisableLog; the merged log is only complete
// once the returned source is exhausted.
func (pr *Process) RunStreamMulti(src stream.Source, reorderWindow int) (stream.Source, *Log, error) {
	m := len(pr.Pipelines)
	if m == 0 {
		return nil, nil, fmt.Errorf("core: process needs at least one pipeline")
	}
	if m == 1 {
		return pr.RunStream(src, reorderWindow)
	}
	pr.resetPipelines()
	firstID := pr.FirstID
	if firstID == 0 {
		firstID = 1
	}
	route := pr.Route
	if route == nil {
		route = stream.RouteAll
	}
	log := pr.newLog()
	dlq := pr.instrumentDLQ(pr.Fault.queue())
	var in stream.Source = stream.ObserveSource(src, pr.Obs)
	if pr.Fault.Quarantine {
		in = stream.Quarantine(in, dlq, pr.Fault.MaxQuarantined)
	}
	var prep stream.Source = stream.NewPrepare(in, firstID)
	if pr.CleanTap != nil {
		prep = &tapSource{src: prep, tap: pr.CleanTap}
	}
	subs := stream.Split(prep, m, route)
	branches := make([]stream.Source, m)
	for i := range subs {
		runner := &subStreamRunner{src: subs[i], p: pr.Pipelines[i], log: log, sub: i, fault: pr.Fault, dlq: dlq, reg: pr.Obs, trace: pr.Obs.TraceEnabled()}
		if reorderWindow > 1 {
			branches[i] = stream.NewBoundedReorder(runner, reorderWindow)
		} else {
			branches[i] = runner
		}
	}
	merged, err := stream.NewKWayMerge(branches)
	if err != nil {
		return nil, nil, err
	}
	return merged, log, nil
}

// tapSource forwards its inner source unchanged while handing a clone of
// every tuple to the tap (Process.CleanTap for multi-pipeline streaming,
// where the tap must observe the prepared stream before Split fans it
// out, not the per-sub-stream copies).
type tapSource struct {
	src stream.Source
	tap func(stream.Tuple)
}

// Schema implements stream.Source.
func (s *tapSource) Schema() *stream.Schema { return s.src.Schema() }

// Next implements stream.Source.
func (s *tapSource) Next() (stream.Tuple, error) {
	t, err := s.src.Next()
	if err != nil {
		return t, err
	}
	s.tap(t.Clone())
	return t, nil
}

// subStreamRunner pollutes one sub-stream of a multi-pipeline streaming
// run. Split already hands each sub-stream its own clones, so in-place
// pollution is safe.
type subStreamRunner struct {
	src   stream.Source
	p     *Pipeline
	log   *Log
	sub   int
	fault FaultPolicy
	dlq   *stream.DeadLetterQueue
	reg   *obs.Registry
	trace bool
}

// Schema implements stream.Source.
func (r *subStreamRunner) Schema() *stream.Schema { return r.src.Schema() }

// Next implements stream.Source.
func (r *subStreamRunner) Next() (stream.Tuple, error) {
	for {
		t, err := r.src.Next()
		if err != nil {
			return t, err
		}
		r.reg.Inc(obs.CTuplesIn)
		before := 0
		if r.log != nil {
			before = len(r.log.Entries)
		}
		var ok bool
		var ferr error
		if r.trace && r.reg.Sampled(t.ID) {
			start := time.Now()
			ok, ferr = applyWithFault(r.p, &t, r.log, r.fault, r.dlq, before)
			r.reg.ObserveSpan(obs.StagePollute, t.ID, time.Since(start))
		} else {
			ok, ferr = applyWithFault(r.p, &t, r.log, r.fault, r.dlq, before)
		}
		if ferr != nil {
			return stream.Tuple{}, ferr
		}
		if !ok {
			continue
		}
		if r.log != nil {
			for i := before; i < len(r.log.Entries); i++ {
				r.log.Entries[i].SubStream = r.sub
			}
		}
		if t.Dropped {
			r.reg.Inc(obs.CTuplesDropped)
			continue
		}
		t.SubStream = r.sub
		r.reg.Inc(obs.CTuplesOut)
		return t, nil
	}
}

// streamRunner is the fused prepare → pollute → drop-filter operator of
// streaming mode.
type streamRunner struct {
	src   *stream.Prepare
	p     *Pipeline
	log   *Log
	fault FaultPolicy
	dlq   *stream.DeadLetterQueue
	reg   *obs.Registry
	trace bool
	// tap, when non-nil, receives a clone of every prepared tuple before
	// pollution (Process.CleanTap).
	tap func(stream.Tuple)

	// cur is the tuple in flight. Polluters receive *Tuple through an
	// interface call, which would force a stack-local tuple to escape —
	// one heap allocation per tuple. Hoisting it into the (already
	// heap-allocated) runner makes the hot loop allocation-free.
	cur stream.Tuple
}

// Schema implements stream.Source.
func (r *streamRunner) Schema() *stream.Schema { return r.src.Schema() }

// Next implements stream.Source.
func (r *streamRunner) Next() (stream.Tuple, error) {
	for {
		t, err := r.src.Next()
		if err != nil {
			return t, err
		}
		r.cur = t
		if r.tap != nil {
			r.tap(r.cur.Clone())
		}
		r.reg.Inc(obs.CTuplesIn)
		before := 0
		if r.log != nil {
			before = len(r.log.Entries)
		}
		var ok bool
		var ferr error
		if r.trace && r.reg.Sampled(r.cur.ID) {
			start := time.Now()
			ok, ferr = applyWithFault(r.p, &r.cur, r.log, r.fault, r.dlq, before)
			r.reg.ObserveSpan(obs.StagePollute, r.cur.ID, time.Since(start))
		} else {
			ok, ferr = applyWithFault(r.p, &r.cur, r.log, r.fault, r.dlq, before)
		}
		if ferr != nil {
			return stream.Tuple{}, ferr
		}
		if !ok {
			continue
		}
		if r.cur.Dropped {
			r.reg.Inc(obs.CTuplesDropped)
			continue
		}
		r.reg.Inc(obs.CTuplesOut)
		return r.cur, nil
	}
}

// polluteOne is THE single fault/rollback code path of every runner —
// batch (polluteSub), streaming (streamRunner, subStreamRunner),
// checkpointed (via streamRunner) and sharded (shard workers). It
// applies p to t at its event time under the fault policy, rolling the
// log back to logMark when pollution fails so the ground truth only
// describes delivered tuples. It reports whether the tuple survived
// and, when it did not, returns its dead letter (with t marked
// Quarantined). Without quarantine, a pipeline panic propagates to the
// caller unchanged — the historical fail-fast contract.
func polluteOne(p *Pipeline, t *stream.Tuple, log *Log, logMark int, fault FaultPolicy) (bool, *stream.DeadLetter) {
	if !fault.Quarantine {
		p.Apply(t, t.EventTime, log)
		return true, nil
	}
	if err := safePollute(p, t, t.EventTime, log); err != nil {
		log.Truncate(logMark)
		t.Quarantined = true
		dl := deadLetterFor(*t, "pollute", err)
		return false, &dl
	}
	return true, nil
}

// record books a dead letter into the run's queue and enforces the
// MaxQuarantined bound; a non-nil error is fatal (quarantine overflow).
func (f FaultPolicy) record(dlq *stream.DeadLetterQueue, dl stream.DeadLetter) error {
	dlq.Add(dl)
	if f.MaxQuarantined > 0 && dlq.Len() > f.MaxQuarantined {
		return fmt.Errorf("%w: %d tuples failed (last: tuple %d: %s)",
			stream.ErrQuarantineOverflow, dlq.Len(), dl.TupleID, dl.Cause)
	}
	return nil
}

// applyWithFault runs the pipeline over t honouring the fault policy.
// It reports whether the tuple survived; a non-nil error is fatal
// (quarantine overflow).
func applyWithFault(p *Pipeline, t *stream.Tuple, log *Log, fault FaultPolicy, dlq *stream.DeadLetterQueue, logMark int) (bool, error) {
	ok, dl := polluteOne(p, t, log, logMark, fault)
	if ok {
		return true, nil
	}
	return false, fault.record(dlq, *dl)
}
