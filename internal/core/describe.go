package core

import (
	"fmt"
	"strings"
)

// DescribePolluter renders a polluter tree as an indented, human-readable
// outline — the introspection behind pollution-run reports and config
// debugging.
func DescribePolluter(p Polluter, indent int) string {
	pad := strings.Repeat("  ", indent)
	switch x := p.(type) {
	case *Standard:
		return fmt.Sprintf("%s- %s: %s on %v when %s\n",
			pad, x.PolluterName, x.Err.Kind(), x.Attrs, x.Cond.Describe())
	case *Composite:
		mode := "sequence"
		switch x.Mode {
		case ModeChoice:
			mode = "choice"
		case ModeWeighted:
			mode = "weighted"
		}
		out := fmt.Sprintf("%s- %s (composite, %s) when %s\n",
			pad, x.PolluterName, mode, x.Cond.Describe())
		for _, c := range x.Children {
			out += DescribePolluter(c, indent+1)
		}
		return out
	case *KeyedPolluter:
		return fmt.Sprintf("%s- %s (keyed by %s, %d keys seen)\n",
			pad, x.PolluterName, x.KeyAttr, len(x.Keys()))
	case *Observer:
		return fmt.Sprintf("%s- state observer\n", pad)
	}
	return fmt.Sprintf("%s- %s\n", pad, p.Name())
}

// DescribePipeline renders a whole pipeline.
func DescribePipeline(p *Pipeline) string {
	var b strings.Builder
	for _, pol := range p.Polluters {
		b.WriteString(DescribePolluter(pol, 0))
	}
	return b.String()
}
