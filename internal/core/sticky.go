package core

import (
	"fmt"
	"time"

	"icewafl/internal/stream"
)

// Sticky holds a triggered condition active for a fixed duration of event
// time: once Trigger fires at τ, Sticky keeps evaluating to true until
// τ + Hold. It implements error episodes such as the scale errors of
// §3.2.1, which persist "for four-hour intervals" once activated.
//
// Sticky is stateful; instantiate a fresh one per pollution run, like the
// other stateful components.
type Sticky struct {
	Trigger Condition
	Hold    time.Duration

	activeUntil time.Time
	active      bool
}

// NewSticky wraps trigger with a hold window.
func NewSticky(trigger Condition, hold time.Duration) *Sticky {
	return &Sticky{Trigger: trigger, Hold: hold}
}

// Eval implements Condition.
func (c *Sticky) Eval(t stream.Tuple, tau time.Time) bool {
	if c.active && tau.Before(c.activeUntil) {
		return true
	}
	c.active = false
	if c.Trigger.Eval(t, tau) {
		c.active = true
		c.activeUntil = tau.Add(c.Hold)
		return true
	}
	return false
}

// Reset clears the hold state, returning the condition to its
// just-constructed state. Per-key factories that hand pre-built sticky
// conditions to fresh instances (e.g. when stamping per-shard pipelines
// from a prototype) call Reset to guarantee the instance starts cold.
func (c *Sticky) Reset() {
	c.active = false
	c.activeUntil = time.Time{}
}

// Describe implements Condition.
func (c *Sticky) Describe() string {
	return fmt.Sprintf("sticky(%s, hold %s)", c.Trigger.Describe(), c.Hold)
}
