package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Span is one sampled stage timing of one tuple. Spans of the same
// tuple across stages share the tuple ID, so a trace groups naturally
// per tuple; because the sampler is a pure function of the ID, a
// re-run of a seeded workload traces exactly the same tuples.
type Span struct {
	TupleID uint64 `json:"tuple_id"`
	Stage   string `json:"stage"`
	DurNs   int64  `json:"dur_ns"`
	// Rows is the batch row count of a batch-granular span (columnar
	// kernels time one invocation over many rows); zero — and omitted —
	// for ordinary per-tuple spans, so existing JSON goldens are
	// unchanged.
	Rows int `json:"rows,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a Registry, the
// unit of export for both the JSON and the Prometheus encodings.
type Snapshot struct {
	// Counters holds the well-known counters (always complete, zeros
	// included, so seeded runs snapshot deterministically).
	Counters map[string]uint64 `json:"counters"`
	// Gauges holds the registered gauge functions' values.
	Gauges map[string]uint64 `json:"gauges,omitempty"`
	// PollutedBy counts pollution-log entries per polluter ID.
	PollutedBy map[string]uint64 `json:"polluted_by,omitempty"`
	// DQEvaluated / DQUnexpected count rows the streaming DQ monitor
	// inspected / flagged, per expectation.
	DQEvaluated  map[string]uint64 `json:"dq_evaluated,omitempty"`
	DQUnexpected map[string]uint64 `json:"dq_unexpected,omitempty"`
	// ShardTuples counts tuples per shard of a sharded run.
	ShardTuples []uint64 `json:"shard_tuples,omitempty"`
	// TenantFrames / TenantBytes count frames and payload bytes
	// delivered to each tenant's subscribers; TenantQuotaRejections
	// counts quota errors issued to the tenant (session service).
	TenantFrames          map[string]uint64 `json:"tenant_frames,omitempty"`
	TenantBytes           map[string]uint64 `json:"tenant_bytes,omitempty"`
	TenantQuotaRejections map[string]uint64 `json:"tenant_quota_rejections,omitempty"`
	// TenantWALBytes gauges each tenant's durable WAL bytes on disk
	// (the session service's per-tenant retention budgets).
	TenantWALBytes map[string]uint64 `json:"tenant_wal_bytes,omitempty"`
	// Histograms holds the per-stage latency histograms (sampled).
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	// Spans is the sampled pollution trace (JSON export only).
	Spans []Span `json:"spans,omitempty"`
}

// ShardSkew returns max/mean of the per-shard tuple counts — 1.0 is a
// perfectly balanced run; values well above 1 flag key skew. Returns 0
// when the snapshot has no shard counts.
func (s *Snapshot) ShardSkew() float64 {
	if len(s.ShardTuples) == 0 {
		return 0
	}
	var sum, max uint64
	for _, n := range s.ShardTuples {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.ShardTuples))
	return float64(max) / mean
}

// MarshalJSON-friendly writers -----------------------------------------

// WriteJSON renders the snapshot as indented JSON with a trailing
// newline (diff-friendly, golden-testable).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ParseJSON parses a snapshot written by WriteJSON.
func ParseJSON(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: parse snapshot: %w", err)
	}
	return &s, nil
}

// Prometheus text exposition -------------------------------------------

const (
	pollutedMetric    = "icewafl_polluted_tuples_total"
	dqEvalMetric      = "icewafl_dq_evaluated_total"
	dqUnexpMetric     = "icewafl_dq_unexpected_total"
	shardMetric       = "icewafl_shard_tuples_total"
	latencyMetric     = "icewafl_stage_latency_ns"
	tenantFrameMetric = "icewafl_tenant_frames_total"
	tenantByteMetric  = "icewafl_tenant_bytes_total"
	tenantQuotaMetric = "icewafl_tenant_quota_rejections_total"
	tenantWALMetric   = "icewafl_tenant_wal_bytes"
)

// escapeLabel escapes a Prometheus label value (backslash, quote,
// newline).
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// unescapeLabel reverses escapeLabel.
func unescapeLabel(v string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(v) {
			return "", fmt.Errorf("obs: dangling escape in label %q", v)
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("obs: bad escape \\%c in label %q", v[i], v)
		}
	}
	return b.String(), nil
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Spans are a JSON-only export (the exposition format has no
// place for traces). Families are emitted in deterministic order.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}
	if len(s.PollutedBy) > 0 {
		fmt.Fprintf(bw, "# TYPE %s counter\n", pollutedMetric)
		for _, name := range sortedKeys(s.PollutedBy) {
			fmt.Fprintf(bw, "%s{polluter=\"%s\"} %d\n", pollutedMetric, escapeLabel(name), s.PollutedBy[name])
		}
	}
	for _, fam := range []struct {
		metric string
		counts map[string]uint64
	}{{dqEvalMetric, s.DQEvaluated}, {dqUnexpMetric, s.DQUnexpected}} {
		if len(fam.counts) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# TYPE %s counter\n", fam.metric)
		for _, name := range sortedKeys(fam.counts) {
			fmt.Fprintf(bw, "%s{expectation=\"%s\"} %d\n", fam.metric, escapeLabel(name), fam.counts[name])
		}
	}
	for _, fam := range []struct {
		metric string
		counts map[string]uint64
	}{{tenantFrameMetric, s.TenantFrames}, {tenantByteMetric, s.TenantBytes}, {tenantQuotaMetric, s.TenantQuotaRejections}} {
		if len(fam.counts) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# TYPE %s counter\n", fam.metric)
		for _, name := range sortedKeys(fam.counts) {
			fmt.Fprintf(bw, "%s{tenant=\"%s\"} %d\n", fam.metric, escapeLabel(name), fam.counts[name])
		}
	}
	if len(s.TenantWALBytes) > 0 {
		fmt.Fprintf(bw, "# TYPE %s gauge\n", tenantWALMetric)
		for _, name := range sortedKeys(s.TenantWALBytes) {
			fmt.Fprintf(bw, "%s{tenant=\"%s\"} %d\n", tenantWALMetric, escapeLabel(name), s.TenantWALBytes[name])
		}
	}
	if len(s.ShardTuples) > 0 {
		fmt.Fprintf(bw, "# TYPE %s counter\n", shardMetric)
		for i, n := range s.ShardTuples {
			fmt.Fprintf(bw, "%s{shard=\"%d\"} %d\n", shardMetric, i, n)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(bw, "# TYPE %s histogram\n", latencyMetric)
		for _, stage := range sortedKeys(s.Histograms) {
			h := s.Histograms[stage]
			esc := escapeLabel(stage)
			cum := uint64(0)
			for _, b := range h.Buckets {
				cum += b.N
				fmt.Fprintf(bw, "%s_bucket{stage=\"%s\",le=\"%d\"} %d\n", latencyMetric, esc, b.Le, cum)
			}
			fmt.Fprintf(bw, "%s_bucket{stage=\"%s\",le=\"+Inf\"} %d\n", latencyMetric, esc, h.Count)
			fmt.Fprintf(bw, "%s_sum{stage=\"%s\"} %d\n", latencyMetric, esc, h.SumNs)
			fmt.Fprintf(bw, "%s_count{stage=\"%s\"} %d\n", latencyMetric, esc, h.Count)
		}
	}
	return bw.Flush()
}

// histAccum accumulates one stage's histogram lines during parsing.
type histAccum struct {
	sum     uint64
	count   uint64
	hasCnt  bool
	buckets []Bucket // cumulative, as parsed
}

// ParsePrometheus parses text exposition produced by WritePrometheus
// back into a Snapshot (spans cannot round-trip — they are JSON-only).
// Unknown metric families are rejected, keeping the parser honest
// enough for fuzzing.
func ParsePrometheus(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{Counters: map[string]uint64{}}
	types := map[string]string{}
	hists := map[string]*histAccum{}
	shards := map[int]uint64{}
	maxShard := -1

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, err
		}
		switch {
		case name == pollutedMetric:
			p, ok := labels["polluter"]
			if !ok {
				return nil, fmt.Errorf("obs: %s sample without polluter label", pollutedMetric)
			}
			if s.PollutedBy == nil {
				s.PollutedBy = map[string]uint64{}
			}
			s.PollutedBy[p] = value
		case name == dqEvalMetric || name == dqUnexpMetric:
			ex, ok := labels["expectation"]
			if !ok {
				return nil, fmt.Errorf("obs: %s sample without expectation label", name)
			}
			if name == dqEvalMetric {
				if s.DQEvaluated == nil {
					s.DQEvaluated = map[string]uint64{}
				}
				s.DQEvaluated[ex] = value
			} else {
				if s.DQUnexpected == nil {
					s.DQUnexpected = map[string]uint64{}
				}
				s.DQUnexpected[ex] = value
			}
		case name == tenantFrameMetric || name == tenantByteMetric || name == tenantQuotaMetric:
			tn, ok := labels["tenant"]
			if !ok {
				return nil, fmt.Errorf("obs: %s sample without tenant label", name)
			}
			var m *map[string]uint64
			switch name {
			case tenantFrameMetric:
				m = &s.TenantFrames
			case tenantByteMetric:
				m = &s.TenantBytes
			default:
				m = &s.TenantQuotaRejections
			}
			if *m == nil {
				*m = map[string]uint64{}
			}
			(*m)[tn] = value
		case name == tenantWALMetric:
			// Must precede the generic icewafl_ prefix case: this family is
			// labeled per tenant, and the generic case drops labels.
			tn, ok := labels["tenant"]
			if !ok {
				return nil, fmt.Errorf("obs: %s sample without tenant label", name)
			}
			if s.TenantWALBytes == nil {
				s.TenantWALBytes = map[string]uint64{}
			}
			s.TenantWALBytes[tn] = value
		case name == shardMetric:
			sh, ok := labels["shard"]
			if !ok {
				return nil, fmt.Errorf("obs: %s sample without shard label", shardMetric)
			}
			idx, err := strconv.Atoi(sh)
			if err != nil || idx < 0 || idx > 1<<20 {
				return nil, fmt.Errorf("obs: bad shard index %q", sh)
			}
			shards[idx] = value
			if idx > maxShard {
				maxShard = idx
			}
		case name == latencyMetric+"_bucket" || name == latencyMetric+"_sum" || name == latencyMetric+"_count":
			stage, ok := labels["stage"]
			if !ok {
				return nil, fmt.Errorf("obs: %s sample without stage label", latencyMetric)
			}
			h := hists[stage]
			if h == nil {
				h = &histAccum{}
				hists[stage] = h
			}
			switch {
			case strings.HasSuffix(name, "_sum"):
				h.sum = value
			case strings.HasSuffix(name, "_count"):
				h.count, h.hasCnt = value, true
			default:
				le, ok := labels["le"]
				if !ok {
					return nil, fmt.Errorf("obs: histogram bucket without le label")
				}
				if le == "+Inf" {
					continue // reconstructed from _count
				}
				bound, err := strconv.ParseUint(le, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: bad bucket bound %q", le)
				}
				h.buckets = append(h.buckets, Bucket{Le: bound, N: value})
			}
		case strings.HasPrefix(name, "icewafl_"):
			switch types[name] {
			case "gauge":
				if s.Gauges == nil {
					s.Gauges = map[string]uint64{}
				}
				s.Gauges[name] = value
			case "counter":
				s.Counters[name] = value
			default:
				return nil, fmt.Errorf("obs: sample %q without TYPE declaration", name)
			}
		default:
			return nil, fmt.Errorf("obs: unknown metric %q", name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan exposition: %w", err)
	}

	if maxShard >= 0 {
		s.ShardTuples = make([]uint64, maxShard+1)
		for idx, v := range shards {
			s.ShardTuples[idx] = v
		}
	}
	for stage, h := range hists {
		if !h.hasCnt {
			return nil, fmt.Errorf("obs: histogram %q has buckets but no _count", stage)
		}
		snap := HistSnapshot{Count: h.count, SumNs: h.sum}
		sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].Le < h.buckets[j].Le })
		prev := uint64(0)
		for _, b := range h.buckets {
			if b.N < prev {
				return nil, fmt.Errorf("obs: histogram %q buckets not cumulative", stage)
			}
			if n := b.N - prev; n > 0 {
				snap.Buckets = append(snap.Buckets, Bucket{Le: b.Le, N: n})
			}
			prev = b.N
		}
		if s.Histograms == nil {
			s.Histograms = map[string]HistSnapshot{}
		}
		s.Histograms[stage] = snap
	}
	return s, nil
}

// parseSampleLine parses `name{l1="v1",l2="v2"} 123` (labels optional).
func parseSampleLine(line string) (name string, labels map[string]string, value uint64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return "", nil, 0, fmt.Errorf("obs: malformed sample %q", line)
	} else {
		name = rest[:i]
		rest = rest[i:]
	}
	if name == "" {
		return "", nil, 0, fmt.Errorf("obs: malformed sample %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := findLabelsEnd(rest)
		if end < 0 {
			return "", nil, 0, fmt.Errorf("obs: unterminated labels in %q", line)
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	valText := strings.TrimSpace(rest)
	if valText == "" || strings.ContainsAny(valText, " \t") {
		return "", nil, 0, fmt.Errorf("obs: malformed sample value in %q", line)
	}
	value, err = strconv.ParseUint(valText, 10, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("obs: bad sample value %q", valText)
	}
	return name, labels, value, nil
}

// findLabelsEnd locates the closing brace of a label block, honouring
// quoted values with escapes. rest starts with '{'.
func findLabelsEnd(rest string) int {
	inQuote := false
	for i := 1; i < len(rest); i++ {
		c := rest[i]
		if inQuote {
			if c == '\\' {
				i++
			} else if c == '"' {
				inQuote = false
			}
			continue
		}
		switch c {
		case '"':
			inQuote = true
		case '}':
			return i
		}
	}
	return -1
}

// parseLabels parses `l1="v1",l2="v2"`.
func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("obs: malformed labels %q", body)
		}
		key := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("obs: unquoted label value in %q", body)
		}
		i++
		start := i
		for i < len(body) {
			if body[i] == '\\' {
				i += 2
				continue
			}
			if body[i] == '"' {
				break
			}
			i++
		}
		if i >= len(body) {
			return nil, fmt.Errorf("obs: unterminated label value in %q", body)
		}
		val, err := unescapeLabel(body[start:i])
		if err != nil {
			return nil, err
		}
		if key == "" {
			return nil, fmt.Errorf("obs: empty label name in %q", body)
		}
		labels[key] = val
		i++ // closing quote
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return labels, nil
}
