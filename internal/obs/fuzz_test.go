package obs

import (
	"bytes"
	"testing"
	"time"
)

// fuzzSeedSnapshot builds a populated registry snapshot so the fuzzers
// start from realistic corpus entries.
func fuzzSeedSnapshot() *Snapshot {
	r := NewRegistry()
	r.Add(CSourceRows, 1060)
	r.Add(CTuplesIn, 1060)
	r.Add(CTuplesOut, 1058)
	r.Add(CTuplesDropped, 2)
	r.AddPolluted("noise", 964)
	r.AddPolluted(`we"ird\name`, 13)
	r.SetShards(4)
	r.AddShard(0, 300)
	r.AddShard(3, 760)
	r.SetTraceSampling(1, 16)
	r.ObserveSpan(StagePollute, 42, 1500*time.Nanosecond)
	r.ObserveStage(StageCheckpoint, 2*time.Millisecond)
	return r.Snapshot()
}

// FuzzPrometheusExposition feeds arbitrary text into the Prometheus
// parser and asserts the canonical-form fixed point: any input the
// parser accepts must re-serialize to an exposition that parses again
// and re-serializes to the exact same bytes. This pins the
// parser/writer pair against asymmetries (label escaping, bucket
// cumulation, ordering) without assuming anything about the input.
func FuzzPrometheusExposition(f *testing.F) {
	var seed bytes.Buffer
	if err := fuzzSeedSnapshot().WritePrometheus(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("# TYPE icewafl_tuples_in_total counter\nicewafl_tuples_in_total 7\n"))
	f.Add([]byte("# TYPE icewafl_polluted_tuples_total counter\n" +
		`icewafl_polluted_tuples_total{polluter="a\\b\"c"} 3` + "\n"))
	f.Add([]byte("# TYPE icewafl_stage_latency_ns histogram\n" +
		`icewafl_stage_latency_ns_bucket{stage="pollute",le="1"} 2` + "\n" +
		`icewafl_stage_latency_ns_bucket{stage="pollute",le="+Inf"} 2` + "\n" +
		`icewafl_stage_latency_ns_sum{stage="pollute"} 9` + "\n" +
		`icewafl_stage_latency_ns_count{stage="pollute"} 2` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err := ParsePrometheus(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as we didn't panic
		}
		_ = s1.ShardSkew() // must not panic on any accepted input
		var first bytes.Buffer
		if err := s1.WritePrometheus(&first); err != nil {
			t.Fatalf("serialize accepted input: %v", err)
		}
		s2, err := ParsePrometheus(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-parse own output: %v\noutput:\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := s2.WritePrometheus(&second); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("exposition is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
	})
}

// FuzzMetricsJSON is the same fixed-point property for the JSON codec.
func FuzzMetricsJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := fuzzSeedSnapshot().WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"counters":{"icewafl_tuples_in_total":7}}`))
	f.Add([]byte(`{"counters":{},"shard_tuples":[1,2,3],"spans":[{"tuple_id":9,"stage":"pollute","dur_ns":100}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err := ParseJSON(data)
		if err != nil {
			return
		}
		_ = s1.ShardSkew()
		var first bytes.Buffer
		if err := s1.WriteJSON(&first); err != nil {
			return // unrepresentable values (e.g. NaN via float fields) may refuse to marshal
		}
		s2, err := ParseJSON(first.Bytes())
		if err != nil {
			t.Fatalf("re-parse own output: %v\noutput:\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := s2.WriteJSON(&second); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("JSON snapshot is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
	})
}
