package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// SinkFunc consumes one metrics snapshot (periodic export target).
type SinkFunc func(*Snapshot) error

// MetricsSink periodically snapshots a registry and hands the snapshot
// to a SinkFunc. Stop flushes one final snapshot so short runs still
// export their totals.
type MetricsSink struct {
	reg      *Registry
	interval time.Duration
	fn       SinkFunc

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	lastErr error
}

// NewMetricsSink builds a sink over the registry. The interval must be
// positive; the function must be non-nil.
func NewMetricsSink(reg *Registry, interval time.Duration, fn SinkFunc) (*MetricsSink, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("obs: metrics sink interval must be positive, got %v", interval)
	}
	if fn == nil {
		return nil, fmt.Errorf("obs: metrics sink func must be non-nil")
	}
	return &MetricsSink{reg: reg, interval: interval, fn: fn}, nil
}

// Start launches the ticker goroutine. Starting a started sink is a
// no-op.
func (m *MetricsSink) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.run(m.stop, m.done)
}

func (m *MetricsSink) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.flush()
		case <-stop:
			return
		}
	}
}

func (m *MetricsSink) flush() {
	if err := m.fn(m.reg.Snapshot()); err != nil {
		m.mu.Lock()
		m.lastErr = err
		m.mu.Unlock()
	}
}

// Stop halts the ticker, writes one final snapshot, and returns the
// last export error (if any). Stopping a stopped or never-started sink
// still performs the final flush, so callers can rely on Stop as the
// single "export the totals now" point.
func (m *MetricsSink) Stop() error {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	m.flush()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// FileSink returns a SinkFunc that atomically rewrites path on every
// snapshot (write to a temp file in the same directory, then rename),
// so readers never observe a torn file. format selects "json" or
// "prom" (Prometheus text exposition).
func FileSink(path, format string) (SinkFunc, error) {
	if format != "json" && format != "prom" {
		return nil, fmt.Errorf("obs: unknown metrics format %q (want json or prom)", format)
	}
	return func(s *Snapshot) error {
		dir := filepath.Dir(path)
		tmp, err := os.CreateTemp(dir, ".metrics-*")
		if err != nil {
			return fmt.Errorf("obs: create temp metrics file: %w", err)
		}
		defer os.Remove(tmp.Name())
		var werr error
		if format == "json" {
			werr = s.WriteJSON(tmp)
		} else {
			werr = s.WritePrometheus(tmp)
		}
		if cerr := tmp.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("obs: write metrics file: %w", werr)
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			return fmt.Errorf("obs: publish metrics file: %w", err)
		}
		return nil
	}, nil
}
