// Metamorphic test harness for the observability layer: instead of
// asserting exact counter values, these tests assert conservation laws
// and execution-mode equivalences that must hold for ANY seed and any
// pipeline shape. A violation means the instrumentation double-counts,
// under-counts, or fails to unwind on fault rollback.
package obs_test

import (
	"fmt"
	"testing"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/obs"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// invSchema is the keyed schema shared by the invariant tests.
func invSchema() *stream.Schema {
	return stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "sensor", Kind: stream.KindString},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
}

// invSource generates n keyed tuples deterministically.
func invSource(s *stream.Schema, n, sensors int) stream.Source {
	base := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	return stream.NewGeneratorSource(s, n, func(i int) stream.Tuple {
		return stream.NewTuple(s, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Second)),
			stream.Str(fmt.Sprintf("s%02d", i%sensors)),
			stream.Float(float64(i)),
		})
	})
}

// panicky is a polluter that panics on every tuple whose ID is a
// multiple of `every` — the adversarial input for the quarantine
// rollback path. It records a log entry BEFORE panicking, so the test
// also proves that Log.Truncate unwinds the entry counters exactly.
type panicky struct{ every uint64 }

func (p *panicky) Name() string { return "panicky" }

func (p *panicky) Pollute(t *stream.Tuple, tau time.Time, log *core.Log) {
	if t.ID%p.every == 0 {
		if log != nil {
			log.Record(core.Entry{TupleID: t.ID, EventTime: tau, Polluter: "panicky", Error: "about_to_panic"})
		}
		panic("panicky: injected pollution failure")
	}
}

// invPipeline builds noise + rare drop polluters, all seed-derived.
func invPipeline(seed int64, extra ...core.Polluter) *core.Pipeline {
	pols := []core.Polluter{
		core.NewStandard("noise",
			&core.GaussianNoise{Stddev: core.Const(2), Rand: rng.Derive(seed, "noise")},
			core.NewRandomConst(0.5, rng.Derive(seed, "noise-cond")), "v"),
		core.NewStandard("drop", core.DropTuple{},
			core.NewRandomConst(0.03, rng.Derive(seed, "drop-cond")), "v"),
	}
	return core.NewPipeline(append(pols, extra...)...)
}

// counterVec reads the counters the invariants quantify over.
func counterVec(reg *obs.Registry) map[obs.CounterID]uint64 {
	ids := []obs.CounterID{
		obs.CSourceRows, obs.CSourceErrors, obs.CTuplesIn, obs.CTuplesOut,
		obs.CTuplesDropped, obs.CDeadLetters, obs.CLogEntries,
		obs.CCondHits, obs.CCondMisses,
	}
	out := make(map[obs.CounterID]uint64, len(ids))
	for _, id := range ids {
		out[id] = reg.Counter(id)
	}
	return out
}

// assertLogLaws checks sum(polluted_by) == log_entries_total ==
// len(log.Entries) — the law that survives fault rollback only because
// Log.Record and Log.Truncate keep the registry in lockstep.
func assertLogLaws(t *testing.T, reg *obs.Registry, log *core.Log) {
	t.Helper()
	var sum uint64
	for name, n := range reg.PollutedCounts() {
		if name == "" {
			t.Errorf("polluted_by has an empty polluter name")
		}
		sum += n
	}
	entries := reg.Counter(obs.CLogEntries)
	if sum != entries {
		t.Errorf("sum(polluted_by) = %d, log_entries_total = %d; want equal", sum, entries)
	}
	if log != nil && entries != uint64(len(log.Entries)) {
		t.Errorf("log_entries_total = %d, len(log.Entries) = %d; want equal", entries, len(log.Entries))
	}
}

// TestObsConservationLaws runs a hostile workload — malformed source
// rows, drop errors, and a polluter that panics mid-log-entry — under
// quarantine, for several seeds, and asserts the flow-conservation laws
// every snapshot must satisfy:
//
//	source_rows == tuples_out + tuples_dropped + dead_letters_total
//	tuples_in   == tuples_out + tuples_dropped + (dead_letters_total - source_errors)
//	sum(polluted_by) == log_entries_total == len(log.Entries)
func TestObsConservationLaws(t *testing.T) {
	schema := invSchema()
	const n = 3000
	for _, seed := range []int64{1, 7, 20160226} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reg := obs.NewRegistry()
			proc := &core.Process{
				Pipelines: []*core.Pipeline{invPipeline(seed, &panicky{every: 101})},
				FirstID:   1,
				Fault:     core.FaultPolicy{Quarantine: true},
				Obs:       reg,
			}
			src := stream.NewChaosSource(invSource(schema, n, 16), stream.ChaosOptions{
				TupleErrorRate: 0.04,
				Seed:           seed,
			})
			out, log, err := proc.RunStream(src, 1)
			if err != nil {
				t.Fatal(err)
			}
			emitted, err := stream.Drain(out)
			if err != nil {
				t.Fatal(err)
			}

			c := counterVec(reg)
			if c[obs.CSourceRows] != n {
				t.Errorf("source_rows = %d, want %d (every generated row must be counted)", c[obs.CSourceRows], n)
			}
			if c[obs.CTuplesOut] != uint64(len(emitted)) {
				t.Errorf("tuples_out = %d, drained %d", c[obs.CTuplesOut], len(emitted))
			}
			if c[obs.CSourceErrors] == 0 || c[obs.CDeadLetters] <= c[obs.CSourceErrors] || c[obs.CTuplesDropped] == 0 {
				t.Fatalf("workload not hostile enough: %+v (chaos/panic/drop rates too low)", c)
			}
			if got, want := c[obs.CSourceRows], c[obs.CTuplesOut]+c[obs.CTuplesDropped]+c[obs.CDeadLetters]; got != want {
				t.Errorf("conservation violated: source_rows %d != out %d + dropped %d + dead %d",
					got, c[obs.CTuplesOut], c[obs.CTuplesDropped], c[obs.CDeadLetters])
			}
			pollutionDead := c[obs.CDeadLetters] - c[obs.CSourceErrors]
			if got, want := c[obs.CTuplesIn], c[obs.CTuplesOut]+c[obs.CTuplesDropped]+pollutionDead; got != want {
				t.Errorf("conservation violated: tuples_in %d != out %d + dropped %d + pollution-dead %d",
					got, c[obs.CTuplesOut], c[obs.CTuplesDropped], pollutionDead)
			}
			// Exactly two gated polluters (noise, drop) precede the
			// ungated panicky one, so every tuple entering the pipeline
			// is gate-evaluated exactly twice — even the ones later
			// quarantined (gate counts are observations, not effects,
			// and are deliberately NOT unwound by rollback).
			if hitsMisses := c[obs.CCondHits] + c[obs.CCondMisses]; hitsMisses != 2*c[obs.CTuplesIn] {
				t.Errorf("condition evals = %d, want exactly 2 * tuples_in = %d", hitsMisses, 2*c[obs.CTuplesIn])
			}
			assertLogLaws(t, reg, log)
			// The panicky polluter records an entry before every panic;
			// rollback must have removed ALL of them from both the log
			// and the counters.
			if got := reg.PollutedCounts()["panicky"]; got != 0 {
				t.Errorf("polluted_by[panicky] = %d, want 0 (rollback must unwind the pre-panic entry)", got)
			}
			for _, e := range log.Entries {
				if e.Polluter == "panicky" {
					t.Fatalf("log retains a rolled-back entry: %+v", e)
				}
			}
		})
	}
}

// keyedPipeline builds a pipeline of keyed polluters whose state and
// randomness derive from the key, so sharded execution is equivalent to
// sequential execution at every shard count.
func keyedPipeline(seed int64) *core.Pipeline {
	return core.NewPipeline(core.NewKeyedPolluter("noise", "sensor", func(key string) core.Polluter {
		return core.NewStandard("noise",
			&core.GaussianNoise{Stddev: core.Const(1), Rand: rng.Derive(seed, "n/"+key)},
			core.NewRandomConst(0.4, rng.Derive(seed, "c/"+key)), "v")
	}), core.NewKeyedPolluter("spike", "sensor", func(key string) core.Polluter {
		return core.NewStandard("spike",
			&core.UniformMultNoise{Lo: core.Const(5), Hi: core.Const(10), Rand: rng.Derive(seed, "s/"+key)},
			core.NewRandomConst(0.05, rng.Derive(seed, "sc/"+key)), "v")
	}))
}

// TestObsSequentialVsShardedCounters asserts the parallelism
// metamorphic relation: running the same keyed workload sequentially
// and sharded over 2, 4 and 8 workers must produce identical counter
// totals — the sharded data path may reorder work, but it must neither
// double-count (scratch log AND merged log) nor lose updates.
func TestObsSequentialVsShardedCounters(t *testing.T) {
	schema := invSchema()
	const n, sensors, seed = 4000, 32, 99

	runSeq := func() (map[obs.CounterID]uint64, map[string]uint64) {
		reg := obs.NewRegistry()
		proc := &core.Process{
			Pipelines: []*core.Pipeline{keyedPipeline(seed)},
			FirstID:   1,
			Obs:       reg,
		}
		out, log, err := proc.RunStream(invSource(schema, n, sensors), 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stream.Drain(out); err != nil {
			t.Fatal(err)
		}
		assertLogLaws(t, reg, log)
		return counterVec(reg), reg.PollutedCounts()
	}

	wantCounters, wantPolluted := runSeq()
	if wantCounters[obs.CTuplesIn] != n || wantCounters[obs.CTuplesOut] != n {
		t.Fatalf("sequential run lost tuples: %+v", wantCounters)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			reg := obs.NewRegistry()
			proc := &core.Process{
				Pipelines: []*core.Pipeline{keyedPipeline(seed)},
				FirstID:   1,
				Obs:       reg,
			}
			out, log, err := proc.RunStreamSharded(invSource(schema, n, sensors), 1, core.ShardConfig{
				KeyAttr: "sensor", Shards: shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := stream.Drain(out); err != nil {
				t.Fatal(err)
			}
			got := counterVec(reg)
			for id, want := range wantCounters {
				if got[id] != want {
					t.Errorf("%s = %d sharded, %d sequential", obs.CounterName(id), got[id], want)
				}
			}
			gotPolluted := reg.PollutedCounts()
			if len(gotPolluted) != len(wantPolluted) {
				t.Errorf("polluted_by families: %v sharded vs %v sequential", gotPolluted, wantPolluted)
			}
			for name, want := range wantPolluted {
				if gotPolluted[name] != want {
					t.Errorf("polluted_by[%s] = %d sharded, %d sequential", name, gotPolluted[name], want)
				}
			}
			assertLogLaws(t, reg, log)
			if shards > 1 {
				counts := reg.ShardCounts()
				if len(counts) != shards {
					t.Fatalf("ShardCounts len = %d, want %d", len(counts), shards)
				}
				var sum uint64
				for _, c := range counts {
					sum += c
				}
				if sum != got[obs.CTuplesIn] {
					t.Errorf("sum(shard_tuples) = %d, tuples_in = %d; want equal", sum, got[obs.CTuplesIn])
				}
			}
		})
	}
}

// stickyPipeline builds a stateful pipeline (sticky + Markov
// conditions) for the checkpoint metamorphic test — the interesting
// case, because resuming restores condition state mid-stream.
func stickyPipeline(seed int64) *core.Pipeline {
	return core.NewPipeline(
		core.NewStandard("noise",
			&core.GaussianNoise{Stddev: core.Const(3), Rand: rng.Derive(seed, "noise")},
			core.NewRandomConst(0.4, rng.Derive(seed, "noise-cond")), "v"),
		core.NewStandard("freeze",
			core.NewFrozenValue(),
			core.NewSticky(core.NewRandomConst(0.05, rng.Derive(seed, "freeze-cond")), 30*time.Second), "v"),
		core.NewStandard("burst", core.MissingValue{},
			core.NewMarkovCondition(0.08, 0.4, rng.Derive(seed, "markov")), "v"),
	)
}

// drainN pulls exactly k tuples from src.
func drainN(t *testing.T, src stream.Source, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatalf("tuple %d/%d: %v", i, k, err)
		}
	}
}

// TestObsCheckpointHalvesSum asserts the fault-tolerance metamorphic
// relation: killing a run after k tuples and resuming from the
// checkpoint must yield two metric snapshots that SUM to the snapshot
// of an uninterrupted run — observability must be exactly divisible at
// the checkpoint boundary, with no replayed or lost counts.
func TestObsCheckpointHalvesSum(t *testing.T) {
	schema := invSchema()
	const n, seed = 400, 4321

	mkProc := func(reg *obs.Registry) *core.Process {
		return &core.Process{
			Pipelines: []*core.Pipeline{stickyPipeline(seed)},
			FirstID:   1,
			Obs:       reg,
		}
	}

	// Reference: uninterrupted run.
	refReg := obs.NewRegistry()
	refSrc, refLog, _, err := mkProc(refReg).RunStreamCheckpointed(invSource(schema, n, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Drain(refSrc); err != nil {
		t.Fatal(err)
	}
	assertLogLaws(t, refReg, refLog)
	ref := counterVec(refReg)

	for _, kill := range []int{1, 150, 399} {
		kill := kill
		t.Run(fmt.Sprintf("kill-at-%d", kill), func(t *testing.T) {
			// First half: run until "killed" after kill emitted tuples.
			regA := obs.NewRegistry()
			srcA, logA, ckA, err := mkProc(regA).RunStreamCheckpointed(invSource(schema, n, 4), nil)
			if err != nil {
				t.Fatal(err)
			}
			drainN(t, srcA, kill)
			ckpt, err := ckA.Capture()
			if err != nil {
				t.Fatal(err)
			}
			assertLogLaws(t, regA, logA)
			if regA.Counter(obs.CCheckpointWrites) != 1 {
				t.Errorf("checkpoint_writes = %d after one Capture, want 1", regA.Counter(obs.CCheckpointWrites))
			}

			// Second half: a fresh process and registry resume.
			regB := obs.NewRegistry()
			srcB, logB, _, err := mkProc(regB).RunStreamCheckpointed(invSource(schema, n, 4), ckpt)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := stream.Drain(srcB); err != nil {
				t.Fatal(err)
			}
			assertLogLaws(t, regB, logB)

			a, b := counterVec(regA), counterVec(regB)
			for id, want := range ref {
				if got := a[id] + b[id]; got != want {
					t.Errorf("%s: %d (killed) + %d (resumed) = %d, uninterrupted %d",
						obs.CounterName(id), a[id], b[id], got, want)
				}
			}
			refPolluted := refReg.PollutedCounts()
			pa, pb := regA.PollutedCounts(), regB.PollutedCounts()
			for name, want := range refPolluted {
				if got := pa[name] + pb[name]; got != want {
					t.Errorf("polluted_by[%s]: %d + %d != %d", name, pa[name], pb[name], want)
				}
			}
		})
	}
}
