// Package obs is the zero-dependency observability layer of the engine:
// lock-free counters, log2-bucketed latency histograms, and a sampled
// per-tuple pollution trace, exported as Prometheus text exposition or
// JSON snapshots.
//
// Design constraints (DESIGN.md §9):
//
//   - Nil-safe: every hot-path method is a no-op on a nil *Registry, so
//     instrumentation hooks compile into the engine unconditionally while
//     the uninstrumented path stays allocation-free (a single predictable
//     nil check per hook).
//   - Lock-free updates: counters are atomic and cache-line padded;
//     contended counters offer per-worker cells (AddAt) so shard workers
//     never bounce a cache line between cores.
//   - Exact counters, sampled latencies: counts are always exact;
//     per-stage latency histograms and trace spans are recorded only for
//     tuples selected by the deterministic 1-in-N sampler, keeping clock
//     reads off the common path.
//   - Deterministic exports: a snapshot of a seeded run (with sampling
//     off) is byte-identical across runs, so metrics files can be
//     golden-tested like any other engine output.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CounterID identifies one of the engine's well-known counters. Fixed
// IDs keep the hot path to a single array index — no map lookups.
type CounterID int

// The well-known counters, one per stage of the pollution workflow.
const (
	// CSourceRows counts raw rows pulled from the source, including
	// malformed rows that later quarantine (tuple-level failures).
	CSourceRows CounterID = iota
	// CSourceErrors counts tuple-level source failures (malformed rows).
	CSourceErrors
	// CTuplesIn counts prepared tuples entering a pollution pipeline
	// (per sub-stream occurrence when routing overlaps).
	CTuplesIn
	// CTuplesOut counts tuples emitted downstream of pollution.
	CTuplesOut
	// CTuplesDropped counts tuples removed by drop errors.
	CTuplesDropped
	// CDeadLetters counts quarantined tuples (source + pollution stage).
	CDeadLetters
	// CLogEntries counts pollution-log entries net of fault rollbacks,
	// so it always equals the length of the delivered ground-truth log.
	CLogEntries
	// CCondHits / CCondMisses count polluter-gate condition evaluations.
	CCondHits
	CCondMisses
	// CRetryAttempts counts underlying source Next attempts of a
	// RetrySource; CRetries counts re-attempts after failures.
	CRetryAttempts
	CRetries
	// CCheckpointWrites counts captured checkpoints.
	CCheckpointWrites
	// CSinkWrites counts tuples written by an observed sink.
	CSinkWrites
	// CParallelItems counts tuples processed by ParallelMap workers.
	CParallelItems

	// NumCounters is the number of well-known counters.
	NumCounters
)

// counterNames are the Prometheus exposition names, index-aligned with
// the CounterID constants.
var counterNames = [NumCounters]string{
	"icewafl_source_rows_total",
	"icewafl_source_errors_total",
	"icewafl_tuples_in_total",
	"icewafl_tuples_out_total",
	"icewafl_tuples_dropped_total",
	"icewafl_dead_letters_total",
	"icewafl_log_entries_total",
	"icewafl_condition_hits_total",
	"icewafl_condition_misses_total",
	"icewafl_retry_attempts_total",
	"icewafl_retries_total",
	"icewafl_checkpoint_writes_total",
	"icewafl_sink_writes_total",
	"icewafl_parallel_items_total",
}

// CounterName returns the exposition name of a well-known counter.
func CounterName(id CounterID) string { return counterNames[id] }

// numCells is the number of per-worker cells of a counter (power of
// two). Workers pick cell worker&(numCells-1), so up to numCells
// concurrent writers update disjoint cache lines.
const numCells = 8

// cell is one cache-line-padded atomic counter cell.
type cell struct {
	n atomic.Uint64
	_ [56]byte // pad to a 64-byte cache line
}

// Counter is a lock-free, per-worker-sharded monotonic counter. The
// zero value is ready to use. Single-writer paths use Add (cell 0);
// concurrent workers use AddAt with their worker index.
type Counter struct {
	cells [numCells]cell
}

// Add increments the counter by n (cell 0 — the single-writer fast
// path).
func (c *Counter) Add(n uint64) { c.cells[0].n.Add(n) }

// AddAt increments the counter by n on the worker's private cell, so
// concurrent workers never contend on one cache line.
func (c *Counter) AddAt(worker int, n uint64) {
	c.cells[worker&(numCells-1)].n.Add(n)
}

// Sub decrements the counter by n (two's-complement wrap keeps the
// summed value exact as long as the counter never goes net-negative).
func (c *Counter) Sub(n uint64) { c.cells[0].n.Add(^(n - 1)) }

// Value sums the cells.
func (c *Counter) Value() uint64 {
	var v uint64
	for i := range c.cells {
		v += c.cells[i].n.Load()
	}
	return v
}

// GaugeFunc reads an externally maintained value at snapshot time —
// the zero-hot-path-cost hook for components that already keep their
// own statistics (TuplePool hit/miss counts, DLQ depth).
type GaugeFunc func() uint64

// Registry is the per-run metrics registry wired through every runner.
// All update methods are safe on a nil receiver (no-ops), so the engine
// is instrumented unconditionally and pays only a nil check when
// observability is off.
//
// Configuration methods (SetTraceSampling, SetShards, RegisterFunc)
// must be called before the run starts; update methods are safe for
// concurrent use during the run.
type Registry struct {
	counters [NumCounters]Counter
	hists    [numStages]Histogram

	// sampleN selects 1-in-N deterministic trace sampling (0 = off).
	// Written only before the run starts.
	sampleN uint64
	traces  traceBuffer

	mu       sync.RWMutex
	polluted map[string]*Counter
	dqEval   map[string]*Counter
	dqUnexp  map[string]*Counter
	shards   []*Counter
	funcs    map[string]GaugeFunc

	// Per-tenant families of the session service: frames and payload
	// bytes delivered to a tenant's subscribers, and quota rejections
	// issued to the tenant (icewafl_tenant_*_total).
	tenantFrames map[string]*Counter
	tenantBytes  map[string]*Counter
	tenantQuota  map[string]*Counter

	// tenantWAL gauges each tenant's durable WAL bytes on disk
	// (icewafl_tenant_wal_bytes) — read at snapshot time like funcs, but
	// keyed per tenant.
	tenantWAL map[string]GaugeFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		polluted: make(map[string]*Counter),
		dqEval:   make(map[string]*Counter),
		dqUnexp:  make(map[string]*Counter),
		funcs:    make(map[string]GaugeFunc),
	}
}

// Inc increments a well-known counter by one.
func (r *Registry) Inc(id CounterID) {
	if r == nil {
		return
	}
	r.counters[id].cells[0].n.Add(1)
}

// Add increments a well-known counter by n.
func (r *Registry) Add(id CounterID, n uint64) {
	if r == nil {
		return
	}
	r.counters[id].cells[0].n.Add(n)
}

// AddAt increments a well-known counter on the worker's private cell.
func (r *Registry) AddAt(id CounterID, worker int, n uint64) {
	if r == nil {
		return
	}
	r.counters[id].AddAt(worker, n)
}

// Sub decrements a well-known counter by n (fault rollback).
func (r *Registry) Sub(id CounterID, n uint64) {
	if r == nil {
		return
	}
	r.counters[id].Sub(n)
}

// Counter returns the current value of a well-known counter (0 on nil).
func (r *Registry) Counter(id CounterID) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[id].Value()
}

// AddPolluted adjusts the per-polluter pollution count by delta
// (negative deltas roll back quarantined entries).
func (r *Registry) AddPolluted(name string, delta int64) {
	if r == nil {
		return
	}
	r.polCounter(name).Add(uint64(delta))
}

func (r *Registry) polCounter(name string) *Counter {
	r.mu.RLock()
	c := r.polluted[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.polluted[name]; c == nil {
		c = &Counter{}
		r.polluted[name] = c
	}
	return c
}

// AddDQ accumulates one window's evaluated/unexpected row counts for
// the named expectation — the per-expectation counter families of the
// streaming DQ monitor (dq_evaluated_total / dq_unexpected_total).
func (r *Registry) AddDQ(expectation string, evaluated, unexpected uint64) {
	if r == nil {
		return
	}
	r.namedCounter(&r.dqEval, expectation).Add(evaluated)
	r.namedCounter(&r.dqUnexp, expectation).Add(unexpected)
}

// namedCounter lazily creates a counter in a named family map (same
// double-checked pattern as polCounter).
func (r *Registry) namedCounter(m *map[string]*Counter, name string) *Counter {
	r.mu.RLock()
	c := (*m)[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if *m == nil {
		*m = make(map[string]*Counter)
	}
	if c = (*m)[name]; c == nil {
		c = &Counter{}
		(*m)[name] = c
	}
	return c
}

// AddTenantDelivery accumulates frames/bytes delivered to one tenant's
// subscribers — the per-tenant throughput families of the session
// service.
func (r *Registry) AddTenantDelivery(tenant string, frames, bytes uint64) {
	if r == nil {
		return
	}
	if frames > 0 {
		r.namedCounter(&r.tenantFrames, tenant).Add(frames)
	}
	if bytes > 0 {
		r.namedCounter(&r.tenantBytes, tenant).Add(bytes)
	}
}

// AddTenantQuotaRejection counts one quota rejection issued to the
// tenant (session creation, subscribe, or rate limit).
func (r *Registry) AddTenantQuotaRejection(tenant string) {
	if r == nil {
		return
	}
	r.namedCounter(&r.tenantQuota, tenant).Add(1)
}

// RegisterTenantWALBytes registers the gauge reporting one tenant's
// durable WAL bytes (read at snapshot time). Later registrations for
// the same tenant replace earlier ones.
func (r *Registry) RegisterTenantWALBytes(tenant string, fn GaugeFunc) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tenantWAL == nil {
		r.tenantWAL = make(map[string]GaugeFunc)
	}
	r.tenantWAL[tenant] = fn
}

// TenantWALBytes evaluates the per-tenant WAL-byte gauges (nil when no
// tenant registered one).
func (r *Registry) TenantWALBytes() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fns := make(map[string]GaugeFunc, len(r.tenantWAL))
	for name, fn := range r.tenantWAL {
		fns[name] = fn
	}
	r.mu.RUnlock()
	if len(fns) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// TenantCounts returns the per-tenant delivered frame/byte counts and
// quota rejections.
func (r *Registry) TenantCounts() (frames, bytes, quota map[string]uint64) {
	if r == nil {
		return nil, nil, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	value := func(m map[string]*Counter) map[string]uint64 {
		if len(m) == 0 {
			return nil
		}
		out := make(map[string]uint64, len(m))
		for name, c := range m {
			out[name] = c.Value()
		}
		return out
	}
	return value(r.tenantFrames), value(r.tenantBytes), value(r.tenantQuota)
}

// DQCounts returns the per-expectation evaluated and unexpected counts.
func (r *Registry) DQCounts() (evaluated, unexpected map[string]uint64) {
	if r == nil {
		return nil, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	evaluated = make(map[string]uint64, len(r.dqEval))
	for name, c := range r.dqEval {
		evaluated[name] = c.Value()
	}
	unexpected = make(map[string]uint64, len(r.dqUnexp))
	for name, c := range r.dqUnexp {
		unexpected[name] = c.Value()
	}
	return evaluated, unexpected
}

// PollutedCounts returns the per-polluter pollution counts.
func (r *Registry) PollutedCounts() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.polluted))
	for name, c := range r.polluted {
		out[name] = c.Value()
	}
	return out
}

// SetShards sizes the per-shard tuple counters (skew detection). Call
// before the sharded run starts.
func (r *Registry) SetShards(n int) {
	if r == nil || n < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shards = make([]*Counter, n)
	for i := range r.shards {
		r.shards[i] = &Counter{}
	}
}

// AddShard counts n tuples processed by the given shard. Unknown
// shards (SetShards not called or out of range) are ignored.
func (r *Registry) AddShard(shard int, n uint64) {
	if r == nil {
		return
	}
	r.mu.RLock()
	var c *Counter
	if shard >= 0 && shard < len(r.shards) {
		c = r.shards[shard]
	}
	r.mu.RUnlock()
	if c != nil {
		c.AddAt(shard, n)
	}
}

// ShardCounts returns the per-shard tuple counts (nil when sharding
// was never configured).
func (r *Registry) ShardCounts() []uint64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.shards) == 0 {
		return nil
	}
	out := make([]uint64, len(r.shards))
	for i, c := range r.shards {
		out[i] = c.Value()
	}
	return out
}

// RegisterFunc registers a gauge read at snapshot time under the given
// name (exported as "icewafl_<name>"). Later registrations under the
// same name replace earlier ones.
func (r *Registry) RegisterFunc(name string, fn GaugeFunc) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Unregister removes a gauge previously registered under name with
// RegisterFunc. Components with bounded lifetimes (network subscribers)
// must unregister on close so a long-lived registry does not accumulate
// dead gauge closures.
func (r *Registry) Unregister(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.funcs, name)
}

// SetTraceSampling enables deterministic 1-in-n trace sampling with a
// span ring buffer of the given capacity (<=0 selects the default).
// n = 0 disables sampling, n = 1 samples every tuple. Must be called
// before the run starts.
func (r *Registry) SetTraceSampling(n uint64, bufCap int) {
	if r == nil {
		return
	}
	r.sampleN = n
	r.traces.reset(bufCap)
}

// TraceEnabled reports whether trace sampling is on.
func (r *Registry) TraceEnabled() bool {
	return r != nil && r.sampleN != 0
}

// Sampled reports whether the tuple with the given ID is selected by
// the deterministic 1-in-N sampler. The decision is a pure function of
// the ID, so re-running a seeded workload traces the same tuples.
func (r *Registry) Sampled(id uint64) bool {
	if r == nil || r.sampleN == 0 {
		return false
	}
	return mix64(id)%r.sampleN == 0
}

// mix64 is the splitmix64 finaliser: a cheap, high-quality bijection so
// sequential tuple IDs sample uniformly instead of periodically.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ObserveSpan records one stage timing of a sampled tuple: the duration
// lands in the stage's latency histogram and a Span is appended to the
// trace ring buffer. Callers gate the surrounding clock reads on
// Sampled / TraceEnabled.
func (r *Registry) ObserveSpan(stage StageID, tupleID uint64, d time.Duration) {
	if r == nil {
		return
	}
	r.hists[stage].Observe(d)
	r.traces.add(Span{TupleID: tupleID, Stage: stageNames[stage], DurNs: int64(d)})
}

// ObserveBatchSpan records one batch-granular stage timing: the
// duration lands in the stage's latency histogram and a Span tagged
// with the batch row count is appended to the trace ring buffer. This
// is the columnar runner's span shape — one span per kernel invocation
// over a batch, identified by the first tuple ID of the batch, instead
// of one span per tuple.
func (r *Registry) ObserveBatchSpan(stage StageID, firstTupleID uint64, rows int, d time.Duration) {
	if r == nil {
		return
	}
	r.hists[stage].Observe(d)
	r.traces.add(Span{TupleID: firstTupleID, Stage: stageNames[stage], DurNs: int64(d), Rows: rows})
}

// ObserveStage records one stage duration in the latency histogram
// without a trace span (rare, non-per-tuple stages: checkpoints).
func (r *Registry) ObserveStage(stage StageID, d time.Duration) {
	if r == nil {
		return
	}
	r.hists[stage].Observe(d)
}

// Spans returns the sampled trace spans in recording order (oldest
// first, bounded by the ring-buffer capacity).
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.traces.spans()
}

// Histogram returns a snapshot of one stage's latency histogram.
func (r *Registry) Histogram(stage StageID) HistSnapshot {
	if r == nil {
		return HistSnapshot{}
	}
	return r.hists[stage].snapshot()
}

// Snapshot captures every metric into an exportable, deterministic
// structure. Counters are always present (zeros included) so snapshots
// of identical seeded runs are byte-identical; empty histogram stages,
// gauges, shard counts and spans are omitted.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{Counters: map[string]uint64{}}
	}
	s := &Snapshot{Counters: make(map[string]uint64, NumCounters)}
	for id := CounterID(0); id < NumCounters; id++ {
		s.Counters[counterNames[id]] = r.counters[id].Value()
	}
	if pc := r.PollutedCounts(); len(pc) > 0 {
		s.PollutedBy = pc
	}
	if ev, un := r.DQCounts(); len(ev) > 0 || len(un) > 0 {
		if len(ev) > 0 {
			s.DQEvaluated = ev
		}
		if len(un) > 0 {
			s.DQUnexpected = un
		}
	}
	if tf, tb, tq := r.TenantCounts(); len(tf) > 0 || len(tb) > 0 || len(tq) > 0 {
		s.TenantFrames = tf
		s.TenantBytes = tb
		s.TenantQuotaRejections = tq
	}
	if tw := r.TenantWALBytes(); len(tw) > 0 {
		s.TenantWALBytes = tw
	}
	s.ShardTuples = r.ShardCounts()
	r.mu.RLock()
	funcs := make(map[string]GaugeFunc, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	r.mu.RUnlock()
	if len(funcs) > 0 {
		s.Gauges = make(map[string]uint64, len(funcs))
		for name, fn := range funcs {
			s.Gauges["icewafl_"+name] = fn()
		}
	}
	for st := StageID(0); st < numStages; st++ {
		h := r.hists[st].snapshot()
		if h.Count == 0 {
			continue
		}
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistSnapshot, int(numStages))
		}
		s.Histograms[stageNames[st]] = h
	}
	s.Spans = r.Spans()
	return s
}

// traceBuffer is a mutex-guarded ring of sampled spans. Only sampled
// tuples reach it, so the lock is off the common path by construction.
type traceBuffer struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	wrapped bool
}

// DefaultTraceCap is the default span ring-buffer capacity.
const DefaultTraceCap = 1024

func (b *traceBuffer) reset(capacity int) {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	b.mu.Lock()
	b.buf = make([]Span, 0, capacity)
	b.next = 0
	b.wrapped = false
	b.mu.Unlock()
}

func (b *traceBuffer) add(s Span) {
	b.mu.Lock()
	if cap(b.buf) == 0 {
		b.buf = make([]Span, 0, DefaultTraceCap)
	}
	if len(b.buf) < cap(b.buf) {
		b.buf = append(b.buf, s)
	} else {
		b.buf[b.next] = s
		b.next = (b.next + 1) % len(b.buf)
		b.wrapped = true
	}
	b.mu.Unlock()
}

func (b *traceBuffer) spans() []Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.buf) == 0 {
		return nil
	}
	out := make([]Span, 0, len(b.buf))
	if b.wrapped {
		out = append(out, b.buf[b.next:]...)
		out = append(out, b.buf[:b.next]...)
	} else {
		out = append(out, b.buf...)
	}
	return out
}

// sortedKeys returns the keys of m in sorted order (deterministic
// exposition).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
