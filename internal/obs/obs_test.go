package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Inc(CTuplesIn)
	r.Add(CTuplesOut, 3)
	r.AddAt(CTuplesIn, 5, 2)
	r.Sub(CLogEntries, 1)
	r.AddPolluted("noise", 1)
	r.SetShards(4)
	r.AddShard(1, 2)
	r.RegisterFunc("pool_hits", func() uint64 { return 1 })
	r.SetTraceSampling(8, 16)
	r.ObserveSpan(StagePollute, 42, time.Millisecond)
	r.ObserveStage(StageCheckpoint, time.Millisecond)
	if r.Counter(CTuplesIn) != 0 {
		t.Fatalf("nil registry counter = %d, want 0", r.Counter(CTuplesIn))
	}
	if r.Sampled(0) {
		t.Fatal("nil registry must never sample")
	}
	if r.TraceEnabled() {
		t.Fatal("nil registry must report tracing off")
	}
	if got := r.PollutedCounts(); got != nil {
		t.Fatalf("nil registry polluted counts = %v, want nil", got)
	}
	if got := r.ShardCounts(); got != nil {
		t.Fatalf("nil registry shard counts = %v, want nil", got)
	}
	if got := r.Spans(); got != nil {
		t.Fatalf("nil registry spans = %v, want nil", got)
	}
	s := r.Snapshot()
	if s == nil || len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v, want empty counters", s)
	}
}

func TestCounterShardedCells(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.AddAt(CTuplesIn, w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter(CTuplesIn); got != workers*perWorker {
		t.Fatalf("sharded counter = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterSubRollsBack(t *testing.T) {
	r := NewRegistry()
	r.Add(CLogEntries, 10)
	r.Sub(CLogEntries, 4)
	if got := r.Counter(CLogEntries); got != 6 {
		t.Fatalf("after sub: %d, want 6", got)
	}
	r.AddPolluted("noise", 5)
	r.AddPolluted("noise", -2)
	if got := r.PollutedCounts()["noise"]; got != 3 {
		t.Fatalf("polluted after rollback: %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second) // clamps to zero
	h.Observe(1)            // bucket le=1
	h.Observe(2)            // bucket le=3
	h.Observe(3)            // bucket le=3
	h.Observe(1000)         // bucket le=1023
	s := h.snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.SumNs != 0+0+1+2+3+1000 {
		t.Fatalf("sum = %d, want 1006", s.SumNs)
	}
	want := []Bucket{{Le: 0, N: 2}, {Le: 1, N: 1}, {Le: 3, N: 2}, {Le: 1023, N: 1}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
}

func TestSamplerDeterministicAndRoughlyUniform(t *testing.T) {
	r := NewRegistry()
	r.SetTraceSampling(16, 64)
	first := make([]bool, 10000)
	n := 0
	for id := range first {
		first[id] = r.Sampled(uint64(id))
		if first[id] {
			n++
		}
	}
	// Deterministic: same decisions on a second pass and on a fresh registry.
	r2 := NewRegistry()
	r2.SetTraceSampling(16, 64)
	for id := range first {
		if r2.Sampled(uint64(id)) != first[id] {
			t.Fatalf("sampling decision for id %d not deterministic", id)
		}
	}
	// Roughly 1-in-16 of 10000 = 625; allow a wide band.
	if n < 400 || n > 900 {
		t.Fatalf("sampled %d of 10000 at 1-in-16, want roughly 625", n)
	}
	// Sampling off.
	r3 := NewRegistry()
	if r3.Sampled(0) || r3.TraceEnabled() {
		t.Fatal("sampling must default to off")
	}
	// 1-in-1 samples everything.
	r4 := NewRegistry()
	r4.SetTraceSampling(1, 4)
	for id := uint64(0); id < 100; id++ {
		if !r4.Sampled(id) {
			t.Fatalf("1-in-1 sampler skipped id %d", id)
		}
	}
}

func TestTraceRingWraps(t *testing.T) {
	r := NewRegistry()
	r.SetTraceSampling(1, 4)
	for id := uint64(0); id < 6; id++ {
		r.ObserveSpan(StagePollute, id, time.Duration(id))
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(i + 2); sp.TupleID != want {
			t.Fatalf("span %d tuple = %d, want %d (oldest-first after wrap)", i, sp.TupleID, want)
		}
	}
}

func TestShardCountsAndSkew(t *testing.T) {
	r := NewRegistry()
	r.SetShards(3)
	r.AddShard(0, 10)
	r.AddShard(1, 10)
	r.AddShard(2, 40)
	r.AddShard(7, 5) // out of range: ignored
	got := r.ShardCounts()
	if !reflect.DeepEqual(got, []uint64{10, 10, 40}) {
		t.Fatalf("shard counts = %v", got)
	}
	s := r.Snapshot()
	if skew := s.ShardSkew(); skew != 2.0 {
		t.Fatalf("skew = %v, want 2.0 (max 40 / mean 20)", skew)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add(CTuplesIn, 100)
	r.Add(CTuplesOut, 97)
	r.Add(CTuplesDropped, 3)
	r.AddPolluted("noise", 12)
	r.AddPolluted("outlier", 7)
	r.SetShards(2)
	r.AddShard(0, 50)
	r.AddShard(1, 50)
	r.RegisterFunc("pool_hits", func() uint64 { return 99 })
	r.SetTraceSampling(1, 8)
	r.ObserveSpan(StagePollute, 5, 100*time.Nanosecond)

	s := r.Snapshot()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("JSON round trip mismatch:\n got %+v\nwant %+v", back, s)
	}

	// Deterministic bytes for identical registries.
	var buf2 bytes.Buffer
	if err := s.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot JSON not deterministic")
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add(CTuplesIn, 100)
	r.Add(CTuplesOut, 97)
	r.AddPolluted(`we"ird\name`+"\n", 3)
	r.SetShards(2)
	r.AddShard(0, 60)
	r.AddShard(1, 40)
	r.RegisterFunc("dlq_depth", func() uint64 { return 4 })
	r.SetTraceSampling(1, 8)
	r.ObserveSpan(StagePollute, 1, 7*time.Nanosecond)
	r.ObserveSpan(StagePollute, 2, 900*time.Nanosecond)
	r.ObserveStage(StageCheckpoint, time.Microsecond)

	s := r.Snapshot()
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse exposition: %v\n%s", err, buf.String())
	}
	// Spans are JSON-only; everything else must round-trip.
	s.Spans = nil
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("Prometheus round trip mismatch:\n got %+v\nwant %+v", back, s)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	bad := []string{
		"icewafl_mystery_total 5\n",                          // no TYPE
		"# TYPE other_metric counter\nother_metric 1\n",      // unknown family
		"icewafl_stage_latency_ns_sum 1\n",                   // missing stage label
		"icewafl_polluted_tuples_total{polluter=\"x\"} -1\n", // negative
		"icewafl_shard_tuples_total{shard=\"x\"} 1\n",        // bad shard
		"junk\n",
	}
	for _, in := range bad {
		if _, err := ParsePrometheus(bytes.NewReader([]byte(in))); err == nil {
			t.Fatalf("ParsePrometheus accepted %q", in)
		}
	}
}

func TestMetricsSinkTicksAndFinalFlush(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var got []uint64
	sink, err := NewMetricsSink(r, 5*time.Millisecond, func(s *Snapshot) error {
		mu.Lock()
		got = append(got, s.Counters[CounterName(CTuplesIn)])
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sink.Start()
	r.Add(CTuplesIn, 7)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sink never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	r.Add(CTuplesIn, 3)
	if err := sink.Stop(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 || got[len(got)-1] != 10 {
		t.Fatalf("final flush saw %v, want trailing 10", got)
	}
}

func TestMetricsSinkValidation(t *testing.T) {
	if _, err := NewMetricsSink(nil, 0, func(*Snapshot) error { return nil }); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewMetricsSink(nil, time.Second, nil); err == nil {
		t.Fatal("nil func accepted")
	}
}

func TestFileSink(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	r.Add(CTuplesIn, 5)

	jsonPath := filepath.Join(dir, "m.json")
	fn, err := FileSink(jsonPath, "json")
	if err != nil {
		t.Fatal(err)
	}
	if err := fn(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counters[CounterName(CTuplesIn)] != 5 {
		t.Fatalf("file sink JSON counters = %v", back.Counters)
	}

	promPath := filepath.Join(dir, "m.prom")
	fn, err = FileSink(promPath, "prom")
	if err != nil {
		t.Fatal(err)
	}
	if err := fn(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if back, err = ParsePrometheus(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	} else if back.Counters[CounterName(CTuplesIn)] != 5 {
		t.Fatalf("file sink prom counters = %v", back.Counters)
	}

	if _, err := FileSink("x", "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestStageAndCounterNames(t *testing.T) {
	for id := CounterID(0); id < NumCounters; id++ {
		if CounterName(id) == "" {
			t.Fatalf("counter %d has no name", id)
		}
	}
	seen := map[string]bool{}
	for st := StageID(0); st < numStages; st++ {
		n := StageName(st)
		if n == "" || seen[n] {
			t.Fatalf("stage %d name %q empty or duplicate", st, n)
		}
		seen[n] = true
	}
}
