package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// StageID identifies one instrumented pipeline stage.
type StageID int

// The instrumented stages.
const (
	// StageSource is the raw source read (Next on the input reader).
	StageSource StageID = iota
	// StagePollute is one pipeline application over one tuple.
	StagePollute
	// StageSink is one sink write.
	StageSink
	// StageCheckpoint is one checkpoint capture.
	StageCheckpoint
	// StageNetSend is one framed write to a network subscriber (the
	// icewafld service layer). Appended last so existing snapshot goldens
	// — which omit empty histograms — are unchanged for local runs.
	StageNetSend
	// StageDQWindow is one window evaluation of the streaming DQ
	// monitor (snapshotting every expectation at window close). Appended
	// after StageNetSend for the same golden-stability reason.
	StageDQWindow
	// StageWALAppend is one durable append to a channel's write-ahead
	// log (the icewafld durability layer). Appended after StageDQWindow
	// for the same golden-stability reason.
	StageWALAppend
	// StageDeliver is the end-to-end delivery latency of one published
	// frame: hub Publish to subscriber pickup (the multi-tenant session
	// service measures p50/p99 from this stage). Appended last for the
	// same golden-stability reason.
	StageDeliver

	numStages
)

var stageNames = [numStages]string{"source", "pollute", "sink", "checkpoint", "net_send", "dq_window", "wal_append", "deliver"}

// StageName returns the exposition name of a stage.
func StageName(s StageID) string { return stageNames[s] }

// histBuckets is the number of log2 latency buckets: bucket i counts
// durations whose nanosecond value has bit length i, i.e. the range
// [2^(i-1), 2^i - 1] (bucket 0 counts zero-duration observations).
const histBuckets = 65

// Histogram is a lock-free log2-bucketed latency histogram. The zero
// value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[bits.Len64(ns)].Add(1)
}

// Bucket is one non-empty histogram bucket: N observations with
// nanosecond durations <= Le (and greater than the previous bucket's
// bound).
type Bucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistSnapshot is a point-in-time copy of a histogram: total count,
// nanosecond sum, and the non-empty log2 buckets in ascending order.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	SumNs   uint64   `json:"sum_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// bucketLe returns the inclusive upper bound of log2 bucket i.
func bucketLe(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << i) - 1
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), SumNs: h.sumNs.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketLe(i), N: n})
		}
	}
	return s
}

// Quantile returns the upper bound (in nanoseconds) of the log2 bucket
// containing the q-th quantile observation (0 < q <= 1), i.e. a
// conservative estimate of the latency quantile: the true value is at
// most the returned bound and at least half of it. Returns 0 for an
// empty histogram. This is the p50/p99 source for the load harness —
// coarse by design, since log2 buckets trade resolution for a
// lock-free hot path.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based: ceil(q * count).
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	cum := uint64(0)
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= rank {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// QuantileOK is Quantile with an explicit emptiness signal: ok is false
// when the histogram recorded nothing, so consumers can render "n/a"
// instead of a 0 indistinguishable from a genuinely fast stage.
func (s HistSnapshot) QuantileOK(q float64) (uint64, bool) {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0, false
	}
	return s.Quantile(q), true
}
