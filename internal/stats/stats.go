// Package stats provides the small statistics toolkit the experiments
// need: descriptive statistics, quantiles and box-plot summaries (Figure
// 8), ordinary least squares (ARIMAX's regression component and
// Hannan-Rissanen style fitting), and autocorrelations.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (n-1 denominator).
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extremes of xs; ok is false for empty input.
func MinMax(xs []float64) (min, max float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, true
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// BoxPlot summarises a sample the way Figure 8 presents runtimes:
// median, quartiles, whiskers at 1.5·IQR, and outliers beyond them.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLow, WhiskerHigh  float64
	Outliers                 []float64
	N                        int
}

// NewBoxPlot computes the five-number summary plus Tukey whiskers.
func NewBoxPlot(xs []float64) BoxPlot {
	b := BoxPlot{N: len(xs)}
	if len(xs) == 0 {
		return b
	}
	b.Min, b.Max, _ = MinMax(xs)
	b.Q1 = Quantile(xs, 0.25)
	b.Median = Quantile(xs, 0.5)
	b.Q3 = Quantile(xs, 0.75)
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLow, b.WhiskerHigh = b.Max, b.Min
	for _, x := range xs {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.WhiskerLow {
			b.WhiskerLow = x
		}
		if x > b.WhiskerHigh {
			b.WhiskerHigh = x
		}
	}
	return b
}

// String renders the summary as one report line.
func (b BoxPlot) String() string {
	return fmt.Sprintf("n=%d min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f whiskers=[%.3f, %.3f] outliers=%d",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.WhiskerLow, b.WhiskerHigh, len(b.Outliers))
}

// Autocorrelation returns the lag-k autocorrelation of xs.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// OLS solves the least-squares problem y ≈ X·β via normal equations with
// Gaussian elimination and partial pivoting. X is row-major with one row
// per observation. It returns the coefficient vector β.
func OLS(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: OLS needs matching non-empty X (%d rows) and y (%d)", n, len(y))
	}
	k := len(x[0])
	if k == 0 {
		return nil, fmt.Errorf("stats: OLS needs at least one regressor")
	}
	// Build XtX and Xty.
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	for r := 0; r < n; r++ {
		row := x[r]
		if len(row) != k {
			return nil, fmt.Errorf("stats: OLS row %d has %d columns, want %d", r, len(row), k)
		}
		for i := 0; i < k; i++ {
			xty[i] += row[i] * y[r]
			for j := i; j < k; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	// Ridge-regularise minimally for numerical safety on collinear input.
	for i := 0; i < k; i++ {
		xtx[i][i] += 1e-10
	}
	beta, err := SolveLinear(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("stats: OLS: %w", err)
	}
	return beta, nil
}

// SolveLinear solves A·x = b in place via Gaussian elimination with
// partial pivoting. A and b are modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: bad system dimensions")
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("stats: singular matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// MAE returns the mean absolute error between forecasts and actuals.
func MAE(pred, actual []float64) float64 {
	n := len(pred)
	if n == 0 || n != len(actual) {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(n)
}

// RMSE returns the root mean squared error between forecasts and actuals.
func RMSE(pred, actual []float64) float64 {
	n := len(pred)
	if n == 0 || n != len(actual) {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}
