package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %g", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("variance %g", v)
	}
	if s := Stddev(xs); s != 2 {
		t.Fatalf("stddev %g", s)
	}
	if sv := SampleVariance(xs); !almost(sv, 32.0/7, 1e-12) {
		t.Fatalf("sample variance %g", sv)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || SampleVariance([]float64{1}) != 0 {
		t.Fatal("empty-input stats not zero")
	}
	if _, _, ok := MinMax(nil); ok {
		t.Fatal("MinMax on empty reported ok")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("quantile of empty not zero")
	}
	b := NewBoxPlot(nil)
	if b.N != 0 {
		t.Fatal("boxplot of empty")
	}
}

func TestMinMax(t *testing.T) {
	min, max, ok := MinMax([]float64{3, -1, 7, 0})
	if !ok || min != -1 || max != 7 {
		t.Fatalf("minmax %g %g %v", min, max, ok)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
		{-0.5, 1}, {1.5, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if Median([]float64{5}) != 5 {
		t.Error("median of singleton")
	}
	// Quantile must not mutate its input.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestQuantileMonotonicProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		min, max, _ := MinMax(xs)
		return Quantile(xs, 0) == min && Quantile(xs, 1) == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxPlot(t *testing.T) {
	// 1..11 plus an extreme outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100}
	b := NewBoxPlot(xs)
	if b.N != 12 || b.Min != 1 || b.Max != 100 {
		t.Fatalf("basic fields: %+v", b)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers: %v", b.Outliers)
	}
	if b.WhiskerHigh >= 100 {
		t.Fatalf("whisker includes outlier: %g", b.WhiskerHigh)
	}
	if b.Q1 >= b.Median || b.Median >= b.Q3 {
		t.Fatalf("quartile ordering: %+v", b)
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBoxPlotNoOutliers(t *testing.T) {
	b := NewBoxPlot([]float64{1, 2, 3, 4, 5})
	if len(b.Outliers) != 0 {
		t.Fatalf("unexpected outliers: %v", b.Outliers)
	}
	if b.WhiskerLow != 1 || b.WhiskerHigh != 5 {
		t.Fatalf("whiskers: %+v", b)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Perfect alternation: lag-1 ACF strongly negative, lag-2 positive.
	xs := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if a := Autocorrelation(xs, 0); !almost(a, 1, 1e-12) {
		t.Fatalf("lag-0 %g", a)
	}
	if a := Autocorrelation(xs, 1); a >= 0 {
		t.Fatalf("lag-1 %g not negative", a)
	}
	if a := Autocorrelation(xs, 2); a <= 0 {
		t.Fatalf("lag-2 %g not positive", a)
	}
	if Autocorrelation(xs, -1) != 0 || Autocorrelation(xs, 99) != 0 {
		t.Fatal("invalid lags should be 0")
	}
	if Autocorrelation([]float64{5, 5, 5}, 1) != 0 {
		t.Fatal("constant series ACF should be 0")
	}
}

func TestOLSRecoversCoefficients(t *testing.T) {
	// y = 3 + 2·a - 0.5·b, exactly.
	var x [][]float64
	var y []float64
	for a := 0.0; a < 10; a++ {
		for b := 0.0; b < 10; b++ {
			x = append(x, []float64{1, a, b})
			y = append(y, 3+2*a-0.5*b)
		}
	}
	beta, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -0.5}
	for i := range want {
		if !almost(beta[i], want[i], 1e-6) {
			t.Fatalf("beta[%d] = %g, want %g", i, beta[i], want[i])
		}
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("empty OLS accepted")
	}
	if _, err := OLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched rows accepted")
	}
	if _, err := OLS([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero regressors accepted")
	}
	if _, err := OLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 1, 1e-9) || !almost(x[1], 3, 1e-9) {
		t.Fatalf("solution %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system accepted")
	}
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := SolveLinear(a, []float64{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 9, 1e-9) || !almost(x[1], 7, 1e-9) {
		t.Fatalf("solution %v", x)
	}
}

func TestMAERMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	actual := []float64{1, 4, 3}
	if m := MAE(pred, actual); !almost(m, 2.0/3, 1e-12) {
		t.Fatalf("MAE %g", m)
	}
	if r := RMSE(pred, actual); !almost(r, math.Sqrt(4.0/3), 1e-12) {
		t.Fatalf("RMSE %g", r)
	}
	if !math.IsNaN(MAE(nil, nil)) || !math.IsNaN(RMSE([]float64{1}, nil)) {
		t.Fatal("degenerate inputs should yield NaN")
	}
}

func TestRMSEDominatesMAEProperty(t *testing.T) {
	prop := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		p, q := a[:n], b[:n]
		for _, v := range append(append([]float64{}, p...), q...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return RMSE(p, q) >= MAE(p, q)-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
