package synth

import (
	"math"
	"testing"
	"time"

	"icewafl/internal/stats"
	"icewafl/internal/stream"
)

var schema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "v", Kind: stream.KindFloat},
	stream.Field{Name: "label", Kind: stream.KindString},
)

// seasonalSource builds n hourly tuples with a daily cycle, a few NULLs
// at fixed positions, and a constant label.
func seasonalSource(n int, nullEvery int) []stream.Tuple {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]stream.Tuple, n)
	for i := range out {
		v := stream.Float(50 + 10*math.Sin(2*math.Pi*float64(i%24)/24))
		if nullEvery > 0 && i%nullEvery == 0 {
			v = stream.Null()
		}
		out[i] = stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Hour)), v, stream.Str("k"),
		})
	}
	return out
}

func TestScaffoldCadence(t *testing.T) {
	src := seasonalSource(48, 0)
	out, err := scaffold(src, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("%d tuples", len(out))
	}
	prev, _ := out[0].Timestamp()
	for i := 1; i < len(out); i++ {
		ts, _ := out[i].Timestamp()
		if !ts.Equal(prev.Add(time.Hour)) {
			t.Fatalf("cadence broken at %d", i)
		}
		prev = ts
	}
	// Non-synthesised attributes cycle through the source.
	if got, _ := out[99].MustGet("label").AsString(); got != "k" {
		t.Fatalf("label %q", got)
	}
}

func TestScaffoldErrors(t *testing.T) {
	if _, err := scaffold(seasonalSource(1, 0), 10); err == nil {
		t.Error("single-tuple source accepted")
	}
	// Non-increasing timestamps.
	src := seasonalSource(2, 0)
	ts0, _ := src[0].Timestamp()
	src[1].SetTimestamp(ts0)
	if _, err := scaffold(src, 10); err == nil {
		t.Error("non-increasing timestamps accepted")
	}
}

func TestBlockBootstrapPreservesValueDistribution(t *testing.T) {
	src := seasonalSource(24*20, 10) // 10% nulls
	out, err := BlockBootstrap{BlockLen: 12}.Synthesize(src, []string{"v"}, 24*40, 1)
	if err != nil {
		t.Fatal(err)
	}
	srcNulls, outNulls := countNulls(src), countNulls(out)
	srcRate := float64(srcNulls) / float64(len(src))
	outRate := float64(outNulls) / float64(len(out))
	if math.Abs(srcRate-outRate) > 0.05 {
		t.Fatalf("null rate drifted: src %.3f out %.3f", srcRate, outRate)
	}
	srcMean := meanOf(src)
	outMean := meanOf(out)
	if math.Abs(srcMean-outMean) > 2 {
		t.Fatalf("mean drifted: src %.2f out %.2f", srcMean, outMean)
	}
}

func TestBlockBootstrapDeterministic(t *testing.T) {
	src := seasonalSource(240, 7)
	a, err := BlockBootstrap{}.Synthesize(src, []string{"v"}, 480, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BlockBootstrap{}.Synthesize(src, []string{"v"}, 480, 42)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c, _ := BlockBootstrap{}.Synthesize(src, []string{"v"}, 480, 43)
	same := 0
	for i := range a {
		if a[i].Equal(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical output")
	}
}

func TestSeasonalBootstrapPreservesHourAlignment(t *testing.T) {
	// Source nulls occur only between 00:00 and 05:59.
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	n := 24 * 30
	src := make([]stream.Tuple, n)
	for i := range src {
		ts := base.Add(time.Duration(i) * time.Hour)
		v := stream.Float(10)
		if ts.Hour() < 6 && i%2 == 0 {
			v = stream.Null()
		}
		src[i] = stream.NewTuple(schema, []stream.Value{stream.Time(ts), v, stream.Str("k")})
	}
	out, err := SeasonalBlockBootstrap{BlockLen: 6}.Synthesize(src, []string{"v"}, 24*60, 2)
	if err != nil {
		t.Fatal(err)
	}
	misplaced := 0
	found := 0
	for _, tp := range out {
		if !tp.MustGet("v").IsNull() {
			continue
		}
		found++
		ts, _ := tp.Timestamp()
		if ts.Hour() >= 6 {
			misplaced++
		}
	}
	if found == 0 {
		t.Fatal("seasonal bootstrap produced no nulls")
	}
	if frac := float64(misplaced) / float64(found); frac > 0.05 {
		t.Fatalf("%.1f%% of nulls misplaced outside the night window", frac*100)
	}
}

func TestARSynthesizerProducesCleanSeasonalData(t *testing.T) {
	src := seasonalSource(24*30, 12)
	out, err := ARSynthesizer{Order: 2}.Synthesize(src, []string{"v"}, 24*30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if countNulls(out) != 0 {
		t.Fatal("AR synthesizer emitted nulls")
	}
	// The seasonal profile should carry over: midnight vs 6am levels.
	var byHour [24][]float64
	for _, tp := range out {
		ts, _ := tp.Timestamp()
		if v, ok := tp.GetFloat("v"); ok {
			byHour[ts.Hour()] = append(byHour[ts.Hour()], v)
		}
	}
	// Source: 50 + 10·sin(2πh/24): h=6 → 60, h=18 → 40.
	if d := stats.Mean(byHour[6]) - stats.Mean(byHour[18]); d < 10 {
		t.Fatalf("seasonal profile lost: 6h-18h difference %.2f", d)
	}
}

func TestARSynthesizerNonNegative(t *testing.T) {
	// All source values non-negative → synthetic values clipped at 0.
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	src := make([]stream.Tuple, 200)
	for i := range src {
		src[i] = stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Hour)),
			stream.Float(0.5), stream.Str("k"),
		})
	}
	out, err := ARSynthesizer{}.Synthesize(src, []string{"v"}, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range out {
		if v, _ := tp.GetFloat("v"); v < 0 {
			t.Fatalf("negative value %g at %d", v, i)
		}
	}
}

func TestARSynthesizerTooFewObservations(t *testing.T) {
	src := seasonalSource(10, 2)
	if _, err := (ARSynthesizer{Order: 3}).Synthesize(src, []string{"v"}, 10, 5); err == nil {
		t.Fatal("tiny source accepted")
	}
}

func TestSynthesizerNames(t *testing.T) {
	if (BlockBootstrap{}).Name() != "block_bootstrap" ||
		(SeasonalBlockBootstrap{}).Name() != "seasonal_bootstrap" ||
		(ARSynthesizer{}).Name() != "ar_model" {
		t.Fatal("name mismatch")
	}
}

func countNulls(tuples []stream.Tuple) int {
	n := 0
	for _, t := range tuples {
		if v, ok := t.Get("v"); ok && v.IsNull() {
			n++
		}
	}
	return n
}

func meanOf(tuples []stream.Tuple) float64 {
	var vals []float64
	for _, t := range tuples {
		if v, ok := t.GetFloat("v"); ok {
			vals = append(vals, v)
		}
	}
	return stats.Mean(vals)
}
