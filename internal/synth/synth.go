// Package synth implements two classical time-series synthesis
// approaches and exists for the paper's fourth future-work item (§5):
// testing whether synthesis approaches are agnostic to temporal error
// types — i.e. whether a synthesizer trained on a polluted stream
// preserves its error patterns (useful for error-analysis benchmarks) or
// washes them out (useful when clean data is required).
//
//   - BlockBootstrap resamples contiguous blocks of the source stream,
//     so whatever errors the blocks contain — nulls, outliers, frozen
//     runs — survive into the synthetic stream.
//   - ARSynthesizer fits a seasonal profile plus an autoregressive model
//     and generates fresh values from it; point errors do not survive
//     because the model only captures the bulk distribution.
package synth

import (
	"fmt"
	"math"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stats"
	"icewafl/internal/stream"
)

// Synthesizer produces a synthetic stream of n tuples modelled on a
// source stream. Only the listed numeric attributes are synthesised; the
// timestamp attribute continues the source's cadence, and all other
// attributes are copied from the source tuple at the same cadence
// position.
type Synthesizer interface {
	// Name identifies the approach.
	Name() string
	// Synthesize returns n synthetic tuples derived from src.
	Synthesize(src []stream.Tuple, attrs []string, n int, seed int64) ([]stream.Tuple, error)
}

// cadence infers the (constant) inter-tuple spacing of the source.
func cadence(src []stream.Tuple) (time.Time, time.Duration, error) {
	if len(src) < 2 {
		return time.Time{}, 0, fmt.Errorf("synth: need at least 2 source tuples")
	}
	t0, ok0 := src[0].Timestamp()
	t1, ok1 := src[1].Timestamp()
	if !ok0 || !ok1 {
		return time.Time{}, 0, fmt.Errorf("synth: source tuples lack timestamps")
	}
	step := t1.Sub(t0)
	if step <= 0 {
		return time.Time{}, 0, fmt.Errorf("synth: non-increasing source timestamps")
	}
	return t0, step, nil
}

// scaffold builds the n output tuples: timestamps continue the source
// cadence from its start, non-synthesised attributes cycle through the
// source values.
func scaffold(src []stream.Tuple, n int) ([]stream.Tuple, error) {
	start, step, err := cadence(src)
	if err != nil {
		return nil, err
	}
	out := make([]stream.Tuple, n)
	for i := 0; i < n; i++ {
		c := src[i%len(src)].Clone()
		c.SetTimestamp(start.Add(time.Duration(i) * step))
		c.ID = 0
		c.Arrival = time.Time{}
		c.EventTime = time.Time{}
		out[i] = c
	}
	return out, nil
}

// BlockBootstrap synthesises by concatenating randomly chosen contiguous
// blocks of the source stream (moving-block bootstrap). Error patterns
// inside a block — including NULLs and temporal bursts shorter than the
// block — are preserved verbatim.
type BlockBootstrap struct {
	// BlockLen is the number of consecutive tuples per block
	// (default 24).
	BlockLen int
}

// Name implements Synthesizer.
func (b BlockBootstrap) Name() string { return "block_bootstrap" }

// Synthesize implements Synthesizer.
func (b BlockBootstrap) Synthesize(src []stream.Tuple, attrs []string, n int, seed int64) ([]stream.Tuple, error) {
	blockLen := b.BlockLen
	if blockLen <= 0 {
		blockLen = 24
	}
	if blockLen > len(src) {
		blockLen = len(src)
	}
	out, err := scaffold(src, n)
	if err != nil {
		return nil, err
	}
	r := rng.Derive(seed, "synth/bootstrap")
	maxStart := len(src) - blockLen
	for pos := 0; pos < n; pos += blockLen {
		start := 0
		if maxStart > 0 {
			start = r.Intn(maxStart + 1)
		}
		for j := 0; j < blockLen && pos+j < n; j++ {
			from := src[start+j]
			for _, a := range attrs {
				if v, ok := from.Get(a); ok {
					out[pos+j].Set(a, v)
				}
			}
		}
	}
	return out, nil
}

// SeasonalBlockBootstrap is a time-of-day-aligned moving-block
// bootstrap: the block copied to an output position must start at the
// same hour of day, so temporal error patterns (e.g. the §3.1.1 midnight
// error peak) survive synthesis in both rate and shape — unlike the
// plain BlockBootstrap, which relocates blocks freely and thereby
// scrambles the daily pattern.
type SeasonalBlockBootstrap struct {
	// BlockLen is the number of consecutive tuples per block
	// (default 24).
	BlockLen int
}

// Name implements Synthesizer.
func (b SeasonalBlockBootstrap) Name() string { return "seasonal_bootstrap" }

// Synthesize implements Synthesizer.
func (b SeasonalBlockBootstrap) Synthesize(src []stream.Tuple, attrs []string, n int, seed int64) ([]stream.Tuple, error) {
	blockLen := b.BlockLen
	if blockLen <= 0 {
		blockLen = 24
	}
	if blockLen > len(src) {
		blockLen = len(src)
	}
	out, err := scaffold(src, n)
	if err != nil {
		return nil, err
	}
	// Index feasible block starts by their hour of day.
	starts := make(map[int][]int)
	for i := 0; i+blockLen <= len(src); i++ {
		ts, ok := src[i].Timestamp()
		if !ok {
			continue
		}
		h := ts.Hour()
		starts[h] = append(starts[h], i)
	}
	r := rng.Derive(seed, "synth/seasonal-bootstrap")
	for pos := 0; pos < n; pos += blockLen {
		ts, _ := out[pos].Timestamp()
		candidates := starts[ts.Hour()]
		var start int
		switch {
		case len(candidates) > 0:
			start = candidates[r.Intn(len(candidates))]
		case len(src) > blockLen:
			start = r.Intn(len(src) - blockLen + 1)
		default:
			start = 0
		}
		for j := 0; j < blockLen && pos+j < n && start+j < len(src); j++ {
			from := src[start+j]
			for _, a := range attrs {
				if v, ok := from.Get(a); ok {
					out[pos+j].Set(a, v)
				}
			}
		}
	}
	return out, nil
}

// ARSynthesizer fits, per attribute, an hour-of-day seasonal profile
// plus an AR(Order) model on the deseasonalised residuals (missing
// values are skipped during fitting) and generates new values with
// Gaussian innovations. The synthetic stream is clean by construction:
// no NULLs, no replayed outliers.
type ARSynthesizer struct {
	// Order is the autoregressive order (default 2).
	Order int
}

// Name implements Synthesizer.
func (a ARSynthesizer) Name() string { return "ar_model" }

// Synthesize implements Synthesizer.
func (a ARSynthesizer) Synthesize(src []stream.Tuple, attrs []string, n int, seed int64) ([]stream.Tuple, error) {
	order := a.Order
	if order <= 0 {
		order = 2
	}
	out, err := scaffold(src, n)
	if err != nil {
		return nil, err
	}
	for _, attr := range attrs {
		model, err := fitAttr(src, attr, order)
		if err != nil {
			return nil, fmt.Errorf("synth: attribute %q: %w", attr, err)
		}
		r := rng.Derive(seed, "synth/ar/"+attr)
		state := make([]float64, order) // residual history, most recent last
		for i := range out {
			ts, _ := out[i].Timestamp()
			resid := 0.0
			for j := 0; j < order; j++ {
				resid += model.phi[j] * state[order-1-j]
			}
			resid += r.Normal(0, model.sigma)
			copy(state, state[1:])
			state[order-1] = resid
			v := model.profile[ts.Hour()] + resid
			if model.nonNegative && v < 0 {
				v = 0
			}
			out[i].Set(attr, stream.Float(v))
		}
	}
	return out, nil
}

type arModel struct {
	profile     [24]float64
	phi         []float64
	sigma       float64
	nonNegative bool
}

// fitAttr estimates the seasonal profile and AR coefficients for one
// attribute of the source stream.
func fitAttr(src []stream.Tuple, attr string, order int) (*arModel, error) {
	var sums, counts [24]float64
	values := make([]float64, len(src))
	hours := make([]int, len(src))
	nonNeg := true
	seen := 0
	for i, t := range src {
		ts, ok := t.Timestamp()
		if !ok {
			return nil, fmt.Errorf("missing timestamp")
		}
		hours[i] = ts.Hour()
		v, isNum := t.GetFloat(attr)
		if !isNum {
			values[i] = math.NaN()
			continue
		}
		values[i] = v
		sums[hours[i]] += v
		counts[hours[i]]++
		if v < 0 {
			nonNeg = false
		}
		seen++
	}
	if seen < order*10 {
		return nil, fmt.Errorf("only %d numeric observations", seen)
	}
	m := &arModel{nonNegative: nonNeg}
	overall := 0.0
	nHours := 0.0
	for h := 0; h < 24; h++ {
		if counts[h] > 0 {
			m.profile[h] = sums[h] / counts[h]
			overall += m.profile[h]
			nHours++
		}
	}
	if nHours > 0 {
		overall /= nHours
	}
	for h := 0; h < 24; h++ {
		if counts[h] == 0 {
			m.profile[h] = overall
		}
	}

	// Residuals, skipping gaps around NaNs.
	resid := make([]float64, len(values))
	for i := range values {
		if math.IsNaN(values[i]) {
			resid[i] = math.NaN()
			continue
		}
		resid[i] = values[i] - m.profile[hours[i]]
	}
	var x [][]float64
	var y []float64
	for t := order; t < len(resid); t++ {
		row := make([]float64, order)
		ok := !math.IsNaN(resid[t])
		for j := 0; j < order && ok; j++ {
			if math.IsNaN(resid[t-1-j]) {
				ok = false
				break
			}
			row[j] = resid[t-1-j]
		}
		if !ok {
			continue
		}
		x = append(x, row)
		y = append(y, resid[t])
	}
	if len(y) <= order {
		return nil, fmt.Errorf("not enough contiguous observations for AR(%d)", order)
	}
	phi, err := stats.OLS(x, y)
	if err != nil {
		return nil, err
	}
	m.phi = phi
	// Innovation variance from the fitted residuals.
	var sse float64
	for i := range y {
		pred := 0.0
		for j := 0; j < order; j++ {
			pred += phi[j] * x[i][j]
		}
		d := y[i] - pred
		sse += d * d
	}
	m.sigma = math.Sqrt(sse / float64(len(y)))
	return m, nil
}
