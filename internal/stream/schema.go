package stream

import "fmt"

// Field describes one attribute of a stream schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema is the ordered attribute list of a data stream. Per the paper
// (§2.1) every stream schema contains a timestamp attribute; Timestamp
// names it. Schemas are immutable after construction and safe to share
// between goroutines.
type Schema struct {
	fields    []Field
	index     map[string]int
	timestamp string
	tsIdx     int
}

// NewSchema builds a schema from fields. timestamp must name one of the
// fields (of kind time or int); it is the attribute that carries the
// original event timestamp ts, which pollution may alter.
func NewSchema(timestamp string, fields ...Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("stream: schema needs at least one field")
	}
	s := &Schema{
		fields:    append([]Field(nil), fields...),
		index:     make(map[string]int, len(fields)),
		timestamp: timestamp,
		tsIdx:     -1,
	}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("stream: field %d has empty name", i)
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("stream: duplicate field %q", f.Name)
		}
		s.index[f.Name] = i
		if f.Name == timestamp {
			s.tsIdx = i
		}
	}
	if s.tsIdx < 0 {
		return nil, fmt.Errorf("stream: timestamp attribute %q not in schema", timestamp)
	}
	tk := fields[s.tsIdx].Kind
	if tk != KindTime && tk != KindInt {
		return nil, fmt.Errorf("stream: timestamp attribute %q must be time or int, got %v", timestamp, tk)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error. It is reserved for
// schemas whose field list is a compile-time constant (tests, examples).
// Any schema derived from external input — files, flags, generated
// documents — must go through NewSchema (or a wrapper such as
// schemafile.Parse or dataset.NewWearableSchema) so that an invalid
// schema surfaces as an error, not a panic.
func MustSchema(timestamp string, fields ...Field) *Schema {
	s, err := NewSchema(timestamp, fields...)
	if err != nil {
		panic(err) //lint:allowpanic Must* contract
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool { _, ok := s.index[name]; return ok }

// Timestamp returns the name of the timestamp attribute.
func (s *Schema) Timestamp() string { return s.timestamp }

// TimestampIndex returns the position of the timestamp attribute.
func (s *Schema) TimestampIndex() int { return s.tsIdx }

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Name
	}
	return out
}

// Equal reports whether two schemas have identical fields and timestamp.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if o == nil || len(s.fields) != len(o.fields) || s.timestamp != o.timestamp {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}
