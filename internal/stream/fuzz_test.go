package stream

import (
	"math"
	"testing"
)

// FuzzParseValue checks that ParseValue never panics and that values it
// accepts round-trip through String for every kind.
func FuzzParseValue(f *testing.F) {
	seeds := []string{"", "1.5", "-7", "true", "hello", "2020-01-01T00:00:00Z", "NaN", "1e308", "0x10", "  3 "}
	for _, s := range seeds {
		f.Add(s)
	}
	kinds := []Kind{KindNull, KindFloat, KindInt, KindString, KindBool, KindTime}
	f.Fuzz(func(t *testing.T, s string) {
		for _, k := range kinds {
			v, err := ParseValue(s, k)
			if err != nil {
				continue
			}
			// Accepted values must round-trip (strings trivially; numbers
			// via shortest representation; the empty string is NULL).
			if s == "" {
				if !v.IsNull() {
					t.Fatalf("empty string parsed to %v for kind %v", v, k)
				}
				continue
			}
			back, err := ParseValue(v.String(), v.Kind())
			if err != nil {
				t.Fatalf("re-parse of %q (kind %v) failed: %v", v.String(), k, err)
			}
			if f, ok := v.AsFloat(); ok && math.IsNaN(f) {
				// NaN != NaN by definition; round-tripping must at least
				// preserve NaN-ness.
				if bf, bok := back.AsFloat(); !bok || !math.IsNaN(bf) {
					t.Fatalf("NaN did not survive the round trip: %v", back)
				}
				continue
			}
			if !back.Equal(v) {
				t.Fatalf("round trip changed value: %v -> %v (kind %v)", v, back, k)
			}
		}
	})
}
