package stream

import (
	"testing"
	"time"
)

func colBatchStream(n int) (*Schema, []Tuple) {
	schema := MustSchema("ts",
		Field{Name: "ts", Kind: KindTime},
		Field{Name: "v", Kind: KindFloat},
		Field{Name: "tag", Kind: KindString},
	)
	base := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = NewTuple(schema, []Value{
			Time(base.Add(time.Duration(i) * time.Minute)),
			Float(float64(i) / 2),
			Str("s"),
		})
	}
	return schema, tuples
}

func TestColumnBatchRoundTrip(t *testing.T) {
	schema, tuples := colBatchStream(10)
	prepared, err := Drain(NewPrepare(NewSliceSource(schema, tuples), 1))
	if err != nil {
		t.Fatal(err)
	}
	// Pollute a few cells with mixed kinds, as pollution would.
	prepared[3].Set("v", Null())
	prepared[5].Set("v", Str("oops"))
	prepared[7].Dropped = true
	prepared[8].Arrival = prepared[8].Arrival.Add(time.Hour)

	batches, err := BatchColumnar(NewSliceSource(schema, prepared), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	out, err := Drain(FromColumnBatches(schema, batches, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(prepared) {
		t.Fatalf("round trip lost rows: %d != %d", len(out), len(prepared))
	}
	for i := range out {
		a, b := prepared[i], out[i]
		if !a.Equal(b) {
			t.Fatalf("row %d values differ: %v vs %v", i, a, b)
		}
		if a.ID != b.ID || a.SubStream != b.SubStream || a.Dropped != b.Dropped ||
			a.Quarantined != b.Quarantined || !a.EventTime.Equal(b.EventTime) ||
			!a.Arrival.Equal(b.Arrival) {
			t.Fatalf("row %d metadata differs", i)
		}
	}
}

func TestColumnBatchPooledReplayAllocatesNothingSteadyState(t *testing.T) {
	schema, tuples := colBatchStream(64)
	batches, err := BatchColumnar(NewSliceSource(schema, tuples), 16)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewTuplePoolFor(schema)
	n, err := Copy(DiscardSink{}, FromColumnBatches(schema, batches, pool))
	if err != nil || n != 64 {
		t.Fatalf("Copy = (%d, %v)", n, err)
	}
	if _, misses := pool.Stats(); misses > 2 {
		t.Fatalf("pooled replay missed the pool %d times", misses)
	}
}

func TestColumnBatchResetReuse(t *testing.T) {
	schema, tuples := colBatchStream(8)
	b := NewColumnBatch(schema, 8)
	for _, tp := range tuples {
		if err := b.AppendTuple(tp); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 8 {
		t.Fatalf("len = %d", b.Len())
	}
	payload, kinds := b.Floats(1)
	if len(payload) != 8 || kinds[0] != KindFloat || payload[2] != 1.0 {
		t.Fatalf("columnar float access wrong: %v %v", payload, kinds)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not empty the batch")
	}
	if err := b.AppendTuple(tuples[0]); err != nil {
		t.Fatal(err)
	}
	if got := b.Value(0, 1).MustFloat(); got != 0 {
		t.Fatalf("reused batch row wrong: %v", got)
	}
}

func TestColumnBatchSetValueMixedKinds(t *testing.T) {
	schema, tuples := colBatchStream(2)
	b := NewColumnBatch(schema, 2)
	for _, tp := range tuples {
		if err := b.AppendTuple(tp); err != nil {
			t.Fatal(err)
		}
	}
	b.SetValue(0, 1, Str("polluted"))
	b.SetValue(1, 1, Null())
	if s, _ := b.Value(0, 1).AsString(); s != "polluted" {
		t.Fatalf("cell (0,1) = %v", b.Value(0, 1))
	}
	if !b.Value(1, 1).IsNull() {
		t.Fatalf("cell (1,1) = %v, want NULL", b.Value(1, 1))
	}
}

func TestColumnBatchWidthMismatch(t *testing.T) {
	schema, _ := colBatchStream(1)
	narrow := MustSchema("ts", Field{Name: "ts", Kind: KindTime})
	b := NewColumnBatch(schema, 1)
	if err := b.AppendTuple(NewTuple(narrow, []Value{Time(time.Unix(0, 0))})); err == nil {
		t.Fatal("width mismatch not rejected")
	}
}
