package stream

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"icewafl/internal/obs"
)

// This file implements the allocation-lean tuple hot path: a buffer pool
// for the []Value backing arrays of tuples, plus the two operators that
// put it to work — a pooled deep-copy map stage and a recycling stage
// that returns buffers to the pool once the consumer has moved past
// them. Together they turn the per-tuple "clone, pollute, discard" cycle
// of a pollution run from two heap allocations per tuple into zero
// steady-state allocations: the same handful of buffers circulates
// between the clone stage and the recycler for the whole run.
//
// Ownership protocol. A buffer obtained from a TuplePool is owned by
// exactly one tuple at a time. CloneTuple transfers a fresh buffer to
// the returned tuple; ReleaseTuple (or the Recycle operator) hands it
// back. Returning a buffer that is still referenced elsewhere is a
// use-after-free class bug — the standard streaming discipline applies:
// operators own the tuples they emit until the consumer pulls the next
// one.

// TuplePool recycles equally sized []Value backing arrays. It is safe
// for concurrent use; the per-Get cost is one uncontended mutex
// acquisition, and no allocation happens on either Get or Put once the
// pool has warmed up. (A sync.Pool is deliberately not used here: slices
// are not pointer-shaped, so every Put through a sync.Pool would box the
// slice header and re-introduce the very allocation the pool exists to
// remove.)
type TuplePool struct {
	width   int
	maxFree int

	// fast is a single-buffer fast path: the data pointer of the most
	// recently returned buffer. The steady state of a pollution run is
	// one buffer circulating between the clone stage and the recycler,
	// so almost every Get/Put pair is served by one atomic swap and one
	// compare-and-swap instead of two mutex round trips. All buffers
	// share the pool width, so the slice is reconstructed losslessly
	// with unsafe.Slice(ptr, width).
	fast     atomic.Pointer[Value]
	fastHits atomic.Uint64

	mu     sync.Mutex
	free   [][]Value
	hits   uint64
	misses uint64
}

// DefaultPoolRetain is the default cap on the number of idle buffers a
// TuplePool retains. It comfortably covers the deepest in-flight window
// of the engine (reorder buffers, parallel workers, micro-batches)
// while bounding idle memory.
const DefaultPoolRetain = 4096

// NewTuplePool returns a pool of value buffers for tuples of the given
// width (schema.Len()).
func NewTuplePool(width int) *TuplePool {
	if width < 0 {
		width = 0
	}
	return &TuplePool{width: width, maxFree: DefaultPoolRetain}
}

// NewTuplePoolFor returns a pool sized for tuples of schema.
func NewTuplePoolFor(schema *Schema) *TuplePool { return NewTuplePool(schema.Len()) }

// Width returns the buffer width the pool serves.
func (p *TuplePool) Width() int { return p.width }

// Get returns a value buffer of length Width. The contents are
// unspecified; callers overwrite every slot.
func (p *TuplePool) Get() []Value {
	if p.width > 0 {
		if ptr := p.fast.Swap(nil); ptr != nil {
			p.fastHits.Add(1)
			return unsafe.Slice(ptr, p.width)
		}
	}
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		vs := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.hits++
		p.mu.Unlock()
		return vs
	}
	p.misses++
	p.mu.Unlock()
	return make([]Value, p.width)
}

// Put returns a buffer to the pool. Buffers of the wrong width (e.g.
// from a tuple that never came from this pool) are dropped silently, so
// Put is always safe to call on owned buffers.
func (p *TuplePool) Put(vs []Value) {
	if cap(vs) < p.width {
		return
	}
	vs = vs[:p.width]
	// Drop string references so pooled buffers don't pin payloads. The
	// other fields need no clearing (Get's contract leaves contents
	// unspecified), and a full Value{} store per slot would cost a
	// duffzero on the hot path.
	for i := range vs {
		vs[i].s = ""
	}
	if p.width > 0 && p.fast.CompareAndSwap(nil, &vs[0]) {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.maxFree {
		p.free = append(p.free, vs)
	}
	p.mu.Unlock()
}

// CloneTuple returns a deep copy of t whose value buffer comes from the
// pool. Metadata (ID, event time, arrival, flags) is copied verbatim.
func (p *TuplePool) CloneTuple(t Tuple) Tuple {
	c := t
	buf := p.Get()
	if len(buf) != len(t.values) {
		// Width mismatch (schema narrower/wider than the pool): fall back
		// to an exact-size private buffer; Put will drop it later.
		buf = make([]Value, len(t.values))
	}
	copy(buf, t.values)
	c.values = buf
	return c
}

// ReleaseTuple returns t's value buffer to the pool. The caller must not
// use t (or any alias of its values) afterwards.
func (p *TuplePool) ReleaseTuple(t Tuple) { p.Put(t.values) }

// Instrument registers the pool's statistics as gauges on a metrics
// registry: pool_hits / pool_misses (Gets served from vs. past the free
// list) and pool_idle (buffers currently retained). Gauges are read at
// snapshot time, so instrumentation adds nothing to the Get/Put path.
func (p *TuplePool) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterFunc("pool_hits", func() uint64 { h, _ := p.Stats(); return h })
	reg.RegisterFunc("pool_misses", func() uint64 { _, m := p.Stats(); return m })
	reg.RegisterFunc("pool_idle", func() uint64 { return uint64(p.Idle()) })
}

// Stats reports pool effectiveness: hits are Gets served from the free
// list, misses are Gets that had to allocate.
func (p *TuplePool) Stats() (hits, misses uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits + p.fastHits.Load(), p.misses
}

// Idle returns the number of buffers currently retained (including the
// single-buffer fast slot).
func (p *TuplePool) Idle() int {
	n := 0
	if p.fast.Load() != nil {
		n = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return n + len(p.free)
}

// PooledClone returns a MapFunc that deep-copies every tuple into a
// pooled buffer — the allocation-free analogue of Tuple.Clone for
// protecting a shared backing slice from in-place pollution. Pair it
// with Recycle downstream to return the buffers.
func PooledClone(p *TuplePool) MapFunc {
	return func(t Tuple) Tuple { return p.CloneTuple(t) }
}

// Recycle wraps src with loan semantics: each call to Next first returns
// the previously emitted tuple's value buffer to the pool, then pulls
// the next tuple. The consumer therefore owns an emitted tuple only
// until its next pull — exactly the contract of Copy, Drain-free sinks,
// and serialising writers. Consumers that retain tuples (CollectSink,
// Drain) must clone them first or must not use Recycle.
func Recycle(src Source, p *TuplePool) Source {
	return &recycleSource{src: src, pool: p}
}

type recycleSource struct {
	src  Source
	pool *TuplePool
	// prev holds only the loaned buffer of the previously emitted tuple —
	// not the whole (fat) Tuple — so the hot loop copies 24 bytes instead
	// of a full struct per emission.
	prev []Value
}

// Schema implements Source.
func (r *recycleSource) Schema() *Schema { return r.src.Schema() }

// Next implements Source.
func (r *recycleSource) Next() (Tuple, error) {
	if r.prev != nil {
		r.pool.Put(r.prev)
		r.prev = nil
	}
	t, err := r.src.Next()
	if err != nil {
		return t, err
	}
	r.prev = t.values
	return t, nil
}

// Stop implements Stopper, releasing the in-flight buffer.
func (r *recycleSource) Stop() {
	if r.prev != nil {
		r.pool.Put(r.prev)
		r.prev = nil
	}
	stopSource(r.src)
}
