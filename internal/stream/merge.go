package stream

import (
	"io"
	"sort"
)

// SortMerge implements step 3 of Algorithm 1 for bounded streams: it takes
// the union of the m polluted sub-streams, stamps each tuple with its
// sub-stream identifier, and sorts the union by delivery time (arrival),
// breaking ties by event time and then tuple ID for determinism. The
// result is the polluted output stream D^p.
func SortMerge(subs []Source) ([]Tuple, error) {
	var all []Tuple
	for i, src := range subs {
		for {
			t, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			t.SubStream = i
			all = append(all, t)
		}
	}
	SortByArrival(all)
	return all, nil
}

// SortByArrival sorts tuples by arrival, then event time, then ID. The
// sort is deterministic for any input permutation.
func SortByArrival(ts []Tuple) {
	sort.SliceStable(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if !a.Arrival.Equal(b.Arrival) {
			return a.Arrival.Before(b.Arrival)
		}
		if !a.EventTime.Equal(b.EventTime) {
			return a.EventTime.Before(b.EventTime)
		}
		return a.ID < b.ID
	})
}

// KWayMerge merges m sub-streams that are individually sorted by arrival
// into one sorted stream without materialising everything first. It is
// the streaming-friendly alternative to SortMerge benchmarked in the
// ablation study; it is only correct when every input is arrival-sorted
// (e.g. when no delay error reorders within a sub-stream, or after a
// bounded-lateness buffer).
type KWayMerge struct {
	subs  []Source
	heads []Tuple
	live  []bool
	open  int
}

// NewKWayMerge prepares a merger over subs.
func NewKWayMerge(subs []Source) (*KWayMerge, error) {
	m := &KWayMerge{
		subs:  subs,
		heads: make([]Tuple, len(subs)),
		live:  make([]bool, len(subs)),
	}
	for i := range subs {
		if err := m.advance(i); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *KWayMerge) advance(i int) error {
	t, err := m.subs[i].Next()
	if err == io.EOF {
		if m.live[i] {
			m.live[i] = false
			m.open--
		}
		return nil
	}
	if err != nil {
		return err
	}
	t.SubStream = i
	if !m.live[i] {
		m.live[i] = true
		m.open++
	}
	m.heads[i] = t
	return nil
}

// Schema implements Source.
func (m *KWayMerge) Schema() *Schema { return m.subs[0].Schema() }

// Next implements Source, emitting the globally earliest head.
func (m *KWayMerge) Next() (Tuple, error) {
	if m.open == 0 {
		return Tuple{}, io.EOF
	}
	best := -1
	for i := range m.heads {
		if !m.live[i] {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		a, b := m.heads[i], m.heads[best]
		if a.Arrival.Before(b.Arrival) ||
			(a.Arrival.Equal(b.Arrival) && a.ID < b.ID) {
			best = i
		}
	}
	out := m.heads[best]
	if err := m.advance(best); err != nil {
		return Tuple{}, err
	}
	return out, nil
}

// BoundedReorder re-sorts a nearly sorted stream using a buffer of the
// given capacity, the streaming analogue of allowed lateness: a tuple may
// be displaced at most capacity-1 positions from its sorted location.
// This lets delayed-tuple pollution flow through unbounded pipelines.
type BoundedReorder struct {
	src Source
	buf []Tuple
	cap int
	eof bool
}

// NewBoundedReorder wraps src with a reordering window of capacity tuples.
func NewBoundedReorder(src Source, capacity int) *BoundedReorder {
	if capacity < 1 {
		capacity = 1
	}
	return &BoundedReorder{src: src, cap: capacity}
}

// Schema implements Source.
func (r *BoundedReorder) Schema() *Schema { return r.src.Schema() }

// Next implements Source.
func (r *BoundedReorder) Next() (Tuple, error) {
	for !r.eof && len(r.buf) < r.cap {
		t, err := r.src.Next()
		if err == io.EOF {
			r.eof = true
			break
		}
		if err != nil {
			return Tuple{}, err
		}
		r.insert(t)
	}
	if len(r.buf) == 0 {
		return Tuple{}, io.EOF
	}
	out := r.buf[0]
	r.buf = r.buf[1:]
	return out, nil
}

func (r *BoundedReorder) insert(t Tuple) {
	i := sort.Search(len(r.buf), func(i int) bool {
		b := r.buf[i]
		if !b.Arrival.Equal(t.Arrival) {
			return b.Arrival.After(t.Arrival)
		}
		return b.ID > t.ID
	})
	r.buf = append(r.buf, Tuple{})
	copy(r.buf[i+1:], r.buf[i:])
	r.buf[i] = t
}
