// Package stream implements the data-stream substrate Icewafl runs on.
//
// The original system is built on Apache Flink; this package provides the
// subset of that machinery the pollution process needs: typed tuples with
// schemas and event time, pull-based sources, sinks, functional operators
// (map/filter/flatmap), stream splitting and merging, micro-batching, and
// a small execution engine with optional parallelism.
package stream

import (
	"fmt"
	"strconv"
	"time"
)

// Kind enumerates the attribute types supported by the engine.
type Kind int

const (
	KindNull Kind = iota
	KindFloat
	KindInt
	KindString
	KindBool
	KindTime
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a type name used in schemas and JSON configurations
// back into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "null":
		return KindNull, nil
	case "float", "float64", "double":
		return KindFloat, nil
	case "int", "int64", "integer":
		return KindInt, nil
	case "string", "str":
		return KindString, nil
	case "bool", "boolean":
		return KindBool, nil
	case "time", "timestamp":
		return KindTime, nil
	}
	return KindNull, fmt.Errorf("stream: unknown kind %q", s)
}

// Value is a dynamically typed attribute value. The zero value is NULL.
// Values are small and immutable; copy them freely.
type Value struct {
	kind Kind
	f    float64
	i    int64
	s    string
	b    bool
	t    time.Time
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Time returns a timestamp value.
func Time(v time.Time) Value { return Value{kind: KindTime, t: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsFloat returns the value as float64. Integers are widened; all other
// kinds report ok=false.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	}
	return 0, false
}

// AsInt returns the value as int64. Floats are truncated; all other kinds
// report ok=false.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	}
	return 0, false
}

// AsString returns the string payload of a string value.
func (v Value) AsString() (string, bool) {
	if v.kind == KindString {
		return v.s, true
	}
	return "", false
}

// AsBool returns the boolean payload of a bool value.
func (v Value) AsBool() (bool, bool) {
	if v.kind == KindBool {
		return v.b, true
	}
	return false, false
}

// AsTime returns the timestamp payload of a time value. Integer values are
// interpreted as Unix seconds, mirroring how streaming systems commonly
// encode event timestamps.
func (v Value) AsTime() (time.Time, bool) {
	switch v.kind {
	case KindTime:
		return v.t, true
	case KindInt:
		return time.Unix(v.i, 0).UTC(), true
	}
	return time.Time{}, false
}

// MustFloat returns the float payload or panics. Intended for tests and
// generators that control their own schemas.
func (v Value) MustFloat() float64 {
	f, ok := v.AsFloat()
	if !ok {
		panic(fmt.Sprintf("stream: value %v is not numeric", v)) //lint:allowpanic Must* contract
	}
	return f
}

// MustTime returns the time payload or panics.
func (v Value) MustTime() time.Time {
	t, ok := v.AsTime()
	if !ok {
		panic(fmt.Sprintf("stream: value %v is not a timestamp", v)) //lint:allowpanic Must* contract
	}
	return t
}

// Equal reports deep equality of two values (kind and payload).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindFloat:
		return v.f == o.f
	case KindInt:
		return v.i == o.i
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	case KindTime:
		return v.t.Equal(o.t)
	}
	return false
}

// Compare orders two values of the same comparable kind. It returns
// -1, 0, or +1 and ok=false if the kinds are not mutually comparable.
// NULL sorts before everything else.
func (v Value) Compare(o Value) (int, bool) {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0, true
		case v.kind == KindNull:
			return -1, true
		default:
			return 1, true
		}
	}
	if vf, ok := v.AsFloat(); ok {
		if of, ok2 := o.AsFloat(); ok2 {
			switch {
			case vf < of:
				return -1, true
			case vf > of:
				return 1, true
			}
			return 0, true
		}
		return 0, false
	}
	if v.kind != o.kind {
		return 0, false
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < o.s:
			return -1, true
		case v.s > o.s:
			return 1, true
		}
		return 0, true
	case KindBool:
		switch {
		case !v.b && o.b:
			return -1, true
		case v.b && !o.b:
			return 1, true
		}
		return 0, true
	case KindTime:
		switch {
		case v.t.Before(o.t):
			return -1, true
		case v.t.After(o.t):
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// String renders the value for logs and CSV output. NULL renders as the
// empty string so that polluted missing values round-trip through CSV.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindTime:
		return v.t.UTC().Format(time.RFC3339)
	}
	return fmt.Sprintf("Value(kind=%d)", int(v.kind))
}

// ParseValue parses the textual representation produced by String back
// into a Value of the requested kind. The empty string parses as NULL for
// every kind, matching how missing values appear in CSV files.
func ParseValue(s string, kind Kind) (Value, error) {
	if s == "" {
		return Null(), nil
	}
	switch kind {
	case KindNull:
		return Null(), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("stream: parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("stream: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindString:
		return Str(s), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null(), fmt.Errorf("stream: parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	case KindTime:
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return Null(), fmt.Errorf("stream: parse time %q: %w", s, err)
		}
		return Time(t), nil
	}
	return Null(), fmt.Errorf("stream: cannot parse into kind %v", kind)
}
