package stream

import (
	"testing"
	"time"
)

func windowedTuples(t *testing.T, gapsAt map[int]bool, n int) (*Schema, []Tuple) {
	t.Helper()
	s := testSchema(t)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	var out []Tuple
	for i := 0; i < n; i++ {
		if gapsAt[i] {
			continue
		}
		tp := NewTuple(s, []Value{Time(base.Add(time.Duration(i) * time.Minute)), Float(float64(i))})
		tp.EventTime, _ = tp.Timestamp()
		tp.Arrival = tp.EventTime
		out = append(out, tp)
	}
	return s, out
}

func TestTumblingWindowsBasic(t *testing.T) {
	s, tuples := windowedTuples(t, nil, 30) // 30 minutes of data
	w := NewTumblingWindows(NewSliceSource(s, tuples), 10*time.Minute)
	wins, err := CollectWindows(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 3 {
		t.Fatalf("%d windows", len(wins))
	}
	for i, win := range wins {
		if len(win.Tuples) != 10 {
			t.Fatalf("window %d has %d tuples", i, len(win.Tuples))
		}
		if !win.End.Equal(win.Start.Add(10 * time.Minute)) {
			t.Fatalf("window %d bounds %v..%v", i, win.Start, win.End)
		}
		for _, tp := range win.Tuples {
			if tp.Arrival.Before(win.Start) || !tp.Arrival.Before(win.End) {
				t.Fatalf("tuple %v outside window %v..%v", tp.Arrival, win.Start, win.End)
			}
		}
	}
}

func TestTumblingWindowsSkipsEmpty(t *testing.T) {
	gaps := map[int]bool{}
	for i := 10; i < 20; i++ {
		gaps[i] = true // second window entirely empty
	}
	s, tuples := windowedTuples(t, gaps, 30)
	wins, err := CollectWindows(NewTumblingWindows(NewSliceSource(s, tuples), 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 {
		t.Fatalf("%d windows, want 2 (empty skipped)", len(wins))
	}
	if len(wins[0].Tuples) != 10 || len(wins[1].Tuples) != 10 {
		t.Fatalf("window sizes %d, %d", len(wins[0].Tuples), len(wins[1].Tuples))
	}
	if !wins[1].Start.Equal(wins[0].Start.Add(20 * time.Minute)) {
		t.Fatalf("second window start %v", wins[1].Start)
	}
}

func TestTumblingWindowsEmptyStream(t *testing.T) {
	s := testSchema(t)
	wins, err := CollectWindows(NewTumblingWindows(NewSliceSource(s, nil), time.Minute))
	if err != nil || len(wins) != 0 {
		t.Fatalf("%d windows, %v", len(wins), err)
	}
}

func TestTumblingWindowsNonPositiveWidth(t *testing.T) {
	s, tuples := windowedTuples(t, nil, 3)
	w := NewTumblingWindows(NewSliceSource(s, tuples), 0)
	wins, err := CollectWindows(w)
	if err != nil || len(wins) == 0 {
		t.Fatalf("default width failed: %d windows, %v", len(wins), err)
	}
}

func TestWatermarkLateness(t *testing.T) {
	_, tuples := windowedTuples(t, nil, 10)
	// Delay tuple 3 by 5 minutes: it arrives between tuples 8 and 9.
	tuples[3].Arrival = tuples[3].Arrival.Add(5 * time.Minute)
	SortByArrival(tuples)

	strict := NewWatermark(0)
	for _, tp := range tuples {
		strict.Observe(tp)
	}
	// With zero tolerated delay, the displaced tuple is the only one
	// whose arrival regresses… it doesn't regress (arrival is sorted) —
	// lateness tracks *event time* skew only via arrival order, so a
	// sorted stream has no late tuples.
	if strict.LateCount() != 0 {
		t.Fatalf("sorted stream reported %d late tuples", strict.LateCount())
	}
	if strict.Total() != 10 {
		t.Fatalf("total %d", strict.Total())
	}

	// Unsorted delivery: tuple arriving behind the watermark is late.
	w := NewWatermark(time.Minute)
	early := tuples[0]
	late := tuples[1]
	early.Arrival = time.Date(2020, 1, 1, 1, 0, 0, 0, time.UTC)
	late.Arrival = early.Arrival.Add(-10 * time.Minute)
	w.Observe(early)
	if !w.Observe(late) {
		t.Fatal("10-minute regression within 1-minute tolerance not late")
	}
	if w.LateCount() != 1 {
		t.Fatalf("late count %d", w.LateCount())
	}
}

func TestWatermarkCurrent(t *testing.T) {
	w := NewWatermark(2 * time.Minute)
	if !w.Current().IsZero() {
		t.Fatal("watermark before observations")
	}
	_, tuples := windowedTuples(t, nil, 1)
	w.Observe(tuples[0])
	want := tuples[0].Arrival.Add(-2 * time.Minute)
	if !w.Current().Equal(want) {
		t.Fatalf("watermark %v, want %v", w.Current(), want)
	}
}

func TestSlidingWindows(t *testing.T) {
	s, tuples := windowedTuples(t, nil, 30)
	wins, err := SlidingWindows(NewSliceSource(s, tuples), 10*time.Minute, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Windows start every 5 minutes from minute 0 through 25: 6 windows.
	if len(wins) != 6 {
		t.Fatalf("%d windows", len(wins))
	}
	// Interior windows hold 10 tuples; the final ones run off the end.
	if len(wins[0].Tuples) != 10 || len(wins[5].Tuples) != 5 {
		t.Fatalf("window sizes %d, %d", len(wins[0].Tuples), len(wins[5].Tuples))
	}
	// Consecutive windows overlap by 5 tuples.
	lastOfFirst := wins[0].Tuples[9]
	firstOfSecond := wins[1].Tuples[0]
	if !firstOfSecond.Arrival.Before(lastOfFirst.Arrival) && !firstOfSecond.Arrival.Equal(lastOfFirst.Arrival.Add(-4*time.Minute)) {
		// weaker check: window 1 starts inside window 0.
		if !wins[1].Start.Before(wins[0].End) {
			t.Fatal("windows do not overlap")
		}
	}
	// slide == width degrades to tumbling.
	tumb, err := SlidingWindows(NewSliceSource(s, tuples), 10*time.Minute, 10*time.Minute)
	if err != nil || len(tumb) != 3 {
		t.Fatalf("tumbling degrade: %d windows, %v", len(tumb), err)
	}
	// Empty stream.
	empty, err := SlidingWindows(NewSliceSource(s, nil), time.Minute, time.Minute)
	if err != nil || empty != nil {
		t.Fatalf("empty: %v %v", empty, err)
	}
	// Defaults for non-positive parameters.
	if _, err := SlidingWindows(NewSliceSource(s, tuples), 0, 0); err != nil {
		t.Fatal(err)
	}
}
