package stream

import (
	"io"
	"testing"
	"time"
)

func windowedTuples(t *testing.T, gapsAt map[int]bool, n int) (*Schema, []Tuple) {
	t.Helper()
	s := testSchema(t)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	var out []Tuple
	for i := 0; i < n; i++ {
		if gapsAt[i] {
			continue
		}
		tp := NewTuple(s, []Value{Time(base.Add(time.Duration(i) * time.Minute)), Float(float64(i))})
		tp.EventTime, _ = tp.Timestamp()
		tp.Arrival = tp.EventTime
		out = append(out, tp)
	}
	return s, out
}

// mustTumbling builds a TumblingWindows or fails the test.
func mustTumbling(t *testing.T, src Source, width time.Duration) *TumblingWindows {
	t.Helper()
	w, err := NewTumblingWindows(src, width)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTumblingWindowsBasic(t *testing.T) {
	s, tuples := windowedTuples(t, nil, 30) // 30 minutes of data
	w := mustTumbling(t, NewSliceSource(s, tuples), 10*time.Minute)
	wins, err := CollectWindows(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 3 {
		t.Fatalf("%d windows", len(wins))
	}
	for i, win := range wins {
		if len(win.Tuples) != 10 {
			t.Fatalf("window %d has %d tuples", i, len(win.Tuples))
		}
		if !win.End.Equal(win.Start.Add(10 * time.Minute)) {
			t.Fatalf("window %d bounds %v..%v", i, win.Start, win.End)
		}
		for _, tp := range win.Tuples {
			if tp.Arrival.Before(win.Start) || !tp.Arrival.Before(win.End) {
				t.Fatalf("tuple %v outside window %v..%v", tp.Arrival, win.Start, win.End)
			}
		}
	}
}

func TestTumblingWindowsSkipsEmpty(t *testing.T) {
	gaps := map[int]bool{}
	for i := 10; i < 20; i++ {
		gaps[i] = true // second window entirely empty
	}
	s, tuples := windowedTuples(t, gaps, 30)
	wins, err := CollectWindows(mustTumbling(t, NewSliceSource(s, tuples), 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 {
		t.Fatalf("%d windows, want 2 (empty skipped)", len(wins))
	}
	if len(wins[0].Tuples) != 10 || len(wins[1].Tuples) != 10 {
		t.Fatalf("window sizes %d, %d", len(wins[0].Tuples), len(wins[1].Tuples))
	}
	if !wins[1].Start.Equal(wins[0].Start.Add(20 * time.Minute)) {
		t.Fatalf("second window start %v", wins[1].Start)
	}
}

func TestTumblingWindowsEmptyStream(t *testing.T) {
	s := testSchema(t)
	w := mustTumbling(t, NewSliceSource(s, nil), time.Minute)
	wins, err := CollectWindows(w)
	if err != nil || len(wins) != 0 {
		t.Fatalf("%d windows, %v", len(wins), err)
	}
	// After drain the operator stays terminal.
	if _, err := w.Next(); err != io.EOF {
		t.Fatalf("Next after drain of empty stream = %v, want io.EOF", err)
	}
}

func TestTumblingWindowsNonPositiveWidth(t *testing.T) {
	s, tuples := windowedTuples(t, nil, 3)
	for _, width := range []time.Duration{0, -time.Second} {
		if _, err := NewTumblingWindows(NewSliceSource(s, tuples), width); err == nil {
			t.Fatalf("width %v accepted, want configuration error", width)
		}
	}
}

// TestTumblingWindowsNoDoubleEmitAfterDrain is the EOF-path regression
// test: once the final partial window has been handed out, every later
// Next call must return io.EOF and never re-emit that window.
func TestTumblingWindowsNoDoubleEmitAfterDrain(t *testing.T) {
	s, tuples := windowedTuples(t, nil, 25) // 2 full windows + 1 partial
	w := mustTumbling(t, NewSliceSource(s, tuples), 10*time.Minute)
	var wins []Window
	for {
		win, err := w.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		wins = append(wins, win)
	}
	if len(wins) != 3 || len(wins[2].Tuples) != 5 {
		t.Fatalf("windows %d (final %d tuples), want 3 with partial 5", len(wins), len(wins[len(wins)-1].Tuples))
	}
	// Drained: repeated Next calls stay io.EOF, no window reappears.
	for i := 0; i < 3; i++ {
		win, err := w.Next()
		if err != io.EOF {
			t.Fatalf("Next #%d after drain = (%d tuples, %v), want io.EOF", i, len(win.Tuples), err)
		}
		if len(win.Tuples) != 0 {
			t.Fatalf("Next #%d after drain re-emitted %d tuples", i, len(win.Tuples))
		}
	}
}

// TestTumblingWindowsBoundaryTuple pins the half-open [Start, End)
// contract: a tuple arriving exactly on a window boundary opens the next
// window instead of landing in the previous one.
func TestTumblingWindowsBoundaryTuple(t *testing.T) {
	s := testSchema(t)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(at time.Duration) Tuple {
		tp := NewTuple(s, []Value{Time(base.Add(at)), Float(float64(at))})
		tp.EventTime, _ = tp.Timestamp()
		tp.Arrival = tp.EventTime
		return tp
	}
	// Tuples at 0m, 9m59.999s, exactly 10m, 10m1s with 10-minute windows.
	tuples := []Tuple{mk(0), mk(10*time.Minute - time.Millisecond), mk(10 * time.Minute), mk(10*time.Minute + time.Second)}
	wins, err := CollectWindows(mustTumbling(t, NewSliceSource(s, tuples), 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 {
		t.Fatalf("%d windows, want 2", len(wins))
	}
	if len(wins[0].Tuples) != 2 {
		t.Fatalf("first window has %d tuples, want 2 (boundary tuple excluded)", len(wins[0].Tuples))
	}
	if len(wins[1].Tuples) != 2 {
		t.Fatalf("second window has %d tuples, want 2 (boundary tuple opens it)", len(wins[1].Tuples))
	}
	if !wins[1].Start.Equal(base.Add(10 * time.Minute)) {
		t.Fatalf("second window starts %v, want exactly the boundary", wins[1].Start)
	}
}

// TestTumblingWindowsOutOfOrderAcrossEnd covers delayed tuples arriving
// out of order across a window end: a tuple whose arrival regressed
// behind the current window's end still lands in the open window (the
// operator windows on delivery order, closing only on forward progress),
// and a regression behind an already-skipped range re-anchors cleanly.
func TestTumblingWindowsOutOfOrderAcrossEnd(t *testing.T) {
	s := testSchema(t)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(at time.Duration) Tuple {
		tp := NewTuple(s, []Value{Time(base.Add(at)), Float(float64(at))})
		tp.EventTime, _ = tp.Timestamp()
		tp.Arrival = tp.EventTime
		return tp
	}
	// Delivery order: 1m, 11m (closes window 1, opens [10m,20m)), then a
	// delayed 9m tuple — late, behind the open window's start.
	tuples := []Tuple{mk(time.Minute), mk(11 * time.Minute), mk(9 * time.Minute)}
	wins, err := CollectWindows(mustTumbling(t, NewSliceSource(s, tuples), 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// The late tuple arrives while [10m,20m) is open; it is before End so
	// it joins that window (late data is not dropped).
	if len(wins) != 2 {
		t.Fatalf("%d windows, want 2", len(wins))
	}
	if len(wins[1].Tuples) != 2 {
		t.Fatalf("open window absorbed %d tuples, want 2 (incl. late arrival)", len(wins[1].Tuples))
	}
	// A tuple regressing far behind the open window's start (25m while
	// [41m,51m) is open) is still delivered into the open window: windows
	// key on delivery order and close only on forward progress, so late
	// data is absorbed rather than dropped or re-opening closed windows.
	tuples = []Tuple{mk(time.Minute), mk(45 * time.Minute), mk(25 * time.Minute)}
	wins, err = CollectWindows(mustTumbling(t, NewSliceSource(s, tuples), 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 {
		t.Fatalf("%d windows, want 2", len(wins))
	}
	if len(wins[1].Tuples) != 2 {
		t.Fatalf("open window absorbed %d tuples, want 2", len(wins[1].Tuples))
	}
	if !wins[1].Start.Equal(base.Add(41 * time.Minute)) {
		t.Fatalf("second window starts %v, want 41m (anchored by forward progress)", wins[1].Start)
	}
}

// failAfterSource yields n tuples then fails fatally.
type failAfterSource struct {
	src  Source
	n    int
	seen int
	err  error
}

func (f *failAfterSource) Schema() *Schema { return f.src.Schema() }
func (f *failAfterSource) Next() (Tuple, error) {
	if f.seen >= f.n {
		return Tuple{}, f.err
	}
	f.seen++
	return f.src.Next()
}

// TestTumblingWindowsFatalErrorLatch checks that a fatal source error is
// latched: the partial window is discarded and every later Next repeats
// the error instead of resurrecting half-built state.
func TestTumblingWindowsFatalErrorLatch(t *testing.T) {
	s, tuples := windowedTuples(t, nil, 15)
	boom := errTest("window source failed")
	w := mustTumbling(t, &failAfterSource{src: NewSliceSource(s, tuples), n: 13, err: boom}, 10*time.Minute)
	// First window (10 tuples) closes normally.
	win, err := w.Next()
	if err != nil || len(win.Tuples) != 10 {
		t.Fatalf("first window: %d tuples, %v", len(win.Tuples), err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Next(); err != boom {
			t.Fatalf("Next #%d after fatal error = %v, want latched %v", i, err, boom)
		}
	}
}

// errTest is a trivial comparable error type.
type errTest string

func (e errTest) Error() string { return string(e) }

func TestWatermarkLateness(t *testing.T) {
	_, tuples := windowedTuples(t, nil, 10)
	// Delay tuple 3 by 5 minutes: it arrives between tuples 8 and 9.
	tuples[3].Arrival = tuples[3].Arrival.Add(5 * time.Minute)
	SortByArrival(tuples)

	strict := NewWatermark(0)
	for _, tp := range tuples {
		strict.Observe(tp)
	}
	// With zero tolerated delay, the displaced tuple is the only one
	// whose arrival regresses… it doesn't regress (arrival is sorted) —
	// lateness tracks *event time* skew only via arrival order, so a
	// sorted stream has no late tuples.
	if strict.LateCount() != 0 {
		t.Fatalf("sorted stream reported %d late tuples", strict.LateCount())
	}
	if strict.Total() != 10 {
		t.Fatalf("total %d", strict.Total())
	}

	// Unsorted delivery: tuple arriving behind the watermark is late.
	w := NewWatermark(time.Minute)
	early := tuples[0]
	late := tuples[1]
	early.Arrival = time.Date(2020, 1, 1, 1, 0, 0, 0, time.UTC)
	late.Arrival = early.Arrival.Add(-10 * time.Minute)
	w.Observe(early)
	if !w.Observe(late) {
		t.Fatal("10-minute regression within 1-minute tolerance not late")
	}
	if w.LateCount() != 1 {
		t.Fatalf("late count %d", w.LateCount())
	}
}

func TestWatermarkCurrent(t *testing.T) {
	w := NewWatermark(2 * time.Minute)
	if !w.Current().IsZero() {
		t.Fatal("watermark before observations")
	}
	_, tuples := windowedTuples(t, nil, 1)
	w.Observe(tuples[0])
	want := tuples[0].Arrival.Add(-2 * time.Minute)
	if !w.Current().Equal(want) {
		t.Fatalf("watermark %v, want %v", w.Current(), want)
	}
}

func TestSlidingWindows(t *testing.T) {
	s, tuples := windowedTuples(t, nil, 30)
	wins, err := SlidingWindows(NewSliceSource(s, tuples), 10*time.Minute, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Windows start every 5 minutes from minute 0 through 25: 6 windows.
	if len(wins) != 6 {
		t.Fatalf("%d windows", len(wins))
	}
	// Interior windows hold 10 tuples; the final ones run off the end.
	if len(wins[0].Tuples) != 10 || len(wins[5].Tuples) != 5 {
		t.Fatalf("window sizes %d, %d", len(wins[0].Tuples), len(wins[5].Tuples))
	}
	// Consecutive windows overlap by 5 tuples.
	lastOfFirst := wins[0].Tuples[9]
	firstOfSecond := wins[1].Tuples[0]
	if !firstOfSecond.Arrival.Before(lastOfFirst.Arrival) && !firstOfSecond.Arrival.Equal(lastOfFirst.Arrival.Add(-4*time.Minute)) {
		// weaker check: window 1 starts inside window 0.
		if !wins[1].Start.Before(wins[0].End) {
			t.Fatal("windows do not overlap")
		}
	}
	// slide == width degrades to tumbling.
	tumb, err := SlidingWindows(NewSliceSource(s, tuples), 10*time.Minute, 10*time.Minute)
	if err != nil || len(tumb) != 3 {
		t.Fatalf("tumbling degrade: %d windows, %v", len(tumb), err)
	}
	// Empty stream.
	empty, err := SlidingWindows(NewSliceSource(s, nil), time.Minute, time.Minute)
	if err != nil || empty != nil {
		t.Fatalf("empty: %v %v", empty, err)
	}
	// Non-positive width and negative slide are configuration errors.
	if _, err := SlidingWindows(NewSliceSource(s, tuples), 0, 0); err == nil {
		t.Fatal("zero width accepted, want configuration error")
	}
	if _, err := SlidingWindows(NewSliceSource(s, tuples), time.Minute, -time.Second); err == nil {
		t.Fatal("negative slide accepted, want configuration error")
	}
	// Zero slide defaults to width (tumbling).
	def, err := SlidingWindows(NewSliceSource(s, tuples), 10*time.Minute, 0)
	if err != nil || len(def) != 3 {
		t.Fatalf("zero-slide default: %d windows, %v", len(def), err)
	}
}
