package stream

import "io"

// RouteFunc decides, for one tuple, which of the m sub-streams receive a
// copy of it. Returning more than one index makes the sub-streams
// overlap, as allowed by Algorithm 1 ("m (overlapping) sub-streams").
type RouteFunc func(t Tuple, m int) []int

// RouteAll sends every tuple to every sub-stream (full overlap).
func RouteAll(_ Tuple, m int) []int {
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// RouteRoundRobin partitions tuples across sub-streams without overlap.
func RouteRoundRobin() RouteFunc {
	i := 0
	return func(_ Tuple, m int) []int {
		out := []int{i % m}
		i++
		return out
	}
}

// RouteByAttribute routes by hashing the named attribute's textual
// rendering, so all tuples of one key (e.g. one sensor) stay together —
// the analogue of Flink's keyBy for stream-specific error patterns.
func RouteByAttribute(name string) RouteFunc {
	return func(t Tuple, m int) []int {
		v, _ := t.Get(name)
		s := v.String()
		var h uint32 = 2166136261
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= 16777619
		}
		return []int{int(h % uint32(m))}
	}
}

// demux fans one source out into m sub-sources, pulling lazily from the
// shared input and buffering per output. Each destination receives its
// own clone of a routed tuple so that sub-pipelines cannot observe each
// other's mutations.
type demux struct {
	src    Source
	route  RouteFunc
	m      int
	queues [][]Tuple
	done   bool
	err    error
}

// Split implements step 1's createOverlappingSubStreams: it splits src
// into m sub-streams according to route. The returned sources must all be
// consumed from the same goroutine (they share lazily pulled state).
func Split(src Source, m int, route RouteFunc) []Source {
	d := &demux{src: src, route: route, m: m, queues: make([][]Tuple, m)}
	out := make([]Source, m)
	for i := range out {
		out[i] = &demuxOut{d: d, idx: i}
	}
	return out
}

// pull advances the shared input until output idx has a tuple buffered or
// the input is exhausted.
func (d *demux) pull(idx int) error {
	for len(d.queues[idx]) == 0 {
		if d.done {
			if d.err != nil {
				return d.err
			}
			return io.EOF
		}
		t, err := d.src.Next()
		if err == io.EOF {
			d.done = true
			continue
		}
		if err != nil {
			d.done = true
			d.err = err
			return err
		}
		targets := d.route(t, d.m)
		for _, tgt := range targets {
			if tgt < 0 || tgt >= d.m {
				continue
			}
			d.queues[tgt] = append(d.queues[tgt], t.Clone())
		}
	}
	return nil
}

type demuxOut struct {
	d   *demux
	idx int
}

func (o *demuxOut) Schema() *Schema { return o.d.src.Schema() }

func (o *demuxOut) Next() (Tuple, error) {
	if err := o.d.pull(o.idx); err != nil {
		return Tuple{}, err
	}
	q := o.d.queues[o.idx]
	t := q[0]
	o.d.queues[o.idx] = q[1:]
	return t, nil
}
