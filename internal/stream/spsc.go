package stream

import (
	"runtime"
	"sync/atomic"
	"time"
)

// SPSC is a bounded lock-free single-producer/single-consumer queue: a
// power-of-two ring with monotonically increasing head/tail positions.
// Exactly one goroutine may push and exactly one may pop; under that
// contract every operation is wait-free in the uncontended case — one
// atomic store per push/pop, with the counterpart position cached so a
// hot producer/consumer pair touches each other's cache line only when
// the ring looks full (or empty).
//
// The queue is the shard handoff primitive of the sharded pollution
// runner: per-tuple channel send/recv used to dominate the keyed hot
// path, while a batch pointer through an SPSC ring costs a few
// nanoseconds amortised over the whole batch.
//
// Lifecycle: the producer calls Close when it will push no more; the
// consumer observes Drained (closed and empty) as end-of-stream. The
// consumer may call Abandon to tell the producer it will pop no more;
// Push then fails fast instead of blocking forever.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_         [8]uint64     // pad out the hot fields onto distinct cache lines
	head      atomic.Uint64 // next slot to pop; written by the consumer only
	_         [7]uint64
	tail      atomic.Uint64 // next slot to push; written by the producer only
	_         [7]uint64
	headCache uint64 // producer's last observed head
	_         [7]uint64
	tailCache uint64 // consumer's last observed tail
	_         [7]uint64
	closed    atomic.Bool
	abandoned atomic.Bool
}

// NewSPSC returns an empty queue holding at least capacity elements
// (rounded up to a power of two, minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity < 2 {
		capacity = 2
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &SPSC[T]{buf: make([]T, size), mask: uint64(size - 1)}
}

// Cap returns the ring capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns the approximate number of queued elements; exact when
// called from either endpoint goroutine, a consistent snapshot
// otherwise (used for occupancy gauges).
func (q *SPSC[T]) Len() int {
	t := q.tail.Load()
	h := q.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// TryPush enqueues v and reports success; it fails when the ring is
// full or the consumer abandoned the queue. Producer goroutine only.
func (q *SPSC[T]) TryPush(v T) bool {
	if q.abandoned.Load() {
		return false
	}
	t := q.tail.Load()
	if t-q.headCache == uint64(len(q.buf)) {
		q.headCache = q.head.Load()
		if t-q.headCache == uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// Push blocks until v is enqueued, done is closed, or the consumer
// abandoned the queue; it reports whether v was enqueued. Producer
// goroutine only.
func (q *SPSC[T]) Push(v T, done <-chan struct{}) bool {
	for spins := 0; ; spins++ {
		if q.TryPush(v) {
			return true
		}
		if q.abandoned.Load() || !spscWait(spins, done) {
			return false
		}
	}
}

// TryPop dequeues the oldest element. Consumer goroutine only.
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.tailCache {
		q.tailCache = q.tail.Load()
		if h == q.tailCache {
			return zero, false
		}
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero // release the reference for GC
	q.head.Store(h + 1)
	return v, true
}

// Pop blocks until an element is available, the queue is closed and
// drained, or done is closed; ok is false in the latter two cases.
// Consumer goroutine only.
func (q *SPSC[T]) Pop(done <-chan struct{}) (T, bool) {
	for spins := 0; ; spins++ {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		if q.closed.Load() {
			// The producer may have pushed between TryPop and the
			// closed load; drain before reporting end-of-stream.
			return q.TryPop()
		}
		if !spscWait(spins, done) {
			var zero T
			return zero, false
		}
	}
}

// Close marks the queue as complete. Producer goroutine only; elements
// already queued remain poppable.
func (q *SPSC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close was called.
func (q *SPSC[T]) Closed() bool { return q.closed.Load() }

// Drained reports whether the queue is closed and empty — the
// consumer's end-of-stream condition.
func (q *SPSC[T]) Drained() bool {
	if !q.closed.Load() {
		return false
	}
	return q.head.Load() == q.tail.Load()
}

// Abandon tells the producer the consumer will pop no more; subsequent
// pushes fail fast. Consumer goroutine only.
func (q *SPSC[T]) Abandon() { q.abandoned.Store(true) }

// Abandoned reports whether Abandon was called.
func (q *SPSC[T]) Abandoned() bool { return q.abandoned.Load() }

// spscMultiCore gates the busy-spin phase: on a single-core host the
// counterpart cannot be mid-operation, so spinning only delays it.
var spscMultiCore = runtime.NumCPU() > 1

// spscWait escalates from busy spinning through cooperative yields to
// short sleeps, checking done once per sleep. Returning false aborts
// the blocking operation. The phases are deliberately short: a starved
// endpoint parks quickly instead of flooding the scheduler with
// yields, which is what dominates when shards exceed cores.
func spscWait(spins int, done <-chan struct{}) bool {
	switch {
	case spins < 32 && spscMultiCore:
		// busy spin: the counterpart is likely mid-operation
	case spins < 64:
		runtime.Gosched()
	default:
		select {
		case <-done:
			return false
		default:
		}
		time.Sleep(50 * time.Microsecond)
	}
	return true
}
