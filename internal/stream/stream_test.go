package stream

import (
	"io"
	"testing"
	"time"
)

// testSchema returns a small schema with an int timestamp and one float.
func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("ts",
		Field{Name: "ts", Kind: KindTime},
		Field{Name: "v", Kind: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func makeTuples(s *Schema, n int) []Tuple {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]Tuple, n)
	for i := range out {
		out[i] = NewTuple(s, []Value{Time(base.Add(time.Duration(i) * time.Hour)), Float(float64(i))})
	}
	return out
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("ts"); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema("missing", Field{Name: "a", Kind: KindFloat}); err == nil {
		t.Error("schema without timestamp attribute accepted")
	}
	if _, err := NewSchema("a", Field{Name: "a", Kind: KindFloat}); err == nil {
		t.Error("float timestamp attribute accepted")
	}
	if _, err := NewSchema("ts", Field{Name: "ts", Kind: KindTime}, Field{Name: "ts", Kind: KindFloat}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := NewSchema("ts", Field{Name: "ts", Kind: KindTime}, Field{Name: "", Kind: KindFloat}); err == nil {
		t.Error("empty field name accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Index("v") != 1 || s.Index("nope") != -1 {
		t.Error("Index lookup wrong")
	}
	if !s.Has("ts") || s.Has("zzz") {
		t.Error("Has lookup wrong")
	}
	if s.Timestamp() != "ts" || s.TimestampIndex() != 0 {
		t.Error("timestamp metadata wrong")
	}
	if names := s.Names(); len(names) != 2 || names[0] != "ts" || names[1] != "v" {
		t.Errorf("Names = %v", names)
	}
	s2 := testSchema(t)
	if !s.Equal(s2) {
		t.Error("equal schemas compare unequal")
	}
	s3 := MustSchema("ts", Field{Name: "ts", Kind: KindTime}, Field{Name: "w", Kind: KindFloat})
	if s.Equal(s3) {
		t.Error("different schemas compare equal")
	}
}

func TestTupleBasics(t *testing.T) {
	s := testSchema(t)
	ts := time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	tp := NewTuple(s, []Value{Time(ts), Float(3)})
	if got := tp.MustGet("v"); !got.Equal(Float(3)) {
		t.Errorf("MustGet(v) = %v", got)
	}
	if _, ok := tp.Get("nope"); ok {
		t.Error("Get of missing attr reported ok")
	}
	if !tp.Set("v", Float(9)) {
		t.Error("Set failed")
	}
	if tp.Set("nope", Float(1)) {
		t.Error("Set of missing attr reported ok")
	}
	got, ok := tp.Timestamp()
	if !ok || !got.Equal(ts) {
		t.Errorf("Timestamp = %v, %v", got, ok)
	}
	tp.SetTimestamp(ts.Add(time.Hour))
	got, _ = tp.Timestamp()
	if !got.Equal(ts.Add(time.Hour)) {
		t.Error("SetTimestamp did not update")
	}
}

func TestTupleIntTimestamp(t *testing.T) {
	s := MustSchema("epoch", Field{Name: "epoch", Kind: KindInt})
	tp := NewTuple(s, []Value{Int(3600)})
	ts, ok := tp.Timestamp()
	if !ok || ts.Unix() != 3600 {
		t.Fatalf("int timestamp: %v %v", ts, ok)
	}
	tp.SetTimestamp(time.Unix(7200, 0))
	if v := tp.MustGet("epoch"); !v.Equal(Int(7200)) {
		t.Fatalf("SetTimestamp on int schema: %v", v)
	}
}

func TestTupleCloneIsDeep(t *testing.T) {
	s := testSchema(t)
	orig := makeTuples(s, 1)[0]
	clone := orig.Clone()
	clone.Set("v", Float(99))
	if orig.MustGet("v").Equal(Float(99)) {
		t.Fatal("mutating clone changed original")
	}
	if !clone.Equal(orig) {
		// Equal compares values; they differ now, which is expected.
		return
	}
	t.Fatal("clone still equal after mutation")
}

func TestNewTuplePanicsOnArityMismatch(t *testing.T) {
	s := testSchema(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on arity mismatch")
		}
	}()
	NewTuple(s, []Value{Float(1)})
}

func TestSliceSourceAndDrain(t *testing.T) {
	s := testSchema(t)
	tuples := makeTuples(s, 5)
	src := NewSliceSource(s, tuples)
	got, err := Drain(src)
	if err != nil || len(got) != 5 {
		t.Fatalf("Drain: %d tuples, err %v", len(got), err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatal("exhausted source did not return EOF")
	}
	src.Reset()
	if tp, err := src.Next(); err != nil || !tp.Equal(tuples[0]) {
		t.Fatal("Reset did not rewind")
	}
}

func TestChannelSource(t *testing.T) {
	s := testSchema(t)
	ch := make(chan Tuple, 3)
	for _, tp := range makeTuples(s, 3) {
		ch <- tp
	}
	close(ch)
	got, err := Drain(NewChannelSource(s, ch))
	if err != nil || len(got) != 3 {
		t.Fatalf("channel source: %d, %v", len(got), err)
	}
}

func TestGeneratorSource(t *testing.T) {
	s := testSchema(t)
	src := NewGeneratorSource(s, 4, func(i int) Tuple {
		return NewTuple(s, []Value{Time(time.Unix(int64(i), 0)), Float(float64(i * i))})
	})
	got, _ := Drain(src)
	if len(got) != 4 || !got[3].MustGet("v").Equal(Float(9)) {
		t.Fatalf("generator: %v", got)
	}
}

func TestPrepareAssignsIDsAndEventTime(t *testing.T) {
	s := testSchema(t)
	src := NewPrepare(NewSliceSource(s, makeTuples(s, 3)), 10)
	got, _ := Drain(src)
	for i, tp := range got {
		if tp.ID != uint64(10+i) {
			t.Errorf("tuple %d has ID %d", i, tp.ID)
		}
		ts, _ := tp.Timestamp()
		if !tp.EventTime.Equal(ts) {
			t.Errorf("tuple %d event time not replicated", i)
		}
		if !tp.Arrival.Equal(ts) {
			t.Errorf("tuple %d arrival not initialised", i)
		}
	}
}

func TestMapFilterFlatMapTake(t *testing.T) {
	s := testSchema(t)
	src := NewSliceSource(s, makeTuples(s, 10))
	doubled := Map(src, nil, func(tp Tuple) Tuple {
		c := tp.Clone()
		c.Set("v", Float(c.MustGet("v").MustFloat()*2))
		return c
	})
	evens := Filter(doubled, func(tp Tuple) bool {
		return int(tp.MustGet("v").MustFloat())%4 == 0
	})
	taken := Take(evens, 3)
	got, err := Drain(taken)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d tuples", len(got))
	}
	for _, tp := range got {
		if int(tp.MustGet("v").MustFloat())%4 != 0 {
			t.Errorf("filter leaked %v", tp)
		}
	}
}

func TestFlatMap(t *testing.T) {
	s := testSchema(t)
	src := NewSliceSource(s, makeTuples(s, 3))
	dup := FlatMap(src, nil, func(tp Tuple) []Tuple {
		return []Tuple{tp, tp.Clone()}
	})
	got, _ := Drain(dup)
	if len(got) != 6 {
		t.Fatalf("flatmap duplicated to %d", len(got))
	}
	drop := FlatMap(NewSliceSource(s, makeTuples(s, 3)), nil, func(Tuple) []Tuple { return nil })
	got, _ = Drain(drop)
	if len(got) != 0 {
		t.Fatalf("flatmap drop kept %d", len(got))
	}
}

func TestPeekAndConcat(t *testing.T) {
	s := testSchema(t)
	count := 0
	p := Peek(NewSliceSource(s, makeTuples(s, 4)), func(Tuple) { count++ })
	c := Concat(p, NewSliceSource(s, makeTuples(s, 2)))
	got, _ := Drain(c)
	if len(got) != 6 || count != 4 {
		t.Fatalf("concat %d tuples, peek saw %d", len(got), count)
	}
}

func TestSinks(t *testing.T) {
	s := testSchema(t)
	col := NewCollectSink()
	n, err := Copy(col, NewSliceSource(s, makeTuples(s, 5)))
	if err != nil || n != 5 || len(col.Tuples) != 5 {
		t.Fatalf("collect sink: n=%d err=%v", n, err)
	}
	cnt := &CountSink{}
	Copy(cnt, NewSliceSource(s, makeTuples(s, 7)))
	if cnt.N != 7 {
		t.Fatalf("count sink: %d", cnt.N)
	}
	ch := make(chan Tuple, 10)
	go Copy(NewChannelSink(ch), NewSliceSource(s, makeTuples(s, 3)))
	got, _ := Drain(NewChannelSource(s, ch))
	if len(got) != 3 {
		t.Fatalf("channel sink: %d", len(got))
	}
	if _, err := Copy(DiscardSink{}, NewSliceSource(s, makeTuples(s, 2))); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRouting(t *testing.T) {
	s := testSchema(t)

	// Round-robin: disjoint partition.
	subs := Split(NewSliceSource(s, makeTuples(s, 10)), 2, RouteRoundRobin())
	a, _ := Drain(subs[0])
	b, _ := Drain(subs[1])
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("round robin: %d + %d", len(a), len(b))
	}

	// RouteAll: full overlap.
	subs = Split(NewSliceSource(s, makeTuples(s, 4)), 3, RouteAll)
	for i, sub := range subs {
		got, _ := Drain(sub)
		if len(got) != 4 {
			t.Fatalf("overlap sub %d has %d tuples", i, len(got))
		}
	}
}

func TestSplitInterleavedConsumption(t *testing.T) {
	s := testSchema(t)
	subs := Split(NewSliceSource(s, makeTuples(s, 6)), 2, RouteRoundRobin())
	// Alternate pulls to exercise the shared demux buffering.
	for i := 0; i < 3; i++ {
		ta, err := subs[0].Next()
		if err != nil {
			t.Fatal(err)
		}
		tb, err := subs[1].Next()
		if err != nil {
			t.Fatal(err)
		}
		if ta.MustGet("v").MustFloat() != float64(2*i) || tb.MustGet("v").MustFloat() != float64(2*i+1) {
			t.Fatalf("interleaving wrong at %d: %v %v", i, ta, tb)
		}
	}
	if _, err := subs[0].Next(); err != io.EOF {
		t.Fatal("sub 0 not exhausted")
	}
	if _, err := subs[1].Next(); err != io.EOF {
		t.Fatal("sub 1 not exhausted")
	}
}

func TestSplitClonesTuples(t *testing.T) {
	s := testSchema(t)
	subs := Split(NewSliceSource(s, makeTuples(s, 1)), 2, RouteAll)
	ta, _ := subs[0].Next()
	ta.Set("v", Float(-1))
	tb, _ := subs[1].Next()
	if tb.MustGet("v").Equal(Float(-1)) {
		t.Fatal("sub-streams share tuple storage")
	}
}

func TestRouteByAttribute(t *testing.T) {
	s := MustSchema("ts",
		Field{Name: "ts", Kind: KindTime},
		Field{Name: "sensor", Kind: KindString},
	)
	base := time.Unix(0, 0)
	var tuples []Tuple
	for i := 0; i < 20; i++ {
		name := "S1"
		if i%2 == 0 {
			name = "S2"
		}
		tuples = append(tuples, NewTuple(s, []Value{Time(base.Add(time.Duration(i) * time.Second)), Str(name)}))
	}
	route := RouteByAttribute("sensor")
	first := route(tuples[0], 4)
	for _, tp := range tuples {
		got := route(tp, 4)
		if len(got) != 1 {
			t.Fatal("key routing returned multiple targets")
		}
		same, _ := tp.Get("sensor")
		if s0, _ := tuples[0].Get("sensor"); same.Equal(s0) && got[0] != first[0] {
			t.Fatal("same key routed to different sub-streams")
		}
	}
}

func TestSortMergeOrdersByArrival(t *testing.T) {
	s := testSchema(t)
	prepared, _ := Drain(NewPrepare(NewSliceSource(s, makeTuples(s, 6)), 1))
	// Delay tuple 2 past tuple 4.
	prepared[2].Arrival = prepared[2].Arrival.Add(3 * time.Hour)
	a := NewSliceSource(s, prepared[:3])
	b := NewSliceSource(s, prepared[3:])
	merged, err := SortMerge([]Source{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 6 {
		t.Fatalf("merged %d", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Arrival.Before(merged[i-1].Arrival) {
			t.Fatalf("merge not sorted at %d", i)
		}
	}
	// Sub-stream ids assigned.
	if merged[0].SubStream != 0 {
		t.Errorf("substream id missing: %+v", merged[0])
	}
	// The delayed tuple's Time attribute now breaks increasing order.
	breaks := 0
	for i := 1; i < len(merged); i++ {
		prev, _ := merged[i-1].Timestamp()
		cur, _ := merged[i].Timestamp()
		if cur.Before(prev) {
			breaks++
		}
	}
	if breaks == 0 {
		t.Fatal("delayed tuple did not break timestamp order")
	}
}

func TestKWayMerge(t *testing.T) {
	s := testSchema(t)
	prepared, _ := Drain(NewPrepare(NewSliceSource(s, makeTuples(s, 10)), 1))
	var even, odd []Tuple
	for i, tp := range prepared {
		if i%2 == 0 {
			even = append(even, tp)
		} else {
			odd = append(odd, tp)
		}
	}
	m, err := NewKWayMerge([]Source{NewSliceSource(s, even), NewSliceSource(s, odd)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(m)
	if err != nil || len(got) != 10 {
		t.Fatalf("kway: %d, %v", len(got), err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Arrival.Before(got[i-1].Arrival) {
			t.Fatalf("kway merge out of order at %d", i)
		}
	}
}

func TestBoundedReorder(t *testing.T) {
	s := testSchema(t)
	prepared, _ := Drain(NewPrepare(NewSliceSource(s, makeTuples(s, 8)), 1))
	// Swap neighbours to create bounded disorder.
	prepared[1], prepared[2] = prepared[2], prepared[1]
	prepared[5], prepared[6] = prepared[6], prepared[5]
	r := NewBoundedReorder(NewSliceSource(s, prepared), 3)
	got, err := Drain(r)
	if err != nil || len(got) != 8 {
		t.Fatalf("reorder: %d, %v", len(got), err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Arrival.Before(got[i-1].Arrival) {
			t.Fatalf("bounded reorder failed at %d", i)
		}
	}
}

func TestParallelMapPreservesOrder(t *testing.T) {
	s := testSchema(t)
	src := NewSliceSource(s, makeTuples(s, 100))
	out := ParallelMap(src, nil, 4, func(tp Tuple) Tuple {
		c := tp.Clone()
		c.Set("v", Float(c.MustGet("v").MustFloat()+1000))
		return c
	})
	got, err := Drain(out)
	if err != nil || len(got) != 100 {
		t.Fatalf("parallel map: %d, %v", len(got), err)
	}
	for i, tp := range got {
		if tp.MustGet("v").MustFloat() != float64(i+1000) {
			t.Fatalf("order broken at %d: %v", i, tp)
		}
	}
}

func TestParallelMapSingleWorkerFallsBack(t *testing.T) {
	s := testSchema(t)
	out := ParallelMap(NewSliceSource(s, makeTuples(s, 5)), nil, 1, func(tp Tuple) Tuple { return tp })
	got, _ := Drain(out)
	if len(got) != 5 {
		t.Fatalf("fallback: %d", len(got))
	}
}

func TestBatchAndFromBatches(t *testing.T) {
	s := testSchema(t)
	batches, err := Batch(NewSliceSource(s, makeTuples(s, 10)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 4 || len(batches[3]) != 1 {
		t.Fatalf("batch sizes: %d batches, last %d", len(batches), len(batches[len(batches)-1]))
	}
	flat, _ := Drain(FromBatches(s, batches))
	if len(flat) != 10 {
		t.Fatalf("flatten: %d", len(flat))
	}
	for i, tp := range flat {
		if tp.MustGet("v").MustFloat() != float64(i) {
			t.Fatalf("batch order broken at %d", i)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if v, ok := Int(5).AsInt(); !ok || v != 5 {
		t.Fatal("AsInt int")
	}
	if v, ok := Float(3.9).AsInt(); !ok || v != 3 {
		t.Fatal("AsInt float truncation")
	}
	if _, ok := Str("x").AsInt(); ok {
		t.Fatal("AsInt string")
	}
	if s, ok := Str("x").AsString(); !ok || s != "x" {
		t.Fatal("AsString")
	}
	if _, ok := Float(1).AsString(); ok {
		t.Fatal("AsString on float")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Fatal("AsBool")
	}
	if _, ok := Int(1).AsBool(); ok {
		t.Fatal("AsBool on int")
	}
	now := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	if got := Time(now).MustTime(); !got.Equal(now) {
		t.Fatal("MustTime")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustTime on string did not panic")
		}
	}()
	Str("x").MustTime()
}

func TestValueStringRendering(t *testing.T) {
	cases := map[string]Value{
		"":                     Null(),
		"1.5":                  Float(1.5),
		"-7":                   Int(-7),
		"hello":                Str("hello"),
		"true":                 Bool(true),
		"2020-05-01T00:00:00Z": Time(time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestTupleStringAndAccessors(t *testing.T) {
	s := testSchema(t)
	tp := makeTuples(s, 1)[0]
	tp.ID = 7
	if tp.Len() != 2 || tp.Schema() != s {
		t.Fatal("Len/Schema")
	}
	if !tp.At(1).Equal(Float(0)) {
		t.Fatal("At")
	}
	tp.SetAt(1, Float(9))
	if !tp.At(1).Equal(Float(9)) {
		t.Fatal("SetAt")
	}
	if len(tp.Values()) != 2 {
		t.Fatal("Values")
	}
	str := tp.String()
	if str == "" || str[0] != '#' {
		t.Fatalf("String %q", str)
	}
	if f, ok := tp.GetFloat("v"); !ok || f != 9 {
		t.Fatal("GetFloat")
	}
	if _, ok := tp.GetFloat("zzz"); ok {
		t.Fatal("GetFloat missing attr")
	}
}

func TestSchemaFieldsCopy(t *testing.T) {
	s := testSchema(t)
	fields := s.Fields()
	fields[0].Name = "mutated"
	if s.Field(0).Name != "ts" {
		t.Fatal("Fields returned shared storage")
	}
}

func TestSourceSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	tuples := makeTuples(s, 4)
	srcs := []Source{
		Map(NewSliceSource(s, tuples), nil, func(t Tuple) Tuple { return t }),
		Filter(NewSliceSource(s, tuples), func(Tuple) bool { return true }),
		FlatMap(NewSliceSource(s, tuples), nil, func(t Tuple) []Tuple { return []Tuple{t} }),
		Take(NewSliceSource(s, tuples), 2),
		Concat(NewSliceSource(s, tuples)),
		NewChannelSource(s, make(chan Tuple)),
		NewPrepare(NewSliceSource(s, tuples), 1),
		ParallelMap(NewSliceSource(s, tuples), nil, 2, func(t Tuple) Tuple { return t }),
		NewBoundedReorder(NewSliceSource(s, tuples), 2),
	}
	for i, src := range srcs {
		if !src.Schema().Equal(s) {
			t.Fatalf("source %d schema mismatch", i)
		}
	}
	subs := Split(NewSliceSource(s, tuples), 2, RouteAll)
	if !subs[0].Schema().Equal(s) {
		t.Fatal("split schema")
	}
	m, err := NewKWayMerge([]Source{NewSliceSource(s, tuples)})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Schema().Equal(s) {
		t.Fatal("kway schema")
	}
}
