package stream

import (
	"fmt"
	"strings"
	"time"
)

// Tuple is one element of a data stream. During preparation (Algorithm 1,
// step 1) each tuple receives a unique ID and a replicated event time τ
// (EventTime); neither is touched by pollution, so the pair serves as the
// ground-truth link between the clean and the polluted stream. The
// original timestamp remains an ordinary attribute (schema.Timestamp())
// and MAY be polluted.
type Tuple struct {
	// ID uniquely identifies the tuple across the whole pollution run.
	ID uint64
	// SubStream identifies which pollution sub-pipeline processed the
	// tuple; it is attached during integration (Algorithm 1, step 3).
	SubStream int
	// EventTime is τ, the pollution-immune replica of the original
	// timestamp, used as event time throughout the pollution process.
	EventTime time.Time
	// Arrival is the delivery time of the tuple: the instant at which it
	// reaches downstream consumers. Preparation initialises it to τ; a
	// delayed-tuple error pushes it into the future without touching the
	// timestamp attribute, so after the merge sort (Algorithm 1, step 3)
	// the delayed tuple appears late and its timestamp attribute breaks
	// the increasing order — exactly how the paper detects delays.
	Arrival time.Time
	// Dropped marks the tuple as removed from the stream by a tuple-loss
	// error. Dropped tuples are excluded from the polluted output but
	// still appear in the pollution log as ground truth.
	Dropped bool
	// Quarantined marks the tuple as removed by the fault-tolerance
	// layer (its pollution failed). Quarantined tuples are excluded from
	// the polluted output AND rolled back out of the pollution log; the
	// dead-letter queue is their ground truth instead.
	Quarantined bool

	schema *Schema
	values []Value
}

// NewTuple creates a tuple over schema with the given attribute values.
// It panics if the value count does not match the schema, because that is
// always a programming error in a generator or source.
func NewTuple(schema *Schema, values []Value) Tuple {
	if len(values) != schema.Len() {
		panic(fmt.Sprintf("stream: tuple has %d values for schema of %d fields", len(values), schema.Len())) //lint:allowpanic construction contract
	}
	return Tuple{schema: schema, values: values}
}

// Schema returns the tuple's schema.
func (t Tuple) Schema() *Schema { return t.schema }

// Len returns the number of attributes.
func (t Tuple) Len() int { return len(t.values) }

// At returns the i-th attribute value.
func (t Tuple) At(i int) Value { return t.values[i] }

// SetAt replaces the i-th attribute value in place.
func (t *Tuple) SetAt(i int, v Value) { t.values[i] = v }

// Get returns the named attribute value. ok is false if the schema does
// not contain the attribute.
func (t Tuple) Get(name string) (Value, bool) {
	i := t.schema.Index(name)
	if i < 0 {
		return Null(), false
	}
	return t.values[i], true
}

// MustGet returns the named attribute value or panics.
func (t Tuple) MustGet(name string) Value {
	v, ok := t.Get(name)
	if !ok {
		panic(fmt.Sprintf("stream: no attribute %q in schema", name)) //lint:allowpanic Must* contract
	}
	return v
}

// GetFloat returns the named attribute as a float64; ok is false when
// the attribute is missing, NULL, or non-numeric.
func (t Tuple) GetFloat(name string) (float64, bool) {
	v, ok := t.Get(name)
	if !ok {
		return 0, false
	}
	return v.AsFloat()
}

// Set replaces the named attribute value in place. It reports whether the
// attribute exists.
func (t *Tuple) Set(name string, v Value) bool {
	i := t.schema.Index(name)
	if i < 0 {
		return false
	}
	t.values[i] = v
	return true
}

// Timestamp returns the (possibly polluted) value of the timestamp
// attribute as a time.Time. If pollution replaced it by NULL, ok is false.
func (t Tuple) Timestamp() (time.Time, bool) {
	return t.values[t.schema.TimestampIndex()].AsTime()
}

// SetTimestamp overwrites the timestamp attribute.
func (t *Tuple) SetTimestamp(ts time.Time) {
	i := t.schema.TimestampIndex()
	if t.schema.Field(i).Kind == KindInt {
		t.values[i] = Int(ts.Unix())
		return
	}
	t.values[i] = Time(ts)
}

// Clone returns a deep copy of the tuple. Pollution pipelines operate on
// clones so that the clean stream D stays intact (the paper returns both
// D and D^p).
func (t Tuple) Clone() Tuple {
	c := t
	c.values = append([]Value(nil), t.values...)
	return c
}

// CloneInto returns a deep copy of the tuple whose values live in buf
// when buf has sufficient capacity, avoiding the per-clone allocation of
// Clone. The caller owns buf and must not alias it with t's values.
func (t Tuple) CloneInto(buf []Value) Tuple {
	c := t
	if cap(buf) >= len(t.values) {
		c.values = buf[:len(t.values)]
		copy(c.values, t.values)
	} else {
		c.values = append([]Value(nil), t.values...)
	}
	return c
}

// CloneValuesInto rebinds t to a private copy of its values stored in
// buf (falling back to a fresh allocation when buf is too small) — the
// in-place counterpart of CloneInto, avoiding the two tuple-struct
// copies of `t = t.CloneInto(buf)` on hot paths. The caller owns buf
// and must not alias it with t's current values.
func (t *Tuple) CloneValuesInto(buf []Value) {
	if cap(buf) >= len(t.values) {
		buf = buf[:len(t.values)]
		copy(buf, t.values)
		t.values = buf
		return
	}
	t.values = append([]Value(nil), t.values...)
}

// Values returns the underlying value slice. Callers must not mutate it
// unless they own the tuple.
func (t Tuple) Values() []Value { return t.values }

// Equal reports whether two tuples have equal values (ID, sub-stream and
// event time are metadata and not compared).
func (t Tuple) Equal(o Tuple) bool {
	if len(t.values) != len(o.values) {
		return false
	}
	for i := range t.values {
		if !t.values[i].Equal(o.values[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple for debugging.
func (t Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d{", t.ID)
	for i, v := range t.values {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", t.schema.Field(i).Name, v.String())
	}
	b.WriteString("}")
	return b.String()
}
