package stream

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Float(1.5), KindFloat},
		{Int(3), KindInt},
		{Str("x"), KindString},
		{Bool(true), KindBool},
		{Time(time.Unix(0, 0)), KindTime},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v: got %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestNullIsNull(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null().IsNull() == false")
	}
	if Float(0).IsNull() {
		t.Fatal("Float(0) reported as null")
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value is not null")
	}
}

func TestAsFloatWidensInt(t *testing.T) {
	f, ok := Int(42).AsFloat()
	if !ok || f != 42 {
		t.Fatalf("Int(42).AsFloat() = %v, %v", f, ok)
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Fatal("string converted to float")
	}
	if _, ok := Null().AsFloat(); ok {
		t.Fatal("null converted to float")
	}
}

func TestAsTimeFromInt(t *testing.T) {
	ts, ok := Int(1000).AsTime()
	if !ok {
		t.Fatal("Int not convertible to time")
	}
	if ts.Unix() != 1000 {
		t.Fatalf("got unix %d, want 1000", ts.Unix())
	}
}

func TestValueEqual(t *testing.T) {
	now := time.Now()
	cases := []struct {
		a, b Value
		want bool
	}{
		{Null(), Null(), true},
		{Float(1), Float(1), true},
		{Float(1), Float(2), false},
		{Float(1), Int(1), false}, // kinds differ
		{Int(5), Int(5), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Time(now), Time(now), true},
		{Null(), Float(0), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Float(1), Float(2), -1, true},
		{Float(2), Float(1), 1, true},
		{Float(1), Float(1), 0, true},
		{Int(1), Float(1.5), -1, true}, // numeric cross-kind
		{Float(2.5), Int(2), 1, true},
		{Str("a"), Str("b"), -1, true},
		{Bool(false), Bool(true), -1, true},
		{Null(), Float(1), -1, true}, // null sorts first
		{Float(1), Null(), 1, true},
		{Null(), Null(), 0, true},
		{Str("a"), Float(1), 0, false}, // incomparable
		{Bool(true), Str("x"), 0, false},
	}
	for _, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("%v.Compare(%v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
	t1 := time.Unix(100, 0)
	t2 := time.Unix(200, 0)
	if cmp, ok := Time(t1).Compare(Time(t2)); !ok || cmp != -1 {
		t.Errorf("time compare failed: %d %v", cmp, ok)
	}
}

func TestValueStringParseRoundTrip(t *testing.T) {
	roundTrip := func(v Value) bool {
		parsed, err := ParseValue(v.String(), v.Kind())
		if err != nil {
			return false
		}
		return parsed.Equal(v)
	}
	ts := time.Date(2016, 2, 27, 13, 30, 0, 0, time.UTC)
	for _, v := range []Value{Float(3.25), Int(-7), Str("hello"), Bool(true), Time(ts)} {
		if !roundTrip(v) {
			t.Errorf("round trip failed for %v", v)
		}
	}
	// Property: any float round-trips.
	prop := func(f float64) bool { return roundTrip(Float(f)) }
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	propInt := func(i int64) bool { return roundTrip(Int(i)) }
	if err := quick.Check(propInt, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseValueEmptyIsNull(t *testing.T) {
	for _, k := range []Kind{KindFloat, KindInt, KindString, KindBool, KindTime} {
		v, err := ParseValue("", k)
		if err != nil || !v.IsNull() {
			t.Errorf("ParseValue(\"\", %v) = %v, %v", k, v, err)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	if _, err := ParseValue("abc", KindFloat); err == nil {
		t.Error("parsing 'abc' as float succeeded")
	}
	if _, err := ParseValue("1.5", KindInt); err == nil {
		t.Error("parsing '1.5' as int succeeded")
	}
	if _, err := ParseValue("maybe", KindBool); err == nil {
		t.Error("parsing 'maybe' as bool succeeded")
	}
	if _, err := ParseValue("not-a-time", KindTime); err == nil {
		t.Error("parsing 'not-a-time' as time succeeded")
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"float": KindFloat, "double": KindFloat, "int": KindInt,
		"string": KindString, "bool": KindBool, "time": KindTime,
	} {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseKind("decimal128"); err == nil {
		t.Error("ParseKind accepted unknown kind")
	}
}

func TestKindString(t *testing.T) {
	if KindFloat.String() != "float" || KindNull.String() != "null" {
		t.Error("Kind.String mismatch")
	}
}
