package stream

import (
	"io"
	"sync"
)

// ParallelMap applies fn to every tuple of src using the given number of
// worker goroutines while preserving input order, the moral equivalent of
// an order-preserving parallel Flink operator. fn must be safe for
// concurrent invocation (pollution pipelines achieve this by deriving one
// RNG stream per sub-stream, not per tuple).
func ParallelMap(src Source, outSchema *Schema, workers int, fn MapFunc) Source {
	if workers <= 1 {
		return Map(src, outSchema, fn)
	}
	if outSchema == nil {
		outSchema = src.Schema()
	}
	return &parallelMapSource{src: src, schema: outSchema, fn: fn, workers: workers}
}

type parallelMapSource struct {
	src     Source
	schema  *Schema
	fn      MapFunc
	workers int

	started bool
	out     chan parallelResult
	err     error
	pending map[uint64]Tuple
	nextSeq uint64
	closed  bool
}

type parallelResult struct {
	seq uint64
	t   Tuple
	err error
}

func (p *parallelMapSource) Schema() *Schema { return p.schema }

func (p *parallelMapSource) start() {
	p.started = true
	p.pending = make(map[uint64]Tuple)
	p.out = make(chan parallelResult, p.workers*2)
	in := make(chan parallelResult, p.workers*2)

	var wg sync.WaitGroup
	wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func() {
			defer wg.Done()
			for item := range in {
				item.t = p.fn(item.t)
				p.out <- item
			}
		}()
	}
	go func() {
		var seq uint64
		for {
			t, err := p.src.Next()
			if err != nil {
				if err != io.EOF {
					p.out <- parallelResult{err: err}
				}
				break
			}
			in <- parallelResult{seq: seq, t: t}
			seq++
		}
		close(in)
		wg.Wait()
		close(p.out)
	}()
}

func (p *parallelMapSource) Next() (Tuple, error) {
	if !p.started {
		p.start()
	}
	for {
		if t, ok := p.pending[p.nextSeq]; ok {
			delete(p.pending, p.nextSeq)
			p.nextSeq++
			return t, nil
		}
		if p.closed {
			if p.err != nil {
				return Tuple{}, p.err
			}
			return Tuple{}, io.EOF
		}
		res, ok := <-p.out
		if !ok {
			p.closed = true
			continue
		}
		if res.err != nil {
			p.err = res.err
			continue
		}
		p.pending[res.seq] = res.t
	}
}

// Batch groups a bounded stream into micro-batches of at most size tuples.
// The paper accepts either a real stream or micro-batched input; within
// the framework both are processed tuple-wise, which FromBatches restores.
func Batch(src Source, size int) ([][]Tuple, error) {
	if size < 1 {
		size = 1
	}
	var batches [][]Tuple
	cur := make([]Tuple, 0, size)
	for {
		t, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		cur = append(cur, t)
		if len(cur) == size {
			batches = append(batches, cur)
			cur = make([]Tuple, 0, size)
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches, nil
}

// FromBatches flattens micro-batches back into a tuple-wise stream.
func FromBatches(schema *Schema, batches [][]Tuple) Source {
	var flat []Tuple
	for _, b := range batches {
		flat = append(flat, b...)
	}
	return NewSliceSource(schema, flat)
}
