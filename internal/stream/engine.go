package stream

import (
	"io"
	"sync"

	"icewafl/internal/obs"
)

// ParallelMap applies fn to every tuple of src using the given number of
// worker goroutines while preserving input order, the moral equivalent of
// an order-preserving parallel Flink operator. fn must be safe for
// concurrent invocation (pollution pipelines achieve this by deriving one
// RNG stream per sub-stream, not per tuple).
//
// Fault semantics: the first error — a failing source, or a panicking fn
// (recovered into a *TupleError) — stops the feeder and all workers
// promptly; the remaining input is NOT drained. Next then returns that
// error on every call. A consumer abandoning the stream early should call
// Stop to release the worker goroutines.
func ParallelMap(src Source, outSchema *Schema, workers int, fn MapFunc) Source {
	return ParallelMapObs(src, outSchema, workers, fn, nil)
}

// ParallelMapObs is ParallelMap with metrics: each processed tuple
// counts toward parallel_items_total on the processing worker's private
// counter cell, so the count costs no cross-core cache-line traffic. A
// nil registry is exactly ParallelMap.
func ParallelMapObs(src Source, outSchema *Schema, workers int, fn MapFunc, reg *obs.Registry) Source {
	if workers <= 1 {
		if reg != nil {
			inner := fn
			fn = func(t Tuple) Tuple {
				reg.Inc(obs.CParallelItems)
				return inner(t)
			}
		}
		return Map(src, outSchema, fn)
	}
	if outSchema == nil {
		outSchema = src.Schema()
	}
	return &parallelMapSource{src: src, schema: outSchema, fn: fn, workers: workers, reg: reg}
}

type parallelMapSource struct {
	src     Source
	schema  *Schema
	fn      MapFunc
	workers int
	reg     *obs.Registry

	started  bool
	out      chan parallelResult
	done     chan struct{}
	stopOnce sync.Once
	err      error
	pending  reorderBuf
	nextSeq  uint64
	closed   bool
}

// reorderBuf is a circular buffer restoring input order over the
// out-of-order completions of the worker pool. Results are stored at
// their distance from the next sequence number to emit. The buffer grows
// to the pipeline's in-flight bound once and is then reused for the rest
// of the stream — unlike the map it replaces, steady-state operation
// performs no per-tuple allocation.
type reorderBuf struct {
	items []Tuple
	full  []bool
	head  int
}

func (b *reorderBuf) grow(min int) {
	capNew := 8
	for capNew < min {
		capNew *= 2
	}
	items := make([]Tuple, capNew)
	full := make([]bool, capNew)
	for i := range b.items {
		src := (b.head + i) % len(b.items)
		items[i] = b.items[src]
		full[i] = b.full[src]
	}
	b.items, b.full, b.head = items, full, 0
}

// put stores t at the given distance from the next emission slot.
func (b *reorderBuf) put(offset int, t Tuple) {
	if offset >= len(b.items) {
		b.grow(offset + 1)
	}
	i := (b.head + offset) % len(b.items)
	b.items[i] = t
	b.full[i] = true
}

// takeNext removes and returns the next in-order result, if present.
func (b *reorderBuf) takeNext() (Tuple, bool) {
	if len(b.items) == 0 || !b.full[b.head] {
		return Tuple{}, false
	}
	t := b.items[b.head]
	b.items[b.head] = Tuple{}
	b.full[b.head] = false
	b.head = (b.head + 1) % len(b.items)
	return t, true
}

type parallelResult struct {
	seq uint64
	t   Tuple
	err error
}

func (p *parallelMapSource) Schema() *Schema { return p.schema }

func (p *parallelMapSource) start() {
	p.started = true
	p.out = make(chan parallelResult, p.workers*2)
	p.done = make(chan struct{})
	in := make(chan parallelResult, p.workers*2)

	var wg sync.WaitGroup
	wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func(w int) {
			defer wg.Done()
			for item := range in {
				t, err := callSafely(p.fn, item.t)
				p.reg.AddAt(obs.CParallelItems, w, 1)
				if err != nil {
					item.err = &TupleError{Tuple: item.t, Offset: item.seq, Stage: "parallel-map", Err: err}
				} else {
					item.t = t
				}
				select {
				case p.out <- item:
				case <-p.done:
					return
				}
			}
		}(w)
	}
	go func() {
		var seq uint64
	feed:
		for {
			select {
			case <-p.done:
				break feed
			default:
			}
			t, err := p.src.Next()
			if err != nil {
				if err != io.EOF {
					select {
					case p.out <- parallelResult{err: err}:
					case <-p.done:
					}
				}
				break
			}
			select {
			case in <- parallelResult{seq: seq, t: t}:
			case <-p.done:
				break feed
			}
			seq++
		}
		close(in)
		wg.Wait()
		close(p.out)
	}()
}

// Next implements Source. After the first error it consistently returns
// that error; after Stop it returns ErrStopped.
func (p *parallelMapSource) Next() (Tuple, error) {
	if !p.started {
		if p.err != nil {
			return Tuple{}, p.err
		}
		p.start()
	}
	for {
		if p.err == nil {
			if t, ok := p.pending.takeNext(); ok {
				p.nextSeq++
				return t, nil
			}
		}
		if p.closed {
			if p.err != nil {
				return Tuple{}, p.err
			}
			return Tuple{}, io.EOF
		}
		res, ok := <-p.out
		if !ok {
			p.closed = true
			continue
		}
		if res.err != nil {
			if p.err == nil {
				p.err = res.err
			}
			// Stop the feeder and workers promptly instead of draining
			// the remaining input, then drain p.out until the pipeline
			// goroutines have exited.
			p.stop()
			continue
		}
		if p.err == nil {
			// res.seq >= p.nextSeq always holds: sequences are unique and
			// emitted sequences never re-enter the pipeline.
			p.pending.put(int(res.seq-p.nextSeq), res.t)
		}
	}
}

func (p *parallelMapSource) stop() {
	p.stopOnce.Do(func() { close(p.done) })
}

// Stop implements Stopper: it releases the feeder and worker goroutines
// of a stream the consumer abandons before exhausting it. Subsequent
// Next calls return ErrStopped (or the earlier stream error, if any).
func (p *parallelMapSource) Stop() {
	if !p.started {
		p.err = ErrStopped
		return
	}
	if p.err == nil {
		p.err = ErrStopped
	}
	p.stop()
	// Drain until the pipeline goroutines close p.out, so none of them
	// stays blocked on a full channel.
	for !p.closed {
		if _, ok := <-p.out; !ok {
			p.closed = true
		}
	}
	stopSource(p.src)
}

// Batch groups a bounded stream into micro-batches of at most size tuples.
// The paper accepts either a real stream or micro-batched input; within
// the framework both are processed tuple-wise, which FromBatches restores.
func Batch(src Source, size int) ([][]Tuple, error) {
	if size < 1 {
		size = 1
	}
	var batches [][]Tuple
	cur := make([]Tuple, 0, size)
	for {
		t, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		cur = append(cur, t)
		if len(cur) == size {
			batches = append(batches, cur)
			cur = make([]Tuple, 0, size)
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches, nil
}

// FromBatches flattens micro-batches back into a tuple-wise stream.
func FromBatches(schema *Schema, batches [][]Tuple) Source {
	var flat []Tuple
	for _, b := range batches {
		flat = append(flat, b...)
	}
	return NewSliceSource(schema, flat)
}
