package stream

import (
	"io"
	"testing"
	"time"
)

func poolTestSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema("ts",
		Field{Name: "ts", Kind: KindTime},
		Field{Name: "v", Kind: KindFloat},
	)
}

func TestTuplePoolRecyclesBuffers(t *testing.T) {
	p := NewTuplePool(2)
	a := p.Get()
	if len(a) != 2 {
		t.Fatalf("Get returned len %d, want 2", len(a))
	}
	a[0] = Str("payload")
	p.Put(a)
	if idle := p.Idle(); idle != 1 {
		t.Fatalf("idle = %d, want 1", idle)
	}
	b := p.Get()
	if &b[0] != &a[0] {
		t.Fatal("Get did not reuse the returned buffer")
	}
	// Get's contract leaves contents unspecified, but Put must drop
	// string references so pooled buffers never pin payloads.
	if s, _ := b[0].AsString(); s != "" {
		t.Fatalf("Put did not drop the string payload: %q", s)
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestTuplePoolPutWrongWidth(t *testing.T) {
	p := NewTuplePool(3)
	p.Put(make([]Value, 1)) // too narrow: dropped
	if p.Idle() != 0 {
		t.Fatal("narrow buffer was retained")
	}
	p.Put(make([]Value, 5)) // wide enough: truncated and kept
	if p.Idle() != 1 {
		t.Fatal("wide buffer was not retained")
	}
	if got := p.Get(); len(got) != 3 {
		t.Fatalf("reused buffer has len %d, want 3", len(got))
	}
}

func TestPooledCloneIsDeep(t *testing.T) {
	schema := poolTestSchema(t)
	pool := NewTuplePoolFor(schema)
	orig := NewTuple(schema, []Value{Time(time.Unix(9, 0).UTC()), Float(1.5)})
	orig.ID = 7
	c := pool.CloneTuple(orig)
	c.SetAt(1, Float(99))
	if got := orig.At(1).MustFloat(); got != 1.5 {
		t.Fatalf("clone aliased the original: %v", got)
	}
	if c.ID != 7 {
		t.Fatalf("clone lost metadata: ID = %d", c.ID)
	}
}

func TestRecycleReturnsBuffersToPool(t *testing.T) {
	schema := poolTestSchema(t)
	pool := NewTuplePoolFor(schema)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	src := NewGeneratorSource(schema, 100, func(i int) Tuple {
		return NewTuple(schema, []Value{Time(base.Add(time.Duration(i) * time.Second)), Float(float64(i))})
	})
	recycled := Recycle(Map(src, nil, PooledClone(pool)), pool)
	n, err := Copy(DiscardSink{}, recycled)
	if err != nil || n != 100 {
		t.Fatalf("Copy = (%d, %v), want (100, nil)", n, err)
	}
	hits, misses := pool.Stats()
	if misses > 2 {
		t.Fatalf("pool missed %d times over 100 tuples; want the buffers to circulate", misses)
	}
	if hits < 98 {
		t.Fatalf("pool hit only %d times over 100 tuples", hits)
	}
}

func TestRecycleStopReleasesHeldBuffer(t *testing.T) {
	schema := poolTestSchema(t)
	pool := NewTuplePoolFor(schema)
	src := NewGeneratorSource(schema, 10, func(i int) Tuple {
		return NewTuple(schema, []Value{Time(time.Unix(int64(i), 0)), Float(0)})
	})
	r := Recycle(Map(src, nil, PooledClone(pool)), pool)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	r.(interface{ Stop() }).Stop()
	if pool.Idle() != 1 {
		t.Fatalf("Stop left %d idle buffers, want 1", pool.Idle())
	}
}

func TestCloneIntoReusesBuffer(t *testing.T) {
	schema := poolTestSchema(t)
	orig := NewTuple(schema, []Value{Time(time.Unix(1, 0)), Float(2)})
	buf := make([]Value, 2)
	c := orig.CloneInto(buf)
	if &c.Values()[0] != &buf[0] {
		t.Fatal("CloneInto did not use the provided buffer")
	}
	c.SetAt(1, Float(3))
	if orig.At(1).MustFloat() != 2 {
		t.Fatal("CloneInto aliased the original")
	}
	// Undersized buffer falls back to allocation.
	c2 := orig.CloneInto(make([]Value, 0))
	if !c2.Equal(orig) {
		t.Fatal("CloneInto fallback lost values")
	}
}

func TestRecycleEmptyStream(t *testing.T) {
	schema := poolTestSchema(t)
	pool := NewTuplePoolFor(schema)
	r := Recycle(NewSliceSource(schema, nil), pool)
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next on empty = %v, want EOF", err)
	}
}
