package stream

import (
	"fmt"
	"io"
	"testing"
	"time"
)

func growthSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("ts",
		Field{Name: "ts", Kind: KindTime},
		Field{Name: "v", Kind: KindFloat},
		Field{Name: "label", Kind: KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestColumnBatchSetRowInverseOfRowInto(t *testing.T) {
	schema := growthSchema(t)
	b := NewColumnBatch(schema, 4)
	base := time.Date(2025, 3, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		tu := NewTuple(schema, []Value{Time(base.Add(time.Duration(i) * time.Second)), Float(float64(i)), Str("a")})
		tu.ID = uint64(i + 1)
		tu.EventTime = base
		tu.Arrival = base
		if err := b.AppendTuple(tu); err != nil {
			t.Fatal(err)
		}
	}
	// Mutate row 1 through a materialised view and write it back.
	var buf []Value
	tu := b.RowInto(buf, 1)
	tu.SetAt(1, Null())
	tu.SetAt(2, Str("edited"))
	tu.Arrival = base.Add(time.Hour)
	tu.Dropped = true
	b.SetRow(1, tu)

	got := b.Row(1)
	if !got.At(1).IsNull() || got.At(2).String() != "edited" {
		t.Fatalf("write-back lost cell mutations: %v", got)
	}
	if !got.Arrival.Equal(base.Add(time.Hour)) || !got.Dropped {
		t.Fatalf("write-back lost metadata: arrival=%v dropped=%v", got.Arrival, got.Dropped)
	}
	// Neighbouring rows untouched.
	if b.Row(0).At(2).String() != "a" || b.Row(2).At(2).String() != "a" {
		t.Fatal("write-back leaked into neighbouring rows")
	}
}

func TestColumnBatchTypedAccessorsAliasBatch(t *testing.T) {
	schema := growthSchema(t)
	b := NewColumnBatch(schema, 2)
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 2; i++ {
		tu := NewTuple(schema, []Value{Time(base), Float(1.5), Str("x")})
		if err := b.AppendTuple(tu); err != nil {
			t.Fatal(err)
		}
	}
	floats, kinds := b.Floats(1)
	floats[0] = 9.5
	if v, _ := b.Value(0, 1).AsFloat(); v != 9.5 {
		t.Fatalf("float mutation through accessor not visible: %v", b.Value(0, 1))
	}
	// Retag a cell NULL through the kind tags.
	kinds[1] = KindNull
	if !b.Value(1, 1).IsNull() {
		t.Fatal("kind retag not visible")
	}
	strs, _ := b.Strs(2)
	strs[0] = "y"
	if b.Value(0, 2).String() != "y" {
		t.Fatal("string mutation not visible")
	}
	if len(b.IDs()) != 2 || len(b.EventTimes()) != 2 || len(b.Arrivals()) != 2 {
		t.Fatal("metadata slices have wrong length")
	}
	b.DroppedMask()[1] = true
	if !b.Row(1).Dropped {
		t.Fatal("dropped mask mutation not visible")
	}
}

func TestColumnBatchAppendEmptyRow(t *testing.T) {
	schema := growthSchema(t)
	b := NewColumnBatch(schema, 1)
	row := b.AppendEmptyRow()
	if row != 0 || b.Len() != 1 {
		t.Fatalf("AppendEmptyRow: row=%d len=%d", row, b.Len())
	}
	for c := 0; c < schema.Len(); c++ {
		if !b.Value(row, c).IsNull() {
			t.Fatalf("fresh row column %d not NULL", c)
		}
	}
	floats, kinds := b.Floats(1)
	floats[row] = 3.25
	kinds[row] = KindFloat
	b.SetID(row, 7)
	b.SetEventTime(row, time.Unix(100, 0).UTC())
	b.SetArrival(row, time.Unix(100, 0).UTC())
	got := b.Row(row)
	if got.ID != 7 || got.At(1).String() != "3.25" {
		t.Fatalf("decoded row mismatch: %v", got)
	}
}

func TestColumnBatchNullBitmapAndCount(t *testing.T) {
	schema := growthSchema(t)
	b := NewColumnBatch(schema, 70)
	for i := 0; i < 70; i++ {
		v := Value(Float(float64(i)))
		if i%3 == 0 {
			v = Null()
		}
		tu := NewTuple(schema, []Value{Time(time.Unix(int64(i), 0)), v, Str("s")})
		if err := b.AppendTuple(tu); err != nil {
			t.Fatal(err)
		}
	}
	bm := b.NullBitmap(1, nil)
	if len(bm) != 2 {
		t.Fatalf("bitmap words = %d, want 2", len(bm))
	}
	count := 0
	for r := 0; r < 70; r++ {
		set := bm[r/64]&(1<<(r%64)) != 0
		if set {
			count++
		}
		if set != (r%3 == 0) {
			t.Fatalf("bit %d = %v, want %v", r, set, r%3 == 0)
		}
	}
	if got := b.NullCount(1); got != count {
		t.Fatalf("NullCount = %d, bitmap count = %d", got, count)
	}
	// Reuse path keeps the same backing array.
	bm2 := b.NullBitmap(1, bm)
	if &bm2[0] != &bm[0] {
		t.Fatal("NullBitmap reallocated despite sufficient capacity")
	}
}

func TestSelectionFillAll(t *testing.T) {
	var sel Selection
	sel = sel.FillAll(5)
	if len(sel) != 5 || sel[0] != 0 || sel[4] != 4 {
		t.Fatalf("FillAll(5) = %v", sel)
	}
	backing := &sel[0]
	sel = sel.FillAll(3)
	if len(sel) != 3 || &sel[0] != backing {
		t.Fatal("FillAll did not reuse backing array")
	}
}

func TestColumnBatchPoolRecycles(t *testing.T) {
	schema := growthSchema(t)
	pool := NewColumnBatchPool(schema, 8)
	b := pool.Get()
	tu := NewTuple(schema, []Value{Time(time.Unix(0, 0)), Float(1), Str("x")})
	if err := b.AppendTuple(tu); err != nil {
		t.Fatal(err)
	}
	pool.Put(b)
	b2 := pool.Get()
	if b2 != b {
		t.Fatal("pool did not recycle the batch")
	}
	if b2.Len() != 0 {
		t.Fatal("recycled batch not reset")
	}
	// A batch over a different schema is rejected, not pooled.
	other, err := NewSchema("ts", Field{Name: "ts", Kind: KindTime})
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(NewColumnBatch(other, 1))
	if got := pool.Get(); got.Schema() != schema {
		t.Fatal("pool handed out a foreign-schema batch")
	}
}

// TestAppendBatchRows exercises the bulk batch-to-batch copy, including
// payload arrays that are lazily allocated mid-batch (a string written
// into a float column via SetRow leaves the string payload shorter than
// the batch) — padAppend must keep every payload row-aligned.
func TestAppendBatchRows(t *testing.T) {
	schema := growthSchema(t)
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	src := NewColumnBatch(schema, 4)
	for i := 0; i < 4; i++ {
		tu := NewTuple(schema, []Value{Time(base.Add(time.Duration(i) * time.Minute)), Float(float64(i)), Str("s")})
		tu.ID = uint64(i + 1)
		tu.EventTime = base
		tu.Arrival = base.Add(time.Duration(i) * time.Minute)
		tu.Dropped = i == 2
		if err := src.AppendTuple(tu); err != nil {
			t.Fatal(err)
		}
	}
	// Retag row 0's float cell as a string: the column's string payload
	// now exists but is shorter than the batch.
	mut := src.Row(0)
	mut.SetAt(1, Str("mixed"))
	src.SetRow(0, mut)

	dst := NewColumnBatch(schema, 2)
	// Seed dst with one row so the append lands at a non-zero offset.
	seed := NewTuple(schema, []Value{Time(base), Float(-1), Str("seed")})
	if err := dst.AppendTuple(seed); err != nil {
		t.Fatal(err)
	}
	if err := dst.AppendBatchRows(src, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := dst.AppendBatchRows(src, 0, 1); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 5 {
		t.Fatalf("dst has %d rows, want 5", dst.Len())
	}
	wantOrder := []int{-1, 1, 2, 3, 0} // -1 = the seed row
	for i, sr := range wantOrder {
		var want Tuple
		if sr < 0 {
			want = seed
		} else {
			want = src.Row(sr)
		}
		got := dst.Row(i)
		for c := 0; c < schema.Len(); c++ {
			if got.At(c).Kind() != want.At(c).Kind() || got.At(c).String() != want.At(c).String() {
				t.Fatalf("row %d col %d: got %v, want %v", i, c, got.At(c), want.At(c))
			}
		}
		if got.ID != want.ID || got.Dropped != want.Dropped || !got.Arrival.Equal(want.Arrival) {
			t.Fatalf("row %d metadata diverged: got %+v, want %+v", i, got, want)
		}
	}
	// Range validation.
	if err := dst.AppendBatchRows(src, 3, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
	if err := dst.AppendBatchRows(src, 0, 5); err == nil {
		t.Fatal("out-of-range append accepted")
	}
}

// TestBatchSliceReader checks both faces of the reader: ReadBatch
// serves bounded column copies; Next materialises the same rows.
func TestBatchSliceReader(t *testing.T) {
	schema := growthSchema(t)
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	mkBatches := func() []*ColumnBatch {
		var batches []*ColumnBatch
		id := uint64(1)
		for _, n := range []int{3, 0, 2} {
			b := NewColumnBatch(schema, n)
			for i := 0; i < n; i++ {
				tu := NewTuple(schema, []Value{Time(base), Float(float64(id)), Str("x")})
				tu.ID = id
				id++
				if err := b.AppendTuple(tu); err != nil {
					t.Fatal(err)
				}
			}
			batches = append(batches, b)
		}
		return batches
	}

	r := NewBatchSliceReader(schema, mkBatches())
	dst := NewColumnBatch(schema, 2)
	var ids []uint64
	for {
		dst.Reset()
		n, err := r.ReadBatch(dst, 2)
		for row := 0; row < n; row++ {
			ids = append(ids, dst.ID(row))
		}
		if err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		if n == 0 {
			t.Fatal("ReadBatch returned 0 rows without an error")
		}
		if n > 2 {
			t.Fatalf("ReadBatch returned %d rows, max is 2", n)
		}
	}
	if got, want := fmt.Sprint(ids), fmt.Sprint([]uint64{1, 2, 3, 4, 5}); got != want {
		t.Fatalf("ReadBatch ids = %s, want %s", got, want)
	}

	tupleIDs := []uint64{}
	tr := NewBatchSliceReader(schema, mkBatches())
	for {
		tu, err := tr.Next()
		if err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		tupleIDs = append(tupleIDs, tu.ID)
	}
	if fmt.Sprint(tupleIDs) != fmt.Sprint([]uint64{1, 2, 3, 4, 5}) {
		t.Fatalf("Next ids = %v", tupleIDs)
	}
}
