package stream

import (
	"context"
	"errors"
	"io"
	"time"
)

// Source is a pull-based stream of tuples. Next returns io.EOF when the
// stream is exhausted. Sources are single-consumer; wrap with Tee to fan
// out.
//
// Error contract:
//
//   - io.EOF: the stream ended normally (all tuples delivered).
//   - ErrStopped: the stream was cancelled. Every Next call after a
//     cancellation — via WithContext, Stop, or a context-aware source —
//     MUST return ErrStopped, never io.EOF, so consumers can distinguish
//     "complete" from "interrupted".
//   - *TupleError: one tuple failed but the stream remains usable;
//     callers may keep calling Next (see Quarantine).
//   - any other error is fatal and terminates the stream.
type Source interface {
	// Schema returns the schema of the tuples this source emits.
	Schema() *Schema
	// Next returns the next tuple or io.EOF at end of stream.
	Next() (Tuple, error)
}

// ErrStopped is returned by sources that were cancelled mid-stream. It is
// the cancellation half of the Source error contract: once a source is
// cancelled, every subsequent Next returns ErrStopped (never io.EOF).
var ErrStopped = errors.New("stream: source stopped")

// SliceSource replays an in-memory slice of tuples.
type SliceSource struct {
	schema *Schema
	tuples []Tuple
	pos    int
}

// NewSliceSource returns a source over tuples, all of which must share
// schema.
func NewSliceSource(schema *Schema, tuples []Tuple) *SliceSource {
	return &SliceSource{schema: schema, tuples: tuples}
}

// Schema implements Source.
func (s *SliceSource) Schema() *Schema { return s.schema }

// Next implements Source.
func (s *SliceSource) Next() (Tuple, error) {
	if s.pos >= len(s.tuples) {
		return Tuple{}, io.EOF
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, nil
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// ChannelSource adapts a tuple channel to the Source interface, for
// integrating live producers (e.g. a network listener) into a pipeline.
// A closed channel yields io.EOF; a cancelled context (when constructed
// via NewChannelSourceContext) yields ErrStopped, interrupting a blocked
// read so consumers shut down promptly even when the producer stalls.
type ChannelSource struct {
	schema *Schema
	ch     <-chan Tuple
	done   <-chan struct{}
	err    error
}

// NewChannelSource wraps ch. The producer signals end of stream by
// closing the channel.
func NewChannelSource(schema *Schema, ch <-chan Tuple) *ChannelSource {
	return &ChannelSource{schema: schema, ch: ch}
}

// NewChannelSourceContext wraps ch with cancellation: once ctx is done,
// Next returns ErrStopped, even if it was blocked waiting for a slow
// producer.
func NewChannelSourceContext(ctx context.Context, schema *Schema, ch <-chan Tuple) *ChannelSource {
	return &ChannelSource{schema: schema, ch: ch, done: ctx.Done()}
}

// Schema implements Source.
func (s *ChannelSource) Schema() *Schema { return s.schema }

// Next implements Source.
func (s *ChannelSource) Next() (Tuple, error) {
	if s.err != nil {
		return Tuple{}, s.err
	}
	if s.done == nil {
		t, ok := <-s.ch
		if !ok {
			s.err = io.EOF
			return Tuple{}, io.EOF
		}
		return t, nil
	}
	// Check cancellation first so a ready tuple does not mask an already
	// cancelled context forever on a hot producer.
	select {
	case <-s.done:
		s.err = ErrStopped
		return Tuple{}, ErrStopped
	default:
	}
	select {
	case t, ok := <-s.ch:
		if !ok {
			s.err = io.EOF
			return Tuple{}, io.EOF
		}
		return t, nil
	case <-s.done:
		s.err = ErrStopped
		return Tuple{}, ErrStopped
	}
}

// GeneratorSource produces n tuples by calling gen(i) for i = 0..n-1.
// With n < 0 the stream is unbounded.
type GeneratorSource struct {
	schema *Schema
	gen    func(i int) Tuple
	n      int
	i      int
}

// NewGeneratorSource returns a generator-backed source.
func NewGeneratorSource(schema *Schema, n int, gen func(i int) Tuple) *GeneratorSource {
	return &GeneratorSource{schema: schema, gen: gen, n: n}
}

// Schema implements Source.
func (s *GeneratorSource) Schema() *Schema { return s.schema }

// Next implements Source.
func (s *GeneratorSource) Next() (Tuple, error) {
	if s.n >= 0 && s.i >= s.n {
		return Tuple{}, io.EOF
	}
	t := s.gen(s.i)
	s.i++
	return t, nil
}

// Drain consumes src fully and returns the tuples. It is the bounded-
// stream counterpart of collecting a Flink DataStream for a test.
func Drain(src Source) ([]Tuple, error) {
	var out []Tuple
	for {
		t, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// Prepare implements step 1 of Algorithm 1: it assigns each tuple a fresh
// unique ID (starting from firstID) and replicates the timestamp
// attribute into the pollution-immune event time τ. Tuples whose
// timestamp attribute is NULL or non-temporal keep a zero event time.
type Prepare struct {
	src    Source
	nextID uint64
}

// NewPrepare wraps src, numbering tuples from firstID.
func NewPrepare(src Source, firstID uint64) *Prepare {
	return &Prepare{src: src, nextID: firstID}
}

// Schema implements Source.
func (p *Prepare) Schema() *Schema { return p.src.Schema() }

// NextID returns the ID the next prepared tuple will receive. Together
// with the first ID it encodes the input position — the number of tuples
// consumed so far — which checkpointing uses to resume deterministically.
func (p *Prepare) NextID() uint64 { return p.nextID }

// Next implements Source.
func (p *Prepare) Next() (Tuple, error) {
	t, err := p.src.Next()
	if err != nil {
		return t, err
	}
	t.ID = p.nextID
	p.nextID++
	if ts, ok := t.Timestamp(); ok {
		t.EventTime = ts
	} else {
		t.EventTime = time.Time{}
	}
	t.Arrival = t.EventTime
	return t, nil
}
