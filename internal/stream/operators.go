package stream

import "io"

// MapFunc transforms one tuple into another (same schema or a compatible
// one chosen by the caller).
type MapFunc func(Tuple) Tuple

// FilterFunc decides whether a tuple passes.
type FilterFunc func(Tuple) bool

// FlatMapFunc expands one tuple into zero or more tuples.
type FlatMapFunc func(Tuple) []Tuple

// mapSource applies fn to every tuple.
type mapSource struct {
	src    Source
	schema *Schema
	fn     MapFunc
}

// Map returns a source that applies fn to every tuple of src. outSchema
// may be nil to keep the input schema.
func Map(src Source, outSchema *Schema, fn MapFunc) Source {
	if outSchema == nil {
		outSchema = src.Schema()
	}
	return &mapSource{src: src, schema: outSchema, fn: fn}
}

func (m *mapSource) Schema() *Schema { return m.schema }

func (m *mapSource) Next() (Tuple, error) {
	t, err := m.src.Next()
	if err != nil {
		return t, err
	}
	return m.fn(t), nil
}

// filterSource drops tuples failing the predicate.
type filterSource struct {
	src Source
	fn  FilterFunc
}

// Filter returns a source with only the tuples of src satisfying fn.
func Filter(src Source, fn FilterFunc) Source {
	return &filterSource{src: src, fn: fn}
}

func (f *filterSource) Schema() *Schema { return f.src.Schema() }

func (f *filterSource) Next() (Tuple, error) {
	for {
		t, err := f.src.Next()
		if err != nil {
			return t, err
		}
		if f.fn(t) {
			return t, nil
		}
	}
}

// flatMapSource expands tuples via fn, preserving emission order.
type flatMapSource struct {
	src     Source
	schema  *Schema
	fn      FlatMapFunc
	pending []Tuple
}

// FlatMap returns a source that expands each tuple of src via fn.
// outSchema may be nil to keep the input schema.
func FlatMap(src Source, outSchema *Schema, fn FlatMapFunc) Source {
	if outSchema == nil {
		outSchema = src.Schema()
	}
	return &flatMapSource{src: src, schema: outSchema, fn: fn}
}

func (f *flatMapSource) Schema() *Schema { return f.schema }

func (f *flatMapSource) Next() (Tuple, error) {
	for len(f.pending) == 0 {
		t, err := f.src.Next()
		if err != nil {
			return t, err
		}
		f.pending = f.fn(t)
	}
	t := f.pending[0]
	f.pending = f.pending[1:]
	return t, nil
}

// takeSource caps a stream at n tuples.
type takeSource struct {
	src Source
	n   int
}

// Take returns a source with at most n tuples of src.
func Take(src Source, n int) Source { return &takeSource{src: src, n: n} }

func (t *takeSource) Schema() *Schema { return t.src.Schema() }

func (t *takeSource) Next() (Tuple, error) {
	if t.n <= 0 {
		return Tuple{}, io.EOF
	}
	t.n--
	return t.src.Next()
}

// Peek invokes fn on every tuple passing through, without modifying it.
// Useful for instrumentation and progress logging.
func Peek(src Source, fn func(Tuple)) Source {
	return Map(src, nil, func(t Tuple) Tuple {
		fn(t)
		return t
	})
}

// Concat chains sources back to back. All sources must share a schema.
type concatSource struct {
	srcs []Source
}

// Concat returns the concatenation of srcs.
func Concat(srcs ...Source) Source { return &concatSource{srcs: srcs} }

func (c *concatSource) Schema() *Schema { return c.srcs[0].Schema() }

func (c *concatSource) Next() (Tuple, error) {
	for len(c.srcs) > 0 {
		t, err := c.srcs[0].Next()
		if err == io.EOF {
			c.srcs = c.srcs[1:]
			continue
		}
		return t, err
	}
	return Tuple{}, io.EOF
}
