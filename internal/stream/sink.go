package stream

import "io"

// Sink consumes tuples at the end of a pipeline. Close is called once the
// stream is exhausted so buffered sinks can flush.
type Sink interface {
	// Write consumes one tuple.
	Write(Tuple) error
	// Close flushes the sink.
	Close() error
}

// CollectSink buffers every tuple in memory; the test- and experiment-
// friendly counterpart of a Flink collection sink.
type CollectSink struct {
	Tuples []Tuple
}

// NewCollectSink returns an empty collector.
func NewCollectSink() *CollectSink { return &CollectSink{} }

// Write implements Sink.
func (c *CollectSink) Write(t Tuple) error {
	c.Tuples = append(c.Tuples, t)
	return nil
}

// Close implements Sink.
func (c *CollectSink) Close() error { return nil }

// CountSink counts tuples and discards them; used by the runtime-overhead
// experiment to model a cheap pass-through pipeline.
type CountSink struct {
	N int
}

// Write implements Sink.
func (c *CountSink) Write(Tuple) error {
	c.N++
	return nil
}

// Close implements Sink.
func (c *CountSink) Close() error { return nil }

// DiscardSink drops every tuple.
type DiscardSink struct{}

// Write implements Sink.
func (DiscardSink) Write(Tuple) error { return nil }

// Close implements Sink.
func (DiscardSink) Close() error { return nil }

// ChannelSink forwards tuples into a channel and closes it on Close.
type ChannelSink struct {
	ch chan<- Tuple
}

// NewChannelSink wraps ch.
func NewChannelSink(ch chan<- Tuple) *ChannelSink { return &ChannelSink{ch: ch} }

// Write implements Sink.
func (c *ChannelSink) Write(t Tuple) error {
	c.ch <- t
	return nil
}

// Close implements Sink.
func (c *ChannelSink) Close() error {
	close(c.ch)
	return nil
}

// Copy pumps src into sink until EOF, closing the sink afterwards. It
// returns the number of tuples moved.
func Copy(sink Sink, src Source) (int, error) {
	n := 0
	for {
		t, err := src.Next()
		if err == io.EOF {
			return n, sink.Close()
		}
		if err != nil {
			sink.Close()
			return n, err
		}
		if err := sink.Write(t); err != nil {
			return n, err
		}
		n++
	}
}
