package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"icewafl/internal/obs"
	"icewafl/internal/rng"
)

// This file is the fault-tolerance layer of the stream engine. The
// contract it adds on top of Source:
//
//   - Cancellation: a cancelled source returns ErrStopped (never io.EOF)
//     from every subsequent Next call. WithContext adapts any source;
//     NewChannelSourceContext makes blocking channel reads interruptible.
//   - Tuple-level failure: a source MAY return a *TupleError to report
//     that one tuple failed (malformed row, panicking operator, …) while
//     the stream itself remains usable — callers may keep calling Next.
//     Any other error is fatal and terminates the stream.
//   - Quarantine: the Quarantine wrapper converts tuple-level failures
//     into dead-letter records and keeps the pipeline flowing.

// TupleError reports the failure of a single tuple. Sources returning a
// *TupleError remain usable: the failed tuple is skipped and subsequent
// Next calls continue with the rest of the stream.
type TupleError struct {
	// Tuple is the failing tuple, when it was materialised before the
	// failure (zero otherwise, e.g. for unparsable input rows).
	Tuple Tuple
	// Offset is the 0-based position of the failure in the source.
	Offset uint64
	// Stage names the pipeline stage that failed (e.g. "map", "pollute").
	Stage string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *TupleError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("stream: tuple %d failed in %s: %v", e.Offset, e.Stage, e.Err)
	}
	return fmt.Sprintf("stream: tuple %d failed: %v", e.Offset, e.Err)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *TupleError) Unwrap() error { return e.Err }

// AsTupleError extracts a *TupleError from err, if any.
func AsTupleError(err error) (*TupleError, bool) {
	var te *TupleError
	if errors.As(err, &te) {
		return te, true
	}
	return nil, false
}

// IsEndOfStream reports whether err terminates a stream normally:
// io.EOF (exhausted) or ErrStopped (cancelled).
func IsEndOfStream(err error) bool {
	return err == io.EOF || errors.Is(err, ErrStopped)
}

// DeadLetter is one quarantined tuple: the failure cause plus enough
// position information to locate the tuple in the input.
type DeadLetter struct {
	// Offset is the 0-based position of the failed tuple in its source.
	Offset uint64 `json:"offset"`
	// TupleID is the prepared tuple ID, when known (0 otherwise).
	TupleID uint64 `json:"tuple_id,omitempty"`
	// Stage names the failing pipeline stage.
	Stage string `json:"stage,omitempty"`
	// Cause is the rendered failure cause.
	Cause string `json:"cause"`
	// Values is the textual rendering of the tuple, when it was
	// materialised before the failure.
	Values []string `json:"values,omitempty"`
}

// DeadLetterQueue collects quarantined tuples. It is safe for concurrent
// use, so parallel operators may share one queue.
type DeadLetterQueue struct {
	mu      sync.Mutex
	letters []DeadLetter
	reg     *obs.Registry
}

// NewDeadLetterQueue returns an empty queue.
func NewDeadLetterQueue() *DeadLetterQueue { return &DeadLetterQueue{} }

// Instrument wires the queue into a metrics registry: every quarantined
// tuple increments dead_letters_total, and a dlq_depth gauge exposes
// the current queue length at snapshot time. Call before the run
// starts; a nil queue or registry is a no-op.
func (q *DeadLetterQueue) Instrument(reg *obs.Registry) {
	if q == nil || reg == nil {
		return
	}
	q.mu.Lock()
	q.reg = reg
	q.mu.Unlock()
	reg.RegisterFunc("dlq_depth", func() uint64 { return uint64(q.Len()) })
}

// Add records one dead letter. A nil queue discards silently, so
// quarantining operators work without a configured queue.
func (q *DeadLetterQueue) Add(d DeadLetter) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.letters = append(q.letters, d)
	reg := q.reg
	q.mu.Unlock()
	reg.Inc(obs.CDeadLetters)
}

// AddError records err as a dead letter, extracting tuple and position
// information when err is a *TupleError.
func (q *DeadLetterQueue) AddError(err error) {
	if q == nil {
		return
	}
	d := DeadLetter{Cause: err.Error()}
	if te, ok := AsTupleError(err); ok {
		d.Offset = te.Offset
		d.Stage = te.Stage
		if te.Err != nil {
			d.Cause = te.Err.Error()
		}
		if te.Tuple.Schema() != nil {
			d.TupleID = te.Tuple.ID
			d.Values = renderValues(te.Tuple)
		}
	}
	q.Add(d)
}

// Len returns the number of quarantined tuples.
func (q *DeadLetterQueue) Len() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.letters)
}

// Letters returns a copy of the quarantined records in arrival order.
func (q *DeadLetterQueue) Letters() []DeadLetter {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]DeadLetter(nil), q.letters...)
}

func renderValues(t Tuple) []string {
	out := make([]string, t.Len())
	for i := 0; i < t.Len(); i++ {
		out[i] = t.At(i).String()
	}
	return out
}

// ErrQuarantineOverflow is returned (wrapped) by Quarantine when more
// tuples fail than the configured maximum allows.
var ErrQuarantineOverflow = errors.New("stream: quarantine limit exceeded")

// Quarantine wraps src so that tuple-level failures — *TupleError values
// returned from Next — are recorded in q and skipped instead of
// terminating the stream. maxLetters caps the number of quarantined
// tuples (0 means unlimited); exceeding it fails the stream with
// ErrQuarantineOverflow, so a systematically broken input cannot degrade
// into silently dropping everything. Fatal (non-tuple) errors still pass
// through unchanged.
func Quarantine(src Source, q *DeadLetterQueue, maxLetters int) Source {
	return &quarantineSource{src: src, q: q, max: maxLetters}
}

type quarantineSource struct {
	src  Source
	q    *DeadLetterQueue
	max  int
	seen int
}

func (s *quarantineSource) Schema() *Schema { return s.src.Schema() }

func (s *quarantineSource) Next() (Tuple, error) {
	for {
		t, err := s.src.Next()
		if err == nil || IsEndOfStream(err) {
			return t, err
		}
		te, ok := AsTupleError(err)
		if !ok {
			return Tuple{}, err // fatal
		}
		s.seen++
		if s.max > 0 && s.seen > s.max {
			return Tuple{}, fmt.Errorf("%w: %d tuples failed (last: %v)", ErrQuarantineOverflow, s.seen, te)
		}
		s.q.AddError(te)
	}
}

// SafeMap applies fn to every tuple of src, converting panics in fn into
// *TupleError values instead of crashing the pipeline. The source stays
// usable after a TupleError, so wrapping it in Quarantine yields a
// pipeline that skips poisoned tuples. outSchema may be nil to keep the
// input schema.
func SafeMap(src Source, outSchema *Schema, fn MapFunc) Source {
	if outSchema == nil {
		outSchema = src.Schema()
	}
	return &safeMapSource{src: src, schema: outSchema, fn: fn}
}

type safeMapSource struct {
	src    Source
	schema *Schema
	fn     MapFunc
	offset uint64
}

func (s *safeMapSource) Schema() *Schema { return s.schema }

func (s *safeMapSource) Next() (Tuple, error) {
	t, err := s.src.Next()
	if err != nil {
		return t, err
	}
	off := s.offset
	s.offset++
	out, perr := callSafely(s.fn, t)
	if perr != nil {
		return Tuple{}, &TupleError{Tuple: t, Offset: off, Stage: "map", Err: perr}
	}
	return out, nil
}

// callSafely invokes fn(t), converting a panic into an error.
func callSafely(fn MapFunc, t Tuple) (out Tuple, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("panic: %w", e)
				return
			}
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn(t), nil
}

// SafeFunc wraps fn so that a panic quarantines the tuple — it is
// recorded in q and returned with Dropped set — instead of crashing the
// worker. Unlike SafeMap it composes with ParallelMap, whose workers
// invoke fn concurrently (DeadLetterQueue is concurrency-safe).
func SafeFunc(fn MapFunc, q *DeadLetterQueue) MapFunc {
	return func(t Tuple) Tuple {
		out, err := callSafely(fn, t)
		if err != nil {
			q.AddError(&TupleError{Tuple: t, Offset: t.ID, Stage: "map", Err: err})
			t.Dropped = true
			return t
		}
		return out
	}
}

// WithContext wraps src so that Next returns ErrStopped once ctx is
// cancelled. The check happens before delegating, so a source blocked
// inside Next is not interrupted — pair with context-aware sources
// (NewChannelSourceContext) for blocking producers. A background context
// (or nil) returns src unchanged, keeping the hot path free of overhead.
func WithContext(ctx context.Context, src Source) Source {
	if ctx == nil || ctx.Done() == nil {
		return src
	}
	return &ctxSource{ctx: ctx, src: src}
}

type ctxSource struct {
	ctx context.Context
	src Source
}

func (s *ctxSource) Schema() *Schema { return s.src.Schema() }

func (s *ctxSource) Next() (Tuple, error) {
	select {
	case <-s.ctx.Done():
		return Tuple{}, ErrStopped
	default:
	}
	t, err := s.src.Next()
	if err != nil && s.ctx.Err() != nil {
		// The inner source observed the cancellation through its own
		// means (e.g. a closed connection); normalise to ErrStopped.
		return Tuple{}, ErrStopped
	}
	return t, err
}

// Stop implements Stopper by forwarding to the inner source.
func (s *ctxSource) Stop() { stopSource(s.src) }

// Stopper is implemented by sources that own goroutines or other
// resources requiring prompt release when a consumer abandons the stream
// before exhausting it.
type Stopper interface {
	// Stop releases the source's resources. Subsequent Next calls return
	// ErrStopped. Stop is idempotent.
	Stop()
}

// stopSource stops src if it supports stopping.
func stopSource(src Source) {
	if st, ok := src.(Stopper); ok {
		st.Stop()
	}
}

// PermanentError marks an error as non-transient: retrying the failed
// operation can never succeed (e.g. a replay gap — the server no longer
// retains the requested resume point). Retry layers must surface such
// errors instead of looping on them.
type PermanentError interface {
	error
	// Permanent reports that no retry can succeed.
	Permanent() bool
}

// IsPermanent reports whether any error in err's chain is marked
// permanent.
func IsPermanent(err error) bool {
	var pe PermanentError
	return errors.As(err, &pe) && pe.Permanent()
}

// RetryPolicy configures RetrySource. The zero value retries 3 times
// with a 10ms base delay, doubling per attempt up to 1s, with ±50%
// deterministic jitter and no per-attempt timeout.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the initial failure
	// (so MaxRetries = 3 means up to 4 attempts). Values < 0 disable
	// retrying entirely.
	MaxRetries int
	// BaseDelay is the delay before the first retry; each subsequent
	// retry doubles it (exponential backoff).
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
	// Jitter is the fraction of the delay randomised symmetrically
	// around it (0.5 → delay drawn from [0.5d, 1.5d)). Values outside
	// [0, 1] are clamped.
	Jitter float64
	// AttemptTimeout bounds how long one Next attempt may block (0 = no
	// bound). A timed-out attempt counts as a failure; because sources
	// are single-consumer, the in-flight call is not abandoned — the
	// next attempt resumes waiting for it.
	AttemptTimeout time.Duration
	// Retryable decides whether an error is transient. nil retries every
	// error except end-of-stream, tuple-level errors (which callers
	// handle via Quarantine instead), and errors marked permanent via
	// PermanentError.
	Retryable func(error) bool
	// Sleep replaces time.Sleep, letting tests run without real delays.
	Sleep func(time.Duration)
	// Rand drives the jitter; nil derives a fixed-seed stream, keeping
	// retry timing deterministic for a given policy.
	Rand *rng.Stream
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Retryable == nil {
		p.Retryable = func(err error) bool {
			if IsEndOfStream(err) {
				return false
			}
			if IsPermanent(err) {
				return false
			}
			_, isTuple := AsTupleError(err)
			return !isTuple
		}
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Rand == nil {
		p.Rand = rng.Derive(0x1ce3af1, "stream/retry")
	}
	return p
}

// delay returns the backoff before retry attempt i (0-based), with
// exponential growth and symmetric jitter.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay << uint(attempt)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		spread := p.Jitter * float64(d)
		d = time.Duration(float64(d) + spread*(2*p.Rand.Float64()-1))
		if d < 0 {
			d = 0
		}
	}
	return d
}

// ErrAttemptTimeout is wrapped into the error returned when a source
// attempt exceeds RetryPolicy.AttemptTimeout.
var ErrAttemptTimeout = errors.New("stream: source attempt timed out")

// RetrySource wraps a flaky source, retrying transient Next failures
// with exponential backoff and jitter. End-of-stream conditions and
// tuple-level errors pass through untouched; only errors the policy
// deems retryable are re-attempted. If all attempts fail, the last error
// is returned (wrapped with the attempt count).
type RetrySource struct {
	src    Source
	policy RetryPolicy

	// pending holds the result channel of an in-flight Next call that
	// previously timed out; the next attempt resumes waiting on it
	// because sources are single-consumer.
	pending chan retryResult
	// Attempts counts total underlying Next invocations (observability).
	attempts uint64
	retries  uint64
	reg      *obs.Registry
}

type retryResult struct {
	t   Tuple
	err error
}

// NewRetrySource wraps src with the given retry policy.
func NewRetrySource(src Source, policy RetryPolicy) *RetrySource {
	return &RetrySource{src: src, policy: policy.withDefaults()}
}

// Schema implements Source.
func (r *RetrySource) Schema() *Schema { return r.src.Schema() }

// Attempts returns the number of underlying Next invocations so far.
func (r *RetrySource) Attempts() uint64 { return r.attempts }

// Retries returns the number of re-attempts performed so far.
func (r *RetrySource) Retries() uint64 { return r.retries }

// Instrument wires the source into a metrics registry: underlying Next
// attempts count toward retry_attempts_total, re-attempts toward
// retries_total. Call before the run starts.
func (r *RetrySource) Instrument(reg *obs.Registry) { r.reg = reg }

// Next implements Source.
func (r *RetrySource) Next() (Tuple, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > r.policy.MaxRetries {
			return Tuple{}, fmt.Errorf("stream: source failed after %d attempts: %w", attempt, lastErr)
		}
		if attempt > 0 {
			r.retries++
			r.reg.Inc(obs.CRetries)
			r.policy.Sleep(r.policy.delay(attempt - 1))
		}
		t, err := r.attemptNext()
		if err == nil {
			return t, nil
		}
		if !r.policy.Retryable(err) {
			return Tuple{}, err
		}
		lastErr = err
	}
}

// attemptNext performs one underlying Next call, bounded by the
// per-attempt timeout when configured.
func (r *RetrySource) attemptNext() (Tuple, error) {
	if r.policy.AttemptTimeout <= 0 {
		r.attempts++
		r.reg.Inc(obs.CRetryAttempts)
		return r.src.Next()
	}
	ch := r.pending
	if ch == nil {
		ch = make(chan retryResult, 1)
		r.attempts++
		r.reg.Inc(obs.CRetryAttempts)
		go func(ch chan retryResult) {
			t, err := r.src.Next()
			ch <- retryResult{t: t, err: err}
		}(ch)
		r.pending = ch
	}
	timer := time.NewTimer(r.policy.AttemptTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		r.pending = nil
		return res.t, res.err
	case <-timer.C:
		return Tuple{}, ErrAttemptTimeout
	}
}

// FlakySource injects failures into a source according to a
// deterministic plan — the unit-testable half of the fault-injection
// harness. plan is consulted once per Next call with the 0-based call
// index; a non-nil return is injected as a transient error (the
// underlying source is not advanced), nil delegates to the real source.
type FlakySource struct {
	src  Source
	plan func(call uint64) error
	call uint64
}

// NewFlakySource wraps src with the failure plan.
func NewFlakySource(src Source, plan func(call uint64) error) *FlakySource {
	return &FlakySource{src: src, plan: plan}
}

// FailEveryN returns a plan failing every n-th call (1-based phase) with
// err.
func FailEveryN(n uint64, err error) func(uint64) error {
	return func(call uint64) error {
		if n > 0 && (call+1)%n == 0 {
			return err
		}
		return nil
	}
}

// FailFirstN returns a plan failing the first n calls with err — the
// "source still warming up" shape that exercises backoff.
func FailFirstN(n uint64, err error) func(uint64) error {
	return func(call uint64) error {
		if call < n {
			return err
		}
		return nil
	}
}

// Schema implements Source.
func (f *FlakySource) Schema() *Schema { return f.src.Schema() }

// Next implements Source.
func (f *FlakySource) Next() (Tuple, error) {
	call := f.call
	f.call++
	if f.plan != nil {
		if err := f.plan(call); err != nil {
			return Tuple{}, err
		}
	}
	return f.src.Next()
}

// ChaosOptions configures ChaosSource.
type ChaosOptions struct {
	// ErrorRate is the per-call probability of a transient error.
	ErrorRate float64
	// TupleErrorRate is the per-tuple probability of a tuple-level
	// failure (*TupleError): the tuple is consumed from the underlying
	// source and reported as poisoned.
	TupleErrorRate float64
	// Seed drives the chaos deterministically.
	Seed int64
}

// ChaosSource injects random transient and tuple-level failures — the
// probabilistic half of the fault-injection harness. All chaos is
// derived from the seed, so a failing test reproduces exactly.
type ChaosSource struct {
	src    Source
	opts   ChaosOptions
	rand   *rng.Stream
	offset uint64
}

// NewChaosSource wraps src with seeded random fault injection.
func NewChaosSource(src Source, opts ChaosOptions) *ChaosSource {
	return &ChaosSource{src: src, opts: opts, rand: rng.Derive(opts.Seed, "stream/chaos")}
}

// ErrChaos is the transient error injected by ChaosSource.
var ErrChaos = errors.New("stream: injected chaos failure")

// Schema implements Source.
func (c *ChaosSource) Schema() *Schema { return c.src.Schema() }

// Next implements Source.
func (c *ChaosSource) Next() (Tuple, error) {
	if c.rand.Bernoulli(c.opts.ErrorRate) {
		return Tuple{}, ErrChaos
	}
	t, err := c.src.Next()
	if err != nil {
		return t, err
	}
	off := c.offset
	c.offset++
	if c.rand.Bernoulli(c.opts.TupleErrorRate) {
		return Tuple{}, &TupleError{Tuple: t, Offset: off, Stage: "chaos", Err: ErrChaos}
	}
	return t, nil
}
