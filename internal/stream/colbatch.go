package stream

import (
	"fmt"
	"io"
	"time"
)

// This file implements the columnar micro-batch representation of the
// hot-path engine. A ColumnBatch stores a micro-batch of tuples
// column-wise — one dense payload array per attribute and kind — instead
// of row-wise []Value slices. The layout has two purposes:
//
//   - Micro-batch pipelines stop allocating per tuple: a batch is a
//     handful of flat arrays that are reused (Reset) across batches, and
//     row views materialise into caller-provided or pooled buffers.
//   - Columnar kernels (validation, statistics, vectorised pollution)
//     can scan a float column as a plain []float64 without unboxing one
//     dynamically typed Value per cell.
//
// Mixed-kind columns are supported — pollution routinely turns a float
// cell into NULL or an outlier of another kind — by keeping a per-cell
// kind tag next to the per-kind payload arrays. Payload arrays are
// allocated lazily per kind, so a clean float column costs exactly one
// []float64 and one []Kind.

// ColumnBatch is a columnar micro-batch over one schema. The zero value
// is not usable; construct with NewColumnBatch.
type ColumnBatch struct {
	schema *Schema
	n      int
	cols   []batchColumn

	// Row metadata, parallel to the rows.
	ids         []uint64
	subStreams  []int32
	eventTimes  []time.Time
	arrivals    []time.Time
	dropped     []bool
	quarantined []bool
}

// batchColumn holds one attribute column: a per-cell kind tag plus
// lazily allocated per-kind payload arrays indexed by row.
type batchColumn struct {
	kinds  []Kind
	floats []float64
	ints   []int64
	strs   []string
	bools  []bool
	times  []time.Time
}

// NewColumnBatch returns an empty batch over schema with capacity for
// the given number of rows (grown automatically beyond it).
func NewColumnBatch(schema *Schema, capacity int) *ColumnBatch {
	if capacity < 0 {
		capacity = 0
	}
	b := &ColumnBatch{schema: schema, cols: make([]batchColumn, schema.Len())}
	b.ids = make([]uint64, 0, capacity)
	b.subStreams = make([]int32, 0, capacity)
	b.eventTimes = make([]time.Time, 0, capacity)
	b.arrivals = make([]time.Time, 0, capacity)
	b.dropped = make([]bool, 0, capacity)
	b.quarantined = make([]bool, 0, capacity)
	for i := range b.cols {
		b.cols[i].kinds = make([]Kind, 0, capacity)
	}
	return b
}

// Schema returns the batch schema.
func (b *ColumnBatch) Schema() *Schema { return b.schema }

// Len returns the number of rows.
func (b *ColumnBatch) Len() int { return b.n }

// Reset empties the batch while keeping every backing array, so the same
// ColumnBatch is reused batch after batch with zero steady-state
// allocation.
func (b *ColumnBatch) Reset() {
	b.n = 0
	b.ids = b.ids[:0]
	b.subStreams = b.subStreams[:0]
	b.eventTimes = b.eventTimes[:0]
	b.arrivals = b.arrivals[:0]
	b.dropped = b.dropped[:0]
	b.quarantined = b.quarantined[:0]
	for i := range b.cols {
		c := &b.cols[i]
		c.kinds = c.kinds[:0]
		c.floats = c.floats[:0]
		c.ints = c.ints[:0]
		// Clear string/time payloads so pooled batches don't pin memory.
		for j := range c.strs {
			c.strs[j] = ""
		}
		c.strs = c.strs[:0]
		c.bools = c.bools[:0]
		c.times = c.times[:0]
	}
}

// TruncateRows discards every row from index n on, keeping backing
// arrays. Batch-native decoders use it to roll back a partially decoded
// row before reporting a *TupleError, so failed rows never surface.
func (b *ColumnBatch) TruncateRows(n int) {
	if n < 0 || n >= b.n {
		return
	}
	b.ids = b.ids[:n]
	b.subStreams = b.subStreams[:n]
	b.eventTimes = b.eventTimes[:n]
	b.arrivals = b.arrivals[:n]
	b.dropped = b.dropped[:n]
	b.quarantined = b.quarantined[:n]
	for i := range b.cols {
		c := &b.cols[i]
		c.kinds = c.kinds[:n]
		if len(c.floats) > n {
			c.floats = c.floats[:n]
		}
		if len(c.ints) > n {
			c.ints = c.ints[:n]
		}
		if len(c.strs) > n {
			for j := n; j < len(c.strs); j++ {
				c.strs[j] = ""
			}
			c.strs = c.strs[:n]
		}
		if len(c.bools) > n {
			c.bools = c.bools[:n]
		}
		if len(c.times) > n {
			c.times = c.times[:n]
		}
	}
	b.n = n
}

// grow appends one zero row to every payload array a column already
// carries, keeping the arrays row-aligned.
func (c *batchColumn) grow(row int) {
	c.kinds = append(c.kinds, KindNull)
	if c.floats != nil || cap(c.floats) > 0 {
		c.floats = append(c.floats, 0)
	}
	if c.ints != nil || cap(c.ints) > 0 {
		c.ints = append(c.ints, 0)
	}
	if c.strs != nil || cap(c.strs) > 0 {
		c.strs = append(c.strs, "")
	}
	if c.bools != nil || cap(c.bools) > 0 {
		c.bools = append(c.bools, false)
	}
	if c.times != nil || cap(c.times) > 0 {
		c.times = append(c.times, time.Time{})
	}
	_ = row
}

// ensure makes the payload array for kind k row-aligned with the column,
// allocating it on first use.
func (c *batchColumn) ensure(k Kind, rows int) {
	switch k {
	case KindFloat:
		for len(c.floats) < rows {
			c.floats = append(c.floats, 0)
		}
	case KindInt:
		for len(c.ints) < rows {
			c.ints = append(c.ints, 0)
		}
	case KindString:
		for len(c.strs) < rows {
			c.strs = append(c.strs, "")
		}
	case KindBool:
		for len(c.bools) < rows {
			c.bools = append(c.bools, false)
		}
	case KindTime:
		for len(c.times) < rows {
			c.times = append(c.times, time.Time{})
		}
	}
}

// set stores v at row (which must already exist in the column).
func (c *batchColumn) set(row int, v Value) {
	k := v.Kind()
	c.kinds[row] = k
	switch k {
	case KindFloat:
		c.ensure(KindFloat, row+1)
		c.floats[row], _ = v.AsFloat()
	case KindInt:
		c.ensure(KindInt, row+1)
		c.ints[row], _ = v.AsInt()
	case KindString:
		c.ensure(KindString, row+1)
		c.strs[row], _ = v.AsString()
	case KindBool:
		c.ensure(KindBool, row+1)
		c.bools[row], _ = v.AsBool()
	case KindTime:
		c.ensure(KindTime, row+1)
		c.times[row], _ = v.AsTime()
	}
}

// value reads the cell at row.
func (c *batchColumn) value(row int) Value {
	switch c.kinds[row] {
	case KindFloat:
		return Float(c.floats[row])
	case KindInt:
		return Int(c.ints[row])
	case KindString:
		return Str(c.strs[row])
	case KindBool:
		return Bool(c.bools[row])
	case KindTime:
		return Time(c.times[row])
	}
	return Null()
}

// AppendTuple appends one row copied from t. The tuple's schema must
// match the batch schema (same width; the caller guarantees field
// compatibility, as everywhere else in the engine).
func (b *ColumnBatch) AppendTuple(t Tuple) error {
	if t.Len() != b.schema.Len() {
		return fmt.Errorf("stream: column batch of width %d cannot hold tuple of width %d", b.schema.Len(), t.Len())
	}
	row := b.n
	b.ids = append(b.ids, t.ID)
	b.subStreams = append(b.subStreams, int32(t.SubStream))
	b.eventTimes = append(b.eventTimes, t.EventTime)
	b.arrivals = append(b.arrivals, t.Arrival)
	b.dropped = append(b.dropped, t.Dropped)
	b.quarantined = append(b.quarantined, t.Quarantined)
	for i := range b.cols {
		b.cols[i].grow(row)
		b.cols[i].set(row, t.At(i))
	}
	b.n++
	return nil
}

// padAppend appends src[from:to) to dst keeping dst row-aligned: dst is
// padded with zero values up to dstRows first (the rows a lazily
// allocated payload has not materialised yet) and up to the full new
// row count afterwards (rows the source payload has not materialised).
// A payload absent on both sides stays absent.
func padAppend[T any](dst []T, dstRows int, src []T, from, to int) []T {
	if len(src) == 0 && dst == nil {
		return nil
	}
	var zero T
	for len(dst) < dstRows {
		dst = append(dst, zero)
	}
	end := to
	if end > len(src) {
		end = len(src)
	}
	if end > from {
		dst = append(dst, src[from:end]...)
	}
	for want := dstRows + (to - from); len(dst) < want; {
		dst = append(dst, zero)
	}
	return dst
}

// AppendBatchRows bulk-appends rows [from, to) of src to b — the
// batch-to-batch fast path of batch-native sources and batch emission.
// Columns are copied payload-array by payload-array instead of boxing
// one Value per cell, so the copy is a handful of bulk appends per
// column.
func (b *ColumnBatch) AppendBatchRows(src *ColumnBatch, from, to int) error {
	if src.schema.Len() != b.schema.Len() {
		return fmt.Errorf("stream: column batch of width %d cannot append rows of width %d", b.schema.Len(), src.schema.Len())
	}
	if from < 0 || to > src.n || from > to {
		return fmt.Errorf("stream: row range [%d, %d) outside batch of %d rows", from, to, src.n)
	}
	if from == to {
		return nil
	}
	b.ids = append(b.ids, src.ids[from:to]...)
	b.subStreams = append(b.subStreams, src.subStreams[from:to]...)
	b.eventTimes = append(b.eventTimes, src.eventTimes[from:to]...)
	b.arrivals = append(b.arrivals, src.arrivals[from:to]...)
	b.dropped = append(b.dropped, src.dropped[from:to]...)
	b.quarantined = append(b.quarantined, src.quarantined[from:to]...)
	for i := range b.cols {
		c, sc := &b.cols[i], &src.cols[i]
		c.kinds = append(c.kinds, sc.kinds[from:to]...)
		c.floats = padAppend(c.floats, b.n, sc.floats, from, to)
		c.ints = padAppend(c.ints, b.n, sc.ints, from, to)
		c.strs = padAppend(c.strs, b.n, sc.strs, from, to)
		c.bools = padAppend(c.bools, b.n, sc.bools, from, to)
		c.times = padAppend(c.times, b.n, sc.times, from, to)
	}
	b.n += to - from
	return nil
}

// Value returns the cell at (row, col).
func (b *ColumnBatch) Value(row, col int) Value { return b.cols[col].value(row) }

// SetValue overwrites the cell at (row, col).
func (b *ColumnBatch) SetValue(row, col int, v Value) { b.cols[col].set(row, v) }

// ID returns the tuple ID of row.
func (b *ColumnBatch) ID(row int) uint64 { return b.ids[row] }

// EventTime returns τ of row.
func (b *ColumnBatch) EventTime(row int) time.Time { return b.eventTimes[row] }

// Floats returns the dense float payload of column col together with the
// per-row kind tags. A cell holds a valid float only where kinds[row] ==
// KindFloat; columnar kernels branch on the tag. The returned slices
// alias the batch and are invalidated by Reset.
func (b *ColumnBatch) Floats(col int) (payload []float64, kinds []Kind) {
	c := &b.cols[col]
	c.ensure(KindFloat, b.n)
	return c.floats[:b.n], c.kinds[:b.n]
}

// Ints returns the dense int payload of column col with the per-row
// kind tags (valid where kinds[row] == KindInt). The slices alias the
// batch and are invalidated by Reset.
func (b *ColumnBatch) Ints(col int) (payload []int64, kinds []Kind) {
	c := &b.cols[col]
	c.ensure(KindInt, b.n)
	return c.ints[:b.n], c.kinds[:b.n]
}

// Strs returns the dense string payload of column col with the per-row
// kind tags (valid where kinds[row] == KindString).
func (b *ColumnBatch) Strs(col int) (payload []string, kinds []Kind) {
	c := &b.cols[col]
	c.ensure(KindString, b.n)
	return c.strs[:b.n], c.kinds[:b.n]
}

// Bools returns the dense bool payload of column col with the per-row
// kind tags (valid where kinds[row] == KindBool).
func (b *ColumnBatch) Bools(col int) (payload []bool, kinds []Kind) {
	c := &b.cols[col]
	c.ensure(KindBool, b.n)
	return c.bools[:b.n], c.kinds[:b.n]
}

// Times returns the dense time payload of column col with the per-row
// kind tags (valid where kinds[row] == KindTime).
func (b *ColumnBatch) Times(col int) (payload []time.Time, kinds []Kind) {
	c := &b.cols[col]
	c.ensure(KindTime, b.n)
	return c.times[:b.n], c.kinds[:b.n]
}

// Kinds returns the per-row kind tags of column col. Kernels that
// retag a cell (e.g. MissingValue writing KindNull) mutate this slice
// directly; payload slices must be obtained through the typed accessors
// so they are row-aligned first.
func (b *ColumnBatch) Kinds(col int) []Kind { return b.cols[col].kinds[:b.n] }

// IDs returns the per-row tuple IDs. The slice aliases the batch.
func (b *ColumnBatch) IDs() []uint64 { return b.ids[:b.n] }

// EventTimes returns the per-row event times τ. The slice aliases the
// batch; pollution never mutates it (EventTime is pollution-immune).
func (b *ColumnBatch) EventTimes() []time.Time { return b.eventTimes[:b.n] }

// Arrivals returns the per-row delivery times. Delay kernels mutate the
// slice in place.
func (b *ColumnBatch) Arrivals() []time.Time { return b.arrivals[:b.n] }

// DroppedMask returns the per-row dropped flags, mutated in place by
// drop kernels.
func (b *ColumnBatch) DroppedMask() []bool { return b.dropped[:b.n] }

// QuarantinedMask returns the per-row quarantined flags.
func (b *ColumnBatch) QuarantinedMask() []bool { return b.quarantined[:b.n] }

// SubStreams returns the per-row sub-stream indices.
func (b *ColumnBatch) SubStreams() []int32 { return b.subStreams[:b.n] }

// AppendEmptyRow appends one all-NULL row with zero metadata and
// returns its index. Batch-native ingest decodes cells directly into
// the typed payload arrays of the new row.
func (b *ColumnBatch) AppendEmptyRow() int {
	row := b.n
	b.ids = append(b.ids, 0)
	b.subStreams = append(b.subStreams, 0)
	b.eventTimes = append(b.eventTimes, time.Time{})
	b.arrivals = append(b.arrivals, time.Time{})
	b.dropped = append(b.dropped, false)
	b.quarantined = append(b.quarantined, false)
	for i := range b.cols {
		b.cols[i].grow(row)
	}
	b.n++
	return row
}

// SetID overwrites the tuple ID of row.
func (b *ColumnBatch) SetID(row int, id uint64) { b.ids[row] = id }

// SetEventTime overwrites τ of row.
func (b *ColumnBatch) SetEventTime(row int, tau time.Time) { b.eventTimes[row] = tau }

// SetArrival overwrites the delivery time of row.
func (b *ColumnBatch) SetArrival(row int, at time.Time) { b.arrivals[row] = at }

// SetRow writes t back into row — the inverse of RowInto, used by
// per-row fallback shims to fold a materialised tuple's mutations
// (values, arrival, drop/quarantine flags) back into the batch.
func (b *ColumnBatch) SetRow(row int, t Tuple) {
	for i := range b.cols {
		b.cols[i].set(row, t.At(i))
	}
	b.ids[row] = t.ID
	b.subStreams[row] = int32(t.SubStream)
	b.eventTimes[row] = t.EventTime
	b.arrivals[row] = t.Arrival
	b.dropped[row] = t.Dropped
	b.quarantined[row] = t.Quarantined
}

// NullBitmap renders column col's NULL cells as a bitmap (bit r set ⇔
// row r is NULL), reusing dst when it has capacity. Columnar consumers
// use it to skip NULL runs without touching the kind tags per cell.
func (b *ColumnBatch) NullBitmap(col int, dst []uint64) []uint64 {
	words := (b.n + 63) / 64
	if cap(dst) < words {
		dst = make([]uint64, words)
	}
	dst = dst[:words]
	for i := range dst {
		dst[i] = 0
	}
	kinds := b.cols[col].kinds
	for r := 0; r < b.n; r++ {
		if kinds[r] == KindNull {
			dst[r/64] |= 1 << (r % 64)
		}
	}
	return dst
}

// NullCount counts the NULL cells of column col.
func (b *ColumnBatch) NullCount(col int) int {
	n := 0
	kinds := b.cols[col].kinds
	for r := 0; r < b.n; r++ {
		if kinds[r] == KindNull {
			n++
		}
	}
	return n
}

// Selection is a selection vector: the row indices (ascending) of a
// ColumnBatch that a columnar operator applies to. Condition kernels
// narrow a selection, error kernels sweep one.
type Selection []int32

// FillAll resets s to select every row of an n-row batch, reusing the
// backing array.
func (s Selection) FillAll(n int) Selection {
	s = s[:0]
	for i := 0; i < n; i++ {
		s = append(s, int32(i))
	}
	return s
}

// ColumnBatchReader is a source that decodes rows directly into a
// caller-provided ColumnBatch — the batch-native ingest fast path.
// ReadBatch appends up to max rows to dst and returns the number
// appended. io.EOF (with n == 0) ends the stream; a *TupleError reports
// a malformed row with the reader still usable, rows decoded before the
// failure staying appended.
type ColumnBatchReader interface {
	Schema() *Schema
	ReadBatch(dst *ColumnBatch, max int) (int, error)
}

// BatchSliceReader serves pre-built column batches through the
// ColumnBatchReader interface — the columnar analogue of SliceSource,
// used by benchmarks, tests and replay paths that already hold the
// stream in batched form.
type BatchSliceReader struct {
	schema  *Schema
	batches []*ColumnBatch
	bi, ri  int
}

// NewBatchSliceReader returns a reader serving the rows of batches in
// order. The batches are read, never mutated.
func NewBatchSliceReader(schema *Schema, batches []*ColumnBatch) *BatchSliceReader {
	return &BatchSliceReader{schema: schema, batches: batches}
}

// Schema implements ColumnBatchReader.
func (r *BatchSliceReader) Schema() *Schema { return r.schema }

// Next implements Source, so the reader can feed tuple-wise consumers
// too; the columnar runner detects ReadBatch and bypasses it.
func (r *BatchSliceReader) Next() (Tuple, error) {
	for r.bi < len(r.batches) && r.ri >= r.batches[r.bi].Len() {
		r.bi, r.ri = r.bi+1, 0
	}
	if r.bi >= len(r.batches) {
		return Tuple{}, io.EOF
	}
	t := r.batches[r.bi].Row(r.ri)
	r.ri++
	return t, nil
}

// ReadBatch implements ColumnBatchReader.
func (r *BatchSliceReader) ReadBatch(dst *ColumnBatch, max int) (int, error) {
	for r.bi < len(r.batches) && r.ri >= r.batches[r.bi].Len() {
		r.bi, r.ri = r.bi+1, 0
	}
	if r.bi >= len(r.batches) {
		return 0, io.EOF
	}
	cur := r.batches[r.bi]
	take := cur.Len() - r.ri
	if max > 0 && take > max {
		take = max
	}
	if err := dst.AppendBatchRows(cur, r.ri, r.ri+take); err != nil {
		return 0, err
	}
	r.ri += take
	return take, nil
}

// ColumnBatchPool recycles ColumnBatches of one schema so steady-state
// batch processing allocates nothing. It is not safe for concurrent
// use; pools are per-runner, like TuplePool's single-slot fast path.
type ColumnBatchPool struct {
	schema   *Schema
	capacity int
	free     []*ColumnBatch
}

// NewColumnBatchPool returns a pool minting batches over schema with
// the given row capacity.
func NewColumnBatchPool(schema *Schema, capacity int) *ColumnBatchPool {
	return &ColumnBatchPool{schema: schema, capacity: capacity}
}

// Get returns an empty batch, recycling a previously Put one when
// available.
func (p *ColumnBatchPool) Get() *ColumnBatch {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return NewColumnBatch(p.schema, p.capacity)
}

// Put resets b and returns it to the pool. Slices previously obtained
// from b are invalidated.
func (p *ColumnBatchPool) Put(b *ColumnBatch) {
	if b == nil || b.schema != p.schema {
		return
	}
	b.Reset()
	p.free = append(p.free, b)
}

// RowInto materialises row into a Tuple whose values live in buf (grown
// if needed). The metadata (ID, sub-stream, event time, arrival, flags)
// is restored exactly, so batching a stream and replaying it is
// lossless.
func (b *ColumnBatch) RowInto(buf []Value, row int) Tuple {
	w := b.schema.Len()
	if cap(buf) < w {
		buf = make([]Value, w)
	}
	buf = buf[:w]
	for i := range b.cols {
		buf[i] = b.cols[i].value(row)
	}
	t := NewTuple(b.schema, buf)
	t.ID = b.ids[row]
	t.SubStream = int(b.subStreams[row])
	t.EventTime = b.eventTimes[row]
	t.Arrival = b.arrivals[row]
	t.Dropped = b.dropped[row]
	t.Quarantined = b.quarantined[row]
	return t
}

// Row materialises row into a freshly allocated tuple.
func (b *ColumnBatch) Row(row int) Tuple { return b.RowInto(nil, row) }

// BatchColumnar groups a bounded stream into columnar micro-batches of
// at most size rows each. It is the columnar analogue of Batch.
func BatchColumnar(src Source, size int) ([]*ColumnBatch, error) {
	if size < 1 {
		size = 1
	}
	var batches []*ColumnBatch
	cur := NewColumnBatch(src.Schema(), size)
	for {
		t, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := cur.AppendTuple(t); err != nil {
			return nil, err
		}
		if cur.Len() == size {
			batches = append(batches, cur)
			cur = NewColumnBatch(src.Schema(), size)
		}
	}
	if cur.Len() > 0 {
		batches = append(batches, cur)
	}
	return batches, nil
}

// FromColumnBatches replays columnar micro-batches as a tuple-wise
// stream. With a non-nil pool the source follows loan semantics: every
// emitted tuple's buffer is drawn from (and, on the following Next,
// returned to) the pool, so replay allocates nothing in steady state;
// consumers must not retain emitted tuples across pulls. With a nil pool
// each row materialises into a fresh buffer.
func FromColumnBatches(schema *Schema, batches []*ColumnBatch, pool *TuplePool) Source {
	return &columnBatchSource{schema: schema, batches: batches, pool: pool}
}

type columnBatchSource struct {
	schema  *Schema
	batches []*ColumnBatch
	pool    *TuplePool
	bi, ri  int
	prev    Tuple
	held    bool
}

// Schema implements Source.
func (s *columnBatchSource) Schema() *Schema { return s.schema }

// Next implements Source.
func (s *columnBatchSource) Next() (Tuple, error) {
	if s.held {
		s.pool.ReleaseTuple(s.prev)
		s.held = false
		s.prev = Tuple{}
	}
	for s.bi < len(s.batches) && s.ri >= s.batches[s.bi].Len() {
		s.bi++
		s.ri = 0
	}
	if s.bi >= len(s.batches) {
		return Tuple{}, io.EOF
	}
	var buf []Value
	if s.pool != nil {
		buf = s.pool.Get()
	}
	t := s.batches[s.bi].RowInto(buf, s.ri)
	s.ri++
	if s.pool != nil {
		s.prev = t
		s.held = true
	}
	return t, nil
}
