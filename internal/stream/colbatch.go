package stream

import (
	"fmt"
	"io"
	"time"
)

// This file implements the columnar micro-batch representation of the
// hot-path engine. A ColumnBatch stores a micro-batch of tuples
// column-wise — one dense payload array per attribute and kind — instead
// of row-wise []Value slices. The layout has two purposes:
//
//   - Micro-batch pipelines stop allocating per tuple: a batch is a
//     handful of flat arrays that are reused (Reset) across batches, and
//     row views materialise into caller-provided or pooled buffers.
//   - Columnar kernels (validation, statistics, vectorised pollution)
//     can scan a float column as a plain []float64 without unboxing one
//     dynamically typed Value per cell.
//
// Mixed-kind columns are supported — pollution routinely turns a float
// cell into NULL or an outlier of another kind — by keeping a per-cell
// kind tag next to the per-kind payload arrays. Payload arrays are
// allocated lazily per kind, so a clean float column costs exactly one
// []float64 and one []Kind.

// ColumnBatch is a columnar micro-batch over one schema. The zero value
// is not usable; construct with NewColumnBatch.
type ColumnBatch struct {
	schema *Schema
	n      int
	cols   []batchColumn

	// Row metadata, parallel to the rows.
	ids         []uint64
	subStreams  []int32
	eventTimes  []time.Time
	arrivals    []time.Time
	dropped     []bool
	quarantined []bool
}

// batchColumn holds one attribute column: a per-cell kind tag plus
// lazily allocated per-kind payload arrays indexed by row.
type batchColumn struct {
	kinds  []Kind
	floats []float64
	ints   []int64
	strs   []string
	bools  []bool
	times  []time.Time
}

// NewColumnBatch returns an empty batch over schema with capacity for
// the given number of rows (grown automatically beyond it).
func NewColumnBatch(schema *Schema, capacity int) *ColumnBatch {
	if capacity < 0 {
		capacity = 0
	}
	b := &ColumnBatch{schema: schema, cols: make([]batchColumn, schema.Len())}
	b.ids = make([]uint64, 0, capacity)
	b.subStreams = make([]int32, 0, capacity)
	b.eventTimes = make([]time.Time, 0, capacity)
	b.arrivals = make([]time.Time, 0, capacity)
	b.dropped = make([]bool, 0, capacity)
	b.quarantined = make([]bool, 0, capacity)
	for i := range b.cols {
		b.cols[i].kinds = make([]Kind, 0, capacity)
	}
	return b
}

// Schema returns the batch schema.
func (b *ColumnBatch) Schema() *Schema { return b.schema }

// Len returns the number of rows.
func (b *ColumnBatch) Len() int { return b.n }

// Reset empties the batch while keeping every backing array, so the same
// ColumnBatch is reused batch after batch with zero steady-state
// allocation.
func (b *ColumnBatch) Reset() {
	b.n = 0
	b.ids = b.ids[:0]
	b.subStreams = b.subStreams[:0]
	b.eventTimes = b.eventTimes[:0]
	b.arrivals = b.arrivals[:0]
	b.dropped = b.dropped[:0]
	b.quarantined = b.quarantined[:0]
	for i := range b.cols {
		c := &b.cols[i]
		c.kinds = c.kinds[:0]
		c.floats = c.floats[:0]
		c.ints = c.ints[:0]
		// Clear string/time payloads so pooled batches don't pin memory.
		for j := range c.strs {
			c.strs[j] = ""
		}
		c.strs = c.strs[:0]
		c.bools = c.bools[:0]
		c.times = c.times[:0]
	}
}

// grow appends one zero row to every payload array a column already
// carries, keeping the arrays row-aligned.
func (c *batchColumn) grow(row int) {
	c.kinds = append(c.kinds, KindNull)
	if c.floats != nil || cap(c.floats) > 0 {
		c.floats = append(c.floats, 0)
	}
	if c.ints != nil || cap(c.ints) > 0 {
		c.ints = append(c.ints, 0)
	}
	if c.strs != nil || cap(c.strs) > 0 {
		c.strs = append(c.strs, "")
	}
	if c.bools != nil || cap(c.bools) > 0 {
		c.bools = append(c.bools, false)
	}
	if c.times != nil || cap(c.times) > 0 {
		c.times = append(c.times, time.Time{})
	}
	_ = row
}

// ensure makes the payload array for kind k row-aligned with the column,
// allocating it on first use.
func (c *batchColumn) ensure(k Kind, rows int) {
	switch k {
	case KindFloat:
		for len(c.floats) < rows {
			c.floats = append(c.floats, 0)
		}
	case KindInt:
		for len(c.ints) < rows {
			c.ints = append(c.ints, 0)
		}
	case KindString:
		for len(c.strs) < rows {
			c.strs = append(c.strs, "")
		}
	case KindBool:
		for len(c.bools) < rows {
			c.bools = append(c.bools, false)
		}
	case KindTime:
		for len(c.times) < rows {
			c.times = append(c.times, time.Time{})
		}
	}
}

// set stores v at row (which must already exist in the column).
func (c *batchColumn) set(row int, v Value) {
	k := v.Kind()
	c.kinds[row] = k
	switch k {
	case KindFloat:
		c.ensure(KindFloat, row+1)
		c.floats[row], _ = v.AsFloat()
	case KindInt:
		c.ensure(KindInt, row+1)
		c.ints[row], _ = v.AsInt()
	case KindString:
		c.ensure(KindString, row+1)
		c.strs[row], _ = v.AsString()
	case KindBool:
		c.ensure(KindBool, row+1)
		c.bools[row], _ = v.AsBool()
	case KindTime:
		c.ensure(KindTime, row+1)
		c.times[row], _ = v.AsTime()
	}
}

// value reads the cell at row.
func (c *batchColumn) value(row int) Value {
	switch c.kinds[row] {
	case KindFloat:
		return Float(c.floats[row])
	case KindInt:
		return Int(c.ints[row])
	case KindString:
		return Str(c.strs[row])
	case KindBool:
		return Bool(c.bools[row])
	case KindTime:
		return Time(c.times[row])
	}
	return Null()
}

// AppendTuple appends one row copied from t. The tuple's schema must
// match the batch schema (same width; the caller guarantees field
// compatibility, as everywhere else in the engine).
func (b *ColumnBatch) AppendTuple(t Tuple) error {
	if t.Len() != b.schema.Len() {
		return fmt.Errorf("stream: column batch of width %d cannot hold tuple of width %d", b.schema.Len(), t.Len())
	}
	row := b.n
	b.ids = append(b.ids, t.ID)
	b.subStreams = append(b.subStreams, int32(t.SubStream))
	b.eventTimes = append(b.eventTimes, t.EventTime)
	b.arrivals = append(b.arrivals, t.Arrival)
	b.dropped = append(b.dropped, t.Dropped)
	b.quarantined = append(b.quarantined, t.Quarantined)
	for i := range b.cols {
		b.cols[i].grow(row)
		b.cols[i].set(row, t.At(i))
	}
	b.n++
	return nil
}

// Value returns the cell at (row, col).
func (b *ColumnBatch) Value(row, col int) Value { return b.cols[col].value(row) }

// SetValue overwrites the cell at (row, col).
func (b *ColumnBatch) SetValue(row, col int, v Value) { b.cols[col].set(row, v) }

// ID returns the tuple ID of row.
func (b *ColumnBatch) ID(row int) uint64 { return b.ids[row] }

// EventTime returns τ of row.
func (b *ColumnBatch) EventTime(row int) time.Time { return b.eventTimes[row] }

// Floats returns the dense float payload of column col together with the
// per-row kind tags. A cell holds a valid float only where kinds[row] ==
// KindFloat; columnar kernels branch on the tag. The returned slices
// alias the batch and are invalidated by Reset.
func (b *ColumnBatch) Floats(col int) (payload []float64, kinds []Kind) {
	c := &b.cols[col]
	c.ensure(KindFloat, b.n)
	return c.floats[:b.n], c.kinds[:b.n]
}

// RowInto materialises row into a Tuple whose values live in buf (grown
// if needed). The metadata (ID, sub-stream, event time, arrival, flags)
// is restored exactly, so batching a stream and replaying it is
// lossless.
func (b *ColumnBatch) RowInto(buf []Value, row int) Tuple {
	w := b.schema.Len()
	if cap(buf) < w {
		buf = make([]Value, w)
	}
	buf = buf[:w]
	for i := range b.cols {
		buf[i] = b.cols[i].value(row)
	}
	t := NewTuple(b.schema, buf)
	t.ID = b.ids[row]
	t.SubStream = int(b.subStreams[row])
	t.EventTime = b.eventTimes[row]
	t.Arrival = b.arrivals[row]
	t.Dropped = b.dropped[row]
	t.Quarantined = b.quarantined[row]
	return t
}

// Row materialises row into a freshly allocated tuple.
func (b *ColumnBatch) Row(row int) Tuple { return b.RowInto(nil, row) }

// BatchColumnar groups a bounded stream into columnar micro-batches of
// at most size rows each. It is the columnar analogue of Batch.
func BatchColumnar(src Source, size int) ([]*ColumnBatch, error) {
	if size < 1 {
		size = 1
	}
	var batches []*ColumnBatch
	cur := NewColumnBatch(src.Schema(), size)
	for {
		t, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := cur.AppendTuple(t); err != nil {
			return nil, err
		}
		if cur.Len() == size {
			batches = append(batches, cur)
			cur = NewColumnBatch(src.Schema(), size)
		}
	}
	if cur.Len() > 0 {
		batches = append(batches, cur)
	}
	return batches, nil
}

// FromColumnBatches replays columnar micro-batches as a tuple-wise
// stream. With a non-nil pool the source follows loan semantics: every
// emitted tuple's buffer is drawn from (and, on the following Next,
// returned to) the pool, so replay allocates nothing in steady state;
// consumers must not retain emitted tuples across pulls. With a nil pool
// each row materialises into a fresh buffer.
func FromColumnBatches(schema *Schema, batches []*ColumnBatch, pool *TuplePool) Source {
	return &columnBatchSource{schema: schema, batches: batches, pool: pool}
}

type columnBatchSource struct {
	schema  *Schema
	batches []*ColumnBatch
	pool    *TuplePool
	bi, ri  int
	prev    Tuple
	held    bool
}

// Schema implements Source.
func (s *columnBatchSource) Schema() *Schema { return s.schema }

// Next implements Source.
func (s *columnBatchSource) Next() (Tuple, error) {
	if s.held {
		s.pool.ReleaseTuple(s.prev)
		s.held = false
		s.prev = Tuple{}
	}
	for s.bi < len(s.batches) && s.ri >= s.batches[s.bi].Len() {
		s.bi++
		s.ri = 0
	}
	if s.bi >= len(s.batches) {
		return Tuple{}, io.EOF
	}
	var buf []Value
	if s.pool != nil {
		buf = s.pool.Get()
	}
	t := s.batches[s.bi].RowInto(buf, s.ri)
	s.ri++
	if s.pool != nil {
		s.prev = t
		s.held = true
	}
	return t, nil
}
