package stream

import (
	"time"

	"icewafl/internal/obs"
)

// This file wires the stream layer into the observability registry
// (internal/obs). All hooks follow the same contract: a nil registry
// yields the original, uninstrumented component, so observability costs
// nothing unless switched on — and even when on, latency is recorded
// only for tuples selected by the registry's deterministic sampler.

// ObserveSource wraps src with source-stage metrics: every delivered
// row counts toward source_rows; every tuple-level failure counts one
// source_errors AND one source_rows (a row was consumed from the
// input); end-of-stream and fatal errors pass through uncounted. When
// trace sampling is enabled, sampled rows additionally record
// source-stage latency spans. A nil registry returns src unchanged.
func ObserveSource(src Source, reg *obs.Registry) Source {
	if reg == nil {
		return src
	}
	return &observedSource{src: src, reg: reg, trace: reg.TraceEnabled()}
}

type observedSource struct {
	src   Source
	reg   *obs.Registry
	trace bool
	row   uint64
}

// Schema implements Source.
func (s *observedSource) Schema() *Schema { return s.src.Schema() }

// Next implements Source.
func (s *observedSource) Next() (Tuple, error) {
	row := s.row
	var t Tuple
	var err error
	// Rows are sampled by their 0-based position (raw rows carry no
	// tuple ID yet); positions are as deterministic as IDs, so re-runs
	// trace the same rows.
	if s.trace && s.reg.Sampled(row) {
		start := time.Now()
		t, err = s.src.Next()
		d := time.Since(start)
		if err == nil || !IsEndOfStream(err) {
			s.reg.ObserveSpan(obs.StageSource, spanID(t, row), d)
		}
	} else {
		t, err = s.src.Next()
	}
	if err == nil {
		s.row++
		s.reg.Inc(obs.CSourceRows)
		return t, nil
	}
	if _, ok := AsTupleError(err); ok {
		s.row++
		s.reg.Inc(obs.CSourceRows)
		s.reg.Inc(obs.CSourceErrors)
	}
	return t, err
}

// Stop implements Stopper by forwarding to the inner source.
func (s *observedSource) Stop() { stopSource(s.src) }

// spanID picks the trace identifier of a source span: the prepared
// tuple ID when the row already carries one, the row position
// otherwise.
func spanID(t Tuple, row uint64) uint64 {
	if t.ID != 0 {
		return t.ID
	}
	return row
}

// ObserveSink wraps sink with sink-stage metrics: every Write counts
// one sink_writes; sampled tuples (by tuple ID) record sink-stage
// latency spans. A nil registry returns sink unchanged.
func ObserveSink(sink Sink, reg *obs.Registry) Sink {
	if reg == nil {
		return sink
	}
	return &observedSink{sink: sink, reg: reg, trace: reg.TraceEnabled()}
}

type observedSink struct {
	sink  Sink
	reg   *obs.Registry
	trace bool
}

// Write implements Sink.
func (s *observedSink) Write(t Tuple) error {
	if s.trace && s.reg.Sampled(t.ID) {
		start := time.Now()
		err := s.sink.Write(t)
		d := time.Since(start)
		if err == nil {
			s.reg.Inc(obs.CSinkWrites)
			s.reg.ObserveSpan(obs.StageSink, t.ID, d)
		}
		return err
	}
	err := s.sink.Write(t)
	if err == nil {
		s.reg.Inc(obs.CSinkWrites)
	}
	return err
}

// Close implements Sink.
func (s *observedSink) Close() error { return s.sink.Close() }
