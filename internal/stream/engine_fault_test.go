package stream

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// countingSource tracks how far the feeder pulled.
type countingSource struct {
	src   Source
	pulls atomic.Int64
}

func (c *countingSource) Schema() *Schema { return c.src.Schema() }

func (c *countingSource) Next() (Tuple, error) {
	c.pulls.Add(1)
	return c.src.Next()
}

func TestParallelMapStopsPromptlyOnSourceError(t *testing.T) {
	s := testSchema(t)
	const n = 10_000
	fatal := errors.New("source exploded")
	// Fail at tuple 10 of a 10k-tuple stream.
	inner := &faultySource{schema: s, script: func() []any {
		script := make([]any, 0, n)
		for i, tp := range makeTuples(s, n) {
			if i == 10 {
				script = append(script, fatal)
				break
			}
			script = append(script, tp)
		}
		return script
	}()}
	counted := &countingSource{src: inner}
	before := runtime.NumGoroutine()
	pm := ParallelMap(counted, nil, 4, func(tp Tuple) Tuple { return tp })
	_, err := Drain(pm)
	if !errors.Is(err, fatal) {
		t.Fatalf("err = %v, want source error", err)
	}
	// The error must be sticky.
	if _, err2 := pm.Next(); !errors.Is(err2, fatal) {
		t.Errorf("second Next = %v, want sticky error", err2)
	}
	// Workers must not have drained the whole input.
	if pulls := counted.pulls.Load(); pulls > 100 {
		t.Errorf("feeder pulled %d tuples after error, want prompt stop", pulls)
	}
	assertNoGoroutineLeak(t, before)
}

func TestParallelMapRecoversWorkerPanic(t *testing.T) {
	s := testSchema(t)
	before := runtime.NumGoroutine()
	src := NewSliceSource(s, makeTuples(s, 1000))
	pm := ParallelMap(src, nil, 4, func(tp Tuple) Tuple {
		if v, _ := tp.GetFloat("v"); v == 500 {
			panic(fmt.Sprintf("poison at %v", v))
		}
		return tp
	})
	_, err := Drain(pm)
	te, ok := AsTupleError(err)
	if !ok {
		t.Fatalf("err = %v, want *TupleError from recovered panic", err)
	}
	if te.Stage != "parallel-map" || te.Offset != 500 {
		t.Errorf("tuple error = %+v", te)
	}
	// Deadlock regression guard: Next keeps returning the error instead
	// of blocking forever.
	done := make(chan struct{})
	go func() {
		pm.Next()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Next after worker panic blocked (old deadlock)")
	}
	assertNoGoroutineLeak(t, before)
}

func TestParallelMapStopReleasesGoroutines(t *testing.T) {
	s := testSchema(t)
	before := runtime.NumGoroutine()
	src := NewSliceSource(s, makeTuples(s, 100_000))
	pm := ParallelMap(src, nil, 4, func(tp Tuple) Tuple { return tp })
	for i := 0; i < 5; i++ {
		if _, err := pm.Next(); err != nil {
			t.Fatal(err)
		}
	}
	pm.(Stopper).Stop()
	if _, err := pm.Next(); !errors.Is(err, ErrStopped) {
		t.Errorf("Next after Stop = %v, want ErrStopped", err)
	}
	if _, err := pm.Next(); errors.Is(err, io.EOF) {
		t.Error("stopped stream reported io.EOF")
	}
	assertNoGoroutineLeak(t, before)
}

func TestParallelMapStopBeforeStart(t *testing.T) {
	s := testSchema(t)
	pm := ParallelMap(NewSliceSource(s, makeTuples(s, 10)), nil, 4, func(tp Tuple) Tuple { return tp })
	pm.(Stopper).Stop()
	if _, err := pm.Next(); !errors.Is(err, ErrStopped) {
		t.Errorf("Next after pre-start Stop = %v, want ErrStopped", err)
	}
}

func TestParallelMapPreservesOrderUnderFaults(t *testing.T) {
	s := testSchema(t)
	const n = 2000
	src := NewSliceSource(s, makeTuples(s, n))
	q := NewDeadLetterQueue()
	// SafeFunc quarantines panicking tuples inside the workers, keeping
	// the stream itself healthy.
	pm := ParallelMap(src, nil, 8, SafeFunc(func(tp Tuple) Tuple {
		if v, _ := tp.GetFloat("v"); int(v)%97 == 0 {
			panic("unlucky tuple")
		}
		return tp
	}, q))
	got, err := Drain(pm)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	prev := -1.0
	for _, tp := range got {
		if tp.Dropped {
			continue
		}
		v, _ := tp.GetFloat("v")
		if v <= prev {
			t.Fatalf("order broken: %v after %v", v, prev)
		}
		prev = v
		delivered++
	}
	want := 0
	for i := 0; i < n; i++ {
		if i%97 != 0 {
			want++
		}
	}
	if delivered != want || q.Len() != n-want {
		t.Errorf("delivered=%d quarantined=%d, want %d/%d", delivered, q.Len(), want, n-want)
	}
}
