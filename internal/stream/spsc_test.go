package stream

import (
	"sync"
	"testing"
)

func TestSPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{-1, 2}, {0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := NewSPSC[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestSPSCFIFOWraparound(t *testing.T) {
	q := NewSPSC[int](4)
	next := 0
	for round := 0; round < 10; round++ {
		for q.TryPush(next) {
			next++
		}
		if q.Len() != q.Cap() {
			t.Fatalf("round %d: Len = %d after filling, want %d", round, q.Len(), q.Cap())
		}
		want := next - q.Cap()
		for {
			v, ok := q.TryPop()
			if !ok {
				break
			}
			if v != want {
				t.Fatalf("round %d: popped %d, want %d", round, v, want)
			}
			want++
		}
		if want != next {
			t.Fatalf("round %d: drained up to %d, want %d", round, want, next)
		}
	}
}

// TestSPSCConcurrentOrder streams a million integers through a small
// ring between two goroutines; CI runs it under -race, which checks
// the atomics establish the intended happens-before edges.
func TestSPSCConcurrentOrder(t *testing.T) {
	const n = 1_000_000
	q := NewSPSC[int](8)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if !q.Push(i, done) {
				t.Errorf("push %d aborted", i)
				return
			}
		}
		q.Close()
	}()
	for want := 0; ; want++ {
		v, ok := q.Pop(done)
		if !ok {
			if want != n {
				t.Fatalf("stream ended at %d, want %d", want, n)
			}
			break
		}
		if v != want {
			t.Fatalf("popped %d, want %d", v, want)
		}
	}
	wg.Wait()
	if !q.Drained() {
		t.Fatal("queue not drained after consuming everything")
	}
}

func TestSPSCCloseDrains(t *testing.T) {
	q := NewSPSC[string](4)
	q.TryPush("a")
	q.TryPush("b")
	q.Close()
	if q.Drained() {
		t.Fatal("Drained true while elements remain")
	}
	done := make(chan struct{})
	if v, ok := q.Pop(done); !ok || v != "a" {
		t.Fatalf("Pop = %q,%v, want a,true", v, ok)
	}
	if v, ok := q.Pop(done); !ok || v != "b" {
		t.Fatalf("Pop = %q,%v, want b,true", v, ok)
	}
	if _, ok := q.Pop(done); ok {
		t.Fatal("Pop succeeded on a closed empty queue")
	}
	if !q.Drained() {
		t.Fatal("Drained false after close and drain")
	}
}

func TestSPSCDoneAbortsBlockedOps(t *testing.T) {
	q := NewSPSC[int](2)
	for q.TryPush(0) {
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if q.Push(99, done) {
			t.Error("Push on a full ring succeeded after done")
		}
	}()
	empty := NewSPSC[int](2)
	go func() {
		defer wg.Done()
		if _, ok := empty.Pop(done); ok {
			t.Error("Pop on an empty ring succeeded after done")
		}
	}()
	close(done)
	wg.Wait()
}

func TestSPSCAbandonFailsPushFast(t *testing.T) {
	q := NewSPSC[int](2)
	q.TryPush(1)
	q.Abandon()
	if q.TryPush(2) {
		t.Fatal("TryPush succeeded on an abandoned queue")
	}
	if q.Push(2, make(chan struct{})) {
		t.Fatal("Push succeeded on an abandoned queue")
	}
	if !q.Abandoned() {
		t.Fatal("Abandoned not reported")
	}
}
