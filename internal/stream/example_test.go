package stream_test

import (
	"fmt"
	"time"

	"icewafl/internal/stream"
)

// ExampleMap builds a small operator chain: generate, transform, filter,
// and drain.
func ExampleMap() {
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "celsius", Kind: stream.KindFloat},
	)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	src := stream.NewGeneratorSource(schema, 4, func(i int) stream.Tuple {
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(start.Add(time.Duration(i) * time.Hour)),
			stream.Float(float64(10 * i)), // 0, 10, 20, 30
		})
	})
	fahrenheit := stream.Map(src, nil, func(t stream.Tuple) stream.Tuple {
		c := t.Clone()
		v, _ := c.GetFloat("celsius")
		c.Set("celsius", stream.Float(v*9/5+32))
		return c
	})
	warm := stream.Filter(fahrenheit, func(t stream.Tuple) bool {
		v, _ := t.GetFloat("celsius")
		return v > 50
	})
	tuples, _ := stream.Drain(warm)
	for _, t := range tuples {
		fmt.Println(t.MustGet("celsius"))
	}
	// Output:
	// 68
	// 86
}

// ExampleSplit partitions a stream into sub-streams, the mechanism
// behind Algorithm 1's overlapping sub-stream extraction.
func ExampleSplit() {
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "n", Kind: stream.KindInt},
	)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	src := stream.NewGeneratorSource(schema, 6, func(i int) stream.Tuple {
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(start.Add(time.Duration(i) * time.Second)),
			stream.Int(int64(i)),
		})
	})
	subs := stream.Split(src, 2, stream.RouteRoundRobin())
	a, _ := stream.Drain(subs[0])
	b, _ := stream.Drain(subs[1])
	fmt.Println("sub 0:", len(a), "tuples; sub 1:", len(b), "tuples")
	// Output:
	// sub 0: 3 tuples; sub 1: 3 tuples
}
