package stream

import (
	"fmt"
	"io"
	"time"
)

// Window is one event-time window of tuples, emitted once the window
// closes.
type Window struct {
	// Start and End delimit the window; End is exclusive.
	Start, End time.Time
	// Tuples holds the window's contents in arrival order.
	Tuples []Tuple
}

// TumblingWindows groups a stream into fixed-size, non-overlapping
// event-time windows keyed on the arrival time (the delivery order of
// the polluted stream). Windows align to the first tuple's arrival. A
// window closes when a tuple arrives at or beyond its end; the final
// partial window closes at EOF. Empty windows are not emitted.
type TumblingWindows struct {
	src   Source
	width time.Duration

	cur  *Window
	done bool
	// err latches the stream's terminal error. Once the source fails
	// fatally or the final partial window has been handed out, every
	// further Next call returns the latched error — the final window can
	// never be emitted twice, and a drained operator stays drained.
	err error
}

// NewTumblingWindows wraps src with windows of the given width. A
// non-positive width is a configuration error (historically it was
// silently coerced to one second, hiding misconfigured pipelines).
func NewTumblingWindows(src Source, width time.Duration) (*TumblingWindows, error) {
	if width <= 0 {
		return nil, fmt.Errorf("stream: tumbling window width must be positive, got %v", width)
	}
	return &TumblingWindows{src: src, width: width}, nil
}

// Next returns the next closed window or io.EOF. After a fatal source
// error or EOF the operator is terminal: subsequent calls return the
// same error and never re-emit the final partial window. Tuple-level
// source errors (*TupleError) are passed through without terminating
// the operator, matching the Source error contract.
func (w *TumblingWindows) Next() (Window, error) {
	for {
		if w.err != nil {
			return Window{}, w.err
		}
		if w.done {
			if w.cur != nil {
				out := *w.cur
				w.cur = nil
				w.err = io.EOF
				return out, nil
			}
			w.err = io.EOF
			return Window{}, io.EOF
		}
		t, err := w.src.Next()
		if err == io.EOF {
			w.done = true
			continue
		}
		if err != nil {
			if _, ok := AsTupleError(err); ok {
				// Tuple-level failure: the source remains usable, so the
				// window state is kept and the caller may continue.
				return Window{}, err
			}
			// Fatal: latch and discard the partial window — its contents
			// are not known to be complete.
			w.cur = nil
			w.err = err
			return Window{}, err
		}
		if w.cur == nil {
			w.cur = &Window{Start: t.Arrival, End: t.Arrival.Add(w.width)}
		}
		if t.Arrival.Before(w.cur.End) {
			w.cur.Tuples = append(w.cur.Tuples, t)
			continue
		}
		out := *w.cur
		// Advance the window far enough to contain the new tuple,
		// skipping empty windows.
		start := w.cur.End
		for !t.Arrival.Before(start.Add(w.width)) {
			start = start.Add(w.width)
		}
		if t.Arrival.Before(start) {
			// t belongs to an already skipped range (clock going
			// backwards); fall back to a window anchored at t.
			start = t.Arrival
		}
		w.cur = &Window{Start: start, End: start.Add(w.width), Tuples: []Tuple{t}}
		return out, nil
	}
}

// CollectWindows drains all windows of w.
func CollectWindows(w *TumblingWindows) ([]Window, error) {
	var out []Window
	for {
		win, err := w.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, win)
	}
}

// SlidingWindows groups a bounded stream into overlapping event-time
// windows of the given width, advancing by slide per window (slide <
// width produces overlap; slide == width degrades to tumbling; slide 0
// defaults to width). Windows align to the first tuple's arrival; empty
// windows are skipped. A non-positive width or negative slide is a
// configuration error.
func SlidingWindows(src Source, width, slide time.Duration) ([]Window, error) {
	if width <= 0 {
		return nil, fmt.Errorf("stream: sliding window width must be positive, got %v", width)
	}
	if slide < 0 {
		return nil, fmt.Errorf("stream: sliding window slide must be non-negative, got %v", slide)
	}
	if slide == 0 {
		slide = width
	}
	tuples, err := Drain(src)
	if err != nil {
		return nil, err
	}
	if len(tuples) == 0 {
		return nil, nil
	}
	first := tuples[0].Arrival
	last := tuples[len(tuples)-1].Arrival
	var out []Window
	for start := first; !start.After(last); start = start.Add(slide) {
		end := start.Add(width)
		win := Window{Start: start, End: end}
		for _, t := range tuples {
			if !t.Arrival.Before(start) && t.Arrival.Before(end) {
				win.Tuples = append(win.Tuples, t)
			}
		}
		if len(win.Tuples) > 0 {
			out = append(out, win)
		}
	}
	return out, nil
}

// Watermark tracks event-time progress under bounded out-of-orderness,
// the mechanism streaming engines use to decide when windows may close.
// The watermark trails the maximum observed arrival time by the
// configured delay; tuples arriving behind the watermark are late.
type Watermark struct {
	// MaxDelay is the tolerated out-of-orderness.
	MaxDelay time.Duration

	maxSeen time.Time
	late    int
	total   int
}

// NewWatermark returns a tracker tolerating maxDelay of disorder.
func NewWatermark(maxDelay time.Duration) *Watermark {
	return &Watermark{MaxDelay: maxDelay}
}

// Observe folds one tuple in and reports whether it is late (arrived
// behind the current watermark).
func (w *Watermark) Observe(t Tuple) bool {
	w.total++
	late := !w.maxSeen.IsZero() && t.Arrival.Before(w.Current())
	if late {
		w.late++
	}
	if t.Arrival.After(w.maxSeen) {
		w.maxSeen = t.Arrival
	}
	return late
}

// Current returns the present watermark (zero before any observation).
func (w *Watermark) Current() time.Time {
	if w.maxSeen.IsZero() {
		return time.Time{}
	}
	return w.maxSeen.Add(-w.MaxDelay)
}

// LateCount returns how many observed tuples were late.
func (w *Watermark) LateCount() int { return w.late }

// Total returns how many tuples were observed.
func (w *Watermark) Total() int { return w.total }
