package stream

import (
	"io"
	"time"
)

// Window is one event-time window of tuples, emitted once the window
// closes.
type Window struct {
	// Start and End delimit the window; End is exclusive.
	Start, End time.Time
	// Tuples holds the window's contents in arrival order.
	Tuples []Tuple
}

// TumblingWindows groups a stream into fixed-size, non-overlapping
// event-time windows keyed on the arrival time (the delivery order of
// the polluted stream). Windows align to the first tuple's arrival. A
// window closes when a tuple arrives at or beyond its end; the final
// partial window closes at EOF. Empty windows are not emitted.
type TumblingWindows struct {
	src   Source
	width time.Duration

	cur     *Window
	pending []Tuple
	done    bool
}

// NewTumblingWindows wraps src with windows of the given width.
func NewTumblingWindows(src Source, width time.Duration) *TumblingWindows {
	if width <= 0 {
		width = time.Second
	}
	return &TumblingWindows{src: src, width: width}
}

// Next returns the next closed window or io.EOF.
func (w *TumblingWindows) Next() (Window, error) {
	for {
		if w.done {
			if w.cur != nil {
				out := *w.cur
				w.cur = nil
				return out, nil
			}
			return Window{}, io.EOF
		}
		t, err := w.src.Next()
		if err == io.EOF {
			w.done = true
			continue
		}
		if err != nil {
			return Window{}, err
		}
		if w.cur == nil {
			w.cur = &Window{Start: t.Arrival, End: t.Arrival.Add(w.width)}
		}
		if t.Arrival.Before(w.cur.End) {
			w.cur.Tuples = append(w.cur.Tuples, t)
			continue
		}
		out := *w.cur
		// Advance the window far enough to contain the new tuple,
		// skipping empty windows.
		start := w.cur.End
		for !t.Arrival.Before(start.Add(w.width)) {
			start = start.Add(w.width)
		}
		if t.Arrival.Before(start) {
			// t belongs to an already skipped range (clock going
			// backwards); fall back to a window anchored at t.
			start = t.Arrival
		}
		w.cur = &Window{Start: start, End: start.Add(w.width), Tuples: []Tuple{t}}
		return out, nil
	}
}

// CollectWindows drains all windows of w.
func CollectWindows(w *TumblingWindows) ([]Window, error) {
	var out []Window
	for {
		win, err := w.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, win)
	}
}

// SlidingWindows groups a bounded stream into overlapping event-time
// windows of the given width, advancing by slide per window (slide <
// width produces overlap; slide == width degrades to tumbling). Windows
// align to the first tuple's arrival; empty windows are skipped.
func SlidingWindows(src Source, width, slide time.Duration) ([]Window, error) {
	if width <= 0 {
		width = time.Second
	}
	if slide <= 0 {
		slide = width
	}
	tuples, err := Drain(src)
	if err != nil {
		return nil, err
	}
	if len(tuples) == 0 {
		return nil, nil
	}
	first := tuples[0].Arrival
	last := tuples[len(tuples)-1].Arrival
	var out []Window
	for start := first; !start.After(last); start = start.Add(slide) {
		end := start.Add(width)
		win := Window{Start: start, End: end}
		for _, t := range tuples {
			if !t.Arrival.Before(start) && t.Arrival.Before(end) {
				win.Tuples = append(win.Tuples, t)
			}
		}
		if len(win.Tuples) > 0 {
			out = append(out, win)
		}
	}
	return out, nil
}

// Watermark tracks event-time progress under bounded out-of-orderness,
// the mechanism streaming engines use to decide when windows may close.
// The watermark trails the maximum observed arrival time by the
// configured delay; tuples arriving behind the watermark are late.
type Watermark struct {
	// MaxDelay is the tolerated out-of-orderness.
	MaxDelay time.Duration

	maxSeen time.Time
	late    int
	total   int
}

// NewWatermark returns a tracker tolerating maxDelay of disorder.
func NewWatermark(maxDelay time.Duration) *Watermark {
	return &Watermark{MaxDelay: maxDelay}
}

// Observe folds one tuple in and reports whether it is late (arrived
// behind the current watermark).
func (w *Watermark) Observe(t Tuple) bool {
	w.total++
	late := !w.maxSeen.IsZero() && t.Arrival.Before(w.Current())
	if late {
		w.late++
	}
	if t.Arrival.After(w.maxSeen) {
		w.maxSeen = t.Arrival
	}
	return late
}

// Current returns the present watermark (zero before any observation).
func (w *Watermark) Current() time.Time {
	if w.maxSeen.IsZero() {
		return time.Time{}
	}
	return w.maxSeen.Add(-w.MaxDelay)
}

// LateCount returns how many observed tuples were late.
func (w *Watermark) LateCount() int { return w.late }

// Total returns how many tuples were observed.
func (w *Watermark) Total() int { return w.total }
