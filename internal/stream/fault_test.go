package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"
)

// --- TupleError / DeadLetterQueue -----------------------------------

func TestTupleErrorUnwrap(t *testing.T) {
	cause := errors.New("boom")
	var err error = &TupleError{Offset: 7, Stage: "map", Err: cause}
	if !errors.Is(err, cause) {
		t.Error("TupleError does not unwrap to its cause")
	}
	te, ok := AsTupleError(fmt.Errorf("wrapped: %w", err))
	if !ok || te.Offset != 7 || te.Stage != "map" {
		t.Errorf("AsTupleError through wrapping = %+v, %v", te, ok)
	}
	if _, ok := AsTupleError(cause); ok {
		t.Error("plain error recognised as TupleError")
	}
}

func TestIsEndOfStream(t *testing.T) {
	if !IsEndOfStream(io.EOF) || !IsEndOfStream(ErrStopped) {
		t.Error("EOF/ErrStopped not end-of-stream")
	}
	if IsEndOfStream(errors.New("x")) {
		t.Error("arbitrary error treated as end-of-stream")
	}
}

func TestDeadLetterQueueNilSafe(t *testing.T) {
	var q *DeadLetterQueue
	q.Add(DeadLetter{})
	q.AddError(errors.New("x"))
	if q.Len() != 0 || q.Letters() != nil {
		t.Error("nil queue not inert")
	}
}

func TestDeadLetterQueueAddError(t *testing.T) {
	s := testSchema(t)
	tup := makeTuples(s, 1)[0]
	tup.ID = 42
	q := NewDeadLetterQueue()
	q.AddError(&TupleError{Tuple: tup, Offset: 3, Stage: "pollute", Err: errors.New("bad")})
	q.AddError(errors.New("plain"))
	ls := q.Letters()
	if len(ls) != 2 {
		t.Fatalf("Len = %d", len(ls))
	}
	if ls[0].Offset != 3 || ls[0].TupleID != 42 || ls[0].Stage != "pollute" || ls[0].Cause != "bad" {
		t.Errorf("dead letter = %+v", ls[0])
	}
	if len(ls[0].Values) != tup.Len() {
		t.Errorf("values not rendered: %v", ls[0].Values)
	}
	if ls[1].Cause != "plain" {
		t.Errorf("plain cause = %q", ls[1].Cause)
	}
}

// --- Quarantine ------------------------------------------------------

// faultySource yields tuples interleaved with scripted errors.
type faultySource struct {
	schema *Schema
	script []any // Tuple or error
	pos    int
}

func (f *faultySource) Schema() *Schema { return f.schema }

func (f *faultySource) Next() (Tuple, error) {
	if f.pos >= len(f.script) {
		return Tuple{}, io.EOF
	}
	item := f.script[f.pos]
	f.pos++
	if err, ok := item.(error); ok {
		return Tuple{}, err
	}
	return item.(Tuple), nil
}

func TestQuarantineSkipsTupleErrors(t *testing.T) {
	s := testSchema(t)
	ts := makeTuples(s, 3)
	src := &faultySource{schema: s, script: []any{
		ts[0],
		&TupleError{Offset: 1, Stage: "decode", Err: errors.New("malformed")},
		ts[1],
		&TupleError{Offset: 3, Stage: "decode", Err: errors.New("malformed too")},
		ts[2],
	}}
	q := NewDeadLetterQueue()
	got, err := Drain(Quarantine(src, q, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("delivered %d tuples, want 3", len(got))
	}
	if q.Len() != 2 {
		t.Errorf("quarantined %d, want 2", q.Len())
	}
}

func TestQuarantineFatalErrorPassesThrough(t *testing.T) {
	s := testSchema(t)
	fatal := errors.New("disk on fire")
	src := &faultySource{schema: s, script: []any{fatal}}
	_, err := Drain(Quarantine(src, NewDeadLetterQueue(), 0))
	if !errors.Is(err, fatal) {
		t.Errorf("err = %v, want fatal passthrough", err)
	}
}

func TestQuarantineOverflow(t *testing.T) {
	s := testSchema(t)
	script := []any{}
	for i := 0; i < 5; i++ {
		script = append(script, &TupleError{Offset: uint64(i), Err: errors.New("bad")})
	}
	src := &faultySource{schema: s, script: script}
	q := NewDeadLetterQueue()
	_, err := Drain(Quarantine(src, q, 3))
	if !errors.Is(err, ErrQuarantineOverflow) {
		t.Errorf("err = %v, want ErrQuarantineOverflow", err)
	}
	if q.Len() != 3 {
		t.Errorf("quarantined %d before overflow, want 3", q.Len())
	}
}

// --- SafeMap ---------------------------------------------------------

func TestSafeMapRecoversPanics(t *testing.T) {
	s := testSchema(t)
	src := NewSliceSource(s, makeTuples(s, 4))
	sm := SafeMap(src, nil, func(tp Tuple) Tuple {
		if v, _ := tp.GetFloat("v"); v == 2 {
			panic("poison tuple")
		}
		return tp
	})
	var delivered int
	var tupleErrs int
	for {
		_, err := sm.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			te, ok := AsTupleError(err)
			if !ok {
				t.Fatalf("fatal error: %v", err)
			}
			if te.Stage != "map" || te.Offset != 2 {
				t.Errorf("tuple error = %+v", te)
			}
			tupleErrs++
			continue // source must remain usable
		}
		delivered++
	}
	if delivered != 3 || tupleErrs != 1 {
		t.Errorf("delivered=%d tupleErrs=%d, want 3/1", delivered, tupleErrs)
	}
}

func TestSafeMapWithQuarantine(t *testing.T) {
	s := testSchema(t)
	src := NewSliceSource(s, makeTuples(s, 10))
	q := NewDeadLetterQueue()
	pipeline := Quarantine(SafeMap(src, nil, func(tp Tuple) Tuple {
		if v, _ := tp.GetFloat("v"); v == 3 || v == 7 {
			panic(fmt.Sprintf("poison %v", v))
		}
		return tp
	}), q, 0)
	got, err := Drain(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 || q.Len() != 2 {
		t.Errorf("delivered=%d quarantined=%d, want 8/2", len(got), q.Len())
	}
}

// --- WithContext / cancellation --------------------------------------

func TestWithContextBackgroundIsFree(t *testing.T) {
	s := testSchema(t)
	src := NewSliceSource(s, nil)
	if WithContext(context.Background(), src) != Source(src) {
		t.Error("background context should not wrap")
	}
}

func TestWithContextCancellation(t *testing.T) {
	s := testSchema(t)
	src := NewSliceSource(s, makeTuples(s, 100))
	ctx, cancel := context.WithCancel(context.Background())
	cs := WithContext(ctx, src)
	if _, err := cs.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	for i := 0; i < 3; i++ {
		if _, err := cs.Next(); !errors.Is(err, ErrStopped) {
			t.Fatalf("Next after cancel = %v, want ErrStopped (call %d)", err, i)
		}
	}
}

func TestChannelSourceClosedChannelEOF(t *testing.T) {
	s := testSchema(t)
	ch := make(chan Tuple, 2)
	for _, tp := range makeTuples(s, 2) {
		ch <- tp
	}
	close(ch)
	src := NewChannelSource(s, ch)
	got, err := Drain(src)
	if err != nil || len(got) != 2 {
		t.Fatalf("Drain = %d tuples, %v", len(got), err)
	}
	// EOF must be sticky.
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("Next after EOF = %v", err)
	}
}

func TestChannelSourceContextCancelUnblocks(t *testing.T) {
	s := testSchema(t)
	ch := make(chan Tuple) // never written: producer stalls forever
	ctx, cancel := context.WithCancel(context.Background())
	src := NewChannelSourceContext(ctx, s, ch)

	before := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() {
		_, err := src.Next()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the reader block
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) {
			t.Errorf("blocked Next unblocked with %v, want ErrStopped", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled ChannelSource stayed blocked")
	}
	// Cancellation is sticky and never turns into EOF.
	for i := 0; i < 3; i++ {
		if _, err := src.Next(); !errors.Is(err, ErrStopped) {
			t.Fatalf("Next after cancel = %v, want ErrStopped", err)
		}
	}
	assertNoGoroutineLeak(t, before)
}

func TestGeneratorSourceShutdownViaContext(t *testing.T) {
	s := testSchema(t)
	tuples := makeTuples(s, 1)
	gen := NewGeneratorSource(s, -1, func(i int) Tuple { return tuples[0] }) // unbounded
	ctx, cancel := context.WithCancel(context.Background())
	src := WithContext(ctx, gen)
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if _, err := src.Next(); !errors.Is(err, ErrStopped) {
		t.Errorf("Next after cancel = %v, want ErrStopped", err)
	}
	if _, err := src.Next(); errors.Is(err, io.EOF) {
		t.Error("cancelled stream reported io.EOF")
	}
	assertNoGoroutineLeak(t, before)
}

// assertNoGoroutineLeak polls because goroutine teardown is asynchronous.
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d before, %d after", before, now)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- RetrySource -----------------------------------------------------

func TestRetrySourceRecoverTransient(t *testing.T) {
	s := testSchema(t)
	transient := errors.New("transient")
	flaky := NewFlakySource(NewSliceSource(s, makeTuples(s, 5)), FailEveryN(3, transient))
	var slept []time.Duration
	rs := NewRetrySource(flaky, RetryPolicy{
		MaxRetries: 3,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	})
	got, err := Drain(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("delivered %d tuples, want 5", len(got))
	}
	if rs.Retries() == 0 || len(slept) == 0 {
		t.Error("no retries performed")
	}
}

func TestRetrySourceExhaustsRetries(t *testing.T) {
	s := testSchema(t)
	transient := errors.New("always down")
	flaky := NewFlakySource(NewSliceSource(s, makeTuples(s, 1)), func(uint64) error { return transient })
	rs := NewRetrySource(flaky, RetryPolicy{MaxRetries: 2, Sleep: func(time.Duration) {}})
	_, err := rs.Next()
	if !errors.Is(err, transient) {
		t.Errorf("err = %v, want wrapped transient", err)
	}
	if rs.Attempts() != 3 { // initial + 2 retries
		t.Errorf("attempts = %d, want 3", rs.Attempts())
	}
}

func TestRetrySourceDoesNotRetryEOFOrTupleErrors(t *testing.T) {
	s := testSchema(t)
	te := &TupleError{Offset: 0, Err: errors.New("bad row")}
	src := &faultySource{schema: s, script: []any{te}}
	rs := NewRetrySource(src, RetryPolicy{Sleep: func(time.Duration) {}})
	if _, err := rs.Next(); !errors.Is(err, te.Err) {
		t.Errorf("tuple error not passed through: %v", err)
	}
	if _, err := rs.Next(); err != io.EOF {
		t.Errorf("EOF not passed through: %v", err)
	}
	if rs.Retries() != 0 {
		t.Errorf("retried %d times on non-retryable errors", rs.Retries())
	}
}

func TestRetryPolicyBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Jitter: -1}.withDefaults()
	// Jitter clamped to 0 → pure exponential.
	var prev time.Duration
	for i := 0; i < 8; i++ {
		d := p.delay(i)
		if d < prev {
			t.Errorf("delay(%d) = %v < previous %v", i, d, prev)
		}
		if d > 80*time.Millisecond {
			t.Errorf("delay(%d) = %v exceeds cap", i, d)
		}
		prev = d
	}
	if p.delay(0) != 10*time.Millisecond {
		t.Errorf("delay(0) = %v", p.delay(0))
	}
	if p.delay(20) != 80*time.Millisecond { // shift overflow guarded
		t.Errorf("delay(20) = %v, want cap", p.delay(20))
	}
}

func TestRetryJitterDeterministic(t *testing.T) {
	mk := func() []time.Duration {
		p := RetryPolicy{}.withDefaults()
		out := make([]time.Duration, 5)
		for i := range out {
			out[i] = p.delay(i)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
	}
}

// slowSource blocks for d on the scripted calls.
type slowSource struct {
	schema *Schema
	tuples []Tuple
	pos    int
	slow   map[int]time.Duration
}

func (s *slowSource) Schema() *Schema { return s.schema }

func (s *slowSource) Next() (Tuple, error) {
	call := s.pos
	if d, ok := s.slow[call]; ok {
		time.Sleep(d)
	}
	if s.pos >= len(s.tuples) {
		return Tuple{}, io.EOF
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, nil
}

func TestRetrySourceAttemptTimeout(t *testing.T) {
	s := testSchema(t)
	src := &slowSource{schema: s, tuples: makeTuples(s, 3), slow: map[int]time.Duration{1: 100 * time.Millisecond}}
	rs := NewRetrySource(src, RetryPolicy{
		MaxRetries:     20,
		AttemptTimeout: 20 * time.Millisecond,
		Sleep:          func(time.Duration) {},
		Retryable:      func(err error) bool { return errors.Is(err, ErrAttemptTimeout) },
	})
	got, err := Drain(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("delivered %d tuples, want 3", len(got))
	}
	// The slow call timed out at least once but its in-flight result was
	// resumed, not re-issued: the source must have advanced exactly once
	// per tuple.
	if rs.Retries() == 0 {
		t.Error("expected at least one timeout retry")
	}
	for i, tp := range got {
		if v, _ := tp.GetFloat("v"); v != float64(i) {
			t.Errorf("tuple %d has v=%v: in-flight call was re-issued, not resumed", i, v)
		}
	}
}

// --- Fault-injection harness ----------------------------------------

func TestFlakySourcePlans(t *testing.T) {
	errX := errors.New("x")
	plan := FailFirstN(2, errX)
	for i := uint64(0); i < 2; i++ {
		if plan(i) == nil {
			t.Errorf("FailFirstN(2) call %d did not fail", i)
		}
	}
	if plan(2) != nil {
		t.Error("FailFirstN(2) failed call 2")
	}
	every := FailEveryN(3, errX)
	fails := 0
	for i := uint64(0); i < 9; i++ {
		if every(i) != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("FailEveryN(3) failed %d of 9 calls", fails)
	}
}

func TestChaosSourceDeterministic(t *testing.T) {
	s := testSchema(t)
	run := func() (int, int, int) {
		src := NewChaosSource(NewSliceSource(s, makeTuples(s, 200)),
			ChaosOptions{ErrorRate: 0.05, TupleErrorRate: 0.05, Seed: 7})
		tuples, transients, tupleErrs := 0, 0, 0
		for {
			_, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if _, ok := AsTupleError(err); ok {
					tupleErrs++
				} else {
					transients++
				}
				continue
			}
			tuples++
		}
		return tuples, transients, tupleErrs
	}
	t1, e1, te1 := run()
	t2, e2, te2 := run()
	if t1 != t2 || e1 != e2 || te1 != te2 {
		t.Fatalf("chaos not deterministic: (%d,%d,%d) vs (%d,%d,%d)", t1, e1, te1, t2, e2, te2)
	}
	if e1 == 0 || te1 == 0 {
		t.Errorf("chaos injected nothing: transients=%d tupleErrs=%d", e1, te1)
	}
	if t1+te1 != 200 {
		t.Errorf("tuples+tupleErrs = %d, want 200 (tuple errors consume a tuple)", t1+te1)
	}
}

// End-to-end: chaos + retry + quarantine survives everything and
// delivers exactly the non-poisoned tuples.
func TestChaosRetryQuarantinePipeline(t *testing.T) {
	s := testSchema(t)
	const n = 500
	chaos := NewChaosSource(NewSliceSource(s, makeTuples(s, n)),
		ChaosOptions{ErrorRate: 0.1, TupleErrorRate: 0.02, Seed: 99})
	rs := NewRetrySource(chaos, RetryPolicy{MaxRetries: 50, Sleep: func(time.Duration) {}})
	q := NewDeadLetterQueue()
	got, err := Drain(Quarantine(rs, q, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got)+q.Len() != n {
		t.Errorf("delivered %d + quarantined %d != %d", len(got), q.Len(), n)
	}
	// Delivered tuples stay in order.
	prev := -1.0
	for _, tp := range got {
		v, _ := tp.GetFloat("v")
		if v <= prev {
			t.Fatalf("order broken: %v after %v", v, prev)
		}
		prev = v
	}
}
