package netstream

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/obs"
	"icewafl/internal/stream"
)

// Config configures one pollution service: a compiled process, the
// source it consumes, and the fan-out behaviour.
type Config struct {
	// Schema is the input schema (announced to clients in hello frames).
	Schema *stream.Schema
	// Proc is the compiled pollution process (exactly one pipeline; the
	// server drives it through the streaming runner). The server owns
	// Proc.CleanTap for the duration of the run.
	Proc *core.Process
	// NewSource opens the input stream for the run.
	NewSource func() (stream.Source, error)
	// Reorder is the bounded reordering window of the streaming runner.
	Reorder int
	// Shards partitions the keyed pollution hot path across this many
	// parallel workers (<= 1 = sequential). Sharding requires ShardKey
	// and is incompatible with CheckpointPath.
	Shards int
	// ShardKey names the attribute whose value routes tuples to shards.
	ShardKey string
	// ShardOrder selects the sharded merge order (strict by default).
	ShardOrder core.OrderPolicy
	// Columnar serves the dirty channel as columnar micro-batches: the
	// pipeline runs through the columnar runner
	// (core.RunStreamColumnar) and dirty tuples are published as
	// colbatch frames of up to ColumnarBatch rows each (one frame = one
	// sequence number). The clean and log channels stay tuple-wise.
	// Incompatible with Shards > 1 and CheckpointPath.
	Columnar bool
	// ColumnarBatch caps the rows per colbatch frame (default 256).
	ColumnarBatch int
	// Buffer is the per-subscriber send queue capacity (frames).
	Buffer int
	// Replay is the number of frames retained per channel for late
	// subscribers and reconnects.
	Replay int
	// Policy selects the backpressure behaviour for slow subscribers.
	Policy Policy
	// DrainTimeout bounds the graceful drain on shutdown: how long the
	// server waits for subscribers to finish reading after the pipeline
	// ends (default 5s). When the deadline fires with subscribers still
	// connected, their connections are force-closed and DrainExpired
	// reports true.
	DrainTimeout time.Duration
	// WALDir enables durable replay: every published frame is persisted
	// to a per-channel write-ahead log under WALDir/<channel>, so
	// from_seq resume survives daemon restarts and ErrGap only occurs
	// past the log's retention. Empty = memory-only (the replay ring).
	WALDir string
	// WAL tunes the write-ahead logs (zero value = defaults); only
	// meaningful with WALDir.
	WAL WALOptions
	// CheckpointPath enables checkpointed sessions (requires WALDir and
	// Reorder <= 1): pipeline state is captured there every
	// CheckpointEvery emitted tuples, so a restarted daemon resumes the
	// run from the checkpoint instead of replaying the whole input.
	CheckpointPath string
	// CheckpointEvery is the capture cadence in emitted tuples (default
	// 256).
	CheckpointEvery int
	// Supervise runs the pipeline as a restartable session: a failed or
	// panicked run is restarted with exponential backoff until the
	// restart budget is exhausted, then quarantined (surfaced on
	// /healthz).
	Supervise bool
	// RestartBudget is the number of restarts tolerated per
	// RestartWindow before quarantine (default 3).
	RestartBudget int
	// RestartWindow is the sliding restart-budget window (default 1m).
	RestartWindow time.Duration
	// RestartBackoff is the base restart delay, doubled per consecutive
	// failure (default 100ms).
	RestartBackoff time.Duration
	// Namespace prefixes every channel name (<namespace>/dirty|clean|log)
	// — the session service sets it to <tenant>/<session> so subscribers
	// address exactly one session's channels. A namespaced server shares
	// its registry with sibling sessions, so it skips the global gauge
	// registrations NewHub performs (the service aggregates per tenant
	// instead). Empty = the classic single-pipeline channel names.
	Namespace string
	// TrackDelivery stamps published frames and observes publish→pickup
	// latency into StageDeliver (the session service's p50/p99 source).
	TrackDelivery bool
	// Reg receives service metrics (nil-safe).
	Reg *obs.Registry
	// Logf, when set, receives service diagnostics.
	Logf func(format string, args ...any)
}

// chanName pairs a channel's local identity (dirty/clean/log — the WAL
// sub-directory and checkpoint-offset key) with its full, possibly
// namespaced wire name.
type chanName struct {
	local string
	full  string
}

// Server runs one pollution pipeline and streams its outputs to
// subscribed clients.
type Server struct {
	cfg Config
	hub *Hub
	sup *Supervisor

	// chans maps the standard channels to their wire names; chDirty,
	// chClean and chLog are the wire names used on the hot paths.
	chans   []chanName
	chDirty string
	chClean string
	chLog   string

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[io.Closer]struct{}

	drainExpired atomic.Bool

	pipelineDone chan struct{}
	pipelineErr  error
	wg           sync.WaitGroup
}

// NewServer validates cfg and builds the server (hub and hello frames
// included, so clients may subscribe before the pipeline starts).
func NewServer(cfg Config) (*Server, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("netstream: config needs a schema")
	}
	if cfg.Proc == nil {
		return nil, fmt.Errorf("netstream: config needs a process")
	}
	if cfg.NewSource == nil {
		return nil, fmt.Errorf("netstream: config needs a source factory")
	}
	if cfg.Reorder < 1 {
		cfg.Reorder = 1
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.CheckpointPath != "" {
		if cfg.WALDir == "" {
			return nil, fmt.Errorf("netstream: checkpointed sessions require a wal directory")
		}
		if cfg.Reorder > 1 {
			return nil, fmt.Errorf("netstream: checkpointed sessions require a reorder window of 1, got %d", cfg.Reorder)
		}
		if cfg.CheckpointEvery <= 0 {
			cfg.CheckpointEvery = 256
		}
	}
	if cfg.Shards > 1 {
		if cfg.ShardKey == "" {
			return nil, fmt.Errorf("netstream: sharded sessions require a shard key")
		}
		if cfg.WALDir != "" && cfg.ShardOrder == core.OrderRelaxed {
			return nil, fmt.Errorf("netstream: durable sessions require strict shard order; a relaxed-order re-run is not byte-deterministic, so restart recovery cannot suppress replayed frames")
		}
		if cfg.Schema.Index(cfg.ShardKey) < 0 {
			return nil, fmt.Errorf("netstream: shard key attribute %q not in schema", cfg.ShardKey)
		}
		if cfg.CheckpointPath != "" {
			return nil, fmt.Errorf("netstream: sharded sessions cannot be checkpointed; checkpoints cover the sequential path only")
		}
	}
	if cfg.Columnar {
		if cfg.Shards > 1 {
			return nil, fmt.Errorf("netstream: columnar serving is incompatible with sharded execution")
		}
		if cfg.CheckpointPath != "" {
			return nil, fmt.Errorf("netstream: columnar serving is incompatible with checkpointed sessions")
		}
		if cfg.ColumnarBatch <= 0 {
			cfg.ColumnarBatch = core.DefaultColumnarBatch
		}
	}
	s := &Server{
		cfg:          cfg,
		conns:        make(map[io.Closer]struct{}),
		pipelineDone: make(chan struct{}),
	}
	for _, local := range Channels() {
		full := local
		if cfg.Namespace != "" {
			full = cfg.Namespace + "/" + local
		}
		s.chans = append(s.chans, chanName{local: local, full: full})
	}
	s.chDirty, s.chClean, s.chLog = s.chans[0].full, s.chans[1].full, s.chans[2].full
	if cfg.Namespace != "" {
		names := make([]string, len(s.chans))
		for i, cn := range s.chans {
			names[i] = cn.full
		}
		s.hub = NewHubNamed(names, cfg.Buffer, cfg.Replay, cfg.Policy, cfg.Reg)
	} else {
		s.hub = NewHub(cfg.Buffer, cfg.Replay, cfg.Policy, cfg.Reg)
	}
	if cfg.TrackDelivery {
		s.hub.SetDeliveryTracking(true)
	}
	if cfg.WALDir != "" {
		var opened []*WAL
		walFail := func(err error) (*Server, error) {
			// Detach the already-opened logs from the tenant's byte ledger:
			// a failed constructor must not leave phantom budget usage.
			for _, w := range opened {
				w.ReleaseBudget()
				w.Close()
			}
			return nil, err
		}
		for _, cn := range s.chans {
			w, err := OpenWAL(filepath.Join(cfg.WALDir, cn.local), cfg.WAL)
			if err != nil {
				return walFail(err)
			}
			opened = append(opened, w)
			if err := s.hub.AttachWAL(cn.full, w); err != nil {
				return walFail(err)
			}
		}
	}
	if cfg.Supervise || cfg.WALDir != "" {
		s.hub.SetResumable(true)
	}
	if cfg.Supervise {
		s.sup = NewSupervisor(cfg.RestartBudget, cfg.RestartWindow, cfg.RestartBackoff, cfg.Logf)
		if cfg.Namespace == "" {
			// Session servers share one registry; a per-session gauge under
			// one fixed name would clobber its siblings' registrations.
			cfg.Reg.RegisterFunc("net_session_restarts", s.sup.Restarts)
		}
	}
	doc := SchemaDocument(cfg.Schema)
	for _, cn := range s.chans {
		if err := s.hub.SetHello(cn.full, &Frame{Type: FrameHello, Channel: cn.full, Schema: doc}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Supervisor returns the session supervisor (nil unless Supervise).
func (s *Server) Supervisor() *Supervisor { return s.sup }

// DrainExpired reports whether the shutdown drain deadline fired with
// subscribers still connected (their connections were force-closed; the
// daemon exits nonzero).
func (s *Server) DrainExpired() bool { return s.drainExpired.Load() }

// Hub exposes the server's broadcast hub (tests and embedders).
func (s *Server) Hub() *Hub { return s.hub }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// allTerminal reports whether every channel's durable log ends in a
// terminal frame (a previous run completed durably — nothing to rerun).
func (s *Server) allTerminal() bool {
	for _, cn := range s.chans {
		w := s.hub.WAL(cn.full)
		if w == nil || !w.Terminal() {
			return false
		}
	}
	return true
}

// armRecovery rewinds every channel's publish cursor to the checkpoint
// (or zero) and arms the suppression boundary at the current durable
// maximum, so the deterministic re-run regenerates the already-durable
// region without duplicating it.
func (s *Server) armRecovery(resume *core.Checkpoint) error {
	for _, cn := range s.chans {
		cursor := uint64(0)
		if resume != nil {
			if v := resume.Offsets["net."+cn.local]; v > 0 {
				cursor = uint64(v)
			}
		}
		if err := s.hub.BeginRecovery(cn.full, cursor); err != nil {
			return err
		}
	}
	return nil
}

// captureCheckpoint persists a consistent run snapshot. The logs are
// synced first so the durable checkpoint never runs ahead of the
// durable frames it references.
func (s *Server) captureCheckpoint(ckr *core.Checkpointer) error {
	for _, cn := range s.chans {
		if w := s.hub.WAL(cn.full); w != nil {
			if err := w.Sync(); err != nil {
				return err
			}
		}
	}
	ck, err := ckr.Capture()
	if err != nil {
		return err
	}
	for _, cn := range s.chans {
		ck.Offsets["net."+cn.local] = int64(s.hub.Seq(cn.full))
	}
	return core.WriteCheckpoint(s.cfg.CheckpointPath, ck)
}

// runPipeline executes the pollution process once, publishing every
// output to the hub, and finishes each channel with a terminal frame.
// Client-side failures never reach the pipeline: a disconnected or slow
// subscriber only affects its own subscription (per the backpressure
// policy), while source-side faults keep the PR-1 contract — quarantine
// and DLQ work unchanged under the server runner.
//
// In durable mode (WALDir) each run first arms the hub's recovery
// suppression: frames the deterministic (re-)run regenerates below the
// durable maximum consume their sequence numbers silently, so a
// restarted daemon resumes the stream with no duplicates or gaps. With
// CheckpointPath the run additionally resumes pipeline state from the
// last checkpoint instead of replaying the whole input.
func (s *Server) runPipeline(ctx context.Context) error {
	proc := s.cfg.Proc
	durable := s.cfg.WALDir != ""
	if durable && s.allTerminal() {
		s.logf("durable run already complete; serving from wal")
		return nil
	}
	var resume *core.Checkpoint
	if s.cfg.CheckpointPath != "" {
		ck, err := core.ReadCheckpoint(s.cfg.CheckpointPath)
		switch {
		case err == nil:
			resume = ck
			s.logf("resuming from checkpoint: %d tuples in, %d out", ck.TuplesIn, ck.TuplesOut)
		case errors.Is(err, os.ErrNotExist):
		default:
			s.logf("checkpoint unreadable, replaying from scratch: %v", err)
		}
	}

	proc.CleanTap = func(t stream.Tuple) {
		if err := s.hub.Publish(s.chClean, &Frame{Type: FrameTuple, Tuple: EncodeTuple(t)}); err != nil {
			s.logf("clean publish: %v", err)
		}
	}
	defer func() { proc.CleanTap = nil }()

	fail := func(err error) error {
		msg := err.Error()
		for _, cn := range s.chans {
			if perr := s.hub.Publish(cn.full, &Frame{Type: FrameError, Error: msg}); perr != nil && !errors.Is(perr, ErrHubClosed) {
				s.logf("error publish on %s: %v", cn.full, perr)
			}
		}
		return err
	}

	if durable || s.cfg.Supervise {
		// Arm recovery on every attempt: the first run of a fresh log is a
		// no-op (cursor and boundary both zero), later runs replay into the
		// suppressed region.
		if err := s.armRecovery(resume); err != nil {
			return fail(err)
		}
	}

	src, err := s.cfg.NewSource()
	if err != nil {
		return fail(fmt.Errorf("netstream: open source: %w", err))
	}
	defer stopSource(src)

	var (
		polluted stream.Source
		plog     *core.Log
		ckr      *core.Checkpointer
	)
	switch {
	case s.cfg.CheckpointPath != "":
		polluted, plog, ckr, err = proc.RunStreamCheckpointed(stream.WithContext(ctx, src), resume)
	case s.cfg.Shards > 1:
		// Arena mode is safe here: the publish loop below fully renders
		// each tuple into a WireTuple before the next Next call, so no
		// loaned tuple memory is retained.
		polluted, plog, err = proc.RunStreamSharded(stream.WithContext(ctx, src), s.cfg.Reorder, core.ShardConfig{
			KeyAttr: s.cfg.ShardKey,
			Shards:  s.cfg.Shards,
			Order:   s.cfg.ShardOrder,
			Arena:   true,
		})
	case s.cfg.Columnar:
		polluted, plog, err = proc.RunStreamColumnar(stream.WithContext(ctx, src), s.cfg.Reorder)
	default:
		polluted, plog, err = proc.RunStream(stream.WithContext(ctx, src), s.cfg.Reorder)
	}
	if err != nil {
		return fail(err)
	}
	flushed := 0
	flushLog := func() error {
		if plog == nil {
			return nil
		}
		for ; flushed < len(plog.Entries); flushed++ {
			e := plog.Entries[flushed]
			if err := s.hub.Publish(s.chLog, &Frame{Type: FrameLog, Entry: &e}); err != nil {
				return err
			}
		}
		return nil
	}
	emitted := 0
	if cbr, ok := polluted.(stream.ColumnBatchReader); ok && s.cfg.Columnar {
		// Batch-native serving: the columnar runner's output batches are
		// drained directly (no per-row tuple materialisation) and each
		// becomes one colbatch frame consuming one sequence number. The
		// log is flushed before each frame, so subscribers see a tuple's
		// log entries no later than the frame that carries it — the same
		// ordering guarantee the tuple-wise loop gives, at batch
		// granularity.
		out := stream.NewColumnBatch(s.cfg.Schema, s.cfg.ColumnarBatch)
		for {
			out.Reset()
			n, rerr := cbr.ReadBatch(out, s.cfg.ColumnarBatch)
			if n > 0 {
				if err := flushLog(); err != nil {
					return fail(err)
				}
				if err := s.hub.Publish(s.chDirty, &Frame{Type: FrameColBatch, Batch: EncodeColumnBatch(out)}); err != nil {
					return fail(err)
				}
				emitted += n
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				if _, ok := stream.AsTupleError(rerr); ok {
					s.logf("tuple error: %v", rerr)
					continue
				}
				return fail(rerr)
			}
		}
	} else {
		// Tuple-wise drain; in columnar mode with a reorder window > 1
		// the reorder wrapper hides the runner's batch face, so rows are
		// re-accumulated into colbatch frames here.
		var wb *WireColumnBatch
		if s.cfg.Columnar {
			wb = NewWireColumnBatch(s.cfg.Schema.Len())
		}
		flushBatch := func() error {
			if wb == nil || wb.Count == 0 {
				return nil
			}
			f := &Frame{Type: FrameColBatch, Batch: wb}
			// The hub retains published frames (replay ring, WAL), so a
			// fresh batch is allocated instead of resetting this one.
			wb = NewWireColumnBatch(s.cfg.Schema.Len())
			return s.hub.Publish(s.chDirty, f)
		}
		for {
			t, err := polluted.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if _, ok := stream.AsTupleError(err); ok {
					// Tuple-level failure without quarantine: skip the tuple,
					// the stream remains usable (Source error contract).
					s.logf("tuple error: %v", err)
					continue
				}
				return fail(err)
			}
			// The log trails the polluted stream by at most the reorder
			// window; flushing per emitted tuple keeps subscribers current
			// without observing entries that could still be rolled back
			// (rollback happens inside Next, before the tuple is emitted).
			if err := flushLog(); err != nil {
				return fail(err)
			}
			if wb != nil {
				wb.AppendTuple(t)
				if wb.Count >= s.cfg.ColumnarBatch {
					if err := flushBatch(); err != nil {
						return fail(err)
					}
				}
			} else if err := s.hub.Publish(s.chDirty, &Frame{Type: FrameTuple, Tuple: EncodeTuple(t)}); err != nil {
				return fail(err)
			}
			emitted++
			if ckr != nil && emitted%s.cfg.CheckpointEvery == 0 {
				// Capture between Next calls, when no tuple is in flight; a
				// failed capture only widens the replay window of the next
				// restart, it does not corrupt the run.
				if cerr := s.captureCheckpoint(ckr); cerr != nil {
					s.logf("checkpoint: %v", cerr)
				}
			}
		}
		if err := flushBatch(); err != nil {
			return fail(err)
		}
	}
	if err := flushLog(); err != nil {
		return fail(err)
	}
	for _, cn := range s.chans {
		if err := s.hub.Publish(cn.full, &Frame{Type: FrameEOF}); err != nil && !errors.Is(err, ErrHubClosed) {
			return err
		}
	}
	return nil
}

// stopSource stops a source implementing stream.Stopper.
func stopSource(src stream.Source) {
	if st, ok := src.(stream.Stopper); ok {
		st.Stop()
	}
}

// Serve runs the pipeline and serves subscribers until ctx is cancelled
// (SIGTERM in the daemon), then drains gracefully: subscribers get
// DrainTimeout to finish reading their queues before connections close.
// tcpLn and httpLn are optional (nil disables that listener). Serve
// returns the pipeline's error, if any.
func (s *Server) Serve(ctx context.Context, tcpLn, httpLn net.Listener) error {
	if tcpLn != nil {
		s.track(tcpLn)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.acceptLoop(tcpLn)
		}()
	}
	var httpSrv *http.Server
	if httpLn != nil {
		s.track(httpLn)
		httpSrv = &http.Server{Handler: s.HTTPHandler()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
				s.logf("http: %v", err)
			}
		}()
	}

	// The pipeline runs concurrently with the shutdown watcher: a
	// publisher wedged on a stuck subscriber (block policy, full TCP
	// buffer) must not keep Serve from reaching the drain deadline —
	// hub.Close inside drainAndClose is exactly what unblocks it.
	pipeRes := s.startPipeline(ctx)

	// Keep serving until the caller cancels, so late clients can still
	// fetch results from the replay ring after the pipeline completes.
	<-ctx.Done()
	return s.drainAndClose(httpSrv, pipeRes)
}

// startPipeline launches the pollution run (supervised when configured)
// and returns a one-shot channel carrying its terminal error.
func (s *Server) startPipeline(ctx context.Context) <-chan error {
	pipeRes := make(chan error, 1)
	go func() {
		var err error
		if s.sup != nil {
			err = s.sup.Run(ctx, s.runPipeline)
		} else {
			err = s.runPipeline(ctx)
		}
		s.mu.Lock()
		s.pipelineErr = err
		s.mu.Unlock()
		close(s.pipelineDone)
		pipeRes <- err
	}()
	return pipeRes
}

// drainAndClose is the bounded shutdown path shared by Serve and the
// session service's DELETE: give connected subscribers DrainTimeout to
// empty their queues, then force-close whatever is left — the hub close
// releases any Publish wedged on a stuck block-policy subscriber, so the
// pipeline goroutine (and therefore this call) finishes promptly instead
// of blocking the caller indefinitely. Returns the pipeline's error.
func (s *Server) drainAndClose(httpSrv *http.Server, pipeRes <-chan error) error {
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for time.Now().Before(deadline) && s.hub.subscribers.Load() > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.hub.subscribers.Load(); n > 0 {
		s.drainExpired.Store(true)
		s.logf("drain deadline expired with %d subscriber(s) connected; force-closing", n)
	}
	s.hub.Close()
	s.mu.Lock()
	for _, ln := range s.listeners {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if httpSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	}
	s.wg.Wait()
	// hub.Close above released any Publish still blocked on a stuck
	// subscriber, so the pipeline goroutine finishes promptly.
	err := <-pipeRes
	for _, cn := range s.chans {
		if w := s.hub.WAL(cn.full); w != nil {
			if cerr := w.Close(); cerr != nil {
				s.logf("wal close %s: %v", cn.full, cerr)
			}
		}
	}
	return err
}

// trackConn registers a subscriber connection (or closer) for
// force-close when the drain deadline expires; untrackConn releases it.
func (s *Server) trackConn(c io.Closer) {
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrackConn(c io.Closer) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// PipelineDone reports completion of the pollution run (closed channel)
// and its error.
func (s *Server) PipelineDone() <-chan struct{} { return s.pipelineDone }

// PipelineErr returns the pipeline's terminal error (nil before
// completion or on success).
func (s *Server) PipelineErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipelineErr
}

func (s *Server) track(ln net.Listener) {
	s.mu.Lock()
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
}

// acceptLoop serves raw-TCP subscribers.
func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn speaks the TCP protocol: one subscribe frame in, then a
// stream of length-prefixed frames out until a terminal frame.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	s.trackConn(conn)
	defer s.untrackConn(conn)
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	var req SubscribeRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		s.writeErrorFrame(conn, fmt.Errorf("netstream: bad subscribe request: %w", err))
		return
	}
	if req.Channel == "" {
		req.Channel = s.chDirty
	}
	s.streamTCP(conn, req.Channel, req.FromSeq, nil)
}

// streamTCP subscribes the connection to channel and streams frames
// until a terminal frame or disconnect. throttle, when set, is applied
// before each frame write (the session service's per-tenant rate limit
// and throughput accounting); a throttle error ends the stream with a
// terminal error frame.
func (s *Server) streamTCP(conn net.Conn, channel string, fromSeq uint64, throttle func(n int) error) {
	sub, err := s.hub.Subscribe(channel, fromSeq)
	if err != nil {
		s.writeErrorFrame(conn, err)
		return
	}
	defer sub.Close()
	bw := bufio.NewWriter(conn)
	for {
		data, terminal, err := sub.Recv()
		if err != nil {
			if errors.Is(err, ErrSlowClient) {
				s.writeErrorFrame(conn, err)
			}
			return
		}
		if throttle != nil {
			if terr := throttle(len(data)); terr != nil {
				s.writeErrorFrame(conn, terr)
				return
			}
		}
		start := time.Now()
		if err := WriteFrame(bw, data); err != nil {
			return // client went away; pipeline unaffected
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.cfg.Reg.ObserveStage(obs.StageNetSend, time.Since(start))
		if terminal {
			return
		}
	}
}

// writeErrorFrame best-effort reports err to the peer as a terminal
// frame. Replay-gap rejections carry machine-readable bounds so the
// client maps them to a typed, non-retryable GapError.
func (s *Server) writeErrorFrame(conn net.Conn, err error) {
	f := &Frame{Type: FrameError, Error: err.Error()}
	var gap *GapError
	if errors.As(err, &gap) {
		f.Gap = &GapInfo{Requested: gap.Requested, ServerMin: gap.ServerMin}
	}
	var quota *QuotaError
	if errors.As(err, &quota) {
		f.Quota = quota.Info()
	}
	data, merr := EncodeFrame(f)
	if merr != nil {
		return
	}
	_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_ = WriteFrame(conn, data)
}

// HTTPHandler returns the service's HTTP interface:
//
//	GET /stream?channel=dirty|clean|log&from_seq=N  — NDJSON (chunked)
//	GET /sse?channel=...&from_seq=N                 — Server-Sent Events
//	GET /metrics                                    — Prometheus text
//	GET /healthz                                    — liveness + run state
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		s.serveHTTPStream(w, r, false)
	})
	mux.HandleFunc("/sse", func(w http.ResponseWriter, r *http.Request) {
		s.serveHTTPStream(w, r, true)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.cfg.Reg.Snapshot()
		if snap == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap.WritePrometheus(w); err != nil {
			s.logf("metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		state := "running"
		select {
		case <-s.pipelineDone:
			if s.PipelineErr() != nil {
				state = "failed"
			} else {
				state = "done"
			}
		default:
		}
		var restarts uint64
		if s.sup != nil {
			restarts = s.sup.Restarts()
			if s.sup.Quarantined() {
				state = "quarantined"
			}
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"state\":%q,\"dirty_seq\":%d,\"clean_seq\":%d,\"log_seq\":%d,\"restarts\":%d,\"recovered\":%d,\"wal\":%t}\n",
			state, s.hub.Seq(s.chDirty), s.hub.Seq(s.chClean), s.hub.Seq(s.chLog),
			restarts, s.hub.Recovered(), s.cfg.WALDir != "")
	})
	return mux
}

// serveHTTPStream subscribes the request and streams frames as NDJSON
// lines or SSE events until a terminal frame.
func (s *Server) serveHTTPStream(w http.ResponseWriter, r *http.Request, sse bool) {
	channel := r.URL.Query().Get("channel")
	if channel == "" {
		channel = s.chDirty
	}
	fromSeq, ok := parseFromSeq(w, r)
	if !ok {
		return
	}
	s.streamHTTP(w, r, sse, channel, fromSeq, nil)
}

// parseFromSeq reads the from_seq query parameter, reporting 400 on a
// malformed value.
func parseFromSeq(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	raw := r.URL.Query().Get("from_seq")
	if raw == "" {
		return 0, true
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, "bad from_seq", http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

// streamHTTP subscribes the request to channel and streams frames as
// NDJSON lines or SSE events. throttle, when set, is applied before
// each frame write (per-tenant rate limit and accounting); a throttle
// error terminates the stream with an error frame.
func (s *Server) streamHTTP(w http.ResponseWriter, r *http.Request, sse bool, channel string, fromSeq uint64, throttle func(n int) error) {
	sub, err := s.hub.Subscribe(channel, fromSeq)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrGap) {
			status = http.StatusGone
		}
		http.Error(w, err.Error(), status)
		return
	}
	defer sub.Close()
	flusher, _ := w.(http.Flusher)
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	// Register the response for force-close: when the session's drain
	// deadline fires with this subscriber wedged mid-write, an immediate
	// write deadline unblocks the handler.
	rc := &httpCloser{rc: http.NewResponseController(w)}
	s.trackConn(rc)
	defer s.untrackConn(rc)
	ctx := r.Context()
	for {
		data, terminal, err := sub.RecvContext(ctx)
		if err != nil {
			if errors.Is(err, ErrSlowClient) {
				s.writeHTTPFrame(w, flusher, sse, slowClientFrame())
			}
			return
		}
		if throttle != nil {
			if terr := throttle(len(data)); terr != nil {
				if ef, merr := EncodeFrame(errorFrame(terr)); merr == nil {
					s.writeHTTPFrame(w, flusher, sse, ef)
				}
				return
			}
		}
		start := time.Now()
		if !s.writeHTTPFrame(w, flusher, sse, data) {
			return
		}
		s.cfg.Reg.ObserveStage(obs.StageNetSend, time.Since(start))
		if terminal {
			return
		}
	}
}

// errorFrame renders err as a terminal error frame with its typed
// payload (gap/quota) attached.
func errorFrame(err error) *Frame {
	f := &Frame{Type: FrameError, Error: err.Error()}
	var gap *GapError
	if errors.As(err, &gap) {
		f.Gap = &GapInfo{Requested: gap.Requested, ServerMin: gap.ServerMin}
	}
	var quota *QuotaError
	if errors.As(err, &quota) {
		f.Quota = quota.Info()
	}
	return f
}

// httpCloser adapts an HTTP response to the force-close registry: Close
// sets an immediate write deadline, unblocking a handler wedged on an
// unread client.
type httpCloser struct{ rc *http.ResponseController }

func (c *httpCloser) Close() error {
	return c.rc.SetWriteDeadline(time.Now())
}

// slowClientFrame renders the disconnect-slow terminal frame.
func slowClientFrame() []byte {
	data, _ := EncodeFrame(&Frame{Type: FrameError, Error: ErrSlowClient.Error()})
	return data
}

// writeHTTPFrame writes one frame in the chosen HTTP encoding.
func (s *Server) writeHTTPFrame(w http.ResponseWriter, flusher http.Flusher, sse bool, data []byte) bool {
	if sse {
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
	} else {
		// Two writes, never append: frames replayed from the WAL alias the
		// reader's internal buffer, and appending in place would clobber
		// the next record's length prefix.
		if _, err := w.Write(data); err != nil {
			return false
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return false
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	return true
}
